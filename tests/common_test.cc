// Unit tests for src/common: bytes, rng, strutil, stats.
#include <gtest/gtest.h>

#include <memory>
#include <set>
#include <utility>

#include "common/bytes.h"
#include "common/inline_function.h"
#include "common/shared_bytes.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/strutil.h"

namespace rddr {
namespace {

TEST(Bytes, BigEndianRoundTrip) {
  Bytes b;
  put_u32_be(b, 0xdeadbeef);
  put_u16_be(b, 0x1234);
  ASSERT_EQ(b.size(), 6u);
  EXPECT_EQ(get_u32_be(b, 0), 0xdeadbeefu);
  EXPECT_EQ(get_u16_be(b, 4), 0x1234u);
}

TEST(Bytes, HexRoundTrip) {
  Bytes raw("\x00\x7f\xff\x41", 4);
  EXPECT_EQ(to_hex(raw), "007fff41");
  EXPECT_EQ(from_hex("007fff41"), raw);
}

TEST(Bytes, FromHexRejectsMalformed) {
  EXPECT_TRUE(from_hex("abc").empty());   // odd length
  EXPECT_TRUE(from_hex("zz").empty());    // bad digit
}

TEST(Rng, Deterministic) {
  Rng a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(Rng, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, UniformInRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    int64_t v = r.uniform(-5, 5);
    EXPECT_GE(v, -5);
    EXPECT_LE(v, 5);
  }
}

TEST(Rng, Uniform01InRange) {
  Rng r(7);
  for (int i = 0; i < 1000; ++i) {
    double v = r.uniform01();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
  }
}

TEST(Rng, ForkedStreamsIndependent) {
  Rng parent(99);
  Rng c1 = parent.fork(1);
  Rng c2 = parent.fork(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (c1.next() == c2.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(Rng, ForkSameLabelFromSameStateDiffers) {
  // fork() consumes parent state, so successive forks differ even with the
  // same label.
  Rng parent(99);
  Rng a = parent.fork(7);
  Rng b = parent.fork(7);
  EXPECT_NE(a.next(), b.next());
}

TEST(Rng, AlnumTokenAlphabet) {
  Rng r(3);
  std::string t = r.alnum_token(64);
  ASSERT_EQ(t.size(), 64u);
  for (char c : t) EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)));
}

TEST(Rng, TokensCollisionFree) {
  // The paper assumes a CSPRNG so filter-pair tokens never collide; verify
  // our stand-in doesn't produce duplicates across instances.
  Rng seed(5);
  Rng i0 = seed.fork(0), i1 = seed.fork(1);
  std::set<std::string> seen;
  for (int i = 0; i < 500; ++i) {
    EXPECT_TRUE(seen.insert(i0.alnum_token(16)).second);
    EXPECT_TRUE(seen.insert(i1.alnum_token(16)).second);
  }
}

TEST(StrUtil, Split) {
  auto v = split("a,b,,c", ',');
  ASSERT_EQ(v.size(), 4u);
  EXPECT_EQ(v[0], "a");
  EXPECT_EQ(v[2], "");
}

TEST(StrUtil, SplitLines) {
  auto v = split_lines("one\r\ntwo\nthree");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[0], "one");
  EXPECT_EQ(v[1], "two");
  EXPECT_EQ(v[2], "three");
}

TEST(StrUtil, SplitLinesTrailingNewline) {
  auto v = split_lines("a\nb\n");
  ASSERT_EQ(v.size(), 2u);
}

TEST(StrUtil, SplitLinesKeepsInteriorEmpties) {
  auto v = split_lines("a\n\nb");
  ASSERT_EQ(v.size(), 3u);
  EXPECT_EQ(v[1], "");
}

TEST(StrUtil, TrimAndCase) {
  EXPECT_EQ(trim("  x \t"), "x");
  EXPECT_EQ(to_lower("AbC"), "abc");
  EXPECT_EQ(to_upper("AbC"), "ABC");
  EXPECT_TRUE(iequals("Content-Length", "content-length"));
  EXPECT_FALSE(iequals("a", "ab"));
}

TEST(StrUtil, IFind) {
  EXPECT_EQ(ifind("Hello World", "WORLD"), 6u);
  EXPECT_EQ(ifind("abc", "zzz"), std::string_view::npos);
  EXPECT_EQ(ifind("abc", ""), 0u);
}

TEST(StrUtil, ParseI64) {
  EXPECT_EQ(parse_i64("42").value(), 42);
  EXPECT_EQ(parse_i64(" -7 ").value(), -7);
  EXPECT_FALSE(parse_i64("12x").has_value());
  EXPECT_FALSE(parse_i64("").has_value());
  EXPECT_FALSE(parse_i64("999999999999999999999").has_value());
}

TEST(StrUtil, ReplaceAll) {
  EXPECT_EQ(replace_all("aXbXc", "X", "--"), "a--b--c");
  EXPECT_EQ(replace_all("none", "X", "Y"), "none");
}

TEST(StrUtil, StrFormat) {
  EXPECT_EQ(strformat("%d-%s", 7, "ok"), "7-ok");
}

TEST(SampleStats, BasicMoments) {
  SampleStats s;
  for (double v : {1.0, 2.0, 3.0, 4.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 2.5);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);
  EXPECT_DOUBLE_EQ(s.max(), 4.0);
  EXPECT_NEAR(s.stddev(), 1.2909944, 1e-6);
}

TEST(SampleStats, Percentiles) {
  SampleStats s;
  for (int i = 1; i <= 100; ++i) s.add(i);
  EXPECT_DOUBLE_EQ(s.percentile(50), 50);
  EXPECT_DOUBLE_EQ(s.percentile(95), 95);
  EXPECT_DOUBLE_EQ(s.percentile(0), 1);
  EXPECT_DOUBLE_EQ(s.percentile(100), 100);
}

TEST(SampleStats, PercentileSortsLazilyAndOnce) {
  SampleStats s;
  for (int i = 10; i >= 1; --i) s.add(i);
  EXPECT_EQ(s.sort_count(), 0u);
  EXPECT_DOUBLE_EQ(s.percentile(50), 5);
  // Repeated queries reuse the sorted order instead of re-sorting.
  EXPECT_DOUBLE_EQ(s.percentile(90), 9);
  EXPECT_DOUBLE_EQ(s.min(), 1.0);  // O(1) off the sorted vector
  EXPECT_DOUBLE_EQ(s.max(), 10.0);
  EXPECT_EQ(s.sort_count(), 1u);
  // A new sample invalidates the order; the next percentile re-sorts.
  s.add(0.5);
  EXPECT_DOUBLE_EQ(s.percentile(0), 0.5);
  EXPECT_EQ(s.sort_count(), 2u);
}

TEST(TimeWeightedValue, IntegralAndMax) {
  TimeWeightedValue v;
  v.update(0, 2.0);
  v.update(1000, 4.0);   // 2.0 held for 1000ns
  v.update(3000, 0.0);   // 4.0 held for 2000ns
  EXPECT_DOUBLE_EQ(v.integral(3000), 2.0 * 1000 + 4.0 * 2000);
  EXPECT_DOUBLE_EQ(v.max_value(), 4.0);
  EXPECT_DOUBLE_EQ(v.mean(4000), (2000.0 + 8000.0) / 4000.0);
}

// ---- SharedBytes: refcounted immutable buffers for the data plane ----

TEST(SharedBytes, WrapsOwnedBytesWithoutCopying) {
  Bytes src(64, 'x');  // past SSO: the heap storage must move, not copy
  const char* storage = src.data();
  SharedBytes sb{std::move(src)};
  EXPECT_EQ(sb.size(), 64u);
  EXPECT_EQ(sb.data(), storage);
  EXPECT_EQ(sb.use_count(), 1);
}

TEST(SharedBytes, CopiesShareTheBuffer) {
  SharedBytes a{Bytes("0123456789abcdef0123456789abcdef")};  // > SSO
  const char* payload = a.data();
  SharedBytes b = a;
  SharedBytes c = b;
  EXPECT_EQ(a.use_count(), 3);
  EXPECT_EQ(b.data(), payload);  // aliases, no copy
  EXPECT_EQ(c.data(), payload);
  c = SharedBytes();
  EXPECT_EQ(a.use_count(), 2);
}

TEST(SharedBytes, SliceSharesAndClamps) {
  SharedBytes whole{Bytes("0123456789")};
  SharedBytes mid = whole.slice(2, 5);
  EXPECT_EQ(mid.view(), "23456");
  EXPECT_EQ(mid.data(), whole.data() + 2);  // same buffer
  EXPECT_EQ(whole.use_count(), 2);
  SharedBytes tail = mid.slice(3);  // open-ended, relative to the slice
  EXPECT_EQ(tail.view(), "56");
  EXPECT_EQ(whole.slice(4, 100).view(), "456789");  // length clamped
  EXPECT_TRUE(whole.slice(10).empty());             // out of range => empty
  EXPECT_TRUE(whole.slice(99, 2).empty());
}

TEST(SharedBytes, BufferOutlivesOriginalHandle) {
  SharedBytes survivor;
  {
    SharedBytes original{Bytes("still here")};
    survivor = original.slice(6);
  }
  EXPECT_EQ(survivor.view(), "here");
  EXPECT_EQ(survivor.use_count(), 1);
}

TEST(SharedBytes, ViewConstructorMaterialisesOneCopy) {
  Bytes src = "borrowed";
  SharedBytes sb{ByteView(src)};
  src[0] = 'X';  // mutating the source must not affect the shared copy
  EXPECT_EQ(sb.view(), "borrowed");
}

// ---- InlineFunction: the simulator's allocation-free event callable ----

TEST(InlineFunction, InvokesInlineCapture) {
  int hits = 0;
  InlineFunction<48> fn([&hits] { ++hits; });
  EXPECT_TRUE(static_cast<bool>(fn));
  fn();
  fn();
  EXPECT_EQ(hits, 2);
}

TEST(InlineFunction, HoldsMoveOnlyCapture) {
  auto p = std::make_unique<int>(7);
  int got = 0;
  InlineFunction<48> fn([p = std::move(p), &got] { got = *p; });
  InlineFunction<48> moved = std::move(fn);
  EXPECT_FALSE(static_cast<bool>(fn));
  moved();
  EXPECT_EQ(got, 7);
}

TEST(InlineFunction, OversizedCaptureFallsBackToHeapAndDestroys) {
  auto tracker = std::make_shared<int>(0);
  struct Big {
    std::shared_ptr<int> t;
    char pad[64];  // force past the inline buffer
    void operator()() { ++*t; }
  };
  {
    InlineFunction<48> fn(Big{tracker, {}});
    EXPECT_EQ(tracker.use_count(), 2);
    fn();
  }
  EXPECT_EQ(*tracker, 1);
  EXPECT_EQ(tracker.use_count(), 1);  // heap cell destroyed on reset
}

TEST(InlineFunction, NullptrAndReassignment) {
  InlineFunction<48> fn(nullptr);
  EXPECT_FALSE(static_cast<bool>(fn));
  int runs = 0;
  fn = InlineFunction<48>([&runs] { ++runs; });
  fn();
  fn = nullptr;
  EXPECT_FALSE(static_cast<bool>(fn));
  EXPECT_EQ(runs, 1);
}

TEST(InlineFunction, DestroysInlineCaptureExactlyOnce) {
  auto tracker = std::make_shared<int>(0);
  {
    InlineFunction<48> fn([tracker] { ++*tracker; });
    EXPECT_EQ(tracker.use_count(), 2);
    InlineFunction<48> second = std::move(fn);
    EXPECT_EQ(tracker.use_count(), 2);  // relocated, not duplicated
  }
  EXPECT_EQ(tracker.use_count(), 1);
  EXPECT_EQ(*tracker, 0);  // never invoked, only destroyed
}

}  // namespace
}  // namespace rddr
