// End-to-end tests of the incoming/outgoing proxies over the simulated
// network, using small HTTP instances and the sqldb servers.
#include <gtest/gtest.h>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/deployment.h"
#include "rddr/plugins.h"
#include "proto/http/coding.h"
#include "proto/http/parser.h"
#include "services/http_service.h"
#include "services/static_server.h"
#include "sqldb/client.h"
#include "sqldb/server.h"

namespace rddr::core {
namespace {

using services::HttpClient;
using services::HttpServer;

class ProxyTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  sim::Network net{sim, 10 * sim::kMicrosecond};
  sim::Host host{sim, "node", 8, 4LL << 30};

  /// A toy instance: responds with `body` for every request, optionally
  /// appending a per-instance random token line.
  std::unique_ptr<HttpServer> make_instance(const std::string& address,
                                            const std::string& body) {
    HttpServer::Options o;
    o.address = address;
    auto server = std::make_unique<HttpServer>(net, host, o);
    server->set_handler([body](const http::Request&, services::Responder r) {
      r(http::make_response(200, body));
    });
    return server;
  }
};

TEST_F(ProxyTest, UnanimousResponseForwarded) {
  auto i0 = make_instance("svc-0:80", "same answer");
  auto i1 = make_instance("svc-1:80", "same answer");
  auto i2 = make_instance("svc-2:80", "same answer");

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80", "svc-2:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, cfg, &bus);

  int status = -2;
  Bytes body;
  HttpClient client(net, "client");
  client.get("svc:80", "/", [&](int s, const http::Response* r) {
    status = s;
    if (r) body = r->body;
  });
  sim.run_until_idle();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "same answer");
  EXPECT_EQ(proxy.stats().divergences, 0u);
  EXPECT_EQ(proxy.stats().units_compared, 1u);
  EXPECT_EQ(bus.count(), 0u);
}

TEST_F(ProxyTest, DivergenceBlockedWithInterventionPage) {
  auto i0 = make_instance("svc-0:80", "public data");
  auto i1 = make_instance("svc-1:80", "public data");
  auto i2 = make_instance("svc-2:80", "public data AND A SECRET");

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80", "svc-2:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, cfg, &bus);

  int status = -2;
  Bytes body;
  HttpClient client(net, "client");
  client.get("svc:80", "/", [&](int s, const http::Response* r) {
    status = s;
    if (r) body = r->body;
  });
  sim.run_until_idle();
  EXPECT_EQ(status, 403);
  EXPECT_NE(body.find("RDDR intervened"), Bytes::npos);
  EXPECT_EQ(body.find("SECRET"), Bytes::npos);
  EXPECT_EQ(proxy.stats().divergences, 1u);
  ASSERT_EQ(bus.count(), 1u);
}

TEST_F(ProxyTest, InstanceConnectionRefusedIsUnavailabilityNotDivergence) {
  auto i0 = make_instance("svc-0:80", "x");
  // svc-1:80 does not exist. An unreachable instance is a fault, not an
  // attack: the client is still refused (kStrict cannot verify), but it is
  // counted as unavailability and nothing is reported on the bus.
  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, cfg, &bus);

  int status = -2;
  HttpClient client(net, "client");
  client.get("svc:80", "/", [&](int s, const http::Response*) { status = s; });
  sim.run_until_idle();
  EXPECT_EQ(status, 403);  // intervention page
  EXPECT_EQ(proxy.stats().divergences, 0u);
  EXPECT_EQ(proxy.stats().instance_unreachable, 1u);
  EXPECT_EQ(bus.count(), 0u);
  // The upstream opened to svc-0 before the refusal must not leak.
  EXPECT_EQ(net.live_connections("svc-0"), 0u);
}

TEST_F(ProxyTest, TimeoutDisabledByDefaultHangs) {
  // Paper §IV-D: without the timeout mitigation, a hung instance hangs the
  // session (the DoS limitation).
  auto i0 = make_instance("svc-0:80", "x");
  HttpServer::Options o;
  o.address = "svc-1:80";
  HttpServer hung(net, host, o);
  hung.set_handler([](const http::Request&, services::Responder) {
    // Never responds.
  });

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  IncomingProxy proxy(net, host, cfg);

  int status = -2;
  HttpClient client(net, "client");
  client.get("svc:80", "/", [&](int s, const http::Response*) { status = s; });
  sim.run_until(10 * sim::kSecond);
  EXPECT_EQ(status, -2);  // still waiting: no divergence, no response
  EXPECT_EQ(proxy.stats().divergences, 0u);
}

TEST_F(ProxyTest, TimeoutMitigationAborts) {
  auto i0 = make_instance("svc-0:80", "x");
  HttpServer::Options o;
  o.address = "svc-1:80";
  HttpServer hung(net, host, o);
  hung.set_handler([](const http::Request&, services::Responder) {});

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.unit_timeout = sim::kSecond;
  IncomingProxy proxy(net, host, cfg);

  int status = -2;
  HttpClient client(net, "client");
  client.get("svc:80", "/", [&](int s, const http::Response*) { status = s; });
  sim.run_until(10 * sim::kSecond);
  EXPECT_EQ(status, 403);
  EXPECT_EQ(proxy.stats().timeouts, 1u);
}

TEST_F(ProxyTest, IdleTimeoutDisabledByDefaultKeepsSlowSessions) {
  // Without the idle-timeout knob a half-sent request pins its session
  // slot forever (the slowloris limitation the knob exists to close).
  auto i0 = make_instance("svc-0:80", "x");
  auto i1 = make_instance("svc-1:80", "x");

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  IncomingProxy proxy(net, host, cfg);

  auto conn = net.connect("svc:80", {.source = "client"});
  ASSERT_NE(conn, nullptr);
  conn->send("GET / HTTP/1.1\r\nHost: svc\r\nX-Slow: ");  // never finished
  sim.run_until(30 * sim::kSecond);
  EXPECT_EQ(proxy.active_sessions(), 1u);
  EXPECT_EQ(proxy.stats().idle_sheds, 0u);
}

TEST_F(ProxyTest, IdleTimeoutShedsSlowlorisDespiteByteTrickle) {
  // A slowloris sender trickles one header byte per tick: the connection
  // is never byte-idle, but no client unit ever completes. The idle
  // timeout is progress-based, so the session is still shed, with the
  // plugin's protocol-correct overload response.
  auto i0 = make_instance("svc-0:80", "x");
  auto i1 = make_instance("svc-1:80", "x");

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.idle_timeout = sim::kSecond;
  IncomingProxy proxy(net, host, cfg);

  auto conn = net.connect("svc:80", {.source = "client"});
  ASSERT_NE(conn, nullptr);
  Bytes got;
  conn->set_on_data([&](ByteView d) { got += Bytes(d); });
  conn->send("GET / HTTP/1.1\r\nHost: svc\r\nX-Slow: ");
  // One header byte every 400ms, forever short of "\r\n\r\n".
  std::function<void()> trickle = [&] {
    if (!conn->is_open()) return;
    conn->send("a");
    sim.schedule(400 * sim::kMillisecond, trickle);
  };
  sim.schedule(400 * sim::kMillisecond, trickle);

  sim.run_until(10 * sim::kSecond);
  EXPECT_EQ(proxy.stats().idle_sheds, 1u);
  EXPECT_EQ(proxy.active_sessions(), 0u);
  EXPECT_NE(got.find("503"), Bytes::npos);       // overload_response()
  EXPECT_NE(got.find("Retry-After"), Bytes::npos);
  EXPECT_EQ(proxy.stats().divergences, 0u);  // shedding is not intervention
}

TEST_F(ProxyTest, IdleTimeoutSparedByProtocolProgress) {
  // Requests spaced wider than the idle window apart would each be shed;
  // spaced inside it, every completed unit resets the clock and the
  // persistent session survives all of them.
  auto i0 = make_instance("svc-0:80", "ok");
  auto i1 = make_instance("svc-1:80", "ok");

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.idle_timeout = sim::kSecond;
  IncomingProxy proxy(net, host, cfg);

  auto conn = net.connect("svc:80", {.source = "client"});
  ASSERT_NE(conn, nullptr);
  size_t responses = 0;
  http::ResponseParser parser;
  conn->set_on_data([&](ByteView d) {
    parser.feed(d);
    responses += parser.take().size();
  });
  const Bytes req = "GET / HTTP/1.1\r\nHost: svc\r\n\r\n";
  for (int i = 0; i < 5; ++i)
    sim.schedule(i * 600 * sim::kMillisecond, [&, i] {
      if (conn->is_open()) conn->send(req);
    });
  // Last request lands at 2.4s; at 3s all five answered and the window
  // (rearmed by that final response) has not yet expired.
  sim.run_until(3 * sim::kSecond);
  EXPECT_EQ(responses, 5u);
  EXPECT_EQ(proxy.stats().idle_sheds, 0u);
  // ... and once the client goes quiet for a full window, the proxy
  // reclaims the slot.
  sim.run_until(30 * sim::kSecond);
  EXPECT_EQ(proxy.stats().idle_sheds, 1u);
  EXPECT_EQ(proxy.active_sessions(), 0u);
}

TEST_F(ProxyTest, FilterPairAbsorbsPerInstanceTokens) {
  // Each instance embeds its own random token; with the filter pair the
  // client sees instance 0's page and no divergence fires.
  auto make_tokened = [&](const std::string& address, uint64_t seed) {
    HttpServer::Options o;
    o.address = address;
    auto server = std::make_unique<HttpServer>(net, host, o);
    auto rng = std::make_shared<Rng>(seed);
    server->set_handler(
        [rng](const http::Request&, services::Responder r) {
          r(http::make_response(
              200, "<input value=\"" + rng->alnum_token(24) + "\">ok"));
        });
    return server;
  };
  auto i0 = make_tokened("svc-0:80", 1);
  auto i1 = make_tokened("svc-1:80", 2);
  auto i2 = make_tokened("svc-2:80", 3);

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80", "svc-2:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.filter_pair = true;
  IncomingProxy proxy(net, host, cfg);

  int status = -2;
  HttpClient client(net, "client");
  client.get("svc:80", "/", [&](int s, const http::Response*) { status = s; });
  sim.run_until_idle();
  EXPECT_EQ(status, 200);
  EXPECT_EQ(proxy.stats().divergences, 0u);
}

TEST_F(ProxyTest, WithoutFilterPairTokensCauseFalsePositive) {
  // Ablation: the same deployment WITHOUT de-noising blocks benign
  // traffic — why §IV-B2 exists.
  auto make_tokened = [&](const std::string& address, uint64_t seed) {
    HttpServer::Options o;
    o.address = address;
    auto server = std::make_unique<HttpServer>(net, host, o);
    auto rng = std::make_shared<Rng>(seed);
    server->set_handler(
        [rng](const http::Request&, services::Responder r) {
          r(http::make_response(
              200, "<input value=\"" + rng->alnum_token(24) + "\">ok"));
        });
    return server;
  };
  auto i0 = make_tokened("svc-0:80", 1);
  auto i1 = make_tokened("svc-1:80", 2);
  auto i2 = make_tokened("svc-2:80", 3);

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80", "svc-2:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.filter_pair = false;
  IncomingProxy proxy(net, host, cfg);

  int status = -2;
  HttpClient client(net, "client");
  client.get("svc:80", "/", [&](int s, const http::Response*) { status = s; });
  sim.run_until_idle();
  EXPECT_EQ(status, 403);
  EXPECT_EQ(proxy.stats().divergences, 1u);
}

TEST_F(ProxyTest, PipelinedRequestsAllCompared) {
  auto i0 = make_instance("svc-0:80", "r");
  auto i1 = make_instance("svc-1:80", "r");
  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  IncomingProxy proxy(net, host, cfg);

  // Raw pipelined connection (the HttpClient closes after one response).
  auto conn = net.connect("svc:80", {.source = "client"});
  http::Request r1, r2, r3;
  r1.method = r2.method = r3.method = "GET";
  r1.target = "/a";
  r2.target = "/b";
  r3.target = "/c";
  conn->send(r1.to_bytes() + r2.to_bytes() + r3.to_bytes());
  Bytes got;
  conn->set_on_data([&](ByteView d) { got += Bytes(d); });
  sim.run_until_idle();
  EXPECT_EQ(proxy.stats().units_replicated, 3u);
  EXPECT_EQ(proxy.stats().units_compared, 3u);
  http::ResponseParser rp;
  rp.feed(got);
  EXPECT_EQ(rp.take().size(), 3u);
}

TEST_F(ProxyTest, CompressedResponsesDiffedDecoded) {
  // End-to-end §IV-B1: instances serve xz77-compressed bodies; RDDR's HTTP
  // plugin decodes before diffing. Identical documents pass; a tampered
  // instance diverges even though every compressed byte stream differs
  // from the others only after decoding.
  auto make_wsgx = [&](const std::string& address, const Bytes& doc) {
    services::StaticFileServer::Options o;
    o.address = address;
    o.version = "1.13.4";
    auto s = std::make_unique<services::StaticFileServer>(net, host, o);
    s->add_document("/page", doc);
    return s;
  };
  Bytes doc = "<html><body>repeated content repeated content</body></html>";
  auto i0 = make_wsgx("svc-0:80", doc);
  auto i1 = make_wsgx("svc-1:80", doc);

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, cfg, &bus);

  http::Request req;
  req.method = "GET";
  req.target = "/page";
  req.headers.set("Accept-Encoding", "xz77");
  int status = -2;
  Bytes body;
  http::HeaderMap headers;
  HttpClient client(net, "client");
  client.request("svc:80", std::move(req),
                 [&](int s, const http::Response* r) {
                   status = s;
                   if (r) {
                     body = r->body;
                     headers = r->headers;
                   }
                 });
  sim.run_until_idle();
  ASSERT_EQ(status, 200);
  EXPECT_EQ(headers.get("Content-Encoding").value(), "xz77");
  EXPECT_EQ(http::xz77_decompress(body).value(), doc);
  EXPECT_EQ(bus.count(), 0u);

  // Tamper with one instance's document: blocked despite compression.
  auto i2 = make_wsgx("svc-2:80", doc + "<!-- secret -->");
  IncomingProxy::Config cfg2 = cfg;
  cfg2.listen_address = "svc2:80";
  cfg2.instance_addresses = {"svc-0:80", "svc-2:80"};
  IncomingProxy proxy2(net, host, cfg2, &bus);
  http::Request req2;
  req2.method = "GET";
  req2.target = "/page";
  req2.headers.set("Accept-Encoding", "xz77");
  int status2 = -2;
  HttpClient client2(net, "client");
  client2.request("svc2:80", std::move(req2),
                  [&](int s, const http::Response*) { status2 = s; });
  sim.run_until_idle();
  EXPECT_EQ(status2, 403);
  EXPECT_EQ(bus.count(), 1u);
}

// ---------- Outgoing proxy ----------

TEST_F(ProxyTest, OutgoingProxyMergesAgreeingRequests) {
  // Backend sqldb instance.
  auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
  {
    sqldb::Session s(*db, "postgres");
    s.execute("CREATE TABLE t (a int); INSERT INTO t VALUES (7);"
              "GRANT SELECT ON t TO app;");
  }
  sqldb::SqlServer::Options so;
  so.address = "backend:5432";
  sqldb::SqlServer backend(net, host, db, so);

  OutgoingProxy::Config cfg;
  cfg.listen_address = "rddr-out:5432";
  cfg.backend_address = "backend:5432";
  cfg.group_size = 3;
  cfg.plugin = std::make_shared<PgPlugin>();
  DivergenceBus bus(sim);
  OutgoingProxy proxy(net, host, cfg, &bus);

  // Three "instances" issue the identical query with one flow label.
  std::vector<std::unique_ptr<sqldb::PgClient>> clients;
  std::vector<sqldb::QueryOutcome> outcomes(3);
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<sqldb::PgClient>(
        net, "inst-" + std::to_string(i), "rddr-out:5432", "app", "flow-1"));
    clients[static_cast<size_t>(i)]->query(
        "SELECT a FROM t;", [&outcomes, i](sqldb::QueryOutcome out) {
          outcomes[static_cast<size_t>(i)] = std::move(out);
        });
  }
  sim.run_until_idle();
  for (const auto& out : outcomes) {
    ASSERT_FALSE(out.failed()) << out.error_message;
    ASSERT_EQ(out.rows.size(), 1u);
    EXPECT_EQ(out.rows[0][0].value(), "7");
  }
  // The backend served the query ONCE (merged), not three times.
  EXPECT_EQ(backend.queries_served(), 1u);
  EXPECT_EQ(bus.count(), 0u);
}

TEST_F(ProxyTest, OutgoingProxyCatchesDivergingRequest) {
  auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
  sqldb::SqlServer::Options so;
  so.address = "backend:5432";
  sqldb::SqlServer backend(net, host, db, so);

  OutgoingProxy::Config cfg;
  cfg.listen_address = "rddr-out:5432";
  cfg.backend_address = "backend:5432";
  cfg.group_size = 3;
  cfg.plugin = std::make_shared<PgPlugin>();
  cfg.filter_pair = true;
  DivergenceBus bus(sim);
  OutgoingProxy proxy(net, host, cfg, &bus);

  std::vector<std::unique_ptr<sqldb::PgClient>> clients;
  int lost = 0;
  for (int i = 0; i < 3; ++i) {
    clients.push_back(std::make_unique<sqldb::PgClient>(
        net, "inst-" + std::to_string(i), "rddr-out:5432", "app", "flow-1"));
    std::string sql = i < 2 ? "SELECT 1;" : "SELECT 1; -- sanitized";
    clients[static_cast<size_t>(i)]->query(
        sql, [&lost](sqldb::QueryOutcome out) {
          if (out.connection_lost) ++lost;
        });
  }
  sim.run_until_idle();
  EXPECT_EQ(lost, 3);                       // all instances cut off
  EXPECT_EQ(backend.queries_served(), 0u);  // nothing reached the backend
  EXPECT_EQ(bus.count(), 1u);
}

TEST_F(ProxyTest, OutgoingProxyGroupWindowCatchesMissingInstance) {
  auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
  sqldb::SqlServer::Options so;
  so.address = "backend:5432";
  sqldb::SqlServer backend(net, host, db, so);

  OutgoingProxy::Config cfg;
  cfg.listen_address = "rddr-out:5432";
  cfg.backend_address = "backend:5432";
  cfg.group_size = 3;
  cfg.plugin = std::make_shared<PgPlugin>();
  cfg.group_window = 50 * sim::kMillisecond;
  DivergenceBus bus(sim);
  OutgoingProxy proxy(net, host, cfg, &bus);

  // Only two of three instances dial the backend.
  sqldb::PgClient a(net, "inst-0", "rddr-out:5432", "app", "flow-1");
  sqldb::PgClient b(net, "inst-1", "rddr-out:5432", "app", "flow-1");
  sim.run_until_idle();
  ASSERT_EQ(bus.count(), 1u);
  EXPECT_NE(bus.events()[0].reason.find("2 of 3"), std::string::npos);
}

TEST_F(ProxyTest, BusAbortsIncomingSessionsOnOutgoingDivergence) {
  // Incoming proxy guards HTTP instances that each call a backend through
  // the outgoing proxy; when the outgoing proxy reports divergence, the
  // client's session is aborted with the intervention page.
  DivergenceBus bus(sim);

  IncomingProxy::Config in_cfg;
  in_cfg.listen_address = "svc:80";
  in_cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  in_cfg.plugin = std::make_shared<HttpPlugin>();
  IncomingProxy incoming(net, host, in_cfg, &bus);

  // Instances that never answer (they would "wait for the backend").
  HttpServer::Options o0, o1;
  o0.address = "svc-0:80";
  o1.address = "svc-1:80";
  HttpServer s0(net, host, o0), s1(net, host, o1);
  auto hang = [](const http::Request&, services::Responder) {};
  s0.set_handler(hang);
  s1.set_handler(hang);

  int status = -2;
  Bytes body;
  HttpClient client(net, "client");
  client.get("svc:80", "/", [&](int s, const http::Response* r) {
    status = s;
    if (r) body = r->body;
  });
  // While the client waits, the outgoing proxy reports divergence.
  sim.schedule(5 * sim::kMillisecond, [&] {
    DivergenceRecord rec;
    rec.time = sim.now();
    rec.proxy = "rddr-out";
    rec.verdict = "intervention";
    rec.reason = "backend query diverged";
    bus.report(rec);
  });
  sim.run_until_idle();
  EXPECT_EQ(status, 403);
  EXPECT_NE(body.find("RDDR intervened"), Bytes::npos);
}

TEST_F(ProxyTest, BusAbortsOutgoingGroupsOnIncomingDivergence) {
  // The reverse direction: the outgoing proxy holds an active flow group
  // when the incoming proxy reports divergence — the group (instance legs
  // and backend leg) must be torn down so nothing tainted reaches the
  // backend.
  auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
  sqldb::SqlServer::Options so;
  so.address = "backend:5432";
  sqldb::SqlServer backend(net, host, db, so);

  OutgoingProxy::Config cfg;
  cfg.listen_address = "rddr-out:5432";
  cfg.backend_address = "backend:5432";
  cfg.group_size = 2;
  cfg.plugin = std::make_shared<PgPlugin>();
  DivergenceBus bus(sim);
  OutgoingProxy proxy(net, host, cfg, &bus);

  sqldb::PgClient a(net, "inst-0", "rddr-out:5432", "app", "flow-1");
  sqldb::PgClient b(net, "inst-1", "rddr-out:5432", "app", "flow-1");
  sim.run_until(20 * sim::kMillisecond);
  ASSERT_FALSE(a.broken());
  ASSERT_FALSE(b.broken());

  DivergenceRecord rec;
  rec.time = sim.now();
  rec.proxy = "rddr-in";
  rec.verdict = "intervention";
  rec.reason = "client response diverged";
  bus.report(rec);
  sim.run_until_idle();
  EXPECT_TRUE(a.broken());
  EXPECT_TRUE(b.broken());
  EXPECT_EQ(proxy.stats().divergences, 1u);
  EXPECT_EQ(net.live_connections("backend"), 0u);
}

}  // namespace
}  // namespace rddr::core
