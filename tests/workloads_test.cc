// Tests for the TPC-H-lite / pgbench-lite generators and the client pool
// driver: the queries must run cleanly and produce identical results on
// both engine personalities (the N-versioning prerequisite).
#include <gtest/gtest.h>

#include "netsim/host.h"
#include "netsim/network.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"
#include "workloads/tpch.h"

namespace rddr::workloads {
namespace {

TEST(Tpch, LoaderIsDeterministic) {
  sqldb::Database a(sqldb::minipg_info("13.0"));
  sqldb::Database b(sqldb::minipg_info("13.0"));
  load_tpch(a, TpchScale{1.0}, 42);
  load_tpch(b, TpchScale{1.0}, 42);
  EXPECT_EQ(a.total_rows(), b.total_rows());
  EXPECT_EQ(a.approx_bytes(), b.approx_bytes());
  const auto* la = a.find_table("lineitem");
  const auto* lb = b.find_table("lineitem");
  ASSERT_NE(la, nullptr);
  ASSERT_EQ(la->rows.size(), lb->rows.size());
  EXPECT_GE(la->rows.size(), 1700u);
  for (size_t i = 0; i < la->rows.size(); i += 97)
    EXPECT_TRUE(la->rows[i] == lb->rows[i]) << "row " << i;
}

TEST(Tpch, AllQueriesExecuteWithoutError) {
  sqldb::Database db(sqldb::minipg_info("13.0"));
  load_tpch(db, TpchScale{1.0}, 42);
  sqldb::Session s(db, "postgres");
  int idx = 0;
  for (const auto& q : tpch_queries()) {
    auto r = s.execute(q);
    ASSERT_EQ(r.statements.size(), 1u) << "query " << idx;
    EXPECT_FALSE(r.statements[0].failed())
        << "query " << idx << ": " << r.statements[0].error_message;
    ++idx;
  }
  EXPECT_GE(idx, 15);
}

TEST(Tpch, Q1AggregatesAreSane) {
  sqldb::Database db(sqldb::minipg_info("13.0"));
  load_tpch(db, TpchScale{1.0}, 42);
  sqldb::Session s(db, "postgres");
  auto r = s.execute(tpch_queries()[0]).statements[0];
  ASSERT_FALSE(r.failed()) << r.error_message;
  // A/N/R x O/F grouping: between 1 and 6 groups, each with count > 0.
  ASSERT_GE(r.rows.size(), 1u);
  ASSERT_LE(r.rows.size(), 6u);
  int64_t total = 0;
  for (const auto& row : r.rows) {
    auto cnt = std::stoll(row.back().value());
    EXPECT_GT(cnt, 0);
    total += cnt;
  }
  // All lineitem rows shipped before the cutoff are accounted for.
  auto check = s.execute(
      "SELECT count(*) FROM lineitem WHERE l_shipdate <= '1998-09-01';");
  EXPECT_EQ(total, std::stoll(check.statements[0].rows[0][0].value()));
}

TEST(Tpch, IdenticalResultsAcrossEnginePersonalities) {
  // The paper's deployability requirement: with ORDER BY everywhere, the
  // minipg and roachdb personalities return identical result sets.
  sqldb::Database pg(sqldb::minipg_info("13.0"));
  sqldb::Database roach(sqldb::roachdb_info());
  load_tpch(pg, TpchScale{0.5}, 7);
  load_tpch(roach, TpchScale{0.5}, 7);
  sqldb::Session s1(pg, "postgres"), s2(roach, "postgres");
  int idx = 0;
  for (const auto& q : tpch_queries()) {
    auto r1 = s1.execute(q).statements[0];
    auto r2 = s2.execute(q).statements[0];
    ASSERT_FALSE(r1.failed()) << idx << ": " << r1.error_message;
    ASSERT_FALSE(r2.failed()) << idx << ": " << r2.error_message;
    EXPECT_EQ(r1.columns, r2.columns) << "query " << idx;
    EXPECT_EQ(r1.rows, r2.rows) << "query " << idx;
    ++idx;
  }
}

TEST(Pgbench, LoadAndLookup) {
  sqldb::Database db(sqldb::minipg_info("13.0"));
  load_pgbench(db, 5000, 3);
  sqldb::Session s(db, "postgres");
  auto r = s.execute("SELECT count(*) FROM pgbench_accounts;").statements[0];
  EXPECT_EQ(r.rows[0][0].value(), "5000");
  Rng rng(9);
  for (int i = 0; i < 20; ++i) {
    auto q = pgbench_select_tx(rng, 5000);
    auto out = s.execute(q).statements[0];
    ASSERT_FALSE(out.failed());
    ASSERT_EQ(out.rows.size(), 1u);
    // Indexed: exactly one row visited.
    EXPECT_EQ(out.rows_scanned, 1);
  }
}

TEST(Driver, ClientPoolCompletesAllTransactions) {
  sim::Simulator simulator;
  sim::Network net(simulator, 10 * sim::kMicrosecond);
  sim::Host host(simulator, "db-host", 8, 8LL << 30);
  auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
  load_pgbench(*db, 1000, 3);
  sqldb::SqlServer::Options so;
  so.address = "pg:5432";
  so.cpu_per_query = 1e-3;
  sqldb::SqlServer server(net, host, db, so);

  ClientPoolOptions opts;
  opts.address = "pg:5432";
  opts.clients = 4;
  opts.transactions_per_client = 25;
  opts.next_query = [](Rng& rng, int, int) {
    return pgbench_select_tx(rng, 1000);
  };
  auto result = run_client_pool(simulator, net, opts);
  EXPECT_EQ(result.completed, 100u);
  EXPECT_EQ(result.failed, 0u);
  EXPECT_GT(result.throughput_tps(), 0.0);
  EXPECT_GT(result.latency_ms.mean(), 0.9);  // >= 1ms CPU + network
  EXPECT_EQ(server.queries_served(), 100u);
}

TEST(Driver, ThroughputSaturatesWithCores) {
  // Sanity of the performance substrate: 4 clients on a 2-core host with
  // 1ms/query saturate at ~2000 tps.
  sim::Simulator simulator;
  sim::Network net(simulator, sim::kMicrosecond);
  sim::Host host(simulator, "db-host", 2, 8LL << 30);
  auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
  load_pgbench(*db, 1000, 3);
  sqldb::SqlServer::Options so;
  so.address = "pg:5432";
  so.cpu_per_query = 1e-3;
  so.cpu_per_row = 0;
  sqldb::SqlServer server(net, host, db, so);

  ClientPoolOptions opts;
  opts.address = "pg:5432";
  opts.clients = 8;
  opts.transactions_per_client = 50;
  opts.next_query = [](Rng& rng, int, int) {
    return pgbench_select_tx(rng, 1000);
  };
  auto result = run_client_pool(simulator, net, opts);
  EXPECT_EQ(result.completed, 400u);
  EXPECT_NEAR(result.throughput_tps(), 2000.0, 150.0);
}

}  // namespace
}  // namespace rddr::workloads
