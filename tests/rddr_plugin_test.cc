// Unit tests for the protocol plugins: framing, diffing, known variance,
// ephemeral-token capture/restore.
#include <gtest/gtest.h>

#include "proto/http/coding.h"
#include "proto/http/parser.h"
#include "proto/pgwire/pgwire.h"
#include "rddr/plugins.h"

namespace rddr::core {
namespace {

Unit make_unit(Bytes data, std::string kind) {
  return Unit{std::move(data), std::move(kind)};
}

Unit http_response_unit(int status, const std::string& body,
                        const std::string& content_type = "text/html") {
  http::Response r = http::make_response(status, body, content_type);
  return make_unit(r.to_bytes(), "http-resp");
}

// ---------- TcpLinePlugin ----------

TEST(TcpLinePlugin, FramesLines) {
  TcpLinePlugin plugin;
  auto framer = plugin.make_framer(Direction::kServerToClient);
  framer->feed("hello\nwor");
  auto units = framer->take();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].data, "hello\n");
  framer->feed("ld\n");
  units = framer->take();
  ASSERT_EQ(units.size(), 1u);
  EXPECT_EQ(units[0].data, "world\n");
  EXPECT_EQ(framer->unconsumed(), "");
}

TEST(TcpLinePlugin, ExactCompareWithoutFilterPair) {
  TcpLinePlugin plugin;
  CompareContext ctx;
  auto same = plugin.compare(
      {make_unit("abc\n", "line"), make_unit("abc\n", "line")}, ctx);
  EXPECT_FALSE(same.divergent);
  auto diff = plugin.compare(
      {make_unit("abc\n", "line"), make_unit("abd\n", "line")}, ctx);
  EXPECT_TRUE(diff.divergent);
}

TEST(TcpLinePlugin, FilterPairMasksNoise) {
  TcpLinePlugin plugin;
  CompareContext ctx;
  ctx.filter_pair = true;
  // Pair (0,1) differ in a token; instance 2 with its own token passes.
  auto ok = plugin.compare({make_unit("id=aaaa ok\n", "line"),
                            make_unit("id=bbbb ok\n", "line"),
                            make_unit("id=cccc ok\n", "line")},
                           ctx);
  EXPECT_FALSE(ok.divergent);
  // Instance 2 differs outside the noise region: caught.
  auto bad = plugin.compare({make_unit("id=aaaa ok\n", "line"),
                             make_unit("id=bbbb ok\n", "line"),
                             make_unit("id=cccc KO\n", "line")},
                            ctx);
  EXPECT_TRUE(bad.divergent);
}

// ---------- HttpPlugin ----------

TEST(HttpPlugin, IdenticalResponsesAgree) {
  HttpPlugin plugin;
  CompareContext ctx;
  KnownVariance kv;
  ctx.variance = &kv;
  auto a = http_response_unit(200, "<h1>hi</h1>");
  auto b = http_response_unit(200, "<h1>hi</h1>");
  EXPECT_FALSE(plugin.compare({a, b}, ctx).divergent);
}

TEST(HttpPlugin, StatusMismatchDiverges) {
  HttpPlugin plugin;
  CompareContext ctx;
  auto a = http_response_unit(200, "x");
  auto b = http_response_unit(403, "x");
  EXPECT_TRUE(plugin.compare({a, b}, ctx).divergent);
}

TEST(HttpPlugin, BodyMismatchDiverges) {
  HttpPlugin plugin;
  CompareContext ctx;
  auto a = http_response_unit(200, "public");
  auto b = http_response_unit(200, "public + SECRET");
  auto out = plugin.compare({a, b}, ctx);
  EXPECT_TRUE(out.divergent);
  EXPECT_FALSE(out.reason.empty());
}

TEST(HttpPlugin, KnownVarianceHeadersIgnored) {
  HttpPlugin plugin;
  KnownVariance kv;  // default ignores Server and Date
  CompareContext ctx;
  ctx.variance = &kv;
  http::Response ra = http::make_response(200, "same");
  ra.headers.set("Server", "wsgx/1.13.2");
  http::Response rb = http::make_response(200, "same");
  rb.headers.set("Server", "wsgx/1.13.4");
  auto out = plugin.compare({make_unit(ra.to_bytes(), "http-resp"),
                             make_unit(rb.to_bytes(), "http-resp")},
                            ctx);
  EXPECT_FALSE(out.divergent);
}

TEST(HttpPlugin, HeaderDifferenceNotIgnoredDiverges) {
  HttpPlugin plugin;
  KnownVariance kv;
  CompareContext ctx;
  ctx.variance = &kv;
  http::Response ra = http::make_response(200, "same");
  ra.headers.set("X-Custom", "a");
  http::Response rb = http::make_response(200, "same");
  rb.headers.set("X-Custom", "b");
  EXPECT_TRUE(plugin.compare({make_unit(ra.to_bytes(), "http-resp"),
                              make_unit(rb.to_bytes(), "http-resp")},
                             ctx)
                  .divergent);
}

TEST(HttpPlugin, CompressedBodiesComparedDecoded) {
  HttpPlugin plugin;
  CompareContext ctx;
  Bytes body = "line one\nline two\nline one\nline two\n";
  http::Response ra;
  ra.status = 200;
  ra.headers.set("Content-Encoding", "xz77");
  ra.body = http::xz77_compress(body);
  ra.headers.set("Content-Length", std::to_string(ra.body.size()));
  http::Response rb = ra;
  auto out = plugin.compare({make_unit(ra.to_bytes(), "http-resp"),
                             make_unit(rb.to_bytes(), "http-resp")},
                            ctx);
  EXPECT_FALSE(out.divergent);
  // Different decoded content diverges even when lengths coincide.
  http::Response rc;
  rc.status = 200;
  rc.headers.set("Content-Encoding", "xz77");
  rc.body = http::xz77_compress("line one\nline 2wo\nline one\nline two\n");
  rc.headers.set("Content-Length", std::to_string(rc.body.size()));
  EXPECT_TRUE(plugin.compare({make_unit(ra.to_bytes(), "http-resp"),
                              make_unit(rc.to_bytes(), "http-resp")},
                             ctx)
                  .divergent);
}

TEST(HttpPlugin, JsonBodiesComparedStructurally) {
  HttpPlugin plugin;
  CompareContext ctx;
  auto a = http_response_unit(200, R"({"a":1,"b":2})", "application/json");
  auto b = http_response_unit(200, R"({"b":2,"a":1})", "application/json");
  EXPECT_FALSE(plugin.compare({a, b}, ctx).divergent);
  auto c = http_response_unit(200, R"({"b":2,"a":9})", "application/json");
  EXPECT_TRUE(plugin.compare({a, c}, ctx).divergent);
}

TEST(HttpPlugin, FilterPairAbsorbsCsrfNoise) {
  HttpPlugin plugin;
  CompareContext ctx;
  ctx.filter_pair = true;
  auto page = [](const std::string& tok) {
    return http_response_unit(
        200, "<form><input name=\"user_token\" value=\"" + tok +
                 "\"></form>");
  };
  auto out = plugin.compare({page("aaaaaaaaaaaaaaaa"),
                             page("bbbbbbbbbbbbbbbb"),
                             page("cccccccccccccccc")},
                            ctx);
  EXPECT_FALSE(out.divergent) << out.reason;
}

TEST(HttpPlugin, CsrfTokensHarvestedOnForward) {
  HttpPlugin plugin;
  SessionState state;
  state.n_instances = 3;
  CompareContext ctx;
  ctx.filter_pair = true;
  ctx.session = &state;
  auto page = [](const std::string& tok) {
    return http_response_unit(
        200, "<input value=\"" + tok + "\">");
  };
  auto fwd = plugin.on_forward_downstream(
      {page("aaaaaaaaaaaaaaaa"), page("bbbbbbbbbbbbbbbb"),
       page("cccccccccccccccc")},
      ctx);
  // Instance 0's bytes are forwarded (canonical token = instance 0's).
  EXPECT_NE(fwd.find("aaaaaaaaaaaaaaaa"), Bytes::npos);
  ASSERT_EQ(state.tokens.size(), 1u);
  const auto& per = state.tokens.begin()->second;
  EXPECT_EQ(per[1], "bbbbbbbbbbbbbbbb");
  EXPECT_EQ(per[2], "cccccccccccccccc");
}

TEST(HttpPlugin, RewriteRestoresPerInstanceToken) {
  HttpPlugin plugin;
  SessionState state;
  state.n_instances = 3;
  state.tokens["aaaaaaaaaaaaaaaa"] = {"aaaaaaaaaaaaaaaa", "bbbbbbbbbbbbbbbb",
                                      "cccccccccccccccc"};
  CompareContext ctx;
  ctx.session = &state;
  http::Request req;
  req.method = "POST";
  req.target = "/submit";
  req.body = "id=1&user_token=aaaaaaaaaaaaaaaa";
  Unit u{req.to_bytes(), "http-req"};
  Bytes for_1 = plugin.rewrite_for_instance(u, 1, ctx);
  EXPECT_NE(for_1.find("bbbbbbbbbbbbbbbb"), Bytes::npos);
  EXPECT_EQ(for_1.find("aaaaaaaaaaaaaaaa"), Bytes::npos);
  // Token still present until the LAST instance is rewritten.
  EXPECT_EQ(state.tokens.size(), 1u);
  Bytes for_0 = plugin.rewrite_for_instance(u, 0, ctx);
  EXPECT_NE(for_0.find("aaaaaaaaaaaaaaaa"), Bytes::npos);
  Bytes for_2 = plugin.rewrite_for_instance(u, 2, ctx);
  EXPECT_NE(for_2.find("cccccccccccccccc"), Bytes::npos);
  // Deleted after full fan-out (paper: tokens are ephemeral).
  EXPECT_TRUE(state.tokens.empty());
}

TEST(HttpPlugin, RewriteFixesContentLengthForUnequalTokens) {
  HttpPlugin plugin;
  SessionState state;
  state.n_instances = 2;
  state.tokens["aaaaaaaaaaaaaaaa"] = {"aaaaaaaaaaaaaaaa", "bbbbbbbbbbbb"};
  CompareContext ctx;
  ctx.session = &state;
  http::Request req;
  req.method = "POST";
  req.target = "/s";
  req.body = "user_token=aaaaaaaaaaaaaaaa";
  Unit u{req.to_bytes(), "http-req"};
  Bytes rewritten = plugin.rewrite_for_instance(u, 1, ctx);
  http::RequestParser parser;
  parser.feed(rewritten);
  auto msgs = parser.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].body, "user_token=bbbbbbbbbbbb");
  EXPECT_EQ(msgs[0].headers.get("Content-Length").value(),
            std::to_string(msgs[0].body.size()));
}

TEST(HttpPlugin, InterventionPageIsServed) {
  HttpPlugin plugin;
  Bytes page = plugin.intervention_response();
  EXPECT_NE(page.find("403"), Bytes::npos);
  EXPECT_NE(page.find("RDDR intervened"), Bytes::npos);
}

// ---------- PgPlugin ----------

TEST(PgPlugin, FramesTypedMessagesAndStartup) {
  PgPlugin plugin;
  auto c2s = plugin.make_framer(Direction::kClientToServer);
  c2s->feed(pg::build_startup({{"user", "u"}}));
  c2s->feed(pg::build_query("SELECT 1;"));
  auto units = c2s->take();
  ASSERT_EQ(units.size(), 2u);
  EXPECT_EQ(units[0].kind, "pg:startup");
  EXPECT_EQ(units[1].kind, "pg:Q");
}

TEST(PgPlugin, BackendKeyDataIgnored) {
  PgPlugin plugin;
  KnownVariance kv;
  CompareContext ctx;
  ctx.variance = &kv;
  auto key = [](uint32_t pid) {
    return Unit{pg::build_backend_key_data(pid, pid * 7), "pg:K"};
  };
  EXPECT_FALSE(plugin.compare({key(100), key(200), key(300)}, ctx).divergent);
}

TEST(PgPlugin, ServerVersionParamIgnoredByDefault) {
  PgPlugin plugin;
  KnownVariance kv;
  CompareContext ctx;
  ctx.variance = &kv;
  auto param = [](const char* v) {
    return Unit{pg::build_parameter_status("server_version", v), "pg:S"};
  };
  EXPECT_FALSE(
      plugin.compare({param("10.7"), param("10.7"), param("10.9")}, ctx)
          .divergent);
}

TEST(PgPlugin, OtherParamMismatchDiverges) {
  PgPlugin plugin;
  KnownVariance kv;
  CompareContext ctx;
  ctx.variance = &kv;
  auto param = [](const char* v) {
    return Unit{pg::build_parameter_status("server_encoding", v), "pg:S"};
  };
  EXPECT_TRUE(
      plugin.compare({param("UTF8"), param("UTF8"), param("LATIN1")}, ctx)
          .divergent);
}

TEST(PgPlugin, DataRowMismatchDiverges) {
  PgPlugin plugin;
  CompareContext ctx;
  auto row = [](const char* v) {
    return Unit{pg::build_data_row({std::string(v)}), "pg:D"};
  };
  EXPECT_FALSE(plugin.compare({row("alice"), row("alice")}, ctx).divergent);
  EXPECT_TRUE(plugin.compare({row("alice"), row("mallory")}, ctx).divergent);
}

TEST(PgPlugin, NoticeCountMismatchIsKindMismatch) {
  // Vulnerable instance emits a NOTICE where the fixed one sends the row —
  // the k-th unit kinds differ and that alone is divergence.
  PgPlugin plugin;
  CompareContext ctx;
  Unit notice{pg::build_notice("leak 42, 1000"), "pg:N"};
  Unit row{pg::build_data_row({std::string("42")}), "pg:D"};
  auto out = plugin.compare({notice, notice, row}, ctx);
  EXPECT_TRUE(out.divergent);
  EXPECT_NE(out.reason.find("kind mismatch"), std::string::npos);
}

TEST(PgPlugin, QueryMergeCompare) {
  // Outgoing-proxy direction: the DVWA high-security instance sends a
  // sanitised query while the filter pair sends the raw injection.
  PgPlugin plugin;
  CompareContext ctx;
  ctx.filter_pair = true;
  auto q = [](const std::string& sql) { return Unit{pg::build_query(sql), "pg:Q"}; };
  std::string inject =
      "SELECT * FROM users WHERE id = '' OR '1'='1' ORDER BY 1;";
  std::string sanitized =
      "SELECT * FROM users WHERE id = ''' OR ''1''=''1' ORDER BY 1;";
  EXPECT_FALSE(
      plugin.compare({q(inject), q(inject), q(inject)}, ctx).divergent);
  EXPECT_TRUE(
      plugin.compare({q(inject), q(inject), q(sanitized)}, ctx).divergent);
}

TEST(PgPlugin, InterventionIsErrorResponse) {
  PgPlugin plugin;
  Bytes b = plugin.intervention_response();
  ASSERT_FALSE(b.empty());
  EXPECT_EQ(b[0], 'E');
}

// ---------- JsonLinesPlugin ----------

TEST(JsonLinesPlugin, StructuralEquality) {
  JsonLinesPlugin plugin;
  CompareContext ctx;
  Unit a{"{\"x\": 1, \"y\": 2}\n", "line"};
  Unit b{"{\"y\":2,\"x\":1}\n", "line"};
  EXPECT_FALSE(plugin.compare({a, b}, ctx).divergent);
  Unit c{"{\"y\":3,\"x\":1}\n", "line"};
  EXPECT_TRUE(plugin.compare({a, c}, ctx).divergent);
}

TEST(JsonLinesPlugin, MalformedComparedAsBytes) {
  JsonLinesPlugin plugin;
  CompareContext ctx;
  Unit a{"not json\n", "line"};
  Unit b{"not json\n", "line"};
  EXPECT_FALSE(plugin.compare({a, b}, ctx).divergent);
  Unit c{"not jsoN\n", "line"};
  EXPECT_TRUE(plugin.compare({a, c}, ctx).divergent);
}

}  // namespace
}  // namespace rddr::core
