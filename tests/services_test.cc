// Unit tests for the simulated microservices: HTTP framework, echo/ASLR,
// static server (range CVE mechanics), reverse proxies, REST variants,
// DVWA, tcp proxy, orchestrator.
#include <gtest/gtest.h>

#include "netsim/host.h"
#include "netsim/network.h"
#include "services/dvwa.h"
#include "services/echo_vuln.h"
#include "services/http_service.h"
#include "services/orchestrator.h"
#include "services/rest_service.h"
#include "services/reverse_proxy.h"
#include "services/simple_api.h"
#include "services/static_server.h"
#include "services/variant_libs.h"
#include "services/tcp_proxy.h"
#include "sqldb/server.h"

namespace rddr::services {
namespace {

class ServicesTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  sim::Network net{simulator, 10 * sim::kMicrosecond};
  sim::Host host{simulator, "node", 8, 8LL << 30};

  struct Reply {
    int status = -2;
    http::Response resp;
  };

  Reply get(const std::string& address, const std::string& target) {
    Reply out;
    HttpClient client(net, "test");
    client.get(address, target, [&](int s, const http::Response* r) {
      out.status = s;
      if (r) out.resp = *r;
    });
    simulator.run_until_idle();
    return out;
  }

  Reply send(const std::string& address, http::Request req) {
    Reply out;
    HttpClient client(net, "test");
    client.request(address, std::move(req), [&](int s, const http::Response* r) {
      out.status = s;
      if (r) out.resp = *r;
    });
    simulator.run_until_idle();
    return out;
  }

  Reply post_json(const std::string& address, const std::string& target,
                  const std::string& body) {
    http::Request req;
    req.method = "POST";
    req.target = target;
    req.headers.set("Content-Type", "application/json");
    req.body = body;
    return send(address, std::move(req));
  }
};

// ---------- HttpServer framework ----------

TEST_F(ServicesTest, HttpServerServesHandler) {
  HttpServer::Options o;
  o.address = "svc:80";
  HttpServer server(net, host, o);
  server.set_handler([](const http::Request& req, Responder r) {
    r(http::make_response(200, "echo:" + req.target));
  });
  auto reply = get("svc:80", "/abc");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.resp.body, "echo:/abc");
  EXPECT_EQ(server.requests_served(), 1u);
}

TEST_F(ServicesTest, HttpServerRespondsServiceUnavailableWithoutHandler) {
  HttpServer::Options o;
  o.address = "svc:80";
  HttpServer server(net, host, o);
  EXPECT_EQ(get("svc:80", "/").status, 503);
}

TEST_F(ServicesTest, HttpServer400OnGarbage) {
  HttpServer::Options o;
  o.address = "svc:80";
  HttpServer server(net, host, o);
  server.set_handler([](const http::Request&, Responder r) {
    r(http::make_response(200, "x"));
  });
  auto conn = net.connect("svc:80", {.source = "t"});
  Bytes got;
  conn->set_on_data([&](ByteView d) { got += Bytes(d); });
  conn->send("NONSENSE\r\n\r\n");
  simulator.run_until_idle();
  EXPECT_NE(got.find("400"), Bytes::npos);
}

TEST_F(ServicesTest, HttpServerAsyncHandlerResponds) {
  HttpServer::Options o;
  o.address = "svc:80";
  HttpServer server(net, host, o);
  server.set_handler([this](const http::Request&, Responder r) {
    simulator.schedule(5 * sim::kMillisecond,
                       [r] { r(http::make_response(200, "later")); });
  });
  auto reply = get("svc:80", "/");
  EXPECT_EQ(reply.status, 200);
  EXPECT_EQ(reply.resp.body, "later");
}

TEST_F(ServicesTest, HttpServerChargesCpu) {
  HttpServer::Options o;
  o.address = "svc:80";
  o.cpu_per_request = 1e-3;
  HttpServer server(net, host, o);
  server.set_handler([](const http::Request&, Responder r) {
    r(http::make_response(200, "x"));
  });
  double before = host.busy_core_seconds();
  get("svc:80", "/");
  EXPECT_NEAR(host.busy_core_seconds() - before, 1e-3, 1e-6);
}

// ---------- EchoVulnServer ----------

TEST_F(ServicesTest, EchoWithinBufferIsExact) {
  EchoVulnServer::Options o;
  o.address = "echo:7";
  EchoVulnServer echo(net, host, o);
  auto conn = net.connect("echo:7", {.source = "t"});
  Bytes got;
  conn->set_on_data([&](ByteView d) { got += Bytes(d); });
  conn->send("short message\n");
  simulator.run_until_idle();
  EXPECT_EQ(got, "short message\n");
}

TEST_F(ServicesTest, EchoOverflowLeaksPointer) {
  EchoVulnServer::Options o;
  o.address = "echo:7";
  o.buffer_size = 16;
  EchoVulnServer echo(net, host, o);
  auto conn = net.connect("echo:7", {.source = "t"});
  Bytes got;
  conn->set_on_data([&](ByteView d) { got += Bytes(d); });
  conn->send(Bytes(20, 'B') + "\n");
  simulator.run_until_idle();
  // First 16 bytes echoed, then 16 hex chars of the adjacent pointer.
  EXPECT_EQ(got.substr(0, 16), Bytes(16, 'B'));
  EXPECT_EQ(got.size(), 16 + 16 + 1u);
}

TEST_F(ServicesTest, AslrSeedsYieldDistinctSpaces) {
  EchoVulnServer::Options o0, o1, o2;
  o0.address = "e0:7";
  o0.rng_seed = 1;
  o1.address = "e1:7";
  o1.rng_seed = 2;
  o2.address = "e2:7";
  o2.aslr = false;
  EchoVulnServer a(net, host, o0), b(net, host, o1), c(net, host, o2);
  EXPECT_NE(a.leaked_pointer(), b.leaked_pointer());
  EchoVulnServer::Options o3 = o2;
  o3.address = "e3:7";
  EchoVulnServer d(net, host, o3);
  EXPECT_EQ(c.leaked_pointer(), d.leaked_pointer());  // no ASLR: same base
}

// ---------- StaticFileServer (CVE-2017-7529 mechanics) ----------

class WsgxTest : public ServicesTest {
 protected:
  Bytes doc = "0123456789abcdefghij";  // 20 bytes

  std::unique_ptr<StaticFileServer> make(const std::string& version) {
    StaticFileServer::Options o;
    o.address = "web:80";
    o.version = version;
    auto s = std::make_unique<StaticFileServer>(net, host, o);
    s->add_document("/doc", doc, "SECRETHEADER|");
    return s;
  }

  Reply ranged(const std::string& range) {
    http::Request req;
    req.method = "GET";
    req.target = "/doc";
    req.headers.set("Range", range);
    return send("web:80", std::move(req));
  }
};

TEST_F(WsgxTest, FullAndNotFound) {
  auto s = make("1.13.2");
  EXPECT_EQ(get("web:80", "/doc").resp.body, doc);
  EXPECT_EQ(get("web:80", "/missing").status, 404);
}

TEST_F(WsgxTest, ValidRangesSameAcrossVersions) {
  for (const char* v : {"1.13.2", "1.13.4"}) {
    auto s = make(v);
    EXPECT_EQ(ranged("bytes=0-3").resp.body, "0123") << v;
    EXPECT_EQ(ranged("bytes=5-").resp.body, doc.substr(5)) << v;
    EXPECT_EQ(ranged("bytes=-4").resp.body, "ghij") << v;
    EXPECT_EQ(ranged("bytes=0-1,5-6").resp.body, "0156") << v;
    EXPECT_EQ(ranged("bytes=100-200").status, 416) << v;
  }
}

TEST_F(WsgxTest, OversizedSuffixLeaksOnVulnerableVersion) {
  auto s = make("1.13.2");
  auto r = ranged("bytes=-1000");
  EXPECT_EQ(r.status, 206);
  EXPECT_NE(r.resp.body.find("SECRETHEADER"), Bytes::npos);
}

TEST_F(WsgxTest, OversizedSuffixClampedOnFixedVersion) {
  auto s = make("1.13.4");
  auto r = ranged("bytes=-1000");
  EXPECT_EQ(r.resp.body.find("SECRETHEADER"), Bytes::npos);
  EXPECT_EQ(r.resp.body, doc);  // clamped to the whole document
}

TEST_F(WsgxTest, VulnerabilityGateFollowsVersionOrder) {
  StaticFileServer::Options o;
  o.address = "x:80";
  o.version = "1.13.2";
  EXPECT_TRUE(StaticFileServer(net, host, o).vulnerable());
  net.unlisten("x:80");
  o.version = "1.13.3";
  EXPECT_FALSE(StaticFileServer(net, host, o).vulnerable());
  net.unlisten("x:80");
  o.version = "1.14.0";
  EXPECT_FALSE(StaticFileServer(net, host, o).vulnerable());
}

// ---------- ReverseProxy + SimpleApi ----------

class ProxyPairTest : public ServicesTest {
 protected:
  void SetUp() override {
    SimpleApiService::Options api;
    api.address = "s1:80";
    s1 = std::make_unique<SimpleApiService>(net, host, api);
  }

  std::unique_ptr<ReverseProxy> make(ReverseProxy::Flavor flavor,
                                     const std::string& address) {
    ReverseProxy::Options o;
    o.address = address;
    o.backend_address = "s1:80";
    o.flavor = flavor;
    o.instance_name = address;
    return std::make_unique<ReverseProxy>(net, host, o);
  }

  std::unique_ptr<SimpleApiService> s1;
};

TEST_F(ProxyPairTest, ForwardsAndPipesBack) {
  auto hap = make(ReverseProxy::Flavor::kHap153, "edge:80");
  http::Request req;
  req.method = "POST";
  req.target = "/api/echo";
  req.body = "data";
  auto r = send("edge:80", std::move(req));
  EXPECT_EQ(r.status, 200);
  EXPECT_EQ(r.resp.body, "public ok: data");
}

TEST_F(ProxyPairTest, AclBlocksAdminDirectly) {
  auto hap = make(ReverseProxy::Flavor::kHap153, "edge:80");
  EXPECT_EQ(get("edge:80", "/admin").status, 403);
  EXPECT_EQ(s1->admin_hits(), 0u);
}

constexpr char kSmuggle[] =
    "POST / HTTP/1.1\r\nHost: x\r\nContent-Length: 37\r\n"
    "Transfer-Encoding: \x0b"
    "chunked\r\n\r\n0\r\n\r\nGET /admin HTTP/1.1\r\nHost: x\r\n\r\n";

TEST_F(ProxyPairTest, HapSmugglesThroughToAdmin) {
  auto hap = make(ReverseProxy::Flavor::kHap153, "edge:80");
  auto conn = net.connect("edge:80", {.source = "attacker"});
  Bytes got;
  conn->set_on_data([&](ByteView d) { got += Bytes(d); });
  conn->send(ByteView(kSmuggle, sizeof(kSmuggle) - 1));
  simulator.run_until_idle();
  EXPECT_EQ(s1->admin_hits(), 1u);
  EXPECT_NE(got.find("SECRET-ADMIN-TOKEN"), Bytes::npos);
}

TEST_F(ProxyPairTest, NgxRejectsAmbiguousFraming) {
  auto ngx = make(ReverseProxy::Flavor::kNgx, "edge:80");
  auto conn = net.connect("edge:80", {.source = "attacker"});
  Bytes got;
  conn->set_on_data([&](ByteView d) { got += Bytes(d); });
  conn->send(ByteView(kSmuggle, sizeof(kSmuggle) - 1));
  simulator.run_until_idle();
  EXPECT_EQ(s1->admin_hits(), 0u);
  EXPECT_NE(got.find("400"), Bytes::npos);
}

// ---------- RestLibraryService ----------

TEST_F(ServicesTest, RestServiceRejectsWrongRoute) {
  RestLibraryService::Options o;
  o.address = "svc:80";
  o.kind = RestLibraryService::Kind::kMarkdown;
  o.library = "mdone";
  RestLibraryService svc(net, host, o);
  EXPECT_EQ(post_json("svc:80", "/wrong", "{}").status, 404);
  EXPECT_EQ(post_json("svc:80", "/render", "not json").status, 400);
  EXPECT_EQ(post_json("svc:80", "/render", "{\"oops\":1}").status, 400);
}

TEST_F(ServicesTest, RestServiceRendersMarkdown) {
  RestLibraryService::Options o;
  o.address = "svc:80";
  o.kind = RestLibraryService::Kind::kMarkdown;
  o.library = "mdone";
  RestLibraryService svc(net, host, o);
  auto r = post_json("svc:80", "/render", R"({"markdown":"# Hi"})");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.resp.body.find("<h1>Hi</h1>"), Bytes::npos);
}

TEST_F(ServicesTest, RestRsaRoundTrip) {
  RestLibraryService::Options o;
  o.address = "svc:80";
  o.kind = RestLibraryService::Kind::kRsa;
  o.library = "cryptolite";
  RestLibraryService svc(net, host, o);
  Bytes cipher = lib::rsa_encrypt("top secret", o.rsa_key, 3);
  auto r = post_json("svc:80", "/decrypt",
                     R"({"ciphertext_hex":")" + to_hex(cipher) + "\"}");
  EXPECT_EQ(r.status, 200);
  EXPECT_NE(r.resp.body.find("top secret"), Bytes::npos);
}

// ---------- DVWA ----------

TEST_F(ServicesTest, DvwaQueryConstructionBySecurityLevel) {
  DvwaApp::Options lo, hi;
  lo.address = "d0:80";
  lo.security = DvwaApp::Security::kLow;
  hi.address = "d1:80";
  hi.security = DvwaApp::Security::kHigh;
  DvwaApp low(net, host, lo), high(net, host, hi);
  EXPECT_EQ(low.build_query("' OR '1'='1"),
            "SELECT first_name, last_name FROM users WHERE user_id = "
            "'' OR '1'='1' ORDER BY first_name, last_name;");
  EXPECT_EQ(high.build_query("' OR '1'='1"),
            "SELECT first_name, last_name FROM users WHERE user_id = "
            "''' OR ''1''=''1' ORDER BY first_name, last_name;");
  // Benign input produces identical queries at every level.
  EXPECT_EQ(low.build_query("7"), high.build_query("7"));
}

TEST_F(ServicesTest, DvwaRejectsBadCsrfToken) {
  auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
  {
    sqldb::Session s(*db, "postgres");
    s.execute("CREATE TABLE users (user_id text, first_name text, "
              "last_name text); GRANT SELECT ON users TO dvwa;");
  }
  sqldb::SqlServer::Options so;
  so.address = "db:5432";
  sqldb::SqlServer server(net, host, db, so);
  DvwaApp::Options o;
  o.address = "dvwa:80";
  o.db_address = "db:5432";
  DvwaApp app(net, host, o);
  http::Request req;
  req.method = "POST";
  req.target = "/vulnerabilities/sqli";
  req.headers.set("Content-Type", "application/x-www-form-urlencoded");
  req.body = "id=1&user_token=WRONGTOKEN123456&Submit=Submit";
  EXPECT_EQ(send("dvwa:80", std::move(req)).status, 403);
  EXPECT_EQ(app.token_failures(), 1u);
}

TEST_F(ServicesTest, DvwaTokenIsSingleUse) {
  auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
  {
    sqldb::Session s(*db, "postgres");
    s.execute("CREATE TABLE users (user_id text, first_name text, "
              "last_name text);"
              "INSERT INTO users VALUES ('1','A','B');"
              "GRANT SELECT ON users TO dvwa;");
  }
  sqldb::SqlServer::Options so;
  so.address = "db:5432";
  sqldb::SqlServer server(net, host, db, so);
  DvwaApp::Options o;
  o.address = "dvwa:80";
  o.db_address = "db:5432";
  DvwaApp app(net, host, o);
  auto page = get("dvwa:80", "/vulnerabilities/sqli");
  size_t pos = page.resp.body.find("value=\"") + 7;
  std::string token =
      page.resp.body.substr(pos, page.resp.body.find('"', pos) - pos);
  auto mk = [&] {
    http::Request req;
    req.method = "POST";
    req.target = "/vulnerabilities/sqli";
    req.headers.set("Content-Type", "application/x-www-form-urlencoded");
    req.body = "id=1&user_token=" + token + "&Submit=Submit";
    return req;
  };
  EXPECT_EQ(send("dvwa:80", mk()).status, 200);
  EXPECT_EQ(send("dvwa:80", mk()).status, 403);  // replay rejected
}

// ---------- TcpProxy ----------

TEST_F(ServicesTest, TcpProxyRelaysBothWays) {
  net.listen("backend:1", [](sim::ConnPtr c) {
    c->set_on_data([c](ByteView d) { c->send(Bytes("pong:") + Bytes(d)); });
  });
  TcpProxy::Options o;
  o.address = "front:1";
  o.backend_address = "backend:1";
  TcpProxy proxy(net, host, o);
  auto conn = net.connect("front:1", {.source = "t"});
  Bytes got;
  conn->set_on_data([&](ByteView d) { got += Bytes(d); });
  conn->send("ping");
  simulator.run_until_idle();
  EXPECT_EQ(got, "pong:ping");
  EXPECT_EQ(proxy.bytes_relayed(), 4u + 9u);
}

TEST_F(ServicesTest, TcpProxyClosesWithBackendGone) {
  TcpProxy::Options o;
  o.address = "front:1";
  o.backend_address = "nowhere:1";
  TcpProxy proxy(net, host, o);
  auto conn = net.connect("front:1", {.source = "t"});
  bool closed = false;
  conn->set_on_close([&] { closed = true; });
  simulator.run_until_idle();
  EXPECT_TRUE(closed);
}

// ---------- Orchestrator ----------

TEST_F(ServicesTest, OrchestratorDeploysFromImages) {
  Orchestrator orch(simulator, net);
  orch.add_host("m1", 8, 8LL << 30);
  orch.register_image("echo", [&](const ContainerSpec& spec) {
    EchoVulnServer::Options o;
    o.address = spec.address;
    o.rng_seed = spec.rng_seed;
    o.aslr = spec.tag == "aslr";
    return std::make_shared<EchoVulnServer>(net, *spec.host, o);
  });
  auto addrs = orch.deploy_replicas("echo", "echo", {"aslr", "aslr"}, "m1", 7);
  ASSERT_EQ(addrs.size(), 2u);
  EXPECT_EQ(addrs[0], "echo-0:7");
  EXPECT_EQ(orch.container_count(), 2u);
  EXPECT_EQ(orch.host_of("echo-0"), "m1");
  // Replicas from the same image still get distinct randomness streams.
  auto e0 = orch.get<EchoVulnServer>("echo-0");
  auto e1 = orch.get<EchoVulnServer>("echo-1");
  ASSERT_NE(e0, nullptr);
  EXPECT_NE(e0->leaked_pointer(), e1->leaked_pointer());
  // The containers actually serve traffic.
  auto conn = net.connect("echo-1:7", {.source = "t"});
  Bytes got;
  conn->set_on_data([&](ByteView d) { got += Bytes(d); });
  conn->send("hi\n");
  simulator.run_until_idle();
  EXPECT_EQ(got, "hi\n");
}

TEST_F(ServicesTest, OrchestratorStopFreesAddress) {
  Orchestrator orch(simulator, net);
  orch.add_host("m1", 8, 8LL << 30);
  orch.register_image("api", [&](const ContainerSpec& spec) {
    SimpleApiService::Options o;
    o.address = spec.address;
    return std::make_shared<SimpleApiService>(net, *spec.host, o);
  });
  orch.deploy("api-1", "api", "v1", "m1", "api:80");
  EXPECT_TRUE(net.has_listener("api:80"));
  orch.stop("api-1");
  EXPECT_FALSE(net.has_listener("api:80"));
  EXPECT_EQ(orch.container_count(), 0u);
}

TEST_F(ServicesTest, OrchestratorStopSeversLiveConnections) {
  // A stopped container's sockets die with it. A request already in
  // flight toward the stopped service must be dropped, not delivered into
  // the destroyed object (use-after-free regression), and the client must
  // observe the close.
  Orchestrator orch(simulator, net);
  orch.add_host("m1", 8, 8LL << 30);
  orch.register_image("api", [&](const ContainerSpec& spec) {
    SimpleApiService::Options o;
    o.address = spec.address;
    return std::make_shared<SimpleApiService>(net, *spec.host, o);
  });
  orch.deploy("api-1", "api", "v1", "m1", "api:80");
  auto conn = net.connect("api:80", {.source = "t"});
  simulator.run_until_idle();
  ASSERT_TRUE(conn->is_open());
  bool closed = false;
  conn->set_on_close([&] { closed = true; });
  conn->send("GET / HTTP/1.1\r\nHost: api\r\n\r\n");  // in flight at stop
  orch.stop("api-1");
  simulator.run_until_idle();
  EXPECT_TRUE(closed);
  EXPECT_FALSE(conn->is_open());
}

TEST_F(ServicesTest, OrchestratorRejectsUnknownImageAndDuplicates) {
  Orchestrator orch(simulator, net);
  orch.add_host("m1", 8, 8LL << 30);
  EXPECT_THROW(orch.deploy("x", "ghost", "v1", "m1"), std::runtime_error);
  orch.register_image("api", [&](const ContainerSpec& spec) {
    SimpleApiService::Options o;
    o.address = spec.address;
    return std::make_shared<SimpleApiService>(net, *spec.host, o);
  });
  orch.deploy("x", "api", "v1", "m1");
  EXPECT_THROW(orch.deploy("x", "api", "v1", "m1"), std::runtime_error);
  EXPECT_THROW(orch.deploy("y", "api", "v1", "ghost-host"),
               std::runtime_error);
}

TEST_F(ServicesTest, OrchestratorRestartDerivesFreshIncarnationSeeds) {
  // A restarted process must not replay its previous life's randomness:
  // each incarnation gets a distinct (but deterministic) seed.
  auto seeds_for = [&](uint64_t orch_seed) {
    Orchestrator orch(simulator, net, orch_seed);
    orch.add_host("m1", 8, 8LL << 30);
    std::vector<uint64_t> seeds;
    orch.register_image("rec", [&](const ContainerSpec& spec) {
      seeds.push_back(spec.rng_seed);
      return std::make_shared<int>(0);
    });
    orch.deploy("svc", "rec", "v1", "m1", "svc:80");
    for (int k = 0; k < 2; ++k) {
      orch.crash("svc");
      orch.restart("svc");
    }
    return seeds;
  };
  auto seeds = seeds_for(11);
  ASSERT_EQ(seeds.size(), 3u);  // initial + two restarts
  EXPECT_NE(seeds[0], seeds[1]);
  EXPECT_NE(seeds[1], seeds[2]);
  EXPECT_NE(seeds[0], seeds[2]);
  // Deterministic: the same schedule reproduces the same seed sequence.
  EXPECT_EQ(seeds_for(11), seeds);
  EXPECT_NE(seeds_for(12), seeds);
}

TEST_F(ServicesTest, OrchestratorReplaceCreatesFreshLineage) {
  Orchestrator orch(simulator, net, 5);
  orch.add_host("m1", 8, 8LL << 30);
  std::map<std::string, uint64_t> seeds;
  orch.register_image("rec", [&](const ContainerSpec& spec) {
    seeds[spec.container_name] = spec.rng_seed;
    return std::make_shared<int>(0);
  });
  orch.deploy("pg-1", "rec", "13.0", "m1", "pg-1:5432");

  std::string a1 = orch.replace("pg-1");
  EXPECT_EQ(a1, "pg-1-r1:5432");  // lineage suffix, port preserved
  EXPECT_EQ(orch.container_count(), 1u);  // the old container is gone
  EXPECT_THROW(orch.crashed("pg-1"), std::runtime_error);

  // Replacing the replacement continues the lineage, not pg-1-r1-r1.
  std::string a2 = orch.replace("pg-1-r1");
  EXPECT_EQ(a2, "pg-1-r2:5432");
  EXPECT_EQ(orch.host_of("pg-1-r2"), "m1");
  // Every generation got its own seed.
  EXPECT_NE(seeds.at("pg-1"), seeds.at("pg-1-r1"));
  EXPECT_NE(seeds.at("pg-1-r1"), seeds.at("pg-1-r2"));
}

TEST_F(ServicesTest, OrchestratorAutoReplacementPolicy) {
  Orchestrator orch(simulator, net);
  orch.add_host("m1", 8, 8LL << 30);
  orch.register_image("rec", [&](const ContainerSpec&) {
    return std::make_shared<int>(0);
  });
  orch.deploy("svc", "rec", "v1", "m1", "svc:80");

  std::string replaced_with;
  Orchestrator::ReplacementPolicy policy;
  policy.auto_replace = true;
  policy.replace_delay = 100 * sim::kMillisecond;
  policy.on_replaced = [&](const std::string& old_name,
                           const std::string& new_name, const std::string&) {
    EXPECT_EQ(old_name, "svc");
    replaced_with = new_name;
  };
  orch.set_replacement_policy(policy);

  orch.crash("svc");
  simulator.run_until(1 * sim::kSecond);
  EXPECT_EQ(replaced_with, "svc-r1");
  EXPECT_FALSE(orch.crashed("svc-r1"));
  EXPECT_THROW(orch.crashed("svc"), std::runtime_error);
}

}  // namespace
}  // namespace rddr::services
