// Execution indexing & divergence attribution (common/exec_index.h,
// rddr/divergence.h): index semantics, ambient derivation at dial time,
// nested propagation through a protected edge (including resync shadow
// replay), the AttributionSink/DivergenceBus redesign (per-callsite dedup,
// re-entrant listener subscription), targeted path quarantine, and
// cross-island determinism of attributed records.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <set>
#include <string>
#include <type_traits>
#include <vector>

#include "common/exec_index.h"
#include "common/strutil.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "netsim/simulator.h"
#include "proto/http/message.h"
#include "rddr/deployment.h"
#include "rddr/plugins.h"
#include "scenario/topology.h"
#include "services/http_service.h"
#include "sqldb/client.h"
#include "sqldb/server.h"
#include "workloads/pgbench.h"

namespace rddr::core {
namespace {

using rddr::ExecutionIndex;

// The FlowContext port is total: ConnectMeta carries exactly (source,
// flow); trace identity and the execution index live on the flow.
static_assert(std::is_same_v<decltype(sim::ConnectMeta::flow),
                             sim::FlowContext>,
              "ConnectMeta must carry a FlowContext");
static_assert(std::is_same_v<decltype(sim::FlowContext::index),
                             ExecutionIndex>,
              "FlowContext must carry the execution index");

// ---------------------------------------------------------------------------
// ExecutionIndex unit semantics.

TEST(ExecutionIndex, SiteIdIsDeterministicAndKeyed) {
  const uint64_t a = ExecutionIndex::site_id("mid-0", "inner:5432");
  EXPECT_EQ(a, ExecutionIndex::site_id("mid-0", "inner:5432"));
  EXPECT_NE(a, ExecutionIndex::site_id("mid-1", "inner:5432"));
  EXPECT_NE(a, ExecutionIndex::site_id("mid-0", "inner:5433"));
  // The ':' separator is mixed in: ("ab","c") must not collide with
  // ("a","bc") by concatenation.
  EXPECT_NE(ExecutionIndex::site_id("ab", "c"),
            ExecutionIndex::site_id("a", "bc"));
}

TEST(ExecutionIndex, FramesHashAndDescribe) {
  ExecutionIndex idx;
  EXPECT_TRUE(idx.empty());
  EXPECT_EQ(idx.hash(), 0u);
  EXPECT_EQ(idx.leaf_site(), 0u);
  EXPECT_EQ(idx.describe(), "-");

  idx.push("edge", "front:80", 7);
  ExecutionIndex child = idx.child("app-0", "mid-0:80", 0);
  EXPECT_EQ(idx.depth(), 1u);
  EXPECT_EQ(child.depth(), 2u);
  EXPECT_EQ(child.root().site, ExecutionIndex::site_id("edge", "front:80"));
  EXPECT_EQ(child.leaf().site, ExecutionIndex::site_id("app-0", "mid-0:80"));
  EXPECT_EQ(child.leaf_site(), child.leaf().site);

  // Equal stacks hash equal; any frame difference changes the hash.
  ExecutionIndex same;
  same.push("edge", "front:80", 7);
  same.push("app-0", "mid-0:80", 0);
  EXPECT_EQ(child, same);
  EXPECT_EQ(child.hash(), same.hash());
  ExecutionIndex other = idx.child("app-0", "mid-0:80", 1);
  EXPECT_NE(child, other);
  EXPECT_NE(child.hash(), other.hash());

  EXPECT_EQ(child.describe(),
            strformat("%llx#7/%llx#0",
                      static_cast<unsigned long long>(child.root().site),
                      static_cast<unsigned long long>(child.leaf().site)));
}

TEST(ExecutionIndex, SerializeRoundTrip) {
  ExecutionIndex idx;
  idx.push("a", "b:1", 0);
  idx.push("c", "d:2", 3);
  std::vector<uint64_t> ints = idx.serialize();
  ASSERT_EQ(ints.size(), 4u);
  ExecutionIndex back = ExecutionIndex::deserialize(ints);
  EXPECT_EQ(back, idx);
  EXPECT_EQ(back.hash(), idx.hash());
  EXPECT_EQ(ExecutionIndex::deserialize({}).depth(), 0u);
}

// ---------------------------------------------------------------------------
// Ambient derivation at dial time (netsim).

TEST(FlowDerivation, DialInsideHandlerExtendsInboundIndex) {
  sim::Simulator simu;
  sim::Network net(simu, 10 * sim::kMicrosecond);

  std::vector<sim::FlowContext> seen_at_b;
  std::vector<sim::ConnPtr> held;
  net.listen("b:1", [&](sim::ConnPtr c) {
    seen_at_b.push_back(c->flow());
    held.push_back(std::move(c));
  });
  net.listen("a:1", [&](sim::ConnPtr c) {
    c->set_on_data([&net, &held](ByteView) {
      // Two dials of the same site from inside the handler: seq 0, 1.
      held.push_back(net.connect("b:1", {.source = "a"}));
      held.push_back(net.connect("b:1", {.source = "a"}));
    });
    held.push_back(std::move(c));
  });

  sim::ConnectMeta meta;
  meta.source = "client";
  meta.flow.trace_id = 77;
  auto conn = net.connect("a:1", meta);
  ASSERT_NE(conn, nullptr);
  conn->send(Bytes("x"));
  simu.run_until_idle();

  ASSERT_EQ(seen_at_b.size(), 2u);
  const uint64_t site = ExecutionIndex::site_id("a", "b:1");
  for (size_t i = 0; i < 2; ++i) {
    EXPECT_EQ(seen_at_b[i].trace_id, 77u) << i;  // trace rides the flow
    ASSERT_EQ(seen_at_b[i].index.depth(), 1u) << i;
    EXPECT_EQ(seen_at_b[i].index.leaf().site, site) << i;
    EXPECT_EQ(seen_at_b[i].index.leaf().seq, i) << i;  // per-site ordinal
  }
}

TEST(FlowDerivation, ExplicitFieldsWinAndTopLevelDialsStayEmpty) {
  sim::Simulator simu;
  sim::Network net(simu, 10 * sim::kMicrosecond);

  std::vector<sim::FlowContext> seen;
  std::vector<sim::ConnPtr> held;
  net.listen("b:1", [&](sim::ConnPtr c) {
    seen.push_back(c->flow());
    held.push_back(std::move(c));
  });
  net.listen("a:1", [&](sim::ConnPtr c) {
    c->set_on_data([&net, &held](ByteView) {
      sim::ConnectMeta m;
      m.source = "a";
      m.flow.trace_id = 5;
      m.flow.index.push("explicit", "site", 9);
      held.push_back(net.connect("b:1", m));
    });
    held.push_back(std::move(c));
  });

  // Top-level dial: no ambient flow, index stays empty.
  auto top = net.connect("b:1", {.source = "client"});
  ASSERT_NE(top, nullptr);

  sim::ConnectMeta meta;
  meta.source = "client";
  meta.flow.trace_id = 1;
  auto conn = net.connect("a:1", meta);
  ASSERT_NE(conn, nullptr);
  conn->send(Bytes("x"));
  simu.run_until_idle();

  ASSERT_EQ(seen.size(), 2u);
  EXPECT_TRUE(seen[0].index.empty());
  EXPECT_EQ(seen[0].trace_id, 0u);
  ASSERT_EQ(seen[1].index.depth(), 1u);  // explicit index untouched
  EXPECT_EQ(seen[1].index.leaf().site,
            ExecutionIndex::site_id("explicit", "site"));
  EXPECT_EQ(seen[1].index.leaf().seq, 9u);
  EXPECT_EQ(seen[1].trace_id, 5u);
}

// ---------------------------------------------------------------------------
// AttributionSink / DivergenceBus redesign.

DivergenceRecord make_record(const std::string& proxy,
                             const std::string& verdict, uint64_t leaf_site) {
  DivergenceRecord rec;
  rec.proxy = proxy;
  rec.protocol = "http";
  rec.verdict = verdict;
  rec.unit_kind = "http-resp";
  rec.reason = "test";
  if (leaf_site) rec.index.push(leaf_site, 0);
  return rec;
}

TEST(DivergenceBus, RecordsDedupPerCallsiteAndCountIsInterventions) {
  sim::Simulator simu;
  DivergenceBus bus(simu);
  AttributionSink& sink = bus;  // the one reporting surface

  sink.report(make_record("edge", "intervention", 0xaaa));
  sink.report(make_record("edge", "intervention", 0xaaa));
  sink.report(make_record("edge", "outvote", 0xaaa));
  sink.report(make_record("edge", "intervention", 0xbbb));

  EXPECT_EQ(bus.records().size(), 4u);
  EXPECT_EQ(bus.count(), 3u);  // interventions only
  EXPECT_EQ(bus.events().size(), 3u);
  // Same (protocol, kind, callsite) collapses however often it fires.
  EXPECT_EQ(bus.unique_callsites(), 2u);
  EXPECT_EQ(bus.callsites().at("http|http-resp|cs=aaa"), 3u);
  EXPECT_EQ(bus.callsites().at("http|http-resp|cs=bbb"), 1u);

  EXPECT_EQ(attribution_key(make_record("e", "intervention", 0)),
            "http|http-resp|cs=0");  // indexless records share cs=0

  bus.clear();
  EXPECT_EQ(bus.records().size(), 0u);
  EXPECT_EQ(bus.unique_callsites(), 0u);
  EXPECT_EQ(bus.count(), 0u);
}

TEST(DivergenceBus, ReentrantSubscribeDuringDispatchIsSafe) {
  sim::Simulator simu;
  DivergenceBus bus(simu);
  int first_calls = 0, late_calls = 0, record_calls = 0, late_records = 0;
  // The first listener subscribes another listener while the bus is
  // dispatching — this used to require a defensive copy of the listener
  // vector on every event; index-based iteration must survive the
  // reallocation and not invoke the new listener for the current event.
  bus.subscribe([&](const DivergenceEvent&) {
    ++first_calls;
    if (first_calls == 1) {
      bus.subscribe([&](const DivergenceEvent&) { ++late_calls; });
      bus.subscribe_records(
          [&](const DivergenceRecord&) { ++late_records; });
    }
  });
  bus.subscribe_records([&](const DivergenceRecord&) { ++record_calls; });

  bus.report(make_record("edge", "intervention", 1));
  EXPECT_EQ(first_calls, 1);
  EXPECT_EQ(record_calls, 1);
  EXPECT_EQ(late_calls, 1);  // appended mid-dispatch: sees this event too
  EXPECT_EQ(late_records, 1);

  bus.report(make_record("edge", "intervention", 1));
  EXPECT_EQ(first_calls, 2);
  EXPECT_EQ(late_calls, 2);
  EXPECT_EQ(record_calls, 2);
  EXPECT_EQ(late_records, 2);
}

// ---------------------------------------------------------------------------
// Nested propagation through a protected edge, and path quarantine.

class EdgeFixture : public ::testing::Test {
 protected:
  sim::Simulator simu;
  sim::Network net{simu, 10 * sim::kMicrosecond};
  sim::Host host{simu, "host", 8, 8LL << 30};
  std::vector<std::unique_ptr<services::HttpServer>> servers;
  std::vector<std::unique_ptr<services::HttpClient>> clients;
  std::unique_ptr<NVersionDeployment> dep;
  std::vector<DivergenceRecord> records;

  /// Three app instances behind "svc:80": /ok agrees, /diverge leaks a
  /// version-keyed value from instance 2.
  void build_edge(uint32_t path_quarantine_threshold = 0) {
    for (size_t i = 0; i < 3; ++i) {
      services::HttpServer::Options o;
      o.address = strformat("i%zu:80", i);
      auto s = std::make_unique<services::HttpServer>(net, host, o);
      s->set_handler([i](const http::Request& req,
                         services::Responder respond) {
        const char* body = req.target == "/diverge" && i == 2
                               ? "LEAK-v2"
                               : "same";
        respond(http::make_response(200, body, "text/plain"));
      });
      servers.push_back(std::move(s));
    }
    dep = NVersionDeployment::Builder()
              .name("edge")
              .listen("svc:80")
              .versions({"i0:80", "i1:80", "i2:80"})
              .plugin(std::make_shared<HttpPlugin>())
              .filter_pair(true)
              .degradation(DegradationPolicy::kStrict)
              .path_quarantine(path_quarantine_threshold)
              .on_divergence(
                  [this](const DivergenceRecord& r) { records.push_back(r); })
              .build(net, host);
  }

  /// A mid-tier forwarder at `node`:80 that relays its requests to the
  /// protected edge — the nested call site the index must capture.
  void build_caller(const std::string& node) {
    services::HttpServer::Options o;
    o.address = node + ":80";
    auto s = std::make_unique<services::HttpServer>(net, host, o);
    auto c = std::make_unique<services::HttpClient>(net, node);
    services::HttpClient* cp = c.get();
    s->set_handler([cp](const http::Request& req,
                        services::Responder respond) {
      cp->get("svc:80", req.target,
              [respond](int status, const http::Response* r) {
                respond(http::make_response(status > 0 ? status : 502,
                                            r ? std::string(r->body) : "err",
                                            "text/plain"));
              });
    });
    servers.push_back(std::move(s));
    clients.push_back(std::move(c));
  }

  /// GET `target` at `address` with an explicit trace; returns status.
  int get(const std::string& address, const std::string& target,
          uint64_t trace) {
    int status = -1;
    sim::ConnectMeta meta;
    meta.source = "user";
    meta.flow.trace_id = trace;
    auto conn = net.connect(address, meta);
    if (!conn) return status;
    auto parser = std::make_shared<http::ResponseParser>();
    conn->set_on_data([parser, &status](ByteView d) {
      parser->feed(d);
      auto msgs = parser->take();
      if (!msgs.empty() && status < 0) status = msgs[0].status;
    });
    http::Request req;
    req.method = "GET";
    req.target = target;
    req.headers.set("Host", address);
    conn->send(req.to_bytes());
    simu.run_until_idle();
    if (conn->is_open()) conn->close();
    simu.run_until_idle();
    return status;
  }
};

TEST_F(EdgeFixture, NestedDivergenceAttributesToCallersDialSite) {
  build_edge();
  build_caller("caller");

  // Direct edge request: the record's index is the minted root frame.
  EXPECT_EQ(get("svc:80", "/diverge", 0x100), 403);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(records[0].proxy, "edge");
  EXPECT_EQ(records[0].trace_id, 0x100u);
  ASSERT_EQ(records[0].index.depth(), 1u);
  EXPECT_EQ(records[0].index.leaf_site(),
            ExecutionIndex::site_id("edge", "svc:80"));

  // Nested request through the caller tier: attribution pins the exact
  // call site that dialed the protected edge, plus the caller's trace.
  EXPECT_EQ(get("caller:80", "/diverge", 0x200), 403);
  ASSERT_EQ(records.size(), 2u);
  EXPECT_EQ(records[1].proxy, "edge");
  EXPECT_EQ(records[1].trace_id, 0x200u);
  ASSERT_EQ(records[1].index.depth(), 1u);
  EXPECT_EQ(records[1].index.leaf_site(),
            ExecutionIndex::site_id("caller", "svc:80"));

  // Same callsite key space as the bus: both records share protocol/kind
  // but differ in cs=, so they do NOT collapse together.
  EXPECT_NE(attribution_key(records[0]), attribution_key(records[1]));
}

TEST_F(EdgeFixture, PathQuarantineBlocksOneCallPathOnly) {
  build_edge(/*path_quarantine_threshold=*/1);
  build_caller("caller-1");
  build_caller("caller-2");

  // First nested divergence: intervention, one strike on caller-1's site.
  EXPECT_EQ(get("caller-1:80", "/diverge", 1), 403);
  ASSERT_EQ(records.size(), 1u);
  EXPECT_EQ(dep->incoming().stats().path_blocks, 0u);

  // caller-1's path is now quarantined: even a benign request through it
  // is refused at accept, without touching the instances.
  const uint64_t sessions_before = dep->incoming().stats().sessions;
  EXPECT_EQ(get("caller-1:80", "/ok", 2), 403);
  EXPECT_EQ(dep->incoming().stats().path_blocks, 1u);
  EXPECT_EQ(dep->incoming().stats().sessions, sessions_before);
  EXPECT_EQ(records.size(), 1u);  // a path block is not a new divergence

  // Every other path through the graph keeps working: a different caller
  // and the direct (root) edge are unaffected.
  EXPECT_EQ(get("caller-2:80", "/ok", 3), 200);
  EXPECT_EQ(get("svc:80", "/ok", 4), 200);
}

// ---------------------------------------------------------------------------
// Resync paths: journal replay is infra traffic with its own root frame;
// catch-up shadow replay nests under the originating session's index.

struct RelayRecord {
  std::string label;
  uint64_t trace = 0;
  ExecutionIndex index;
};

/// A byte relay that records each accepted connection's FlowContext and
/// forwards the context verbatim to the wrapped backend — a transparent
/// observation point between the proxy and an instance.
class RecordingRelay {
 public:
  RecordingRelay(sim::Network& net, std::string addr, std::string backend)
      : net_(net), addr_(std::move(addr)), backend_(std::move(backend)) {
    open();
  }
  ~RecordingRelay() { if (up_) net_.unlisten(addr_); }

  void open() {
    net_.listen(addr_, [this](sim::ConnPtr c) { accept(std::move(c)); });
    up_ = true;
  }
  void crash() {
    net_.unlisten(addr_);
    up_ = false;
    for (auto& c : conns_)
      if (c && c->is_open()) c->close();
    conns_.clear();
  }

  const std::vector<RelayRecord>& records() const { return records_; }

 private:
  void accept(sim::ConnPtr c) {
    records_.push_back({c->flow().label, c->flow().trace_id, c->flow().index});
    sim::ConnectMeta meta;
    meta.source = sim::Network::node_of(addr_);
    meta.flow = c->flow();  // explicit fields win: forwarded verbatim
    auto b = net_.connect(backend_, meta);
    if (!b) {
      c->close();
      return;
    }
    c->set_on_data([b](ByteView d) { b->send(d); });
    b->set_on_data([c](ByteView d) { c->send(d); });
    c->set_on_close([b] { b->close(); });
    b->set_on_close([c] { c->close(); });
    conns_.push_back(std::move(c));
  }

  sim::Network& net_;
  std::string addr_, backend_;
  bool up_ = false;
  std::vector<RelayRecord> records_;
  std::vector<sim::ConnPtr> conns_;
};

TEST(ResyncAttribution, ReplayAndShadowIndicesNestCorrectly) {
  sim::Simulator simu;
  sim::Network net(simu, 10 * sim::kMicrosecond);
  sim::Host db_host(simu, "db-host", 8, 8LL << 30);
  sim::Host proxy_host(simu, "proxy-host", 4, 4LL << 30);

  constexpr int kAccounts = 20;
  std::vector<std::shared_ptr<sqldb::SqlServer>> raws;
  std::vector<std::unique_ptr<RecordingRelay>> relays;
  for (size_t i = 0; i < 3; ++i) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
    workloads::load_pgbench(*db, kAccounts, /*seed=*/9);
    sqldb::SqlServer::Options so;
    so.address = strformat("raw-%zu:5432", i);
    raws.push_back(std::make_shared<sqldb::SqlServer>(net, db_host, db, so));
    relays.push_back(std::make_unique<RecordingRelay>(
        net, strformat("pg-%zu:5432", i), so.address));
  }

  ResyncOptions resync;
  resync.enabled = true;
  resync.min_transfer_time = 600 * sim::kMillisecond;
  resync.warm = [&raws](size_t i) -> ResyncOptions::WarmResult {
    std::string snap = raws[(i + 1) % 3]->dump_snapshot();
    if (!raws[i]->load_snapshot(snap)) return {};
    return {.bytes = static_cast<int64_t>(snap.size())};
  };
  HealthTracker::Options health;
  health.failure_threshold = 1;
  health.reconnect_base_delay = 50 * sim::kMillisecond;
  health.reconnect_max_delay = 1 * sim::kSecond;
  health.reconnect_jitter = 0;

  auto dep = NVersionDeployment::Builder()
                 .name("selfheal")
                 .listen("front:5432")
                 .versions({"pg-0:5432", "pg-1:5432", "pg-2:5432"})
                 .plugin(std::make_shared<PgPlugin>())
                 .filter_pair(true)
                 .degradation(DegradationPolicy::kQuorum)
                 .health(health)
                 .unit_timeout(250 * sim::kMillisecond)
                 .resync(resync)
                 .build(net, proxy_host);

  // One long-lived write session with an explicit trace, spanning the
  // crash, the transfer window, and readmission.
  sim::ConnectMeta meta;
  meta.source = "client";
  meta.flow.trace_id = 0xABC;
  auto pg = std::make_unique<sqldb::PgClient>(net, "front:5432", "postgres",
                                              meta);
  auto issued = std::make_shared<size_t>(0);
  auto step = std::make_shared<std::function<void()>>();
  sqldb::PgClient* pgp = pg.get();
  *step = [&simu, pgp, issued, step] {
    if (*issued >= 60 || pgp->broken()) return;
    size_t qi = (*issued)++;
    pgp->query(strformat("UPDATE pgbench_accounts SET abalance = abalance "
                         "+ 1 WHERE aid = %zu",
                         qi % kAccounts + 1),
               [](sqldb::QueryOutcome) {});
    simu.schedule(100 * sim::kMillisecond, [step] { (*step)(); });
  };
  simu.schedule(10 * sim::kMillisecond, [step] { (*step)(); });

  simu.schedule_at(1 * sim::kSecond, [&relays] { relays[0]->crash(); });
  simu.schedule_at(2 * sim::kSecond, [&relays] { relays[0]->open(); });
  simu.run_until(15 * sim::kSecond);
  pg->close();
  simu.run_until_idle();

  auto stats = dep->incoming().stats();
  ASSERT_GE(stats.resyncs, 1u);
  ASSERT_GT(stats.journal_replayed_requests, 0u);
  EXPECT_EQ(dep->divergences(), 0u);

  const uint64_t root_site =
      ExecutionIndex::site_id("selfheal", "front:5432");
  const uint64_t replay_site =
      ExecutionIndex::site_id("selfheal", "resync-replay");
  const uint64_t shadow_site =
      ExecutionIndex::site_id("selfheal", "catchup-shadow");
  size_t upstream = 0, replay = 0, shadow = 0;
  for (const RelayRecord& r : relays[0]->records()) {
    if (r.label.rfind("in-", 0) == 0) {
      // Ordinary replicated leg: the session's root frame, verbatim.
      ASSERT_EQ(r.index.depth(), 1u);
      EXPECT_EQ(r.index.root().site, root_site);
      ++upstream;
    } else if (r.label == "resync-replay") {
      // Journal replay is infrastructure traffic: its own root frame,
      // seq = the instance slot, no client request in the path.
      ASSERT_EQ(r.index.depth(), 1u);
      EXPECT_EQ(r.index.root().site, replay_site);
      EXPECT_EQ(r.index.root().seq, 0u);
      ++replay;
    } else if (r.label.rfind("catchup-", 0) == 0) {
      // Shadow replay nests under the originating session: root frame =
      // the session's own index, child frame = the shadow call site —
      // and the session's trace rides along.
      ASSERT_EQ(r.index.depth(), 2u);
      EXPECT_EQ(r.index.root().site, root_site);
      EXPECT_EQ(r.index.leaf().site, shadow_site);
      EXPECT_EQ(r.index.leaf().seq, 0u);  // shadowing slot 0
      EXPECT_EQ(r.trace, 0xABCu);
      ++shadow;
    }
  }
  EXPECT_GE(upstream, 1u);
  EXPECT_GE(replay, 1u);
  EXPECT_GE(shadow, 1u);

  // The replayed + shadowed writes converged the wrapped replica.
  EXPECT_EQ(raws[0]->dump_snapshot(), raws[1]->dump_snapshot());
}

// ---------------------------------------------------------------------------
// Cross-island determinism of attributed records.

TEST(AttributionDeterminism, IndicesIdenticalAcrossIslandCounts) {
  auto run = [](size_t islands) {
    sim::Simulator simu;
    sim::Network net(simu, 10 * sim::kMicrosecond);
    scenario::TopologyOptions topts;
    topts.kind = 2;  // three-tier http-diamond-pg
    topts.seed = 11;
    topts.islands = islands;
    topts.variance.pg_ignore_params.push_back("build_sha");
    topts.variance.http_ignore_headers.push_back("X-Backend-Build");
    std::string report;
    topts.on_divergence = [&report](const DivergenceRecord& r) {
      report += strformat("%s|%s|%s|%llx|%s\n", r.proxy.c_str(),
                          r.verdict.c_str(), attribution_key(r).c_str(),
                          static_cast<unsigned long long>(r.trace_id),
                          r.index.describe().c_str());
    };
    scenario::Topology topo(simu, net, topts);
    sim::ConnPtr probe;
    simu.schedule_at(100 * sim::kMillisecond, [&] {
      sim::ConnectMeta meta;
      meta.source = "probe";
      meta.flow.trace_id = 0xD1CE;
      probe = net.connect(topo.entry(), meta);
      if (!probe) return;
      http::Request req;
      req.method = "GET";
      req.target = "/dbsecret";
      req.headers.set("Host", "front");
      probe->send(req.to_bytes());
    });
    simu.run_until(2 * sim::kSecond);
    return report;
  };

  const std::string one = run(1);
  EXPECT_FALSE(one.empty());
  // The divergence fires two tiers deep; its attribution must not depend
  // on how the simulation is partitioned.
  EXPECT_NE(one.find(strformat(
                "cs=%llx", static_cast<unsigned long long>(
                               ExecutionIndex::site_id("mid-0", "inner:5432")))),
            std::string::npos);
  EXPECT_EQ(one, run(2));
}

}  // namespace
}  // namespace rddr::core
