// Deterministic parallel simulation: multi-island event loop under
// conservative time-window barriers (netsim/parallel.h).
//
// The load-bearing property is the oracle contract: islands(1) — every
// islands-mode code path on, zero worker threads — must produce results
// byte-identical to islands(2/4/8) with real threads, for the raw
// simulator, the frontier scale-out deployment, the shard-kill chaos
// scenario, and the adversarial fuzzer. Wall-clock speed is a bench
// concern (bench/fig5_scaleout --islands); tests pin semantics only.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "chaos/chaos.h"
#include "common/strutil.h"
#include "netsim/fault.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "netsim/parallel.h"
#include "netsim/simulator.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rddr/rddr.h"
#include "scenario/fuzzer.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"

namespace rddr {
namespace {

// ---- raw simulator ----

// A little multi-island program whose output order proves the window
// merge: each island appends (island, time, label) on every event; the
// program sends cross-island messages and runs a global mutation.
std::vector<std::string> run_island_program(size_t islands, int threads) {
  sim::Simulator sim;
  sim::ParallelOptions popts;
  popts.threads = threads;
  popts.min_lookahead = 500;
  sim.configure_islands(islands, popts);
  std::vector<std::string> log;  // only touched from island 0 events

  // Island-local ticking on every island; each tick on island i>0 sends a
  // report event back to island 0, which owns the log.
  for (size_t i = 0; i < sim.island_count(); ++i) {
    auto tick = std::make_shared<std::function<void(int)>>();
    sim::Simulator* sp = &sim;
    *tick = [sp, i, tick, &log](int n) {
      if (n >= 8) return;
      sim::Time now = sp->now();
      sp->schedule_on(0, now + 1000,
                      [&log, i, n, now] {
                        log.push_back(strformat("i%zu n%d t%lld", i, n,
                                                static_cast<long long>(now)));
                      });
      sp->schedule(700 + static_cast<sim::Time>(i) * 13,
                   [tick, n] { (*tick)(n + 1); });
    };
    sim.schedule_on(static_cast<IslandId>(i), 100 + static_cast<sim::Time>(i),
                    [tick] { (*tick)(0); });
  }
  bool global_saw_aligned_clocks = false;
  sim.schedule_global_at(3000, [&] {
    // At a global event every island's clock sits at the same barrier.
    sim::Time t0 = sim.now();
    global_saw_aligned_clocks = true;
    for (size_t i = 0; i < sim.island_count(); ++i)
      global_saw_aligned_clocks &= (t0 == 3000);
    log.push_back("global");
  });
  sim.run_until_idle();
  EXPECT_TRUE(global_saw_aligned_clocks);
  log.push_back(strformat("events %llu", static_cast<unsigned long long>(
                                             sim.events_executed())));
  return log;
}

TEST(ParallelSimulator, CrossIslandMergeIsDeterministic) {
  auto base = run_island_program(4, 1);
  ASSERT_FALSE(base.empty());
  EXPECT_EQ(base, run_island_program(4, 1));
  EXPECT_EQ(base, run_island_program(4, 2));  // threads never change results
  EXPECT_EQ(base, run_island_program(4, 4));
}

TEST(ParallelSimulator, OneIslandOracleMatchesMany) {
  // The program schedules per-island streams; with islands=1 the
  // schedule_on targets clamp onto island 0, so only the cross-island
  // *delivery* path differs. The merged island-0 log must agree.
  auto one = run_island_program(1, 1);
  // Filter to island-0 entries (i0 ...) plus global markers: with one
  // island the other streams land on island 0 too, so full-log equality
  // does not hold; instead determinism of each mode is what matters.
  EXPECT_EQ(one, run_island_program(1, 1));
}

TEST(ParallelSimulator, CancelAcrossIslandIds) {
  sim::Simulator sim;
  sim.configure_islands(3);
  int fired = 0;
  uint64_t id = sim.schedule_on(2, 5000, [&] { ++fired; });
  ASSERT_NE(id, 0u);
  sim.cancel(id);
  sim.schedule_on(2, 6000, [&] { ++fired; });
  sim.run_until_idle();
  EXPECT_EQ(fired, 1);
}

TEST(ParallelSimulator, ExecutorPublishesIslandMetrics) {
  sim::Simulator sim;
  sim.configure_islands(2);
  ASSERT_NE(sim.executor(), nullptr);
  obs::MetricsRegistry reg;
  sim.executor()->bind_metrics(reg);
  for (int n = 0; n < 5; ++n) {
    sim.schedule_on(0, 1000 * (n + 1), [] {});
    sim.schedule_on(1, 1000 * (n + 1) + 7, [] {});
  }
  sim.run_until_idle();
  const obs::Counter* ev0 = reg.find_counter("islands.events.0");
  const obs::Counter* ev1 = reg.find_counter("islands.events.1");
  ASSERT_NE(ev0, nullptr);
  ASSERT_NE(ev1, nullptr);
  EXPECT_GE(ev0->value(), 5u);
  EXPECT_GE(ev1->value(), 5u);
  const obs::Gauge* la = reg.find_gauge("islands.lookahead_ns");
  ASSERT_NE(la, nullptr);
  EXPECT_GT(la->value(), 0.0);
  EXPECT_GT(sim.executor()->stats().windows, 0u);
  EXPECT_GE(sim.executor()->stats().model_speedup(), 1.0);
}

// ---- lookahead under latency faults ----

// A latency-spike fault on a cross-island link must shrink the window,
// never to zero, and must not change results vs the 1-island oracle.
struct EchoRun {
  std::string transcript;
  sim::Time lookahead_seen = 0;
  uint64_t clamps = 0;
};

EchoRun run_echo_with_latency_fault(size_t islands) {
  sim::Simulator sim;
  sim::Network net(sim, 200 * sim::kMicrosecond);
  sim::ParallelOptions popts;
  sim::Network* np = &net;
  popts.lookahead_provider = [np] { return np->min_link_latency(); };
  sim.configure_islands(islands, popts);
  const IslandId isl = islands == 1 ? 0 : 1;
  net.set_node_island("svc", isl);

  net.listen("svc:80", [](sim::ConnPtr c) {
    c->set_on_data([c](ByteView d) { c->send(Bytes("echo:") + Bytes(d)); });
  });
  sim::FaultPlan plan(net);
  // Mid-run the link to svc gets +5ms for 50ms; lookahead must follow it
  // down only as far as the clamp, and deliveries stay causal.
  plan.latency_spike(20 * sim::kMillisecond, 50 * sim::kMillisecond, "svc",
                     5 * sim::kMillisecond);

  EchoRun r;
  auto transcript = std::make_shared<std::string>();
  auto client = net.connect("svc:80", {.source = "cli"});
  EXPECT_NE(client, nullptr);
  client->set_on_data([transcript, &sim](ByteView d) {
    *transcript += strformat("[%lld]", static_cast<long long>(sim.now()));
    transcript->append(reinterpret_cast<const char*>(d.data()), d.size());
  });
  for (int n = 0; n < 20; ++n) {
    sim.schedule_at(n * 5 * sim::kMillisecond + 1,
                    [client, n] { client->send(strformat("m%d", n)); });
  }
  sim.run_until(200 * sim::kMillisecond);
  r.transcript = *transcript;
  if (auto* ex = sim.executor()) {
    r.lookahead_seen = ex->stats().current_lookahead;
    r.clamps = ex->stats().causality_clamps;
  }
  return r;
}

TEST(ParallelIslands, LatencyFaultNeverZeroesLookahead) {
  EchoRun one = run_echo_with_latency_fault(1);
  EchoRun two = run_echo_with_latency_fault(2);
  EXPECT_FALSE(one.transcript.empty());
  EXPECT_EQ(one.transcript, two.transcript);
  EXPECT_EQ(two.clamps, 0u);
  EXPECT_GE(two.lookahead_seen, 1);
  EXPECT_EQ(one.transcript, run_echo_with_latency_fault(2).transcript);
}

// ---- frontier scale-out byte-identity ----

// A compact fig5_scaleout point: 4 shards, each with its own host and
// 3-instance minipg pool, driven by a closed client pool through the
// sharded frontier. Returns the full determinism surface: pool metrics,
// frontier counters, divergences, and the canonical Chrome trace export.
std::string run_scaleout_fingerprint(size_t islands) {
  sim::Simulator sim;
  sim::Network net(sim, 50 * sim::kMicrosecond);
  obs::Tracer tracer([&sim] { return sim.now(); }, /*seed=*/42);

  const size_t kShards = 4;
  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<sim::Host*> host_ptrs;
  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  std::vector<std::vector<std::string>> pools;
  for (size_t k = 0; k < kShards; ++k) {
    hosts.push_back(std::make_unique<sim::Host>(
        sim, "node-" + std::to_string(k), 32, 128LL << 30));
    host_ptrs.push_back(hosts.back().get());
    pools.emplace_back();
    for (int i = 0; i < 3; ++i) {
      std::string addr = strformat("pg-s%zu-%d:5432", k, i);
      auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
      workloads::load_pgbench(*db, 200, 9);
      sqldb::SqlServer::Options so;
      so.address = addr;
      so.cpu_per_query = 2e-3;
      so.rng_seed = 20 + k * 10 + static_cast<uint64_t>(i);
      so.tracer = &tracer;
      dbs.push_back(db);
      servers.push_back(
          std::make_unique<sqldb::SqlServer>(net, *hosts.back(), db, so));
      pools.back().push_back(addr);
    }
  }
  auto front = core::NVersionDeployment::Builder()
                   .name("front")
                   .listen("front:5432")
                   .plugin(std::make_shared<core::PgPlugin>())
                   .filter_pair(true)
                   .cpu_model(50e-6, 5e-9)
                   .shard_versions(pools)
                   .trace(&tracer)
                   .islands(islands)
                   .build_frontier(net, host_ptrs);

  obs::MetricsRegistry registry;
  workloads::ClientPoolOptions opts;
  opts.address = "front:5432";
  opts.clients = 8;
  opts.transactions_per_client = 12;
  opts.seed = 5;
  opts.metrics = &registry;
  opts.metrics_prefix = "pool";
  opts.tracer = &tracer;
  opts.next_query = [](Rng& rng, int, int) {
    return workloads::pgbench_select_tx(rng, 200);
  };
  workloads::run_client_pool(sim, net, opts);

  core::ProxyStats agg = front->aggregate_stats();
  std::string fp = strformat(
      "tps=%.17g mean=%.17g p50=%.17g elapsed=%.17g failed=%llu "
      "sessions=%llu units=%llu divergences=%llu shed=%llu bus=%llu\n",
      registry.gauge("pool.tps")->value(),
      registry.gauge("pool.latency_mean_ms")->value(),
      registry.gauge("pool.latency_p50_ms")->value(),
      registry.gauge("pool.elapsed_s")->value(),
      static_cast<unsigned long long>(
          registry.counter("pool.tx_failed")->value()),
      static_cast<unsigned long long>(agg.sessions),
      static_cast<unsigned long long>(agg.units_compared),
      static_cast<unsigned long long>(agg.divergences),
      static_cast<unsigned long long>(front->stats().shed),
      static_cast<unsigned long long>(front->divergences()));
  fp += tracer.export_chrome();
  return fp;
}

TEST(ParallelIslands, ScaleoutFingerprintIdenticalAcrossIslandCounts) {
  std::string oracle = run_scaleout_fingerprint(1);
  ASSERT_FALSE(oracle.empty());
  EXPECT_EQ(oracle, run_scaleout_fingerprint(1)) << "oracle not stable";
  for (size_t islands : {2u, 4u, 8u}) {
    SCOPED_TRACE(strformat("islands=%zu", islands));
    EXPECT_EQ(oracle, run_scaleout_fingerprint(islands));
    EXPECT_EQ(oracle, run_scaleout_fingerprint(islands)) << "repeat run";
  }
}

// ---- chaos + fuzz report identity ----

TEST(ParallelIslands, ShardKillReportIdenticalAcrossIslandCounts) {
  chaos::ShardKillOptions opts;
  opts.sessions = 60;
  opts.settle = 8 * sim::kSecond;
  auto run = [&](size_t islands) {
    chaos::ShardKillOptions o = opts;
    o.islands = islands;
    return chaos::run_shard_kill(o, /*seed=*/7).summary();
  };
  std::string oracle = run(1);
  ASSERT_FALSE(oracle.empty());
  EXPECT_EQ(oracle, run(1)) << "oracle not stable";
  for (size_t islands : {2u, 4u}) {
    SCOPED_TRACE(strformat("islands=%zu", islands));
    EXPECT_EQ(oracle, run(islands));
    EXPECT_EQ(oracle, run(islands)) << "repeat run";
  }
}

TEST(ParallelIslands, FuzzReportIdenticalAcrossIslandCounts) {
  for (int topo = 0; topo < 2; ++topo) {
    SCOPED_TRACE(strformat("topology=%d", topo));
    scenario::FuzzOptions fopts;
    fopts.topology = topo;
    fopts.benign_sessions = 6;
    fopts.ops_per_family = 1;
    auto run = [&](size_t islands) {
      scenario::FuzzOptions o = fopts;
      o.islands = islands;
      return scenario::run_fuzz_seed(/*seed=*/11, o).summary();
    };
    std::string oracle = run(1);
    ASSERT_FALSE(oracle.empty());
    for (size_t islands : {2u, 4u}) {
      SCOPED_TRACE(strformat("islands=%zu", islands));
      EXPECT_EQ(oracle, run(islands));
    }
  }
}

}  // namespace
}  // namespace rddr
