// Determinism regression for the data-plane / event-loop overhaul.
//
// The simulator substrate promises: same seed => byte-identical results,
// regardless of how the internals schedule, batch, or share buffers. These
// tests pin two seeded end-to-end runs to goldens captured from the
// pre-optimization baseline:
//
//  * Fig5Medians     — the fig5 RDDR deployment (3x minipg, 16 pgbench
//                      clients, seed 5) must reproduce the exact pool
//                      aggregates (tps / latency mean / p50 / elapsed)
//                      down to the last double bit.
//  * TraceChromeExport — the trace_smoke scenario (N=3 HTTP quorum with
//                      one divergent instance, tracer seed 42) must emit a
//                      Chrome trace_event export byte-identical to
//                      tests/golden/trace_smoke_chrome.json.
//
// Set RDDR_DUMP_GOLDEN=<dir> to (re)write the golden files instead of
// comparing — only do that when a change is *supposed* to alter the
// simulation outcome, and say so in the PR.
#include <gtest/gtest.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "rddr/rddr.h"
#include "services/http_service.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"

namespace rddr {
namespace {

#ifndef RDDR_SOURCE_DIR
#define RDDR_SOURCE_DIR "."
#endif

std::string golden_path(const char* name) {
  if (const char* dump = std::getenv("RDDR_DUMP_GOLDEN"))
    return std::string(dump) + "/" + name;
  return std::string(RDDR_SOURCE_DIR) + "/tests/golden/" + name;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream ss;
  ss << in.rdbuf();
  return ss.str();
}

void write_file(const std::string& path, const std::string& content) {
  std::ofstream out(path, std::ios::binary);
  out << content;
}

struct Fig5Point {
  double tps = 0;
  double latency_mean_ms = 0;
  double latency_p50_ms = 0;
  double elapsed_s = 0;
  double failed = 0;
};

// Exactly the fig5 driver's RDDR deployment at 16 clients (seed 5).
Fig5Point run_fig5_rddr_point() {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  sim::Host server_host(simulator, "server", 32, 128LL << 30);

  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  for (int i = 0; i < 3; ++i) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
    workloads::load_pgbench(*db, 20000, 9);
    sqldb::SqlServer::Options so;
    so.address = "pg-" + std::to_string(i) + ":5432";
    so.cpu_per_query = 2e-3;
    so.cpu_per_row = 0;
    so.rng_seed = 20 + static_cast<uint64_t>(i);
    dbs.push_back(db);
    servers.push_back(
        std::make_unique<sqldb::SqlServer>(net, server_host, db, so));
  }
  auto rddr = core::NVersionDeployment::Builder()
                  .listen("front:5432")
                  .versions({"pg-0:5432", "pg-1:5432", "pg-2:5432"})
                  .plugin(std::make_shared<core::PgPlugin>())
                  .filter_pair(true)
                  .cpu_model(50e-6, 5e-9)
                  .build(net, server_host);

  obs::MetricsRegistry registry;
  workloads::ClientPoolOptions opts;
  opts.address = "front:5432";
  opts.clients = 16;
  opts.transactions_per_client = 100;
  opts.seed = 5;
  opts.metrics = &registry;
  opts.metrics_prefix = "pool";
  opts.next_query = [](Rng& rng, int, int) {
    return workloads::pgbench_select_tx(rng, 20000);
  };
  workloads::run_client_pool(simulator, net, opts);

  Fig5Point p;
  p.tps = registry.gauge("pool.tps")->value();
  p.latency_mean_ms = registry.gauge("pool.latency_mean_ms")->value();
  p.latency_p50_ms = registry.gauge("pool.latency_p50_ms")->value();
  p.elapsed_s = registry.gauge("pool.elapsed_s")->value();
  p.failed = static_cast<double>(registry.counter("pool.tx_failed")->value());
  return p;
}

// Exactly bench/trace_smoke.cc's scenario: N=3 HTTP quorum, instance 2
// divergent, tracer seed 42, three sequential requests.
std::string run_trace_chrome_export() {
  sim::Simulator simulator;
  sim::Network net(simulator, 10 * sim::kMicrosecond);
  sim::Host host(simulator, "node", 8, 4LL << 30);

  auto make_instance = [&](const std::string& address,
                           const std::string& body) {
    services::HttpServer::Options o;
    o.address = address;
    auto server = std::make_unique<services::HttpServer>(net, host, o);
    server->set_handler([body](const http::Request&, services::Responder r) {
      r(http::make_response(200, body));
    });
    return server;
  };
  auto i0 = make_instance("svc-0:80", "public data");
  auto i1 = make_instance("svc-1:80", "public data");
  auto i2 = make_instance("svc-2:80", "public data AND A SECRET");

  obs::Tracer tracer([&simulator] { return simulator.now(); }, 42);
  obs::MetricsRegistry registry;
  auto deployment = core::NVersionDeployment::Builder()
                        .listen("svc:80")
                        .versions({"svc-0:80", "svc-1:80", "svc-2:80"})
                        .plugin(std::make_shared<core::HttpPlugin>())
                        .degradation(core::DegradationPolicy::kQuorum)
                        .metrics(&registry)
                        .trace(&tracer)
                        .build(net, host);

  services::HttpClient client(net, "client");
  int served = 0;
  for (int k = 0; k < 3; ++k) {
    simulator.schedule(k * 10 * sim::kMillisecond, [&] {
      client.get("svc:80", "/", [&](int status, const http::Response*) {
        if (status == 200) ++served;
      });
    });
  }
  simulator.run_until_idle();
  EXPECT_EQ(served, 3);
  EXPECT_EQ(tracer.open_spans(), 0u);
  return tracer.export_chrome();
}

TEST(DeterminismRegression, Fig5Medians) {
  Fig5Point p = run_fig5_rddr_point();
  if (std::getenv("RDDR_DUMP_GOLDEN")) {
    char buf[512];
    std::snprintf(buf, sizeof(buf),
                  "tps=%.17g\nlatency_mean_ms=%.17g\nlatency_p50_ms=%.17g\n"
                  "elapsed_s=%.17g\nfailed=%.17g\n",
                  p.tps, p.latency_mean_ms, p.latency_p50_ms, p.elapsed_s,
                  p.failed);
    write_file(golden_path("fig5_rddr_point.txt"), buf);
    GTEST_SKIP() << "golden dumped";
  }
  // Captured at the virtual-time Host scheduler change (which reorders the
  // processor-sharing float arithmetic and so legitimately moved these by
  // ~2e-4 relative); nothing after it may move a single bit of these.
  EXPECT_EQ(p.tps, 4757.3350442613091);
  EXPECT_EQ(p.latency_mean_ms, 3.3577506068749932);
  EXPECT_EQ(p.latency_p50_ms, 3.3599869999999998);
  EXPECT_EQ(p.elapsed_s, 0.33632274899999998);
  EXPECT_EQ(p.failed, 0.0);
}

TEST(DeterminismRegression, TraceChromeExport) {
  std::string chrome = run_trace_chrome_export();
  if (std::getenv("RDDR_DUMP_GOLDEN")) {
    write_file(golden_path("trace_smoke_chrome.json"), chrome);
    GTEST_SKIP() << "golden dumped";
  }
  std::string golden = read_file(golden_path("trace_smoke_chrome.json"));
  ASSERT_FALSE(golden.empty())
      << "missing golden: " << golden_path("trace_smoke_chrome.json");
  // Byte-identical Chrome trace: same span ids, same virtual timestamps,
  // same ordering — scheduling internals must not leak into the output.
  EXPECT_EQ(chrome, golden);
}

// Two runs in the same process must also agree with each other (guards
// against hidden global state in the new buffer sharing / slot reuse).
TEST(DeterminismRegression, RepeatedRunsAgree) {
  std::string a = run_trace_chrome_export();
  std::string b = run_trace_chrome_export();
  EXPECT_EQ(a, b);
}

}  // namespace
}  // namespace rddr
