// Fault injection and graceful degradation: netsim FaultPlan driving
// crashes/partitions under the three DegradationPolicy modes, plus the
// acceptance scenario — a pgbench-style run with a mid-run instance crash
// where kQuorum keeps serving and kStrict does not.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "netsim/fault.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "proto/http/coding.h"
#include "rddr/deployment.h"
#include "rddr/plugins.h"
#include "services/http_service.h"
#include "services/orchestrator.h"
#include "sqldb/client.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"

namespace rddr::core {
namespace {

using services::HttpClient;
using services::HttpServer;

class FaultTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  sim::Network net{sim, 10 * sim::kMicrosecond};
  sim::Host host{sim, "node", 8, 4LL << 30};
  sim::FaultPlan faults{net};

  std::unique_ptr<HttpServer> make_instance(const std::string& address,
                                            const std::string& body) {
    HttpServer::Options o;
    o.address = address;
    auto server = std::make_unique<HttpServer>(net, host, o);
    server->set_handler([body](const http::Request&, services::Responder r) {
      r(http::make_response(200, body));
    });
    return server;
  }

  /// Three minipg instances pg-0..pg-2 loaded with identical pgbench data.
  std::vector<std::unique_ptr<sqldb::SqlServer>> make_pg_instances(
      int accounts) {
    std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
    for (int i = 0; i < 3; ++i) {
      auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
      workloads::load_pgbench(*db, accounts, 9);
      sqldb::SqlServer::Options so;
      so.address = "pg-" + std::to_string(i) + ":5432";
      so.rng_seed = 20 + static_cast<uint64_t>(i);
      servers.push_back(
          std::make_unique<sqldb::SqlServer>(net, host, db, so));
    }
    return servers;
  }

  IncomingProxy::Config pg_proxy_config(DegradationPolicy policy) {
    IncomingProxy::Config cfg;
    cfg.listen_address = "front:5432";
    cfg.instance_addresses = {"pg-0:5432", "pg-1:5432", "pg-2:5432"};
    cfg.plugin = std::make_shared<PgPlugin>();
    cfg.filter_pair = true;
    cfg.degradation = policy;
    cfg.health.reconnect_jitter = 0;  // deterministic probe times
    return cfg;
  }
};

// ---------- instance crash mid-session ----------

TEST_F(FaultTest, QuorumSurvivesInstanceCrashMidSession) {
  auto servers = make_pg_instances(100);
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, pg_proxy_config(DegradationPolicy::kQuorum),
                      &bus);

  sqldb::PgClient client(net, "client", "front:5432", "postgres");
  int ok = 0, bad = 0;
  auto tally = [&](sqldb::QueryOutcome o) { (o.failed() ? bad : ok)++; };
  client.query("SELECT abalance FROM pgbench_accounts WHERE aid = 1", tally);
  faults.crash_at(50 * sim::kMillisecond, "pg-2");
  sim.schedule(100 * sim::kMillisecond, [&] {
    client.query("SELECT abalance FROM pgbench_accounts WHERE aid = 2", tally);
  });
  sim.run_until(5 * sim::kSecond);

  EXPECT_EQ(ok, 2);
  EXPECT_EQ(bad, 0);
  EXPECT_FALSE(client.broken());
  EXPECT_EQ(proxy.stats().divergences, 0u);
  EXPECT_EQ(bus.count(), 0u);
  EXPECT_GE(proxy.stats().instance_unreachable, 1u);
  EXPECT_GE(proxy.stats().degraded_sessions, 1u);
  EXPECT_FALSE(proxy.health().is_healthy(2));
}

TEST_F(FaultTest, StrictRefusesAfterInstanceCrash) {
  auto servers = make_pg_instances(100);
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, pg_proxy_config(DegradationPolicy::kStrict),
                      &bus);

  sqldb::PgClient client(net, "client", "front:5432", "postgres");
  int ok = 0, bad = 0;
  auto tally = [&](sqldb::QueryOutcome o) { (o.failed() ? bad : ok)++; };
  client.query("SELECT abalance FROM pgbench_accounts WHERE aid = 1", tally);
  faults.crash_at(50 * sim::kMillisecond, "pg-2");
  sim.schedule(100 * sim::kMillisecond, [&] {
    client.query("SELECT abalance FROM pgbench_accounts WHERE aid = 2", tally);
  });
  sim.run_until(5 * sim::kSecond);

  EXPECT_EQ(ok, 1);   // first query, before the crash
  EXPECT_EQ(bad, 1);  // second query: unanimity impossible -> intervention
  EXPECT_TRUE(client.broken());
}

// ---------- crash then restart: backoff probe re-admits ----------

TEST_F(FaultTest, CrashThenRestartReconnectsAndReadmits) {
  auto servers = make_pg_instances(100);
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, pg_proxy_config(DegradationPolicy::kQuorum),
                      &bus);

  // pg-2 is down between 10ms and 500ms; the quarantine probe backoff
  // (100ms, 200ms, 400ms, ... no jitter) re-admits it on the first probe
  // after the restart.
  faults.crash_for(10 * sim::kMillisecond, 490 * sim::kMillisecond, "pg-2");

  sqldb::PgClient client(net, "client", "front:5432", "postgres");
  int ok = 0, bad = 0;
  auto tally = [&](sqldb::QueryOutcome o) { (o.failed() ? bad : ok)++; };
  sim.schedule(50 * sim::kMillisecond, [&] {
    client.query("SELECT abalance FROM pgbench_accounts WHERE aid = 1", tally);
  });
  sim.run_until(5 * sim::kSecond);

  EXPECT_EQ(ok, 1);
  EXPECT_EQ(bad, 0);
  EXPECT_GE(proxy.stats().quarantines, 1u);
  EXPECT_EQ(proxy.stats().reconnects, 1u);
  EXPECT_TRUE(proxy.health().is_healthy(2));

  // A fresh session after re-admission replicates to all three again.
  uint64_t degraded_before = proxy.stats().degraded_sessions;
  sqldb::PgClient client2(net, "client", "front:5432", "postgres");
  client2.query("SELECT abalance FROM pgbench_accounts WHERE aid = 2", tally);
  sim.run_until(6 * sim::kSecond);
  EXPECT_EQ(ok, 2);
  EXPECT_EQ(proxy.stats().degraded_sessions, degraded_before);
  EXPECT_EQ(proxy.stats().divergences, 0u);
}

TEST_F(FaultTest, ReconnectGivesUpAndMarksInstanceDead) {
  auto servers = make_pg_instances(100);
  IncomingProxy::Config cfg = pg_proxy_config(DegradationPolicy::kQuorum);
  cfg.health.reconnect_max_attempts = 3;
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, cfg, &bus);

  faults.crash_at(10 * sim::kMillisecond, "pg-2");  // never restarted
  sqldb::PgClient client(net, "client", "front:5432", "postgres");
  int ok = 0, bad = 0;
  auto tally = [&](sqldb::QueryOutcome o) { (o.failed() ? bad : ok)++; };
  sim.schedule(50 * sim::kMillisecond, [&] {
    client.query("SELECT abalance FROM pgbench_accounts WHERE aid = 1", tally);
  });
  sim.run_until_idle();  // terminates: probing is bounded

  EXPECT_EQ(ok, 1);
  EXPECT_EQ(proxy.stats().reconnects, 0u);
  EXPECT_EQ(proxy.health().state(2), HealthTracker::State::kDead);
}

// ---------- quorum outvotes a divergent instance ----------

TEST_F(FaultTest, QuorumOutvotesDivergentInstance) {
  auto i0 = make_instance("svc-0:80", "public data");
  auto i1 = make_instance("svc-1:80", "public data");
  auto i2 = make_instance("svc-2:80", "public data AND A SECRET");

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80", "svc-2:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.degradation = DegradationPolicy::kQuorum;
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, cfg, &bus);

  int status = -2;
  Bytes body;
  HttpClient client(net, "client");
  client.get("svc:80", "/", [&](int s, const http::Response* r) {
    status = s;
    if (r) body = r->body;
  });
  sim.run_until_idle();

  // The majority answer is served; the minority never reaches the client
  // and its instance is quarantined.
  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "public data");
  EXPECT_EQ(proxy.stats().quorum_outvotes, 1u);
  EXPECT_EQ(proxy.stats().divergences, 0u);
  EXPECT_GE(proxy.stats().quarantines, 1u);
  EXPECT_FALSE(proxy.health().is_healthy(2));
  EXPECT_EQ(bus.count(), 0u);
}

TEST_F(FaultTest, QuorumStillIntervenesWhenNoMajority) {
  auto i0 = make_instance("svc-0:80", "answer A");
  auto i1 = make_instance("svc-1:80", "answer B");
  auto i2 = make_instance("svc-2:80", "answer C");

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80", "svc-2:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.degradation = DegradationPolicy::kQuorum;
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, cfg, &bus);

  int status = -2;
  HttpClient client(net, "client");
  client.get("svc:80", "/", [&](int s, const http::Response*) { status = s; });
  sim.run_until_idle();

  EXPECT_EQ(status, 403);
  EXPECT_EQ(proxy.stats().divergences, 1u);
  EXPECT_EQ(bus.count(), 1u);
}

// ---------- fail-open below two healthy instances ----------

TEST_F(FaultTest, FailOpenServesUncomparedWithAlertCounters) {
  auto i0 = make_instance("svc-0:80", "only survivor");
  auto i1 = make_instance("svc-1:80", "only survivor");
  auto i2 = make_instance("svc-2:80", "only survivor");

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80", "svc-2:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.degradation = DegradationPolicy::kFailOpen;
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, cfg, &bus);

  faults.crash_at(sim::kMillisecond, "svc-1");
  faults.crash_at(sim::kMillisecond, "svc-2");

  int status = -2;
  Bytes body;
  HttpClient client(net, "client");
  sim.schedule(10 * sim::kMillisecond, [&] {
    client.get("svc:80", "/", [&](int s, const http::Response* r) {
      status = s;
      if (r) body = r->body;
    });
  });
  sim.run_until(20 * sim::kSecond);

  EXPECT_EQ(status, 200);
  EXPECT_EQ(body, "only survivor");
  EXPECT_EQ(proxy.stats().passthrough_sessions, 1u);
  EXPECT_EQ(proxy.stats().degraded_sessions, 1u);
  EXPECT_EQ(proxy.stats().instance_unreachable, 2u);
  EXPECT_EQ(proxy.stats().divergences, 0u);
}

TEST_F(FaultTest, QuorumRefusesBelowTwoHealthy) {
  auto i0 = make_instance("svc-0:80", "only survivor");
  auto i1 = make_instance("svc-1:80", "only survivor");
  auto i2 = make_instance("svc-2:80", "only survivor");

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80", "svc-2:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.degradation = DegradationPolicy::kQuorum;
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, cfg, &bus);

  faults.crash_at(sim::kMillisecond, "svc-1");
  faults.crash_at(sim::kMillisecond, "svc-2");

  int status = -2;
  HttpClient client(net, "client");
  sim.schedule(10 * sim::kMillisecond, [&] {
    client.get("svc:80", "/", [&](int s, const http::Response*) { status = s; });
  });
  sim.run_until(20 * sim::kSecond);

  // Fail closed: a single unverifiable instance is not served.
  EXPECT_EQ(status, 403);
  EXPECT_EQ(proxy.stats().passthrough_sessions, 0u);
  EXPECT_EQ(proxy.stats().divergences, 0u);
}

// ---------- partition between the proxy and one instance ----------

TEST_F(FaultTest, PartitionDropsIsolatedInstanceAndHeals) {
  auto servers = make_pg_instances(100);
  DivergenceBus bus(sim);
  IncomingProxy proxy(net, host, pg_proxy_config(DegradationPolicy::kQuorum),
                      &bus);

  // pg-2 is on the wrong side of the partition from 30ms to 400ms; the
  // proxy (named "rddr-in"), the client, and pg-0/pg-1 stay connected.
  faults.partition_for(30 * sim::kMillisecond, 370 * sim::kMillisecond,
                       {"rddr-in", "client", "pg-0", "pg-1", "front"});

  sqldb::PgClient client(net, "client", "front:5432", "postgres");
  int ok = 0, bad = 0;
  auto tally = [&](sqldb::QueryOutcome o) { (o.failed() ? bad : ok)++; };
  client.query("SELECT abalance FROM pgbench_accounts WHERE aid = 1", tally);
  sim.schedule(100 * sim::kMillisecond, [&] {
    client.query("SELECT abalance FROM pgbench_accounts WHERE aid = 2", tally);
  });
  sim.run_until(10 * sim::kSecond);

  EXPECT_EQ(ok, 2);
  EXPECT_EQ(bad, 0);
  EXPECT_FALSE(client.broken());
  EXPECT_EQ(proxy.stats().divergences, 0u);
  EXPECT_GE(proxy.stats().instance_unreachable, 1u);
  // After the partition heals, a backoff probe re-admits pg-2.
  EXPECT_EQ(proxy.stats().reconnects, 1u);
  EXPECT_TRUE(proxy.health().is_healthy(2));
}

// ---------- orchestrator-level crash/restart ----------

TEST_F(FaultTest, OrchestratorRestartPolicyRevivesCrashedContainer) {
  services::Orchestrator orch(sim, net);
  orch.add_host("m1", 8, 4LL << 30);
  int builds = 0;
  orch.register_image("web", [&](const services::ContainerSpec& spec) {
    ++builds;
    HttpServer::Options o;
    o.address = spec.address;
    auto server = std::make_shared<HttpServer>(net, orch.host("m1"), o);
    server->set_handler([](const http::Request&, services::Responder r) {
      r(http::make_response(200, "alive"));
    });
    return server;
  });
  orch.deploy("web-0", "web", "v1", "m1", "web-0:80");
  orch.set_restart_policy({.auto_restart = true,
                           .restart_delay = 100 * sim::kMillisecond});

  orch.crash("web-0");
  EXPECT_TRUE(orch.crashed("web-0"));
  EXPECT_EQ(net.connect("web-0:80", {.source = "probe"}),
            nullptr);

  sim.run_until(sim::kSecond);
  EXPECT_FALSE(orch.crashed("web-0"));
  EXPECT_EQ(builds, 2);  // factory re-ran with the remembered spec

  int status = -2;
  HttpClient client(net, "client");
  client.get("web-0:80", "/", [&](int s, const http::Response*) { status = s; });
  sim.run_until_idle();
  EXPECT_EQ(status, 200);
}

// ---------- acceptance: availability under a mid-run crash ----------

// N=3, one instance crashed mid-run via FaultPlan, 1000 pgbench-style
// requests: kQuorum completes >= 99% with zero (false) interventions,
// kStrict serves ~0% of what remains after the crash.
class FaultAvailabilityTest : public ::testing::Test {
 protected:
  static constexpr int kAccounts = 1000;
  static constexpr int kClients = 10;
  static constexpr int kTxPerClient = 100;
  static constexpr sim::Time kCrashAt = 40 * sim::kMillisecond;

  struct Run {
    workloads::PoolResult pool;
    ProxyStats stats;
    uint64_t bus_events = 0;
    uint64_t served_after_crash = 0;
  };

  Run run_policy(DegradationPolicy policy) {
    sim::Simulator sim;
    sim::Network net(sim, 10 * sim::kMicrosecond);
    sim::Host host(sim, "node", 32, 16LL << 30);
    sim::FaultPlan faults(net);

    std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
    for (int i = 0; i < 3; ++i) {
      auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
      workloads::load_pgbench(*db, kAccounts, 9);
      sqldb::SqlServer::Options so;
      so.address = "pg-" + std::to_string(i) + ":5432";
      so.rng_seed = 20 + static_cast<uint64_t>(i);
      // Slow queries (2 ms CPU) so the crash lands mid-run, not after it.
      so.cpu_per_query = 2e-3;
      so.cpu_per_row = 0;
      servers.push_back(
          std::make_unique<sqldb::SqlServer>(net, host, db, so));
    }

    IncomingProxy::Config cfg;
    cfg.listen_address = "front:5432";
    cfg.instance_addresses = {"pg-0:5432", "pg-1:5432", "pg-2:5432"};
    cfg.plugin = std::make_shared<PgPlugin>();
    cfg.filter_pair = true;
    cfg.degradation = policy;
    cfg.health.reconnect_jitter = 0;
    DivergenceBus bus(sim);
    IncomingProxy proxy(net, host, cfg, &bus);

    faults.crash_at(kCrashAt, "pg-2");

    Run r;
    workloads::ClientPoolOptions opts;
    opts.address = "front:5432";
    opts.clients = kClients;
    opts.transactions_per_client = kTxPerClient;
    opts.seed = 5;
    opts.next_query = [](Rng& rng, int, int) {
      return workloads::pgbench_select_tx(rng, kAccounts);
    };
    opts.on_tx_complete = [&](int, int, double) {
      if (sim.now() > kCrashAt) ++r.served_after_crash;
    };
    r.pool = workloads::run_client_pool(sim, net, opts);
    r.stats = proxy.stats();
    r.bus_events = bus.count();
    return r;
  }
};

TEST_F(FaultAvailabilityTest, QuorumServesThroughCrashStrictDoesNot) {
  const uint64_t total =
      static_cast<uint64_t>(kClients) * static_cast<uint64_t>(kTxPerClient);

  Run quorum = run_policy(DegradationPolicy::kQuorum);
  EXPECT_EQ(quorum.pool.completed + quorum.pool.failed, total);
  // >= 99% served, zero false interventions.
  EXPECT_GE(quorum.pool.completed, total * 99 / 100);
  EXPECT_EQ(quorum.stats.divergences, 0u);
  EXPECT_EQ(quorum.bus_events, 0u);
  EXPECT_GE(quorum.stats.degraded_sessions, 1u);
  EXPECT_GE(quorum.served_after_crash, total / 2);

  Run strict = run_policy(DegradationPolicy::kStrict);
  // Unanimity cannot be re-established once an instance is gone: at most a
  // straggler response already in flight completes after the crash.
  EXPECT_LE(strict.served_after_crash, static_cast<uint64_t>(kClients));
  EXPECT_LT(strict.pool.completed, total / 2);
  EXPECT_GE(strict.pool.failed, total / 2);
}

}  // namespace
}  // namespace rddr::core
