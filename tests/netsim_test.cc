// Unit tests for the simulator, network, and processor-sharing host.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "netsim/simulator.h"

namespace rddr::sim {
namespace {

TEST(Simulator, RunsEventsInTimeOrder) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(300, [&] { order.push_back(3); });
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(200, [&] { order.push_back(2); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(sim.now(), 300);
}

TEST(Simulator, FifoTieBreakAtSameTime) {
  Simulator sim;
  std::vector<int> order;
  sim.schedule(100, [&] { order.push_back(1); });
  sim.schedule(100, [&] { order.push_back(2); });
  sim.schedule(100, [&] { order.push_back(3); });
  sim.run_until_idle();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
}

TEST(Simulator, CancelPreventsExecution) {
  Simulator sim;
  bool ran = false;
  uint64_t id = sim.schedule(100, [&] { ran = true; });
  sim.cancel(id);
  sim.run_until_idle();
  EXPECT_FALSE(ran);
}

TEST(Simulator, NestedScheduling) {
  Simulator sim;
  int hits = 0;
  sim.schedule(10, [&] {
    ++hits;
    sim.schedule(10, [&] { ++hits; });
  });
  sim.run_until_idle();
  EXPECT_EQ(hits, 2);
  EXPECT_EQ(sim.now(), 20);
}

TEST(Simulator, RunUntilAdvancesClock) {
  Simulator sim;
  int hits = 0;
  sim.schedule(50, [&] { ++hits; });
  sim.schedule(500, [&] { ++hits; });
  sim.run_until(100);
  EXPECT_EQ(hits, 1);
  EXPECT_EQ(sim.now(), 100);
  sim.run_until_idle();
  EXPECT_EQ(hits, 2);
}

class NetworkTest : public ::testing::Test {
 protected:
  Simulator sim;
  Network net{sim, 10 * kMicrosecond};
};

TEST_F(NetworkTest, ConnectRefusedWithoutListener) {
  EXPECT_EQ(net.connect("nobody:1"), nullptr);
}

TEST_F(NetworkTest, EchoRoundTrip) {
  ConnPtr server_side;
  net.listen("svc:80", [&](ConnPtr c) {
    server_side = c;
    c->set_on_data([c](ByteView data) { c->send(Bytes("echo:") + Bytes(data)); });
  });
  auto client = net.connect("svc:80", {.source = "client"});
  ASSERT_NE(client, nullptr);
  Bytes got;
  client->set_on_data([&](ByteView d) { got += Bytes(d); });
  client->send("hi");
  sim.run_until_idle();
  EXPECT_EQ(got, "echo:hi");
  ASSERT_NE(server_side, nullptr);
  EXPECT_EQ(server_side->meta().source, "client");
}

TEST_F(NetworkTest, AcceptQueueUnboundedByDefault) {
  int accepted = 0;
  net.listen("svc:80", [&](ConnPtr) { ++accepted; });
  std::vector<ConnPtr> conns;
  for (int i = 0; i < 100; ++i) conns.push_back(net.connect("svc:80"));
  for (const auto& c : conns) EXPECT_NE(c, nullptr);
  sim.run_until_idle();
  EXPECT_EQ(accepted, 100);
  EXPECT_EQ(net.accepts_refused(), 0u);
}

TEST_F(NetworkTest, AcceptQueueDepthRefusesOverflowDeterministically) {
  int accepted = 0;
  net.listen("svc:80", [&](ConnPtr) { ++accepted; });
  net.set_accept_queue_depth("svc:80", 2);
  // Three simultaneous connects: the accept events are still in flight, so
  // the third arrival finds the backlog full and is refused synchronously.
  auto c1 = net.connect("svc:80");
  auto c2 = net.connect("svc:80");
  EXPECT_EQ(net.accept_queue_len("svc:80"), 2u);
  auto c3 = net.connect("svc:80");
  EXPECT_NE(c1, nullptr);
  EXPECT_NE(c2, nullptr);
  EXPECT_EQ(c3, nullptr);
  EXPECT_EQ(net.accepts_refused(), 1u);
  sim.run_until_idle();
  EXPECT_EQ(accepted, 2);
  // Once the backlog drained, new connects are accepted again.
  EXPECT_EQ(net.accept_queue_len("svc:80"), 0u);
  auto c4 = net.connect("svc:80");
  EXPECT_NE(c4, nullptr);
  sim.run_until_idle();
  EXPECT_EQ(accepted, 3);
  // Depth 0 restores unbounded accepts.
  net.set_accept_queue_depth("svc:80", 0);
  std::vector<ConnPtr> burst;
  for (int i = 0; i < 10; ++i) burst.push_back(net.connect("svc:80"));
  for (const auto& c : burst) EXPECT_NE(c, nullptr);
  sim.run_until_idle();
  EXPECT_EQ(accepted, 13);
  EXPECT_EQ(net.accepts_refused(), 1u);
}

TEST_F(NetworkTest, FifoOrderingPreserved) {
  Bytes got;
  net.listen("svc:80", [&](ConnPtr c) {
    c->set_on_data([&got](ByteView d) { got += Bytes(d); });
  });
  auto client = net.connect("svc:80");
  client->send("a");
  client->send("b");
  client->send("c");
  sim.run_until_idle();
  EXPECT_EQ(got, "abc");
}

TEST_F(NetworkTest, DataBeforeHandlerIsBuffered) {
  ConnPtr server_side;
  net.listen("svc:80", [&](ConnPtr c) { server_side = c; });
  auto client = net.connect("svc:80");
  client->send("early");
  sim.run_until_idle();
  ASSERT_NE(server_side, nullptr);
  Bytes got;
  server_side->set_on_data([&](ByteView d) { got += Bytes(d); });
  sim.run_until_idle();
  EXPECT_EQ(got, "early");
}

TEST_F(NetworkTest, CloseDeliversAfterData) {
  std::vector<std::string> events;
  net.listen("svc:80", [&](ConnPtr c) {
    c->set_on_data([&](ByteView d) { events.push_back("data:" + std::string(d)); });
    c->set_on_close([&] { events.push_back("close"); });
  });
  auto client = net.connect("svc:80");
  client->send("bye");
  client->close();
  sim.run_until_idle();
  ASSERT_EQ(events.size(), 2u);
  EXPECT_EQ(events[0], "data:bye");
  EXPECT_EQ(events[1], "close");
}

TEST_F(NetworkTest, LatencyIsApplied) {
  net.listen("svc:80", [&](ConnPtr c) { c->set_on_data([](ByteView) {}); });
  Time t_connected = -1;
  auto client = net.connect("svc:80");
  (void)client;
  // Accept fires after exactly one link latency.
  sim.schedule(0, [] {});
  sim.run_until_idle();
  t_connected = sim.now();
  EXPECT_EQ(t_connected, 10 * kMicrosecond);
}

TEST_F(NetworkTest, PeerSendAfterCloseIsDropped) {
  ConnPtr server_side;
  net.listen("svc:80", [&](ConnPtr c) { server_side = c; });
  auto client = net.connect("svc:80");
  sim.run_until_idle();
  client->close();
  sim.run_until_idle();
  EXPECT_FALSE(server_side->is_open());
  server_side->send("too late");  // must not crash or deliver
  Bytes got;
  client->set_on_data([&](ByteView d) { got += Bytes(d); });
  sim.run_until_idle();
  EXPECT_EQ(got, "");
}

class HostTest : public ::testing::Test {
 protected:
  Simulator sim;
};

TEST_F(HostTest, SingleTaskTakesItsCost) {
  Host host(sim, "h", 4, 1LL << 30);
  bool done = false;
  host.run_task(0.5, [&] { done = true; });
  sim.run_until_idle();
  EXPECT_TRUE(done);
  EXPECT_NEAR(to_seconds(sim.now()), 0.5, 1e-6);
}

TEST_F(HostTest, TasksWithinCoreCountRunInParallel) {
  Host host(sim, "h", 4, 1LL << 30);
  int done = 0;
  for (int i = 0; i < 4; ++i) host.run_task(1.0, [&] { ++done; });
  sim.run_until_idle();
  EXPECT_EQ(done, 4);
  EXPECT_NEAR(to_seconds(sim.now()), 1.0, 1e-6);  // no contention
}

TEST_F(HostTest, ProcessorSharingSlowsOverload) {
  Host host(sim, "h", 2, 1LL << 30);
  int done = 0;
  for (int i = 0; i < 4; ++i) host.run_task(1.0, [&] { ++done; });
  sim.run_until_idle();
  EXPECT_EQ(done, 4);
  // 4 core-seconds of work on 2 cores => 2 seconds wall.
  EXPECT_NEAR(to_seconds(sim.now()), 2.0, 1e-6);
}

TEST_F(HostTest, WorkConservation) {
  // Regardless of arrival pattern, total busy-core-seconds equals the work
  // submitted.
  Host host(sim, "h", 3, 1LL << 30);
  double total_work = 0;
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    double work = 0.01 + rng.uniform01() * 0.2;
    total_work += work;
    sim.schedule(from_seconds(rng.uniform01() * 0.5),
                 [&host, work] { host.run_task(work, nullptr); });
  }
  sim.run_until_idle();
  EXPECT_NEAR(host.busy_core_seconds(), total_work, 1e-6);
}

TEST_F(HostTest, StaggeredArrivalCompletes) {
  Host host(sim, "h", 1, 1LL << 30);
  std::vector<double> completion;
  host.run_task(1.0, [&] { completion.push_back(to_seconds(sim.now())); });
  sim.schedule(from_seconds(0.5), [&] {
    host.run_task(1.0, [&] { completion.push_back(to_seconds(sim.now())); });
  });
  sim.run_until_idle();
  ASSERT_EQ(completion.size(), 2u);
  // First task: 0.5s alone + shares [0.5, 1.5] => finishes at 1.5.
  EXPECT_NEAR(completion[0], 1.5, 1e-6);
  // Second: got 0.5 core-seconds by 1.5, runs alone after => 2.0.
  EXPECT_NEAR(completion[1], 2.0, 1e-6);
}

TEST_F(HostTest, MemoryLedgerAndPeak) {
  Host host(sim, "h", 1, 1LL << 30);
  host.charge_memory(100);
  sim.run_until(1000);
  host.charge_memory(50);
  host.release_memory(120);
  EXPECT_EQ(host.memory_bytes(), 30);
  EXPECT_DOUBLE_EQ(host.max_memory_bytes(), 150.0);
}

TEST_F(HostTest, ZeroCostTaskCompletes) {
  Host host(sim, "h", 1, 1LL << 30);
  bool done = false;
  host.run_task(0.0, [&] { done = true; });
  sim.run_until_idle();
  EXPECT_TRUE(done);
}

TEST_F(HostTest, SamplingRecordsSeries) {
  Host host(sim, "h", 2, 1LL << 30);
  host.start_sampling(from_seconds(0.1));
  host.run_task(0.5, nullptr);
  host.run_task(0.5, nullptr);
  sim.run_until(from_seconds(1.0));
  host.stop_sampling();
  ASSERT_GE(host.samples().size(), 10u);
  // While both tasks run, both cores are busy.
  EXPECT_DOUBLE_EQ(host.samples()[1].cpu_pct, 100.0);
  // After completion, idle.
  EXPECT_DOUBLE_EQ(host.samples().back().cpu_pct, 0.0);
}

TEST_F(HostTest, MeanUtilization) {
  Host host(sim, "h", 2, 1LL << 30);
  host.run_task(1.0, nullptr);  // one core busy for 1s
  sim.run_until(from_seconds(2.0));
  // 1 core-second over 2s on 2 cores = 25%.
  EXPECT_NEAR(host.mean_utilization(), 0.25, 1e-6);
}

TEST_F(HostTest, FailedHostDropsWork) {
  Host host(sim, "h", 1, 1LL << 30);
  bool done = false;
  host.run_task(1.0, [&] { done = true; });
  sim.schedule(from_seconds(0.5), [&] { host.fail(); });
  sim.run_until_idle();
  EXPECT_FALSE(done);  // the in-flight task died with the host
  EXPECT_TRUE(host.failed());
  host.restore();
  host.run_task(0.1, [&] { done = true; });
  sim.run_until_idle();
  EXPECT_TRUE(done);
}

// ---------- fault injection ----------

class FaultNetTest : public ::testing::Test {
 protected:
  Simulator sim;
  Network net{sim, 10 * kMicrosecond};

  /// Echo listener at `address`; returns a counter of accepted conns.
  std::shared_ptr<int> listen_echo(const std::string& address) {
    auto accepted = std::make_shared<int>(0);
    net.listen(address, [accepted](ConnPtr c) {
      ++*accepted;
      c->set_on_data([c](ByteView d) { c->send(Bytes(d)); });
    });
    return accepted;
  }
};

TEST_F(FaultNetTest, CrashSeversConnectionsAndRefusesNewOnes) {
  listen_echo("srv:1");
  auto conn = net.connect("srv:1", {.source = "cli"});
  ASSERT_NE(conn, nullptr);
  bool closed = false;
  conn->set_on_close([&] { closed = true; });
  sim.run_until_idle();

  net.crash_node("srv");
  sim.run_until_idle();
  EXPECT_TRUE(closed);
  EXPECT_TRUE(net.node_down("srv"));
  EXPECT_EQ(net.connect("srv:1", {.source = "cli"}),
            nullptr);
  EXPECT_EQ(net.live_connections("srv"), 0u);

  net.restart_node("srv");
  EXPECT_NE(net.connect("srv:1", {.source = "cli"}),
            nullptr);
}

TEST_F(FaultNetTest, CrashLosesInFlightBytes) {
  Bytes got;
  ConnPtr server_side;
  net.listen("srv:1", [&](ConnPtr c) {
    server_side = c;
    c->set_on_data([&got](ByteView d) { got += Bytes(d); });
  });
  auto conn = net.connect("srv:1", {.source = "cli"});
  sim.run_until_idle();
  // Bytes sent but not yet delivered when the sender's node crashes are
  // lost (abort, not graceful close).
  conn->send("lost");
  net.crash_node("cli");
  sim.run_until_idle();
  EXPECT_EQ(got, "");
}

TEST_F(FaultNetTest, RefusedAddressBlocksOnlyThatAddress) {
  listen_echo("srv:1");
  listen_echo("srv:2");
  net.refuse_address("srv:1", true);
  EXPECT_EQ(net.connect("srv:1", {.source = "cli"}),
            nullptr);
  EXPECT_NE(net.connect("srv:2", {.source = "cli"}),
            nullptr);
  net.refuse_address("srv:1", false);
  EXPECT_NE(net.connect("srv:1", {.source = "cli"}),
            nullptr);
}

TEST_F(FaultNetTest, ExtraLatencyDelaysDelivery) {
  listen_echo("srv:1");
  auto conn = net.connect("srv:1", {.source = "cli"});
  sim.run_until_idle();
  net.set_node_extra_latency("srv", kMillisecond);
  Time sent_at = sim.now();
  Time got_at = 0;
  conn->set_on_data([&](ByteView) { got_at = sim.now(); });
  conn->send("ping");
  sim.run_until_idle();
  // Round trip: 2 hops of base latency, each inflated by the spike.
  EXPECT_EQ(got_at - sent_at, 2 * (10 * kMicrosecond + kMillisecond));
}

TEST_F(FaultNetTest, EgressStallHoldsBytesUntilDeadline) {
  Bytes got;
  ConnPtr server_side;
  net.listen("srv:1", [&](ConnPtr c) {
    server_side = c;
    c->set_on_data([&got](ByteView d) { got += Bytes(d); });
  });
  auto conn = net.connect("srv:1", {.source = "cli"});
  sim.run_until_idle();
  net.stall_node_egress_until("cli", 5 * kMillisecond);
  conn->send("late");
  sim.run_until(4 * kMillisecond);
  EXPECT_EQ(got, "");  // still stalled
  sim.run_until_idle();
  EXPECT_EQ(got, "late");
  EXPECT_GE(sim.now(), 5 * kMillisecond);
}

TEST_F(FaultNetTest, PartitionBlocksCrossGroupAndHeals) {
  listen_echo("a:1");
  listen_echo("b:1");
  auto cross = net.connect("b:1", {.source = "a"});
  ASSERT_NE(cross, nullptr);
  bool cross_closed = false;
  cross->set_on_close([&] { cross_closed = true; });
  sim.run_until_idle();

  net.partition({"a", "c"});
  sim.run_until_idle();
  EXPECT_TRUE(cross_closed);  // severed: a and b are now on opposite sides
  EXPECT_EQ(net.connect("b:1", {.source = "a"}), nullptr);
  EXPECT_NE(net.connect("a:1", {.source = "c"}), nullptr);

  net.heal_partition();
  EXPECT_NE(net.connect("b:1", {.source = "a"}), nullptr);
}

// ---- cancel regression: O(1), no retained state, stale ids harmless ----

TEST(SimulatorCancel, CancelAfterFireIsANoop) {
  Simulator sim;
  int ran = 0;
  uint64_t id = sim.schedule(100, [&] { ++ran; });
  sim.run_until_idle();
  EXPECT_EQ(ran, 1);
  sim.cancel(id);  // must not blow up, miscount, or retain anything
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 0u);
  sim.run_until_idle();
  EXPECT_EQ(ran, 1);
}

TEST(SimulatorCancel, DoubleCancelCountsOnce) {
  Simulator sim;
  uint64_t id = sim.schedule(100, [] {});
  sim.schedule(200, [] {});
  EXPECT_EQ(sim.pending_events(), 2u);
  sim.cancel(id);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.cancel(id);  // regression: used to be able to skew the pending count
  EXPECT_EQ(sim.pending_events(), 1u);
  EXPECT_EQ(sim.run_until_idle(), 1u);
}

TEST(SimulatorCancel, StaleIdDoesNotCancelSlotReusingEvent) {
  Simulator sim;
  // Fire-and-release an event so its storage slot goes back on the free
  // list, then schedule a fresh event that reuses the slot. The stale id
  // (same slot, older generation) must not touch the new event.
  uint64_t stale = sim.schedule(10, [] {});
  sim.run_until_idle();
  bool ran = false;
  sim.schedule(10, [&] { ran = true; });
  sim.cancel(stale);
  EXPECT_EQ(sim.pending_events(), 1u);
  sim.run_until_idle();
  EXPECT_TRUE(ran);
}

TEST(SimulatorCancel, PendingCountExactThroughChurn) {
  Simulator sim;
  // Heavy schedule/cancel/fire churn: pending_events must track exactly
  // (the old implementation's cancelled-set bookkeeping could drift, and
  // grew without bound under cancel-heavy workloads).
  Rng rng(7);
  size_t expected = 0;
  std::vector<uint64_t> live;
  for (int round = 0; round < 200; ++round) {
    uint64_t id = sim.schedule(static_cast<Time>(rng.uniform(1, 50)), [] {});
    live.push_back(id);
    ++expected;
    if (rng.uniform(0, 2) == 0 && !live.empty()) {
      size_t k = static_cast<size_t>(
          rng.uniform(0, static_cast<int>(live.size()) - 1));
      sim.cancel(live[k]);
      sim.cancel(live[k]);  // double-cancel must not double-count
      live.erase(live.begin() + static_cast<long>(k));
      --expected;
    }
    ASSERT_EQ(sim.pending_events(), expected);
    if (round % 17 == 0) {
      while (sim.step()) --expected;
      live.clear();
      ASSERT_EQ(sim.pending_events(), 0u);
      expected = 0;
    }
  }
  sim.run_until_idle();
  EXPECT_EQ(sim.pending_events(), 0u);
}

TEST(SimulatorCancel, CancelFromInsideEventCancelsLaterSameTickEvent) {
  Simulator sim;
  bool second_ran = false;
  uint64_t second = 0;
  sim.schedule(100, [&] { sim.cancel(second); });
  second = sim.schedule(100, [&] { second_ran = true; });
  sim.run_until_idle();
  EXPECT_FALSE(second_ran);
}

TEST(Simulator, MoveOnlyCaptureAndLastScheduledId) {
  Simulator sim;
  auto payload = std::make_unique<int>(41);
  int got = 0;
  // std::function could not hold this capture; EventFn must.
  uint64_t id = sim.schedule(5, [p = std::move(payload), &got] { got = *p + 1; });
  EXPECT_EQ(sim.last_scheduled_id(), id);
  sim.run_until_idle();
  EXPECT_EQ(got, 42);
}

// ---- zero-copy data plane ----

TEST(NetworkSharedBytes, SharedSendFansOutWithoutCopying) {
  Simulator sim;
  Network net(sim, 100);
  std::vector<Bytes> got(3);
  std::vector<ConnPtr> accepted;
  for (int i = 0; i < 3; ++i)
    net.listen("up-" + std::to_string(i) + ":1",
               [&got, &accepted, i](ConnPtr c) {
                 c->set_on_data([&got, i](ByteView d) {
                   got[static_cast<size_t>(i)] += Bytes(d);
                 });
                 accepted.push_back(std::move(c));
               });
  std::vector<ConnPtr> conns;
  for (int i = 0; i < 3; ++i)
    conns.push_back(net.connect("up-" + std::to_string(i) + ":1",
                                {.source = "proxy"}));
  sim.run_until_idle();

  SharedBytes payload{Bytes("select 1;")};
  for (auto& c : conns) c->send(payload);
  sim.run_until_idle();
  for (int i = 0; i < 3; ++i) EXPECT_EQ(got[static_cast<size_t>(i)], "select 1;");
  // Three sends of nine bytes, none copied by the transport.
  EXPECT_EQ(net.payload_bytes_sent(), 27u);
  EXPECT_EQ(net.payload_bytes_copied(), 0u);
}

TEST(NetworkSharedBytes, ByteViewSendCountsCopies) {
  Simulator sim;
  Network net(sim, 100);
  Bytes got;
  ConnPtr server_side;
  net.listen("srv:1", [&](ConnPtr c) {
    server_side = c;
    c->set_on_data([&](ByteView d) { got += Bytes(d); });
  });
  auto conn = net.connect("srv:1", {.source = "cli"});
  sim.run_until_idle();
  conn->send("hello");
  sim.run_until_idle();
  EXPECT_EQ(got, "hello");
  EXPECT_EQ(net.payload_bytes_sent(), 5u);
  EXPECT_EQ(net.payload_bytes_copied(), 5u);
}

TEST(NetworkSharedBytes, SameTickSendsBatchIntoOneDelivery) {
  Simulator sim;
  Network net(sim, 100);
  std::vector<Bytes> chunks;
  ConnPtr server_side;
  net.listen("srv:1", [&](ConnPtr c) {
    server_side = c;
    c->set_on_data([&](ByteView d) { chunks.push_back(Bytes(d)); });
  });
  auto conn = net.connect("srv:1", {.source = "cli"});
  sim.run_until_idle();
  // Three sends in the same tick with nothing scheduled in between ride
  // one delivery event; the receiver sees the concatenation at the same
  // virtual instant it always did.
  conn->send("aa");
  conn->send("bb");
  conn->send("cc");
  sim.run_until_idle();
  ASSERT_EQ(chunks.size(), 1u);
  EXPECT_EQ(chunks[0], "aabbcc");
}

TEST(NetworkSharedBytes, InterleavedScheduleBreaksBatch) {
  Simulator sim;
  Network net(sim, 100);
  std::vector<Bytes> chunks;
  ConnPtr server_side;
  net.listen("srv:1", [&](ConnPtr c) {
    server_side = c;
    c->set_on_data([&](ByteView d) { chunks.push_back(Bytes(d)); });
  });
  auto conn = net.connect("srv:1", {.source = "cli"});
  sim.run_until_idle();
  conn->send("aa");
  // An unrelated event scheduled between the sends could observe the gap:
  // batching must not reorder across it, so the second send gets its own
  // delivery.
  sim.schedule(100, [] {});
  conn->send("bb");
  sim.run_until_idle();
  ASSERT_EQ(chunks.size(), 2u);
  EXPECT_EQ(chunks[0], "aa");
  EXPECT_EQ(chunks[1], "bb");
}

TEST(NetworkSharedBytes, CloseStillDeliversBatchedBytesFirst) {
  Simulator sim;
  Network net(sim, 100);
  Bytes got;
  bool closed = false;
  ConnPtr server_side;
  net.listen("srv:1", [&](ConnPtr c) {
    server_side = c;
    c->set_on_data([&](ByteView d) { got += Bytes(d); });
    c->set_on_close([&] { closed = true; });
  });
  auto conn = net.connect("srv:1", {.source = "cli"});
  sim.run_until_idle();
  conn->send("one");
  conn->send("two");
  conn->close();
  sim.run_until_idle();
  EXPECT_EQ(got, "onetwo");
  EXPECT_TRUE(closed);
}

}  // namespace
}  // namespace rddr::sim
