#!/usr/bin/env bash
# Build and run the test suite under AddressSanitizer + UBSan.
#
#   tests/run_sanitized.sh [ctest-args...]
#
# Uses the `asan` CMake preset (build dir: build-asan/). Any extra
# arguments are passed through to ctest. Note that ctest sees the
# gtest-discovered *test* names (Suite.Case), not binary names, e.g.
#   tests/run_sanitized.sh -R 'FaultTest|FaultNetTest'
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

cmake --preset asan
cmake --build --preset asan -j "$(nproc)"

# Leak checking is off by default: netsim Connections are kept alive by
# self-referential on_data handlers (a deliberate lifetime idiom in the
# simulator), which LSan reports as cycles. Opt back in with
#   ASAN_OPTIONS=detect_leaks=1 tests/run_sanitized.sh
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"
ctest --test-dir build-asan --output-on-failure -j "$(nproc)" "$@"

# Observability smoke under the sanitizers: a seeded divergence run must
# close every span and tag the outvoted instance (exits nonzero if not).
smoke_dir="$(mktemp -d)"
(cd "$smoke_dir" && "$repo/build-asan/bench/trace_smoke")
rm -rf "$smoke_dir"
