#!/usr/bin/env bash
# Build and run the test suite under the sanitizer presets.
#
#   tests/run_sanitized.sh [ctest-args...]
#
# Uses the `asan` (ASan+UBSan), `ubsan` (UBSan only) and `tsan`
# (ThreadSanitizer) CMake presets (build dirs: build-asan/, build-ubsan/,
# build-tsan/). Any extra arguments are passed through to ctest. Note
# that ctest sees the gtest-discovered *test* names (Suite.Case), not
# binary names, e.g.
#   tests/run_sanitized.sh -R 'FaultTest|FaultNetTest'
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
cd "$repo"

# Leak checking is off by default: netsim Connections are kept alive by
# self-referential on_data handlers (a deliberate lifetime idiom in the
# simulator), which LSan reports as cycles. Opt back in with
#   ASAN_OPTIONS=detect_leaks=1 tests/run_sanitized.sh
export ASAN_OPTIONS="${ASAN_OPTIONS:-detect_leaks=0:strict_string_checks=1}"
export UBSAN_OPTIONS="${UBSAN_OPTIONS:-print_stacktrace=1}"

for preset in asan ubsan; do
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --test-dir "build-$preset" --output-on-failure -j "$(nproc)" "$@"

  # Diff data-plane property suite with the kernel level pinned at both
  # extremes (RDDR_SIMD overrides the engine knob process-wide): the
  # scalar run proves the portable path, the avx2 run puts the widest
  # vector kernels under the sanitizer. The kernel-table differential
  # tests inside exercise every supported level regardless of the pin.
  RDDR_SIMD=scalar "$repo/build-$preset/tests/rddr_diff_engine_test" >/dev/null
  RDDR_SIMD=avx2 "$repo/build-$preset/tests/rddr_diff_engine_test" >/dev/null

  # Observability smoke under the sanitizers: a seeded divergence run must
  # close every span and tag the outvoted instance (exits nonzero if not).
  smoke_dir="$(mktemp -d)"
  (cd "$smoke_dir" && "$repo/build-$preset/bench/trace_smoke")
  rm -rf "$smoke_dir"

  # Chaos smoke: a few seeded fault schedules against the self-healing
  # deployment; exits nonzero (with a shrunk repro on stderr) on any
  # recovery-invariant violation.
  "$repo/build-$preset/bench/chaos_sweep" 3

  # Scale-out smoke: a reduced fig5_scaleout sweep; exits nonzero if the
  # scale-out ratio, shed-latency, shed-protocol (SQLSTATE 53300 / HTTP
  # 503, never a hang) or same-seed-determinism checks fail. JSON goes to
  # stdout (dropped here); the check log is on stderr.
  "$repo/build-$preset/bench/fig5_scaleout" --smoke >/dev/null

  # Durable-storage smoke: crash recovery reproduces the pre-crash
  # snapshot, incremental deltas beat full snapshots by >10x, and the
  # recovery trace is seed-deterministic — all virtual-time invariants,
  # so they hold under sanitizers too.
  "$repo/build-$preset/bench/storage_recovery" --smoke >/dev/null

  # Adversarial fuzz smoke: a few seeds of the protocol-aware fuzzer per
  # generated topology — malformed length fields, smuggling variants and
  # slowloris sessions push hostile bytes through the codecs and proxies,
  # exactly what the sanitizers should watch. Exits nonzero (shrunk repro
  # on stderr) on any leak/hang/accounting violation.
  "$repo/build-$preset/bench/fuzz_sweep" --smoke >/dev/null

  # Attribution smoke: Table I rows replayed through the three-tier
  # generated topology; exits nonzero unless every divergence attributes
  # to the exact (request, hop, call site), per-callsite dedup collapses
  # each tier to one key, and the report is byte-identical across island
  # counts {1, 2}. The attribution report goes to stderr.
  "$repo/build-$preset/bench/table1_graph" --smoke
done

# ThreadSanitizer lane: the multi-island executor is the repo's only
# real concurrency, so tsan runs the parallel-focused suites (executor,
# netsim, frontier, chaos/fuzz island property tests) plus the 16-shard
# island gate. RDDR_PARALLEL_THREADS=2 forces real worker threads even
# on single-core CI boxes, where the hardware default would collapse to
# one thread and tsan would have nothing to watch. Thread count never
# affects results — only what tsan gets to race-check.
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" \
RDDR_PARALLEL_THREADS=2 \
  ctest --test-dir build-tsan --output-on-failure -j "$(nproc)" \
      -R 'Parallel|Simulator|Network|Frontier|Fault' "$@"
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" RDDR_PARALLEL_THREADS=2 \
  "$repo/build-tsan/bench/fig5_scaleout" --smoke --islands=4 >/dev/null

# Attribution under tsan: the islands={1,2} replay runs the multi-island
# executor with real worker threads; the byte-identity check then proves
# execution indices are unaffected by scheduling.
TSAN_OPTIONS="${TSAN_OPTIONS:-halt_on_error=1}" RDDR_PARALLEL_THREADS=2 \
  "$repo/build-tsan/bench/table1_graph" --smoke

# Perf smoke (optimised build, not sanitized — sanitizers skew timing):
# the simulator core must stay above the events/sec floor. See
# bench/run_benches.sh for the full trajectory run.
bench/run_benches.sh --smoke
