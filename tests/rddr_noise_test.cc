// Unit tests for de-noising (filter-pair masks) and ephemeral-token
// detection — the paper's §IV-B2 / §IV-B3 machinery, exercised through
// the batched DiffEngine primitives (rddr/diff_engine.h) that replaced
// the pairwise noise.h API.
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "rddr/diff_engine.h"

namespace rddr::core {
namespace {

const simd::Ops& O() { return simd::active_ops(); }

/// Builds a per_line canonical unit over `lines` (views into the caller's
/// strings, which must outlive the arena use).
void fill_canon(CanonicalUnit& out, const std::vector<std::string>& lines,
                Arena& arena) {
  out = CanonicalUnit{};
  out.klass = ByteView("u");
  out.what = ByteView("unit");
  out.per_line = true;
  for (const std::string& l : lines) out.lines.push_back(arena, ByteView(l));
}

/// The old pairwise masked_compare, restated as one batched call: `a` is
/// instance 0, `b` instance 1 (the filter pair that defines the mask) and
/// `cand` the instance under test. Returns the divergence reason, or
/// nullopt on agreement — same contract the old API had.
std::optional<std::string> pair_masked_compare(
    const std::vector<std::string>& a, const std::vector<std::string>& b,
    const std::vector<std::string>& cand) {
  DiffEngine engine;
  CanonicalUnit* canon = engine.arena().alloc_array<CanonicalUnit>(3);
  fill_canon(canon[0], a, engine.arena());
  fill_canon(canon[1], b, engine.arena());
  fill_canon(canon[2], cand, engine.arena());
  BatchVerdict v = engine.compare_canonical(canon, 3, /*filter_pair=*/true,
                                            VoteMode::kStrict, nullptr, nullptr);
  if (v.agreed) return std::nullopt;
  return v.reason;
}

/// Old detect_ephemeral_tokens shape over the batched primitive.
std::vector<std::vector<std::string>> detect_tokens_strings(
    const std::vector<std::vector<std::string>>& instance_lines) {
  Arena arena(4096);
  const size_t n = instance_lines.size();
  CanonicalUnit* canon = arena.alloc_array<CanonicalUnit>(n);
  for (size_t i = 0; i < n; ++i) fill_canon(canon[i], instance_lines[i], arena);
  ArenaVec<diff::TokenSpan> spans = diff::detect_tokens(canon, n, arena, O());
  std::vector<std::vector<std::string>> out;
  for (const diff::TokenSpan& t : spans) {
    std::vector<std::string> per;
    for (size_t a = 0; a < t.n; ++a) per.emplace_back(t.per_instance[a]);
    out.push_back(std::move(per));
  }
  return out;
}

TEST(CommonFix, PrefixSuffix) {
  EXPECT_EQ(simd::common_prefix(O(), "abcde", "abXde"), 2u);
  EXPECT_EQ(simd::common_suffix(O(), "abcde", "abXde"), 2u);
  EXPECT_EQ(simd::common_prefix(O(), "same", "same"), 4u);
  EXPECT_EQ(simd::common_prefix(O(), "", "x"), 0u);
  EXPECT_EQ(simd::common_suffix(O(), "abc", "c"), 1u);
}

TEST(NoiseMask, IdenticalPairYieldsEmptyMask) {
  EXPECT_FALSE(diff::build_line_mask("one", "one", O()).active);
  EXPECT_FALSE(diff::build_line_mask("two", "two", O()).active);
}

TEST(NoiseMask, DifferingRegionMasked) {
  diff::LineMask m =
      diff::build_line_mask("session=AAAA; path=/", "session=BBBB; path=/", O());
  ASSERT_TRUE(m.active);
  EXPECT_EQ(m.prefix, 8u);
  EXPECT_EQ(m.suffix, 8u);

  std::vector<std::string> a{"session=AAAA; path=/"};
  std::vector<std::string> b{"session=BBBB; path=/"};
  // Third instance with its own token in the same frame: match.
  EXPECT_FALSE(pair_masked_compare(a, b, {"session=CCCC; path=/"}).has_value());
  // Third instance with a longer token: still within the frame.
  EXPECT_FALSE(
      pair_masked_compare(a, b, {"session=DDDDDD; path=/"}).has_value());
  // Divergence outside the noise region is caught.
  EXPECT_TRUE(pair_masked_compare(a, b, {"session=CCCC; path=/x"}).has_value());
  EXPECT_TRUE(pair_masked_compare(a, b, {"sXssion=CCCC; path=/"}).has_value());
}

TEST(NoiseMask, UnmaskedLineRequiresExactEquality) {
  std::vector<std::string> a{"stable", "noisyAA"};
  std::vector<std::string> b{"stable", "noisyBB"};
  EXPECT_FALSE(pair_masked_compare(a, b, {"stable", "noisyZZ"}).has_value());
  auto reason = pair_masked_compare(a, b, {"stablX", "noisyZZ"});
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("line 0"), std::string::npos);
}

TEST(NoiseMask, LineCountMismatchDiverges) {
  std::vector<std::string> a{"x"}, b{"x"};
  EXPECT_TRUE(pair_masked_compare(a, b, {"x", "y"}).has_value());
}

TEST(NoiseMask, StructuralPairNoiseBlamedOnThePair) {
  // The pair disagreeing on line count is a structural divergence charged
  // to instance 1 — same verdict and reason the old pairwise walk gave.
  std::vector<std::string> a{"x"}, b{"x", "y"};
  auto reason = pair_masked_compare(a, b, {"x"});
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("instance 1"), std::string::npos);
  EXPECT_NE(reason->find("under structural noise"), std::string::npos);
}

TEST(NoiseMask, CandidateShorterThanFrameDiverges) {
  std::vector<std::string> a{"tok=AAAA end"};
  std::vector<std::string> b{"tok=BBBB end"};
  EXPECT_TRUE(pair_masked_compare(a, b, {"tok"}).has_value());
}

TEST(NoiseMask, MaskedLineCheckFailures) {
  diff::LineMask m = diff::build_line_mask("tok=AAAA end", "tok=BBBB end", O());
  ASSERT_TRUE(m.active);
  EXPECT_EQ(diff::masked_line_check("tok=AAAA end", "tok", m, O()).fail,
            diff::LineFail::kShorterThanFrame);
  EXPECT_EQ(diff::masked_line_check("tok=AAAA end", "Xok=CCCC end", m, O()).fail,
            diff::LineFail::kPrefix);
  EXPECT_EQ(diff::masked_line_check("tok=AAAA end", "tok=CCCC enX", m, O()).fail,
            diff::LineFail::kSuffix);
  EXPECT_EQ(diff::masked_line_check("tok=AAAA end", "tok=CCCC end", m, O()).fail,
            diff::LineFail::kNone);
}

TEST(EphemeralTokens, DetectsCsrfStyleToken) {
  std::vector<std::vector<std::string>> lines{
      {"<input value=\"aaaaaaaaaaaaaaaa\">"},
      {"<input value=\"bbbbbbbbbbbbbbbb\">"},
      {"<input value=\"cccccccccccccccc\">"},
  };
  auto tokens = detect_tokens_strings(lines);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0][0], "aaaaaaaaaaaaaaaa");
  EXPECT_EQ(tokens[0][2], "cccccccccccccccc");
}

TEST(EphemeralTokens, ShortRunsRejected) {
  // Paper's criterion: >= 10 chars.
  std::vector<std::vector<std::string>> lines{
      {"id=abc123"},
      {"id=def456"},
      {"id=ghi789"},
  };
  EXPECT_TRUE(detect_tokens_strings(lines).empty());
}

TEST(EphemeralTokens, NonAlnumRunsRejected) {
  std::vector<std::vector<std::string>> lines{
      {"v=aaaa-aaaa-aaaa"},
      {"v=bbbb-bbbb-bbbb"},
      {"v=cccc-cccc-cccc"},
  };
  EXPECT_TRUE(detect_tokens_strings(lines).empty());
}

TEST(EphemeralTokens, LineMustDifferAcrossAllInstances) {
  // Instances 0 and 2 agree, so the line does not qualify.
  std::vector<std::vector<std::string>> lines{
      {"tok=aaaaaaaaaaaa"},
      {"tok=bbbbbbbbbbbb"},
      {"tok=aaaaaaaaaaaa"},
  };
  EXPECT_TRUE(detect_tokens_strings(lines).empty());
}

TEST(EphemeralTokens, StableLinesIgnored) {
  std::vector<std::vector<std::string>> lines{
      {"<html>", "tok=aaaaaaaaaaaa", "</html>"},
      {"<html>", "tok=bbbbbbbbbbbb", "</html>"},
  };
  auto tokens = detect_tokens_strings(lines);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0][1], "bbbbbbbbbbbb");
}

TEST(EphemeralTokens, VariableLengthTokens) {
  std::vector<std::vector<std::string>> lines{
      {"t=aaaaaaaaaaaaaaa;"},
      {"t=bbbbbbbbbbbb;"},
      {"t=cccccccccccccccccc;"},
  };
  auto tokens = detect_tokens_strings(lines);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0][1], "bbbbbbbbbbbb");
}

// Property sweep: random tokens in a fixed frame are always masked; a
// mutation outside the token region is always caught.
class NoisePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NoisePropertyTest, RandomTokensMaskedMutationsCaught) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::string prefix = "Set-Cookie: sid=";
  std::string suffix = "; HttpOnly";
  auto page = [&](const std::string& tok) {
    return std::vector<std::string>{"HTTP/1.1 200 OK", prefix + tok + suffix,
                                    "body line"};
  };
  auto a = page(rng.alnum_token(32));
  auto b = page(rng.alnum_token(32));
  auto c = page(rng.alnum_token(32));
  EXPECT_FALSE(pair_masked_compare(a, b, c).has_value());
  // Mutate the third instance outside the token: must diverge.
  auto d = page(rng.alnum_token(32));
  d[2] = "body line LEAKED-DATA";
  EXPECT_TRUE(pair_masked_compare(a, b, d).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoisePropertyTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace rddr::core
