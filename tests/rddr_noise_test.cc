// Unit tests for de-noising (filter-pair masks) and ephemeral-token
// detection — the paper's §IV-B2 / §IV-B3 machinery.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "rddr/noise.h"

namespace rddr::core {
namespace {

TEST(CommonFix, PrefixSuffix) {
  EXPECT_EQ(common_prefix("abcde", "abXde"), 2u);
  EXPECT_EQ(common_suffix("abcde", "abXde"), 2u);
  EXPECT_EQ(common_prefix("same", "same"), 4u);
  EXPECT_EQ(common_prefix("", "x"), 0u);
  EXPECT_EQ(common_suffix("abc", "c"), 1u);
}

TEST(NoiseMask, IdenticalPairYieldsEmptyMask) {
  std::vector<std::string> a{"one", "two"};
  NoiseMask m = build_noise_mask(a, a);
  EXPECT_FALSE(m.structural_noise);
  EXPECT_FALSE(m.lines[0].has_value());
  EXPECT_FALSE(m.lines[1].has_value());
}

TEST(NoiseMask, DifferingRegionMasked) {
  std::vector<std::string> a{"session=AAAA; path=/"};
  std::vector<std::string> b{"session=BBBB; path=/"};
  NoiseMask m = build_noise_mask(a, b);
  ASSERT_TRUE(m.lines[0].has_value());
  EXPECT_EQ(m.lines[0]->prefix, 8u);
  EXPECT_EQ(m.lines[0]->suffix, 8u);

  // Third instance with its own token in the same frame: match.
  std::vector<std::string> c{"session=CCCC; path=/"};
  EXPECT_FALSE(masked_compare(a, c, m).has_value());
  // Third instance with a longer token: still within the frame.
  std::vector<std::string> d{"session=DDDDDD; path=/"};
  EXPECT_FALSE(masked_compare(a, d, m).has_value());
  // Divergence outside the noise region is caught.
  std::vector<std::string> e{"session=CCCC; path=/x"};
  EXPECT_TRUE(masked_compare(a, e, m).has_value());
  std::vector<std::string> f{"sXssion=CCCC; path=/"};
  EXPECT_TRUE(masked_compare(a, f, m).has_value());
}

TEST(NoiseMask, UnmaskedLineRequiresExactEquality) {
  std::vector<std::string> a{"stable", "noisyAA"};
  std::vector<std::string> b{"stable", "noisyBB"};
  NoiseMask m = build_noise_mask(a, b);
  std::vector<std::string> ok{"stable", "noisyZZ"};
  EXPECT_FALSE(masked_compare(a, ok, m).has_value());
  std::vector<std::string> bad{"stablX", "noisyZZ"};
  auto reason = masked_compare(a, bad, m);
  ASSERT_TRUE(reason.has_value());
  EXPECT_NE(reason->find("line 0"), std::string::npos);
}

TEST(NoiseMask, LineCountMismatchDiverges) {
  std::vector<std::string> a{"x"}, b{"x"};
  NoiseMask m = build_noise_mask(a, b);
  std::vector<std::string> c{"x", "y"};
  EXPECT_TRUE(masked_compare(a, c, m).has_value());
}

TEST(NoiseMask, StructuralPairNoiseDegradesGracefully) {
  std::vector<std::string> a{"x"}, b{"x", "y"};
  NoiseMask m = build_noise_mask(a, b);
  EXPECT_TRUE(m.structural_noise);
  std::vector<std::string> same_count{"anything"};
  EXPECT_FALSE(masked_compare(a, same_count, m).has_value());
  std::vector<std::string> diff_count{"p", "q"};
  EXPECT_TRUE(masked_compare(a, diff_count, m).has_value());
}

TEST(NoiseMask, CandidateShorterThanFrameDiverges) {
  std::vector<std::string> a{"tok=AAAA end"};
  std::vector<std::string> b{"tok=BBBB end"};
  NoiseMask m = build_noise_mask(a, b);
  std::vector<std::string> tiny{"tok"};
  EXPECT_TRUE(masked_compare(a, tiny, m).has_value());
}

TEST(EphemeralTokens, DetectsCsrfStyleToken) {
  std::vector<std::vector<std::string>> lines{
      {"<input value=\"aaaaaaaaaaaaaaaa\">"},
      {"<input value=\"bbbbbbbbbbbbbbbb\">"},
      {"<input value=\"cccccccccccccccc\">"},
  };
  auto tokens = detect_ephemeral_tokens(lines);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].per_instance[0], "aaaaaaaaaaaaaaaa");
  EXPECT_EQ(tokens[0].per_instance[2], "cccccccccccccccc");
}

TEST(EphemeralTokens, ShortRunsRejected) {
  // Paper's criterion: >= 10 chars.
  std::vector<std::vector<std::string>> lines{
      {"id=abc123"},
      {"id=def456"},
      {"id=ghi789"},
  };
  EXPECT_TRUE(detect_ephemeral_tokens(lines).empty());
}

TEST(EphemeralTokens, NonAlnumRunsRejected) {
  std::vector<std::vector<std::string>> lines{
      {"v=aaaa-aaaa-aaaa"},
      {"v=bbbb-bbbb-bbbb"},
      {"v=cccc-cccc-cccc"},
  };
  EXPECT_TRUE(detect_ephemeral_tokens(lines).empty());
}

TEST(EphemeralTokens, LineMustDifferAcrossAllInstances) {
  // Instances 0 and 2 agree, so the line does not qualify.
  std::vector<std::vector<std::string>> lines{
      {"tok=aaaaaaaaaaaa"},
      {"tok=bbbbbbbbbbbb"},
      {"tok=aaaaaaaaaaaa"},
  };
  EXPECT_TRUE(detect_ephemeral_tokens(lines).empty());
}

TEST(EphemeralTokens, StableLinesIgnored) {
  std::vector<std::vector<std::string>> lines{
      {"<html>", "tok=aaaaaaaaaaaa", "</html>"},
      {"<html>", "tok=bbbbbbbbbbbb", "</html>"},
  };
  auto tokens = detect_ephemeral_tokens(lines);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].per_instance[1], "bbbbbbbbbbbb");
}

TEST(EphemeralTokens, VariableLengthTokens) {
  std::vector<std::vector<std::string>> lines{
      {"t=aaaaaaaaaaaaaaa;"},
      {"t=bbbbbbbbbbbb;"},
      {"t=cccccccccccccccccc;"},
  };
  auto tokens = detect_ephemeral_tokens(lines);
  ASSERT_EQ(tokens.size(), 1u);
  EXPECT_EQ(tokens[0].per_instance[1], "bbbbbbbbbbbb");
}

// Property sweep: random tokens in a fixed frame are always masked; a
// mutation outside the token region is always caught.
class NoisePropertyTest : public ::testing::TestWithParam<int> {};

TEST_P(NoisePropertyTest, RandomTokensMaskedMutationsCaught) {
  Rng rng(static_cast<uint64_t>(GetParam()));
  std::string prefix = "Set-Cookie: sid=";
  std::string suffix = "; HttpOnly";
  auto page = [&](const std::string& tok) {
    return std::vector<std::string>{"HTTP/1.1 200 OK", prefix + tok + suffix,
                                    "body line"};
  };
  auto a = page(rng.alnum_token(32));
  auto b = page(rng.alnum_token(32));
  auto c = page(rng.alnum_token(32));
  NoiseMask m = build_noise_mask(a, b);
  EXPECT_FALSE(masked_compare(a, c, m).has_value());
  // Mutate the third instance outside the token: must diverge.
  auto d = page(rng.alnum_token(32));
  d[2] = "body line LEAKED-DATA";
  EXPECT_TRUE(masked_compare(a, d, m).has_value());
}

INSTANTIATE_TEST_SUITE_P(Seeds, NoisePropertyTest,
                         ::testing::Range(1, 21));

}  // namespace
}  // namespace rddr::core
