// Tests for the scale-out front tier (rddr/frontier.h): consistent-hash
// routing stability, protocol-correct load shedding, admission
// backpressure, and shard draining.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "services/http_service.h"
#include "sqldb/client.h"
#include "sqldb/server.h"
#include "workloads/pgbench.h"

namespace rddr::core {
namespace {

std::vector<std::string> keys(int n) {
  std::vector<std::string> out;
  for (int i = 0; i < n; ++i) out.push_back("client-" + std::to_string(i));
  return out;
}

TEST(ConsistentHash, SameKeyAlwaysSameShard) {
  ConsistentHash a(4), b(4);
  for (const auto& k : keys(500)) {
    size_t shard = a.route(k);
    EXPECT_LT(shard, 4u);
    // Routing is a pure function of the key: stable within one ring and
    // identical across independently built rings (same seed => same shard
    // across whole runs).
    EXPECT_EQ(a.route(k), shard);
    EXPECT_EQ(b.route(k), shard);
  }
}

TEST(ConsistentHash, SpreadsKeysAcrossAllShards) {
  ConsistentHash ch(4);
  std::map<size_t, int> counts;
  for (const auto& k : keys(2000)) counts[ch.route(k)]++;
  ASSERT_EQ(counts.size(), 4u);
  for (const auto& [shard, n] : counts) {
    // Expected 500 per shard; consistent hashing with 64 vnodes lands
    // within a loose band, and no shard may starve.
    EXPECT_GT(n, 250) << "shard " << shard;
    EXPECT_LT(n, 1000) << "shard " << shard;
  }
}

TEST(ConsistentHash, DisablingOneShardMovesOnlyItsKeys) {
  ConsistentHash ch(4);
  auto ks = keys(2000);
  std::map<std::string, size_t> before;
  for (const auto& k : ks) before[k] = ch.route(k);

  ch.set_shard_enabled(2, false);
  int moved = 0, was_on_2 = 0;
  for (const auto& k : ks) {
    size_t now = ch.route(k);
    EXPECT_NE(now, 2u);
    if (before[k] == 2) {
      ++was_on_2;
      EXPECT_NE(now, before[k]);
      ++moved;
    } else {
      // The consistent-hash property: keys not on the removed shard do
      // not move at all.
      EXPECT_EQ(now, before[k]) << k;
    }
  }
  EXPECT_EQ(moved, was_on_2);
  // ~1/4 of the keyspace belonged to shard 2 (loose band again).
  EXPECT_GT(was_on_2, 2000 / 4 / 2);
  EXPECT_LT(was_on_2, 2000 / 2);

  // Re-enabling restores the exact original routing.
  ch.set_shard_enabled(2, true);
  for (const auto& k : ks) EXPECT_EQ(ch.route(k), before[k]);
}

TEST(ConsistentHash, AllDisabledRoutesNowhere) {
  ConsistentHash ch(2);
  ch.set_shard_enabled(0, false);
  ch.set_shard_enabled(1, false);
  EXPECT_EQ(ch.route("anything"), 2u);
}

/// Fixture: one-shard frontier over 3 minipg instances with a tiny
/// admission budget, so the 2nd and 3rd concurrent connections shed.
class PgShedRig {
 public:
  explicit PgShedRig(AdmissionOptions adm)
      : net_(sim_, 50 * sim::kMicrosecond),
        host_(sim_, "node", 32, 16LL << 30) {
    std::vector<std::string> pool;
    for (int i = 0; i < 3; ++i) {
      auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
      workloads::load_pgbench(*db, 100, 9);
      sqldb::SqlServer::Options so;
      so.address = "pg-" + std::to_string(i) + ":5432";
      so.rng_seed = 20 + static_cast<uint64_t>(i);
      dbs_.push_back(db);
      servers_.push_back(
          std::make_unique<sqldb::SqlServer>(net_, host_, db, so));
      pool.push_back(so.address);
    }
    front_ = NVersionDeployment::Builder()
                 .name("front")
                 .listen("front:5432")
                 .versions(pool)
                 .plugin(std::make_shared<PgPlugin>())
                 .filter_pair(true)
                 .admission(adm)
                 .build_frontier(net_, host_);
  }

  sim::Simulator sim_;
  sim::Network net_;
  sim::Host host_;
  std::vector<std::shared_ptr<sqldb::Database>> dbs_;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers_;
  std::unique_ptr<Frontier> front_;
};

TEST(FrontierShed, PgClientSeesSqlstate53300NotAHang) {
  AdmissionOptions adm;
  adm.rate_per_s = 1;  // refill is negligible within the test window
  adm.burst = 1;       // one admission, then shed
  adm.queue_limit = 1;
  adm.shed_deadline = 2 * sim::kMillisecond;
  PgShedRig rig(adm);

  std::vector<std::unique_ptr<sqldb::PgClient>> clients;
  std::vector<sqldb::QueryOutcome> outcomes(3);
  std::vector<bool> answered(3, false);
  for (int c = 0; c < 3; ++c) {
    clients.push_back(std::make_unique<sqldb::PgClient>(
        rig.net_, "c" + std::to_string(c), "front:5432", "postgres"));
    clients.back()->query(
        "SELECT abalance FROM pgbench_accounts WHERE aid = 1;",
        [&outcomes, &answered, c](sqldb::QueryOutcome o) {
          outcomes[static_cast<size_t>(c)] = std::move(o);
          answered[static_cast<size_t>(c)] = true;
        });
  }
  rig.sim_.run_until(sim::kSecond);

  int ok = 0, shed = 0;
  for (int c = 0; c < 3; ++c) {
    ASSERT_TRUE(answered[static_cast<size_t>(c)]) << "client " << c << " hung";
    const auto& o = outcomes[static_cast<size_t>(c)];
    if (!o.failed()) {
      ++ok;
    } else {
      // Protocol-correct rejection: the pg error code for "too many
      // connections", not a bare connection loss.
      EXPECT_EQ(o.error_sqlstate.value_or("<none>"), "53300")
          << "client " << c;
      ++shed;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(shed, 2);

  ProxyStats s = rig.front_->stats();
  EXPECT_EQ(s.admitted, 1u);
  EXPECT_EQ(s.shed, 2u);
}

// Deadline sheds resolve at the configured deadline, not at the saturated
// pool's service latency.
TEST(FrontierShed, DeadlineShedIsFast) {
  AdmissionOptions adm;
  adm.rate_per_s = 1;
  adm.burst = 1;
  adm.queue_limit = 8;
  adm.shed_deadline = 3 * sim::kMillisecond;
  PgShedRig rig(adm);

  auto c1 = std::make_unique<sqldb::PgClient>(rig.net_, "c1",
                                              "front:5432", "postgres");
  auto c2 = std::make_unique<sqldb::PgClient>(rig.net_, "c2",
                                              "front:5432", "postgres");
  sim::Time rejected_at = -1;
  c1->query("SELECT 1;", [](sqldb::QueryOutcome) {});
  c2->query("SELECT 1;", [&](sqldb::QueryOutcome o) {
    if (o.failed()) rejected_at = rig.sim_.now();
  });
  rig.sim_.run_until(sim::kSecond);
  ASSERT_GE(rejected_at, 0);
  EXPECT_GE(rejected_at, 3 * sim::kMillisecond);
  EXPECT_LT(rejected_at, 5 * sim::kMillisecond);
}

TEST(FrontierShed, HttpClientSees503WithRetryAfter) {
  sim::Simulator sim;
  sim::Network net(sim, 50 * sim::kMicrosecond);
  sim::Host host(sim, "node", 8, 8LL << 30);
  std::vector<std::unique_ptr<services::HttpServer>> instances;
  std::vector<std::string> pool;
  for (int i = 0; i < 2; ++i) {
    services::HttpServer::Options o;
    o.address = "svc-" + std::to_string(i) + ":80";
    auto s = std::make_unique<services::HttpServer>(net, host, o);
    s->set_handler([](const http::Request&, services::Responder r) {
      r(http::make_response(200, "ok"));
    });
    instances.push_back(std::move(s));
    pool.push_back(o.address);
  }
  AdmissionOptions adm;
  adm.rate_per_s = 1;
  adm.burst = 1;
  adm.queue_limit = 1;
  adm.shed_deadline = 2 * sim::kMillisecond;
  auto front = NVersionDeployment::Builder()
                   .name("front")
                   .listen("front:80")
                   .versions(pool)
                   .plugin(std::make_shared<HttpPlugin>())
                   .admission(adm)
                   .build_frontier(net, host);

  struct Probe {
    sim::ConnPtr conn;
    Bytes got;
    bool closed = false;
  };
  std::vector<std::unique_ptr<Probe>> probes;
  for (int c = 0; c < 3; ++c) {
    auto p = std::make_unique<Probe>();
    p->conn = net.connect("front:80",
                          {.source = "h" + std::to_string(c)});
    ASSERT_NE(p->conn, nullptr);
    Probe* raw = p.get();
    p->conn->set_on_data([raw](ByteView d) { raw->got += Bytes(d); });
    p->conn->set_on_close([raw] { raw->closed = true; });
    p->conn->send("GET / HTTP/1.1\r\nHost: front\r\n\r\n");
    probes.push_back(std::move(p));
  }
  sim.run_until(sim::kSecond);

  int ok = 0, shed = 0;
  for (const auto& p : probes) {
    if (p->got.find("HTTP/1.1 200") != Bytes::npos) {
      ++ok;
    } else {
      ASSERT_NE(p->got.find("HTTP/1.1 503"), Bytes::npos) << p->got;
      EXPECT_NE(p->got.find("Retry-After: 1"), Bytes::npos);
      EXPECT_TRUE(p->closed);
      ++shed;
    }
  }
  EXPECT_EQ(ok, 1);
  EXPECT_EQ(shed, 2);
}

// Backpressure: with max_sessions bounding each shard, a burst larger
// than the bound is not shed but admitted in waves as sessions finish.
TEST(FrontierBackpressure, SessionCloseWakesTheAdmissionQueue) {
  AdmissionOptions adm;
  adm.max_sessions = 2;
  adm.queue_limit = 16;
  adm.shed_deadline = 2 * sim::kSecond;  // far beyond the test window
  PgShedRig rig(adm);

  int completed = 0;
  std::vector<std::unique_ptr<sqldb::PgClient>> clients;
  for (int c = 0; c < 6; ++c) {
    clients.push_back(std::make_unique<sqldb::PgClient>(
        rig.net_, "bp" + std::to_string(c), "front:5432", "postgres"));
    sqldb::PgClient* raw = clients.back().get();
    raw->query("SELECT abalance FROM pgbench_accounts WHERE aid = 2;",
               [&completed, raw](sqldb::QueryOutcome o) {
                 EXPECT_FALSE(o.failed());
                 if (!o.failed()) ++completed;
                 raw->close();  // frees the session -> next admission
               });
  }
  rig.sim_.run_until(5 * sim::kSecond);

  EXPECT_EQ(completed, 6);
  ProxyStats s = rig.front_->stats();
  EXPECT_EQ(s.admitted, 6u);
  EXPECT_EQ(s.shed, 0u);
  // The gauge's high-water mark proves the bound actually held.
  EXPECT_LE(rig.front_->metrics()
                .gauge("front.s0.active_sessions")
                ->max_value(),
            2.0);
}

// Draining a shard administratively moves new sessions to the remaining
// shards without shedding.
TEST(Frontier, DrainedShardReceivesNoNewSessions) {
  sim::Simulator sim;
  sim::Network net(sim, 50 * sim::kMicrosecond);
  sim::Host host(sim, "node", 32, 32LL << 30);
  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  std::vector<std::vector<std::string>> pools;
  for (int k = 0; k < 2; ++k) {
    pools.emplace_back();
    for (int i = 0; i < 3; ++i) {
      auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
      workloads::load_pgbench(*db, 100, 9);
      sqldb::SqlServer::Options so;
      so.address = "pg-s" + std::to_string(k) + "-" + std::to_string(i) +
                   ":5432";
      so.rng_seed = 20 + static_cast<uint64_t>(k * 10 + i);
      dbs.push_back(db);
      servers.push_back(
          std::make_unique<sqldb::SqlServer>(net, host, db, so));
      pools.back().push_back(so.address);
    }
  }
  auto front = NVersionDeployment::Builder()
                   .name("front")
                   .listen("front:5432")
                   .plugin(std::make_shared<PgPlugin>())
                   .filter_pair(true)
                   .shard_versions(pools)
                   .build_frontier(net, host);

  front->set_shard_enabled(0, false);
  EXPECT_FALSE(front->shard_available(0));
  EXPECT_TRUE(front->shard_available(1));
  for (int c = 0; c < 50; ++c)
    EXPECT_EQ(front->route_of("key-" + std::to_string(c)), 1u);

  int completed = 0;
  std::vector<std::unique_ptr<sqldb::PgClient>> clients;
  for (int c = 0; c < 10; ++c) {
    clients.push_back(std::make_unique<sqldb::PgClient>(
        net, "drain" + std::to_string(c), "front:5432", "postgres"));
    clients.back()->query("SELECT 1;", [&completed](sqldb::QueryOutcome o) {
      EXPECT_FALSE(o.failed());
      if (!o.failed()) ++completed;
    });
  }
  sim.run_until(sim::kSecond);
  EXPECT_EQ(completed, 10);
  EXPECT_EQ(front->shard(0).incoming().active_sessions(), 0u);
  EXPECT_EQ(front->stats().shed, 0u);

  // Re-enabling restores two-shard routing.
  front->set_shard_enabled(0, true);
  bool saw0 = false, saw1 = false;
  for (int c = 0; c < 200 && !(saw0 && saw1); ++c) {
    size_t k = front->route_of("key2-" + std::to_string(c));
    saw0 |= k == 0;
    saw1 |= k == 1;
  }
  EXPECT_TRUE(saw0);
  EXPECT_TRUE(saw1);
}

}  // namespace
}  // namespace rddr::core
