// Tests for the pgwire server/client over the simulated network: startup
// handshake, query cycles, notice filtering, error semantics, CPU/memory
// accounting, pipelining.
#include <gtest/gtest.h>

#include "netsim/host.h"
#include "netsim/network.h"
#include "sqldb/client.h"
#include "sqldb/server.h"

namespace rddr::sqldb {
namespace {

class SqlServerTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db = std::make_shared<Database>(minipg_info("10.7"));
    Session s(*db, "postgres");
    s.execute("CREATE TABLE t (a int, b text);"
              "INSERT INTO t VALUES (1,'x'),(2,'y');"
              "GRANT SELECT ON t TO app;");
    SqlServer::Options so;
    so.address = "pg:5432";
    so.cpu_per_query = 1e-3;
    server = std::make_unique<SqlServer>(net, host, db, so);
  }

  QueryOutcome query(const std::string& user, const std::string& sql) {
    QueryOutcome out;
    PgClient client(net, "test", "pg:5432", user);
    client.query(sql, [&](QueryOutcome o) { out = std::move(o); });
    simulator.run_until_idle();
    return out;
  }

  sim::Simulator simulator;
  sim::Network net{simulator, 10 * sim::kMicrosecond};
  sim::Host host{simulator, "node", 8, 8LL << 30};
  std::shared_ptr<Database> db;
  std::unique_ptr<SqlServer> server;
};

TEST_F(SqlServerTest, HandshakeAnnouncesVersionAndEncoding) {
  PgClient client(net, "test", "pg:5432", "postgres");
  simulator.run_until_idle();
  EXPECT_EQ(client.server_params().at("server_version"), "10.7");
  EXPECT_EQ(client.server_params().at("server_encoding"), "UTF8");
  EXPECT_EQ(client.server_params().at("application_name"), "minipg");
}

TEST_F(SqlServerTest, SelectRoundTrip) {
  auto out = query("postgres", "SELECT a, b FROM t ORDER BY a;");
  ASSERT_FALSE(out.failed()) << out.error_message;
  EXPECT_EQ(out.columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(out.rows.size(), 2u);
  EXPECT_EQ(out.rows[1][1].value(), "y");
  EXPECT_EQ(out.command_tags, std::vector<std::string>{"SELECT 2"});
}

TEST_F(SqlServerTest, SessionUserComesFromStartup) {
  auto denied = query("mallory", "SELECT * FROM t;");
  ASSERT_TRUE(denied.failed());
  EXPECT_EQ(*denied.error_sqlstate, "42501");
  auto ok = query("app", "SELECT count(*) FROM t;");
  EXPECT_FALSE(ok.failed());
}

TEST_F(SqlServerTest, MultiStatementScriptTags) {
  auto out = query("postgres", "BEGIN; INSERT INTO t VALUES (3,'z'); COMMIT;");
  ASSERT_FALSE(out.failed());
  EXPECT_EQ(out.command_tags,
            (std::vector<std::string>{"BEGIN", "INSERT 0 1", "COMMIT"}));
}

TEST_F(SqlServerTest, NoticesDeliveredByDefault) {
  query("postgres",
        "CREATE FUNCTION n(int) RETURNS bool AS $$BEGIN RAISE NOTICE "
        "'hello %', $1; RETURN true; END$$ LANGUAGE plpgsql;");
  auto out = query("postgres", "SELECT n(7);");
  ASSERT_FALSE(out.failed()) << out.error_message;
  ASSERT_FALSE(out.notices.empty());
  EXPECT_EQ(out.notices[0], "hello 7");
}

TEST_F(SqlServerTest, ClientMinMessagesSuppressesNotices) {
  query("postgres",
        "CREATE FUNCTION n(int) RETURNS bool AS $$BEGIN RAISE NOTICE "
        "'noisy %', $1; RETURN true; END$$ LANGUAGE plpgsql;");
  // Same connection: SET then SELECT.
  QueryOutcome out;
  PgClient client(net, "test", "pg:5432", "postgres");
  client.query("SET client_min_messages TO 'warning';", [](QueryOutcome) {});
  client.query("SELECT n(1);", [&](QueryOutcome o) { out = std::move(o); });
  simulator.run_until_idle();
  ASSERT_FALSE(out.failed()) << out.error_message;
  EXPECT_TRUE(out.notices.empty());
}

TEST_F(SqlServerTest, PipelinedQueriesAnswerInOrder) {
  std::vector<std::string> tags;
  PgClient client(net, "test", "pg:5432", "postgres");
  for (int i = 0; i < 5; ++i) {
    client.query("SELECT " + std::to_string(i) + ";",
                 [&tags, i](QueryOutcome o) {
                   ASSERT_FALSE(o.failed());
                   tags.push_back(o.rows[0][0].value());
                   EXPECT_EQ(o.rows[0][0].value(), std::to_string(i));
                 });
  }
  simulator.run_until_idle();
  EXPECT_EQ(tags.size(), 5u);
}

TEST_F(SqlServerTest, CpuChargedPerQuery) {
  double before = host.busy_core_seconds();
  query("postgres", "SELECT 1;");
  EXPECT_NEAR(host.busy_core_seconds() - before, 1e-3, 1e-4);
}

TEST_F(SqlServerTest, MemoryGrowsWithData) {
  int64_t before = host.memory_bytes();
  query("postgres",
        "INSERT INTO t VALUES (10,'aaaaaaaaaaaaaaaaaaaaaaaaaaaaaa'),"
        "(11,'bbbbbbbbbbbbbbbbbbbbbbbbbbbbbb');");
  EXPECT_GT(host.memory_bytes(), before);
}

TEST_F(SqlServerTest, TerminateClosesCleanly) {
  PgClient client(net, "test", "pg:5432", "postgres");
  bool done = false;
  client.query("SELECT 1;", [&](QueryOutcome o) {
    EXPECT_FALSE(o.failed());
    done = true;
  });
  simulator.run_until_idle();
  ASSERT_TRUE(done);
  client.close();
  simulator.run_until_idle();
  EXPECT_TRUE(client.broken() || true);  // close is idempotent/no crash
}

TEST_F(SqlServerTest, ErrorThenRecoveryOnSameConnection) {
  PgClient client(net, "test", "pg:5432", "postgres");
  QueryOutcome bad, good;
  client.query("SELECT * FROM missing;", [&](QueryOutcome o) { bad = std::move(o); });
  client.query("SELECT 42;", [&](QueryOutcome o) { good = std::move(o); });
  simulator.run_until_idle();
  ASSERT_TRUE(bad.failed());
  EXPECT_EQ(*bad.error_sqlstate, "42P01");
  ASSERT_FALSE(good.failed());
  EXPECT_EQ(good.rows[0][0].value(), "42");
}

TEST_F(SqlServerTest, ClientFailsFastWhenServerAbsent) {
  QueryOutcome out;
  PgClient client(net, "test", "nothing:5432", "postgres");
  client.query("SELECT 1;", [&](QueryOutcome o) { out = std::move(o); });
  simulator.run_until_idle();
  EXPECT_TRUE(out.connection_lost);
}

TEST_F(SqlServerTest, BackendKeysDifferAcrossServerInstances) {
  // Two servers with different seeds: the nondeterminism the pg plugin
  // must ignore.
  auto db2 = std::make_shared<Database>(minipg_info("10.7"));
  SqlServer::Options so;
  so.address = "pg2:5432";
  so.rng_seed = 999;
  SqlServer second(net, host, db2, so);
  // Capture BackendKeyData from both handshakes at the frame level.
  auto capture = [&](const std::string& addr) {
    Bytes raw;
    auto conn = net.connect(addr, {.source = "probe"});
    conn->set_on_data([&raw](ByteView d) { raw += Bytes(d); });
    conn->send(pg::build_startup({{"user", "postgres"}}));
    simulator.run_until_idle();
    return raw;
  };
  Bytes a = capture("pg:5432");
  Bytes b = capture("pg2:5432");
  size_t ka = a.find('K');
  size_t kb = b.find('K');
  ASSERT_NE(ka, Bytes::npos);
  ASSERT_NE(kb, Bytes::npos);
  EXPECT_NE(a.substr(ka, 13), b.substr(kb, 13));
}

}  // namespace
}  // namespace rddr::sqldb
