// Parameterized property tests for the RDDR invariants the paper's
// security argument rests on:
//
//   SOUNDNESS  — benign traffic through an N-version deployment with
//                de-noising is never blocked, for any seed/shape;
//   DETECTION  — any single-instance mutation OUTSIDE the noise regions is
//                always blocked, and the mutated bytes never reach the
//                client.
#include <gtest/gtest.h>

#include <memory>

#include "common/rng.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "services/http_service.h"

namespace rddr::core {
namespace {

using services::HttpClient;
using services::HttpServer;

/// A page with stable structure, per-instance random tokens, and an
/// optional attacker-controlled mutation in the stable part.
std::string make_page(Rng& instance_rng, Rng& shape_rng_copy,
                      const std::string& mutation) {
  Rng shape = shape_rng_copy;  // same shape across instances
  std::string page = "<html><head><title>app</title></head><body>\n";
  int lines = static_cast<int>(shape.uniform(3, 10));
  for (int i = 0; i < lines; ++i) {
    switch (shape.uniform(0, 3)) {
      case 0:
        page += "<p>stable paragraph " + std::to_string(i) + "</p>\n";
        break;
      case 1:
        page += "<input name=\"csrf\" value=\"" +
                instance_rng.alnum_token(
                    static_cast<size_t>(shape.uniform(16, 40))) +
                "\">\n";
        break;
      case 2:
        page += "<li>item " + std::to_string(shape.uniform(0, 100)) +
                "</li>\n";
        break;
      default:
        page += "Set-Cookie-ish: sid=" + instance_rng.alnum_token(24) +
                "; Path=/\n";
        break;
    }
  }
  page += mutation;
  page += "</body></html>\n";
  return page;
}

class PropertyRig {
 public:
  explicit PropertyRig(uint64_t seed, const std::string& mutation_at_inst2)
      : shape_rng_(seed) {
    for (int i = 0; i < 3; ++i) {
      HttpServer::Options o;
      o.address = "svc-" + std::to_string(i) + ":80";
      auto server = std::make_unique<HttpServer>(net_, host_, o);
      auto inst_rng = std::make_shared<Rng>(seed * 1000 + static_cast<uint64_t>(i));
      Rng shape_copy = shape_rng_;
      std::string mutation = i == 2 ? mutation_at_inst2 : "";
      server->set_handler([inst_rng, shape_copy, mutation](
                              const http::Request&, services::Responder r) {
        Rng shape = shape_copy;
        r(http::make_response(200, make_page(*inst_rng, shape, mutation)));
      });
      servers_.push_back(std::move(server));
    }
    proxy_ = NVersionDeployment::Builder()
                 .listen("svc:80")
                 .versions({"svc-0:80", "svc-1:80", "svc-2:80"})
                 .plugin(std::make_shared<HttpPlugin>())
                 .filter_pair(true)
                 .build(net_, host_);
  }

  struct Outcome {
    int status = -2;
    Bytes body;
  };

  Outcome get() {
    Outcome out;
    HttpClient client(net_, "client");
    client.get("svc:80", "/", [&](int s, const http::Response* r) {
      out.status = s;
      if (r) out.body = r->body;
    });
    sim_.run_until_idle();
    return out;
  }

  size_t divergences() const { return proxy_->bus().count(); }

 private:
  sim::Simulator sim_;
  sim::Network net_{sim_, 10 * sim::kMicrosecond};
  sim::Host host_{sim_, "node", 8, 8LL << 30};
  Rng shape_rng_;
  std::vector<std::unique_ptr<HttpServer>> servers_;
  std::unique_ptr<NVersionDeployment> proxy_;
};

class RddrProperty : public ::testing::TestWithParam<int> {};

TEST_P(RddrProperty, BenignRandomTokenTrafficNeverBlocked) {
  PropertyRig rig(static_cast<uint64_t>(GetParam()), "");
  for (int i = 0; i < 5; ++i) {
    auto out = rig.get();
    EXPECT_EQ(out.status, 200) << "seed " << GetParam() << " request " << i;
  }
  EXPECT_EQ(rig.divergences(), 0u) << "seed " << GetParam();
}

TEST_P(RddrProperty, MutationOutsideNoiseAlwaysBlocked) {
  const std::string leak = "<p>LEAKED-RECORD-00217</p>\n";
  PropertyRig rig(static_cast<uint64_t>(GetParam()), leak);
  auto out = rig.get();
  EXPECT_EQ(out.status, 403) << "seed " << GetParam();
  EXPECT_EQ(out.body.find("LEAKED-RECORD"), Bytes::npos)
      << "seed " << GetParam();
  EXPECT_GE(rig.divergences(), 1u);
}

TEST_P(RddrProperty, SingleCharacterMutationBlocked) {
  // Minimal divergence: one stable byte flipped on one instance.
  PropertyRig rig(static_cast<uint64_t>(GetParam()), "<p>x</p>\n");
  PropertyRig benign(static_cast<uint64_t>(GetParam()), "<p>y</p>\n");
  // Both rigs mutate instance 2 (differently); each on its own must block
  // because the pair lacks the extra line entirely.
  EXPECT_EQ(rig.get().status, 403);
  EXPECT_EQ(benign.get().status, 403);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RddrProperty, ::testing::Range(1, 26));

}  // namespace
}  // namespace rddr::core
