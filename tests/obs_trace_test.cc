// Observability layer: deterministic tracing and the metrics registry.
//
// The load-bearing property is byte-identical replay — the same seed must
// produce the same trace export — plus the divergence-localization
// contract: when quorum outvotes an instance, the trace says which one.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/http/coding.h"
#include "proto/json/json.h"
#include "rddr/deployment.h"
#include "rddr/plugins.h"
#include "services/http_service.h"

namespace rddr {
namespace {

using services::HttpClient;
using services::HttpServer;

std::unique_ptr<HttpServer> make_instance(sim::Network& net, sim::Host& host,
                                          const std::string& address,
                                          const std::string& body) {
  HttpServer::Options o;
  o.address = address;
  auto server = std::make_unique<HttpServer>(net, host, o);
  server->set_handler([body](const http::Request&, services::Responder r) {
    r(http::make_response(200, body));
  });
  return server;
}

struct RunArtifacts {
  std::string trace_json;
  std::string metrics_json;
  std::vector<obs::Span> spans;
  size_t open = 0;
};

/// One seeded kQuorum run with a divergent third instance; two requests so
/// both the outvote and the degraded follow-up land in the trace.
RunArtifacts divergent_quorum_run(uint64_t seed) {
  sim::Simulator simulator;
  sim::Network net(simulator, 10 * sim::kMicrosecond);
  sim::Host host(simulator, "node", 8, 4LL << 30);

  auto i0 = make_instance(net, host, "svc-0:80", "public data");
  auto i1 = make_instance(net, host, "svc-1:80", "public data");
  auto i2 = make_instance(net, host, "svc-2:80", "public data LEAKED");

  obs::Tracer tracer([&simulator] { return simulator.now(); }, seed);
  obs::MetricsRegistry registry;
  auto deployment = core::NVersionDeployment::Builder()
                        .listen("svc:80")
                        .versions({"svc-0:80", "svc-1:80", "svc-2:80"})
                        .plugin(std::make_shared<core::HttpPlugin>())
                        .degradation(core::DegradationPolicy::kQuorum)
                        .metrics(&registry)
                        .trace(&tracer)
                        .build(net, host);

  HttpClient client(net, "client");
  for (int k = 0; k < 2; ++k) {
    simulator.schedule(k * 5 * sim::kMillisecond, [&] {
      client.get("svc:80", "/", [](int, const http::Response*) {});
    });
  }
  simulator.run_until_idle();

  RunArtifacts a;
  a.trace_json = tracer.export_chrome();
  a.metrics_json = registry.dump_json();
  a.spans = tracer.spans();
  a.open = tracer.open_spans();
  return a;
}

TEST(Trace, SameSeedByteIdenticalExport) {
  RunArtifacts first = divergent_quorum_run(42);
  RunArtifacts second = divergent_quorum_run(42);
  EXPECT_EQ(first.trace_json, second.trace_json);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
  // A different seed relabels the trace ids but preserves the span count.
  RunArtifacts other = divergent_quorum_run(7);
  EXPECT_NE(other.trace_json, first.trace_json);
  EXPECT_EQ(other.spans.size(), first.spans.size());
}

TEST(Trace, VerdictCarriesOutvotedInstance) {
  RunArtifacts run = divergent_quorum_run(42);
  EXPECT_EQ(run.open, 0u) << "spans left open at simulation end";

  std::string outvoted;
  for (const auto& span : run.spans)
    for (const auto& [key, value] : span.tags)
      if (key == "outvoted_instance") outvoted = value;
  EXPECT_EQ(outvoted, "2");

  // The dropped instance's upstream span records why it was cut loose.
  bool dropped_tagged = false;
  for (const auto& span : run.spans) {
    if (span.name != "upstream") continue;
    for (const auto& [key, value] : span.tags)
      if (key == "dropped" && value.find("outvoted") != std::string::npos)
        dropped_tagged = true;
  }
  EXPECT_TRUE(dropped_tagged);
}

TEST(Trace, ExportIsValidChromeJson) {
  RunArtifacts run = divergent_quorum_run(42);
  auto doc = json::parse(run.trace_json);
  ASSERT_TRUE(doc.has_value());
  const json::Value* events = doc->find("traceEvents");
  ASSERT_NE(events, nullptr);
  ASSERT_TRUE(events->is_array());
  EXPECT_EQ(events->as_array().size(), run.spans.size());
  for (const auto& ev : events->as_array()) {
    ASSERT_TRUE(ev.is_object());
    EXPECT_EQ(ev.find("ph")->as_string(), "X");
    EXPECT_NE(ev.find("ts"), nullptr);
    EXPECT_NE(ev.find("dur"), nullptr);
  }
}

TEST(Trace, SpanLifecycleAndIdempotentEnd) {
  int64_t now = 0;
  obs::Tracer tracer([&now] { return now; }, 1);
  obs::TraceId t = tracer.new_trace();
  ASSERT_NE(t, 0u);
  obs::SpanId root = tracer.begin(t, 0, "session", "test");
  now = 1000;
  obs::SpanId child = tracer.begin(t, root, "diff", "test");
  EXPECT_EQ(tracer.open_spans(), 2u);
  now = 2000;
  tracer.end(child);
  tracer.end(child);  // idempotent
  tracer.end(root);
  EXPECT_EQ(tracer.open_spans(), 0u);
  const obs::Span* c = tracer.find(child);
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->parent, root);
  EXPECT_EQ(c->start, 1000);
  EXPECT_EQ(c->end, 2000);
  // Marker events are closed on creation.
  tracer.event(t, root, "verdict", "test");
  EXPECT_EQ(tracer.open_spans(), 0u);
}

TEST(Metrics, HistogramBoundsRoundTripThroughJson) {
  obs::MetricsRegistry registry;
  obs::Histogram* h = registry.histogram("lat_ms", {1, 5, 25, 125});
  h->observe(0.5);
  h->observe(3);
  h->observe(30);
  h->observe(1e9);  // overflow bucket

  auto doc = json::parse(registry.dump_json());
  ASSERT_TRUE(doc.has_value());
  const json::Value* hist = doc->find("histograms");
  ASSERT_NE(hist, nullptr);
  const json::Value* lat = hist->find("lat_ms");
  ASSERT_NE(lat, nullptr);

  const json::Value* bounds = lat->find("bounds");
  ASSERT_NE(bounds, nullptr);
  ASSERT_EQ(bounds->as_array().size(), h->bounds().size());
  for (size_t i = 0; i < h->bounds().size(); ++i)
    EXPECT_DOUBLE_EQ(bounds->as_array()[i].as_number(), h->bounds()[i]);

  const json::Value* counts = lat->find("counts");
  ASSERT_NE(counts, nullptr);
  ASSERT_EQ(counts->as_array().size(), h->counts().size());
  uint64_t total = 0;
  for (size_t i = 0; i < h->counts().size(); ++i) {
    EXPECT_DOUBLE_EQ(counts->as_array()[i].as_number(),
                     static_cast<double>(h->counts()[i]));
    total += h->counts()[i];
  }
  EXPECT_EQ(total, 4u);
}

TEST(Metrics, CountersAndGaugesAreStableHandles) {
  obs::MetricsRegistry registry;
  obs::Counter* c = registry.counter("hits");
  c->inc();
  c->inc(4);
  EXPECT_EQ(registry.counter("hits"), c);  // same handle on re-lookup
  EXPECT_EQ(c->value(), 5u);

  obs::Gauge* g = registry.gauge("depth");
  g->set(3.0);
  g->set(9.0);
  g->set(2.0);
  EXPECT_DOUBLE_EQ(g->value(), 2.0);
  EXPECT_DOUBLE_EQ(g->max_value(), 9.0);
}

}  // namespace
}  // namespace rddr
