// Focused tests for the SQL lexer and parser: token forms the exploits
// depend on (quote escaping, dollar-quoting, custom operator symbols,
// parameters), error reporting, and expression semantics.
#include <gtest/gtest.h>

#include "sqldb/lexer.h"
#include "sqldb/parser.h"

namespace rddr::sqldb {
namespace {

std::vector<Token> lex_ok(const std::string& sql) {
  auto r = lex_sql(sql);
  EXPECT_TRUE(r.ok()) << r.error();
  return r.ok() ? r.take() : std::vector<Token>{};
}

TEST(Lexer, IdentifiersAreLowercased) {
  auto toks = lex_ok("SELECT Foo FROM Bar");
  ASSERT_GE(toks.size(), 4u);
  EXPECT_EQ(toks[0].text, "select");
  EXPECT_EQ(toks[1].text, "foo");
  EXPECT_EQ(toks[3].text, "bar");
}

TEST(Lexer, QuotedIdentifiersKeepCase) {
  auto toks = lex_ok("SELECT \"MixedCase\"");
  EXPECT_EQ(toks[1].text, "MixedCase");
}

TEST(Lexer, StringEscaping) {
  // '' inside a string is a literal quote — the semantics the DVWA
  // sanitisation (quote doubling) relies on.
  auto toks = lex_ok("SELECT 'it''s'");
  ASSERT_EQ(toks[1].kind, TokKind::kString);
  EXPECT_EQ(toks[1].text, "it's");
}

TEST(Lexer, UnterminatedStringFails) {
  EXPECT_FALSE(lex_sql("SELECT 'oops").ok());
}

TEST(Lexer, DollarQuotedBody) {
  auto toks = lex_ok("AS $$BEGIN RETURN 1; END$$ LANGUAGE x");
  ASSERT_EQ(toks[1].kind, TokKind::kString);
  EXPECT_EQ(toks[1].text, "BEGIN RETURN 1; END");
}

TEST(Lexer, Parameters) {
  auto toks = lex_ok("$1 > $2");
  EXPECT_EQ(toks[0].kind, TokKind::kParam);
  EXPECT_EQ(toks[0].text, "1");
  EXPECT_EQ(toks[2].text, "2");
}

TEST(Lexer, MultiCharOperators) {
  auto toks = lex_ok("a >>> b <<< c <> d >= e");
  EXPECT_EQ(toks[1].text, ">>>");
  EXPECT_EQ(toks[3].text, "<<<");
  EXPECT_EQ(toks[5].text, "<>");
  EXPECT_EQ(toks[7].text, ">=");
}

TEST(Lexer, CommentsSkipped) {
  auto toks = lex_ok("SELECT 1 -- trailing comment\n + /* block */ 2");
  // select, 1, +, 2, end
  ASSERT_EQ(toks.size(), 5u);
  EXPECT_EQ(toks[2].text, "+");
}

TEST(Lexer, UnterminatedBlockCommentFails) {
  EXPECT_FALSE(lex_sql("SELECT 1 /* oops").ok());
}

TEST(Lexer, NumbersWithExponents) {
  auto toks = lex_ok("1 2.5 1e3 2.5e-2 .5");
  EXPECT_EQ(toks[0].text, "1");
  EXPECT_EQ(toks[1].text, "2.5");
  EXPECT_EQ(toks[2].text, "1e3");
  EXPECT_EQ(toks[3].text, "2.5e-2");
  EXPECT_EQ(toks[4].text, ".5");
}

TEST(Parser, PrecedenceArithmeticOverComparison) {
  auto e = parse_expression("1 + 2 * 3 = 7");
  ASSERT_TRUE(e.ok()) << e.error();
  EXPECT_EQ(e.value()->to_string(), "((1 + (2 * 3)) = 7)");
}

TEST(Parser, PrecedenceAndOr) {
  auto e = parse_expression("a = 1 OR b = 2 AND c = 3");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->to_string(),
            "((a = 1) or ((b = 2) and (c = 3)))");
}

TEST(Parser, NotBindsLooserThanComparison) {
  auto e = parse_expression("NOT a = 1");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->to_string(), "NOT (a = 1)");
}

TEST(Parser, CustomOperatorAtComparisonLevel) {
  auto e = parse_expression("col >>> 0 AND x = 1");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->to_string(), "((col >>> 0) and (x = 1))");
}

TEST(Parser, QualifiedColumnsAndFunctions) {
  auto e = parse_expression("round(t.val, 2) || lower(name)");
  ASSERT_TRUE(e.ok());
  EXPECT_EQ(e.value()->to_string(), "(round(t.val, 2) || lower(name))");
}

TEST(Parser, SelectClausesRoundTrip) {
  auto r = parse_sql(
      "SELECT a, b AS bee, count(*) FROM t1 JOIN t2 ON t1.id = t2.id "
      "WHERE a > 1 GROUP BY a, b HAVING count(*) > 2 "
      "ORDER BY a DESC, bee LIMIT 7;");
  ASSERT_TRUE(r.ok()) << r.error();
  ASSERT_EQ(r.value().size(), 1u);
  const auto& sel = *r.value()[0].select;
  EXPECT_EQ(sel.items.size(), 3u);
  EXPECT_EQ(sel.items[1].alias, "bee");
  EXPECT_EQ(sel.from.size(), 2u);
  ASSERT_NE(sel.from[1].join_on, nullptr);
  EXPECT_EQ(sel.group_by.size(), 2u);
  ASSERT_NE(sel.having, nullptr);
  ASSERT_EQ(sel.order_by.size(), 2u);
  EXPECT_TRUE(sel.order_by[0].descending);
  EXPECT_FALSE(sel.order_by[1].descending);
  EXPECT_EQ(sel.limit.value(), 7);
}

TEST(Parser, MultiStatementScript) {
  auto r = parse_sql("CREATE TABLE t (a int); INSERT INTO t VALUES (1); "
                     "SELECT * FROM t;");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(r.value().size(), 3u);
}

TEST(Parser, CreateFunctionPlpgsqlBody) {
  auto r = parse_sql(
      "CREATE FUNCTION leak2(integer,integer) RETURNS boolean "
      "AS $$BEGIN RAISE NOTICE 'leak % %', $1, $2; RETURN $1 > $2; END$$ "
      "LANGUAGE plpgsql immutable;");
  ASSERT_TRUE(r.ok()) << r.error();
  const auto& fn = *r.value()[0].create_function;
  EXPECT_EQ(fn.name, "leak2");
  EXPECT_EQ(fn.arg_types.size(), 2u);
  ASSERT_TRUE(fn.notice_format.has_value());
  EXPECT_EQ(*fn.notice_format, "leak % %");
  EXPECT_EQ(fn.notice_args.size(), 2u);
  ASSERT_NE(fn.return_expr, nullptr);
  EXPECT_EQ(fn.return_expr->to_string(), "($1 > $2)");
}

TEST(Parser, CreateFunctionSingleQuotedBody) {
  // Listing 2 form: body in a regular string with doubled quotes.
  auto r = parse_sql(
      "CREATE FUNCTION op_leak(int, int) RETURNS bool AS "
      "'BEGIN RAISE NOTICE ''leak %, %'', $1, $2; RETURN $1 < $2; END' "
      "LANGUAGE plpgsql;");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_EQ(*r.value()[0].create_function->notice_format, "leak %, %");
}

TEST(Parser, CreateFunctionRejectsMalformedBody) {
  EXPECT_FALSE(parse_sql("CREATE FUNCTION f(int) RETURNS bool AS "
                         "$$NOT PLPGSQL$$ LANGUAGE plpgsql;")
                   .ok());
}

TEST(Parser, CreateOperatorAttributes) {
  auto r = parse_sql(
      "CREATE OPERATOR >>> (procedure=leak2, leftarg=integer, "
      "rightarg=integer, restrict=scalargtsel);");
  ASSERT_TRUE(r.ok()) << r.error();
  const auto& op = *r.value()[0].create_operator;
  EXPECT_EQ(op.symbol, ">>>");
  EXPECT_EQ(op.procedure, "leak2");
  EXPECT_EQ(op.restrict_estimator, "scalargtsel");
}

TEST(Parser, ExplainCostsOff) {
  auto r = parse_sql("EXPLAIN (COSTS OFF) SELECT * FROM t;");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value()[0].explain->costs_off);
  auto r2 = parse_sql("EXPLAIN SELECT * FROM t;");
  ASSERT_TRUE(r2.ok());
  EXPECT_FALSE(r2.value()[0].explain->costs_off);
}

TEST(Parser, SetForms) {
  auto r = parse_sql("SET client_min_messages TO 'notice';");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value()[0].set->name, "client_min_messages");
  EXPECT_EQ(r.value()[0].set->value, "notice");
  auto r2 = parse_sql("SET search_path = public;");
  ASSERT_TRUE(r2.ok());
  EXPECT_EQ(r2.value()[0].set->value, "public");
  auto r3 = parse_sql("SET TRANSACTION ISOLATION LEVEL SERIALIZABLE;");
  ASSERT_TRUE(r3.ok());
}

TEST(Parser, RlsStatements) {
  auto r = parse_sql(
      "ALTER TABLE t ENABLE ROW LEVEL SECURITY;"
      "CREATE POLICY p ON t TO alice USING (owner = current_user);"
      "GRANT SELECT ON t TO alice;");
  ASSERT_TRUE(r.ok()) << r.error();
  EXPECT_TRUE(r.value()[0].alter_rls->enable);
  EXPECT_EQ(r.value()[1].create_policy->role, "alice");
  EXPECT_EQ(r.value()[2].grant->privilege, "SELECT");
}

TEST(Parser, SyntaxErrorsCarryOffsets) {
  auto r = parse_sql("SELECT FROM;");
  ASSERT_FALSE(r.ok());
  EXPECT_NE(r.error().find("syntax error"), std::string::npos);
  EXPECT_FALSE(parse_sql("INSERT INTO t VALUES (1,);").ok());
  EXPECT_FALSE(parse_sql("SELECT a FROM t WHERE;").ok());
  EXPECT_FALSE(parse_sql("CREATE TABLE t (a zzz_type);").ok());
}

TEST(Parser, InjectionTextParsesTheWayAttackersExpect) {
  // The DVWA low-security query with the classic injection: the quotes
  // re-balance and the OR clause becomes part of the WHERE.
  auto r = parse_sql(
      "SELECT first_name FROM users WHERE user_id = '' OR '1'='1' "
      "ORDER BY first_name;");
  ASSERT_TRUE(r.ok()) << r.error();
  const auto& sel = *r.value()[0].select;
  EXPECT_EQ(sel.where->to_string(), "((user_id = '') or ('1' = '1'))");
  // The sanitised (quote-doubled) version is a single comparison instead.
  auto r2 = parse_sql(
      "SELECT first_name FROM users WHERE user_id = ''' OR ''1''=''1' "
      "ORDER BY first_name;");
  ASSERT_TRUE(r2.ok()) << r2.error();
  // to_string re-escapes quotes so its output round-trips the parser.
  EXPECT_EQ(r2.value()[0].select->where->to_string(),
            "(user_id = ''' OR ''1''=''1')");
}

TEST(Parser, BetweenInCaseIsNull) {
  auto e = parse_expression(
      "CASE WHEN a BETWEEN 1 AND 5 THEN 'low' WHEN a IN (6,7) THEN 'mid' "
      "ELSE 'high' END");
  ASSERT_TRUE(e.ok()) << e.error();
  EXPECT_NE(e.value()->to_string().find("BETWEEN"), std::string::npos);
  auto e2 = parse_expression("x IS NOT NULL AND y IS NULL");
  ASSERT_TRUE(e2.ok());
  EXPECT_EQ(e2.value()->to_string(), "(x IS NOT NULL and y IS NULL)");
}

}  // namespace
}  // namespace rddr::sqldb
