// Integration tests: every row of the paper's Table I, end to end.
//
// Each scenario must satisfy the paper's mitigation definition (§IV-A):
// the information leak is detected and blocked (exploit_blocked, no leak
// bytes client-side) while benign traffic is unaffected — and the exploit
// must demonstrably work against an unprotected vulnerable instance
// (otherwise we would be "mitigating" a non-bug).
#include <gtest/gtest.h>

#include "workloads/scenarios.h"

namespace rddr::workloads {
namespace {

void expect_mitigated(const ScenarioResult& r) {
  EXPECT_TRUE(r.benign_ok) << r.id << ": benign traffic was disturbed";
  EXPECT_TRUE(r.exploit_blocked) << r.id << ": exploit not blocked";
  EXPECT_FALSE(r.leak_reached_client)
      << r.id << ": leaked bytes reached the client";
  EXPECT_TRUE(r.exploit_works_unprotected)
      << r.id << ": exploit does not work even without RDDR (bad repro)";
  EXPECT_TRUE(r.mitigated());
}

TEST(Table1, Cve2017_7484_PostgresPlannerLeak) {
  expect_mitigated(run_cve_2017_7484());
}

TEST(Table1, Cve2017_7529_NginxRangeOverflow) {
  expect_mitigated(run_cve_2017_7529());
}

TEST(Table1, Cve2019_10130_RlsBypassInGitlab) {
  expect_mitigated(run_cve_2019_10130());
}

TEST(Table1, Cve2019_18277_RequestSmuggling) {
  expect_mitigated(run_cve_2019_18277());
}

TEST(Table1, Cve2014_3146_LxmlXss) { expect_mitigated(run_cve_2014_3146()); }

TEST(Table1, Cve2020_10799_SvglibXxe) {
  expect_mitigated(run_cve_2020_10799());
}

TEST(Table1, Cve2020_13757_RsaRiskyCrypto) {
  expect_mitigated(run_cve_2020_13757());
}

TEST(Table1, Cve2020_11888_Markdown2Xss) {
  expect_mitigated(run_cve_2020_11888());
}

TEST(Table1, DvwaSqlInjection) { expect_mitigated(run_dvwa_sqli()); }

TEST(Table1, AslrPointerLeak) {
  auto r = run_aslr_poc();
  expect_mitigated(r);
  // The ablation inside the scenario documents that WITHOUT ASLR the
  // identical leak goes undetected.
  EXPECT_NE(r.detail.find("without ASLR"), std::string::npos);
}

TEST(Table1, AllRowsMitigated) {
  auto rows = run_all_table1();
  ASSERT_EQ(rows.size(), 10u);
  for (const auto& r : rows) {
    EXPECT_TRUE(r.mitigated()) << r.id << " — " << r.detail;
    EXPECT_TRUE(r.benign_ok) << r.id;
  }
}

}  // namespace
}  // namespace rddr::workloads
