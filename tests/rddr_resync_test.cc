// End-to-end self-healing: crash a replica mid-workload, let the
// orchestrator replace it and the incoming proxy resync the replacement
// from a trusted peer, and require the deployment back at full N with
// zero interventions — the acceptance scenario for instance replacement
// with state resync.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/strutil.h"
#include "netsim/network.h"
#include "rddr/deployment.h"
#include "rddr/plugins.h"
#include "services/orchestrator.h"
#include "sqldb/client.h"
#include "sqldb/server.h"
#include "workloads/pgbench.h"

namespace rddr::core {
namespace {

constexpr int kAccounts = 50;

class ResyncTest : public ::testing::Test {
 protected:
  sim::Simulator sim;
  sim::Network net{sim, 10 * sim::kMicrosecond};
  services::Orchestrator orch{sim, net, /*seed=*/7};
  std::unique_ptr<NVersionDeployment> dep;
  std::vector<std::string> names;  // slot -> current container name

  void SetUp() override {
    orch.add_host("db-host", 8, 8LL << 30);
    orch.add_host("proxy-host", 4, 4LL << 30);
    orch.register_image("minipg", [&](const services::ContainerSpec& spec) {
      auto db =
          std::make_shared<sqldb::Database>(sqldb::minipg_info(spec.tag));
      workloads::load_pgbench(*db, kAccounts, /*seed=*/9);
      sqldb::SqlServer::Options so;
      so.address = spec.address;
      so.rng_seed = spec.rng_seed;
      return std::make_shared<sqldb::SqlServer>(net, *spec.host, db, so);
    });
  }

  /// Deploys pg-0..pg-2 behind a kQuorum incoming proxy with resync on.
  void build_deployment(ResyncOptions resync,
                        uint32_t reconnect_max_attempts = 0) {
    std::vector<std::string> addresses = orch.deploy_replicas(
        "pg", "minipg", {"13.0", "13.0", "13.0"}, "db-host", 5432);
    names.clear();
    for (const auto& a : addresses) names.push_back(sim::Network::node_of(a));

    resync.warm = [this](size_t i) -> ResyncOptions::WarmResult {
      auto target = orch.get<sqldb::SqlServer>(names[i]);
      if (!target || !dep) return {};
      const HealthTracker& health = dep->incoming().health();
      for (size_t j = 0; j < names.size(); ++j) {
        if (j == i || !health.is_healthy(j)) continue;
        auto source = orch.get<sqldb::SqlServer>(names[j]);
        if (!source) continue;
        std::string snap = source->dump_snapshot();
        if (!target->load_snapshot(snap)) return {};
        return {.bytes = static_cast<int64_t>(snap.size())};
      }
      return {};
    };

    HealthTracker::Options health;
    health.failure_threshold = 1;
    health.reconnect_base_delay = 50 * sim::kMillisecond;
    health.reconnect_max_delay = 1 * sim::kSecond;
    health.reconnect_max_attempts = reconnect_max_attempts;
    health.reconnect_jitter = 0;  // deterministic probe times
    dep = NVersionDeployment::Builder()
              .name("selfheal")
              .listen("front:5432")
              .versions(addresses)
              .plugin(std::make_shared<PgPlugin>())
              .filter_pair(true)
              .degradation(DegradationPolicy::kQuorum)
              .health(health)
              .unit_timeout(250 * sim::kMillisecond)
              .resync(resync)
              .on_instance_dead(
                  [this](size_t slot, const std::string&) { replace(slot); })
              .build(net, orch.host("proxy-host"));
  }

  void replace(size_t slot) {
    std::string new_address = orch.replace(names[slot]);
    names[slot] = sim::Network::node_of(new_address);
    dep->replace_instance(slot, new_address);
  }

  /// One read/write client: UPDATE every third query, fresh connection
  /// every five, 100ms apart. Returns counters via out-params.
  struct Workload {
    std::unique_ptr<sqldb::PgClient> pg;
    size_t issued = 0;
    uint64_t ok = 0, failed = 0;
    Rng rng{17};
  };

  void run_workload(Workload& w, size_t total_queries) {
    auto step = std::make_shared<std::function<void()>>();
    *step = [this, &w, total_queries, step] {
      if (w.issued >= total_queries) {
        if (w.pg) w.pg->close();
        return;
      }
      if (!w.pg || w.pg->broken() || w.issued % 5 == 0) {
        if (w.pg) w.pg->close();
        w.pg = std::make_unique<sqldb::PgClient>(net, "client", "front:5432",
                                                 "postgres");
      }
      size_t qi = w.issued++;
      std::string sql;
      if (qi % 3 == 0) {
        int aid = 1 + static_cast<int>(w.rng.next() % kAccounts);
        sql = strformat(
            "UPDATE pgbench_accounts SET abalance = abalance + 7 "
            "WHERE aid = %d",
            aid);
      } else {
        sql = workloads::pgbench_select_tx(w.rng, kAccounts);
      }
      w.pg->query(sql, [&w](sqldb::QueryOutcome o) {
        (o.failed() ? w.failed : w.ok)++;
      });
      sim.schedule(100 * sim::kMillisecond, [step] { (*step)(); });
    };
    sim.schedule(10 * sim::kMillisecond, [step] { (*step)(); });
  }
};

TEST_F(ResyncTest, CrashedReplicaIsReplacedResyncedAndReadmitted) {
  ResyncOptions resync;
  resync.enabled = true;
  build_deployment(resync);

  // Orchestrator-driven self-healing: crashed containers are replaced
  // (fresh name + seed) and the deployment is re-pointed at the newcomer.
  services::Orchestrator::ReplacementPolicy policy;
  policy.auto_replace = true;
  policy.replace_delay = 500 * sim::kMillisecond;
  policy.on_replaced = [this](const std::string& old_name, const std::string&,
                              const std::string& new_address) {
    for (size_t i = 0; i < names.size(); ++i) {
      if (names[i] != old_name) continue;
      names[i] = sim::Network::node_of(new_address);
      dep->replace_instance(i, new_address);
    }
  };
  orch.set_replacement_policy(policy);

  Workload w;
  run_workload(w, 60);  // ~6s of traffic
  sim.schedule_at(1 * sim::kSecond, [this] { orch.crash("pg-2"); });
  sim.run_until(30 * sim::kSecond);

  // Full N again: the replacement was admitted after resync.
  EXPECT_EQ(dep->incoming().health().healthy_count(), 3u);
  EXPECT_EQ(names[2], "pg-2-r1");
  auto stats = dep->incoming().stats();
  EXPECT_GE(stats.replacements, 1u);
  EXPECT_GE(stats.resyncs, 1u);
  // Benign recovery: never an intervention, never an outvote.
  EXPECT_EQ(dep->divergences(), 0u);
  EXPECT_EQ(stats.quorum_outvotes, 0u);
  // Every query accounted for; the crash window may refuse some.
  EXPECT_EQ(w.ok + w.failed, 60u);
  EXPECT_GE(w.ok, 50u);
  // The replacement really serves compared traffic post-readmission.
  auto replacement = orch.get<sqldb::SqlServer>("pg-2-r1");
  ASSERT_NE(replacement, nullptr);
  EXPECT_GT(replacement->queries_served(), 0u);
}

TEST_F(ResyncTest, DeadInstanceTriggersOnInstanceDeadReplacement) {
  ResyncOptions resync;
  resync.enabled = true;
  // Small probe budget: the crashed (never restarted) container exhausts
  // it, is declared dead, and on_instance_dead swaps in a replacement.
  build_deployment(resync, /*reconnect_max_attempts=*/3);

  Workload w;
  run_workload(w, 40);
  sim.schedule_at(500 * sim::kMillisecond, [this] { orch.crash("pg-1"); });
  sim.run_until(30 * sim::kSecond);

  EXPECT_EQ(names[1], "pg-1-r1");
  EXPECT_EQ(dep->incoming().health().healthy_count(), 3u);
  auto stats = dep->incoming().stats();
  EXPECT_GE(stats.replacements, 1u);
  EXPECT_GE(stats.resyncs, 1u);
  EXPECT_EQ(dep->divergences(), 0u);
  EXPECT_EQ(stats.quorum_outvotes, 0u);
  EXPECT_EQ(w.ok + w.failed, 40u);
}

TEST_F(ResyncTest, WritesDuringTransferWindowAreJournaled) {
  ResyncOptions resync;
  resync.enabled = true;
  // Stretch the modelled transfer so live traffic overlaps it: those
  // units must be journaled and replayed, not lost.
  resync.min_transfer_time = 600 * sim::kMillisecond;
  build_deployment(resync);

  Workload w;
  run_workload(w, 60);
  sim.schedule_at(1 * sim::kSecond, [this] { orch.crash("pg-0"); });
  sim.schedule_at(2 * sim::kSecond, [this] { orch.restart("pg-0"); });
  sim.run_until(30 * sim::kSecond);

  EXPECT_EQ(dep->incoming().health().healthy_count(), 3u);
  auto stats = dep->incoming().stats();
  EXPECT_GE(stats.resyncs, 1u);
  EXPECT_GT(stats.journal_replayed_requests, 0u);
  EXPECT_EQ(dep->divergences(), 0u);
  EXPECT_EQ(stats.quorum_outvotes, 0u);
  EXPECT_EQ(w.ok + w.failed, 60u);
  // The restarted replica converged: its state matches a peer's dump.
  auto a = orch.get<sqldb::SqlServer>("pg-0");
  auto b = orch.get<sqldb::SqlServer>("pg-1");
  ASSERT_NE(a, nullptr);
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(a->dump_snapshot(), b->dump_snapshot());
}

TEST_F(ResyncTest, ResyncDisabledReadmitsWithoutTransfer) {
  ResyncOptions resync;
  resync.enabled = false;
  build_deployment(resync);

  // No traffic at all: with nothing written while the instance was away,
  // plain probe-readmit (the pre-resync behaviour) is still sound.
  sim.schedule_at(100 * sim::kMillisecond, [this] { orch.crash("pg-2"); });
  sim.schedule_at(600 * sim::kMillisecond, [this] { orch.restart("pg-2"); });
  sim.run_until(10 * sim::kSecond);

  EXPECT_EQ(dep->incoming().health().healthy_count(), 3u);
  auto stats = dep->incoming().stats();
  EXPECT_EQ(stats.resyncs, 0u);
  EXPECT_EQ(stats.journal_replayed_requests, 0u);
}

}  // namespace
}  // namespace rddr::core
