// Scenario factory tests: seeded topology generation, the protocol-aware
// adversarial fuzzer's invariants (secret containment, no hangs, full
// benign accounting), per-seed determinism, shrink-to-minimal-repro, and
// the divergence-corpus miner's benign/true classification.
#include <gtest/gtest.h>

#include "scenario/corpus.h"
#include "scenario/fuzzer.h"
#include "scenario/topology.h"

namespace rddr::scenario {
namespace {

/// Trimmed schedule so one run stays fast; families and invariants are
/// unchanged.
FuzzOptions quick_options(int topology) {
  FuzzOptions o;
  o.topology = topology;
  o.benign_sessions = 4;
  o.benign_window = 1 * sim::kSecond;
  o.ops_per_family = 1;
  o.settle = 1500 * sim::kMillisecond;
  return o;
}

/// The variance the miner is expected to discover: the topologies stamp a
/// per-version build_sha startup parameter and an X-Backend-Build header.
core::KnownVariance tuned_variance() {
  core::KnownVariance v;
  v.pg_ignore_params.push_back("build_sha");
  v.http_ignore_headers.push_back("X-Backend-Build");
  return v;
}

TEST(ScenarioTopologyTest, SameSeedSameGraph) {
  for (int kind = 0; kind < Topology::kKinds; ++kind) {
    TopologyOptions opts;
    opts.kind = kind;
    opts.seed = 42;
    sim::Simulator sim_a;
    sim::Network net_a(sim_a, 10 * sim::kMicrosecond);
    Topology a(sim_a, net_a, opts);
    sim::Simulator sim_b;
    sim::Network net_b(sim_b, 10 * sim::kMicrosecond);
    Topology b(sim_b, net_b, opts);
    EXPECT_EQ(a.describe(), b.describe()) << Topology::kind_name(kind);
    EXPECT_EQ(a.entry(), b.entry());
    EXPECT_EQ(a.backend_nodes(), b.backend_nodes());
  }
}

TEST(ScenarioTopologyTest, GraphsVaryAcrossSeeds) {
  bool any_difference = false;
  TopologyOptions base;
  base.kind = 1;  // samples fan-out width and payload sizes
  base.seed = 1;
  sim::Simulator sim0;
  sim::Network net0(sim0, 10 * sim::kMicrosecond);
  const std::string first = Topology(sim0, net0, base).describe();
  for (uint64_t seed = 2; seed <= 6; ++seed) {
    TopologyOptions opts = base;
    opts.seed = seed;
    sim::Simulator sim;
    sim::Network net(sim, 10 * sim::kMicrosecond);
    if (Topology(sim, net, opts).describe() != first) any_difference = true;
  }
  EXPECT_TRUE(any_difference);
}

TEST(ScenarioPlanTest, DeterministicAndCoversAllFamilies) {
  for (int topo = 0; topo < Topology::kKinds; ++topo) {
    const FuzzOptions opts = quick_options(topo);
    const FuzzPlan a = generate_fuzz_plan(7, opts);
    const FuzzPlan b = generate_fuzz_plan(7, opts);
    EXPECT_EQ(describe(a), describe(b));
    const std::vector<MutationFamily> fams = families_for(topo == 0);
    ASSERT_EQ(a.ops.size(), fams.size() * opts.ops_per_family);
    for (MutationFamily f : fams) {
      const bool present =
          std::any_of(a.ops.begin(), a.ops.end(),
                      [f](const AdvOp& op) { return op.family == f; });
      EXPECT_TRUE(present) << family_name(f);
    }
  }
}

// Before mining, the planted per-version build stamps make every benign
// session diverge under kStrict: nothing is served, everything is
// *visibly* refused (accounting stays exact), and the corpus records the
// benign-window divergences the miner will learn from.
TEST(ScenarioFuzzTest, BaselineVarianceRefusesBenignTraffic) {
  const FuzzOptions opts = quick_options(0);
  const FuzzReport rep = run_fuzz_seed(3, opts);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(rep.served, 0u) << rep.summary();
  EXPECT_GT(rep.refused, 0u);
  EXPECT_EQ(rep.lost, 0u);
  const bool benign_window_records =
      std::any_of(rep.corpus.begin(), rep.corpus.end(),
                  [&](const core::DivergenceRecord& r) {
                    return r.time < rep.benign_until;
                  });
  EXPECT_TRUE(benign_window_records);
}

TEST(ScenarioFuzzTest, TunedVarianceServesBenignTraffic) {
  for (int topo = 0; topo < Topology::kKinds; ++topo) {
    FuzzOptions opts = quick_options(topo);
    opts.variance = tuned_variance();
    const FuzzReport rep = run_fuzz_seed(3, opts);
    EXPECT_TRUE(rep.ok()) << Topology::kind_name(topo) << "\n" << rep.summary();
    EXPECT_GT(rep.served, 0u) << Topology::kind_name(topo) << rep.summary();
    EXPECT_EQ(rep.lost, 0u);
    // With the variance tuned, the benign-only prefix is divergence-free.
    const bool benign_window_records =
        std::any_of(rep.corpus.begin(), rep.corpus.end(),
                    [&](const core::DivergenceRecord& r) {
                      return r.time < rep.benign_until;
                    });
    EXPECT_FALSE(benign_window_records) << Topology::kind_name(topo);
  }
}

// The tentpole's security claim: version-keyed secrets never cross an
// RDDR edge, whichever way the fuzzer asks for them (direct probes,
// smuggled requests, nested edges), while the probes do show up as
// interventions.
TEST(ScenarioFuzzTest, SecretProbesAreBlockedEverywhere) {
  for (int topo = 0; topo < Topology::kKinds; ++topo) {
    FuzzOptions opts = quick_options(topo);
    opts.variance = tuned_variance();
    const FuzzReport rep = run_fuzz_seed(11, opts);
    EXPECT_TRUE(rep.ok()) << Topology::kind_name(topo) << "\n" << rep.summary();
    EXPECT_GT(rep.interventions, 0u) << Topology::kind_name(topo);
  }
}

TEST(ScenarioFuzzTest, SlowlorisIsShedByIdleTimeout) {
  FuzzOptions opts = quick_options(1);
  opts.variance = tuned_variance();
  const FuzzReport rep = run_fuzz_seed(5, opts);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_GT(rep.idle_sheds, 0u) << rep.summary();
}

// Self-test for the no-hang invariant: with the idle timeout disabled the
// slowloris session parks a proxy session forever and the fuzzer must
// say so.
TEST(ScenarioFuzzTest, HangInvariantFiresWithoutIdleTimeout) {
  FuzzOptions opts = quick_options(1);
  opts.variance = tuned_variance();
  opts.idle_timeout = 0;
  const FuzzReport rep = run_fuzz_seed(5, opts);
  ASSERT_FALSE(rep.ok());
  const bool hang = std::any_of(
      rep.violations.begin(), rep.violations.end(),
      [](const std::string& v) { return v.find("hang") != std::string::npos; });
  EXPECT_TRUE(hang) << rep.summary();
}

TEST(ScenarioFuzzTest, ComposedFaultsStaySafe) {
  FuzzOptions opts = quick_options(0);
  opts.variance = tuned_variance();
  opts.compose_faults = true;
  const FuzzReport rep = run_fuzz_seed(17, opts);
  EXPECT_TRUE(rep.ok()) << rep.summary();
  EXPECT_EQ(rep.lost, 0u);
}

TEST(ScenarioFuzzTest, SameSeedByteIdenticalReportAndCorpus) {
  FuzzOptions opts = quick_options(2);
  opts.variance = tuned_variance();
  const FuzzReport a = run_fuzz_seed(23, opts);
  const FuzzReport b = run_fuzz_seed(23, opts);
  EXPECT_EQ(a.summary(), b.summary());
  EXPECT_EQ(corpus_json(a.corpus, opts.variance),
            corpus_json(b.corpus, opts.variance));
  EXPECT_EQ(a.topology_desc, b.topology_desc);
}

// Miner end-to-end: the baseline corpus teaches it the planted variance,
// the proposed rules name exactly the planted stamps, and re-running with
// the tuned variance drops the benign-divergence rate.
TEST(ScenarioCorpusTest, MinerProposesRulesAndLowersBenignRate) {
  // pgwire edge: build_sha ParameterStatus.
  {
    const FuzzOptions base = quick_options(0);
    const FuzzReport before = run_fuzz_seed(29, base);
    ASSERT_TRUE(before.ok()) << before.summary();
    ASSERT_FALSE(before.corpus.empty());
    const MinerReport mined =
        mine_corpus(before.corpus, before.benign_until, base.variance);
    const bool proposes_build_sha = std::any_of(
        mined.rules.begin(), mined.rules.end(), [](const DenoiserRule& r) {
          return r.kind == "pg_param" && r.name == "build_sha";
        });
    EXPECT_TRUE(proposes_build_sha) << mined.summary();
    EXPECT_GT(mined.benign_rate(), 0.5) << mined.summary();

    FuzzOptions tuned = base;
    tuned.variance = mined.tuned;
    const FuzzReport after = run_fuzz_seed(29, tuned);
    ASSERT_TRUE(after.ok()) << after.summary();
    EXPECT_GT(after.served, 0u);
    const MinerReport remined =
        mine_corpus(after.corpus, after.benign_until, tuned.variance);
    EXPECT_LT(remined.benign_rate(), mined.benign_rate())
        << remined.summary();
    // The secret probes survive tuning as true divergences.
    EXPECT_GT(remined.true_records, 0u) << remined.summary();
  }
  // http edge: X-Backend-Build header.
  {
    const FuzzOptions base = quick_options(1);
    const FuzzReport before = run_fuzz_seed(31, base);
    ASSERT_TRUE(before.ok()) << before.summary();
    const MinerReport mined =
        mine_corpus(before.corpus, before.benign_until, base.variance);
    const bool proposes_header = std::any_of(
        mined.rules.begin(), mined.rules.end(), [](const DenoiserRule& r) {
          return r.kind == "http_header" && r.name == "X-Backend-Build";
        });
    EXPECT_TRUE(proposes_header) << mined.summary();
  }
}

// Shrinking a failing plan is deterministic and 1-minimal: the hang
// reproducer keeps only the slowloris session, byte-identically across
// two shrink passes.
TEST(ScenarioShrinkTest, ShrinksToMinimalDeterministicRepro) {
  FuzzOptions opts = quick_options(1);
  opts.variance = tuned_variance();
  opts.idle_timeout = 0;  // the planted defect

  // A small plan: benign burst + slowloris + secret probe.
  const FuzzPlan full = generate_fuzz_plan(5, opts);
  FuzzPlan plan = full;
  plan.ops.clear();
  for (const AdvOp& op : full.ops) {
    if (op.family == MutationFamily::kBenignBurst ||
        op.family == MutationFamily::kHttpSlowloris ||
        op.family == MutationFamily::kHttpSecretProbe)
      plan.ops.push_back(op);
  }
  ASSERT_EQ(plan.ops.size(), 3u);
  ASSERT_FALSE(run_fuzz(plan, opts).ok());

  const FuzzPlan shrunk = shrink_fuzz_plan(plan, opts);
  ASSERT_EQ(shrunk.ops.size(), 1u) << describe(shrunk);
  EXPECT_EQ(shrunk.ops[0].family, MutationFamily::kHttpSlowloris);
  ASSERT_FALSE(run_fuzz(shrunk, opts).ok());

  const FuzzPlan again = shrink_fuzz_plan(plan, opts);
  EXPECT_EQ(describe(again), describe(shrunk));
  EXPECT_EQ(run_fuzz(again, opts).summary(), run_fuzz(shrunk, opts).summary());
}

}  // namespace
}  // namespace rddr::scenario
