// Snapshot/restore round-trip tests: the state-transfer half of instance
// replacement must preserve every piece of engine state (rows, catalog,
// privileges, policies, UDFs, operators, indexes) bit-exactly, and a
// malformed snapshot must leave the target visibly empty, never half-warm.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "common/rng.h"
#include "sqldb/engine.h"
#include "sqldb/snapshot.h"

namespace rddr::sqldb {
namespace {

ExecResult run(Database& db, const std::string& sql,
               const std::string& user = "postgres") {
  Session s(db, user);
  return s.execute(sql);
}

StatementResult last(Database& db, const std::string& sql,
                     const std::string& user = "postgres") {
  auto r = run(db, sql, user);
  EXPECT_FALSE(r.statements.empty());
  return std::move(r.statements.back());
}

TEST(SnapshotTest, RowsRoundTripAcrossTypes) {
  Database src{minipg_info("13.0")};
  auto r = last(src,
                "CREATE TABLE t (a int, b float, c text, d bool);"
                "INSERT INTO t VALUES (1, 1.5, 'one', true),"
                " (-42, 0.1, 'two words', false),"
                " (NULL, NULL, NULL, NULL);"
                "SELECT * FROM t;");
  ASSERT_FALSE(r.failed()) << r.error_message;

  Database dst{minipg_info("13.0")};
  std::string err;
  ASSERT_TRUE(restore_database(dst, snapshot_database(src), &err)) << err;

  auto got = last(dst, "SELECT a, b, c, d FROM t;");
  ASSERT_FALSE(got.failed()) << got.error_message;
  ASSERT_EQ(got.rows.size(), 3u);
  EXPECT_EQ(got.rows[0][0].value(), "1");
  EXPECT_EQ(got.rows[1][2].value(), "two words");
  EXPECT_FALSE(got.rows[2][0].has_value());
  // 0.1 is not exactly representable; hexfloat encoding must still make
  // the restored datum render identically to the original one.
  auto want = last(src, "SELECT b FROM t WHERE a = -42;");
  auto have = last(dst, "SELECT b FROM t WHERE a = -42;");
  EXPECT_EQ(want.rows[0][0].value(), have.rows[0][0].value());
}

TEST(SnapshotTest, TextEscapingSurvivesDelimiters) {
  Database src{minipg_info("13.0")};
  // Values containing the snapshot format's own delimiters (tab, newline,
  // backslash) must round-trip unchanged.
  TableData* t = src.create_table("raw", {{"v", Type::kText}});
  t->rows.push_back({Datum::text("tab\there")});
  t->rows.push_back({Datum::text("line\nbreak")});
  t->rows.push_back({Datum::text("back\\slash\r")});

  Database dst{minipg_info("13.0")};
  ASSERT_TRUE(restore_database(dst, snapshot_database(src)));
  const TableData* got = dst.find_table("raw");
  ASSERT_NE(got, nullptr);
  ASSERT_EQ(got->rows.size(), 3u);
  EXPECT_EQ(got->rows[0][0].as_text(), "tab\there");
  EXPECT_EQ(got->rows[1][0].as_text(), "line\nbreak");
  EXPECT_EQ(got->rows[2][0].as_text(), "back\\slash\r");
}

TEST(SnapshotTest, CatalogObjectsRoundTrip) {
  Database src{minipg_info("13.0")};
  auto r = run(src,
               "CREATE TABLE notes (owner_name text, body text);"
               "INSERT INTO notes VALUES ('alice','a1'),('bob','b1'),"
               " ('alice','a2');"
               "GRANT SELECT ON notes TO alice;"
               "GRANT UPDATE ON notes TO alice;"
               "ALTER TABLE notes ENABLE ROW LEVEL SECURITY;"
               "CREATE POLICY own ON notes TO alice"
               " USING (owner_name = current_user());");
  for (const auto& st : r.statements)
    ASSERT_FALSE(st.failed()) << st.error_message;
  src.find_table("notes")->build_index("owner_name");

  Database dst{minipg_info("13.0")};
  std::string err;
  ASSERT_TRUE(restore_database(dst, snapshot_database(src), &err)) << err;

  const TableData* t = dst.find_table("notes");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->owner, "postgres");
  EXPECT_TRUE(t->rls_enabled);
  EXPECT_EQ(t->grants.at("SELECT").count("alice"), 1u);
  EXPECT_EQ(t->grants.at("UPDATE").count("alice"), 1u);
  ASSERT_EQ(t->policies.size(), 1u);
  EXPECT_EQ(t->policies[0].name, "own");
  EXPECT_EQ(t->policies[0].role, "alice");
  EXPECT_FALSE(t->hash_indexes.empty());

  // RLS must actually be enforced post-restore, not just recorded.
  auto visible = last(dst, "SELECT body FROM notes ORDER BY body;", "alice");
  ASSERT_FALSE(visible.failed()) << visible.error_message;
  ASSERT_EQ(visible.rows.size(), 2u);
  EXPECT_EQ(visible.rows[0][0].value(), "a1");
}

TEST(SnapshotTest, FunctionsAndOperatorsRoundTrip) {
  Database src{minipg_info("13.0")};
  auto r = run(src,
               "CREATE FUNCTION gt2(integer, integer) RETURNS boolean "
               "AS $$BEGIN RAISE NOTICE 'cmp % %', $1, $2; "
               "RETURN $1 > $2; END$$ LANGUAGE plpgsql;"
               "CREATE OPERATOR >>> (procedure=gt2, leftarg=integer, "
               "rightarg=integer, restrict=scalargtsel);");
  for (const auto& st : r.statements)
    ASSERT_FALSE(st.failed()) << st.error_message;
  ASSERT_EQ(src.functions().count("gt2"), 1u);

  Database dst{minipg_info("13.0")};
  std::string err;
  ASSERT_TRUE(restore_database(dst, snapshot_database(src), &err)) << err;
  ASSERT_EQ(dst.functions().count("gt2"), 1u);
  EXPECT_EQ(dst.functions().at("gt2").nargs, 2u);
  ASSERT_EQ(dst.operators().count(">>>"), 1u);
  EXPECT_EQ(dst.operators().at(">>>").procedure, "gt2");
  EXPECT_EQ(dst.operators().at(">>>").restrict_estimator, "scalargtsel");

  // The restored function must still execute (exprs were re-parsed): the
  // operator filters and its RAISE NOTICE fires.
  auto q = last(dst,
                "CREATE TABLE t (a int); INSERT INTO t VALUES (9), (1);"
                "SELECT a FROM t WHERE a >>> 5;");
  ASSERT_FALSE(q.failed()) << q.error_message;
  ASSERT_EQ(q.rows.size(), 1u);
  EXPECT_EQ(q.rows[0][0].value(), "9");
  bool saw = false;
  for (const auto& n : q.notices)
    if (n == "cmp 9 5") saw = true;
  EXPECT_TRUE(saw);
}

TEST(SnapshotTest, DumpRestoreDumpIsFixedPoint) {
  Database src{minipg_info("13.0")};
  auto r = run(src,
               "CREATE TABLE t (a int, b float, c text);"
               "INSERT INTO t VALUES (1, 2.25, 'x'), (2, NULL, 'y');"
               "GRANT SELECT ON t TO bob;"
               "CREATE FUNCTION dbl(integer) RETURNS integer "
               "AS $$BEGIN RETURN $1 * 2; END$$ LANGUAGE plpgsql;");
  for (const auto& st : r.statements)
    ASSERT_FALSE(st.failed()) << st.error_message;
  std::string snap = snapshot_database(src);
  Database dst{minipg_info("13.0")};
  ASSERT_TRUE(restore_database(dst, snap));
  EXPECT_EQ(snapshot_database(dst), snap);
}

TEST(SnapshotTest, CrossVersionWarmKeepsTargetIdentity) {
  // Snapshots from one minipg version warm another: engine identity is a
  // header comment, not restored state (the point of N-versioning).
  Database src{minipg_info("13.0")};
  run(src, "CREATE TABLE t (a int); INSERT INTO t VALUES (7);");
  Database dst{minipg_info("10.7")};
  ASSERT_TRUE(restore_database(dst, snapshot_database(src)));
  EXPECT_EQ(dst.info().version, "10.7");
  EXPECT_EQ(last(dst, "SELECT a FROM t;").rows[0][0].value(), "7");
}

TEST(SnapshotTest, RoachdbTargetSkipsUdfsSilently) {
  Database src{minipg_info("13.0")};
  auto r = run(src,
               "CREATE TABLE t (a int); INSERT INTO t VALUES (3);"
               "CREATE FUNCTION idf(integer) RETURNS integer "
               "AS $$BEGIN RETURN $1; END$$ LANGUAGE plpgsql;"
               "CREATE OPERATOR <<< (procedure=idf, leftarg=integer, "
               "rightarg=integer);");
  for (const auto& st : r.statements)
    ASSERT_FALSE(st.failed()) << st.error_message;

  Database dst{roachdb_info()};
  ASSERT_FALSE(dst.info().supports_udf);
  std::string err;
  ASSERT_TRUE(restore_database(dst, snapshot_database(src), &err)) << err;
  EXPECT_EQ(dst.functions().size(), 0u);
  EXPECT_EQ(dst.operators().size(), 0u);
  EXPECT_EQ(last(dst, "SELECT a FROM t;").rows[0][0].value(), "3");
}

TEST(SnapshotTest, MalformedSnapshotFailsAndClears) {
  Database db{minipg_info("13.0")};
  run(db, "CREATE TABLE keep (a int); INSERT INTO keep VALUES (1);");

  std::string err;
  EXPECT_FALSE(restore_database(db, "not a snapshot", &err));
  EXPECT_NE(err.find("bad header"), std::string::npos) << err;
  // A failed restore must leave the database cleared (empty instance),
  // never a half-warmed mix of old and new state.
  EXPECT_TRUE(db.tables().empty());

  run(db, "CREATE TABLE keep (a int);");
  EXPECT_FALSE(restore_database(
      db, "RDDRSNAP 1\nT t\tpostgres\t0\nC a\t1\nR I:1\tI:2\n", &err));
  EXPECT_NE(err.find("row arity"), std::string::npos) << err;
  EXPECT_TRUE(db.tables().empty());

  // Row before any table header.
  EXPECT_FALSE(restore_database(db, "RDDRSNAP 1\nR I:1\n", &err));
  EXPECT_NE(err.find("row before table"), std::string::npos) << err;
}

TEST(SnapshotTest, TruncatedGarbageAndWrongVersionAreDistinguished) {
  Database db{minipg_info("13.0")};
  std::string err;

  EXPECT_FALSE(restore_database(db, "", &err));
  EXPECT_NE(err.find("empty input"), std::string::npos) << err;

  // A version stamp we don't speak is upgrade skew, not corruption.
  EXPECT_FALSE(restore_database(db, "RDDRSNAP 2\nT t\tpostgres\t0\n", &err));
  EXPECT_NE(err.find("unsupported version"), std::string::npos) << err;

  // Binary garbage (NULs included) is just a bad header.
  EXPECT_FALSE(
      restore_database(db, std::string("\x00\x7f\xffgarbage", 10), &err));
  EXPECT_NE(err.find("bad header"), std::string::npos) << err;

  // A transfer cut mid-record: the writer always ends with a newline, so
  // its absence must be rejected *before* a half row parses as a smaller
  // valid-looking table.
  run(db, "CREATE TABLE keep (a int); INSERT INTO keep VALUES (1);");
  std::string whole = snapshot_database(db);
  std::string cut = whole.substr(0, whole.size() - 3);
  ASSERT_NE(cut.back(), '\n');
  EXPECT_FALSE(restore_database(db, cut, &err));
  EXPECT_NE(err.find("truncated input"), std::string::npos) << err;
  EXPECT_TRUE(db.tables().empty());  // cleared, never half-warmed
}

/// One seeded adversarial datum: delimiter soup, empty strings, hexfloat
/// edge values, ±inf and NaN — everything the tab/newline-framed text
/// format could plausibly mangle.
Datum adversarial_datum(Rng& rng) {
  switch (rng.next() % 10) {
    case 0: return Datum::null();
    case 1: return Datum::text("");
    case 2: return Datum::text("tab\tnl\nbsl\\cr\rmix\t\\n");
    case 3: return Datum::text(std::string(1, '\\') + "t is not a tab");
    case 4: return Datum::integer(rng.next());
    case 5: return Datum::floating(std::numeric_limits<double>::infinity());
    case 6: return Datum::floating(-std::numeric_limits<double>::infinity());
    case 7: return Datum::floating(std::numeric_limits<double>::quiet_NaN());
    case 8:
      // Subnormals, max double, negative zero: hexfloat edges.
      switch (rng.next() % 3) {
        case 0: return Datum::floating(std::numeric_limits<double>::denorm_min());
        case 1: return Datum::floating(std::numeric_limits<double>::max());
        default: return Datum::floating(-0.0);
      }
    default: return Datum::floating(rng.uniform01() * 1e307 - 5e306);
  }
}

bool datum_equal(const Datum& a, const Datum& b) {
  if (a.type() != b.type()) return false;
  if (a.type() == Type::kFloat) {
    double x = a.as_float(), y = b.as_float();
    if (std::isnan(x) || std::isnan(y)) return std::isnan(x) && std::isnan(y);
    // Bit-exact, so -0.0 vs 0.0 and every subnormal must survive.
    return std::signbit(x) == std::signbit(y) && x == y;
  }
  return a == b;
}

TEST(SnapshotTest, AdversarialDatumsRoundTripOnBothEngines) {
  for (const EngineInfo& info : {minipg_info("13.0"), roachdb_info()}) {
    Rng rng(0xADDA7A);
    Database src{info};
    TableData* t = src.create_table(
        "hostile", {{"i", Type::kInt}, {"f", Type::kFloat}, {"s", Type::kText}});
    for (int row = 0; row < 200; ++row) {
      Row r;
      for (int col = 0; col < 3; ++col) r.push_back(adversarial_datum(rng));
      t->rows.push_back(std::move(r));
    }

    std::string snap = snapshot_database(src);
    Database dst{info};
    std::string err;
    ASSERT_TRUE(restore_database(dst, snap, &err)) << info.product << ": " << err;
    const TableData* got = dst.find_table("hostile");
    ASSERT_NE(got, nullptr);
    ASSERT_EQ(got->rows.size(), t->rows.size());
    for (size_t r = 0; r < t->rows.size(); ++r)
      for (size_t c = 0; c < 3; ++c)
        EXPECT_TRUE(datum_equal(t->rows[r][c], got->rows[r][c]))
            << info.product << " row " << r << " col " << c;
    // And the re-dump is a fixed point: no drift on the second hop.
    EXPECT_EQ(snapshot_database(dst), snap) << info.product;
  }
}

}  // namespace
}  // namespace rddr::sqldb
