// Unit tests for the HTTP message model, parser framing (including the
// smuggling-relevant Transfer-Encoding whitespace behaviour), chunked
// coding, Range parsing, and the xz77 content coding.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "proto/http/coding.h"
#include "proto/http/message.h"
#include "proto/http/parser.h"

namespace rddr::http {
namespace {

TEST(HeaderMap, OrderPreservingCaseInsensitive) {
  HeaderMap h;
  h.add("Host", "a");
  h.add("X-One", "1");
  h.add("x-one", "2");
  EXPECT_EQ(h.get("HOST").value(), "a");
  EXPECT_EQ(h.get("x-ONE").value(), "1");
  EXPECT_EQ(h.get_all("X-One").size(), 2u);
  h.set("X-One", "3");
  EXPECT_EQ(h.get_all("X-One").size(), 1u);
  EXPECT_EQ(h.entries().back().second, "3");
  EXPECT_EQ(h.remove("Host"), 1u);
  EXPECT_FALSE(h.has("Host"));
}

TEST(RequestSerialization, RoundTrip) {
  Request req;
  req.method = "POST";
  req.target = "/api/v1";
  req.headers.add("Host", "svc");
  req.body = "hello";
  Bytes wire = req.to_bytes();
  RequestParser p;
  p.feed(wire);
  auto msgs = p.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].method, "POST");
  EXPECT_EQ(msgs[0].target, "/api/v1");
  EXPECT_EQ(msgs[0].body, "hello");
  EXPECT_EQ(msgs[0].raw, wire);
}

TEST(ResponseSerialization, RoundTrip) {
  Response resp = make_response(404, "nope", "text/plain");
  ResponseParser p;
  p.feed(resp.to_bytes());
  auto msgs = p.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].status, 404);
  EXPECT_EQ(msgs[0].reason, "Not Found");
  EXPECT_EQ(msgs[0].body, "nope");
}

TEST(RequestParser, IncrementalFeed) {
  Request req;
  req.method = "GET";
  req.target = "/";
  req.body = "0123456789";
  Bytes wire = req.to_bytes();
  RequestParser p;
  for (char c : wire) {
    p.feed(ByteView(&c, 1));
  }
  auto msgs = p.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].body, "0123456789");
}

TEST(RequestParser, PipelinedRequests) {
  Request a, b;
  a.method = "GET";
  a.target = "/a";
  b.method = "GET";
  b.target = "/b";
  RequestParser p;
  p.feed(a.to_bytes() + b.to_bytes());
  auto msgs = p.take();
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].target, "/a");
  EXPECT_EQ(msgs[1].target, "/b");
}

TEST(RequestParser, ChunkedBodyDecoded) {
  Bytes wire =
      "POST /up HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n" +
      chunked_encode("hello chunked world", 7);
  RequestParser p;
  p.feed(wire);
  auto msgs = p.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].body, "hello chunked world");
}

TEST(RequestParser, ChunkedWithExtensionAndTrailer) {
  Bytes wire =
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "5;ext=1\r\nhello\r\n0\r\nX-Trailer: v\r\n\r\n";
  RequestParser p;
  p.feed(wire);
  auto msgs = p.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].body, "hello");
}

TEST(RequestParser, MalformedStartLineFails) {
  RequestParser p;
  p.feed("NOT_A_REQUEST\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, ConflictingContentLengthRejected) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nContent-Length: 5\r\nContent-Length: 7\r\n\r\n");
  EXPECT_TRUE(p.failed());
}

TEST(RequestParser, EqualDuplicateContentLengthAccepted) {
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nContent-Length: 2\r\nContent-Length: 2\r\n\r\nok");
  EXPECT_FALSE(p.failed());
  EXPECT_EQ(p.take().size(), 1u);
}

// ---- The CVE-2019-18277 framing disagreement ----

// The tail after the blank line is 37 bytes: a zero chunk (5) plus a full
// smuggled request (32). Content-Length covers ALL of it, so a framer that
// ignores the vertical-tab Transfer-Encoding sees one request with the
// smuggled bytes hidden in the body, while a chunked-aware framer ends the
// body at the zero chunk and surfaces "GET /admin" as a second request.
constexpr char kSmuggle[] =
    "POST / HTTP/1.1\r\n"
    "Host: x\r\n"
    "Content-Length: 37\r\n"
    "Transfer-Encoding: \x0b"
    "chunked\r\n"
    "\r\n"
    "0\r\n\r\nGET /admin HTTP/1.1\r\nHost: x\r\n\r\n";

TEST(Smuggling, StrictFramerHidesSmuggledRequestInBody) {
  // HAProxy 1.5.3 behaviour: \x0b is not HTTP whitespace, TE is not
  // recognised as chunked, Content-Length frames the body — ONE request
  // whose body conceals the attack.
  ParserOptions opts;
  opts.te_whitespace = TeWhitespace::kStrictHttp;
  RequestParser p(opts);
  p.feed(kSmuggle);
  auto msgs = p.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].target, "/");
  EXPECT_NE(msgs[0].body.find("GET /admin"), Bytes::npos);
  EXPECT_FALSE(p.failed());
}

TEST(Smuggling, LenientFramerExposesSecondRequest) {
  // Typical backend behaviour: isspace() trimming makes the value
  // "chunked"; the body ends at the zero chunk and the smuggled /admin
  // request becomes a real second request.
  ParserOptions opts;
  opts.te_whitespace = TeWhitespace::kAnyWhitespace;
  RequestParser p(opts);
  p.feed(kSmuggle);
  auto msgs = p.take();
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_EQ(msgs[0].target, "/");
  EXPECT_TRUE(msgs[0].body.empty());
  EXPECT_EQ(msgs[1].target, "/admin");
}

TEST(Smuggling, HardenedParserRejectsTeAndCl) {
  ParserOptions opts;
  opts.te_whitespace = TeWhitespace::kAnyWhitespace;
  opts.reject_te_and_cl = true;
  RequestParser p(opts);
  p.feed(kSmuggle);
  EXPECT_TRUE(p.failed());
}

TEST(Range, ParseForms) {
  auto r = parse_range_header("bytes=0-99");
  ASSERT_TRUE(r.has_value());
  ASSERT_EQ(r->size(), 1u);
  EXPECT_EQ((*r)[0].first, 0);
  EXPECT_EQ((*r)[0].last, 99);

  r = parse_range_header("bytes=-500");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[0].first, -1);
  EXPECT_EQ((*r)[0].last, 500);

  r = parse_range_header("bytes=100-");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ((*r)[0].first, 100);
  EXPECT_EQ((*r)[0].last, -1);

  r = parse_range_header("bytes=0-0,5-9, 20-29");
  ASSERT_TRUE(r.has_value());
  EXPECT_EQ(r->size(), 3u);
}

TEST(Range, RejectsMalformed) {
  EXPECT_FALSE(parse_range_header("items=0-9").has_value());
  EXPECT_FALSE(parse_range_header("bytes=").has_value());
  EXPECT_FALSE(parse_range_header("bytes=a-b").has_value());
  EXPECT_FALSE(parse_range_header("bytes=5").has_value());
}

TEST(Xz77, RoundTripText) {
  Bytes input =
      "the quick brown fox jumps over the lazy dog; "
      "the quick brown fox jumps over the lazy dog";
  Bytes packed = xz77_compress(input);
  EXPECT_LT(packed.size(), input.size());  // repetition compresses
  auto out = xz77_decompress(packed);
  ASSERT_TRUE(out.has_value());
  EXPECT_EQ(*out, input);
}

TEST(Xz77, RoundTripBinaryAndEmpty) {
  Bytes empty;
  EXPECT_EQ(xz77_decompress(xz77_compress(empty)).value(), empty);
  Bytes bin;
  Rng rng(123);
  for (int i = 0; i < 10000; ++i) bin.push_back(static_cast<char>(rng.next() & 0xff));
  EXPECT_EQ(xz77_decompress(xz77_compress(bin)).value(), bin);
}

TEST(Xz77, RoundTripPropertySweep) {
  Rng rng(7);
  for (int trial = 0; trial < 50; ++trial) {
    Bytes input;
    size_t len = static_cast<size_t>(rng.uniform(0, 2000));
    int alphabet = static_cast<int>(rng.uniform(2, 26));
    for (size_t i = 0; i < len; ++i)
      input.push_back(static_cast<char>('a' + rng.uniform(0, alphabet)));
    auto out = xz77_decompress(xz77_compress(input));
    ASSERT_TRUE(out.has_value());
    EXPECT_EQ(*out, input) << "trial " << trial;
  }
}

TEST(Xz77, RejectsMalformed) {
  EXPECT_FALSE(xz77_decompress("\x02junk").has_value());       // bad op
  EXPECT_FALSE(xz77_decompress(Bytes("\x00\xff\xff", 3)).has_value());  // truncated
  // Match with distance beyond output.
  Bytes bad;
  bad += Bytes("\x01\x00\x05\x00\x03", 5);
  EXPECT_FALSE(xz77_decompress(bad).has_value());
}

TEST(ChunkedEncode, SplitsIntoChunks) {
  Bytes enc = chunked_encode("aaaaaaaaaa", 4);  // 4+4+2
  EXPECT_NE(enc.find("4\r\naaaa\r\n"), Bytes::npos);
  EXPECT_NE(enc.find("2\r\naa\r\n"), Bytes::npos);
  EXPECT_NE(enc.find("0\r\n\r\n"), Bytes::npos);
}

// ---- bounded-read hardening (fuzzer-found classes) ----

TEST(ParserHardening, UnterminatedChunkSizeLineBounded) {
  // A sender that opens a chunked body and then streams hex digits
  // without ever sending CRLF used to grow the buffer without limit.
  RequestParser p;
  p.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n");
  p.feed(Bytes(1024, 'f'));  // endless "chunk size" with no terminator
  EXPECT_TRUE(p.failed());
  EXPECT_NE(p.error().find("chunk size line too long"), std::string::npos);
}

TEST(ParserHardening, OverlongTerminatedChunkSizeLineRejected) {
  RequestParser p;
  Bytes wire = "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n";
  wire += "1;" + std::string(512, 'x') + "\r\na\r\n0\r\n\r\n";
  p.feed(wire);
  EXPECT_TRUE(p.failed());
  EXPECT_NE(p.error().find("chunk size line too long"), std::string::npos);
}

TEST(ParserHardening, EndlessTrailerSectionBounded) {
  // The trailer skip loop after the 0-chunk is bounded like the header
  // block: an endless trailer must not buffer forever.
  ParserOptions opts;
  opts.max_header_bytes = 512;
  RequestParser p(opts);
  p.feed("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n");
  for (int i = 0; i < 64 && !p.failed(); ++i)
    p.feed("X-Trailer: aaaaaaaaaaaaaaaaaaaaaaaaaaaaaaaa\r\n");
  EXPECT_TRUE(p.failed());
  EXPECT_NE(p.error().find("trailer section too large"), std::string::npos);
}

TEST(ParserHardening, ModestTrailerStillAccepted) {
  RequestParser p;
  p.feed(
      "POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n"
      "3\r\nabc\r\n0\r\nX-Sum: ok\r\n\r\n");
  auto msgs = p.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].body, "abc");
  EXPECT_FALSE(p.failed());
}

TEST(ParserHardening, StatusCodeOutOfRangeRejected) {
  // parse_i64 accepts any width; take() then truncated the value to int.
  // Out-of-range status lines must fail with their own error instead.
  for (const char* line :
       {"HTTP/1.1 99 Huh\r\n\r\n", "HTTP/1.1 1000 Huh\r\n\r\n",
        "HTTP/1.1 99999999999999999999 Huh\r\n\r\n"}) {
    ResponseParser p;
    p.feed(line);
    EXPECT_TRUE(p.failed()) << line;
  }
  ResponseParser ok;
  ok.feed("HTTP/1.1 204 No Content\r\n\r\n");
  EXPECT_FALSE(ok.failed());
  auto msgs = ok.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].status, 204);
}

}  // namespace
}  // namespace rddr::http
