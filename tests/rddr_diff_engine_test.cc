// Differential property tests for the batched DiffEngine data plane.
//
// The SIMD kernels (scalar / SSE2 / AVX2, rddr/diff_simd.h) are
// bit-identical by contract. This suite enforces that contract three
// ways:
//   1. kernel level: every supported Ops table vs naive in-test
//      references, on adversarial buffers (differences planted on and
//      around 16/32-byte lane boundaries);
//   2. primitive level: masks, masked checks and token detection agree
//      across levels on seeded random + adversarial corpora;
//   3. engine level: full batched verdicts (strict and quorum) agree
//      across engines pinned to different levels, and a whole deployment
//      run is byte-identical between "scalar" and "auto".
// Plus the steady-state allocation guarantee: a warmed engine's arena
// never refills again.
//
// Note: the RDDR_SIMD environment variable pins resolve_level() for the
// whole process (tests/run_sanitized.sh uses that to drive this suite
// with SIMD forced off and on under asan/ubsan). The kernel-table tests
// below use simd::ops(Level) directly, so every supported kernel is
// exercised regardless of the pin; the engine-knob tests degrade to
// same-level comparisons under a pin, which is the intent.
#include <gtest/gtest.h>

#include <cstddef>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "services/http_service.h"

namespace rddr::core {
namespace {

// ---- naive references ----

size_t naive_mismatch(const char* a, const char* b, size_t n) {
  for (size_t i = 0; i < n; ++i)
    if (a[i] != b[i]) return i;
  return n;
}

size_t naive_suffix_len(const char* a_end, const char* b_end, size_t n) {
  size_t i = 0;
  while (i < n && a_end[-1 - static_cast<ptrdiff_t>(i)] ==
                      b_end[-1 - static_cast<ptrdiff_t>(i)])
    ++i;
  return i;
}

bool naive_alnum(char c) {
  return (c >= '0' && c <= '9') || (c >= 'A' && c <= 'Z') ||
         (c >= 'a' && c <= 'z');
}

size_t naive_find_non_alnum(const char* p, size_t n) {
  for (size_t i = 0; i < n; ++i)
    if (!naive_alnum(p[i])) return i;
  return n;
}

simd::NwayHit naive_nway(const char* ref, const char* const* cands, size_t k,
                         size_t n) {
  simd::NwayHit best{n, SIZE_MAX};
  for (size_t j = 0; j < k; ++j) {
    size_t m = naive_mismatch(ref, cands[j], n);
    if (m < n && m < best.offset) best = {m, j};
  }
  return best;
}

std::vector<simd::Level> supported_levels() {
  std::vector<simd::Level> out;
  for (int l = 0; l <= static_cast<int>(simd::best_supported()); ++l)
    out.push_back(static_cast<simd::Level>(l));
  return out;
}

/// Knob spellings for every supported level ("scalar" always included).
std::vector<std::string> supported_knobs() {
  std::vector<std::string> out;
  for (simd::Level l : supported_levels()) out.push_back(simd::level_name(l));
  return out;
}

// Offsets that straddle the 16-byte (SSE2) and 32-byte (AVX2) lanes.
const size_t kLaneOffsets[] = {0,  1,  14, 15, 16, 17, 30, 31,
                               32, 33, 47, 48, 63, 64, 65, 100};

TEST(SimdKernels, MismatchAndSuffixDifferential) {
  Rng rng(1001);
  auto levels = supported_levels();
  ASSERT_GE(levels.size(), 1u);
  for (int iter = 0; iter < 300; ++iter) {
    size_t n = static_cast<size_t>(rng.uniform(0, 130));
    std::string a(n, '\0');
    for (auto& c : a) c = static_cast<char>(rng.uniform(0, 255));
    std::string b = a;
    // Plant 0-2 differences, biased onto lane boundaries.
    for (int d = 0; d < rng.uniform(0, 2); ++d) {
      if (n == 0) break;
      size_t off = (rng.uniform(0, 1) != 0)
                       ? kLaneOffsets[rng.uniform(0, 15)] % n
                       : static_cast<size_t>(rng.uniform(0, static_cast<int64_t>(n) - 1));
      b[off] = static_cast<char>(b[off] + 1);
    }
    size_t want_mis = naive_mismatch(a.data(), b.data(), n);
    size_t want_sfx = naive_suffix_len(a.data() + n, b.data() + n, n);
    for (simd::Level l : levels) {
      const simd::Ops& o = simd::ops(l);
      EXPECT_EQ(o.mismatch(a.data(), b.data(), n), want_mis)
          << simd::level_name(l) << " n=" << n;
      EXPECT_EQ(o.suffix_len(a.data() + n, b.data() + n, n), want_sfx)
          << simd::level_name(l) << " n=" << n;
    }
  }
}

TEST(SimdKernels, FindNonAlnumDifferential) {
  Rng rng(1002);
  auto levels = supported_levels();
  for (int iter = 0; iter < 300; ++iter) {
    size_t n = static_cast<size_t>(rng.uniform(0, 130));
    std::string a = rng.alnum_token(n);
    // Sometimes poison one byte, biased onto lane boundaries; cycle
    // through punctuation on both sides of the alnum ranges ('!' < '0',
    // '~' > 'z', ':' between digits and uppercase) to catch off-by-one
    // range classifications in the SIMD compares.
    if (n > 0 && rng.uniform(0, 2) != 0) {
      size_t off = (rng.uniform(0, 1) != 0)
                       ? kLaneOffsets[rng.uniform(0, 15)] % n
                       : static_cast<size_t>(rng.uniform(0, static_cast<int64_t>(n) - 1));
      const char poisons[] = {'!', '~', ':', '@', '[', '`', '{', ' '};
      a[off] = poisons[rng.uniform(0, 7)];
    }
    size_t want = naive_find_non_alnum(a.data(), n);
    for (simd::Level l : levels)
      EXPECT_EQ(simd::ops(l).find_non_alnum(a.data(), n), want)
          << simd::level_name(l) << " n=" << n;
  }
}

TEST(SimdKernels, NwayMismatchDifferential) {
  Rng rng(1003);
  auto levels = supported_levels();
  for (int iter = 0; iter < 300; ++iter) {
    size_t n = static_cast<size_t>(rng.uniform(1, 130));
    size_t k = static_cast<size_t>(rng.uniform(1, 4));
    std::string ref(n, '\0');
    for (auto& c : ref) c = static_cast<char>(rng.uniform(0, 255));
    std::vector<std::string> cands(k, ref);
    for (auto& cand : cands) {
      if (rng.uniform(0, 2) == 0) continue;  // stays equal
      size_t off = (rng.uniform(0, 1) != 0)
                       ? kLaneOffsets[rng.uniform(0, 15)] % n
                       : static_cast<size_t>(rng.uniform(0, static_cast<int64_t>(n) - 1));
      cand[off] = static_cast<char>(cand[off] ^ 0x5a);
    }
    std::vector<const char*> ptrs;
    for (const auto& cand : cands) ptrs.push_back(cand.data());
    simd::NwayHit want = naive_nway(ref.data(), ptrs.data(), k, n);
    for (simd::Level l : levels) {
      simd::NwayHit got = simd::ops(l).nway_mismatch(ref.data(), ptrs.data(), k, n);
      EXPECT_EQ(got.offset, want.offset) << simd::level_name(l) << " n=" << n;
      EXPECT_EQ(got.instance, want.instance)
          << simd::level_name(l) << " n=" << n;
    }
  }
}

// ---- adversarial corpus for mask/token/verdict differentials ----

/// One random 3-instance corpus mixing the adversarial shapes: tokens
/// straddling lane boundaries, length-mismatched tokens, whole-line
/// noise, stable lines, and occasional genuine divergence.
std::vector<std::vector<std::string>> adversarial_corpus(Rng& rng) {
  std::vector<std::vector<std::string>> inst(3);
  int lines = static_cast<int>(rng.uniform(1, 12));
  for (int i = 0; i < lines; ++i) {
    switch (rng.uniform(0, 4)) {
      case 0: {  // token straddling 16/32-byte boundaries
        std::string pre(static_cast<size_t>(rng.uniform(0, 40)), 'p');
        std::string post(static_cast<size_t>(rng.uniform(0, 40)), 's');
        size_t tok = static_cast<size_t>(rng.uniform(10, 40));
        for (auto& v : inst) v.push_back(pre + rng.alnum_token(tok) + post);
        break;
      }
      case 1: {  // length-mismatched tokens
        for (auto& v : inst)
          v.push_back("sid=" + rng.alnum_token(
                                   static_cast<size_t>(rng.uniform(10, 60))) +
                      ";end");
        break;
      }
      case 2: {  // whole-line noise: entire line differs, varying lengths
        for (auto& v : inst)
          v.push_back(rng.alnum_token(static_cast<size_t>(rng.uniform(1, 70))));
        break;
      }
      case 3: {  // genuine divergence outside any token on one instance
        std::string line = "stable payload " + std::to_string(i);
        for (auto& v : inst) v.push_back(line);
        if (rng.uniform(0, 3) == 0)
          inst[static_cast<size_t>(rng.uniform(0, 2))].back() += "!";
        break;
      }
      default: {  // stable line
        std::string line = "line " + std::to_string(i) + " stable";
        for (auto& v : inst) v.push_back(line);
        break;
      }
    }
  }
  return inst;
}

void fill_canon(CanonicalUnit& out, const std::vector<std::string>& lines,
                Arena& arena) {
  out = CanonicalUnit{};
  out.klass = ByteView("u");
  out.what = ByteView("unit");
  out.per_line = true;
  for (const std::string& l : lines) out.lines.push_back(arena, ByteView(l));
}

TEST(DiffDifferential, MasksAndLineChecksAgreeAcrossLevels) {
  Rng rng(2001);
  auto levels = supported_levels();
  for (int iter = 0; iter < 200; ++iter) {
    auto inst = adversarial_corpus(rng);
    for (size_t i = 0; i < inst[0].size(); ++i) {
      const std::string& a = inst[0][i];
      const std::string& b = inst[1][i];
      const std::string& c = inst[2][i];
      diff::LineMask ref_mask =
          diff::build_line_mask(a, b, simd::ops(simd::Level::kScalar));
      diff::LineCheck ref_chk = diff::masked_line_check(
          a, c, ref_mask, simd::ops(simd::Level::kScalar));
      for (simd::Level l : levels) {
        diff::LineMask m = diff::build_line_mask(a, b, simd::ops(l));
        EXPECT_EQ(m.active, ref_mask.active) << simd::level_name(l);
        EXPECT_EQ(m.prefix, ref_mask.prefix) << simd::level_name(l);
        EXPECT_EQ(m.suffix, ref_mask.suffix) << simd::level_name(l);
        diff::LineCheck chk = diff::masked_line_check(a, c, m, simd::ops(l));
        EXPECT_EQ(static_cast<int>(chk.fail), static_cast<int>(ref_chk.fail))
            << simd::level_name(l);
        EXPECT_EQ(chk.offset, ref_chk.offset) << simd::level_name(l);
      }
    }
  }
}

TEST(DiffDifferential, TokenDetectionAgreesAcrossLevels) {
  Rng rng(2002);
  auto levels = supported_levels();
  for (int iter = 0; iter < 200; ++iter) {
    auto inst = adversarial_corpus(rng);
    // Reference: scalar.
    std::vector<std::vector<std::string>> want;
    for (simd::Level l : levels) {
      Arena arena(4096);
      CanonicalUnit* canon = arena.alloc_array<CanonicalUnit>(3);
      for (size_t i = 0; i < 3; ++i) fill_canon(canon[i], inst[i], arena);
      ArenaVec<diff::TokenSpan> spans =
          diff::detect_tokens(canon, 3, arena, simd::ops(l));
      std::vector<std::vector<std::string>> got;
      for (const diff::TokenSpan& t : spans) {
        std::vector<std::string> per;
        for (size_t a = 0; a < t.n; ++a) per.emplace_back(t.per_instance[a]);
        got.push_back(std::move(per));
      }
      if (l == simd::Level::kScalar) {
        want = got;
      } else {
        EXPECT_EQ(got, want) << simd::level_name(l);
      }
    }
  }
}

TEST(DiffDifferential, BatchVerdictsAgreeAcrossLevels) {
  Rng rng(2003);
  auto knobs = supported_knobs();
  for (int iter = 0; iter < 150; ++iter) {
    auto inst = adversarial_corpus(rng);
    for (VoteMode mode : {VoteMode::kStrict, VoteMode::kQuorum}) {
      bool have_ref = false;
      BatchVerdict ref;
      for (const std::string& knob : knobs) {
        DiffEngineOptions opts;
        opts.simd = knob;
        DiffEngine engine(opts);
        CanonicalUnit* canon = engine.arena().alloc_array<CanonicalUnit>(3);
        for (size_t i = 0; i < 3; ++i)
          fill_canon(canon[i], inst[i], engine.arena());
        BatchVerdict v = engine.compare_canonical(
            canon, 3, /*filter_pair=*/true, mode, nullptr, nullptr);
        if (!have_ref) {
          ref = v;
          have_ref = true;
          continue;
        }
        EXPECT_EQ(v.unanimous, ref.unanimous) << knob;
        EXPECT_EQ(v.agreed, ref.agreed) << knob;
        EXPECT_EQ(v.outlier, ref.outlier) << knob;
        EXPECT_EQ(v.reason, ref.reason) << knob;
        EXPECT_EQ(v.region.line, ref.region.line) << knob;
        EXPECT_EQ(v.region.offset, ref.region.offset) << knob;
        EXPECT_EQ(v.region.instance, ref.region.instance) << knob;
      }
    }
  }
}

// ---- steady-state allocation guarantee ----

TEST(DiffEngineArena, WarmEngineNeverRefills) {
  HttpPlugin plugin;
  DiffEngine engine;
  Rng rng(3001);
  auto page = [&](const std::string& tok) {
    http::Response r = http::make_response(
        200, "<html><input value=\"" + tok + "\"><p>body body body</p></html>");
    return Unit{r.to_bytes(), "http-resp"};
  };
  std::vector<Unit> units{page(rng.alnum_token(32)), page(rng.alnum_token(32)),
                          page(rng.alnum_token(32))};
  KnownVariance kv;
  CompareContext ctx;
  ctx.filter_pair = true;
  ctx.variance = &kv;
  for (int i = 0; i < 5; ++i)
    engine.compare(plugin, units, ctx, VoteMode::kStrict);
  Arena::Stats warm = engine.arena().stats();
  for (int i = 0; i < 200; ++i)
    engine.compare(plugin, units, ctx, VoteMode::kStrict);
  Arena::Stats after = engine.arena().stats();
  EXPECT_EQ(after.refills, warm.refills);
  EXPECT_EQ(after.capacity, warm.capacity);
  EXPECT_EQ(engine.stats().batches, 205u);
  EXPECT_EQ(engine.stats().fast_path, 0u);  // tokens differ: slow path
  EXPECT_GT(engine.stats().mask_builds, 0u);
}

// ---- raw short-circuit: byte-identical batches never reach the parser ----

TEST(DiffEngineRawShortCircuit, IdenticalBatchesNeverParse) {
  HttpPlugin plugin;
  DiffEngine engine;
  http::Response r =
      http::make_response(200, "<html><p>same everywhere</p></html>");
  Unit u{r.to_bytes(), "http-resp"};
  std::vector<Unit> units{u, u, u};
  KnownVariance kv;
  SessionState session;
  CompareContext ctx;
  ctx.filter_pair = true;
  ctx.variance = &kv;
  ctx.session = &session;
  BatchVerdict v = engine.compare(plugin, units, ctx, VoteMode::kStrict);
  EXPECT_TRUE(v.unanimous);
  EXPECT_TRUE(v.agreed);
  EXPECT_EQ(engine.stats().raw_equal, 1u);
  EXPECT_EQ(engine.stats().fast_path, 0u);  // settled before canonicalising
  // forward_downstream reuses the raw verdict: provably no tokens, so no
  // re-canonicalisation and no arena growth.
  Arena::Stats before = engine.arena().stats();
  Bytes fwd = engine.forward_downstream(plugin, units, ctx);
  EXPECT_EQ(fwd, units[0].data);
  EXPECT_TRUE(session.tokens.empty());
  EXPECT_EQ(engine.arena().stats().high_water, before.high_water);
  // A kind mismatch defeats the shortcut even with identical payloads.
  std::vector<Unit> mixed{u, u, Unit{u.data, "http-other"}};
  BatchVerdict bad = engine.compare(plugin, mixed, ctx, VoteMode::kStrict);
  EXPECT_FALSE(bad.agreed);
  EXPECT_EQ(engine.stats().raw_equal, 1u);
}

// ---- deployment byte-identity: Builder.diff scalar vs auto ----

struct DeploymentRun {
  std::vector<int> statuses;
  std::vector<Bytes> bodies;
};

DeploymentRun run_token_deployment(const std::string& simd) {
  sim::Simulator simulator;
  sim::Network net(simulator, 20 * sim::kMicrosecond);
  sim::Host host(simulator, "node", 8, 8LL << 30);
  std::vector<std::unique_ptr<services::HttpServer>> instances;
  for (int i = 0; i < 3; ++i) {
    services::HttpServer::Options o;
    o.address = "svc-" + std::to_string(i) + ":80";
    auto s = std::make_unique<services::HttpServer>(net, host, o);
    auto rng = std::make_shared<Rng>(500 + static_cast<uint64_t>(i));
    s->set_handler([rng](const http::Request&, services::Responder r) {
      r(http::make_response(
          200, "<html><input name=\"csrf\" value=\"" + rng->alnum_token(32) +
                   "\"><p>stable content</p></html>"));
    });
    instances.push_back(std::move(s));
  }
  DiffEngineOptions diff;
  diff.simd = simd;
  auto proxy = NVersionDeployment::Builder()
                   .listen("svc:80")
                   .versions({"svc-0:80", "svc-1:80", "svc-2:80"})
                   .plugin(std::make_shared<HttpPlugin>())
                   .filter_pair(true)
                   .diff(diff)
                   .build(net, host);
  DeploymentRun out;
  for (int i = 0; i < 10; ++i) {
    int status = -2;
    Bytes body;
    services::HttpClient client(net, "client");
    client.get("svc:80", "/", [&](int s, const http::Response* r) {
      status = s;
      if (r) body = r->body;
    });
    simulator.run_until_idle();
    out.statuses.push_back(status);
    out.bodies.push_back(std::move(body));
  }
  return out;
}

TEST(DiffEngineDeployment, ScalarAndAutoRunsByteIdentical) {
  DeploymentRun auto_run = run_token_deployment("auto");
  DeploymentRun scalar_run = run_token_deployment("scalar");
  EXPECT_EQ(auto_run.statuses, scalar_run.statuses);
  EXPECT_EQ(auto_run.bodies, scalar_run.bodies);
  // The benign token pages must actually pass (de-noised, not blocked).
  for (int s : auto_run.statuses) EXPECT_EQ(s, 200);
}

}  // namespace
}  // namespace rddr::core
