// Unit tests for pgwire framing/messages and the JSON module.
#include <gtest/gtest.h>

#include "proto/json/json.h"
#include "proto/pgwire/pgwire.h"

namespace rddr {
namespace {

using namespace rddr::pg;

TEST(PgWire, StartupRoundTrip) {
  Bytes wire = build_startup({{"user", "alice"}, {"database", "app"}});
  MessageReader r(/*expect_startup=*/true);
  r.feed(wire);
  auto msgs = r.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].type, 0);
  auto params = parse_startup(msgs[0].payload);
  ASSERT_TRUE(params.has_value());
  EXPECT_EQ((*params)["user"], "alice");
  EXPECT_EQ((*params)["database"], "app");
}

TEST(PgWire, QueryRoundTrip) {
  MessageReader r(false);
  r.feed(build_query("SELECT 1;"));
  auto msgs = r.take();
  ASSERT_EQ(msgs.size(), 1u);
  EXPECT_EQ(msgs[0].type, 'Q');
  EXPECT_EQ(parse_query(msgs[0].payload).value(), "SELECT 1;");
}

TEST(PgWire, IncrementalFraming) {
  Bytes wire = build_query("SELECT a FROM t;") + build_terminate();
  MessageReader r(false);
  size_t total = 0;
  for (char c : wire) {
    r.feed(ByteView(&c, 1));
    total += r.take().size();
  }
  EXPECT_EQ(total, 2u);
}

TEST(PgWire, DataRowRoundTripWithNull) {
  std::vector<std::optional<std::string>> cols{"x", std::nullopt, ""};
  Bytes wire = build_data_row(cols);
  MessageReader r(false);
  r.feed(wire);
  auto msgs = r.take();
  ASSERT_EQ(msgs.size(), 1u);
  ASSERT_EQ(msgs[0].type, 'D');
  auto decoded = parse_data_row(msgs[0].payload);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(*decoded, cols);
}

TEST(PgWire, RowDescriptionRoundTrip) {
  Bytes wire = build_row_description({"id", "name", "score"});
  MessageReader r(false);
  r.feed(wire);
  auto msgs = r.take();
  auto names = parse_row_description(msgs[0].payload);
  ASSERT_TRUE(names.has_value());
  EXPECT_EQ(*names, (std::vector<std::string>{"id", "name", "score"}));
}

TEST(PgWire, ErrorAndNoticeFields) {
  MessageReader r(false);
  r.feed(build_error("42501", "permission denied"));
  r.feed(build_notice("leak 1 2"));
  auto msgs = r.take();
  ASSERT_EQ(msgs.size(), 2u);
  auto ef = parse_error_fields(msgs[0].payload);
  ASSERT_TRUE(ef.has_value());
  EXPECT_EQ(ef->severity, "ERROR");
  EXPECT_EQ(ef->sqlstate, "42501");
  EXPECT_EQ(ef->message, "permission denied");
  auto nf = parse_error_fields(msgs[1].payload);
  EXPECT_EQ(nf->severity, "NOTICE");
  EXPECT_EQ(nf->message, "leak 1 2");
}

TEST(PgWire, RejectsBadLength) {
  MessageReader r(false);
  Bytes bad = "Q";
  bad += Bytes("\x00\x00\x00\x01", 4);  // length < 4
  r.feed(bad);
  EXPECT_TRUE(r.failed());
}

TEST(PgWire, RejectsBadStartupLength) {
  MessageReader r(true);
  Bytes bad("\x00\x00\x00\x02", 4);
  r.feed(bad);
  EXPECT_TRUE(r.failed());
}

TEST(PgWire, BinaryPayloadSurvivesFraming) {
  Bytes payload;
  for (int i = 0; i < 256; ++i) payload.push_back(static_cast<char>(i));
  Bytes wire = build_data_row({payload});
  MessageReader r(false);
  r.feed(wire);
  auto msgs = r.take();
  auto cols = parse_data_row(msgs[0].payload);
  EXPECT_EQ((*cols)[0].value(), payload);
}

// ---- JSON ----

using json::Value;

TEST(Json, ParseScalars) {
  EXPECT_TRUE(json::parse("null")->is_null());
  EXPECT_EQ(json::parse("true")->as_bool(), true);
  EXPECT_DOUBLE_EQ(json::parse("-12.5")->as_number(), -12.5);
  EXPECT_EQ(json::parse("\"hi\\n\"")->as_string(), "hi\n");
}

TEST(Json, ParseNested) {
  auto v = json::parse(R"({"a": [1, 2, {"b": "c"}], "d": null})");
  ASSERT_TRUE(v.has_value());
  const auto* a = v->find("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->as_array().size(), 3u);
  EXPECT_EQ(a->as_array()[2].find("b")->as_string(), "c");
}

TEST(Json, DumpIsCanonical) {
  // Key order in the input must not affect output (std::map sorts).
  auto v1 = json::parse(R"({"b":1,"a":2})");
  auto v2 = json::parse(R"({"a":2,"b":1})");
  EXPECT_EQ(v1->dump(), v2->dump());
  EXPECT_EQ(v1->dump(), R"({"a":2,"b":1})");
}

TEST(Json, RoundTrip) {
  const char* doc = R"({"arr":[1,2.5,"s",true,null],"obj":{"k":"v"}})";
  auto v = json::parse(doc);
  ASSERT_TRUE(v.has_value());
  auto v2 = json::parse(v->dump());
  ASSERT_TRUE(v2.has_value());
  EXPECT_EQ(*v, *v2);
}

TEST(Json, EscapesControlCharacters) {
  Value v(std::string("a\x01b\"c"));
  auto reparsed = json::parse(v.dump());
  ASSERT_TRUE(reparsed.has_value());
  EXPECT_EQ(reparsed->as_string(), "a\x01b\"c");
}

TEST(Json, UnicodeEscapes) {
  auto v = json::parse(R"("Aé")");
  ASSERT_TRUE(v.has_value());
  EXPECT_EQ(v->as_string(), "A\xc3\xa9");
}

TEST(Json, RejectsMalformed) {
  EXPECT_FALSE(json::parse("{").has_value());
  EXPECT_FALSE(json::parse("[1,]").has_value());
  EXPECT_FALSE(json::parse("\"unterminated").has_value());
  EXPECT_FALSE(json::parse("1 2").has_value());   // trailing garbage
  EXPECT_FALSE(json::parse("{'single':1}").has_value());
  EXPECT_FALSE(json::parse("nul").has_value());
}

TEST(Json, DepthLimit) {
  std::string deep(100, '[');
  deep += std::string(100, ']');
  EXPECT_FALSE(json::parse(deep, 64).has_value());
  EXPECT_TRUE(json::parse("[[[[1]]]]", 64).has_value());
}

TEST(Json, IntegersRenderWithoutDecimal) {
  Value v(42);
  EXPECT_EQ(v.dump(), "42");
  Value arr(json::Array{Value(1), Value(2.5)});
  EXPECT_EQ(arr.dump(), "[1,2.5]");
}

// ---- bounded-read hardening (fuzzer-found classes) ----

TEST(PgWireHardening, NonPrintableTypeByteFailsDistinctly) {
  // A garbage type byte used to be accepted verbatim, and its
  // attacker-controlled declared length silently buffered up to the 64MB
  // cap. It must now fail immediately with its own error.
  MessageReader r(false);
  Bytes wire;
  wire.push_back('\x01');  // not a printable-ASCII pgwire type
  put_u32_be(wire, 32 * 1024 * 1024);
  r.feed(wire);
  EXPECT_TRUE(r.failed());
  EXPECT_NE(r.error().find("invalid message type byte"), std::string::npos);
  EXPECT_EQ(r.take().size(), 0u);
}

TEST(PgWireHardening, TypeByteCheckedBeforeLengthArrives) {
  // The type byte is validated as soon as it lands — before the 4 length
  // bytes exist — so a trickled garbage frame can't park in the buffer.
  MessageReader r(false);
  r.feed(ByteView("\x80", 1));
  EXPECT_TRUE(r.failed());
}

TEST(PgWireHardening, PrintableTypesStillFrame) {
  MessageReader r(false);
  r.feed(build_query("SELECT 1;") + build_terminate());
  auto msgs = r.take();
  ASSERT_EQ(msgs.size(), 2u);
  EXPECT_FALSE(r.failed());
}

TEST(PgWireHardening, StartupWithoutTerminatorRejected) {
  // A parameter list that merely runs out of bytes (no trailing NUL) is a
  // truncated packet; it used to parse as a complete parameter map.
  Bytes wire = build_startup({{"user", "alice"}});
  MessageReader r(true);
  r.feed(wire);
  auto msgs = r.take();
  ASSERT_EQ(msgs.size(), 1u);
  Bytes truncated = msgs[0].payload;
  truncated.pop_back();  // drop the list terminator
  EXPECT_FALSE(parse_startup(truncated).has_value());
  EXPECT_TRUE(parse_startup(msgs[0].payload).has_value());
}

TEST(PgWireHardening, BadLengthStillDistinctFromBadType) {
  MessageReader r(false);
  Bytes wire;
  wire.push_back('Q');
  put_u32_be(wire, 3);  // < 4: impossible self-inclusive length
  r.feed(wire);
  EXPECT_TRUE(r.failed());
  EXPECT_NE(r.error().find("bad message length"), std::string::npos);
}

}  // namespace
}  // namespace rddr
