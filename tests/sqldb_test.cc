// Unit tests for the sqldb engine: parsing, execution, privileges, RLS,
// user-defined operators, and the version-gated CVE behaviours.
#include <gtest/gtest.h>

#include "sqldb/engine.h"
#include "sqldb/parser.h"

namespace rddr::sqldb {
namespace {

/// Runs a script as `user` and returns the results.
ExecResult run(Database& db, const std::string& user, const std::string& sql) {
  Session s(db, user);
  return s.execute(sql);
}

/// Convenience: last statement result of a script run as postgres.
StatementResult last(Database& db, const std::string& sql,
                     const std::string& user = "postgres") {
  auto r = run(db, user, sql);
  EXPECT_FALSE(r.statements.empty());
  return std::move(r.statements.back());
}

class EngineTest : public ::testing::Test {
 protected:
  Database db{minipg_info("13.0")};
};

TEST_F(EngineTest, CreateInsertSelect) {
  auto r = last(db,
                "CREATE TABLE t (a int, b text);"
                "INSERT INTO t VALUES (1, 'one'), (2, 'two');"
                "SELECT a, b FROM t;");
  ASSERT_FALSE(r.failed()) << r.error_message;
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].value(), "1");
  EXPECT_EQ(r.rows[1][1].value(), "two");
  EXPECT_EQ(r.command_tag, "SELECT 2");
}

TEST_F(EngineTest, SelectStar) {
  auto r = last(db,
                "CREATE TABLE t (a int, b text);"
                "INSERT INTO t VALUES (5, 'x');"
                "SELECT * FROM t;");
  ASSERT_FALSE(r.failed());
  ASSERT_EQ(r.columns, (std::vector<std::string>{"a", "b"}));
  EXPECT_EQ(r.rows[0][0].value(), "5");
}

TEST_F(EngineTest, WhereFilters) {
  auto r = last(db,
                "CREATE TABLE t (a int);"
                "INSERT INTO t VALUES (1), (2), (3), (4);"
                "SELECT a FROM t WHERE a > 2;");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].value(), "3");
}

TEST_F(EngineTest, NullHandling) {
  auto r = last(db,
                "CREATE TABLE t (a int);"
                "INSERT INTO t VALUES (1), (NULL), (3);"
                "SELECT a FROM t WHERE a IS NULL;");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_FALSE(r.rows[0][0].has_value());
  r = last(db, "SELECT a FROM t WHERE a > 0;");
  EXPECT_EQ(r.rows.size(), 2u);  // NULL comparison is not true
}

TEST_F(EngineTest, OrderByAndLimit) {
  auto r = last(db,
                "CREATE TABLE t (a int, b text);"
                "INSERT INTO t VALUES (3,'c'), (1,'a'), (2,'b');"
                "SELECT a, b FROM t ORDER BY a DESC LIMIT 2;");
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].value(), "3");
  EXPECT_EQ(r.rows[1][0].value(), "2");
}

TEST_F(EngineTest, OrderByAlias) {
  auto r = last(db,
                "CREATE TABLE t (a int);"
                "INSERT INTO t VALUES (2), (1);"
                "SELECT a * 10 AS tens FROM t ORDER BY tens;");
  ASSERT_FALSE(r.failed()) << r.error_message;
  EXPECT_EQ(r.rows[0][0].value(), "10");
}

TEST_F(EngineTest, OrderByPosition) {
  auto r = last(db,
                "CREATE TABLE t (a int);"
                "INSERT INTO t VALUES (2), (1);"
                "SELECT a FROM t ORDER BY 1;");
  EXPECT_EQ(r.rows[0][0].value(), "1");
}

TEST_F(EngineTest, AggregatesAndGroupBy) {
  auto r = last(db,
                "CREATE TABLE s (grp text, v int);"
                "INSERT INTO s VALUES ('a',1),('a',2),('b',10),('b',20),('b',30);"
                "SELECT grp, count(*), sum(v), avg(v), min(v), max(v) "
                "FROM s GROUP BY grp ORDER BY grp;");
  ASSERT_FALSE(r.failed()) << r.error_message;
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].value(), "2");
  EXPECT_EQ(r.rows[0][2].value(), "3");
  EXPECT_EQ(r.rows[1][2].value(), "60");
  EXPECT_EQ(r.rows[1][3].value(), "20");
  EXPECT_EQ(r.rows[1][4].value(), "10");
  EXPECT_EQ(r.rows[1][5].value(), "30");
}

TEST_F(EngineTest, CountStarOnEmptyTable) {
  auto r = last(db, "CREATE TABLE e (x int); SELECT count(*) FROM e;");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value(), "0");
}

TEST_F(EngineTest, HavingFilter) {
  auto r = last(db,
                "CREATE TABLE s (grp text, v int);"
                "INSERT INTO s VALUES ('a',1),('b',10),('b',20);"
                "SELECT grp, sum(v) AS total FROM s GROUP BY grp "
                "HAVING sum(v) > 5 ORDER BY grp;");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value(), "b");
}

TEST_F(EngineTest, JoinOn) {
  auto r = last(db,
                "CREATE TABLE a (id int, name text);"
                "CREATE TABLE b (aid int, score int);"
                "INSERT INTO a VALUES (1,'x'),(2,'y');"
                "INSERT INTO b VALUES (1,10),(1,20),(2,30);"
                "SELECT a.name, sum(b.score) FROM a JOIN b ON a.id = b.aid "
                "GROUP BY a.name ORDER BY a.name;");
  ASSERT_FALSE(r.failed()) << r.error_message;
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][1].value(), "30");
  EXPECT_EQ(r.rows[1][1].value(), "30");
}

TEST_F(EngineTest, CommaJoinWithWhere) {
  auto r = last(db,
                "CREATE TABLE a (id int); CREATE TABLE b (id int);"
                "INSERT INTO a VALUES (1),(2); INSERT INTO b VALUES (2),(3);"
                "SELECT a.id FROM a, b WHERE a.id = b.id;");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value(), "2");
}

TEST_F(EngineTest, LikePatterns) {
  auto r = last(db,
                "CREATE TABLE t (s text);"
                "INSERT INTO t VALUES ('apple'),('apricot'),('banana');"
                "SELECT s FROM t WHERE s LIKE 'ap%';");
  EXPECT_EQ(r.rows.size(), 2u);
  r = last(db, "SELECT s FROM t WHERE s LIKE '_anana';");
  EXPECT_EQ(r.rows.size(), 1u);
  r = last(db, "SELECT s FROM t WHERE s NOT LIKE '%a%';");
  EXPECT_EQ(r.rows.size(), 0u);
}

TEST_F(EngineTest, BetweenAndIn) {
  auto r = last(db,
                "CREATE TABLE t (a int);"
                "INSERT INTO t VALUES (1),(2),(3),(4),(5);"
                "SELECT a FROM t WHERE a BETWEEN 2 AND 4;");
  EXPECT_EQ(r.rows.size(), 3u);
  r = last(db, "SELECT a FROM t WHERE a IN (1, 5, 9);");
  EXPECT_EQ(r.rows.size(), 2u);
  r = last(db, "SELECT a FROM t WHERE a NOT IN (1, 2, 3);");
  EXPECT_EQ(r.rows.size(), 2u);
}

TEST_F(EngineTest, CaseExpression) {
  auto r = last(db,
                "CREATE TABLE t (a int); INSERT INTO t VALUES (1),(5);"
                "SELECT CASE WHEN a > 3 THEN 'big' ELSE 'small' END FROM t;");
  ASSERT_FALSE(r.failed()) << r.error_message;
  EXPECT_EQ(r.rows[0][0].value(), "small");
  EXPECT_EQ(r.rows[1][0].value(), "big");
}

TEST_F(EngineTest, UpdateAndDelete) {
  auto r = last(db,
                "CREATE TABLE t (a int, b int);"
                "INSERT INTO t VALUES (1, 0), (2, 0), (3, 0);"
                "UPDATE t SET b = a * 2 WHERE a >= 2;");
  EXPECT_EQ(r.command_tag, "UPDATE 2");
  r = last(db, "DELETE FROM t WHERE a = 1;");
  EXPECT_EQ(r.command_tag, "DELETE 1");
  r = last(db, "SELECT b FROM t ORDER BY a;");
  EXPECT_EQ(r.rows[0][0].value(), "4");
}

TEST_F(EngineTest, ArithmeticSemantics) {
  auto r = last(db, "SELECT 7 / 2, 7.0 / 2, 7 % 3, 2 * 3 + 1;");
  EXPECT_EQ(r.rows[0][0].value(), "3");    // integer division truncates
  EXPECT_EQ(r.rows[0][1].value(), "3.5");
  EXPECT_EQ(r.rows[0][2].value(), "1");
  EXPECT_EQ(r.rows[0][3].value(), "7");
}

TEST_F(EngineTest, DivisionByZeroError) {
  auto r = last(db, "SELECT 1 / 0;");
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(*r.error_sqlstate, "22012");
}

TEST_F(EngineTest, StringFunctions) {
  auto r = last(db,
                "SELECT lower('AbC'), upper('x'), length('hello'), "
                "substr('hello', 2, 3), 'a' || 'b';");
  EXPECT_EQ(r.rows[0][0].value(), "abc");
  EXPECT_EQ(r.rows[0][1].value(), "X");
  EXPECT_EQ(r.rows[0][2].value(), "5");
  EXPECT_EQ(r.rows[0][3].value(), "ell");
  EXPECT_EQ(r.rows[0][4].value(), "ab");
}

TEST_F(EngineTest, VersionFunctionReportsBanner) {
  auto r = last(db, "SELECT version();");
  EXPECT_NE(r.rows[0][0].value().find("13.0"), std::string::npos);
}

TEST_F(EngineTest, SyntaxErrorReported) {
  auto r = last(db, "SELEC thing;");
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(*r.error_sqlstate, "42601");
}

TEST_F(EngineTest, UnknownTableError) {
  auto r = last(db, "SELECT * FROM missing;");
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(*r.error_sqlstate, "42P01");
}

TEST_F(EngineTest, UnknownColumnError) {
  auto r = last(db, "CREATE TABLE t (a int); SELECT zap FROM t;");
  // Empty table -> projection never evaluated; insert a row to force it.
  last(db, "INSERT INTO t VALUES (1);");
  r = last(db, "SELECT zap FROM t;");
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(*r.error_sqlstate, "42703");
}

TEST_F(EngineTest, ScriptAbortsAtFirstError) {
  auto r = run(db, "postgres",
               "CREATE TABLE t (a int);"
               "SELECT * FROM missing;"
               "INSERT INTO t VALUES (1);");
  EXPECT_EQ(r.statements.size(), 2u);  // third statement never ran
  auto check = last(db, "SELECT count(*) FROM t;");
  EXPECT_EQ(check.rows[0][0].value(), "0");
}

TEST_F(EngineTest, PrivilegesEnforced) {
  last(db, "CREATE TABLE secret (x int); INSERT INTO secret VALUES (42);");
  auto r = last(db, "SELECT * FROM secret;", "mallory");
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(*r.error_sqlstate, "42501");
  last(db, "GRANT SELECT ON secret TO mallory;");
  r = last(db, "SELECT * FROM secret;", "mallory");
  ASSERT_FALSE(r.failed());
  EXPECT_EQ(r.rows[0][0].value(), "42");
  // SELECT grant does not confer INSERT.
  r = last(db, "INSERT INTO secret VALUES (1);", "mallory");
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(*r.error_sqlstate, "42501");
}

TEST_F(EngineTest, RowLevelSecurityFiltersRows) {
  last(db,
       "CREATE TABLE notes (owner_name text, body text);"
       "INSERT INTO notes VALUES ('alice','a1'),('bob','b1'),('alice','a2');"
       "GRANT SELECT ON notes TO alice;"
       "ALTER TABLE notes ENABLE ROW LEVEL SECURITY;"
       "CREATE POLICY own ON notes USING (owner_name = current_user());");
  auto r = last(db, "SELECT body FROM notes ORDER BY body;", "alice");
  ASSERT_FALSE(r.failed()) << r.error_message;
  ASSERT_EQ(r.rows.size(), 2u);
  EXPECT_EQ(r.rows[0][0].value(), "a1");
  // Owner (postgres) bypasses RLS.
  r = last(db, "SELECT count(*) FROM notes;");
  EXPECT_EQ(r.rows[0][0].value(), "3");
}

TEST_F(EngineTest, RlsWithNoPoliciesHidesEverything) {
  last(db,
       "CREATE TABLE v (x int); INSERT INTO v VALUES (1);"
       "GRANT SELECT ON v TO bob;"
       "ALTER TABLE v ENABLE ROW LEVEL SECURITY;");
  auto r = last(db, "SELECT count(*) FROM v;", "bob");
  EXPECT_EQ(r.rows[0][0].value(), "0");
}

TEST_F(EngineTest, UserDefinedFunctionAndOperator) {
  auto r = last(db,
                "CREATE FUNCTION leak2(integer, integer) RETURNS boolean "
                "AS $$BEGIN RAISE NOTICE 'leak % %', $1, $2; "
                "RETURN $1 > $2; END$$ LANGUAGE plpgsql immutable;");
  ASSERT_FALSE(r.failed()) << r.error_message;
  r = last(db,
           "CREATE OPERATOR >>> (procedure=leak2, leftarg=integer, "
           "rightarg=integer, restrict=scalargtsel);");
  ASSERT_FALSE(r.failed()) << r.error_message;
  last(db, "CREATE TABLE t (a int); INSERT INTO t VALUES (9), (1);");
  r = last(db, "SELECT a FROM t WHERE a >>> 5;");
  ASSERT_FALSE(r.failed()) << r.error_message;
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value(), "9");
  // The function body's RAISE NOTICE fired for evaluated rows; the probe
  // also sampled. At minimum the two scan evaluations notice.
  bool saw = false;
  for (const auto& n : r.notices)
    if (n == "leak 9 5") saw = true;
  EXPECT_TRUE(saw);
}

TEST_F(EngineTest, OperatorRequiresExistingProcedure) {
  auto r = last(db, "CREATE OPERATOR <<< (procedure=ghost, leftarg=int, rightarg=int);");
  ASSERT_TRUE(r.failed());
  EXPECT_EQ(*r.error_sqlstate, "42883");
}

TEST_F(EngineTest, ExplainProducesPlanRows) {
  last(db, "CREATE TABLE t (a int);");
  auto r = last(db, "EXPLAIN (COSTS OFF) SELECT * FROM t WHERE a = 1;");
  ASSERT_FALSE(r.failed()) << r.error_message;
  ASSERT_EQ(r.columns, std::vector<std::string>{"QUERY PLAN"});
  EXPECT_NE(r.rows[0][0].value().find("Seq Scan on t"), std::string::npos);
}

TEST_F(EngineTest, IndexedLookupMatchesFullScan) {
  last(db, "CREATE TABLE k (id int, v text);");
  TableData* t = db.find_table("k");
  for (int i = 0; i < 1000; ++i)
    t->rows.push_back({Datum::integer(i), Datum::text("v" + std::to_string(i))});
  t->build_index("id");
  auto r = last(db, "SELECT v FROM k WHERE id = 437;");
  ASSERT_EQ(r.rows.size(), 1u);
  EXPECT_EQ(r.rows[0][0].value(), "v437");
  // Indexed scan touches only the match.
  EXPECT_EQ(r.rows_scanned, 1);
}

TEST_F(EngineTest, IndexMaintainedAcrossDml) {
  last(db, "CREATE TABLE k (id int, v text);");
  db.find_table("k")->build_index("id");
  last(db, "INSERT INTO k VALUES (1,'a'),(2,'b');");
  auto r = last(db, "SELECT v FROM k WHERE id = 2;");
  ASSERT_EQ(r.rows.size(), 1u);
  last(db, "DELETE FROM k WHERE id = 2;");
  r = last(db, "SELECT v FROM k WHERE id = 2;");
  EXPECT_EQ(r.rows.size(), 0u);
  last(db, "UPDATE k SET id = 10 WHERE id = 1;");
  r = last(db, "SELECT v FROM k WHERE id = 10;");
  EXPECT_EQ(r.rows.size(), 1u);
}

TEST_F(EngineTest, TransactionNoOpsAccepted) {
  auto r = run(db, "postgres", "BEGIN; COMMIT; ROLLBACK; START TRANSACTION;");
  for (const auto& sr : r.statements) EXPECT_FALSE(sr.failed());
}

// ---- Engine personality / version gating ----

TEST(VersionCompare, Ordering) {
  EXPECT_LT(compare_versions("9.2.19", "9.2.21"), 0);
  EXPECT_GT(compare_versions("10.9", "10.7"), 0);
  EXPECT_EQ(compare_versions("10.7", "10.7"), 0);
  EXPECT_LT(compare_versions("9.6", "10.0"), 0);
  EXPECT_GT(compare_versions("1.13.4", "1.13.2"), 0);
}

TEST(EnginePersonality, MinipgVulnGates) {
  EXPECT_TRUE(minipg_info("9.2.19").vulns.stats_leak_ignores_privilege);
  EXPECT_FALSE(minipg_info("9.2.21").vulns.stats_leak_ignores_privilege);
  EXPECT_TRUE(minipg_info("10.7").vulns.stats_leak_ignores_rls);
  EXPECT_FALSE(minipg_info("10.9").vulns.stats_leak_ignores_rls);
  EXPECT_FALSE(minipg_info("13.0").vulns.stats_leak_ignores_privilege);
}

TEST(EnginePersonality, RoachRejectsUdf) {
  Database db(roachdb_info());
  Session s(db, "postgres");
  auto r = s.execute(
      "CREATE FUNCTION f(int, int) RETURNS bool AS $$BEGIN RETURN $1 > $2; "
      "END$$ LANGUAGE plpgsql;");
  ASSERT_TRUE(r.statements[0].failed());
  EXPECT_EQ(*r.statements[0].error_sqlstate, "0A000");
}

TEST(EnginePersonality, RoachForcesSerializable) {
  Database db(roachdb_info());
  Session s(db, "postgres");
  auto ok = s.execute("SET TRANSACTION ISOLATION LEVEL SERIALIZABLE;");
  EXPECT_FALSE(ok.statements[0].failed());
  auto bad = s.execute("SET TRANSACTION ISOLATION LEVEL READ COMMITTED;");
  EXPECT_TRUE(bad.statements[0].failed());
}

TEST(EnginePersonality, RoachSortsUnorderedSelects) {
  // The paper's "unspecified row order" hazard: minipg returns insertion
  // order, roachdb sorted order.
  Database pg(minipg_info("13.0"));
  Database roach(roachdb_info());
  const char* setup =
      "CREATE TABLE t (a int); INSERT INTO t VALUES (3), (1), (2);";
  const char* query = "SELECT a FROM t;";
  Session s1(pg, "postgres"), s2(roach, "postgres");
  s1.execute(setup);
  s2.execute(setup);
  auto r1 = s1.execute(query).statements[0];
  auto r2 = s2.execute(query).statements[0];
  EXPECT_EQ(r1.rows[0][0].value(), "3");
  EXPECT_EQ(r2.rows[0][0].value(), "1");
  // With ORDER BY they agree — the paper's required configuration.
  auto o1 = s1.execute("SELECT a FROM t ORDER BY a;").statements[0];
  auto o2 = s2.execute("SELECT a FROM t ORDER BY a;").statements[0];
  EXPECT_EQ(o1.rows, o2.rows);
}

// ---- CVE behaviours (the heart of Table I rows 1 and 3) ----

const char* kLeakFunction =
    "CREATE FUNCTION leak2(integer, integer) RETURNS boolean "
    "AS $$BEGIN RAISE NOTICE 'leak % %', $1, $2; RETURN $1 > $2; END$$ "
    "LANGUAGE plpgsql immutable;";
const char* kLeakOperator =
    "CREATE OPERATOR >>> (procedure=leak2, leftarg=integer, "
    "rightarg=integer, restrict=scalargtsel);";

TEST(Cve2017_7484, VulnerableVersionLeaksViaExplain) {
  Database db(minipg_info("9.2.19"));
  Session admin(db, "postgres");
  admin.execute("CREATE TABLE some_table (col_to_leak int);"
                "INSERT INTO some_table VALUES (101), (202);");
  Session attacker(db, "mallory");  // NO privileges on some_table
  attacker.execute(kLeakFunction);
  attacker.execute(kLeakOperator);
  auto r = attacker.execute(
      "EXPLAIN (COSTS OFF) SELECT * FROM some_table WHERE col_to_leak >>> 0;");
  const auto& sr = r.statements[0];
  ASSERT_FALSE(sr.failed()) << sr.error_message;
  // The planner probe leaked protected values in NOTICEs.
  ASSERT_FALSE(sr.notices.empty());
  EXPECT_EQ(sr.notices[0], "leak 101 0");
  EXPECT_EQ(sr.notices[1], "leak 202 0");
}

TEST(Cve2017_7484, FixedVersionDoesNotLeak) {
  Database db(minipg_info("9.2.21"));
  Session admin(db, "postgres");
  admin.execute("CREATE TABLE some_table (col_to_leak int);"
                "INSERT INTO some_table VALUES (101), (202);");
  Session attacker(db, "mallory");
  attacker.execute(kLeakFunction);
  attacker.execute(kLeakOperator);
  auto r = attacker.execute(
      "EXPLAIN (COSTS OFF) SELECT * FROM some_table WHERE col_to_leak >>> 0;");
  EXPECT_TRUE(r.statements[0].notices.empty());
  // A direct SELECT still fails with permission denied either way.
  auto sel = attacker.execute(
      "SELECT * FROM some_table WHERE col_to_leak >>> 0;");
  EXPECT_TRUE(sel.statements[0].failed());
  EXPECT_EQ(*sel.statements[0].error_sqlstate, "42501");
}

const char* kRlsLeakFunction =
    "CREATE FUNCTION op_leak(int, int) RETURNS bool AS "
    "'BEGIN RAISE NOTICE ''leak %, %'', $1, $2; RETURN $1 < $2; END' "
    "LANGUAGE plpgsql;";
const char* kRlsLeakOperator =
    "CREATE OPERATOR <<< (procedure=op_leak, leftarg=int, rightarg=int, "
    "restrict=scalarltsel);";

void setup_rls_table(Database& db) {
  Session admin(db, "postgres");
  auto r = admin.execute(
      "CREATE TABLE some_table (col_to_leak int, owner_name text);"
      "INSERT INTO some_table VALUES (11,'alice'),(22,'mallory'),(33,'alice');"
      "GRANT SELECT ON some_table TO mallory;"
      "ALTER TABLE some_table ENABLE ROW LEVEL SECURITY;"
      "CREATE POLICY p ON some_table USING (owner_name = current_user());");
  for (const auto& sr : r.statements)
    ASSERT_FALSE(sr.failed()) << sr.error_message;
}

TEST(Cve2019_10130, VulnerableVersionLeaksRlsProtectedRows) {
  Database db(minipg_info("10.7"));
  setup_rls_table(db);
  Session attacker(db, "mallory");
  attacker.execute(kRlsLeakFunction);
  attacker.execute(kRlsLeakOperator);
  auto r = attacker.execute(
      "SELECT * FROM some_table WHERE col_to_leak <<< 1000;");
  const auto& sr = r.statements[0];
  ASSERT_FALSE(sr.failed()) << sr.error_message;
  // The SELECT's visible rows obey RLS...
  ASSERT_EQ(sr.rows.size(), 1u);
  EXPECT_EQ(sr.rows[0][0].value(), "22");
  // ...but the stats probe leaked ALL rows, including alice's.
  bool leaked_protected = false;
  for (const auto& n : sr.notices)
    if (n.find("leak 11") != std::string::npos ||
        n.find("leak 33") != std::string::npos)
      leaked_protected = true;
  EXPECT_TRUE(leaked_protected);
}

TEST(Cve2019_10130, FixedVersionProbesOnlyVisibleRows) {
  Database db(minipg_info("10.9"));
  setup_rls_table(db);
  Session attacker(db, "mallory");
  attacker.execute(kRlsLeakFunction);
  attacker.execute(kRlsLeakOperator);
  auto r = attacker.execute(
      "SELECT * FROM some_table WHERE col_to_leak <<< 1000;");
  const auto& sr = r.statements[0];
  ASSERT_FALSE(sr.failed()) << sr.error_message;
  for (const auto& n : sr.notices) {
    EXPECT_EQ(n.find("leak 11"), std::string::npos) << n;
    EXPECT_EQ(n.find("leak 33"), std::string::npos) << n;
  }
}

TEST(Cve2019_10130, FilterPairProducesIdenticalNotices) {
  // Two identical 10.7 instances (the filter pair) must emit identical
  // leak traffic — this is what lets RDDR's de-noiser pass benign diffs
  // while the 10.9 instance diverges.
  Database a(minipg_info("10.7")), b(minipg_info("10.7"));
  setup_rls_table(a);
  setup_rls_table(b);
  auto run_attack = [](Database& db) {
    Session s(db, "mallory");
    s.execute(kRlsLeakFunction);
    s.execute(kRlsLeakOperator);
    return s.execute("SELECT * FROM some_table WHERE col_to_leak <<< 1000;");
  };
  auto ra = run_attack(a), rb = run_attack(b);
  EXPECT_EQ(ra.statements[0].notices, rb.statements[0].notices);
  EXPECT_EQ(ra.statements[0].rows, rb.statements[0].rows);
}

}  // namespace
}  // namespace rddr::sqldb
