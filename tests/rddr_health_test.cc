// HealthTracker unit tests: backoff arithmetic (exponential growth, cap,
// jitter bounds), the probe-forever mode, and the quarantine -> resync ->
// readmit / replace state machine that instance replacement relies on.
#include <gtest/gtest.h>

#include "rddr/health.h"

namespace rddr::core {
namespace {

using State = HealthTracker::State;

HealthTracker::Options base_options() {
  HealthTracker::Options o;
  o.n_instances = 3;
  o.failure_threshold = 1;
  o.reconnect_base_delay = 100 * sim::kMillisecond;
  o.reconnect_max_delay = 10 * sim::kSecond;
  o.reconnect_max_attempts = 10;
  o.seed = 42;
  return o;
}

TEST(HealthBackoffTest, ExponentialGrowthWithinJitterBounds) {
  auto o = base_options();
  o.reconnect_jitter = 0.2;
  HealthTracker h(o);
  h.quarantine(0);
  for (uint32_t attempt = 0; attempt < 6; ++attempt) {
    sim::Time nominal = o.reconnect_base_delay << attempt;
    sim::Time delay = h.next_backoff(0);
    EXPECT_GE(delay, static_cast<sim::Time>(nominal * 0.8))
        << "attempt " << attempt;
    EXPECT_LE(delay, static_cast<sim::Time>(nominal * 1.2))
        << "attempt " << attempt;
  }
  EXPECT_EQ(h.attempts(0), 6u);
}

TEST(HealthBackoffTest, DelayCapsAtMax) {
  auto o = base_options();
  o.reconnect_jitter = 0;  // cap must be exact without jitter
  o.reconnect_max_attempts = 0;
  HealthTracker h(o);
  h.quarantine(1);
  sim::Time last = 0;
  for (int k = 0; k < 20; ++k) last = h.next_backoff(1);
  EXPECT_EQ(last, o.reconnect_max_delay);

  // With jitter the capped delay still stays within the jitter band.
  o.reconnect_jitter = 0.2;
  HealthTracker hj(o);
  hj.quarantine(1);
  for (int k = 0; k < 20; ++k) {
    sim::Time d = hj.next_backoff(1);
    EXPECT_LE(d, static_cast<sim::Time>(o.reconnect_max_delay * 1.2));
  }
}

TEST(HealthBackoffTest, ZeroMaxAttemptsProbesForever) {
  auto o = base_options();
  o.reconnect_max_attempts = 0;
  HealthTracker h(o);
  h.quarantine(0);
  for (int k = 0; k < 1000; ++k) {
    h.next_backoff(0);
    EXPECT_FALSE(h.attempts_exhausted(0));
  }
}

TEST(HealthBackoffTest, AttemptBudgetExhausts) {
  auto o = base_options();
  o.reconnect_max_attempts = 3;
  HealthTracker h(o);
  h.quarantine(0);
  EXPECT_FALSE(h.attempts_exhausted(0));
  h.next_backoff(0);
  h.next_backoff(0);
  EXPECT_FALSE(h.attempts_exhausted(0));
  h.next_backoff(0);
  EXPECT_TRUE(h.attempts_exhausted(0));
  // Other instances keep their own budgets.
  EXPECT_FALSE(h.attempts_exhausted(1));
}

TEST(HealthBackoffTest, SameSeedSameJitterSequence) {
  auto o = base_options();
  HealthTracker a(o), b(o);
  a.quarantine(0);
  b.quarantine(0);
  for (int k = 0; k < 8; ++k) EXPECT_EQ(a.next_backoff(0), b.next_backoff(0));
}

TEST(HealthStateTest, FailureThresholdQuarantines) {
  auto o = base_options();
  o.failure_threshold = 3;
  HealthTracker h(o);
  EXPECT_FALSE(h.record_failure(0));
  EXPECT_FALSE(h.record_failure(0));
  EXPECT_EQ(h.state(0), State::kHealthy);
  EXPECT_TRUE(h.record_failure(0));
  EXPECT_EQ(h.state(0), State::kQuarantined);
  EXPECT_EQ(h.healthy_count(), 2u);
  // A success between failures resets the streak.
  h.record_failure(1);
  h.record_success(1);
  h.record_failure(1);
  h.record_failure(1);
  EXPECT_EQ(h.state(1), State::kHealthy);
}

TEST(HealthStateTest, ResyncLifecycle) {
  HealthTracker h(base_options());
  // begin_resync is only legal from quarantine.
  EXPECT_FALSE(h.begin_resync(0));
  EXPECT_EQ(h.state(0), State::kHealthy);

  h.quarantine(0);
  EXPECT_TRUE(h.begin_resync(0));
  EXPECT_EQ(h.state(0), State::kResyncing);
  // Resyncing instances are excluded from sessions until readmitted.
  EXPECT_FALSE(h.is_healthy(0));
  EXPECT_EQ(h.healthy_count(), 2u);
  // Not quarantined => a second begin_resync is rejected.
  EXPECT_FALSE(h.begin_resync(0));

  // Failure path: back to quarantine so backoff probing resumes.
  h.resync_failed(0);
  EXPECT_EQ(h.state(0), State::kQuarantined);

  // Success path: readmit clears counters.
  EXPECT_TRUE(h.begin_resync(0));
  h.readmit(0);
  EXPECT_EQ(h.state(0), State::kHealthy);
  EXPECT_EQ(h.attempts(0), 0u);
  EXPECT_EQ(h.healthy_count(), 3u);
}

TEST(HealthStateTest, ResyncFailedOutsideResyncIsNoOp) {
  HealthTracker h(base_options());
  h.resync_failed(0);
  EXPECT_EQ(h.state(0), State::kHealthy);
  h.mark_dead(1);
  h.resync_failed(1);
  EXPECT_EQ(h.state(1), State::kDead);
}

TEST(HealthStateTest, ReplacementResetsAnyState) {
  HealthTracker h(base_options());
  // From dead: replacement revives the slot into the probe pipeline.
  h.quarantine(0);
  h.next_backoff(0);
  h.next_backoff(0);
  h.mark_dead(0);
  EXPECT_EQ(h.state(0), State::kDead);
  h.reset_replaced(0);
  EXPECT_EQ(h.state(0), State::kQuarantined);
  EXPECT_EQ(h.attempts(0), 0u);

  // From healthy: the fresh replica still has to earn admission.
  h.reset_replaced(1);
  EXPECT_EQ(h.state(1), State::kQuarantined);

  // From resyncing: the transfer target vanished; start over.
  h.quarantine(2);
  ASSERT_TRUE(h.begin_resync(2));
  h.reset_replaced(2);
  EXPECT_EQ(h.state(2), State::kQuarantined);
  EXPECT_TRUE(h.begin_resync(2));
}

}  // namespace
}  // namespace rddr::core
