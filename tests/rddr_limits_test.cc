// Tests of the paper's §IV-D limitations — reproduced deliberately — and
// of the mitigations the paper sketches as future work (implemented here):
// the divergence-signature blocker and the instance timeout.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/divergence.h"
#include "rddr/incoming_proxy.h"
#include "rddr/outgoing_proxy.h"
#include "rddr/plugins.h"
#include "services/http_service.h"

namespace rddr::core {
namespace {

using services::HttpClient;
using services::HttpServer;

class LimitsTest : public ::testing::Test {
 protected:
  sim::Simulator simulator;
  sim::Network net{simulator, 10 * sim::kMicrosecond};
  sim::Host host{simulator, "node", 8, 8LL << 30};

  int get_status(const std::string& target) {
    int status = -2;
    HttpClient client(net, "client");
    client.get("svc:80", target,
               [&status](int s, const http::Response*) { status = s; });
    simulator.run_until_idle();
    return status;
  }
};

// ---------- Divergence-signature blocking (§IV-D mitigation) ----------

class SignatureTest : public LimitsTest {
 protected:
  void SetUp() override {
    // Two instances that diverge on /evil only.
    for (int i = 0; i < 2; ++i) {
      HttpServer::Options o;
      o.address = "svc-" + std::to_string(i) + ":80";
      auto s = std::make_unique<HttpServer>(net, host, o);
      int flavour = i;
      s->set_handler([flavour](const http::Request& req,
                               services::Responder r) {
        if (req.target == "/evil" && flavour == 1) {
          r(http::make_response(200, "LEAKED"));
          return;
        }
        r(http::make_response(200, "normal:" + req.target));
      });
      instances.push_back(std::move(s));
    }
  }

  std::unique_ptr<IncomingProxy> make_proxy(bool signatures) {
    IncomingProxy::Config cfg;
    cfg.listen_address = "svc:80";
    cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
    cfg.plugin = std::make_shared<HttpPlugin>();
    cfg.signature_blocking = signatures;
    return std::make_unique<IncomingProxy>(net, host, cfg);
  }

  std::vector<std::unique_ptr<HttpServer>> instances;
};

TEST_F(SignatureTest, RepeatedDivergentRequestRefusedAtProxy) {
  auto proxy = make_proxy(true);
  // First attempt: full replicate/diff cycle, divergence, signature saved.
  EXPECT_EQ(get_status("/evil"), 403);
  EXPECT_EQ(proxy->stats().divergences, 1u);
  uint64_t served_after_first =
      instances[0]->requests_served() + instances[1]->requests_served();

  // Repeats: refused at the proxy, instances never touched.
  for (int i = 0; i < 5; ++i) EXPECT_EQ(get_status("/evil"), 403);
  EXPECT_EQ(proxy->stats().signature_blocks, 5u);
  EXPECT_EQ(proxy->stats().divergences, 1u);  // no new diff cycles
  EXPECT_EQ(instances[0]->requests_served() + instances[1]->requests_served(),
            served_after_first);
}

TEST_F(SignatureTest, BenignTrafficUnaffectedBySignatures) {
  auto proxy = make_proxy(true);
  EXPECT_EQ(get_status("/evil"), 403);
  EXPECT_EQ(get_status("/fine"), 200);
  EXPECT_EQ(get_status("/fine"), 200);
  EXPECT_EQ(proxy->stats().signature_blocks, 0u);
}

TEST_F(SignatureTest, WithoutSignaturesEveryRepeatCostsAFullCycle) {
  auto proxy = make_proxy(false);
  for (int i = 0; i < 5; ++i) EXPECT_EQ(get_status("/evil"), 403);
  EXPECT_EQ(proxy->stats().divergences, 5u);
  EXPECT_EQ(proxy->stats().signature_blocks, 0u);
  // Instances paid for every attempt.
  EXPECT_EQ(instances[0]->requests_served(), 5u);
}

TEST_F(SignatureTest, ThresholdDelaysBlocking) {
  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.signature_blocking = true;
  cfg.signature_threshold = 3;
  IncomingProxy proxy(net, host, cfg);
  for (int i = 0; i < 3; ++i) EXPECT_EQ(get_status("/evil"), 403);
  EXPECT_EQ(proxy.stats().divergences, 3u);
  EXPECT_EQ(get_status("/evil"), 403);
  EXPECT_EQ(proxy.stats().signature_blocks, 1u);
}

// ---------- Outgoing proxy unit timeout (§IV-D, backend-side) ----------

TEST_F(LimitsTest, OutgoingUnitTimeoutCatchesSilentInstance) {
  // Two "instances" dial the backend merge point; only one ever sends a
  // request. Without the unit timeout the group waits forever; with it,
  // divergence-by-silence is reported.
  net.listen("backend:1", [](sim::ConnPtr c) {
    c->set_on_data([c](ByteView d) { c->send(d); });
  });
  OutgoingProxy::Config cfg;
  cfg.listen_address = "merge:1";
  cfg.backend_address = "backend:1";
  cfg.group_size = 2;
  cfg.plugin = std::make_shared<TcpLinePlugin>();
  cfg.unit_timeout = sim::kSecond;
  DivergenceBus bus(simulator);
  OutgoingProxy proxy(net, host, cfg, &bus);

  auto talkative = net.connect("merge:1", {.source = "i0", .flow = {.label = "f"}});
  auto silent = net.connect("merge:1", {.source = "i1", .flow = {.label = "f"}});
  talkative->send("query please\n");
  simulator.run_until(10 * sim::kSecond);
  ASSERT_EQ(bus.count(), 1u);
  EXPECT_NE(bus.events()[0].reason.find("timeout"), std::string::npos);
  EXPECT_EQ(proxy.stats().timeouts, 1u);
  EXPECT_FALSE(talkative->is_open());
  EXPECT_FALSE(silent->is_open());
}

TEST_F(LimitsTest, OutgoingUnitTimeoutOffHangsForever) {
  net.listen("backend:1", [](sim::ConnPtr c) {
    c->set_on_data([c](ByteView d) { c->send(d); });
  });
  OutgoingProxy::Config cfg;
  cfg.listen_address = "merge:1";
  cfg.backend_address = "backend:1";
  cfg.group_size = 2;
  cfg.plugin = std::make_shared<TcpLinePlugin>();
  cfg.unit_timeout = 0;  // the paper's default
  DivergenceBus bus(simulator);
  OutgoingProxy proxy(net, host, cfg, &bus);

  auto talkative = net.connect("merge:1", {.source = "i0", .flow = {.label = "f"}});
  auto silent = net.connect("merge:1", {.source = "i1", .flow = {.label = "f"}});
  talkative->send("query please\n");
  simulator.run_until(10 * sim::kSecond);
  EXPECT_EQ(bus.count(), 0u);
  EXPECT_TRUE(talkative->is_open());  // still waiting — the DoS limitation
}

// ---------- MFA-style instance-specific secrets (§IV-D limitation) ------

TEST_F(LimitsTest, InstanceSpecificSecretsAreIncompatible) {
  // "N-versioning is not applicable to services that generate
  // instance-specific secrets that expect a unique user response."
  // Each instance issues ITS OWN one-time code on GET and only accepts
  // that code on POST. The code is numeric-with-dashes, so the CSRF
  // heuristic (alnum >= 10) does NOT capture it — faithful to TOTP codes.
  struct Mfa {
    std::unique_ptr<HttpServer> server;
    std::shared_ptr<std::string> code;
  };
  std::vector<Mfa> mfas;
  for (int i = 0; i < 2; ++i) {
    Mfa m;
    HttpServer::Options o;
    o.address = "svc-" + std::to_string(i) + ":80";
    m.server = std::make_unique<HttpServer>(net, host, o);
    m.code = std::make_shared<std::string>(
        i == 0 ? "123-456" : "987-654");  // per-instance secret
    auto code = m.code;
    m.server->set_handler([code](const http::Request& req,
                                 services::Responder r) {
      if (req.method == "GET") {
        r(http::make_response(200, "enter code: " + *code));
        return;
      }
      r(http::make_response(req.body.find(*code) != Bytes::npos ? 200 : 401,
                            "auth"));
    });
    mfas.push_back(std::move(m));
  }
  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  DivergenceBus bus(simulator);
  IncomingProxy proxy(net, host, cfg, &bus);

  // The challenge itself already diverges (different codes, no filter
  // pair to absorb them): RDDR denies ALL traffic to this service.
  EXPECT_EQ(get_status("/"), 403);
  EXPECT_GE(bus.count(), 1u);
}

// ---------- Time-varying output (§IV-D) and the §IV-B4 fix --------------

TEST_F(LimitsTest, TimestampLinesFalsePositiveWithoutKnownVariance) {
  // A coarse timestamp can straddle a tick boundary between instances.
  // We emulate the worst case: instances disagree on the reported second.
  std::vector<std::unique_ptr<HttpServer>> servers;
  for (int i = 0; i < 2; ++i) {
    HttpServer::Options o;
    o.address = "svc-" + std::to_string(i) + ":80";
    auto s = std::make_unique<HttpServer>(net, host, o);
    int skew = i;  // instance 1 reads the clock one tick later
    s->set_handler([skew](const http::Request&, services::Responder r) {
      r(http::make_response(
          200, "uptime-seconds: " + std::to_string(100 + skew) + "\nbody"));
    });
    servers.push_back(std::move(s));
  }
  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  {
    IncomingProxy proxy(net, host, cfg);
    EXPECT_EQ(get_status("/"), 403);  // false positive
  }
  // §IV-B4: manual configuration of known variance fixes it.
  cfg.variance.http_ignore_line_prefixes = {"uptime-seconds:"};
  IncomingProxy proxy(net, host, cfg);
  EXPECT_EQ(get_status("/"), 200);
}

}  // namespace
}  // namespace rddr::core
