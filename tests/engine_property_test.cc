// Property tests for the SQL engine's semantics: aggregates agree with
// hand computation over random data, engine personalities agree on ordered
// queries for random seeds, LIKE agrees with a reference matcher, and
// value comparison is a proper ordering.
#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "common/strutil.h"
#include "sqldb/engine.h"

namespace rddr::sqldb {
namespace {

class EngineProperty : public ::testing::TestWithParam<int> {
 protected:
  uint64_t seed() const { return static_cast<uint64_t>(GetParam()); }
};

TEST_P(EngineProperty, AggregatesMatchHandComputation) {
  Rng rng(seed());
  Database db(minipg_info("13.0"));
  Session s(db, "postgres");
  s.execute("CREATE TABLE r (grp int, v int);");
  int n = static_cast<int>(rng.uniform(1, 60));
  std::map<int64_t, std::pair<int64_t, int64_t>> expect;  // grp -> (count,sum)
  std::string insert = "INSERT INTO r VALUES ";
  for (int i = 0; i < n; ++i) {
    int64_t g = rng.uniform(0, 4);
    int64_t v = rng.uniform(-100, 100);
    expect[g].first += 1;
    expect[g].second += v;
    insert += strformat("(%lld,%lld)%s", static_cast<long long>(g),
                        static_cast<long long>(v), i + 1 < n ? "," : ";");
  }
  ASSERT_FALSE(s.execute(insert).statements[0].failed());
  auto out = s.execute(
      "SELECT grp, count(*), sum(v) FROM r GROUP BY grp ORDER BY grp;")
                 .statements[0];
  ASSERT_FALSE(out.failed()) << out.error_message;
  ASSERT_EQ(out.rows.size(), expect.size());
  size_t i = 0;
  for (const auto& [g, cs] : expect) {
    EXPECT_EQ(out.rows[i][0].value(), std::to_string(g));
    EXPECT_EQ(out.rows[i][1].value(), std::to_string(cs.first));
    EXPECT_EQ(out.rows[i][2].value(), std::to_string(cs.second));
    ++i;
  }
}

TEST_P(EngineProperty, PersonalitiesAgreeOnOrderedQueries) {
  // The N-versioning prerequisite (§V-C2): identical data + ORDER BY =>
  // identical results regardless of scan-order personality.
  Rng rng(seed());
  Database pg(minipg_info("13.0"));
  Database roach(roachdb_info());
  std::string ddl = "CREATE TABLE d (k int, s text, f float);";
  std::string insert = "INSERT INTO d VALUES ";
  int n = static_cast<int>(rng.uniform(5, 40));
  for (int i = 0; i < n; ++i) {
    insert += strformat("(%lld,'%s',%lld.5)%s",
                        static_cast<long long>(rng.uniform(0, 20)),
                        rng.alnum_token(4).c_str(),
                        static_cast<long long>(rng.uniform(0, 50)),
                        i + 1 < n ? "," : ";");
  }
  const char* queries[] = {
      "SELECT k, s, f FROM d ORDER BY k, s, f;",
      "SELECT k, count(*), sum(f) FROM d GROUP BY k ORDER BY k;",
      "SELECT s FROM d WHERE k BETWEEN 3 AND 12 ORDER BY s;",
      "SELECT k, f FROM d WHERE f > 10 ORDER BY f DESC, k LIMIT 5;",
  };
  Session s1(pg, "postgres"), s2(roach, "postgres");
  s1.execute(ddl);
  s1.execute(insert);
  s2.execute(ddl);
  s2.execute(insert);
  for (const char* q : queries) {
    auto r1 = s1.execute(q).statements[0];
    auto r2 = s2.execute(q).statements[0];
    ASSERT_FALSE(r1.failed()) << q << ": " << r1.error_message;
    ASSERT_FALSE(r2.failed()) << q << ": " << r2.error_message;
    EXPECT_EQ(r1.rows, r2.rows) << q;
  }
}

TEST_P(EngineProperty, IndexedEqualityMatchesFullScan) {
  Rng rng(seed());
  Database with_idx(minipg_info("13.0"));
  Database without_idx(minipg_info("13.0"));
  for (Database* db : {&with_idx, &without_idx}) {
    auto* t = db->create_table("t", {{"id", Type::kInt}, {"v", Type::kText}});
    Rng data(seed() * 7 + 1);
    for (int i = 0; i < 300; ++i)
      t->rows.push_back({Datum::integer(data.uniform(0, 50)),
                         Datum::text(data.alnum_token(3))});
  }
  with_idx.find_table("t")->build_index("id");
  Session a(with_idx, "postgres"), b(without_idx, "postgres");
  for (int trial = 0; trial < 10; ++trial) {
    std::string q = strformat("SELECT v FROM t WHERE id = %lld ORDER BY v;",
                              static_cast<long long>(rng.uniform(0, 50)));
    auto ra = a.execute(q).statements[0];
    auto rb = b.execute(q).statements[0];
    EXPECT_EQ(ra.rows, rb.rows) << q;
  }
}

namespace {
/// Reference LIKE matcher (simple recursion) to check the engine's.
bool ref_like(std::string_view text, std::string_view pat) {
  if (pat.empty()) return text.empty();
  if (pat[0] == '%')
    return ref_like(text, pat.substr(1)) ||
           (!text.empty() && ref_like(text.substr(1), pat));
  if (text.empty()) return false;
  if (pat[0] == '_' || pat[0] == text[0])
    return ref_like(text.substr(1), pat.substr(1));
  return false;
}
}  // namespace

TEST_P(EngineProperty, LikeAgreesWithReferenceMatcher) {
  Rng rng(seed());
  Database db(minipg_info("13.0"));
  Session s(db, "postgres");
  s.execute("CREATE TABLE t (x text);");
  std::vector<std::string> values;
  for (int i = 0; i < 20; ++i) {
    std::string v;
    for (int j = 0; j < rng.uniform(0, 6); ++j)
      v.push_back(static_cast<char>('a' + rng.uniform(0, 2)));
    values.push_back(v);
    s.execute("INSERT INTO t VALUES ('" + v + "');");
  }
  for (int trial = 0; trial < 10; ++trial) {
    std::string pat;
    for (int j = 0; j < rng.uniform(1, 5); ++j) {
      switch (rng.uniform(0, 3)) {
        case 0: pat += '%'; break;
        case 1: pat += '_'; break;
        default: pat.push_back(static_cast<char>('a' + rng.uniform(0, 2)));
      }
    }
    auto out =
        s.execute("SELECT count(*) FROM t WHERE x LIKE '" + pat + "';")
            .statements[0];
    ASSERT_FALSE(out.failed());
    int64_t expected = 0;
    for (const auto& v : values)
      if (ref_like(v, pat)) ++expected;
    EXPECT_EQ(out.rows[0][0].value(), std::to_string(expected)) << pat;
  }
}

TEST_P(EngineProperty, CompareIsAntisymmetricAndTransitiveOnSamples) {
  Rng rng(seed());
  std::vector<Datum> pool;
  for (int i = 0; i < 12; ++i) {
    switch (rng.uniform(0, 2)) {
      case 0: pool.push_back(Datum::integer(rng.uniform(-5, 5))); break;
      case 1:
        pool.push_back(Datum::floating(
            static_cast<double>(rng.uniform(-50, 50)) / 10.0));
        break;
      default: pool.push_back(Datum::integer(rng.uniform(-5, 5))); break;
    }
  }
  for (const auto& a : pool)
    for (const auto& b : pool) {
      auto ab = a.compare(b);
      auto ba = b.compare(a);
      ASSERT_TRUE(ab.has_value());
      ASSERT_TRUE(ba.has_value());
      EXPECT_EQ(*ab, -*ba);
      for (const auto& c : pool) {
        auto bc = b.compare(c);
        auto ac = a.compare(c);
        if (*ab <= 0 && *bc <= 0) EXPECT_LE(*ac, 0);
      }
    }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EngineProperty, ::testing::Range(1, 16));

}  // namespace
}  // namespace rddr::sqldb
