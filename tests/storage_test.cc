// Durable storage engine tests: block device fault model, page/WAL
// codecs, buffer pool, crash recovery (clean, torn, mid-checkpoint),
// incremental resync deltas, and the server/orchestrator volume loop.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "common/strutil.h"
#include "netsim/block_device.h"
#include "netsim/network.h"
#include "netsim/simulator.h"
#include "services/orchestrator.h"
#include "sqldb/client.h"
#include "sqldb/engine.h"
#include "sqldb/server.h"
#include "sqldb/snapshot.h"
#include "sqldb/storage/buffer_pool.h"
#include "sqldb/storage/page.h"
#include "sqldb/storage/storage_engine.h"
#include "sqldb/storage/wal.h"
#include "workloads/pgbench.h"

namespace rddr {
namespace {

using sqldb::Database;
using sqldb::Session;
using sqldb::minipg_info;
using sqldb::snapshot_database;
using sqldb::storage::BufferPool;
using sqldb::storage::LogManager;
using sqldb::storage::StorageEngine;
using sqldb::storage::StorageOptions;
using sqldb::storage::WalRecord;

// ---- BlockDevice -------------------------------------------------------

TEST(BlockDevice, StagedWritesBecomeDurableOnlyAfterSync) {
  sim::BlockDevice dev({});
  dev.write(2, "hello");
  EXPECT_TRUE(dev.read(2).ok);  // staged reads back
  EXPECT_EQ(dev.durable_blocks(), 0u);
  // With zero fault probabilities a crash promotes staged blocks (the OS
  // happened to write them out); loss requires configured fault probs.
  dev.crash();
  EXPECT_EQ(dev.durable_blocks(), 1u);
  dev.write(3, "gone");
  dev.sync();
  EXPECT_EQ(dev.durable_blocks(), 2u);
  EXPECT_EQ(dev.read(3).data, "gone");
}

TEST(BlockDevice, CrashDropsStagedWritesUnderLostWriteFaults) {
  sim::BlockDevice::Options opts;
  opts.faults.lost_write_prob = 1.0;
  sim::BlockDevice dev(opts);
  dev.write(2, "synced");
  dev.sync();
  dev.write(2, "staged-overwrite");
  dev.write(3, "staged-new");
  dev.crash();
  EXPECT_EQ(dev.read(2).data, "synced");  // overwrite lost, old survives
  EXPECT_FALSE(dev.read(3).exists);
  EXPECT_EQ(dev.counters().lost_writes, 2u);
}

TEST(BlockDevice, ForcedTornCrashKeepsStrictPrefixOfNewData) {
  sim::BlockDevice dev({});
  dev.write(5, std::string(100, 'n'));
  dev.force_torn_on_next_crash();
  dev.crash();
  auto r = dev.read(5);
  ASSERT_TRUE(r.ok);
  EXPECT_LT(r.data.size(), 100u);  // a proper prefix survived
  EXPECT_GE(r.data.size(), 1u);
  EXPECT_EQ(r.data, std::string(r.data.size(), 'n'));
  EXPECT_EQ(dev.counters().torn_writes, 1u);
}

TEST(BlockDevice, SeededReadErrorsAreTransientAndDeterministic) {
  sim::BlockDevice::Options opts;
  opts.faults.read_error_prob = 0.5;
  opts.rng_seed = 7;
  sim::BlockDevice dev(opts);
  dev.write(2, "data");
  dev.sync();
  int errors = 0;
  for (int i = 0; i < 100; ++i)
    if (!dev.read(2).ok) ++errors;
  EXPECT_GT(errors, 20);
  EXPECT_LT(errors, 80);
  EXPECT_EQ(dev.counters().read_errors, static_cast<uint64_t>(errors));
  // Same seed, same error sequence.
  sim::BlockDevice dev2(opts);
  dev2.write(2, "data");
  dev2.sync();
  int errors2 = 0;
  for (int i = 0; i < 100; ++i)
    if (!dev2.read(2).ok) ++errors2;
  EXPECT_EQ(errors, errors2);
}

// ---- Page codec --------------------------------------------------------

TEST(PageCodec, RoundTripsRowsAndRejectsCorruption) {
  Database db(minipg_info("13.0"));
  Session s(db, "postgres");
  s.execute("CREATE TABLE t (a INT, b TEXT)");
  s.execute("INSERT INTO t VALUES (1, 'x\ty'), (2, ''), (3, 'line\nbreak')");
  const sqldb::TableData* t = db.find_table("t");
  ASSERT_NE(t, nullptr);
  Bytes img = sqldb::storage::encode_page(*t, 0, 42, 0, 64);
  auto decoded = sqldb::storage::decode_page(img);
  ASSERT_TRUE(decoded.has_value());
  EXPECT_EQ(decoded->table, "t");
  EXPECT_EQ(decoded->page_no, 0u);
  EXPECT_EQ(decoded->page_lsn, 42u);
  ASSERT_EQ(decoded->rows.size(), 3u);
  EXPECT_EQ(decoded->rows[0][1].as_text(), "x\ty");
  EXPECT_EQ(decoded->rows[2][1].as_text(), "line\nbreak");
  // Any flipped byte in the body must fail the checksum.
  Bytes bad = img;
  bad[bad.size() / 2] ^= 1;
  EXPECT_FALSE(sqldb::storage::decode_page(bad).has_value());
  // A truncated image must not decode either.
  EXPECT_FALSE(
      sqldb::storage::decode_page(ByteView(img).substr(0, img.size() - 4))
          .has_value());
}

// ---- WAL ---------------------------------------------------------------

TEST(Wal, AppendFlushRecoverRoundTrip) {
  auto dev = std::make_shared<sim::BlockDevice>(sim::BlockDevice::Options{});
  LogManager wal(dev);
  wal.reset(0);
  wal.append({1, "postgres", "INSERT INTO t VALUES (1)"});
  wal.append({2, "alice", "UPDATE t SET a = 2"});
  EXPECT_TRUE(wal.has_staged());
  wal.flush();
  LogManager fresh(dev);
  auto rec = fresh.recover();
  ASSERT_TRUE(rec.ok);
  EXPECT_FALSE(rec.torn);
  ASSERT_EQ(rec.records.size(), 2u);
  EXPECT_EQ(rec.records[0].lsn, 1u);
  EXPECT_EQ(rec.records[1].user, "alice");
  EXPECT_EQ(rec.records[1].sql, "UPDATE t SET a = 2");
}

TEST(Wal, TornTailYieldsValidPrefix) {
  auto dev = std::make_shared<sim::BlockDevice>(sim::BlockDevice::Options{});
  LogManager wal(dev);
  wal.reset(0);
  for (uint64_t i = 1; i <= 4; ++i)
    wal.append({i, "postgres", strformat("INSERT INTO t VALUES (%llu)",
                                         static_cast<unsigned long long>(i))});
  dev->force_torn_on_next_crash();  // tears the highest staged block
  dev->crash();
  LogManager fresh(dev);
  auto rec = fresh.recover();
  ASSERT_TRUE(rec.ok);
  EXPECT_TRUE(rec.torn);
  ASSERT_EQ(rec.records.size(), 3u);  // record 4 lost, prefix intact
  EXPECT_EQ(rec.records.back().lsn, 3u);
}

TEST(Wal, TruncateKeepsReachbackWindowForDeltas) {
  auto dev = std::make_shared<sim::BlockDevice>(sim::BlockDevice::Options{});
  LogManager wal(dev);
  wal.reset(0);
  for (uint64_t i = 1; i <= 10; ++i) wal.append({i, "u", "sql"});
  wal.flush();
  wal.truncate_through(/*through_lsn=*/8, /*keep_records=*/4);
  // 1..6 dropped; 7..10 stay (the newest keep_records survive even below
  // through_lsn — the incremental-resync reach-back window).
  EXPECT_EQ(wal.retained_records(), 4u);
  auto after6 = wal.records_after(6);
  ASSERT_TRUE(after6.has_value());
  EXPECT_EQ(after6->size(), 4u);
  EXPECT_EQ(after6->front().lsn, 7u);
  EXPECT_FALSE(wal.records_after(5).has_value());  // beyond the window
  // The truncated log still recovers from disk.
  LogManager fresh(dev);
  auto rec = fresh.recover();
  ASSERT_TRUE(rec.ok);
  ASSERT_EQ(rec.records.size(), 4u);
  EXPECT_EQ(rec.records.front().lsn, 7u);
}

// ---- Buffer pool -------------------------------------------------------

TEST(BufferPool, LruEvictsCleanAndPinsDirty) {
  BufferPool pool(/*frame_budget=*/2);
  EXPECT_FALSE(pool.touch({"t", 0}, 100));  // miss
  EXPECT_FALSE(pool.touch({"t", 1}, 100));  // miss
  EXPECT_TRUE(pool.touch({"t", 0}, 100));   // hit
  EXPECT_FALSE(pool.touch({"t", 2}, 100));  // miss, evicts page 1 (LRU)
  EXPECT_EQ(pool.frames(), 2u);
  EXPECT_FALSE(pool.touch({"t", 1}, 100));  // page 1 is gone again
  EXPECT_EQ(pool.stats().evictions, 2u);
  // Dirty frames never evict; once every frame is dirty the pool
  // overflows its budget and records the pressure instead.
  pool.mark_dirty({"t", 5}, 100);
  pool.mark_dirty({"t", 6}, 100);
  pool.mark_dirty({"t", 7}, 100);
  EXPECT_GT(pool.stats().dirty_overflows, 0u);
  EXPECT_EQ(pool.dirty_frames(), 3u);
  EXPECT_GT(pool.frames(), pool.budget());
  pool.mark_clean({"t", 5});  // checkpoint wrote it back: evictable again
  EXPECT_EQ(pool.dirty_frames(), 2u);
  EXPECT_LE(pool.frames(), pool.budget());
}

// ---- Storage engine ----------------------------------------------------

struct EngineHarness {
  sim::Simulator sim;
  std::shared_ptr<sim::BlockDevice> data;
  std::shared_ptr<sim::BlockDevice> wal;
  std::unique_ptr<Database> db;
  std::unique_ptr<StorageEngine> engine;

  explicit EngineHarness(StorageOptions opts = {},
                         sim::BlockDevice::Options dev_opts = {}) {
    data = std::make_shared<sim::BlockDevice>(dev_opts);
    auto wal_opts = dev_opts;
    wal_opts.rng_seed = dev_opts.rng_seed + 1;
    wal = std::make_shared<sim::BlockDevice>(wal_opts);
    db = std::make_unique<Database>(minipg_info("13.0"));
    engine = std::make_unique<StorageEngine>(sim, data, wal, opts);
  }

  void exec(const std::string& sql, const std::string& user = "postgres") {
    engine->begin_statement();
    Session s(*db, user);
    s.execute(sql);
    engine->end_statement(user, sql);
  }

  /// Simulates a process crash + restart: the engine and database are
  /// torn down, the devices take a crash, and a fresh engine recovers.
  StorageEngine::RecoveryResult crash_and_recover(StorageOptions opts = {}) {
    engine.reset();  // cancels pending flush/checkpoint events
    data->crash();
    wal->crash();
    db = std::make_unique<Database>(minipg_info("13.0"));
    engine = std::make_unique<StorageEngine>(sim, data, wal, opts);
    return engine->recover(*db);
  }
};

TEST(StorageEngine, BootstrapCheckpointRecoverRoundTrip) {
  EngineHarness h;
  EXPECT_FALSE(h.engine->has_durable_state());
  h.engine->bootstrap(*h.db, /*lineage_seed=*/42);
  h.sim.run_until_idle();  // initial checkpoint (empty catalog)
  EXPECT_TRUE(h.engine->has_durable_state());
  h.exec("CREATE TABLE accounts (id INT, name TEXT)");
  h.exec("INSERT INTO accounts VALUES (1, 'ann'), (2, 'bob')");
  h.engine->force_checkpoint();
  h.sim.run_until_idle();
  h.exec("INSERT INTO accounts VALUES (3, 'cid')");  // WAL tail past ckpt
  h.exec("UPDATE accounts SET name = 'ann2' WHERE id = 1");
  std::string before = snapshot_database(*h.db);
  uint64_t lsn_before = h.engine->committed_lsn();
  uint64_t lineage = h.engine->lineage_id();

  auto rec = h.crash_and_recover();
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(snapshot_database(*h.db), before);
  EXPECT_EQ(h.engine->committed_lsn(), lsn_before);
  EXPECT_EQ(h.engine->lineage_id(), lineage);
  EXPECT_EQ(rec.wal_records_replayed, 2u);  // the two post-checkpoint stmts
  EXPECT_GT(rec.pages_read, 0u);
}

TEST(StorageEngine, GroupCommitCrashLosesUnflushedTail) {
  StorageOptions opts;
  opts.wal_flush_interval = 5 * sim::kMillisecond;
  sim::BlockDevice::Options dev_opts;
  dev_opts.faults.lost_write_prob = 1.0;  // crash drops everything staged
  EngineHarness h(opts, dev_opts);
  h.engine->bootstrap(*h.db, 1);
  h.sim.run_until_idle();
  h.exec("CREATE TABLE t (a INT)");
  h.exec("INSERT INTO t VALUES (1)");
  h.sim.run_until_idle();  // group-commit flush fires: lsn 1..2 durable
  h.exec("INSERT INTO t VALUES (2)");
  h.exec("INSERT INTO t VALUES (3)");
  // No sim run: the last two commits are staged only.
  EXPECT_EQ(h.engine->committed_lsn(), 4u);

  auto rec = h.crash_and_recover(opts);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(h.engine->committed_lsn(), 2u);  // acked-but-unflushed lost
  const sqldb::TableData* t = h.db->find_table("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->rows.size(), 1u);
}

TEST(StorageEngine, TornWalTailRecoversValidPrefix) {
  StorageOptions opts;
  opts.wal_flush_interval = 5 * sim::kMillisecond;
  EngineHarness h(opts);
  h.engine->bootstrap(*h.db, 1);
  h.sim.run_until_idle();
  h.exec("CREATE TABLE t (a INT)");
  h.sim.run_until_idle();
  h.exec("INSERT INTO t VALUES (1)");
  h.exec("INSERT INTO t VALUES (2)");
  h.wal->force_torn_on_next_crash();  // tears the lsn-3 record

  auto rec = h.crash_and_recover(opts);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_TRUE(rec.wal_torn);
  EXPECT_EQ(h.engine->committed_lsn(), 2u);
  const sqldb::TableData* t = h.db->find_table("t");
  ASSERT_NE(t, nullptr);
  EXPECT_EQ(t->rows.size(), 1u);
}

TEST(StorageEngine, CrashMidCheckpointFallsBackToOldRootPlusRedo) {
  StorageOptions opts;
  opts.checkpoint_pages_per_step = 1;  // long write-out window
  EngineHarness h(opts);
  workloads::load_pgbench(*h.db, /*accounts=*/300, /*seed=*/9);
  h.engine->bootstrap(*h.db, 1);
  h.sim.run_until_idle();  // initial checkpoint completes
  // One update per logical page: five dirty pages make the paced
  // write-out span several steps.
  for (int i = 0; i < 5; ++i)
    h.exec(strformat(
        "UPDATE pgbench_accounts SET abalance = abalance + 1 WHERE aid = %d",
        i * 64 + 1));
  std::string before = snapshot_database(*h.db);
  h.engine->force_checkpoint();
  // Advance just past one step: a page or two staged, root not written.
  h.sim.run_until(h.sim.now() + 3 * sim::kMillisecond);
  EXPECT_TRUE(h.engine->checkpoint_in_progress());

  auto rec = h.crash_and_recover(opts);
  ASSERT_TRUE(rec.ok) << rec.error;
  EXPECT_EQ(snapshot_database(*h.db), before);  // old root + full redo
  EXPECT_EQ(rec.wal_records_replayed, 5u);
}

TEST(StorageEngine, SameSeedRecoveryTraceIsByteIdentical) {
  auto run = [](uint64_t seed) {
    StorageOptions opts;
    opts.wal_flush_interval = 5 * sim::kMillisecond;
    sim::BlockDevice::Options dev_opts;
    dev_opts.faults.torn_write_prob = 0.3;
    dev_opts.faults.lost_write_prob = 0.2;
    dev_opts.rng_seed = seed;
    EngineHarness h(opts, dev_opts);
    workloads::load_pgbench(*h.db, 50, 9);
    h.engine->bootstrap(*h.db, seed);
    h.sim.run_until_idle();
    for (int i = 0; i < 8; ++i)
      h.exec(strformat(
          "UPDATE pgbench_accounts SET abalance = abalance + %d WHERE aid = %d",
          i + 1, i % 50 + 1));
    auto rec = h.crash_and_recover(opts);
    return rec.trace + (rec.ok ? "|ok" : "|" + rec.error) +
           snapshot_database(*h.db);
  };
  EXPECT_EQ(run(11), run(11));
}

TEST(StorageEngine, CorruptRootRecoversEmptyWithZeroLineage) {
  EngineHarness h;
  h.engine->bootstrap(*h.db, 1);
  h.sim.run_until_idle();
  h.exec("CREATE TABLE t (a INT)");
  h.engine->force_checkpoint();
  h.sim.run_until_idle();
  // Scribble over both root slots.
  h.data->write(0, "garbage");
  h.data->write(1, "more garbage");
  h.data->sync();

  auto rec = h.crash_and_recover();
  EXPECT_FALSE(rec.ok);
  EXPECT_EQ(h.engine->lineage_id(), 0u);  // full-resync territory
  EXPECT_EQ(h.db->tables().size(), 0u);   // never half-recovered
  sqldb::storage::StorageEngine::DeltaStats ds;
  EXPECT_FALSE(h.engine->build_delta(0, 0, &ds).has_value());
}

// ---- Incremental resync deltas ----------------------------------------

struct ReplicaPair {
  EngineHarness a, b;

  explicit ReplicaPair(StorageOptions opts = {}, int accounts = 200)
      : a(opts), b(opts) {
    workloads::load_pgbench(*a.db, accounts, 9);
    workloads::load_pgbench(*b.db, accounts, 9);
    a.engine->bootstrap(*a.db, /*lineage_seed=*/7);
    b.engine->bootstrap(*b.db, /*lineage_seed=*/7);
    a.sim.run_until_idle();
    b.sim.run_until_idle();
  }

  void exec_both(const std::string& sql) {
    a.exec(sql);
    b.exec(sql);
  }
};

TEST(StorageDelta, WalModeReplaysTailAndConverges) {
  ReplicaPair pair;
  EXPECT_EQ(pair.a.engine->lineage_id(), pair.b.engine->lineage_id());
  pair.exec_both("UPDATE pgbench_accounts SET abalance = 5 WHERE aid = 1");
  // A moves ahead while B is "down".
  pair.a.exec("UPDATE pgbench_accounts SET abalance = 6 WHERE aid = 2");
  pair.a.exec("UPDATE pgbench_tellers SET tbalance = 1 WHERE tid = 1");

  StorageEngine::DeltaStats built;
  auto delta = pair.a.engine->build_delta(pair.b.engine->committed_lsn(),
                                          pair.b.engine->lineage_id(), &built);
  ASSERT_TRUE(delta.has_value());
  EXPECT_STREQ(built.mode, "wal");
  EXPECT_EQ(built.wal_records, 2u);

  StorageEngine::DeltaStats applied;
  std::string err;
  ASSERT_TRUE(pair.b.engine->apply_delta(*delta, &applied, &err)) << err;
  EXPECT_EQ(snapshot_database(*pair.b.db), snapshot_database(*pair.a.db));
  EXPECT_EQ(pair.b.engine->committed_lsn(), pair.a.engine->committed_lsn());
}

TEST(StorageDelta, PagesModeShipsOnlyDirtyPages) {
  StorageOptions opts;
  opts.wal_keep_records = 0;  // no WAL reach-back: force pages mode
  ReplicaPair pair(opts, /*accounts=*/640);  // 10 pages of accounts
  // A advances 3 statements touching one page, then checkpoints (which
  // truncates the WAL past B's LSN).
  for (int i = 0; i < 3; ++i)
    pair.a.exec(strformat(
        "UPDATE pgbench_accounts SET abalance = %d WHERE aid = 1", i + 1));
  pair.a.engine->force_checkpoint();
  pair.a.sim.run_until_idle();

  StorageEngine::DeltaStats built;
  auto delta = pair.a.engine->build_delta(pair.b.engine->committed_lsn(),
                                          pair.b.engine->lineage_id(), &built);
  ASSERT_TRUE(delta.has_value());
  EXPECT_STREQ(built.mode, "pages");
  EXPECT_EQ(built.pages_shipped, 1u);  // one dirty page out of ~13
  EXPECT_LT(built.bytes, snapshot_database(*pair.a.db).size());

  StorageEngine::DeltaStats applied;
  std::string err;
  ASSERT_TRUE(pair.b.engine->apply_delta(*delta, &applied, &err)) << err;
  EXPECT_EQ(snapshot_database(*pair.b.db), snapshot_database(*pair.a.db));
  EXPECT_EQ(pair.b.engine->committed_lsn(), pair.a.engine->committed_lsn());
  EXPECT_EQ(pair.b.engine->lineage_id(), pair.a.engine->lineage_id());
  // B keeps working after the rebase: replicated statements stay aligned.
  pair.exec_both("UPDATE pgbench_accounts SET abalance = 9 WHERE aid = 2");
  EXPECT_EQ(snapshot_database(*pair.b.db), snapshot_database(*pair.a.db));
}

TEST(StorageDelta, OnePercentDirtyShipsFarFewerBytesThanSnapshot) {
  StorageOptions opts;
  opts.wal_keep_records = 0;
  ReplicaPair pair(opts, /*accounts=*/6400);  // 100 pages
  pair.a.exec("UPDATE pgbench_accounts SET abalance = 1 WHERE aid = 1");
  pair.a.engine->force_checkpoint();
  pair.a.sim.run_until_idle();

  StorageEngine::DeltaStats built;
  auto delta = pair.a.engine->build_delta(pair.b.engine->committed_lsn(),
                                          pair.b.engine->lineage_id(), &built);
  ASSERT_TRUE(delta.has_value());
  size_t full = snapshot_database(*pair.a.db).size();
  EXPECT_LT(built.bytes * 10, full);  // ~1% dirty → >10x smaller transfer
  StorageEngine::DeltaStats applied;
  ASSERT_TRUE(pair.b.engine->apply_delta(*delta, &applied, nullptr));
  EXPECT_EQ(snapshot_database(*pair.b.db), snapshot_database(*pair.a.db));
}

TEST(StorageDelta, LineageMismatchRefusesDelta) {
  ReplicaPair pair;
  EngineHarness other;
  workloads::load_pgbench(*other.db, 200, 9);
  other.engine->bootstrap(*other.db, /*lineage_seed=*/999);  // different salt
  other.sim.run_until_idle();
  StorageEngine::DeltaStats ds;
  EXPECT_FALSE(pair.a.engine
                   ->build_delta(other.engine->committed_lsn(),
                                 other.engine->lineage_id(), &ds)
                   .has_value());
  // Corrupted delta bytes are rejected before any state changes.
  pair.a.exec("UPDATE pgbench_accounts SET abalance = 5 WHERE aid = 1");
  auto delta = pair.a.engine->build_delta(pair.b.engine->committed_lsn(),
                                          pair.b.engine->lineage_id(), &ds);
  ASSERT_TRUE(delta.has_value());
  std::string bad = *delta;
  bad[bad.size() / 2] ^= 1;
  std::string before = snapshot_database(*pair.b.db);
  std::string err;
  EXPECT_FALSE(pair.b.engine->apply_delta(bad, nullptr, &err));
  EXPECT_EQ(snapshot_database(*pair.b.db), before);
}

// ---- Server + orchestrator volume loop ---------------------------------

TEST(DurableServer, RestartRecoversCommittedStateFromVolume) {
  sim::Simulator sim;
  sim::Network net{sim, 10 * sim::kMicrosecond};
  services::Orchestrator orch(sim, net, /*seed=*/3);
  orch.add_host("h", 8, 8LL << 30);
  orch.register_image("minipg", [&](const services::ContainerSpec& spec) {
    auto db = std::make_shared<Database>(minipg_info("13.0"));
    workloads::load_pgbench(*db, 50, 9);
    auto& vol = orch.volume(spec.container_name);
    sqldb::SqlServer::Options so;
    so.address = spec.address;
    so.rng_seed = spec.rng_seed;
    so.storage = std::make_shared<StorageEngine>(sim, vol.data, vol.wal,
                                                 StorageOptions{});
    so.lineage_seed = 3;
    return std::make_shared<sqldb::SqlServer>(net, *spec.host, db, so);
  });
  orch.deploy("pg-0", "minipg", "13.0", "h", "pg-0:5432");
  sim.run_until_idle();  // initial checkpoint

  int64_t observed = -1;
  bool update_ok = false;
  auto client = std::make_unique<sqldb::PgClient>(net, "cli", "pg-0:5432",
                                                  "postgres");
  client->query("UPDATE pgbench_accounts SET abalance = 777 WHERE aid = 7",
                [&](sqldb::QueryOutcome o) { update_ok = !o.failed(); });
  sim.run_until_idle();
  ASSERT_TRUE(update_ok);
  client->close();

  orch.crash("pg-0");
  sim.run_until_idle();
  orch.restart("pg-0");
  sim.run_until_idle();  // recovery IO elapses, then listen

  auto server = orch.get<sqldb::SqlServer>("pg-0");
  ASSERT_NE(server, nullptr);
  EXPECT_TRUE(server->last_recovery().ok) << server->last_recovery().error;
  EXPECT_GT(server->last_recovery().io_time, 0);
  auto client2 = std::make_unique<sqldb::PgClient>(net, "cli2", "pg-0:5432",
                                                   "postgres");
  client2->query("SELECT abalance FROM pgbench_accounts WHERE aid = 7",
                 [&](sqldb::QueryOutcome o) {
                   if (!o.failed() && !o.rows.empty() && !o.rows[0].empty() &&
                       o.rows[0][0])
                     observed = parse_i64(*o.rows[0][0]).value_or(-1);
                 });
  sim.run_until_idle();
  EXPECT_EQ(observed, 777);  // the write survived the crash
}

}  // namespace
}  // namespace rddr
