// Unit tests for the library-variant pairs: on benign input every pair
// agrees byte-for-byte (the N-versioning prerequisite); on the CVE input
// exactly the vulnerable member misbehaves.
#include <gtest/gtest.h>

#include "common/rng.h"
#include "services/variant_libs.h"

namespace rddr::services::lib {
namespace {

// ---------- markdown pair (CVE-2020-11888) ----------

TEST(Markdown, BenignIdenticalAcrossLibraries) {
  const char* inputs[] = {
      "plain text",
      "# Header\ntext",
      "### Deep header",
      "**bold** words",
      "[link](https://example.com/path?q=1)",
      "mix **b** and [l](http://x) here",
      "",
      "a < b & c > d",  // escaping
  };
  for (const char* in : inputs)
    EXPECT_EQ(md_render_mdone(in), md_render_mdtwo(in)) << in;
}

TEST(Markdown, EscapesHtml) {
  std::string html = md_render_mdone("<script>alert(1)</script>");
  EXPECT_EQ(html.find("<script>"), std::string::npos);
  EXPECT_NE(html.find("&lt;script&gt;"), std::string::npos);
}

TEST(Markdown, BothBlockPlainJavascriptUrl) {
  const char* in = "[x](javascript:alert(1))";
  EXPECT_EQ(md_render_mdone(in).find("javascript:"), std::string::npos);
  EXPECT_EQ(md_render_mdtwo(in).find("javascript:"), std::string::npos);
}

TEST(Markdown, ControlCharacterBypassOnlyFoolsMdtwo) {
  const char* in = "[x](java\x0bscript:alert(1))";
  EXPECT_EQ(md_render_mdone(in).find("javascript:"), std::string::npos);
  EXPECT_NE(md_render_mdtwo(in).find("javascript:"), std::string::npos);
}

TEST(Markdown, HeaderLevels) {
  EXPECT_NE(md_render_mdone("## Two").find("<h2>Two</h2>"), std::string::npos);
  EXPECT_NE(md_render_mdone("###### Six").find("<h6>Six</h6>"),
            std::string::npos);
}

// ---------- sanitizer pair (CVE-2014-3146) ----------

TEST(Sanitizer, BenignIdenticalAcrossLibraries) {
  const char* inputs[] = {
      "<p>hello</p>",
      "<a href=\"https://ok\">x</a>",
      "<div class=\"c\"><b>bold</b></div>",
      "plain",
      "<img src=\"/pic.png\">",
  };
  for (const char* in : inputs)
    EXPECT_EQ(sanitize_lxmllite(in), sanitize_sanihtml(in)) << in;
}

TEST(Sanitizer, BothStripScriptTags) {
  const char* in = "<p>a</p><script>evil()</script><p>b</p>";
  EXPECT_EQ(sanitize_lxmllite(in).find("evil"), std::string::npos);
  EXPECT_EQ(sanitize_sanihtml(in).find("evil"), std::string::npos);
}

TEST(Sanitizer, BothStripEventHandlers) {
  const char* in = "<img src=\"x\" onerror=\"evil()\">";
  EXPECT_EQ(sanitize_lxmllite(in).find("onerror"), std::string::npos);
  EXPECT_EQ(sanitize_sanihtml(in).find("onerror"), std::string::npos);
}

TEST(Sanitizer, BothStripPlainJavascriptHref) {
  const char* in = "<a href=\"javascript:evil()\">x</a>";
  EXPECT_EQ(sanitize_lxmllite(in).find("javascript"), std::string::npos);
  EXPECT_EQ(sanitize_sanihtml(in).find("javascript"), std::string::npos);
}

TEST(Sanitizer, CharRefBypassOnlyFoolsLxmllite) {
  const char* in = "<a href=\"java&#10;script:evil()\">x</a>";
  // lxmllite keeps the href (it never decodes &#10;)...
  EXPECT_NE(sanitize_lxmllite(in).find("script:evil"), std::string::npos);
  // ...sanihtml decodes, squeezes and blocks.
  EXPECT_EQ(sanitize_sanihtml(in).find("script:evil"), std::string::npos);
}

TEST(Sanitizer, NewlineBypassOnlyFoolsLxmllite) {
  const char* in = "<a href=\"java\nscript:evil()\">x</a>";
  EXPECT_NE(sanitize_lxmllite(in).find("script:evil"), std::string::npos);
  EXPECT_EQ(sanitize_sanihtml(in).find("script:evil"), std::string::npos);
}

// ---------- svg pair (CVE-2020-10799) ----------

TEST(Svg, BenignIdenticalAcrossLibraries) {
  const char* svg =
      "<svg width=\"32\" height=\"24\"><text>hello</text>"
      "<text>world</text></svg>";
  auto a = svg_to_png_svglite(svg);
  auto b = svg_to_png_cairolite(svg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a.value(), b.value());
  EXPECT_NE(a.value().find("dims=32x24"), Bytes::npos);
  EXPECT_NE(a.value().find("text=hello"), Bytes::npos);
}

TEST(Svg, InternalEntitiesResolvedByBoth) {
  const char* svg =
      "<!DOCTYPE svg [<!ENTITY brand \"ACME\">]>"
      "<svg width=\"8\" height=\"8\"><text>&brand;</text></svg>";
  auto a = svg_to_png_svglite(svg);
  auto b = svg_to_png_cairolite(svg);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_NE(a.value().find("text=ACME"), Bytes::npos);
  EXPECT_EQ(a.value(), b.value());
}

TEST(Svg, ExternalEntityResolvedOnlyBySvglite) {
  const char* svg =
      "<!DOCTYPE svg [<!ENTITY xxe SYSTEM \"file:///etc/passwd\">]>"
      "<svg width=\"8\" height=\"8\"><text>&xxe;</text></svg>";
  auto a = svg_to_png_svglite(svg);
  ASSERT_TRUE(a.ok());
  EXPECT_NE(a.value().find("root:x:0:0"), Bytes::npos);  // the XXE leak
  auto b = svg_to_png_cairolite(svg);
  EXPECT_FALSE(b.ok());
  EXPECT_NE(b.error().find("external"), std::string::npos);
}

TEST(Svg, UnknownFileResolvesEmpty) {
  const char* svg =
      "<!DOCTYPE svg [<!ENTITY x SYSTEM \"file:///no/such\">]>"
      "<svg width=\"8\" height=\"8\"><text>[&x;]</text></svg>";
  auto a = svg_to_png_svglite(svg);
  ASSERT_TRUE(a.ok());
  EXPECT_NE(a.value().find("text=[]"), Bytes::npos);
}

// ---------- rsa pair (CVE-2020-13757) ----------

TEST(Rsa, WellFormedCiphertextDecryptsIdentically) {
  Rng rng(11);
  for (int i = 0; i < 20; ++i) {
    uint64_t key = rng.next();
    Bytes msg = rng.alnum_token(static_cast<size_t>(rng.uniform(0, 40)));
    Bytes cipher = rsa_encrypt(msg, key, rng.next());
    auto a = rsa_decrypt_cryptolite(cipher, key);
    auto b = rsa_decrypt_rsalite(cipher, key);
    ASSERT_TRUE(a.ok());
    ASSERT_TRUE(b.ok());
    EXPECT_EQ(a.value(), msg);
    EXPECT_EQ(b.value(), msg);
  }
}

TEST(Rsa, BothRejectGarbage) {
  EXPECT_FALSE(rsa_decrypt_cryptolite("xx", 1).ok());
  EXPECT_FALSE(rsa_decrypt_rsalite("xx", 1).ok());
}

TEST(Rsa, BadLeadingByteOnlyFoolsRsalite) {
  uint64_t key = 0xfeed;
  Bytes block;
  block += '\x01';  // must be 0x00
  block += '\x02';
  for (int i = 0; i < 8; ++i) block += '\x55';
  block += '\0';
  block += "forged";
  Bytes cipher;
  for (size_t i = 0; i < block.size(); ++i)
    cipher.push_back(static_cast<char>(static_cast<uint8_t>(block[i]) ^
                                       rsa_keystream_byte(key, i)));
  EXPECT_FALSE(rsa_decrypt_cryptolite(cipher, key).ok());
  auto lax = rsa_decrypt_rsalite(cipher, key);
  ASSERT_TRUE(lax.ok());
  EXPECT_EQ(lax.value(), "forged");
}

TEST(Rsa, ShortPaddingOnlyRejectedByStrict) {
  uint64_t key = 0xbeef;
  Bytes block;
  block += '\x00';
  block += '\x02';
  block += "\x11\x22";  // only 2 bytes of padding (minimum is 8)
  block += '\0';
  block += "m";
  Bytes cipher;
  for (size_t i = 0; i < block.size(); ++i)
    cipher.push_back(static_cast<char>(static_cast<uint8_t>(block[i]) ^
                                       rsa_keystream_byte(key, i)));
  EXPECT_FALSE(rsa_decrypt_cryptolite(cipher, key).ok());
  EXPECT_TRUE(rsa_decrypt_rsalite(cipher, key).ok());
}

TEST(Rsa, KeystreamDeterministicPerKey) {
  for (size_t i = 0; i < 32; ++i) {
    EXPECT_EQ(rsa_keystream_byte(42, i), rsa_keystream_byte(42, i));
  }
  int diff = 0;
  for (size_t i = 0; i < 32; ++i)
    if (rsa_keystream_byte(1, i) != rsa_keystream_byte(2, i)) ++diff;
  EXPECT_GT(diff, 24);
}

}  // namespace
}  // namespace rddr::services::lib
