// Chaos harness tests: many seeded random fault schedules must all
// recover cleanly; a deliberately broken deployment (resync disabled
// under writes) must be caught by the invariants and shrink to a minimal
// deterministic repro.
#include <gtest/gtest.h>

#include "chaos/chaos.h"

namespace rddr::chaos {
namespace {

/// Trimmed workload so a single seed runs fast; faults + recovery math
/// are unchanged.
ChaosOptions quick_options() {
  ChaosOptions o;
  o.queries_per_client = 40;
  o.fault_window_end = 4 * sim::kSecond;
  o.settle = 15 * sim::kSecond;
  return o;
}

TEST(ChaosPlanTest, SameSeedSamePlan) {
  ChaosOptions opts;
  for (uint64_t seed : {1ULL, 7ULL, 99ULL, 123456789ULL}) {
    auto a = generate_fault_plan(seed, opts);
    auto b = generate_fault_plan(seed, opts);
    ASSERT_EQ(a.size(), b.size());
    for (size_t i = 0; i < a.size(); ++i) {
      EXPECT_EQ(a[i].kind, b[i].kind);
      EXPECT_EQ(a[i].at, b[i].at);
      EXPECT_EQ(a[i].duration, b[i].duration);
      EXPECT_EQ(a[i].extra, b[i].extra);
      EXPECT_EQ(a[i].instance, b[i].instance);
    }
  }
}

TEST(ChaosPlanTest, PlansVaryAcrossSeedsAndStayInWindow) {
  ChaosOptions opts;
  bool any_difference = false;
  auto first = generate_fault_plan(1, opts);
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    auto plan = generate_fault_plan(seed, opts);
    ASSERT_GE(plan.size(), 1u);
    ASSERT_LE(plan.size(), opts.max_faults);
    for (size_t i = 0; i < plan.size(); ++i) {
      EXPECT_GE(plan[i].at, opts.fault_window_start);
      EXPECT_LT(plan[i].at, opts.fault_window_end);
      EXPECT_LT(plan[i].instance, opts.n_instances);
      if (i > 0) {
        EXPECT_GE(plan[i].at, plan[i - 1].at);  // sorted
      }
      if (plan.size() != first.size() || plan[i].at != first[i].at)
        any_difference = true;
    }
  }
  EXPECT_TRUE(any_difference);
}

TEST(ChaosRunTest, TwentySeedsRecoverCleanly) {
  ChaosOptions opts = quick_options();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ChaosReport rep = run_chaos_seed(seed, opts);
    EXPECT_TRUE(rep.ok) << "seed " << seed << ":\n"
                        << describe(rep.plan) << rep.summary();
    EXPECT_EQ(rep.healthy_at_end, opts.n_instances) << "seed " << seed;
    EXPECT_EQ(rep.lost, 0u) << "seed " << seed;
    EXPECT_GT(rep.served, 0u) << "seed " << seed;
  }
}

TEST(ChaosRunTest, SameSeedSameReport) {
  ChaosOptions opts = quick_options();
  ChaosReport a = run_chaos_seed(5, opts);
  ChaosReport b = run_chaos_seed(5, opts);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.refused, b.refused);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.interventions, b.interventions);
  EXPECT_EQ(a.quorum_outvotes, b.quorum_outvotes);
  EXPECT_EQ(a.healthy_at_end, b.healthy_at_end);
  EXPECT_EQ(a.recovery_time, b.recovery_time);
}

/// The harness's self-test: disable resync and a restarted replica comes
/// back stale under a write workload — the invariants must catch it.
TEST(ChaosShrinkTest, ResyncAblationIsCaughtAndShrunk) {
  ChaosOptions opts = quick_options();
  opts.resync_enabled = false;

  // Two benign faults around the one that needs resync to stay safe.
  std::vector<FaultSpec> plan;
  FaultSpec spike;
  spike.kind = FaultKind::kLatencySpike;
  spike.at = 600 * sim::kMillisecond;
  spike.duration = 300 * sim::kMillisecond;
  spike.extra = 20 * sim::kMillisecond;
  spike.instance = 0;
  plan.push_back(spike);
  FaultSpec crash;
  crash.kind = FaultKind::kCrashRestart;
  crash.at = 1 * sim::kSecond;
  crash.duration = 800 * sim::kMillisecond;
  crash.instance = 2;
  plan.push_back(crash);
  FaultSpec spike2 = spike;
  spike2.at = 2500 * sim::kMillisecond;
  spike2.instance = 1;
  plan.push_back(spike2);

  ChaosReport broken = run_chaos(plan, opts, /*seed=*/5);
  ASSERT_FALSE(broken.ok) << broken.summary();
  EXPECT_FALSE(broken.violations.empty());

  // The same schedule with resync on recovers cleanly: it is the missing
  // state transfer that breaks, not the schedule.
  ChaosOptions fixed = opts;
  fixed.resync_enabled = true;
  EXPECT_TRUE(run_chaos(plan, fixed, 5).ok);

  // Shrinking drops the benign spikes and keeps a still-failing repro.
  ShrinkResult shrunk = shrink_fault_plan(plan, opts, 5);
  ASSERT_FALSE(shrunk.report.ok);
  ASSERT_LE(shrunk.plan.size(), plan.size());
  ASSERT_EQ(shrunk.plan.size(), 1u) << describe(shrunk.plan);
  EXPECT_EQ(shrunk.plan[0].kind, FaultKind::kCrashRestart);
  EXPECT_GT(shrunk.runs, 0u);

  // Deterministic: shrinking twice lands on the identical repro.
  ShrinkResult again = shrink_fault_plan(plan, opts, 5);
  ASSERT_EQ(again.plan.size(), shrunk.plan.size());
  EXPECT_EQ(again.plan[0].kind, shrunk.plan[0].kind);
  EXPECT_EQ(again.plan[0].at, shrunk.plan[0].at);
  EXPECT_EQ(again.plan[0].duration, shrunk.plan[0].duration);
  EXPECT_EQ(again.runs, shrunk.runs);
  EXPECT_EQ(again.report.summary(), shrunk.report.summary());
}

/// Stronger determinism contract than the field-wise checks above: for a
/// fixed (seed, violation), two independent shrink passes must produce
/// byte-identical minimal repros and byte-identical failure reports —
/// describe() and summary() are the comparison surfaces CI can diff.
TEST(ChaosShrinkTest, SameSeedShrinkIsByteIdentical) {
  ChaosOptions opts = quick_options();
  opts.resync_enabled = false;  // the planted violation

  std::vector<FaultSpec> plan;
  FaultSpec spike;
  spike.kind = FaultKind::kLatencySpike;
  spike.at = 600 * sim::kMillisecond;
  spike.duration = 300 * sim::kMillisecond;
  spike.extra = 20 * sim::kMillisecond;
  spike.instance = 0;
  plan.push_back(spike);
  FaultSpec crash;
  crash.kind = FaultKind::kCrashRestart;
  crash.at = 1 * sim::kSecond;
  crash.duration = 800 * sim::kMillisecond;
  crash.instance = 2;
  plan.push_back(crash);

  ASSERT_FALSE(run_chaos(plan, opts, /*seed=*/5).ok);

  ShrinkResult first = shrink_fault_plan(plan, opts, 5);
  ShrinkResult second = shrink_fault_plan(plan, opts, 5);
  ASSERT_FALSE(first.report.ok);
  EXPECT_EQ(describe(first.plan), describe(second.plan));
  EXPECT_EQ(first.report.summary(), second.report.summary());
  // And re-running the minimal repro reproduces its report byte-for-byte.
  EXPECT_EQ(run_chaos(first.plan, opts, 5).summary(),
            first.report.summary());
}

TEST(ShardKillTest, FrontierRoutesAroundDeadShardAndReadmitsIt) {
  ShardKillOptions opts;  // defaults: 3 shards x 3 minipg, kill shard 1
  ShardKillReport r = run_shard_kill(opts, 5);
  EXPECT_TRUE(r.ok) << r.summary();
  EXPECT_EQ(r.lost, 0u) << r.summary();
  // A brief detection burst right after the kill is expected; ok=true
  // already asserts zero refusals after the detection grace window.
  EXPECT_LE(r.refused_during_outage, 3u) << r.summary();
  EXPECT_GT(r.sessions_after_readmit, 0u) << r.summary();
  EXPECT_EQ(r.killed_shard_healthy_at_end, opts.instances_per_shard);
  EXPECT_GE(r.readmit_time, 0) << r.summary();
  EXPECT_EQ(r.served + r.refused, r.issued);

  // Deterministic: the same seed reproduces the identical report.
  ShardKillReport again = run_shard_kill(opts, 5);
  EXPECT_EQ(again.summary(), r.summary());

  // Other seeds shift the workload timing but the invariants still hold.
  for (uint64_t seed : {11ULL, 42ULL}) {
    ShardKillReport rs = run_shard_kill(opts, seed);
    EXPECT_TRUE(rs.ok) << "seed " << seed << ": " << rs.summary();
  }
}

/// Durable-storage chaos profile: replicas persist through orchestrator
/// volumes, restarts recover from disk, and plans draw the disk fault
/// kinds (torn WAL, partial group commit, crash mid-checkpoint, crash
/// during resync) on top of seeded device-level write loss.
ChaosOptions durable_options() {
  ChaosOptions o = quick_options();
  o.durable_storage = true;
  o.disk_faults.torn_write_prob = 0.05;
  o.disk_faults.lost_write_prob = 0.05;
  return o;
}

TEST(ChaosDurableTest, DiskFaultKindsAppearInGeneratedPlans) {
  ChaosOptions opts = durable_options();
  bool disk_kind = false;
  for (uint64_t seed = 1; seed <= 30 && !disk_kind; ++seed)
    for (const FaultSpec& f : generate_fault_plan(seed, opts))
      if (f.kind == FaultKind::kTornWrite || f.kind == FaultKind::kPartialWal ||
          f.kind == FaultKind::kCrashCheckpoint ||
          f.kind == FaultKind::kCrashResync)
        disk_kind = true;
  EXPECT_TRUE(disk_kind);
  // The durable switch must not perturb non-durable plans: seed-for-seed,
  // the classic five kinds draw identically with it off.
  ChaosOptions base = quick_options();
  auto a = generate_fault_plan(3, base);
  auto b = generate_fault_plan(3, ChaosOptions(base));
  ASSERT_EQ(a.size(), b.size());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i].kind, b[i].kind);
}

TEST(ChaosDurableTest, TwentySeedsWithDiskFaultsRecoverCleanly) {
  ChaosOptions opts = durable_options();
  for (uint64_t seed = 1; seed <= 20; ++seed) {
    ChaosReport rep = run_chaos_seed(seed, opts);
    EXPECT_TRUE(rep.ok) << "seed " << seed << ":\n"
                        << describe(rep.plan) << rep.summary();
    EXPECT_EQ(rep.healthy_at_end, opts.n_instances) << "seed " << seed;
    EXPECT_EQ(rep.lost, 0u) << "seed " << seed;
    EXPECT_GT(rep.served, 0u) << "seed " << seed;
  }
}

TEST(ChaosDurableTest, SameSeedSameReport) {
  ChaosOptions opts = durable_options();
  ChaosReport a = run_chaos_seed(9, opts);
  ChaosReport b = run_chaos_seed(9, opts);
  EXPECT_EQ(a.ok, b.ok);
  EXPECT_EQ(a.issued, b.issued);
  EXPECT_EQ(a.served, b.served);
  EXPECT_EQ(a.refused, b.refused);
  EXPECT_EQ(a.lost, b.lost);
  EXPECT_EQ(a.healthy_at_end, b.healthy_at_end);
  EXPECT_EQ(a.recovery_time, b.recovery_time);
  EXPECT_EQ(a.stats.pages_shipped, b.stats.pages_shipped);
  EXPECT_EQ(a.stats.wal_bytes_replayed, b.stats.wal_bytes_replayed);
}

TEST(ChaosDurableTest, ResyncsWarmIncrementally) {
  // A single crash+restart under a write workload: the restarted replica
  // recovers from its volume and the proxy tops it up incrementally —
  // WAL tail or dirty pages, not a full snapshot.
  ChaosOptions opts = durable_options();
  std::vector<FaultSpec> plan;
  FaultSpec crash;
  crash.kind = FaultKind::kCrashRestart;
  crash.at = 1 * sim::kSecond;
  crash.duration = 500 * sim::kMillisecond;
  crash.instance = 1;
  plan.push_back(crash);
  ChaosReport rep = run_chaos(plan, opts, /*seed=*/4);
  EXPECT_TRUE(rep.ok) << rep.summary();
  EXPECT_GE(rep.stats.resyncs, 1u);
  EXPECT_GT(rep.stats.pages_shipped + rep.stats.wal_bytes_replayed, 0u)
      << "resync fell back to a full snapshot";
}

TEST(ChaosDurableTest, PeerKilledMidResyncNeverReadmitsPartialState) {
  for (uint64_t seed : {1ULL, 5ULL, 12ULL}) {
    ChaosReport rep = run_peer_kill_resync(seed);
    EXPECT_TRUE(rep.ok) << "seed " << seed << ":\n"
                        << describe(rep.plan) << rep.summary();
    EXPECT_EQ(rep.healthy_at_end, rep.n_instances) << "seed " << seed;
    EXPECT_EQ(rep.lost, 0u) << "seed " << seed;
  }
}

TEST(ChaosDescribeTest, HumanReadablePlan) {
  FaultSpec f;
  f.kind = FaultKind::kCrashReplace;
  f.at = 1200 * sim::kMillisecond;
  f.duration = 500 * sim::kMillisecond;
  f.instance = 2;
  std::string s = describe(f);
  EXPECT_NE(s.find("crash-replace"), std::string::npos);
  EXPECT_NE(s.find("@1.20s"), std::string::npos);
  EXPECT_NE(s.find("instance 2"), std::string::npos);
}

}  // namespace
}  // namespace rddr::chaos
