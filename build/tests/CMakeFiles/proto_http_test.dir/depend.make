# Empty dependencies file for proto_http_test.
# This may be replaced when dependencies are built.
