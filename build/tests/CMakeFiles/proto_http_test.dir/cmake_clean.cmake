file(REMOVE_RECURSE
  "CMakeFiles/proto_http_test.dir/proto_http_test.cc.o"
  "CMakeFiles/proto_http_test.dir/proto_http_test.cc.o.d"
  "proto_http_test"
  "proto_http_test.pdb"
  "proto_http_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/proto_http_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
