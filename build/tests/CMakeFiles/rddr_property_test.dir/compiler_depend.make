# Empty compiler generated dependencies file for rddr_property_test.
# This may be replaced when dependencies are built.
