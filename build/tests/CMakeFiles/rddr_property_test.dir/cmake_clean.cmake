file(REMOVE_RECURSE
  "CMakeFiles/rddr_property_test.dir/rddr_property_test.cc.o"
  "CMakeFiles/rddr_property_test.dir/rddr_property_test.cc.o.d"
  "rddr_property_test"
  "rddr_property_test.pdb"
  "rddr_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
