# Empty compiler generated dependencies file for sqldb_server_test.
# This may be replaced when dependencies are built.
