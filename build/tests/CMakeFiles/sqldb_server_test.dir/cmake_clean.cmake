file(REMOVE_RECURSE
  "CMakeFiles/sqldb_server_test.dir/sqldb_server_test.cc.o"
  "CMakeFiles/sqldb_server_test.dir/sqldb_server_test.cc.o.d"
  "sqldb_server_test"
  "sqldb_server_test.pdb"
  "sqldb_server_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_server_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
