# Empty dependencies file for variant_libs_test.
# This may be replaced when dependencies are built.
