file(REMOVE_RECURSE
  "CMakeFiles/variant_libs_test.dir/variant_libs_test.cc.o"
  "CMakeFiles/variant_libs_test.dir/variant_libs_test.cc.o.d"
  "variant_libs_test"
  "variant_libs_test.pdb"
  "variant_libs_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/variant_libs_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
