file(REMOVE_RECURSE
  "CMakeFiles/sqldb_parser_test.dir/sqldb_parser_test.cc.o"
  "CMakeFiles/sqldb_parser_test.dir/sqldb_parser_test.cc.o.d"
  "sqldb_parser_test"
  "sqldb_parser_test.pdb"
  "sqldb_parser_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_parser_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
