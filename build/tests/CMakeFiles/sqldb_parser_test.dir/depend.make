# Empty dependencies file for sqldb_parser_test.
# This may be replaced when dependencies are built.
