file(REMOVE_RECURSE
  "CMakeFiles/table1_scenarios_test.dir/table1_scenarios_test.cc.o"
  "CMakeFiles/table1_scenarios_test.dir/table1_scenarios_test.cc.o.d"
  "table1_scenarios_test"
  "table1_scenarios_test.pdb"
  "table1_scenarios_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_scenarios_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
