file(REMOVE_RECURSE
  "CMakeFiles/rddr_plugin_test.dir/rddr_plugin_test.cc.o"
  "CMakeFiles/rddr_plugin_test.dir/rddr_plugin_test.cc.o.d"
  "rddr_plugin_test"
  "rddr_plugin_test.pdb"
  "rddr_plugin_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_plugin_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
