# Empty dependencies file for rddr_plugin_test.
# This may be replaced when dependencies are built.
