file(REMOVE_RECURSE
  "CMakeFiles/rddr_proxy_test.dir/rddr_proxy_test.cc.o"
  "CMakeFiles/rddr_proxy_test.dir/rddr_proxy_test.cc.o.d"
  "rddr_proxy_test"
  "rddr_proxy_test.pdb"
  "rddr_proxy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_proxy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
