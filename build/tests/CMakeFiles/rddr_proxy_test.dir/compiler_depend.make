# Empty compiler generated dependencies file for rddr_proxy_test.
# This may be replaced when dependencies are built.
