# Empty compiler generated dependencies file for rddr_noise_test.
# This may be replaced when dependencies are built.
