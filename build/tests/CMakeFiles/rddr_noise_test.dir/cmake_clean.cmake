file(REMOVE_RECURSE
  "CMakeFiles/rddr_noise_test.dir/rddr_noise_test.cc.o"
  "CMakeFiles/rddr_noise_test.dir/rddr_noise_test.cc.o.d"
  "rddr_noise_test"
  "rddr_noise_test.pdb"
  "rddr_noise_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_noise_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
