file(REMOVE_RECURSE
  "CMakeFiles/sqldb_test.dir/sqldb_test.cc.o"
  "CMakeFiles/sqldb_test.dir/sqldb_test.cc.o.d"
  "sqldb_test"
  "sqldb_test.pdb"
  "sqldb_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sqldb_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
