file(REMOVE_RECURSE
  "CMakeFiles/rddr_limits_test.dir/rddr_limits_test.cc.o"
  "CMakeFiles/rddr_limits_test.dir/rddr_limits_test.cc.o.d"
  "rddr_limits_test"
  "rddr_limits_test.pdb"
  "rddr_limits_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_limits_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
