# Empty compiler generated dependencies file for rddr_limits_test.
# This may be replaced when dependencies are built.
