# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/netsim_test[1]_include.cmake")
include("/root/repo/build/tests/proto_http_test[1]_include.cmake")
include("/root/repo/build/tests/proto_wire_test[1]_include.cmake")
include("/root/repo/build/tests/sqldb_test[1]_include.cmake")
include("/root/repo/build/tests/rddr_noise_test[1]_include.cmake")
include("/root/repo/build/tests/rddr_plugin_test[1]_include.cmake")
include("/root/repo/build/tests/rddr_proxy_test[1]_include.cmake")
include("/root/repo/build/tests/table1_scenarios_test[1]_include.cmake")
include("/root/repo/build/tests/workloads_test[1]_include.cmake")
include("/root/repo/build/tests/services_test[1]_include.cmake")
include("/root/repo/build/tests/variant_libs_test[1]_include.cmake")
include("/root/repo/build/tests/rddr_limits_test[1]_include.cmake")
include("/root/repo/build/tests/sqldb_parser_test[1]_include.cmake")
include("/root/repo/build/tests/rddr_property_test[1]_include.cmake")
include("/root/repo/build/tests/sqldb_server_test[1]_include.cmake")
include("/root/repo/build/tests/engine_property_test[1]_include.cmake")
