
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rddr/deployment.cc" "src/rddr/CMakeFiles/rddr_core.dir/deployment.cc.o" "gcc" "src/rddr/CMakeFiles/rddr_core.dir/deployment.cc.o.d"
  "/root/repo/src/rddr/incoming_proxy.cc" "src/rddr/CMakeFiles/rddr_core.dir/incoming_proxy.cc.o" "gcc" "src/rddr/CMakeFiles/rddr_core.dir/incoming_proxy.cc.o.d"
  "/root/repo/src/rddr/noise.cc" "src/rddr/CMakeFiles/rddr_core.dir/noise.cc.o" "gcc" "src/rddr/CMakeFiles/rddr_core.dir/noise.cc.o.d"
  "/root/repo/src/rddr/outgoing_proxy.cc" "src/rddr/CMakeFiles/rddr_core.dir/outgoing_proxy.cc.o" "gcc" "src/rddr/CMakeFiles/rddr_core.dir/outgoing_proxy.cc.o.d"
  "/root/repo/src/rddr/plugins.cc" "src/rddr/CMakeFiles/rddr_core.dir/plugins.cc.o" "gcc" "src/rddr/CMakeFiles/rddr_core.dir/plugins.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rddr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/rddr_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/rddr_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
