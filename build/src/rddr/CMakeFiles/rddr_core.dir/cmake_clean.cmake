file(REMOVE_RECURSE
  "CMakeFiles/rddr_core.dir/deployment.cc.o"
  "CMakeFiles/rddr_core.dir/deployment.cc.o.d"
  "CMakeFiles/rddr_core.dir/incoming_proxy.cc.o"
  "CMakeFiles/rddr_core.dir/incoming_proxy.cc.o.d"
  "CMakeFiles/rddr_core.dir/noise.cc.o"
  "CMakeFiles/rddr_core.dir/noise.cc.o.d"
  "CMakeFiles/rddr_core.dir/outgoing_proxy.cc.o"
  "CMakeFiles/rddr_core.dir/outgoing_proxy.cc.o.d"
  "CMakeFiles/rddr_core.dir/plugins.cc.o"
  "CMakeFiles/rddr_core.dir/plugins.cc.o.d"
  "librddr_core.a"
  "librddr_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
