file(REMOVE_RECURSE
  "librddr_core.a"
)
