# Empty dependencies file for rddr_core.
# This may be replaced when dependencies are built.
