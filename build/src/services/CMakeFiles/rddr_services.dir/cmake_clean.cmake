file(REMOVE_RECURSE
  "CMakeFiles/rddr_services.dir/dvwa.cc.o"
  "CMakeFiles/rddr_services.dir/dvwa.cc.o.d"
  "CMakeFiles/rddr_services.dir/echo_vuln.cc.o"
  "CMakeFiles/rddr_services.dir/echo_vuln.cc.o.d"
  "CMakeFiles/rddr_services.dir/gitlab.cc.o"
  "CMakeFiles/rddr_services.dir/gitlab.cc.o.d"
  "CMakeFiles/rddr_services.dir/http_service.cc.o"
  "CMakeFiles/rddr_services.dir/http_service.cc.o.d"
  "CMakeFiles/rddr_services.dir/orchestrator.cc.o"
  "CMakeFiles/rddr_services.dir/orchestrator.cc.o.d"
  "CMakeFiles/rddr_services.dir/rest_service.cc.o"
  "CMakeFiles/rddr_services.dir/rest_service.cc.o.d"
  "CMakeFiles/rddr_services.dir/reverse_proxy.cc.o"
  "CMakeFiles/rddr_services.dir/reverse_proxy.cc.o.d"
  "CMakeFiles/rddr_services.dir/simple_api.cc.o"
  "CMakeFiles/rddr_services.dir/simple_api.cc.o.d"
  "CMakeFiles/rddr_services.dir/static_server.cc.o"
  "CMakeFiles/rddr_services.dir/static_server.cc.o.d"
  "CMakeFiles/rddr_services.dir/tcp_proxy.cc.o"
  "CMakeFiles/rddr_services.dir/tcp_proxy.cc.o.d"
  "CMakeFiles/rddr_services.dir/variant_libs.cc.o"
  "CMakeFiles/rddr_services.dir/variant_libs.cc.o.d"
  "librddr_services.a"
  "librddr_services.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_services.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
