# Empty dependencies file for rddr_services.
# This may be replaced when dependencies are built.
