file(REMOVE_RECURSE
  "librddr_services.a"
)
