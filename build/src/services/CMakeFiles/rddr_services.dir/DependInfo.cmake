
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/services/dvwa.cc" "src/services/CMakeFiles/rddr_services.dir/dvwa.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/dvwa.cc.o.d"
  "/root/repo/src/services/echo_vuln.cc" "src/services/CMakeFiles/rddr_services.dir/echo_vuln.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/echo_vuln.cc.o.d"
  "/root/repo/src/services/gitlab.cc" "src/services/CMakeFiles/rddr_services.dir/gitlab.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/gitlab.cc.o.d"
  "/root/repo/src/services/http_service.cc" "src/services/CMakeFiles/rddr_services.dir/http_service.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/http_service.cc.o.d"
  "/root/repo/src/services/orchestrator.cc" "src/services/CMakeFiles/rddr_services.dir/orchestrator.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/orchestrator.cc.o.d"
  "/root/repo/src/services/rest_service.cc" "src/services/CMakeFiles/rddr_services.dir/rest_service.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/rest_service.cc.o.d"
  "/root/repo/src/services/reverse_proxy.cc" "src/services/CMakeFiles/rddr_services.dir/reverse_proxy.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/reverse_proxy.cc.o.d"
  "/root/repo/src/services/simple_api.cc" "src/services/CMakeFiles/rddr_services.dir/simple_api.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/simple_api.cc.o.d"
  "/root/repo/src/services/static_server.cc" "src/services/CMakeFiles/rddr_services.dir/static_server.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/static_server.cc.o.d"
  "/root/repo/src/services/tcp_proxy.cc" "src/services/CMakeFiles/rddr_services.dir/tcp_proxy.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/tcp_proxy.cc.o.d"
  "/root/repo/src/services/variant_libs.cc" "src/services/CMakeFiles/rddr_services.dir/variant_libs.cc.o" "gcc" "src/services/CMakeFiles/rddr_services.dir/variant_libs.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rddr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/rddr_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/rddr_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/sqldb/CMakeFiles/rddr_sqldb.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
