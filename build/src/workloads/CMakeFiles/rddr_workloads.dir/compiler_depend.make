# Empty compiler generated dependencies file for rddr_workloads.
# This may be replaced when dependencies are built.
