file(REMOVE_RECURSE
  "librddr_workloads.a"
)
