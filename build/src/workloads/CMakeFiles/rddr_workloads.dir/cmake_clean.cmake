file(REMOVE_RECURSE
  "CMakeFiles/rddr_workloads.dir/driver.cc.o"
  "CMakeFiles/rddr_workloads.dir/driver.cc.o.d"
  "CMakeFiles/rddr_workloads.dir/pgbench.cc.o"
  "CMakeFiles/rddr_workloads.dir/pgbench.cc.o.d"
  "CMakeFiles/rddr_workloads.dir/scenarios.cc.o"
  "CMakeFiles/rddr_workloads.dir/scenarios.cc.o.d"
  "CMakeFiles/rddr_workloads.dir/tpch.cc.o"
  "CMakeFiles/rddr_workloads.dir/tpch.cc.o.d"
  "librddr_workloads.a"
  "librddr_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
