# Empty dependencies file for rddr_netsim.
# This may be replaced when dependencies are built.
