file(REMOVE_RECURSE
  "CMakeFiles/rddr_netsim.dir/host.cc.o"
  "CMakeFiles/rddr_netsim.dir/host.cc.o.d"
  "CMakeFiles/rddr_netsim.dir/network.cc.o"
  "CMakeFiles/rddr_netsim.dir/network.cc.o.d"
  "CMakeFiles/rddr_netsim.dir/simulator.cc.o"
  "CMakeFiles/rddr_netsim.dir/simulator.cc.o.d"
  "librddr_netsim.a"
  "librddr_netsim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_netsim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
