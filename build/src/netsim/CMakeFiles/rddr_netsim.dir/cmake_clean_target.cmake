file(REMOVE_RECURSE
  "librddr_netsim.a"
)
