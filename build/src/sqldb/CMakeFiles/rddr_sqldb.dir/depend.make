# Empty dependencies file for rddr_sqldb.
# This may be replaced when dependencies are built.
