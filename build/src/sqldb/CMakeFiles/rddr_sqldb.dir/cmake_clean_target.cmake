file(REMOVE_RECURSE
  "librddr_sqldb.a"
)
