
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sqldb/client.cc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/client.cc.o" "gcc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/client.cc.o.d"
  "/root/repo/src/sqldb/engine.cc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/engine.cc.o" "gcc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/engine.cc.o.d"
  "/root/repo/src/sqldb/lexer.cc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/lexer.cc.o" "gcc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/lexer.cc.o.d"
  "/root/repo/src/sqldb/parser.cc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/parser.cc.o" "gcc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/parser.cc.o.d"
  "/root/repo/src/sqldb/server.cc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/server.cc.o" "gcc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/server.cc.o.d"
  "/root/repo/src/sqldb/value.cc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/value.cc.o" "gcc" "src/sqldb/CMakeFiles/rddr_sqldb.dir/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rddr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/rddr_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/rddr_proto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
