file(REMOVE_RECURSE
  "CMakeFiles/rddr_sqldb.dir/client.cc.o"
  "CMakeFiles/rddr_sqldb.dir/client.cc.o.d"
  "CMakeFiles/rddr_sqldb.dir/engine.cc.o"
  "CMakeFiles/rddr_sqldb.dir/engine.cc.o.d"
  "CMakeFiles/rddr_sqldb.dir/lexer.cc.o"
  "CMakeFiles/rddr_sqldb.dir/lexer.cc.o.d"
  "CMakeFiles/rddr_sqldb.dir/parser.cc.o"
  "CMakeFiles/rddr_sqldb.dir/parser.cc.o.d"
  "CMakeFiles/rddr_sqldb.dir/server.cc.o"
  "CMakeFiles/rddr_sqldb.dir/server.cc.o.d"
  "CMakeFiles/rddr_sqldb.dir/value.cc.o"
  "CMakeFiles/rddr_sqldb.dir/value.cc.o.d"
  "librddr_sqldb.a"
  "librddr_sqldb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_sqldb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
