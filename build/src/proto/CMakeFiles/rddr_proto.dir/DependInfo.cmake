
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/proto/http/coding.cc" "src/proto/CMakeFiles/rddr_proto.dir/http/coding.cc.o" "gcc" "src/proto/CMakeFiles/rddr_proto.dir/http/coding.cc.o.d"
  "/root/repo/src/proto/http/message.cc" "src/proto/CMakeFiles/rddr_proto.dir/http/message.cc.o" "gcc" "src/proto/CMakeFiles/rddr_proto.dir/http/message.cc.o.d"
  "/root/repo/src/proto/http/parser.cc" "src/proto/CMakeFiles/rddr_proto.dir/http/parser.cc.o" "gcc" "src/proto/CMakeFiles/rddr_proto.dir/http/parser.cc.o.d"
  "/root/repo/src/proto/json/json.cc" "src/proto/CMakeFiles/rddr_proto.dir/json/json.cc.o" "gcc" "src/proto/CMakeFiles/rddr_proto.dir/json/json.cc.o.d"
  "/root/repo/src/proto/pgwire/pgwire.cc" "src/proto/CMakeFiles/rddr_proto.dir/pgwire/pgwire.cc.o" "gcc" "src/proto/CMakeFiles/rddr_proto.dir/pgwire/pgwire.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/rddr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
