file(REMOVE_RECURSE
  "CMakeFiles/rddr_proto.dir/http/coding.cc.o"
  "CMakeFiles/rddr_proto.dir/http/coding.cc.o.d"
  "CMakeFiles/rddr_proto.dir/http/message.cc.o"
  "CMakeFiles/rddr_proto.dir/http/message.cc.o.d"
  "CMakeFiles/rddr_proto.dir/http/parser.cc.o"
  "CMakeFiles/rddr_proto.dir/http/parser.cc.o.d"
  "CMakeFiles/rddr_proto.dir/json/json.cc.o"
  "CMakeFiles/rddr_proto.dir/json/json.cc.o.d"
  "CMakeFiles/rddr_proto.dir/pgwire/pgwire.cc.o"
  "CMakeFiles/rddr_proto.dir/pgwire/pgwire.cc.o.d"
  "librddr_proto.a"
  "librddr_proto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_proto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
