file(REMOVE_RECURSE
  "librddr_proto.a"
)
