# Empty dependencies file for rddr_proto.
# This may be replaced when dependencies are built.
