file(REMOVE_RECURSE
  "CMakeFiles/rddr_common.dir/bytes.cc.o"
  "CMakeFiles/rddr_common.dir/bytes.cc.o.d"
  "CMakeFiles/rddr_common.dir/log.cc.o"
  "CMakeFiles/rddr_common.dir/log.cc.o.d"
  "CMakeFiles/rddr_common.dir/rng.cc.o"
  "CMakeFiles/rddr_common.dir/rng.cc.o.d"
  "CMakeFiles/rddr_common.dir/stats.cc.o"
  "CMakeFiles/rddr_common.dir/stats.cc.o.d"
  "CMakeFiles/rddr_common.dir/strutil.cc.o"
  "CMakeFiles/rddr_common.dir/strutil.cc.o.d"
  "librddr_common.a"
  "librddr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rddr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
