# Empty compiler generated dependencies file for rddr_common.
# This may be replaced when dependencies are built.
