file(REMOVE_RECURSE
  "librddr_common.a"
)
