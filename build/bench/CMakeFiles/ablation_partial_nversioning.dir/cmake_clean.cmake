file(REMOVE_RECURSE
  "CMakeFiles/ablation_partial_nversioning.dir/ablation_partial_nversioning.cc.o"
  "CMakeFiles/ablation_partial_nversioning.dir/ablation_partial_nversioning.cc.o.d"
  "ablation_partial_nversioning"
  "ablation_partial_nversioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_partial_nversioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
