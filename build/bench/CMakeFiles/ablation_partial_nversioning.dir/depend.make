# Empty dependencies file for ablation_partial_nversioning.
# This may be replaced when dependencies are built.
