file(REMOVE_RECURSE
  "CMakeFiles/ablation_overhead_vs_n.dir/ablation_overhead_vs_n.cc.o"
  "CMakeFiles/ablation_overhead_vs_n.dir/ablation_overhead_vs_n.cc.o.d"
  "ablation_overhead_vs_n"
  "ablation_overhead_vs_n.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_overhead_vs_n.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
