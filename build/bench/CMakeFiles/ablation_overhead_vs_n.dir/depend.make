# Empty dependencies file for ablation_overhead_vs_n.
# This may be replaced when dependencies are built.
