
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/fig4_tpch_overhead.cc" "bench/CMakeFiles/fig4_tpch_overhead.dir/fig4_tpch_overhead.cc.o" "gcc" "bench/CMakeFiles/fig4_tpch_overhead.dir/fig4_tpch_overhead.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/rddr_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/rddr/CMakeFiles/rddr_core.dir/DependInfo.cmake"
  "/root/repo/build/src/services/CMakeFiles/rddr_services.dir/DependInfo.cmake"
  "/root/repo/build/src/sqldb/CMakeFiles/rddr_sqldb.dir/DependInfo.cmake"
  "/root/repo/build/src/proto/CMakeFiles/rddr_proto.dir/DependInfo.cmake"
  "/root/repo/build/src/netsim/CMakeFiles/rddr_netsim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/rddr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
