file(REMOVE_RECURSE
  "CMakeFiles/fig4_tpch_overhead.dir/fig4_tpch_overhead.cc.o"
  "CMakeFiles/fig4_tpch_overhead.dir/fig4_tpch_overhead.cc.o.d"
  "fig4_tpch_overhead"
  "fig4_tpch_overhead.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_tpch_overhead.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
