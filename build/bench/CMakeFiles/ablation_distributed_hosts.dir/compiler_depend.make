# Empty compiler generated dependencies file for ablation_distributed_hosts.
# This may be replaced when dependencies are built.
