file(REMOVE_RECURSE
  "CMakeFiles/ablation_distributed_hosts.dir/ablation_distributed_hosts.cc.o"
  "CMakeFiles/ablation_distributed_hosts.dir/ablation_distributed_hosts.cc.o.d"
  "ablation_distributed_hosts"
  "ablation_distributed_hosts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_distributed_hosts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
