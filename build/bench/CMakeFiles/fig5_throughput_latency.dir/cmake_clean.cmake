file(REMOVE_RECURSE
  "CMakeFiles/fig5_throughput_latency.dir/fig5_throughput_latency.cc.o"
  "CMakeFiles/fig5_throughput_latency.dir/fig5_throughput_latency.cc.o.d"
  "fig5_throughput_latency"
  "fig5_throughput_latency.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_throughput_latency.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
