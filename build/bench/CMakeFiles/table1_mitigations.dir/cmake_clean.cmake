file(REMOVE_RECURSE
  "CMakeFiles/table1_mitigations.dir/table1_mitigations.cc.o"
  "CMakeFiles/table1_mitigations.dir/table1_mitigations.cc.o.d"
  "table1_mitigations"
  "table1_mitigations.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_mitigations.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
