# Empty dependencies file for table1_mitigations.
# This may be replaced when dependencies are built.
