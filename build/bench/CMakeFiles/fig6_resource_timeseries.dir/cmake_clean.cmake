file(REMOVE_RECURSE
  "CMakeFiles/fig6_resource_timeseries.dir/fig6_resource_timeseries.cc.o"
  "CMakeFiles/fig6_resource_timeseries.dir/fig6_resource_timeseries.cc.o.d"
  "fig6_resource_timeseries"
  "fig6_resource_timeseries.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig6_resource_timeseries.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
