# Empty compiler generated dependencies file for fig6_resource_timeseries.
# This may be replaced when dependencies are built.
