file(REMOVE_RECURSE
  "CMakeFiles/ablation_denoise_csrf.dir/ablation_denoise_csrf.cc.o"
  "CMakeFiles/ablation_denoise_csrf.dir/ablation_denoise_csrf.cc.o.d"
  "ablation_denoise_csrf"
  "ablation_denoise_csrf.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_denoise_csrf.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
