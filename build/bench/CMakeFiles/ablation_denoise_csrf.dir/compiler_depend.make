# Empty compiler generated dependencies file for ablation_denoise_csrf.
# This may be replaced when dependencies are built.
