file(REMOVE_RECURSE
  "CMakeFiles/reverse_proxy_smuggling.dir/reverse_proxy_smuggling.cpp.o"
  "CMakeFiles/reverse_proxy_smuggling.dir/reverse_proxy_smuggling.cpp.o.d"
  "reverse_proxy_smuggling"
  "reverse_proxy_smuggling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/reverse_proxy_smuggling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
