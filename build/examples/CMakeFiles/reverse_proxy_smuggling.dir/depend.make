# Empty dependencies file for reverse_proxy_smuggling.
# This may be replaced when dependencies are built.
