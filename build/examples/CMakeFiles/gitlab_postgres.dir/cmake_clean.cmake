file(REMOVE_RECURSE
  "CMakeFiles/gitlab_postgres.dir/gitlab_postgres.cpp.o"
  "CMakeFiles/gitlab_postgres.dir/gitlab_postgres.cpp.o.d"
  "gitlab_postgres"
  "gitlab_postgres.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gitlab_postgres.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
