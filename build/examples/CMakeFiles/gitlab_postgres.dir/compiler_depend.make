# Empty compiler generated dependencies file for gitlab_postgres.
# This may be replaced when dependencies are built.
