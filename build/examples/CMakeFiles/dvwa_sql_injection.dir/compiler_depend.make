# Empty compiler generated dependencies file for dvwa_sql_injection.
# This may be replaced when dependencies are built.
