file(REMOVE_RECURSE
  "CMakeFiles/dvwa_sql_injection.dir/dvwa_sql_injection.cpp.o"
  "CMakeFiles/dvwa_sql_injection.dir/dvwa_sql_injection.cpp.o.d"
  "dvwa_sql_injection"
  "dvwa_sql_injection.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dvwa_sql_injection.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
