# Empty dependencies file for orchestrated_versions.
# This may be replaced when dependencies are built.
