file(REMOVE_RECURSE
  "CMakeFiles/orchestrated_versions.dir/orchestrated_versions.cpp.o"
  "CMakeFiles/orchestrated_versions.dir/orchestrated_versions.cpp.o.d"
  "orchestrated_versions"
  "orchestrated_versions.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/orchestrated_versions.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
