file(REMOVE_RECURSE
  "CMakeFiles/aslr_echo.dir/aslr_echo.cpp.o"
  "CMakeFiles/aslr_echo.dir/aslr_echo.cpp.o.d"
  "aslr_echo"
  "aslr_echo.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aslr_echo.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
