# Empty dependencies file for aslr_echo.
# This may be replaced when dependencies are built.
