// DVWA SQL-injection walkthrough (paper §V-B).
//
// Builds the paper's deployment by hand so the moving parts are visible:
//
//            client
//              |
//     RDDR incoming proxy  (HTTP plugin, filter pair, CSRF handling)
//        /     |      \
//   dvwa-0  dvwa-1   dvwa-2        <- low / low (filter pair) / high
//        \     |      /
//     RDDR outgoing proxy  (pgwire plugin: diffs the SQL each
//              |            instance sends, forwards ONE copy)
//         minipg backend
//
// Walks through: the CSRF token round trip (ephemeral state, §IV-B3), a
// benign lookup, and the injected request that makes the sanitising
// instance's SQL differ from the filter pair's — caught at the OUTGOING
// proxy before the query ever reaches the database.
#include <cstdio>

#include "common/strutil.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "services/dvwa.h"
#include "services/http_service.h"
#include "sqldb/server.h"

using namespace rddr;

namespace {

struct Reply {
  int status = -1;
  Bytes body;
};

Reply roundtrip(sim::Simulator& simulator, sim::Network& net,
                http::Request req) {
  Reply out;
  services::HttpClient client(net, "browser");
  client.request("dvwa:80", std::move(req), [&](int s, const http::Response* r) {
    out.status = s;
    if (r) out.body = r->body;
  });
  simulator.run_until_idle();
  return out;
}

std::string token_of(const Bytes& page) {
  size_t pos = page.find("name=\"user_token\" value=\"");
  if (pos == Bytes::npos) return "";
  pos += 25;
  return page.substr(pos, page.find('"', pos) - pos);
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  sim::Host host(simulator, "node-1", 16, 16LL << 30);

  // Backend database (external to the frontend, per the paper's setup).
  auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
  {
    sqldb::Session s(*db, "postgres");
    s.execute(
        "CREATE TABLE users (user_id text, first_name text, last_name text);"
        "INSERT INTO users VALUES ('1','Alice','Liddell'),"
        "('2','Bob','Builder'),('3','Charlie','Chaplin');"
        "GRANT SELECT ON users TO dvwa;");
  }
  sqldb::SqlServer::Options so;
  so.address = "dvwa-db:5432";
  sqldb::SqlServer backend(net, host, db, so);

  // Three DVWA frontends: the filter pair runs with NO sanitisation, the
  // diverse member sanitises (quote doubling).
  std::vector<std::unique_ptr<services::DvwaApp>> apps;
  const services::DvwaApp::Security levels[] = {
      services::DvwaApp::Security::kLow, services::DvwaApp::Security::kLow,
      services::DvwaApp::Security::kHigh};
  for (int i = 0; i < 3; ++i) {
    services::DvwaApp::Options o;
    o.address = strformat("dvwa-%d:80", i);
    o.db_address = "dvwa-dbvirt:5432";  // they think this is the DB
    o.security = levels[i];
    o.rng_seed = 1000 + static_cast<uint64_t>(i);
    o.instance_name = strformat("dvwa-%d", i);
    apps.push_back(std::make_unique<services::DvwaApp>(net, host, o));
  }

  // RDDR around them. The outgoing proxy speaks pgwire (not the incoming
  // side's HTTP), so it takes a full Config instead of the inherit form.
  core::OutgoingProxy::Config out;
  out.listen_address = "dvwa-dbvirt:5432";
  out.backend_address = "dvwa-db:5432";
  out.group_size = 3;
  out.plugin = std::make_shared<core::PgPlugin>();
  out.filter_pair = true;
  out.instance_sources = {"dvwa-0", "dvwa-1", "dvwa-2"};
  auto rddr = core::NVersionDeployment::Builder()
                  .listen("dvwa:80")
                  .versions({"dvwa-0:80", "dvwa-1:80", "dvwa-2:80"})
                  .plugin(std::make_shared<core::HttpPlugin>())
                  .filter_pair(true)
                  .backend(out)
                  .build(net, host);

  std::printf("== 1. fetch the SQLi form ==\n");
  http::Request get;
  get.method = "GET";
  get.target = "/vulnerabilities/sqli";
  auto page = roundtrip(simulator, net, std::move(get));
  std::string token = token_of(page.body);
  std::printf("   HTTP %d, CSRF token issued: %s\n", page.status,
              token.c_str());
  std::printf("   (each instance issued a DIFFERENT token; RDDR saved the\n"
              "    mapping and forwarded instance 0's page — §IV-B3)\n");

  std::printf("\n== 2. benign lookup: id=1 ==\n");
  http::Request benign;
  benign.method = "POST";
  benign.target = "/vulnerabilities/sqli";
  benign.headers.set("Content-Type", "application/x-www-form-urlencoded");
  benign.body = "id=1&user_token=" + token + "&Submit=Submit";
  auto ok = roundtrip(simulator, net, std::move(benign));
  std::printf("   HTTP %d, contains Alice: %s, CSRF failures at instances: "
              "%llu/%llu/%llu\n",
              ok.status, ok.body.find("Alice") != Bytes::npos ? "yes" : "no",
              static_cast<unsigned long long>(apps[0]->token_failures()),
              static_cast<unsigned long long>(apps[1]->token_failures()),
              static_cast<unsigned long long>(apps[2]->token_failures()));

  std::printf("\n== 3. the injection: id=' OR '1'='1 ==\n");
  http::Request fresh;
  fresh.method = "GET";
  fresh.target = "/vulnerabilities/sqli";
  auto page2 = roundtrip(simulator, net, std::move(fresh));
  std::string token2 = token_of(page2.body);
  std::printf("   instance 0 would send : %s\n",
              apps[0]->build_query("' OR '1'='1").c_str());
  std::printf("   instance 2 would send : %s\n",
              apps[2]->build_query("' OR '1'='1").c_str());
  http::Request attack;
  attack.method = "POST";
  attack.target = "/vulnerabilities/sqli";
  attack.headers.set("Content-Type", "application/x-www-form-urlencoded");
  attack.body = "id=" + url_encode("' OR '1'='1") + "&user_token=" + token2 +
                "&Submit=Submit";
  auto blocked = roundtrip(simulator, net, std::move(attack));
  std::printf("   HTTP %d, leaked other users: %s\n", blocked.status,
              (blocked.body.find("Bob") != Bytes::npos ||
               blocked.body.find("Charlie") != Bytes::npos)
                  ? "YES (bad!)"
                  : "no");

  std::printf("\n== RDDR interventions ==\n");
  for (const auto& ev : rddr->bus().events())
    std::printf("   [%s] %s\n", ev.proxy.c_str(), ev.reason.c_str());
  std::printf("\nThe divergence was detected at the OUTGOING proxy — the\n"
              "malicious query never reached the database (backend served "
              "%llu queries total).\n",
              static_cast<unsigned long long>(backend.queries_served()));
  return 0;
}
