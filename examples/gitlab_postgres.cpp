// GitLab case study (paper §V-F, Figure 3): N-versioning ONE microservice
// (Postgres) inside a nine-container application.
//
// Demonstrates the paper's scalability argument — only the critical
// containers are replicated — and reproduces CVE-2019-10130: a
// row-level-security bypass in minipg 10.7's selectivity estimation,
// detected because the 10.9 instance's responses diverge.
#include <cstdio>

#include "common/strutil.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "services/gitlab.h"
#include "services/http_service.h"
#include "sqldb/client.h"
#include "sqldb/server.h"

using namespace rddr;

int main() {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  sim::Host host(simulator, "node-1", 32, 64LL << 30);

  // --- the N-versioned database tier: 10.7 / 10.7 / 10.9 -----------------
  const char* versions[] = {"10.7", "10.7", "10.9"};
  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  for (int i = 0; i < 3; ++i) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info(versions[i]));
    services::GitlabApp::init_schema(*db);
    sqldb::Session s(*db, "postgres");
    s.execute(
        "CREATE TABLE protected_rows (col_to_leak int, owner_name text);"
        "INSERT INTO protected_rows VALUES (11,'alice'),(22,'mallory'),"
        "(33,'alice');"
        "GRANT SELECT ON protected_rows TO mallory;"
        "ALTER TABLE protected_rows ENABLE ROW LEVEL SECURITY;"
        "CREATE POLICY own ON protected_rows USING "
        "(owner_name = current_user);");
    sqldb::SqlServer::Options so;
    so.address = strformat("gitlab-pg-%d:5432", i);
    so.rng_seed = 500 + static_cast<uint64_t>(i);
    dbs.push_back(db);
    servers.push_back(std::make_unique<sqldb::SqlServer>(net, host, db, so));
  }

  auto rddr = core::NVersionDeployment::Builder()
                  .name("gitlab-db")
                  .listen("gitlab-db:5432")
                  .versions({"gitlab-pg-0:5432", "gitlab-pg-1:5432",
                             "gitlab-pg-2:5432"})
                  .plugin(std::make_shared<core::PgPlugin>())  // server_version
                  .filter_pair(true)  // 10.7/10.7 is benign variance
                  .build(net, host);

  // --- the rest of GitLab, unmodified except for its DB address ----------
  services::GitlabApp::Options gopts;
  gopts.db_address = "gitlab-db:5432";
  services::GitlabApp gitlab(net, host, gopts);
  std::printf("deployment: %zu GitLab containers + 3 DB replicas + 1 RDDR "
              "proxy (paper: 1 of 9 services replicated => ~33%% overhead)\n",
              gitlab.container_count());

  // --- benign traffic through the whole stack ----------------------------
  auto browse = [&](const char* what, const std::string& target) {
    int status = -1;
    Bytes body;
    services::HttpClient client(net, "browser");
    client.get("gitlab:80", target, [&](int s, const http::Response* r) {
      status = s;
      if (r) body = r->body;
    });
    simulator.run_until_idle();
    std::printf("  %-22s -> HTTP %d (%zu bytes)\n", what, status, body.size());
  };
  std::printf("\n== benign traffic (ingress -> workhorse -> puma -> RDDR -> "
              "3x minipg) ==\n");
  browse("GET /projects", "/projects");
  browse("GET /health", "/health");
  simulator.run_until(simulator.now() + 2 * sim::kSecond);  // sidekiq jobs
  gitlab.stop_sidekiq();
  simulator.run_until_idle();
  std::printf("  sidekiq background jobs: %llu ran, %llu failed\n",
              static_cast<unsigned long long>(gitlab.sidekiq_jobs_run()),
              static_cast<unsigned long long>(gitlab.sidekiq_job_failures()));

  // --- the exploit (Listing 2), via an assumed SQL injection -------------
  std::printf("\n== CVE-2019-10130 exploit from a neighbouring container ==\n");
  auto attack = [&](const char* sql) {
    sqldb::QueryOutcome out;
    sqldb::PgClient attacker(net, "compromised-svc", "gitlab-db:5432",
                             "mallory");
    attacker.query(sql, [&](sqldb::QueryOutcome o) { out = std::move(o); });
    simulator.run_until_idle();
    std::printf("  %-30.30s -> %s", sql,
                out.connection_lost
                    ? "CONNECTION ABORTED by RDDR"
                    : (out.error_sqlstate ? out.error_message.c_str() : "ok"));
    int leaks = 0;
    for (const auto& n : out.notices)
      if (n.find("leak") != std::string::npos) ++leaks;
    std::printf("  (leak notices reaching attacker: %d)\n", leaks);
  };
  attack("CREATE FUNCTION op_leak(int, int) RETURNS bool AS 'BEGIN RAISE "
         "NOTICE ''leak %, %'', $1, $2; RETURN $1 < $2; END' LANGUAGE "
         "plpgsql;");
  attack("CREATE OPERATOR <<< (procedure=op_leak, leftarg=int, rightarg=int, "
         "restrict=scalarltsel);");
  attack("SELECT * FROM protected_rows WHERE col_to_leak <<< 1000;");

  std::printf("\n== interventions ==\n");
  for (const auto& ev : rddr->bus().events())
    std::printf("  [%s] %s\n", ev.proxy.c_str(), ev.reason.c_str());

  // GitLab still works afterwards.
  std::printf("\n== GitLab after the intervention ==\n");
  browse("GET /projects", "/projects");
  return 0;
}
