// Reverse-proxy diversity against request smuggling (paper §V-C1,
// CVE-2019-18277).
//
// hap (HAProxy 1.5.3 flavour) and ngx are deployed as diverse
// implementations of the same reverse proxy, with RDDR's incoming proxy in
// front and its outgoing proxy between the pair and the internal API
// service S1. The smuggled "GET /admin" rides inside a POST body that hap
// frames with Content-Length while S1 frames it as chunked; ngx refuses
// the ambiguous request outright, and the disagreement is RDDR's signal.
#include <cstdio>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "services/http_service.h"
#include "services/reverse_proxy.h"
#include "services/simple_api.h"

using namespace rddr;

namespace {
constexpr char kSmuggle[] =
    "POST / HTTP/1.1\r\n"
    "Host: edge\r\n"
    "Content-Length: 38\r\n"
    "Transfer-Encoding: \x0b"
    "chunked\r\n"
    "\r\n"
    "0\r\n\r\nGET /admin HTTP/1.1\r\nHost: s1\r\n\r\n";
}

int main() {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  sim::Host host(simulator, "node-1", 16, 16LL << 30);

  services::SimpleApiService::Options api;
  api.address = "s1-real:80";
  services::SimpleApiService s1(net, host, api);

  services::ReverseProxy::Options hap_o;
  hap_o.address = "proxy-0:80";
  hap_o.backend_address = "s1:80";  // both proxies dial the outgoing proxy
  hap_o.flavor = services::ReverseProxy::Flavor::kHap153;
  hap_o.instance_name = "hap";
  services::ReverseProxy hap(net, host, hap_o);

  services::ReverseProxy::Options ngx_o = hap_o;
  ngx_o.address = "proxy-1:80";
  ngx_o.flavor = services::ReverseProxy::Flavor::kNgx;
  ngx_o.instance_name = "ngx";
  services::ReverseProxy ngx(net, host, ngx_o);

  // The outgoing proxy needs a wider group window than the default, so it
  // takes a full Config instead of the inherit form.
  core::OutgoingProxy::Config out;
  out.listen_address = "s1:80";
  out.backend_address = "s1-real:80";
  out.group_size = 2;
  out.plugin = std::make_shared<core::HttpPlugin>();
  out.group_window = 50 * sim::kMillisecond;
  auto rddr = core::NVersionDeployment::Builder()
                  .listen("edge:80")
                  .versions({"proxy-0:80", "proxy-1:80"})
                  .plugin(std::make_shared<core::HttpPlugin>())
                  .backend(out)
                  .build(net, host);
  std::printf(
      "Setup note: the paper reports adding ngx as the diverse proxy took\n"
      "174 lines of configuration and about an hour (§V-C1); here it is the\n"
      "~8 lines above that clone hap's options with a different flavor.\n\n");

  std::printf("== benign request through both proxies (merged at the "
              "outgoing proxy) ==\n");
  {
    int status = -1;
    Bytes body;
    services::HttpClient client(net, "browser");
    http::Request req;
    req.method = "POST";
    req.target = "/api/echo";
    req.body = "ping";
    client.request("edge:80", std::move(req), [&](int s, const http::Response* r) {
      status = s;
      if (r) body = r->body;
    });
    simulator.run_until_idle();
    std::printf("  POST /api/echo -> HTTP %d: %s\n", status, body.c_str());
  }

  std::printf("\n== the smuggling payload ==\n");
  {
    auto conn = net.connect("edge:80", {.source = "attacker"});
    Bytes got;
    bool closed = false;
    conn->set_on_data([&](ByteView d) { got += Bytes(d); });
    conn->set_on_close([&] { closed = true; });
    conn->send(ByteView(kSmuggle, sizeof(kSmuggle) - 1));
    simulator.run_until_idle();
    std::printf("  connection closed: %s\n", closed ? "yes" : "no");
    std::printf("  admin secret leaked to attacker: %s\n",
                got.find("SECRET-ADMIN-TOKEN") != Bytes::npos ? "YES (bad!)"
                                                              : "no");
    std::printf("  /admin invocations at S1: %llu\n",
                static_cast<unsigned long long>(s1.admin_hits()));
  }

  std::printf("\n== interventions ==\n");
  for (const auto& ev : rddr->bus().events())
    std::printf("  [%s] %s\n", ev.proxy.c_str(), ev.reason.c_str());
  return 0;
}
