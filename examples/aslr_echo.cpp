// OS-generated diversity: ASLR pointer-leak POC (paper §V-E).
//
// Two copies of the same vulnerable echo binary run with randomized
// address spaces behind RDDR's raw-TCP plugin. A buffer overflow makes
// each instance leak the pointer adjacent to its buffer; because the
// address spaces differ, the leaks differ, and RDDR terminates the
// connection at step (1) of the exploit chain. The example also runs the
// ablation: with ASLR off, both leaks are identical and RDDR sees nothing.
#include <cstdio>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "services/echo_vuln.h"

using namespace rddr;

namespace {

void run_deployment(bool aslr) {
  sim::Simulator simulator;
  sim::Network net(simulator, 20 * sim::kMicrosecond);
  sim::Host host(simulator, "node-1", 4, 4LL << 30);

  services::EchoVulnServer::Options o0, o1;
  o0.address = "echo-0:7";
  o0.aslr = aslr;
  o0.rng_seed = 1;
  o1.address = "echo-1:7";
  o1.aslr = aslr;
  o1.rng_seed = 2;
  services::EchoVulnServer e0(net, host, o0);
  services::EchoVulnServer e1(net, host, o1);
  std::printf("  instance address spaces: 0x%016llx / 0x%016llx\n",
              static_cast<unsigned long long>(e0.leaked_pointer()),
              static_cast<unsigned long long>(e1.leaked_pointer()));

  auto rddr = core::NVersionDeployment::Builder()
                  .name("aslr-echo")
                  .listen("echo:7")
                  .versions({"echo-0:7", "echo-1:7"})
                  .plugin(std::make_shared<core::TcpLinePlugin>())
                  .build(net, host);

  auto send = [&](const char* label, const Bytes& payload) {
    auto conn = net.connect("echo:7", {.source = "attacker"});
    Bytes got;
    bool closed = false;
    conn->set_on_data([&](ByteView d) { got += Bytes(d); });
    conn->set_on_close([&] { closed = true; });
    conn->send(payload);
    simulator.run_until_idle();
    std::printf("  %-22s -> %s%s\n", label,
                got.empty() ? "(connection closed, nothing returned)"
                            : got.substr(0, 60).c_str(),
                closed && !got.empty() ? " [closed]" : "");
  };

  send("benign echo", "hello from the paper\n");
  send("overflow (exploit)", Bytes(80, 'A') + "\n");
  std::printf("  interventions: %zu\n", rddr->bus().count());
}

}  // namespace

int main() {
  std::printf("== with ASLR: address spaces differ, the leak diverges ==\n");
  run_deployment(true);
  std::printf("\n== without ASLR (ablation): identical leak, RDDR is blind "
              "— the diversity IS the defence ==\n");
  run_deployment(false);
  return 0;
}
