// Quickstart: N-version a microservice with RDDR in ~50 lines of setup.
//
// We deploy two diverse implementations of a markdown-rendering REST
// service (the paper's §V-A library-diversity pattern), put the RDDR
// incoming proxy in front of them, and show that
//   * benign requests flow through untouched, and
//   * an XSS exploit that only one implementation mishandles is blocked
//     before the malicious bytes reach the client.
//
// Everything runs on the deterministic network simulator, so the output
// is identical on every run.
#include <cstdio>

#include "netsim/host.h"
#include "netsim/network.h"
#include "proto/json/json.h"
#include "rddr/divergence.h"
#include "rddr/incoming_proxy.h"
#include "rddr/plugins.h"
#include "services/http_service.h"
#include "services/rest_service.h"

using namespace rddr;

int main() {
  // --- the world: one simulated machine with a network -------------------
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  sim::Host host(simulator, "node-1", /*cores=*/8, /*memory=*/8LL << 30);

  // --- two diverse instances of the same service -------------------------
  services::RestLibraryService::Options a, b;
  a.address = "render-0:80";
  a.kind = services::RestLibraryService::Kind::kMarkdown;
  a.library = "mdtwo";  // vulnerable to CVE-2020-11888-style XSS
  b.address = "render-1:80";
  b.kind = services::RestLibraryService::Kind::kMarkdown;
  b.library = "mdone";  // independent implementation, not vulnerable
  services::RestLibraryService instance0(net, host, a);
  services::RestLibraryService instance1(net, host, b);

  // --- RDDR: replicate, de-noise, diff, respond --------------------------
  core::IncomingProxy::Config cfg;
  cfg.listen_address = "render:80";  // the address clients use
  cfg.instance_addresses = {"render-0:80", "render-1:80"};
  cfg.plugin = std::make_shared<core::HttpPlugin>();
  core::DivergenceBus bus(simulator);
  core::IncomingProxy rddr(net, host, cfg, &bus);

  // --- a client ----------------------------------------------------------
  auto render = [&](const char* label, const std::string& markdown) {
    http::Request req;
    req.method = "POST";
    req.target = "/render";
    req.headers.set("Content-Type", "application/json");
    req.body = json::Value(json::Object{{"markdown", markdown}}).dump();
    int status = -1;
    Bytes body;
    services::HttpClient client(net, "quickstart-client");
    client.request("render:80", std::move(req),
                   [&](int s, const http::Response* r) {
                     status = s;
                     if (r) body = r->body;
                   });
    simulator.run_until_idle();
    std::printf("%-8s -> HTTP %d  %s\n", label, status,
                body.substr(0, 100).c_str());
  };

  std::printf("== benign request ==\n");
  render("benign", "# Hello\n**RDDR** [docs](https://example.com)");

  std::printf("\n== exploit request (javascript: URL hidden behind a "
              "control character) ==\n");
  render("exploit", "[click me](java\x0bscript:alert(1))");

  std::printf("\nRDDR interventions: %zu\n", bus.count());
  for (const auto& ev : bus.events())
    std::printf("  t=%.3fms  %s: %s\n", sim::to_seconds(ev.time) * 1e3,
                ev.proxy.c_str(), ev.reason.c_str());
  return 0;
}
