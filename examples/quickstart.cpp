// Quickstart: N-version a microservice with RDDR in ~50 lines of setup.
//
// We deploy two diverse implementations of a markdown-rendering REST
// service (the paper's §V-A library-diversity pattern), put the RDDR
// incoming proxy in front of them, and show that
//   * benign requests flow through untouched, and
//   * an XSS exploit that only one implementation mishandles is blocked
//     before the malicious bytes reach the client.
//
// Everything runs on the deterministic network simulator, so the output
// is identical on every run — including the trace: the run is recorded
// with obs::Tracer and written to quickstart_trace.json, which loads in
// chrome://tracing (or https://ui.perfetto.dev) and shows the exploit
// request's diff span ending in an intervention.
#include <cstdio>

#include "netsim/host.h"
#include "netsim/network.h"
#include "obs/trace.h"
#include "proto/json/json.h"
#include "rddr/rddr.h"
#include "services/http_service.h"
#include "services/rest_service.h"

using namespace rddr;

int main() {
  // --- the world: one simulated machine with a network -------------------
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  sim::Host host(simulator, "node-1", /*cores=*/8, /*memory=*/8LL << 30);

  // --- two diverse instances of the same service -------------------------
  services::RestLibraryService::Options a, b;
  a.address = "render-0:80";
  a.kind = services::RestLibraryService::Kind::kMarkdown;
  a.library = "mdtwo";  // vulnerable to CVE-2020-11888-style XSS
  b.address = "render-1:80";
  b.kind = services::RestLibraryService::Kind::kMarkdown;
  b.library = "mdone";  // independent implementation, not vulnerable
  services::RestLibraryService instance0(net, host, a);
  services::RestLibraryService instance1(net, host, b);

  // --- RDDR: replicate, de-noise, diff, respond --------------------------
  obs::Tracer tracer([&simulator] { return simulator.now(); }, 7);
  auto rddr = core::NVersionDeployment::Builder()
                  .listen("render:80")  // the address clients use
                  .versions({"render-0:80", "render-1:80"})
                  .plugin(std::make_shared<core::HttpPlugin>())
                  .trace(&tracer)
                  .build(net, host);

  // --- a client ----------------------------------------------------------
  auto render = [&](const char* label, const std::string& markdown) {
    http::Request req;
    req.method = "POST";
    req.target = "/render";
    req.headers.set("Content-Type", "application/json");
    req.body = json::Value(json::Object{{"markdown", markdown}}).dump();
    int status = -1;
    Bytes body;
    services::HttpClient client(net, "quickstart-client");
    client.request("render:80", std::move(req),
                   [&](int s, const http::Response* r) {
                     status = s;
                     if (r) body = r->body;
                   });
    simulator.run_until_idle();
    std::printf("%-8s -> HTTP %d  %s\n", label, status,
                body.substr(0, 100).c_str());
  };

  std::printf("== benign request ==\n");
  render("benign", "# Hello\n**RDDR** [docs](https://example.com)");

  std::printf("\n== exploit request (javascript: URL hidden behind a "
              "control character) ==\n");
  render("exploit", "[click me](java\x0bscript:alert(1))");

  std::printf("\nRDDR interventions: %zu\n", rddr->bus().count());
  for (const auto& ev : rddr->bus().events())
    std::printf("  t=%.3fms  %s: %s\n", sim::to_seconds(ev.time) * 1e3,
                ev.proxy.c_str(), ev.reason.c_str());

  // The whole run was traced; open the file in chrome://tracing and look
  // for the diff span whose verdict tag says "divergent".
  std::string trace = tracer.export_chrome();
  if (std::FILE* f = std::fopen("quickstart_trace.json", "w")) {
    std::fwrite(trace.data(), 1, trace.size(), f);
    std::fclose(f);
    std::printf("\nwrote quickstart_trace.json (%zu spans)\n",
                tracer.spans().size());
  }
  return 0;
}
