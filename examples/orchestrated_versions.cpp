// Version diversity via the orchestrator (paper §V-D).
//
// "N-versioned deployments of multiple versions are straightforward to
// deploy because of the way that containerized platforms like Docker
// handle versioning ... the deployed version can be changed by simply
// changing the specified version tag."
//
// This example registers a wsgx (nginx-like) image with the mini
// orchestrator and deploys the paper's CVE-2017-7529 configuration purely
// by listing tags: {"1.13.2", "1.13.2", "1.13.4"} — the filter pair runs
// the currently-deployed version, the third instance the patched one.
#include <cstdio>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "services/http_service.h"
#include "services/orchestrator.h"
#include "services/static_server.h"

using namespace rddr;

int main() {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  services::Orchestrator orch(simulator, net);
  orch.add_host("worker-1", 16, 32LL << 30);

  // Register the image once; the TAG selects the build.
  orch.register_image("wsgx", [&](const services::ContainerSpec& spec) {
    services::StaticFileServer::Options o;
    o.address = spec.address;
    o.version = spec.tag;
    auto server = std::make_shared<services::StaticFileServer>(
        net, *spec.host, o);
    server->add_document("/index.html",
                         "<html><body>hello from wsgx</body></html>");
    return server;
  });

  // The paper's deployment, expressed as tags.
  auto addresses =
      orch.deploy_replicas("web", "wsgx", {"1.13.2", "1.13.2", "1.13.4"},
                           "worker-1", 80);
  std::printf("deployed %zu containers:", orch.container_count());
  for (const auto& name : orch.container_names())
    std::printf(" %s", name.c_str());
  std::printf("\n\n");

  // "Server" header differs per version: run the filter pair so it counts
  // as known variance instead of a divergence.
  auto rddr = core::NVersionDeployment::Builder()
                  .listen("web:80")
                  .versions(addresses)
                  .plugin(std::make_shared<core::HttpPlugin>())
                  .filter_pair()
                  .build(net, orch.host("worker-1"));

  auto fetch = [&](const char* label, const char* range) {
    http::Request req;
    req.method = "GET";
    req.target = "/index.html";
    if (range) req.headers.set("Range", range);
    int status = -1;
    Bytes body;
    services::HttpClient client(net, "browser");
    client.request("web:80", std::move(req),
                   [&](int s, const http::Response* r) {
                     status = s;
                     if (r) body = r->body;
                   });
    simulator.run_until_idle();
    std::printf("  %-28s -> HTTP %d (%zu bytes)%s\n", label, status,
                body.size(),
                body.find("cache-secret") != Bytes::npos ? "  LEAKED!" : "");
  };

  std::printf("== benign traffic (responses identical across versions; the "
              "differing Server: header is configured known variance) ==\n");
  fetch("GET (full)", nullptr);
  fetch("GET Range: bytes=0-9", "bytes=0-9");
  fetch("GET Range: bytes=-10", "bytes=-10");

  std::printf("\n== CVE-2017-7529: oversized suffix range overflows the "
              "1.13.2 pair's arithmetic ==\n");
  fetch("GET Range: bytes=-9000", "bytes=-9000");

  std::printf("\ninterventions: %zu\n", rddr->bus().count());
  for (const auto& ev : rddr->bus().events())
    std::printf("  %s\n", ev.reason.c_str());

  std::printf("\nRolling the deployment forward is one line: deploy tags "
              "{\"1.13.4\", \"1.13.4\", \"1.13.5\"} instead.\n");
  return 0;
}
