// Durable-storage benchmark (not a paper figure; committed as
// BENCH_storage.json).
//
// Measures the three quantities the storage engine's recovery path is
// designed around, all on the deterministic simulator (virtual-time
// numbers are machine-independent; wall times are informational):
//
//  * cold-start redo: modeled recovery time (root + page reads + WAL
//    replay) of a crashed replica as the un-checkpointed WAL tail grows;
//  * buffer-pool hit rate: point-query workload under shrinking frame
//    budgets (the fig6 cache-pressure knob);
//  * incremental vs full resync: bytes shipped to top up a peer that is
//    one statement behind on a ~1%-dirty database — page-mode delta vs a
//    full snapshot, plus the WAL-tail delta for the same gap.
//
// Self-checks (exit nonzero on failure, both modes):
//  * same seed ⇒ byte-identical recovery trace and recovered snapshot;
//  * the 1%-dirty page delta is >10x smaller than the full snapshot;
//  * recovery reproduces the pre-crash snapshot exactly.
//
// --smoke: reduced sizes, checks only, no JSON — the regression gate
// wired into bench/run_benches.sh --smoke and tests/run_sanitized.sh.
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/strutil.h"
#include "netsim/block_device.h"
#include "netsim/simulator.h"
#include "sqldb/engine.h"
#include "sqldb/snapshot.h"
#include "sqldb/storage/storage_engine.h"
#include "workloads/pgbench.h"

using namespace rddr;
using sqldb::storage::StorageEngine;
using sqldb::storage::StorageOptions;

namespace {

double wall_ms(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}

/// A durable replica: engine + database over its own devices, with the
/// statement hooks a SqlServer would drive.
struct Replica {
  sim::Simulator sim;
  std::shared_ptr<sim::BlockDevice> data;
  std::shared_ptr<sim::BlockDevice> wal;
  std::unique_ptr<sqldb::Database> db;
  std::unique_ptr<StorageEngine> engine;

  Replica(int accounts, StorageOptions opts, uint64_t seed) {
    sim::BlockDevice::Options dev;
    dev.rng_seed = seed;
    data = std::make_shared<sim::BlockDevice>(dev);
    dev.rng_seed = seed + 1;
    wal = std::make_shared<sim::BlockDevice>(dev);
    db = std::make_unique<sqldb::Database>(sqldb::minipg_info("13.0"));
    workloads::load_pgbench(*db, accounts, /*seed=*/9);
    engine = std::make_unique<StorageEngine>(sim, data, wal, opts);
    engine->bootstrap(*db, /*lineage_seed=*/seed);
    sim.run_until_idle();  // initial checkpoint
  }

  sim::Time exec(const std::string& sql) {
    engine->begin_statement();
    sqldb::Session s(*db, "postgres");
    s.execute(sql);
    return engine->end_statement("postgres", sql);
  }

  /// Crash + cold start: devices keep their durable image, a fresh engine
  /// rebuilds a fresh database from it.
  StorageEngine::RecoveryResult crash_and_recover(StorageOptions opts) {
    engine.reset();
    data->crash();
    wal->crash();
    db = std::make_unique<sqldb::Database>(sqldb::minipg_info("13.0"));
    engine = std::make_unique<StorageEngine>(sim, data, wal, opts);
    return engine->recover(*db);
  }
};

int g_failures = 0;

void check(bool ok, const char* what) {
  if (ok) return;
  std::fprintf(stderr, "storage_recovery CHECK FAILED: %s\n", what);
  g_failures++;
}

// ---- cold-start redo ---------------------------------------------------

struct ColdStart {
  size_t wal_tail = 0;
  double recovery_io_ms = 0;  // virtual time: machine-independent
  uint64_t pages_read = 0;
  uint64_t wal_records_replayed = 0;
  double wall_ms = 0;
  std::string trace;
  std::string snapshot;
};

ColdStart cold_start(int accounts, size_t wal_tail, uint64_t seed) {
  StorageOptions opts;
  opts.checkpoint_every_records = 1u << 30;  // only explicit checkpoints
  Replica r(accounts, opts, seed);
  Rng rng(seed);
  for (size_t i = 0; i < wal_tail; ++i)
    r.exec(strformat(
        "UPDATE pgbench_accounts SET abalance = abalance + 1 WHERE aid = %lld",
        static_cast<long long>(rng.uniform(1, accounts))));
  std::string before = snapshot_database(*r.db);

  auto t0 = std::chrono::steady_clock::now();
  auto rec = r.crash_and_recover(opts);
  ColdStart out;
  out.wall_ms = wall_ms(t0);
  check(rec.ok, "cold-start recovery succeeded");
  check(snapshot_database(*r.db) == before,
        "recovery reproduces the pre-crash snapshot");
  out.wal_tail = wal_tail;
  out.recovery_io_ms = static_cast<double>(rec.io_time) / sim::kMillisecond;
  out.pages_read = rec.pages_read;
  out.wal_records_replayed = rec.wal_records_replayed;
  out.trace = rec.trace;
  out.snapshot = snapshot_database(*r.db);
  return out;
}

// ---- buffer-pool hit rate ----------------------------------------------

struct PoolPoint {
  uint64_t frame_budget = 0;
  double hit_rate = 0;
  double avg_io_us_per_query = 0;
};

PoolPoint pool_point(int accounts, uint64_t budget, size_t queries) {
  StorageOptions opts;
  opts.frame_budget = budget;
  opts.checkpoint_every_records = 1u << 30;
  Replica r(accounts, opts, /*seed=*/21);
  Rng rng(33);
  sim::Time io = 0;
  for (size_t i = 0; i < queries; ++i)
    io += r.exec(strformat(
        "SELECT abalance FROM pgbench_accounts WHERE aid = %lld",
        static_cast<long long>(rng.uniform(1, accounts))));
  PoolPoint p;
  p.frame_budget = budget;
  p.hit_rate = r.engine->pool().hit_rate();
  p.avg_io_us_per_query = static_cast<double>(io) / sim::kMicrosecond /
                          static_cast<double>(queries);
  return p;
}

// ---- incremental vs full resync ----------------------------------------

struct ResyncPoint {
  size_t rows = 0;
  uint64_t full_snapshot_bytes = 0;
  uint64_t delta_pages_bytes = 0;
  uint64_t pages_shipped = 0;
  uint64_t delta_wal_bytes = 0;
  double ratio = 0;
};

ResyncPoint resync_point(int accounts, int dirty_statements) {
  // Two replicas of one lineage; A runs ahead while B is down. Page mode
  // is forced for the page-vs-snapshot number by truncating A's WAL.
  StorageOptions opts;
  opts.checkpoint_every_records = 1u << 30;
  Replica a(accounts, opts, /*seed=*/5);
  Replica b(accounts, opts, /*seed=*/5);
  for (int i = 0; i < dirty_statements; ++i)
    a.exec(strformat(
        "UPDATE pgbench_accounts SET abalance = abalance + 1 WHERE aid = %d",
        i * 64 + 1));  // one statement per page: dirty pages == statements

  ResyncPoint out;
  out.rows = a.db->find_table("pgbench_accounts")->rows.size();
  out.full_snapshot_bytes = snapshot_database(*a.db).size();

  StorageEngine::DeltaStats wal_stats;
  auto wal_delta = a.engine->build_delta(b.engine->committed_lsn(),
                                         b.engine->lineage_id(), &wal_stats);
  check(wal_delta.has_value() && std::strcmp(wal_stats.mode, "wal") == 0,
        "WAL-tail delta available while the tail is retained");
  out.delta_wal_bytes = wal_stats.bytes;

  StorageOptions trunc = opts;
  trunc.wal_keep_records = 0;
  a.engine.reset();
  a.engine = std::make_unique<StorageEngine>(a.sim, a.data, a.wal, trunc);
  auto rec = a.engine->recover(*a.db);
  check(rec.ok, "source replica re-opens for page-mode delta");
  a.engine->force_checkpoint();
  a.sim.run_until_idle();  // checkpoint truncates the WAL past B's LSN

  StorageEngine::DeltaStats page_stats;
  auto page_delta = a.engine->build_delta(b.engine->committed_lsn(),
                                          b.engine->lineage_id(), &page_stats);
  check(page_delta.has_value() && std::strcmp(page_stats.mode, "pages") == 0,
        "page-mode delta after the WAL tail is gone");
  if (page_delta) {
    StorageEngine::DeltaStats applied;
    std::string err;
    check(b.engine->apply_delta(*page_delta, &applied, &err),
          "page-mode delta applies");
    check(snapshot_database(*b.db) == snapshot_database(*a.db),
          "delta-warmed replica matches the source");
    out.delta_pages_bytes = page_stats.bytes;
    out.pages_shipped = page_stats.pages_shipped;
    out.ratio = static_cast<double>(page_stats.bytes) /
                static_cast<double>(out.full_snapshot_bytes);
  }
  return out;
}

int run(bool smoke) {
  const int accounts = smoke ? 3200 : 12800;  // 50 / 200 pages
  // Enough queries that compulsory (first-touch) misses cannot drag an
  // all-resident pool below the 0.9 hit-rate floor.
  const size_t pool_queries = smoke ? 1500 : 4000;

  // Cold-start redo, twice at the largest tail for the determinism check.
  std::vector<ColdStart> cold;
  for (size_t tail : smoke ? std::vector<size_t>{128}
                           : std::vector<size_t>{0, 256, 1024})
    cold.push_back(cold_start(accounts, tail, /*seed=*/11));
  ColdStart rerun = cold_start(accounts, cold.back().wal_tail, /*seed=*/11);
  check(rerun.trace == cold.back().trace,
        "same seed gives a byte-identical recovery trace");
  check(rerun.snapshot == cold.back().snapshot,
        "same seed gives a byte-identical recovered snapshot");

  std::vector<PoolPoint> pool;
  for (uint64_t budget : smoke ? std::vector<uint64_t>{16, 512}
                               : std::vector<uint64_t>{16, 64, 256, 512})
    pool.push_back(pool_point(accounts, budget, pool_queries));
  check(pool.front().hit_rate < pool.back().hit_rate,
        "hit rate rises with the frame budget");
  check(pool.back().hit_rate > 0.9,
        "an over-provisioned pool serves mostly hits");

  // ~1% dirty: one statement per page on a 50/200-page table.
  ResyncPoint resync = resync_point(accounts, accounts / 6400 + 1);
  check(resync.delta_pages_bytes * 10 < resync.full_snapshot_bytes,
        "1%-dirty page delta is >10x smaller than a full snapshot");
  check(resync.delta_wal_bytes * 10 < resync.full_snapshot_bytes,
        "WAL-tail delta is >10x smaller than a full snapshot");

  if (g_failures) {
    std::fprintf(stderr, "storage_recovery: %d check(s) FAILED\n", g_failures);
    return 1;
  }
  if (smoke) {
    std::printf("{\"smoke\": {\"cold_start_io_ms\": %.3f, "
                "\"delta_ratio\": %.4f, \"checks\": \"ok\"}}\n",
                cold.back().recovery_io_ms, resync.ratio);
    return 0;
  }

  std::printf("{\n  \"cold_start\": [\n");
  for (size_t i = 0; i < cold.size(); ++i)
    std::printf("    {\"wal_tail\": %zu, \"recovery_io_ms\": %.3f, "
                "\"pages_read\": %llu, \"wal_records_replayed\": %llu, "
                "\"wall_ms\": %.2f}%s\n",
                cold[i].wal_tail, cold[i].recovery_io_ms,
                static_cast<unsigned long long>(cold[i].pages_read),
                static_cast<unsigned long long>(cold[i].wal_records_replayed),
                cold[i].wall_ms, i + 1 < cold.size() ? "," : "");
  std::printf("  ],\n  \"buffer_pool\": [\n");
  for (size_t i = 0; i < pool.size(); ++i)
    std::printf("    {\"frame_budget\": %llu, \"hit_rate\": %.4f, "
                "\"avg_io_us_per_query\": %.2f}%s\n",
                static_cast<unsigned long long>(pool[i].frame_budget),
                pool[i].hit_rate, pool[i].avg_io_us_per_query,
                i + 1 < pool.size() ? "," : "");
  std::printf(
      "  ],\n"
      "  \"resync_1pct_dirty\": {\"rows\": %zu, "
      "\"full_snapshot_bytes\": %llu, \"delta_pages_bytes\": %llu, "
      "\"pages_shipped\": %llu, \"delta_wal_bytes\": %llu, "
      "\"ratio\": %.4f},\n"
      "  \"checks\": \"ok\"\n}\n",
      resync.rows,
      static_cast<unsigned long long>(resync.full_snapshot_bytes),
      static_cast<unsigned long long>(resync.delta_pages_bytes),
      static_cast<unsigned long long>(resync.pages_shipped),
      static_cast<unsigned long long>(resync.delta_wal_bytes), resync.ratio);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  return run(smoke);
}
