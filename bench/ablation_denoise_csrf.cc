// Ablation of the two design features the paper argues are what make
// N-versioning deployable on real web applications (§IV-B2, §IV-B3):
//
//   1. filter-pair de-noising: without it, every response carrying a
//      random token is a false-positive divergence;
//   2. ephemeral-state (CSRF) handling: without it, instances reject the
//      replayed token of their sibling and benign POSTs break;
//   3. the instance timeout (§IV-D): OFF reproduces the paper's DoS
//      limitation, ON is the suggested mitigation.
#include <cstdio>
#include <memory>

#include "common/rng.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "services/http_service.h"

using namespace rddr;

namespace {

struct Outcome {
  int ok = 0;
  int blocked = 0;
};

/// N token-emitting instances; `requests` benign GETs; returns pass/block
/// counts. `simd` selects the DiffEngine kernel level ("auto"/"scalar"):
/// verdicts must not depend on it.
Outcome run_token_traffic(bool filter_pair, int requests,
                          const char* simd = "auto") {
  sim::Simulator simulator;
  sim::Network net(simulator, 20 * sim::kMicrosecond);
  sim::Host host(simulator, "node", 8, 8LL << 30);

  std::vector<std::unique_ptr<services::HttpServer>> instances;
  for (int i = 0; i < 3; ++i) {
    services::HttpServer::Options o;
    o.address = "svc-" + std::to_string(i) + ":80";
    auto s = std::make_unique<services::HttpServer>(net, host, o);
    auto rng = std::make_shared<Rng>(100 + static_cast<uint64_t>(i));
    s->set_handler([rng](const http::Request&, services::Responder r) {
      r(http::make_response(
          200, "<html><input name=\"csrf\" value=\"" + rng->alnum_token(32) +
                   "\"><p>stable content</p></html>"));
    });
    instances.push_back(std::move(s));
  }
  core::DiffEngineOptions diff;
  diff.simd = simd;
  auto proxy = core::NVersionDeployment::Builder()
                   .listen("svc:80")
                   .versions({"svc-0:80", "svc-1:80", "svc-2:80"})
                   .plugin(std::make_shared<core::HttpPlugin>())
                   .filter_pair(filter_pair)
                   .diff(diff)
                   .build(net, host);

  Outcome out;
  for (int i = 0; i < requests; ++i) {
    int status = -2;
    services::HttpClient client(net, "client");
    client.get("svc:80", "/",
               [&status](int s, const http::Response*) { status = s; });
    simulator.run_until_idle();
    if (status == 200) ++out.ok;
    else ++out.blocked;
  }
  return out;
}

}  // namespace

int main() {
  std::printf("=== Ablation: de-noising, CSRF handling, timeout policy ===\n\n");

  std::printf("[1] Filter-pair de-noising (benign responses with a random "
              "32-char token):\n");
  Outcome with_fp = run_token_traffic(true, 50);
  Outcome without_fp = run_token_traffic(false, 50);
  Outcome with_fp_scalar = run_token_traffic(true, 50, "scalar");
  std::printf("    with de-noising    : %2d/50 passed, %2d blocked\n",
              with_fp.ok, with_fp.blocked);
  std::printf("    without de-noising : %2d/50 passed, %2d blocked "
              "(every benign response is a false positive)\n",
              without_fp.ok, without_fp.blocked);
  std::printf("    scalar-kernel check: %2d/50 passed, %2d blocked (%s)\n\n",
              with_fp_scalar.ok, with_fp_scalar.blocked,
              with_fp_scalar.ok == with_fp.ok &&
                      with_fp_scalar.blocked == with_fp.blocked
                  ? "verdicts identical to the SIMD kernels"
                  : "MISMATCH vs SIMD kernels");

  std::printf(
      "[2] Ephemeral-state handling (CSRF round trip):\n"
      "    Without it the instances receive a sibling's token: the replica\n"
      "    set silently diverges (only instance 0 performs the action) —\n"
      "    and because instance 0 and 1 form the de-noising pair, their\n"
      "    disagreement is even masked as noise.\n");
  for (bool handle : {true, false}) {
    sim::Simulator simulator;
    sim::Network net(simulator, 20 * sim::kMicrosecond);
    sim::Host host(simulator, "node", 8, 8LL << 30);
    // Instances that issue a token on GET and require it back on POST.
    struct TokenSvc {
      std::unique_ptr<services::HttpServer> server;
      std::shared_ptr<Rng> rng;
      std::shared_ptr<std::string> last_token;
      std::shared_ptr<int> accepted;
    };
    std::vector<TokenSvc> instances;
    for (int i = 0; i < 3; ++i) {
      TokenSvc svc;
      services::HttpServer::Options o;
      o.address = "svc-" + std::to_string(i) + ":80";
      svc.server = std::make_unique<services::HttpServer>(net, host, o);
      svc.rng = std::make_shared<Rng>(200 + static_cast<uint64_t>(i));
      svc.last_token = std::make_shared<std::string>();
      svc.accepted = std::make_shared<int>(0);
      auto rng = svc.rng;
      auto last = svc.last_token;
      auto accepted = svc.accepted;
      svc.server->set_handler(
          [rng, last, accepted](const http::Request& req,
                                services::Responder r) {
            if (req.method == "GET") {
              *last = rng->alnum_token(32);
              r(http::make_response(200, "<input value=\"" + *last + "\">"));
              return;
            }
            if (req.body.find(*last) != Bytes::npos) {
              ++*accepted;
              r(http::make_response(200, "<p>accepted</p>"));
            } else {
              r(http::make_response(403, "<p>bad token</p>"));
            }
          });
      instances.push_back(std::move(svc));
    }
    core::HttpPlugin::Options popts;
    popts.handle_ephemeral_state = handle;
    auto proxy = core::NVersionDeployment::Builder()
                     .listen("svc:80")
                     .versions({"svc-0:80", "svc-1:80", "svc-2:80"})
                     .plugin(std::make_shared<core::HttpPlugin>(popts))
                     .filter_pair(true)
                     .build(net, host);

    // GET the token, then POST it back.
    Bytes page;
    services::HttpClient client(net, "client");
    client.get("svc:80", "/", [&page](int, const http::Response* r) {
      if (r) page = r->body;
    });
    simulator.run_until_idle();
    size_t start = page.find("value=\"") + 7;
    std::string token = page.substr(start, page.find('"', start) - start);
    http::Request post;
    post.method = "POST";
    post.target = "/";
    post.body = "csrf=" + token;
    int status = -2;
    services::HttpClient client2(net, "client");
    client2.request("svc:80", std::move(post),
                    [&status](int s, const http::Response*) { status = s; });
    simulator.run_until_idle();
    int accepted_instances = 0;
    for (const auto& svc : instances)
      if (*svc.accepted > 0) ++accepted_instances;
    std::printf(
        "    CSRF handling %-3s  : client saw %s; %d/3 instances actually "
        "performed the action%s\n",
        handle ? "ON" : "OFF",
        status == 200 ? "200 accepted"
                      : (status == 403 ? "403 blocked" : "connection abort"),
        accepted_instances,
        accepted_instances == 3 ? "" : "  <-- silent replica divergence");
  }

  std::printf("\n[3] Timeout policy against a hung instance (§IV-D):\n");
  for (sim::Time timeout : {sim::Time{0}, sim::Time{1} * sim::kSecond}) {
    sim::Simulator simulator;
    sim::Network net(simulator, 20 * sim::kMicrosecond);
    sim::Host host(simulator, "node", 8, 8LL << 30);
    services::HttpServer::Options o0, o1;
    o0.address = "svc-0:80";
    o1.address = "svc-1:80";
    services::HttpServer good(net, host, o0), hung(net, host, o1);
    good.set_handler([](const http::Request&, services::Responder r) {
      r(http::make_response(200, "ok"));
    });
    hung.set_handler([](const http::Request&, services::Responder) {});
    auto proxy = core::NVersionDeployment::Builder()
                     .listen("svc:80")
                     .versions({"svc-0:80", "svc-1:80"})
                     .plugin(std::make_shared<core::HttpPlugin>())
                     .unit_timeout(timeout)
                     .build(net, host);
    int status = -2;
    services::HttpClient client(net, "client");
    client.get("svc:80", "/",
               [&status](int s, const http::Response*) { status = s; });
    simulator.run_until(10 * sim::kSecond);
    std::printf("    timeout %-9s  : client after 10s -> %s\n",
                timeout == 0 ? "OFF" : "1s",
                status == -2 ? "STILL WAITING (the paper's DoS limitation)"
                             : "aborted with intervention page");
  }

  std::printf(
      "\n[4] Divergence-signature blocking against repeated-divergence DoS "
      "(§IV-D,\n    sketched as future work in the paper; implemented "
      "here):\n");
  for (bool signatures : {false, true}) {
    sim::Simulator simulator;
    sim::Network net(simulator, 20 * sim::kMicrosecond);
    sim::Host host(simulator, "node", 8, 8LL << 30);
    std::vector<std::unique_ptr<services::HttpServer>> instances;
    for (int i = 0; i < 2; ++i) {
      services::HttpServer::Options o;
      o.address = "svc-" + std::to_string(i) + ":80";
      auto s = std::make_unique<services::HttpServer>(net, host, o);
      int flavour = i;
      s->set_handler(
          [flavour](const http::Request& req, services::Responder r) {
            r(http::make_response(
                200, req.target == "/evil" && flavour == 1 ? "LEAK"
                                                           : "normal"));
          });
      instances.push_back(std::move(s));
    }
    auto proxy = core::NVersionDeployment::Builder()
                     .listen("svc:80")
                     .versions({"svc-0:80", "svc-1:80"})
                     .plugin(std::make_shared<core::HttpPlugin>())
                     .signature_blocking(signatures)
                     .build(net, host);

    // The attacker hammers the diverging input 100 times.
    for (int i = 0; i < 100; ++i) {
      services::HttpClient client(net, "attacker");
      client.get("svc:80", "/evil", [](int, const http::Response*) {});
      simulator.run_until_idle();
    }
    uint64_t instance_work =
        instances[0]->requests_served() + instances[1]->requests_served();
    std::printf(
        "    signatures %-4s    : 100 attack repeats -> %llu full diff "
        "cycles, %llu refused at the proxy, instances served %llu requests\n",
        signatures ? "ON" : "OFF",
        static_cast<unsigned long long>(proxy->incoming().stats().divergences),
        static_cast<unsigned long long>(
            proxy->incoming().stats().signature_blocks),
        static_cast<unsigned long long>(instance_work));
  }
  return 0;
}
