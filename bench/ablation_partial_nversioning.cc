// Ablation: the deployment-cost argument of Fig 1 / §II / §VI.
//
// N-versioning only the critical microservice costs ~(N-1)/M extra
// containers instead of (N-1)x the whole deployment. We measure actual
// resident memory of the simulated GitLab composite in three
// configurations: unprotected, RDDR on Postgres only (the paper's
// deployment), and naive whole-app 3-versioning.
#include <cstdio>
#include <memory>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "services/gitlab.h"
#include "sqldb/server.h"

using namespace rddr;

namespace {

struct Footprint {
  size_t containers = 0;
  double memory_gb = 0;
};

Footprint measure(int db_replicas, int app_copies) {
  sim::Simulator simulator;
  sim::Network net(simulator, 20 * sim::kMicrosecond);
  sim::Host host(simulator, "node", 32, 256LL << 30);

  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  for (int i = 0; i < db_replicas * app_copies; ++i) {
    auto db = std::make_shared<sqldb::Database>(
        sqldb::minipg_info(i % 3 == 2 ? "10.9" : "10.7"));
    services::GitlabApp::init_schema(*db);
    sqldb::SqlServer::Options so;
    so.address = "pg-" + std::to_string(i) + ":5432";
    dbs.push_back(db);
    servers.push_back(std::make_unique<sqldb::SqlServer>(net, host, db, so));
  }
  std::unique_ptr<core::NVersionDeployment> proxy;
  if (db_replicas > 1) {
    core::NVersionDeployment::Builder b;
    b.listen("gitlab-db:5432")
        .plugin(std::make_shared<core::PgPlugin>())
        .filter_pair(true);
    for (int i = 0; i < db_replicas; ++i)
      b.add_version("pg-" + std::to_string(i) + ":5432");
    proxy = b.build(net, host);
  }
  std::vector<std::unique_ptr<services::GitlabApp>> apps;
  for (int i = 0; i < app_copies; ++i) {
    services::GitlabApp::Options o;
    o.ingress_address = "gitlab-" + std::to_string(i) + ":80";
    o.db_address = db_replicas > 1 ? "gitlab-db:5432" : "pg-0:5432";
    o.sidekiq_interval = 0;  // footprint measurement only
    apps.push_back(std::make_unique<services::GitlabApp>(net, host, o));
  }
  simulator.run_until_idle();

  Footprint f;
  f.containers = static_cast<size_t>(db_replicas * app_copies) +
                 static_cast<size_t>(app_copies) * apps[0]->container_count() +
                 (db_replicas > 1 ? 1 : 0);  // the RDDR proxy container
  f.memory_gb = static_cast<double>(host.memory_bytes()) / 1e9;
  return f;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: micro-versioning vs whole-app N-versioning (Fig 1 / "
      "Fig 3 argument) ===\n\n");
  Footprint base = measure(1, 1);
  Footprint micro = measure(3, 1);   // the paper's GitLab deployment
  Footprint naive = measure(1, 3);   // replicate EVERYTHING 3x (no RDDR)

  auto row = [&](const char* name, const Footprint& f) {
    std::printf("%-34s %10zu %12.2f %14.0f%%\n", name, f.containers,
                f.memory_gb,
                100.0 * (f.memory_gb - base.memory_gb) / base.memory_gb);
  };
  std::printf("%-34s %10s %12s %15s\n", "configuration", "containers",
              "memory(GB)", "mem overhead");
  std::printf("%s\n", std::string(75, '-').c_str());
  row("unprotected GitLab", base);
  row("RDDR on Postgres only (paper)", micro);
  row("naive 3x whole deployment", naive);

  double micro_ct = 100.0 * (static_cast<double>(micro.containers) -
                             static_cast<double>(base.containers)) /
                    static_cast<double>(base.containers);
  double naive_ct = 100.0 * (static_cast<double>(naive.containers) -
                             static_cast<double>(base.containers)) /
                    static_cast<double>(base.containers);
  double micro_pct =
      100.0 * (micro.memory_gb - base.memory_gb) / base.memory_gb;
  std::printf(
      "\nContainer overhead: micro-versioning +%.0f%% (paper's \"~33%%, "
      "assuming all containers equally costly\") vs +%.0f%% for whole-app "
      "replication. Measured memory overhead is +%.0f%% because the "
      "replicated container (the database) is heavier than the stubs — the "
      "paper makes the same equal-cost caveat.\n",
      micro_ct, naive_ct, micro_pct);
  return 0;
}
