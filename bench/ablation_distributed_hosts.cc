// Ablation: distributing the N-versioned set across machines (paper §VI).
//
// "Such degradation can be mitigated by upgrading to servers with more
// cores, or deploying each instance of the N-versioned set on a different
// machine; RDDR can easily be reconfigured to run distributed across
// multiple hosts."
//
// We rerun the Fig-5 sweep with three placements:
//   co-located : 3 instances + proxy on ONE 32-core host (Fig 5's RDDR)
//   distributed: each instance on ITS OWN 32-core host, proxy on a 4th
//   bare       : single instance (reference ceiling)
#include <cstdio>
#include <memory>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"

using namespace rddr;

namespace {

constexpr int kAccounts = 10000;
constexpr double kCpuPerQuery = 2e-3;

double run(bool rddr_enabled, bool distributed, int clients) {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  std::vector<std::unique_ptr<sim::Host>> hosts;
  auto add_host = [&](const std::string& name) -> sim::Host& {
    hosts.push_back(
        std::make_unique<sim::Host>(simulator, name, 32, 128LL << 30));
    return *hosts.back();
  };
  sim::Host& shared = add_host("node-0");

  int n = rddr_enabled ? 3 : 1;
  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  for (int i = 0; i < n; ++i) {
    sim::Host& host = distributed && i > 0
                          ? add_host("node-" + std::to_string(i))
                          : shared;
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
    workloads::load_pgbench(*db, kAccounts, 9);
    sqldb::SqlServer::Options so;
    so.address = "pg-" + std::to_string(i) + ":5432";
    so.cpu_per_query = kCpuPerQuery;
    so.cpu_per_row = 0;
    so.rng_seed = 70 + static_cast<uint64_t>(i);
    dbs.push_back(db);
    servers.push_back(std::make_unique<sqldb::SqlServer>(net, host, db, so));
  }
  std::unique_ptr<core::NVersionDeployment> rddr;
  std::string address = "pg-0:5432";
  if (rddr_enabled) {
    sim::Host& proxy_host = distributed ? add_host("node-proxy") : shared;
    rddr = core::NVersionDeployment::Builder()
               .listen("front:5432")
               .versions({"pg-0:5432", "pg-1:5432", "pg-2:5432"})
               .plugin(std::make_shared<core::PgPlugin>())
               .filter_pair(true)
               .cpu_model(50e-6, 2e-9)
               .build(net, proxy_host);
    address = "front:5432";
  }
  workloads::ClientPoolOptions opts;
  opts.address = address;
  opts.clients = clients;
  opts.transactions_per_client = 100;
  opts.seed = 5;
  opts.next_query = [](Rng& rng, int, int) {
    return workloads::pgbench_select_tx(rng, kAccounts);
  };
  return workloads::run_client_pool(simulator, net, opts).throughput_tps();
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: co-located vs distributed instance placement (§VI) "
      "===\n\n");
  std::printf("%-8s | %14s | %16s | %12s\n", "clients", "RDDR 1 host",
              "RDDR 4 hosts", "bare 1x");
  std::printf("%s\n", std::string(60, '-').c_str());
  for (int clients : {8, 16, 32, 64, 128, 256}) {
    double co = run(true, false, clients);
    double dist = run(true, true, clients);
    double bare = run(false, false, clients);
    std::printf("%-8d | %11.0f    | %13.0f    | %9.0f\n", clients, co, dist,
                bare);
  }
  std::printf(
      "\nExpected: the co-located deployment plateaus ~3x below the bare "
      "ceiling (Fig 5), while the distributed placement tracks the bare "
      "instance's throughput — the paper's suggested remedy works.\n");
  return 0;
}
