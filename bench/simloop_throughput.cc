// Simulator-core and data-plane throughput benchmark (not a paper figure).
//
// Measures the three quantities the zero-copy / allocation-free overhaul
// targets, and prints one JSON document (committed as BENCH_simloop.json):
//
//  * events/sec through the simulator core, under three scheduling
//    patterns: fill-drain (bulk schedule then run), ping-pong (each event
//    schedules the next — the proxy pump shape), and schedule+cancel
//    pairs (the timeout-arm/disarm shape that previously leaked into
//    unordered_map churn).
//  * fan-out copy efficiency: the fig5 RDDR deployment (3x minipg, 16
//    pgbench clients, seed 5) with the Network's payload counters —
//    bytes copied vs bytes sent. Before the overhaul every sent byte was
//    copied (ratio 1.0).
//  * wall time of that fig5 point, as the end-to-end trajectory number.
//
// --smoke: quick run of the fill-drain pattern only, exits nonzero if
// events/sec falls below RDDR_SIMLOOP_FLOOR (default 1e6) — the perf
// regression gate wired into tests/run_sanitized.sh.
//
// Reference numbers in "baseline" were measured at the pre-overhaul seed
// commit with the same build type (RelWithDebInfo default preset) on the
// same pattern code, so the speedup fields are apples-to-apples.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <functional>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "netsim/parallel.h"
#include "obs/metrics.h"
#include "rddr/rddr.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"

using namespace rddr;

namespace {

// Pre-overhaul numbers: the seed-commit Simulator (std::priority_queue +
// unordered_map handlers + std::function) compiled at -O2 -DNDEBUG and run
// through these exact pattern functions on the same machine.
// The fig5 *driver* wall-time trajectory is captured by bench/run_benches.sh
// (baseline: 3.245 s for the full sweep), since the driver is its own binary.
constexpr double kBaselineFillDrainEps = 4068591;
constexpr double kBaselinePingpongEps = 19240265;
constexpr double kBaselineSchedCancelPps = 8574284;

double wall_seconds(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

// Bulk schedule `batch` events, drain, repeat. Deterministic pseudo-delays
// keep the heap honestly shuffled without an Rng dependency.
double bench_fill_drain(size_t total_events) {
  sim::Simulator sim;
  volatile uint64_t sink = 0;
  const size_t batch = 10000;
  uint64_t lcg = 12345;
  auto t0 = std::chrono::steady_clock::now();
  size_t done = 0;
  while (done < total_events) {
    for (size_t i = 0; i < batch; ++i) {
      lcg = lcg * 6364136223846793005ull + 1442695040888963407ull;
      sim.schedule(static_cast<sim::Time>((lcg >> 33) % 1000),
                   [&sink] { sink = sink + 1; });
    }
    sim.run_until_idle();
    done += batch;
  }
  return static_cast<double>(done) / wall_seconds(t0);
}

// Each event schedules its successor: measures bare per-event overhead at
// heap depth ~1 (the request/response pump shape).
double bench_pingpong(size_t total_events) {
  sim::Simulator sim;
  size_t remaining = total_events;
  std::function<void()> hop = [&] {
    if (--remaining > 0) sim.schedule(10, [&hop] { hop(); });
  };
  auto t0 = std::chrono::steady_clock::now();
  sim.schedule(10, [&hop] { hop(); });
  sim.run_until_idle();
  return static_cast<double>(total_events) / wall_seconds(t0);
}

// Arm-then-disarm, the timeout pattern: every pair must be O(1) and leave
// no residue in the simulator.
double bench_sched_cancel(size_t total_pairs) {
  sim::Simulator sim;
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < total_pairs; ++i) {
    uint64_t id = sim.schedule(1000, [] {});
    sim.cancel(id);
    if (i % 4096 == 0) sim.run_until_idle();  // let time move occasionally
  }
  sim.run_until_idle();
  return static_cast<double>(total_pairs) / wall_seconds(t0);
}

struct FanoutResult {
  double wall_s = 0;
  double tps = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_copied = 0;
};

// The fig5 RDDR deployment at 16 clients, instrumented (identical config
// to bench/fig5_throughput_latency.cc and tests/determinism_test.cc).
FanoutResult run_fanout_point() {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  sim::Host server_host(simulator, "server", 32, 128LL << 30);

  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  for (int i = 0; i < 3; ++i) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
    workloads::load_pgbench(*db, 20000, 9);
    sqldb::SqlServer::Options so;
    so.address = "pg-" + std::to_string(i) + ":5432";
    so.cpu_per_query = 2e-3;
    so.cpu_per_row = 0;
    so.rng_seed = 20 + static_cast<uint64_t>(i);
    dbs.push_back(db);
    servers.push_back(
        std::make_unique<sqldb::SqlServer>(net, server_host, db, so));
  }
  auto rddr = core::NVersionDeployment::Builder()
                  .listen("front:5432")
                  .versions({"pg-0:5432", "pg-1:5432", "pg-2:5432"})
                  .plugin(std::make_shared<core::PgPlugin>())
                  .filter_pair(true)
                  .cpu_model(50e-6, 5e-9)
                  .build(net, server_host);

  obs::MetricsRegistry registry;
  workloads::ClientPoolOptions opts;
  opts.address = "front:5432";
  opts.clients = 16;
  opts.transactions_per_client = 100;
  opts.seed = 5;
  opts.metrics = &registry;
  opts.metrics_prefix = "pool";
  opts.next_query = [](Rng& rng, int, int) {
    return workloads::pgbench_select_tx(rng, 20000);
  };
  auto t0 = std::chrono::steady_clock::now();
  workloads::run_client_pool(simulator, net, opts);
  FanoutResult r;
  r.wall_s = wall_seconds(t0);
  r.tps = registry.gauge("pool.tps")->value();
  r.bytes_sent = net.payload_bytes_sent();
  r.bytes_copied = net.payload_bytes_copied();
  return r;
}

struct IslandPoint {
  size_t islands = 0;
  double events_per_sec = 0;
  double model_speedup = 1.0;
  uint64_t windows = 0;
  uint64_t barrier_stalls = 0;
};

// Multi-island event loop: per-island ping-pong chains with a cross-island
// hop every 32nd event (the shard-column shape — mostly local work, a
// steady trickle across the cuts). Measures raw events/sec through the
// windowed executor and its deterministic model_speedup.
IslandPoint bench_islands(size_t islands, size_t events_per_island) {
  sim::Simulator sim;
  sim::ParallelOptions popts;
  popts.min_lookahead = 10 * sim::kMicrosecond;
  sim.configure_islands(islands, popts);
  IslandPoint p;
  p.islands = islands;
  std::vector<size_t> remaining(islands, events_per_island);
  std::vector<uint64_t> executed(islands, 0);  // written by owner island only
  std::vector<std::function<void()>> hop(islands);
  for (size_t i = 0; i < islands; ++i) {
    hop[i] = [&, i] {
      ++executed[i];
      if (remaining[i] == 0 || --remaining[i] == 0) return;
      if (remaining[i] % 32 == 0 && islands > 1) {
        // Cross-island hop: must clear the conservative lookahead.
        size_t j = (i + 1) % islands;
        sim.schedule_on(j, sim.now() + 20 * sim::kMicrosecond,
                        [&, j] { hop[j](); });
      } else {
        sim.schedule_on(i, sim.now() + sim::kMicrosecond, [&, i] { hop[i](); });
      }
    };
  }
  auto t0 = std::chrono::steady_clock::now();
  for (size_t i = 0; i < islands; ++i)
    sim.schedule_on(i, sim::kMicrosecond * (i + 1), [&, i] { hop[i](); });
  sim.run_until_idle();
  double wall = wall_seconds(t0);
  uint64_t total = 0;
  for (uint64_t e : executed) total += e;
  p.events_per_sec = wall > 0 ? static_cast<double>(total) / wall : 0;
  if (const auto* ex = sim.executor()) {
    const auto& st = ex->stats();
    p.model_speedup = st.model_speedup();
    p.windows = st.windows;
    p.barrier_stalls = st.barrier_stalls;
  }
  return p;
}

int run_smoke() {
  double floor_eps = 1e6;
  if (const char* env = std::getenv("RDDR_SIMLOOP_FLOOR"))
    floor_eps = std::atof(env);
  double eps = bench_fill_drain(200000);
  std::printf("{\"smoke\": {\"fill_drain_events_per_sec\": %.0f, "
              "\"floor\": %.0f, \"pass\": %s}}\n",
              eps, floor_eps, eps >= floor_eps ? "true" : "false");
  if (eps < floor_eps) {
    std::fprintf(stderr,
                 "simloop smoke FAILED: %.0f events/sec < floor %.0f\n", eps,
                 floor_eps);
    return 1;
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc > 1 && std::strcmp(argv[1], "--smoke") == 0) return run_smoke();

  double fill_drain = bench_fill_drain(2000000);
  double pingpong = bench_pingpong(1000000);
  double sched_cancel = bench_sched_cancel(4000000);
  FanoutResult fan = run_fanout_point();

  double copy_ratio =
      fan.bytes_sent ? static_cast<double>(fan.bytes_copied) /
                           static_cast<double>(fan.bytes_sent)
                     : 0.0;
  std::printf("{\n");
  std::printf("  \"simloop\": {\n");
  std::printf("    \"fill_drain_events_per_sec\": %.0f,\n", fill_drain);
  std::printf("    \"pingpong_events_per_sec\": %.0f,\n", pingpong);
  std::printf("    \"sched_cancel_pairs_per_sec\": %.0f\n", sched_cancel);
  std::printf("  },\n");
  std::printf("  \"parallel\": {\n");
  std::printf("    \"threads\": %u,\n", std::thread::hardware_concurrency());
  std::printf("    \"islands\": [\n");
  const size_t counts[] = {1, 2, 4, 8};
  for (size_t ci = 0; ci < 4; ++ci) {
    IslandPoint ip = bench_islands(counts[ci], 200000);
    std::printf("      {\"islands\": %zu, \"events_per_sec\": %.0f, "
                "\"model_speedup\": %.4f, \"windows\": %llu, "
                "\"barrier_stalls\": %llu}%s\n",
                ip.islands, ip.events_per_sec, ip.model_speedup,
                static_cast<unsigned long long>(ip.windows),
                static_cast<unsigned long long>(ip.barrier_stalls),
                ci + 1 < 4 ? "," : "");
  }
  std::printf("    ]\n");
  std::printf("  },\n");
  std::printf("  \"fanout_fig5_rddr_16c\": {\n");
  std::printf("    \"wall_s\": %.4f,\n", fan.wall_s);
  std::printf("    \"tps\": %.2f,\n", fan.tps);
  std::printf("    \"payload_bytes_sent\": %llu,\n",
              static_cast<unsigned long long>(fan.bytes_sent));
  std::printf("    \"payload_bytes_copied\": %llu,\n",
              static_cast<unsigned long long>(fan.bytes_copied));
  std::printf("    \"copy_ratio\": %.4f,\n", copy_ratio);
  std::printf("    \"fanout_bytes_per_sec\": %.0f\n",
              fan.wall_s > 0 ? static_cast<double>(fan.bytes_sent) / fan.wall_s
                             : 0.0);
  std::printf("  },\n");
  std::printf("  \"baseline\": {\n");
  std::printf("    \"fill_drain_events_per_sec\": %.0f,\n",
              kBaselineFillDrainEps);
  std::printf("    \"pingpong_events_per_sec\": %.0f,\n",
              kBaselinePingpongEps);
  std::printf("    \"sched_cancel_pairs_per_sec\": %.0f,\n",
              kBaselineSchedCancelPps);
  std::printf("    \"copy_ratio\": 1.0\n");
  std::printf("  },\n");
  std::printf("  \"speedup\": {\n");
  std::printf("    \"fill_drain\": %.2f,\n", fill_drain / kBaselineFillDrainEps);
  std::printf("    \"pingpong\": %.2f,\n", pingpong / kBaselinePingpongEps);
  std::printf("    \"sched_cancel\": %.2f,\n",
              sched_cancel / kBaselineSchedCancelPps);
  std::printf("    \"copy_reduction\": %.4f\n", 1.0 - copy_ratio);
  std::printf("  }\n");
  std::printf("}\n");
  return 0;
}
