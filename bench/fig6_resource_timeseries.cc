// Regenerates Figure 6: aggregate CPU% and memory over time while serving
// pgbench with 16 and 128 simultaneous clients, for the three deployments
// of Figure 5.
//
// Expected shapes (paper §V-G2): at 16 clients RDDR runs ~3x the CPU and
// ~3x the memory of the single-instance baselines with headroom to spare;
// at 128 clients RDDR pins the host near 100% CPU while the baselines
// stay below it.
#include <cstdio>
#include <memory>
#include <vector>

#include "netsim/block_device.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "rddr/rddr.h"
#include "services/tcp_proxy.h"
#include "sqldb/server.h"
#include "sqldb/storage/storage_engine.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"

using namespace rddr;

namespace {

constexpr int kAccounts = 20000;
constexpr double kCpuPerQuery = 2e-3;

struct Series {
  std::vector<sim::ResourceSample> samples;
  double peak_cpu_pct = 0;  // registry gauge maxima (same sampler feed)
  double peak_mem_gb = 0;
  // Durable-storage runs only (frame_budget > 0):
  double pool_hit_rate = 0;
  double pool_resident_mb = 0;
  double latency_mean_ms = 0;
};

/// frame_budget > 0 attaches the durable storage engine to every server
/// with that buffer-pool budget — the cache-pressure axis: resident
/// memory is bounded by the budget while misses charge device reads into
/// query latency.
Series run_series(int n_instances, bool envoy_front, int clients,
                  int tx_per_client, uint64_t frame_budget = 0) {
  sim::Simulator simulator;
  // Fig 6 ran clients on a SEPARATE machine (m5a.4xlarge); the fatter
  // round trip dilutes in-server concurrency, which is why the paper's
  // 16-client curves have CPU headroom. 750us/hop ~= the paper's
  // cross-instance RTT once both directions and the proxy hop are summed.
  sim::Network net(simulator, 750 * sim::kMicrosecond);
  sim::Host host(simulator, "server", 32, 128LL << 30);

  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  std::vector<std::shared_ptr<sqldb::storage::StorageEngine>> engines;
  for (int i = 0; i < n_instances; ++i) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
    workloads::load_pgbench(*db, kAccounts, 9);
    sqldb::SqlServer::Options so;
    so.address = "pg-" + std::to_string(i) + ":5432";
    so.cpu_per_query = kCpuPerQuery;
    so.cpu_per_row = 0;
    so.rng_seed = 30 + static_cast<uint64_t>(i);
    if (frame_budget > 0) {
      sim::BlockDevice::Options dev;
      dev.rng_seed = 40 + static_cast<uint64_t>(i);
      auto data = std::make_shared<sim::BlockDevice>(dev);
      dev.rng_seed += 1000;
      auto wal = std::make_shared<sim::BlockDevice>(dev);
      sqldb::storage::StorageOptions sto;
      sto.frame_budget = frame_budget;
      so.storage = std::make_shared<sqldb::storage::StorageEngine>(
          simulator, data, wal, sto);
      so.lineage_seed = 6;
      engines.push_back(so.storage);
    }
    dbs.push_back(db);
    servers.push_back(std::make_unique<sqldb::SqlServer>(net, host, db, so));
  }
  // Durable servers open their port only after the modeled bootstrap IO
  // (initial checkpoint); drain it before the clients start connecting.
  if (frame_budget > 0) simulator.run_until_idle();
  std::unique_ptr<services::TcpProxy> envoy;
  std::unique_ptr<core::NVersionDeployment> rddr;
  std::string address = "pg-0:5432";
  if (envoy_front) {
    services::TcpProxy::Options po;
    po.address = "front:5432";
    po.backend_address = "pg-0:5432";
    envoy = std::make_unique<services::TcpProxy>(net, host, po);
    address = "front:5432";
  } else if (n_instances > 1) {
    core::NVersionDeployment::Builder b;
    b.listen("front:5432")
        .plugin(std::make_shared<core::PgPlugin>())
        .filter_pair(true)
        // The paper's Python proxy: a few hundred us of tokenize+diff work
        // per message (calibrated to the ~10% penalty at 8 clients).
        .cpu_model(50e-6, 5e-9);
    for (int i = 0; i < n_instances; ++i)
      b.add_version("pg-" + std::to_string(i) + ":5432");
    rddr = b.build(net, host);
    address = "front:5432";
  }

  obs::MetricsRegistry registry;
  host.reset_metrics();
  host.bind_metrics(&registry, "server");
  host.start_sampling(250 * sim::kMillisecond);

  workloads::ClientPoolOptions opts;
  opts.address = address;
  opts.clients = clients;
  opts.transactions_per_client = tx_per_client;
  opts.seed = 5;
  opts.next_query = [](Rng& rng, int, int) {
    return workloads::pgbench_select_tx(rng, kAccounts);
  };
  workloads::PoolResult pool = workloads::run_client_pool(simulator, net, opts);
  host.stop_sampling();

  Series s;
  s.samples = host.samples();
  s.peak_cpu_pct = registry.gauge("server.cpu_pct")->max_value();
  s.peak_mem_gb = registry.gauge("server.mem_bytes")->max_value() / 1e9;
  for (const auto& e : engines) {
    s.pool_hit_rate += e->pool().hit_rate() / engines.size();
    s.pool_resident_mb += e->pool().resident_bytes() / 1e6;
  }
  s.latency_mean_ms = pool.latency_ms.mean();
  return s;
}

void print_block(int clients, int tx_per_client) {
  Series rddr = run_series(3, false, clients, tx_per_client);
  Series envoy = run_series(1, true, clients, tx_per_client);
  Series bare = run_series(1, false, clients, tx_per_client);

  std::printf("--- %d clients ---\n", clients);
  std::printf("%-9s | %-22s | %-22s | %-22s\n", "", "RDDR (3x)",
              "1x + envoy", "1x minipg");
  std::printf("%-9s | %10s %11s | %10s %11s | %10s %11s\n", "t(s)", "cpu%",
              "mem(GB)", "cpu%", "mem(GB)", "cpu%", "mem(GB)");
  size_t rows = std::max({rddr.samples.size(), envoy.samples.size(),
                          bare.samples.size()});
  auto at = [](const Series& s, size_t i) -> sim::ResourceSample {
    if (s.samples.empty()) return {};
    // Past the end of a finished run the host is idle but memory stays
    // resident.
    if (i < s.samples.size()) return s.samples[i];
    auto last = s.samples.back();
    last.cpu_pct = 0;
    return last;
  };
  // Downsample long series to ~24 printed rows.
  size_t step = std::max<size_t>(1, rows / 24);
  for (size_t i = 0; i < rows; i += step) {
    auto r = at(rddr, i), e = at(envoy, i), b = at(bare, i);
    std::printf("%-9.2f | %10.1f %11.2f | %10.1f %11.2f | %10.1f %11.2f\n",
                sim::to_seconds(r.time), r.cpu_pct, r.mem_bytes / 1e9,
                e.cpu_pct, e.mem_bytes / 1e9, b.cpu_pct, b.mem_bytes / 1e9);
  }
  // Peak summary, read back from the per-run registry gauges.
  auto peak = [](const Series& s) {
    return std::pair<double, double>(s.peak_cpu_pct, s.peak_mem_gb);
  };
  auto [rc, rm] = peak(rddr);
  auto [ec, em] = peak(envoy);
  auto [bc, bm] = peak(bare);
  std::printf(
      "peaks: RDDR %.0f%% cpu / %.2f GB; envoy %.0f%% / %.2f GB; bare "
      "%.0f%% / %.2f GB  (mem ratio %.1fx)\n\n",
      rc, rm, ec, em, bc, bm, rm / bm);
}

// Cache-pressure study: same workload on a single durable-storage
// instance, sweeping the buffer-pool frame budget. The pgbench_accounts
// table is ~313 pages at 64 rows/page, so 512 frames is over-provisioned,
// 128 is ~40% of the working set, and 32 is heavy pressure. Resident
// memory is bounded by the budget; misses charge device reads into query
// latency, so the mean creeps up as the hit rate falls.
void print_cache_pressure_block(int clients, int tx_per_client) {
  std::printf("--- cache pressure: 1x minipg + durable storage, %d clients ---\n",
              clients);
  std::printf("%-12s | %8s | %12s | %12s | %12s\n", "frame_budget",
              "hit_rate", "resident(MB)", "peak mem(GB)", "mean lat(ms)");
  for (uint64_t budget : {32u, 128u, 512u}) {
    Series s = run_series(1, false, clients, tx_per_client, budget);
    std::printf("%-12llu | %8.3f | %12.2f | %12.2f | %12.3f\n",
                static_cast<unsigned long long>(budget), s.pool_hit_rate,
                s.pool_resident_mb, s.peak_mem_gb, s.latency_mean_ms);
  }
  std::printf("\n");
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 6: CPU%% and memory over time (pgbench, 32-core host) "
      "===\n\n");
  print_block(16, 2000);
  print_block(128, 400);
  print_cache_pressure_block(16, 2000);
  std::printf(
      "Paper shape check: ~3x CPU and ~3x memory for RDDR at 16 clients; "
      "at 128 clients RDDR saturates (~100%% CPU) while the baselines do "
      "not (Fig 6a/6b). Cache pressure: hit rate falls and mean latency "
      "picks up modeled device reads as the frame budget shrinks below "
      "the ~313-page working set, while resident memory stays bounded by "
      "the budget.\n");
  return 0;
}
