// Microbenchmarks (google-benchmark) of the hot paths on RDDR's critical
// path: framing, tokenizing, de-noise + diff, content decoding, and the
// engine's query execution.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "proto/http/coding.h"
#include "proto/http/parser.h"
#include "proto/json/json.h"
#include "proto/pgwire/pgwire.h"
#include "rddr/arena.h"
#include "rddr/diff_engine.h"
#include "rddr/diff_simd.h"
#include "rddr/plugins.h"
#include "sqldb/engine.h"
#include "sqldb/parser.h"
#include "workloads/pgbench.h"
#include "workloads/tpch.h"

namespace {

using namespace rddr;

void BM_HttpParseRequest(benchmark::State& state) {
  http::Request req;
  req.method = "POST";
  req.target = "/api/v1/render";
  req.headers.set("Host", "svc");
  req.headers.set("Content-Type", "application/json");
  req.body = std::string(static_cast<size_t>(state.range(0)), 'x');
  Bytes wire = req.to_bytes();
  for (auto _ : state) {
    http::RequestParser p;
    p.feed(wire);
    benchmark::DoNotOptimize(p.take());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParseRequest)->Arg(64)->Arg(4096)->Arg(65536);

void BM_PgFrameMessages(benchmark::State& state) {
  Bytes wire;
  for (int i = 0; i < 100; ++i)
    wire += pg::build_data_row({std::string("value-") + std::to_string(i),
                                std::string("second-column")});
  for (auto _ : state) {
    pg::MessageReader r(false);
    r.feed(wire);
    benchmark::DoNotOptimize(r.take());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_PgFrameMessages);

void BM_Xz77Compress(benchmark::State& state) {
  Rng rng(1);
  Bytes input;
  for (int i = 0; i < state.range(0) / 16; ++i)
    input += "<tr><td>cell " + std::to_string(i % 50) + "</td></tr>\n";
  for (auto _ : state)
    benchmark::DoNotOptimize(http::xz77_compress(input));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_Xz77Compress)->Arg(4096)->Arg(65536);

void BM_Xz77Decompress(benchmark::State& state) {
  Bytes input;
  for (int i = 0; i < state.range(0) / 16; ++i)
    input += "<tr><td>cell " + std::to_string(i % 50) + "</td></tr>\n";
  Bytes packed = http::xz77_compress(input);
  for (auto _ : state)
    benchmark::DoNotOptimize(http::xz77_decompress(packed));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_Xz77Decompress)->Arg(4096)->Arg(65536);

// Shared corpus for the de-noise benchmarks: 3 instances, lines/instance
// = range(0). 1/5 of lines carry a real per-instance token (alnum, >= 10
// chars, differs everywhere), 1/5 differ everywhere but are rejected as
// tokens (non-alnum character mid-run), 3/5 are byte-identical. Both
// benchmarks below report items = lines x 3 instances, so their items/s
// are directly comparable.
std::vector<std::vector<std::string>> denoise_corpus(int64_t lines) {
  Rng rng(3);
  std::vector<std::vector<std::string>> instances(3);
  for (int64_t i = 0; i < lines; ++i) {
    if (i % 5 == 0) {
      for (auto& inst : instances)
        inst.push_back("csrf=" + rng.alnum_token(32));
    } else if (i % 5 == 1) {
      for (auto& inst : instances)
        inst.push_back("t=" + rng.alnum_token(24) + "!x" + rng.alnum_token(8));
    } else {
      std::string line = "line " + std::to_string(i) + " stable";
      for (auto& inst : instances) inst.push_back(line);
    }
  }
  return instances;
}

// Mask-and-compare reference: per line, derive the filter-pair mask from
// instances 0/1 and hold instance 2 to it — the old pairwise
// build_noise_mask + masked_compare walk, now on the SIMD diff kernels.
void BM_NoiseMaskAndCompare(benchmark::State& state) {
  auto inst = denoise_corpus(state.range(0));
  const core::simd::Ops& ops = core::simd::active_ops();
  const size_t lines = inst[0].size();
  for (auto _ : state) {
    bool ok = true;
    for (size_t i = 0; i < lines; ++i) {
      core::diff::LineMask m =
          core::diff::build_line_mask(inst[0][i], inst[1][i], ops);
      ok &= core::diff::masked_line_check(inst[0][i], inst[2][i], m, ops)
                .fail == core::diff::LineFail::kNone;
    }
    benchmark::DoNotOptimize(ok);
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 3);
}
BENCHMARK(BM_NoiseMaskAndCompare)->Arg(50)->Arg(500);

// Ephemeral-token detection across N=3 instances on the same corpus —
// diff::detect_tokens over canonical views, scratch arena reset per
// round, candidates validated in place and materialised only on accept.
void BM_DenoiseTokenDetect(benchmark::State& state) {
  auto inst = denoise_corpus(state.range(0));
  const core::simd::Ops& ops = core::simd::active_ops();
  core::Arena canon_arena(64 << 10);
  core::CanonicalUnit* canon = canon_arena.alloc_array<core::CanonicalUnit>(3);
  for (size_t i = 0; i < 3; ++i) {
    canon[i] = core::CanonicalUnit{};
    canon[i].per_line = true;
    for (const std::string& l : inst[i])
      canon[i].lines.push_back(canon_arena, ByteView(l));
  }
  core::Arena scratch(64 << 10);
  for (auto _ : state) {
    scratch.reset();
    benchmark::DoNotOptimize(core::diff::detect_tokens(canon, 3, scratch, ops));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 3);
}
BENCHMARK(BM_DenoiseTokenDetect)->Arg(50)->Arg(500);

void BM_HttpPluginCompare3(benchmark::State& state) {
  core::HttpPlugin plugin;
  Rng rng(3);
  auto page = [&](const std::string& tok) {
    http::Response r = http::make_response(
        200, "<html><input value=\"" + tok + "\"><p>body body body</p></html>");
    return core::Unit{r.to_bytes(), "http-resp"};
  };
  std::vector<core::Unit> units{page(rng.alnum_token(32)),
                                page(rng.alnum_token(32)),
                                page(rng.alnum_token(32))};
  core::KnownVariance kv;
  core::CompareContext ctx;
  ctx.filter_pair = true;
  ctx.variance = &kv;
  for (auto _ : state)
    benchmark::DoNotOptimize(plugin.compare(units, ctx));
}
BENCHMARK(BM_HttpPluginCompare3);

// The batched data plane end to end: one DiffEngine::compare call
// canonicalises all 3 HTTP responses into the engine arena and runs the
// N-way SIMD divergence scan. Steady state allocates nothing (the arena
// is reset, not freed, between batches).
void BM_DiffEngineCompare3(benchmark::State& state) {
  core::HttpPlugin plugin;
  core::DiffEngine engine;
  Rng rng(3);
  auto page = [&](const std::string& tok) {
    http::Response r = http::make_response(
        200, "<html><input value=\"" + tok + "\"><p>body body body</p></html>");
    return core::Unit{r.to_bytes(), "http-resp"};
  };
  std::vector<core::Unit> units{page(rng.alnum_token(32)),
                                page(rng.alnum_token(32)),
                                page(rng.alnum_token(32))};
  core::KnownVariance kv;
  core::CompareContext ctx;
  ctx.filter_pair = true;
  ctx.variance = &kv;
  int64_t bytes = 0;
  for (const auto& u : units) bytes += static_cast<int64_t>(u.data.size());
  for (auto _ : state) {
    core::BatchVerdict v =
        engine.compare(plugin, units, ctx, core::VoteMode::kStrict);
    benchmark::DoNotOptimize(v.agreed);
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) * bytes);
}
BENCHMARK(BM_DiffEngineCompare3);

void BM_JsonParseDump(benchmark::State& state) {
  std::string doc = R"({"items":[)";
  for (int i = 0; i < 50; ++i) {
    if (i) doc += ",";
    doc += R"({"id":)" + std::to_string(i) + R"(,"name":"item","score":1.5})";
  }
  doc += "]}";
  for (auto _ : state) {
    auto v = json::parse(doc);
    benchmark::DoNotOptimize(v->dump());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_JsonParseDump);

void BM_SqlIndexedLookup(benchmark::State& state) {
  sqldb::Database db(sqldb::minipg_info("13.0"));
  workloads::load_pgbench(db, 10000, 1);
  sqldb::Session s(db, "postgres");
  Rng rng(4);
  for (auto _ : state) {
    auto q = workloads::pgbench_select_tx(rng, 10000);
    benchmark::DoNotOptimize(s.execute(q));
  }
}
BENCHMARK(BM_SqlIndexedLookup);

void BM_SqlTpchQ1(benchmark::State& state) {
  sqldb::Database db(sqldb::minipg_info("13.0"));
  workloads::load_tpch(db, workloads::TpchScale{0.25}, 1);
  sqldb::Session s(db, "postgres");
  const auto& q1 = workloads::tpch_queries()[0];
  for (auto _ : state) benchmark::DoNotOptimize(s.execute(q1));
}
BENCHMARK(BM_SqlTpchQ1);

void BM_SqlParseOnly(benchmark::State& state) {
  const auto& q = workloads::tpch_queries()[1];  // join-heavy text
  for (auto _ : state) benchmark::DoNotOptimize(sqldb::parse_sql(q));
}
BENCHMARK(BM_SqlParseOnly);

}  // namespace

BENCHMARK_MAIN();
