// Microbenchmarks (google-benchmark) of the hot paths on RDDR's critical
// path: framing, tokenizing, de-noise + diff, content decoding, and the
// engine's query execution.
#include <benchmark/benchmark.h>

#include "common/rng.h"
#include "proto/http/coding.h"
#include "proto/http/parser.h"
#include "proto/json/json.h"
#include "proto/pgwire/pgwire.h"
#include "rddr/noise.h"
#include "rddr/plugins.h"
#include "sqldb/engine.h"
#include "sqldb/parser.h"
#include "workloads/pgbench.h"
#include "workloads/tpch.h"

namespace {

using namespace rddr;

void BM_HttpParseRequest(benchmark::State& state) {
  http::Request req;
  req.method = "POST";
  req.target = "/api/v1/render";
  req.headers.set("Host", "svc");
  req.headers.set("Content-Type", "application/json");
  req.body = std::string(static_cast<size_t>(state.range(0)), 'x');
  Bytes wire = req.to_bytes();
  for (auto _ : state) {
    http::RequestParser p;
    p.feed(wire);
    benchmark::DoNotOptimize(p.take());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_HttpParseRequest)->Arg(64)->Arg(4096)->Arg(65536);

void BM_PgFrameMessages(benchmark::State& state) {
  Bytes wire;
  for (int i = 0; i < 100; ++i)
    wire += pg::build_data_row({std::string("value-") + std::to_string(i),
                                std::string("second-column")});
  for (auto _ : state) {
    pg::MessageReader r(false);
    r.feed(wire);
    benchmark::DoNotOptimize(r.take());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(wire.size()));
}
BENCHMARK(BM_PgFrameMessages);

void BM_Xz77Compress(benchmark::State& state) {
  Rng rng(1);
  Bytes input;
  for (int i = 0; i < state.range(0) / 16; ++i)
    input += "<tr><td>cell " + std::to_string(i % 50) + "</td></tr>\n";
  for (auto _ : state)
    benchmark::DoNotOptimize(http::xz77_compress(input));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_Xz77Compress)->Arg(4096)->Arg(65536);

void BM_Xz77Decompress(benchmark::State& state) {
  Bytes input;
  for (int i = 0; i < state.range(0) / 16; ++i)
    input += "<tr><td>cell " + std::to_string(i % 50) + "</td></tr>\n";
  Bytes packed = http::xz77_compress(input);
  for (auto _ : state)
    benchmark::DoNotOptimize(http::xz77_decompress(packed));
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(input.size()));
}
BENCHMARK(BM_Xz77Decompress)->Arg(4096)->Arg(65536);

void BM_NoiseMaskAndCompare(benchmark::State& state) {
  Rng rng(2);
  std::vector<std::string> a, b, c;
  for (int i = 0; i < state.range(0); ++i) {
    std::string line = "line " + std::to_string(i) + " stable";
    if (i % 10 == 0) {
      a.push_back("token=" + rng.alnum_token(32));
      b.push_back("token=" + rng.alnum_token(32));
      c.push_back("token=" + rng.alnum_token(32));
    } else {
      a.push_back(line);
      b.push_back(line);
      c.push_back(line);
    }
  }
  for (auto _ : state) {
    core::NoiseMask mask = core::build_noise_mask(a, b);
    benchmark::DoNotOptimize(core::masked_compare(a, c, mask));
  }
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_NoiseMaskAndCompare)->Arg(50)->Arg(500);

// Ephemeral-token detection across N=3 instances. detect_ephemeral_tokens
// used to build a std::string per candidate line before validating it;
// candidates are now validated through a view and materialised only when
// accepted. Measured before/after on this benchmark (RelWithDebInfo,
// 3x500 lines, median of 7): ~36.3us -> ~33.1us per detect with short
// rejected candidates; within run-to-run noise (+-5%) when rejects are
// past small-string size — the win is one allocation per rejected
// candidate, not a large wall-time shift on this mix.
void BM_DenoiseTokenDetect(benchmark::State& state) {
  Rng rng(3);
  std::vector<std::vector<std::string>> instances(3);
  for (int i = 0; i < state.range(0); ++i) {
    if (i % 5 == 0) {
      // A real per-instance token: differs everywhere, alnum, >= 10 chars.
      for (auto& inst : instances)
        inst.push_back("csrf=" + rng.alnum_token(32));
    } else if (i % 5 == 1) {
      // Differs everywhere but contains a non-alnum character: validated
      // then REJECTED — the path that previously paid a wasted allocation
      // (the candidate is past small-string size).
      for (auto& inst : instances)
        inst.push_back("t=" + rng.alnum_token(24) + "!x" + rng.alnum_token(8));
    } else {
      std::string line = "line " + std::to_string(i) + " stable";
      for (auto& inst : instances) inst.push_back(line);
    }
  }
  for (auto _ : state)
    benchmark::DoNotOptimize(core::detect_ephemeral_tokens(instances));
  state.SetItemsProcessed(static_cast<int64_t>(state.iterations()) *
                          state.range(0) * 3);
}
BENCHMARK(BM_DenoiseTokenDetect)->Arg(50)->Arg(500);

void BM_HttpPluginCompare3(benchmark::State& state) {
  core::HttpPlugin plugin;
  Rng rng(3);
  auto page = [&](const std::string& tok) {
    http::Response r = http::make_response(
        200, "<html><input value=\"" + tok + "\"><p>body body body</p></html>");
    return core::Unit{r.to_bytes(), "http-resp"};
  };
  std::vector<core::Unit> units{page(rng.alnum_token(32)),
                                page(rng.alnum_token(32)),
                                page(rng.alnum_token(32))};
  core::KnownVariance kv;
  core::CompareContext ctx;
  ctx.filter_pair = true;
  ctx.variance = &kv;
  for (auto _ : state)
    benchmark::DoNotOptimize(plugin.compare(units, ctx));
}
BENCHMARK(BM_HttpPluginCompare3);

void BM_JsonParseDump(benchmark::State& state) {
  std::string doc = R"({"items":[)";
  for (int i = 0; i < 50; ++i) {
    if (i) doc += ",";
    doc += R"({"id":)" + std::to_string(i) + R"(,"name":"item","score":1.5})";
  }
  doc += "]}";
  for (auto _ : state) {
    auto v = json::parse(doc);
    benchmark::DoNotOptimize(v->dump());
  }
  state.SetBytesProcessed(static_cast<int64_t>(state.iterations()) *
                          static_cast<int64_t>(doc.size()));
}
BENCHMARK(BM_JsonParseDump);

void BM_SqlIndexedLookup(benchmark::State& state) {
  sqldb::Database db(sqldb::minipg_info("13.0"));
  workloads::load_pgbench(db, 10000, 1);
  sqldb::Session s(db, "postgres");
  Rng rng(4);
  for (auto _ : state) {
    auto q = workloads::pgbench_select_tx(rng, 10000);
    benchmark::DoNotOptimize(s.execute(q));
  }
}
BENCHMARK(BM_SqlIndexedLookup);

void BM_SqlTpchQ1(benchmark::State& state) {
  sqldb::Database db(sqldb::minipg_info("13.0"));
  workloads::load_tpch(db, workloads::TpchScale{0.25}, 1);
  sqldb::Session s(db, "postgres");
  const auto& q1 = workloads::tpch_queries()[0];
  for (auto _ : state) benchmark::DoNotOptimize(s.execute(q1));
}
BENCHMARK(BM_SqlTpchQ1);

void BM_SqlParseOnly(benchmark::State& state) {
  const auto& q = workloads::tpch_queries()[1];  // join-heavy text
  for (auto _ : state) benchmark::DoNotOptimize(sqldb::parse_sql(q));
}
BENCHMARK(BM_SqlParseOnly);

}  // namespace

BENCHMARK_MAIN();
