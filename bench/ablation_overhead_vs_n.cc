// Ablation: overhead as a function of N (the abstract's claim that RDDR's
// "performance overhead ... is near-linear in the number of redundant
// microservices").
//
// Sweeps N = 1..5 identical minipg instances behind RDDR under a fixed
// pgbench load and reports memory, aggregate CPU, unsaturated latency, and
// the saturated throughput ceiling. Memory and CPU should scale ~N; the
// throughput ceiling ~1/N (the cores are split N ways); unsaturated
// latency should stay nearly flat (replicas run in parallel).
#include <cstdio>
#include <memory>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "rddr/rddr.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"

using namespace rddr;

namespace {

constexpr int kAccounts = 10000;
constexpr double kCpuPerQuery = 2e-3;

struct Point {
  double mem_gb = 0;
  double cpu_core_s = 0;
  double lat_low_ms = 0;   // 4 clients: far from saturation
  double tps_high = 0;     // 128 clients: the saturated ceiling
};

Point run_n(int n) {
  Point p;
  for (int clients : {4, 128}) {
    sim::Simulator simulator;
    sim::Network net(simulator, 50 * sim::kMicrosecond);
    sim::Host host(simulator, "server", 32, 128LL << 30);
    std::vector<std::shared_ptr<sqldb::Database>> dbs;
    std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
    for (int i = 0; i < n; ++i) {
      auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
      workloads::load_pgbench(*db, kAccounts, 9);
      sqldb::SqlServer::Options so;
      so.address = "pg-" + std::to_string(i) + ":5432";
      so.cpu_per_query = kCpuPerQuery;
      so.cpu_per_row = 0;
      so.rng_seed = 40 + static_cast<uint64_t>(i);
      dbs.push_back(db);
      servers.push_back(
          std::make_unique<sqldb::SqlServer>(net, host, db, so));
    }
    std::unique_ptr<core::NVersionDeployment> rddr;
    std::string address = "pg-0:5432";
    if (n > 1) {
      core::NVersionDeployment::Builder b;
      b.listen("front:5432")
          .plugin(std::make_shared<core::PgPlugin>())
          .filter_pair(true)
          .cpu_model(50e-6, 2e-9);
      for (int i = 0; i < n; ++i)
        b.add_version("pg-" + std::to_string(i) + ":5432");
      rddr = b.build(net, host);
      address = "front:5432";
    }
    host.reset_metrics();
    workloads::ClientPoolOptions opts;
    opts.address = address;
    opts.clients = clients;
    opts.transactions_per_client = 100;
    opts.seed = 5;
    opts.next_query = [](Rng& rng, int, int) {
      return workloads::pgbench_select_tx(rng, kAccounts);
    };
    auto result = workloads::run_client_pool(simulator, net, opts);
    if (clients == 4) {
      p.lat_low_ms = result.latency_ms.mean();
      p.mem_gb = static_cast<double>(host.memory_bytes()) / 1e9;
      p.cpu_core_s = host.busy_core_seconds();
    } else {
      p.tps_high = result.throughput_tps();
    }
  }
  return p;
}

}  // namespace

int main() {
  std::printf(
      "=== Ablation: cost vs N (abstract: overhead \"near-linear in the "
      "number of redundant microservices\") ===\n\n");
  std::printf("%-4s %12s %14s %16s %18s\n", "N", "memory(GB)",
              "cpu(core-s)", "latency@4 (ms)", "ceiling@128 (tps)");
  std::printf("%s\n", std::string(68, '-').c_str());
  Point base{};
  for (int n = 1; n <= 5; ++n) {
    Point p = run_n(n);
    if (n == 1) base = p;
    std::printf("%-4d %12.3f %14.2f %16.2f %18.0f", n, p.mem_gb,
                p.cpu_core_s, p.lat_low_ms, p.tps_high);
    if (n > 1)
      std::printf("   (mem %.2fx, cpu %.2fx, ceiling %.2fx)",
                  p.mem_gb / base.mem_gb, p.cpu_core_s / base.cpu_core_s,
                  p.tps_high / base.tps_high);
    std::printf("\n");
  }
  std::printf(
      "\nExpected: memory and cpu scale ~N (near-linear), unsaturated "
      "latency stays ~flat (replicas run in parallel), and the saturated "
      "ceiling scales ~1/N.\n");
  return 0;
}
