// Regenerates Table I: "RDDR vulnerability mitigations".
//
// Runs all ten end-to-end scenarios and prints the table the paper
// reports, extended with the live verdicts this reproduction measures:
// whether the exploit works without RDDR, whether benign traffic is
// unaffected, and whether the leak was blocked.
#include <cstdio>

#include "workloads/scenarios.h"

int main() {
  std::printf("=== Table I: RDDR vulnerability mitigations ===\n\n");
  std::printf("%-16s %-28s %-10s %-7s %-9s %-9s %-8s %-10s\n", "CVE",
              "Microservice/program", "CWE", "OWASP#", "ExploitOK",
              "BenignOK", "Blocked", "Mitigated");
  std::printf("%s\n", std::string(104, '-').c_str());

  auto rows = rddr::workloads::run_all_table1();
  int mitigated = 0;
  for (const auto& r : rows) {
    std::printf("%-16s %-28.28s %-10s %-7s %-9s %-9s %-8s %-10s\n",
                r.id.c_str(), r.microservice.c_str(), r.cwe.c_str(),
                r.owasp.c_str(), r.exploit_works_unprotected ? "yes" : "NO",
                r.benign_ok ? "yes" : "NO", r.exploit_blocked ? "yes" : "NO",
                r.mitigated() ? "yes" : "NO");
    if (r.mitigated()) ++mitigated;
  }
  std::printf("\nDiversity sources:\n");
  for (const auto& r : rows)
    std::printf("  %-16s %s\n", r.id.c_str(), r.diversity.c_str());
  std::printf("\nDivergence details:\n");
  for (const auto& r : rows)
    std::printf("  %-16s %s\n", r.id.c_str(),
                r.detail.empty() ? "(none)" : r.detail.c_str());
  std::printf(
      "\nSummary: %d/10 CWEs mitigated (paper: 10/10). 'ExploitOK' shows the "
      "exploit succeeding against an UNPROTECTED vulnerable instance.\n",
      mitigated);
  return mitigated == 10 ? 0 : 1;
}
