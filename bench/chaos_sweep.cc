// Seeded chaos sweep: runs the self-healing chaos harness over N seeds
// and emits one JSON summary line for CI dashboards:
//
//   {"seeds_run":20,"invariant_failures":0,"mean_recovery_ms":412.3}
//
// Usage: chaos_sweep [n_seeds] [first_seed]
// Exits 1 when any seed violates an invariant; the failing seeds (with
// their shrunk minimal repro) are printed to stderr so a single line
// reproduces the failure: run_chaos_seed(<seed>, {}).
#include <cstdio>
#include <cstdlib>
#include <string>

#include "chaos/chaos.h"

int main(int argc, char** argv) {
  using namespace rddr::chaos;
  int n_seeds = argc > 1 ? std::atoi(argv[1]) : 20;
  uint64_t first_seed = argc > 2
                            ? static_cast<uint64_t>(std::atoll(argv[2]))
                            : 1;
  if (n_seeds <= 0) {
    std::fprintf(stderr, "usage: %s [n_seeds] [first_seed]\n", argv[0]);
    return 2;
  }

  ChaosOptions opts;
  int failures = 0;
  double recovery_ms_sum = 0;
  int recovered = 0;
  for (int k = 0; k < n_seeds; ++k) {
    uint64_t seed = first_seed + static_cast<uint64_t>(k);
    ChaosReport rep = run_chaos_seed(seed, opts);
    if (rep.recovery_time >= 0) {
      recovery_ms_sum +=
          static_cast<double>(rep.recovery_time) / rddr::sim::kMillisecond;
      ++recovered;
    }
    if (rep.ok) continue;
    ++failures;
    std::fprintf(stderr, "seed %llu FAILED:\n%s%s\n",
                 static_cast<unsigned long long>(seed),
                 describe(rep.plan).c_str(), rep.summary().c_str());
    ShrinkResult shrunk = shrink_fault_plan(rep.plan, opts, seed);
    std::fprintf(stderr, "minimal repro (%zu fault%s, %zu runs):\n%s",
                 shrunk.plan.size(), shrunk.plan.size() == 1 ? "" : "s",
                 shrunk.runs, describe(shrunk.plan).c_str());
  }

  double mean_recovery_ms = recovered > 0 ? recovery_ms_sum / recovered : -1;
  std::printf(
      "{\"seeds_run\":%d,\"invariant_failures\":%d,"
      "\"mean_recovery_ms\":%.1f}\n",
      n_seeds, failures, mean_recovery_ms);
  return failures == 0 ? 0 : 1;
}
