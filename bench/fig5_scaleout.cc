// Scale-out experiment: offered load x shard count for the sharded front
// tier (rddr/frontier.h), driven open-loop.
//
// Fig 5 showed the single proxy pair is the deployment's throughput
// ceiling. This bench shows the ceiling is horizontal: S consistent-hash
// shards, each a full RDDR pool with per-shard admission control, lift
// goodput ~Sx while overload is shed fast and protocol-correctly instead
// of collapsing the pool.
//
// The driver is open-loop Poisson (workloads::run_open_loop): arrivals do
// not wait for completions, so offered load stays fixed past saturation —
// the regime a closed-loop pool can never reach and exactly where
// admission control matters.
//
// Checks enforced on every run (full and --smoke), exit 1 on failure:
//   * determinism  — the whole sweep, run twice with the same seeds, emits
//                    byte-identical JSON;
//   * scale-out    — at 2x the single-shard saturation load, 4 shards
//                    deliver >= 3x the single-shard peak goodput;
//   * fast shed    — shed connections are rejected in < 1/10 of the
//                    saturated (unprotected) service latency;
//   * shed protocol— a shed pg connection receives SQLSTATE 53300, not a
//                    hang or a raw close.
//
// stdout is the JSON result document (BENCH_scaleout.json); the human
// table goes to stderr.
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/strutil.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "netsim/parallel.h"
#include "rddr/rddr.h"
#include "sqldb/client.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"

using namespace rddr;

namespace {

constexpr double kCpuPerQuery = 2e-3;  // per-tx minipg CPU (fig5's model)
constexpr double kAdmissionRate = 4200;  // per-shard admitted sessions/s

int g_failures = 0;

#define CHECK_MSG(cond, ...)                                     \
  do {                                                           \
    if (!(cond)) {                                               \
      std::fprintf(stderr, "FAIL: " __VA_ARGS__);                \
      std::fprintf(stderr, "\n");                                \
      ++g_failures;                                              \
    }                                                            \
  } while (0)

struct Point {
  size_t shards = 0;
  double offered_rate = 0;
  bool protected_tier = true;
  workloads::OpenLoopResult r;
  // Island-mode instrumentation (islands > 0 only).
  double wall_s = 0;
  double model_speedup = 1.0;
  uint64_t windows = 0;
  uint64_t barrier_stalls = 0;
};

/// One deployment + one open-loop run. Shard k gets its own 32-core host
/// carrying its proxy pair and its 3 minipg instances (fig5's co-located
/// placement, replicated per shard). `islands > 0` partitions the event
/// loop (islands=1 is the sequential oracle with identical semantics).
Point run_point(size_t shards, double offered_rate, double duration_s,
                int accounts, bool protected_tier, size_t islands = 0) {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);

  std::vector<std::unique_ptr<sim::Host>> hosts;
  std::vector<sim::Host*> host_ptrs;
  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  std::vector<std::vector<std::string>> pools;
  for (size_t k = 0; k < shards; ++k) {
    hosts.push_back(std::make_unique<sim::Host>(
        simulator, "node-" + std::to_string(k), 32, 128LL << 30));
    host_ptrs.push_back(hosts.back().get());
    pools.emplace_back();
    for (int i = 0; i < 3; ++i) {
      std::string addr =
          strformat("pg-s%zu-%d:5432", k, i);
      auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
      workloads::load_pgbench(*db, accounts, 9);
      sqldb::SqlServer::Options so;
      so.address = addr;
      so.cpu_per_query = kCpuPerQuery;
      so.cpu_per_row = 0;
      so.rng_seed = 20 + k * 10 + static_cast<uint64_t>(i);
      dbs.push_back(db);
      servers.push_back(
          std::make_unique<sqldb::SqlServer>(net, *hosts.back(), db, so));
      pools.back().push_back(addr);
    }
  }

  core::AdmissionOptions adm;  // defaults = unprotected (no rate limit)
  if (protected_tier) {
    adm.rate_per_s = kAdmissionRate;
    adm.burst = 32;
    adm.queue_limit = 64;
    adm.shed_deadline = 5 * sim::kMillisecond;
  }
  auto front = core::NVersionDeployment::Builder()
                   .name("front")
                   .listen("front:5432")
                   .plugin(std::make_shared<core::PgPlugin>())
                   .filter_pair(true)
                   .cpu_model(50e-6, 5e-9)
                   .admission(adm)
                   .shard_versions(pools)
                   .islands(islands)
                   .build_frontier(net, host_ptrs);

  workloads::OpenLoopOptions opts;
  opts.address = "front:5432";
  opts.rate_per_s = offered_rate;
  opts.requests = static_cast<int>(offered_rate * duration_s);
  opts.seed = 5;
  opts.next_query = [accounts](Rng& rng, int) {
    return workloads::pgbench_select_tx(rng, accounts);
  };
  Point p;
  p.shards = shards;
  p.offered_rate = offered_rate;
  p.protected_tier = protected_tier;
  auto t0 = std::chrono::steady_clock::now();
  p.r = workloads::run_open_loop(simulator, net, opts);
  p.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                           t0)
                 .count();
  if (const auto* ex = simulator.executor()) {
    const auto& st = ex->stats();
    p.model_speedup = st.model_speedup();
    p.windows = st.windows;
    p.barrier_stalls = st.barrier_stalls;
  }
  return p;
}

std::string point_json(const Point& p) {
  return strformat(
      "    {\"shards\": %zu, \"offered_rate\": %.0f, \"protected\": %s, "
      "\"offered\": %llu, \"completed\": %llu, \"rejected\": %llu, "
      "\"goodput_tps\": %.6f, \"latency_p50_ms\": %.6f, "
      "\"rejection_p50_ms\": %.6f}",
      p.shards, p.offered_rate, p.protected_tier ? "true" : "false",
      static_cast<unsigned long long>(p.r.offered),
      static_cast<unsigned long long>(p.r.completed),
      static_cast<unsigned long long>(p.r.rejected), p.r.goodput_tps(),
      p.r.latency_ms.percentile(50), p.r.rejection_ms.percentile(50));
}

double shed_fraction(const Point& p) {
  return p.r.offered > 0
             ? static_cast<double>(p.r.rejected) /
                   static_cast<double>(p.r.offered)
             : 0.0;
}

/// A pg client shed by a saturated frontier must see SQLSTATE 53300 — the
/// protocol-correct "too many connections" error — not a hang or raw
/// close.
void check_shed_protocol() {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  sim::Host host(simulator, "node", 32, 128LL << 30);
  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  std::vector<std::string> pool;
  for (int i = 0; i < 3; ++i) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
    workloads::load_pgbench(*db, 100, 9);
    sqldb::SqlServer::Options so;
    so.address = "pg-" + std::to_string(i) + ":5432";
    so.rng_seed = 20 + static_cast<uint64_t>(i);
    dbs.push_back(db);
    servers.push_back(std::make_unique<sqldb::SqlServer>(net, host, db, so));
    pool.push_back(so.address);
  }
  core::AdmissionOptions adm;
  adm.rate_per_s = 1;  // refill is negligible within the test window
  adm.burst = 1;       // exactly one admission
  adm.queue_limit = 1;
  adm.shed_deadline = 2 * sim::kMillisecond;
  auto front = core::NVersionDeployment::Builder()
                   .name("front")
                   .listen("front:5432")
                   .versions(pool)
                   .plugin(std::make_shared<core::PgPlugin>())
                   .filter_pair(true)
                   .admission(adm)
                   .build_frontier(net, host);

  std::vector<std::unique_ptr<sqldb::PgClient>> clients;
  std::vector<sqldb::QueryOutcome> outcomes(3);
  std::vector<bool> answered(3, false);
  for (int c = 0; c < 3; ++c) {
    clients.push_back(std::make_unique<sqldb::PgClient>(
        net, "shedcheck-" + std::to_string(c), "front:5432", "postgres"));
    clients.back()->query("SELECT 1;",
                          [&outcomes, &answered, c](sqldb::QueryOutcome o) {
                            outcomes[static_cast<size_t>(c)] = std::move(o);
                            answered[static_cast<size_t>(c)] = true;
                          });
  }
  simulator.run_until(sim::kSecond);

  int ok = 0, shed_53300 = 0;
  for (int c = 0; c < 3; ++c) {
    CHECK_MSG(answered[static_cast<size_t>(c)],
              "shed-protocol: client %d hung (no answer after 1s)", c);
    if (!answered[static_cast<size_t>(c)]) continue;
    const auto& o = outcomes[static_cast<size_t>(c)];
    if (!o.failed()) ++ok;
    else if (o.error_sqlstate == "53300") ++shed_53300;
    else
      CHECK_MSG(false,
                "shed-protocol: client %d failed with sqlstate '%s' "
                "(connection_lost=%d) instead of 53300",
                c, o.error_sqlstate.value_or("<none>").c_str(),
                o.connection_lost ? 1 : 0);
  }
  CHECK_MSG(ok == 1, "shed-protocol: expected exactly 1 admitted client, got %d",
            ok);
  CHECK_MSG(shed_53300 == 2,
            "shed-protocol: expected 2 clients shed with 53300, got %d",
            shed_53300);
  std::fprintf(stderr,
               "[shed protocol] 1 admitted, %d shed with SQLSTATE 53300, "
               "0 hung\n",
               shed_53300);
}

struct SweepResult {
  std::vector<Point> points;
  std::string json;
};

SweepResult run_sweep(const std::vector<double>& grid1,
                      const std::vector<double>& grid4, double two_sat,
                      double duration_s, int accounts) {
  SweepResult sr;
  std::string json = "[\n";
  bool first = true;
  auto add = [&](Point p) {
    if (!first) json += ",\n";
    first = false;
    json += point_json(p);
    sr.points.push_back(std::move(p));
  };
  for (double rate : grid1)
    add(run_point(1, rate, duration_s, accounts, true));
  for (double rate : grid4)
    add(run_point(4, rate, duration_s, accounts, true));
  // The unprotected reference: same topology, admission off — its p50
  // service latency under 2x-saturation load is what shedding must beat.
  add(run_point(1, two_sat, duration_s, accounts, false));
  json += "\n  ]";
  sr.json = std::move(json);
  return sr;
}

/// Island-scaling sweep: the 16-shard fig5 deployment run at islands
/// {1,2,4,8}. Two gates:
///   * byte-identity — every island count emits the same point JSON as
///     the islands=1 oracle (the determinism contract, end to end);
///   * scaling floor — model_speedup (total events / window critical
///     path, a deterministic property of the partitioning) >= 1.8x at 4
///     islands. The wall-clock floor only arms on machines with >= 4
///     hardware cores; model_speedup gates everywhere, including CI
///     boxes with 1 core where wall time cannot scale.
std::string run_island_sweep(bool smoke, const std::vector<size_t>& counts) {
  const size_t shards = 16;
  const double rate = smoke ? 22400 : 44800;  // 16 x (1400 | 2800) /s
  const double duration_s = smoke ? 0.1 : 0.25;
  const int accounts = smoke ? 2000 : 20000;
  const unsigned cores = std::thread::hardware_concurrency();

  std::string json = "[\n";
  std::string oracle_json;
  double wall1 = 0;
  bool first = true;
  for (size_t n : counts) {
    Point p = run_point(shards, rate, duration_s, accounts, true, n);
    std::string pj = point_json(p);
    if (n == 1) {
      oracle_json = pj;
      wall1 = p.wall_s;
    } else {
      CHECK_MSG(pj == oracle_json,
                "islands=%zu point JSON differs from the islands=1 oracle",
                n);
    }
    if (n == 4)
      CHECK_MSG(p.model_speedup >= 1.8,
                "scaling floor: model_speedup %.2f < 1.8 at 4 islands "
                "(16-shard fig5)",
                p.model_speedup);
    if (n >= 4 && cores >= 4 && wall1 > 0)
      CHECK_MSG(p.wall_s < wall1,
                "wall-clock floor (%u cores): islands=%zu wall %.3fs not "
                "below islands=1 wall %.3fs",
                cores, n, p.wall_s, wall1);
    std::fprintf(stderr,
                 "[islands] n=%zu wall %.3fs model_speedup %.2fx windows "
                 "%llu stalls %llu\n",
                 n, p.wall_s, p.model_speedup,
                 static_cast<unsigned long long>(p.windows),
                 static_cast<unsigned long long>(p.barrier_stalls));
    if (!first) json += ",\n";
    first = false;
    json += strformat(
        "    {\"islands\": %zu, \"wall_s\": %.4f, \"model_speedup\": %.4f, "
        "\"windows\": %llu, \"barrier_stalls\": %llu, "
        "\"byte_identical_to_oracle\": %s}",
        n, p.wall_s, p.model_speedup,
        static_cast<unsigned long long>(p.windows),
        static_cast<unsigned long long>(p.barrier_stalls),
        n == 1 || point_json(p) == oracle_json ? "true" : "false");
  }
  json += "\n  ]";
  return strformat(
      "{\n  \"deployment\": \"fig5-16shard\", \"offered_rate\": %.0f,\n"
      "  \"hardware_cores\": %u,\n  \"sweep\": %s\n  }",
      rate, cores, json.c_str());
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  size_t islands_flag = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
    else if (std::strncmp(argv[i], "--islands=", 10) == 0)
      islands_flag = static_cast<size_t>(std::atoi(argv[i] + 10));
  }

  if (islands_flag > 0) {
    // Island-mode gate (tests/run_sanitized.sh runs this under TSan):
    // oracle byte-identity + the model_speedup scaling floor at the
    // requested count.
    std::vector<size_t> counts{1};
    if (islands_flag > 1) counts.push_back(islands_flag);
    if (islands_flag != 4) counts.push_back(4);  // the floor's count
    std::string pj = run_island_sweep(smoke, counts);
    std::printf("{\n  \"mode\": \"%s\",\n  \"parallel\": %s\n}\n",
                smoke ? "islands-smoke" : "islands", pj.c_str());
    if (g_failures > 0) {
      std::fprintf(stderr, "\n%d island check(s) FAILED\n", g_failures);
      return 1;
    }
    std::fprintf(stderr, "\nall island checks passed\n");
    return 0;
  }

  // Grids chosen around the per-shard admission cap (4200/s) and the
  // ~5300 tps pool capacity: saturation (shed fraction >= 1/3) lands at
  // 7000 offered, so 2x saturation = 14000 appears in both grids.
  std::vector<double> grid1 =
      smoke ? std::vector<double>{2800, 7000, 14000}
            : std::vector<double>{1400, 2800, 4200, 5600, 7000,
                                  8400, 11200, 14000};
  std::vector<double> grid4 =
      smoke ? std::vector<double>{14000}
            : std::vector<double>{5600, 11200, 14000, 16800};
  const double duration_s = smoke ? 0.15 : 0.5;
  const int accounts = smoke ? 2000 : 20000;

  std::fprintf(stderr, "=== Scale-out: sharded front tier, open-loop load "
                       "(%s) ===\n",
               smoke ? "smoke" : "full");

  SweepResult a = run_sweep(grid1, grid4, 14000, duration_s, accounts);
  SweepResult b = run_sweep(grid1, grid4, 14000, duration_s, accounts);
  CHECK_MSG(a.json == b.json,
            "determinism: two same-seed sweeps produced different JSON");

  std::fprintf(stderr, "%-7s %-9s %-10s %10s %10s %12s %14s %16s\n",
               "shards", "offered/s", "protected", "completed", "rejected",
               "goodput", "latency p50", "rejection p50");
  for (const auto& p : a.points)
    std::fprintf(stderr,
                 "%-7zu %-9.0f %-10s %10llu %10llu %12.0f %11.2f ms %13.2f "
                 "ms\n",
                 p.shards, p.offered_rate, p.protected_tier ? "yes" : "NO",
                 static_cast<unsigned long long>(p.r.completed),
                 static_cast<unsigned long long>(p.r.rejected),
                 p.r.goodput_tps(), p.r.latency_ms.percentile(50),
                 p.r.rejection_ms.percentile(50));

  // Saturation: the first single-shard rate shedding >= 1/3 of arrivals.
  double sat_rate = 0, peak1 = 0;
  for (const auto& p : a.points) {
    if (p.shards != 1 || !p.protected_tier) continue;
    peak1 = std::max(peak1, p.r.goodput_tps());
    if (sat_rate == 0 && shed_fraction(p) >= 1.0 / 3.0)
      sat_rate = p.offered_rate;
  }
  CHECK_MSG(sat_rate > 0, "no single-shard rate reached 1/3 shed fraction");

  const Point* p4 = nullptr;
  const Point* p1_2sat = nullptr;
  const Point* unprot = nullptr;
  for (const auto& p : a.points) {
    if (p.shards == 4 && p.offered_rate == 2 * sat_rate) p4 = &p;
    if (p.shards == 1 && p.protected_tier && p.offered_rate == 2 * sat_rate)
      p1_2sat = &p;
    if (!p.protected_tier) unprot = &p;
  }
  CHECK_MSG(p4 && p1_2sat && unprot,
            "sweep missing the 2x-saturation points (sat=%.0f)", sat_rate);
  if (p4 && p1_2sat && unprot) {
    std::fprintf(stderr,
                 "\nsaturation %.0f/s; single-shard peak %.0f tps; 4-shard "
                 "goodput at 2x saturation %.0f tps (%.2fx peak)\n",
                 sat_rate, peak1, p4->r.goodput_tps(),
                 p4->r.goodput_tps() / peak1);
    CHECK_MSG(p4->r.goodput_tps() >= 3.0 * peak1,
              "scale-out: 4-shard goodput %.0f < 3x single-shard peak %.0f",
              p4->r.goodput_tps(), 3.0 * peak1);
    double shed_p50 = p1_2sat->r.rejection_ms.percentile(50);
    double sat_p50 = unprot->r.latency_ms.percentile(50);
    std::fprintf(stderr,
                 "shed rejection p50 %.2f ms vs unprotected saturated "
                 "service p50 %.2f ms (%.1fx faster)\n",
                 shed_p50, sat_p50, sat_p50 / std::max(shed_p50, 1e-9));
    CHECK_MSG(shed_p50 < sat_p50 / 10.0,
              "fast shed: rejection p50 %.2f ms not < saturated p50/10 "
              "(%.2f ms)",
              shed_p50, sat_p50 / 10.0);
  }

  check_shed_protocol();

  // Island scaling on the 16-shard deployment: byte-identity vs the
  // islands=1 oracle plus the model_speedup floor (full mode sweeps
  // 1/2/4/8; smoke keeps the legacy fast path and relies on the
  // dedicated --smoke --islands=4 gate in tests/run_sanitized.sh).
  std::string parallel_json;
  if (!smoke) {
    std::fprintf(stderr, "\n=== Island scaling: 16-shard fig5 ===\n");
    parallel_json = run_island_sweep(false, {1, 2, 4, 8});
  }

  std::printf("{\n  \"mode\": \"%s\",\n  \"points\": %s,\n"
              "  \"deterministic\": %s%s%s\n}\n",
              smoke ? "smoke" : "full", a.json.c_str(),
              a.json == b.json ? "true" : "false",
              parallel_json.empty() ? "" : ",\n  \"parallel\": ",
              parallel_json.c_str());

  if (g_failures > 0) {
    std::fprintf(stderr, "\n%d check(s) FAILED\n", g_failures);
    return 1;
  }
  std::fprintf(stderr, "\nall scale-out checks passed\n");
  return 0;
}
