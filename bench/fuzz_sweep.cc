// Adversarial fuzz sweep over the scenario factory: for every generated
// topology, run the protocol-aware fuzzer across N seeds twice — first
// with the stock denoiser rules (baseline), then with the rules the
// corpus miner proposes from the baseline's divergence corpus — and emit
// one JSON document for CI dashboards:
//
//   {"seeds_per_topology":20,"invariant_failures":0,...,
//    "topologies":[{"name":"pg-direct","benign_rate_before":1.0,
//      "benign_rate_after":0.0,"rules":["pg_param:build_sha"],...}]}
//
// Checked per run: the fuzzer's three invariants (no secret leak past an
// RDDR edge, no hung sessions, exact benign accounting). Checked per
// topology: per-seed determinism (seed 1 re-runs byte-identically), the
// miner actually lowering the benign-divergence rate, at least one true
// divergence surviving tuning, and a composed-chaos pass staying safe.
// Any failing plan is shrunk to a minimal repro on stderr.
//
// Usage: fuzz_sweep [--smoke] [n_seeds] [first_seed]
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "scenario/corpus.h"
#include "scenario/fuzzer.h"

using namespace rddr;
using namespace rddr::scenario;

namespace {

struct SweepAccum {
  std::vector<core::DivergenceRecord> corpus;
  uint64_t issued = 0, served = 0, refused = 0;
  uint64_t interventions = 0, idle_sheds = 0, unit_timeouts = 0;
  int violations = 0;
};

SweepAccum sweep(int n_seeds, uint64_t first_seed, const FuzzOptions& opts,
                 const char* label) {
  SweepAccum acc;
  for (int k = 0; k < n_seeds; ++k) {
    const uint64_t seed = first_seed + static_cast<uint64_t>(k);
    const FuzzPlan plan = generate_fuzz_plan(seed, opts);
    const FuzzReport rep = run_fuzz(plan, opts);
    acc.issued += rep.issued;
    acc.served += rep.served;
    acc.refused += rep.refused;
    acc.interventions += rep.interventions;
    acc.idle_sheds += rep.idle_sheds;
    acc.unit_timeouts += rep.unit_timeouts;
    acc.corpus.insert(acc.corpus.end(), rep.corpus.begin(), rep.corpus.end());
    if (rep.ok()) continue;
    ++acc.violations;
    std::fprintf(stderr, "[%s] seed %llu FAILED:\n%s", label,
                 static_cast<unsigned long long>(seed), rep.summary().c_str());
    const FuzzPlan shrunk = shrink_fuzz_plan(plan, opts);
    std::fprintf(stderr, "minimal repro (%zu op%s):\n%s", shrunk.ops.size(),
                 shrunk.ops.size() == 1 ? "" : "s",
                 describe(shrunk).c_str());
  }
  return acc;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  int n_seeds = -1;
  uint64_t first_seed = 1;
  int positional = 0;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else if (positional == 0) {
      n_seeds = std::atoi(argv[i]);
      ++positional;
    } else {
      first_seed = static_cast<uint64_t>(std::atoll(argv[i]));
      ++positional;
    }
  }
  if (n_seeds <= 0) n_seeds = smoke ? 3 : 20;

  int invariant_failures = 0;
  int determinism_failures = 0;
  int miner_failures = 0;
  std::string topo_json;

  for (int topo = 0; topo < Topology::kKinds; ++topo) {
    FuzzOptions base;
    base.topology = topo;

    // Per-seed determinism: the first seed must reproduce its report and
    // serialized corpus byte-for-byte.
    {
      const FuzzReport a = run_fuzz_seed(first_seed, base);
      const FuzzReport b = run_fuzz_seed(first_seed, base);
      if (a.summary() != b.summary() ||
          corpus_json(a.corpus, base.variance) !=
              corpus_json(b.corpus, base.variance)) {
        ++determinism_failures;
        std::fprintf(stderr, "[%s] determinism FAILED for seed %llu:\n%s%s",
                     Topology::kind_name(topo),
                     static_cast<unsigned long long>(first_seed),
                     a.summary().c_str(), b.summary().c_str());
      }
    }

    const SweepAccum before =
        sweep(n_seeds, first_seed, base, Topology::kind_name(topo));
    const MinerReport mined =
        mine_corpus(before.corpus, base.benign_window, base.variance);

    FuzzOptions tuned = base;
    tuned.variance = mined.tuned;
    const SweepAccum after =
        sweep(n_seeds, first_seed, tuned, Topology::kind_name(topo));
    const MinerReport remined =
        mine_corpus(after.corpus, tuned.benign_window, tuned.variance);

    // Composed environmental chaos must not break the invariants either.
    FuzzOptions composed = tuned;
    composed.compose_faults = true;
    const SweepAccum chaos =
        sweep(n_seeds, first_seed, composed, Topology::kind_name(topo));

    invariant_failures += before.violations + after.violations +
                          chaos.violations;

    if (remined.benign_rate() >= mined.benign_rate() ||
        remined.true_records == 0) {
      ++miner_failures;
      std::fprintf(stderr,
                   "[%s] miner FAILED to improve: before\n%safter\n%s",
                   Topology::kind_name(topo), mined.summary().c_str(),
                   remined.summary().c_str());
    }

    std::string rules;
    for (const DenoiserRule& r : mined.rules) {
      if (!rules.empty()) rules += ",";
      rules += "\"" + r.kind + ":" + r.name + "\"";
    }
    char buf[1024];
    std::snprintf(
        buf, sizeof(buf),
        "%s\n  {\"name\":\"%s\",\"benign_rate_before\":%.4f,"
        "\"benign_rate_after\":%.4f,\"rules\":[%s],"
        "\"corpus_before\":%zu,\"corpus_after\":%zu,"
        "\"true_divergences_after\":%llu,"
        "\"served_before\":%llu,\"served_after\":%llu,"
        "\"interventions_after\":%llu,\"idle_sheds_after\":%llu,"
        "\"composed_violations\":%d}",
        topo_json.empty() ? "" : ",", Topology::kind_name(topo),
        mined.benign_rate(), remined.benign_rate(), rules.c_str(),
        before.corpus.size(), after.corpus.size(),
        static_cast<unsigned long long>(remined.true_records),
        static_cast<unsigned long long>(before.served),
        static_cast<unsigned long long>(after.served),
        static_cast<unsigned long long>(after.interventions),
        static_cast<unsigned long long>(after.idle_sheds), chaos.violations);
    topo_json += buf;
  }

  std::printf(
      "{\"seeds_per_topology\":%d,\"families_pg\":%zu,\"families_http\":%zu,"
      "\"invariant_failures\":%d,\"determinism_failures\":%d,"
      "\"miner_failures\":%d,\"topologies\":[%s\n]}\n",
      n_seeds, families_for(true).size(), families_for(false).size(),
      invariant_failures, determinism_failures, miner_failures,
      topo_json.c_str());

  const int failures =
      invariant_failures + determinism_failures + miner_failures;
  return failures == 0 ? 0 : 1;
}
