// Ablation: served-request fraction under instance crashes, per
// DegradationPolicy (fault model extension of paper §IV-D, which notes
// RDDR "currently handles instance failure as divergence").
//
// A 1000-request pgbench-style closed loop (10 clients x 100 SELECT
// transactions) runs against N=3 minipg instances behind the incoming
// proxy while a FaultPlan crashes instances mid-run (each crash takes one
// instance down for 150 ms, round-robin across the replicas, spaced 60 ms
// apart so higher rates overlap and drop below 2 healthy instances).
//
// Expected shape: kStrict's served fraction collapses at the first crash
// (unanimity is unrecoverable mid-session); kQuorum rides out any single
// crash but fails closed when overlapping crashes leave <2 instances;
// kFailOpen additionally serves the single-survivor window uncompared,
// trading verification for availability.
//
// Output: a human-readable table, then one JSON document on the last line
// (machine-readable, for plotting).
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "common/log.h"
#include "netsim/fault.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "proto/json/json.h"
#include "rddr/deployment.h"
#include "rddr/plugins.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"

using namespace rddr;

namespace {

constexpr int kAccounts = 1000;
constexpr int kClients = 10;
constexpr int kTxPerClient = 100;
constexpr double kCpuPerQuery = 2e-3;  // ~250 ms total run: crashes land mid-run
constexpr sim::Time kFirstCrash = 30 * sim::kMillisecond;
constexpr sim::Time kCrashSpacing = 60 * sim::kMillisecond;
constexpr sim::Time kDowntime = 150 * sim::kMillisecond;

struct Outcome {
  uint64_t completed = 0;
  uint64_t failed = 0;
  core::ProxyStats stats;
  uint64_t bus_events = 0;

  double served_fraction() const {
    uint64_t total = completed + failed;
    return total ? static_cast<double>(completed) / static_cast<double>(total)
                 : 0.0;
  }
};

Outcome run_one(core::DegradationPolicy policy, int crashes) {
  sim::Simulator simulator;
  sim::Network net(simulator, 10 * sim::kMicrosecond);
  sim::Host host(simulator, "server", 32, 16LL << 30);

  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  for (int i = 0; i < 3; ++i) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
    workloads::load_pgbench(*db, kAccounts, 9);
    sqldb::SqlServer::Options so;
    so.address = "pg-" + std::to_string(i) + ":5432";
    so.cpu_per_query = kCpuPerQuery;
    so.cpu_per_row = 0;
    so.rng_seed = 20 + static_cast<uint64_t>(i);
    dbs.push_back(db);
    servers.push_back(
        std::make_unique<sqldb::SqlServer>(net, host, db, so));
  }

  core::HealthTracker::Options health;
  health.reconnect_jitter = 0;  // deterministic across runs
  auto deployment =
      core::NVersionDeployment::Builder()
          .listen("front:5432")
          .versions({"pg-0:5432", "pg-1:5432", "pg-2:5432"})
          .plugin(std::make_shared<core::PgPlugin>())
          .filter_pair()
          .degradation(policy)
          .health(health)
          // Crash k: instance (2, 1, 0, 2, 1, 0, ...) down for kDowntime
          // starting kFirstCrash + k * kCrashSpacing. Spacing < downtime,
          // so consecutive crashes overlap: two instances down at once
          // from the second crash on.
          .faults([crashes](sim::FaultPlan& faults) {
            for (int k = 0; k < crashes; ++k) {
              std::string node = "pg-" + std::to_string(2 - (k % 3));
              faults.crash_for(
                  kFirstCrash + static_cast<sim::Time>(k) * kCrashSpacing,
                  kDowntime, node);
            }
          })
          .build(net, host);

  workloads::ClientPoolOptions pool;
  pool.address = "front:5432";
  pool.clients = kClients;
  pool.transactions_per_client = kTxPerClient;
  pool.seed = 5;
  pool.next_query = [](Rng& rng, int, int) {
    return workloads::pgbench_select_tx(rng, kAccounts);
  };
  auto result = workloads::run_client_pool(simulator, net, pool);

  Outcome o;
  o.completed = result.completed;
  o.failed = result.failed;
  o.stats = deployment->aggregate_stats();
  o.bus_events = deployment->divergences();
  return o;
}

}  // namespace

int main() {
  // The crash schedule intentionally floods the proxy's WARN channel
  // (quarantines, drops, fail-open) — keep stdout to the table + JSON.
  set_log_level(LogLevel::kError);
  const core::DegradationPolicy policies[] = {
      core::DegradationPolicy::kStrict, core::DegradationPolicy::kQuorum,
      core::DegradationPolicy::kFailOpen};
  const int crash_counts[] = {0, 1, 2, 4, 8};

  std::printf(
      "=== Ablation: availability under instance crashes "
      "(%d requests, N=3) ===\n\n",
      kClients * kTxPerClient);
  std::printf("%-10s %8s %8s %8s %12s %11s %12s\n", "policy", "crashes",
              "served", "failed", "divergences", "quarantines",
              "passthrough");

  json::Array rows;
  for (auto policy : policies) {
    for (int crashes : crash_counts) {
      Outcome o = run_one(policy, crashes);
      std::printf("%-10s %8d %7.1f%% %8llu %12llu %11llu %12llu\n",
                  core::to_string(policy), crashes,
                  100.0 * o.served_fraction(),
                  static_cast<unsigned long long>(o.failed),
                  static_cast<unsigned long long>(o.stats.divergences),
                  static_cast<unsigned long long>(o.stats.quarantines),
                  static_cast<unsigned long long>(o.stats.passthrough_sessions));
      json::Object row;
      row["policy"] = core::to_string(policy);
      row["crashes"] = crashes;
      row["served_fraction"] = o.served_fraction();
      row["completed"] = static_cast<int64_t>(o.completed);
      row["failed"] = static_cast<int64_t>(o.failed);
      row["divergences"] = static_cast<int64_t>(o.stats.divergences);
      row["bus_events"] = static_cast<int64_t>(o.bus_events);
      row["instance_unreachable"] =
          static_cast<int64_t>(o.stats.instance_unreachable);
      row["quarantines"] = static_cast<int64_t>(o.stats.quarantines);
      row["reconnects"] = static_cast<int64_t>(o.stats.reconnects);
      row["degraded_sessions"] =
          static_cast<int64_t>(o.stats.degraded_sessions);
      row["quorum_outvotes"] = static_cast<int64_t>(o.stats.quorum_outvotes);
      row["passthrough_sessions"] =
          static_cast<int64_t>(o.stats.passthrough_sessions);
      rows.push_back(std::move(row));
    }
    std::printf("\n");
  }

  json::Object doc;
  doc["bench"] = "ablation_fault_availability";
  doc["requests"] = kClients * kTxPerClient;
  doc["n_instances"] = 3;
  doc["crash_downtime_ms"] =
      static_cast<int64_t>(kDowntime / sim::kMillisecond);
  doc["crash_spacing_ms"] =
      static_cast<int64_t>(kCrashSpacing / sim::kMillisecond);
  doc["results"] = std::move(rows);
  std::printf("%s\n", json::Value(std::move(doc)).dump().c_str());
  return 0;
}
