// Regenerates Figure 5: pgbench -S throughput and latency for 1..256
// clients across three deployments — RDDR (3x minipg), 1x minipg behind an
// envoy-style front proxy, and bare 1x minipg.
//
// Paper setup: Postgres scale-100 (10M rows) on a 32-vCPU server, clients
// on a separate machine, 10,000 SELECT transactions per client. Here the
// dataset is smaller and the per-query CPU cost (2 ms) models the paper's
// working set; transactions are scaled to 100/client so the full sweep
// finishes in seconds. Expected shape (paper §V-G2): all three track each
// other at low concurrency (~10% RDDR penalty at 8 clients); RDDR's
// throughput tapers first because its 3 instances exhaust the 32 cores
// ~3x sooner; latency grows correspondingly.
#include <cstdio>
#include <memory>
#include <vector>

#include "netsim/host.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "rddr/rddr.h"
#include "services/tcp_proxy.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/pgbench.h"

using namespace rddr;

namespace {

constexpr int kAccounts = 20000;
constexpr int kTxPerClient = 100;
constexpr double kCpuPerQuery = 2e-3;  // models the paper's SF-100 SELECT

enum class Deployment { kBare, kEnvoy, kRddr };

const char* name_of(Deployment d) {
  switch (d) {
    case Deployment::kBare: return "1x minipg";
    case Deployment::kEnvoy: return "1x minipg + envoy";
    case Deployment::kRddr: return "RDDR (3x minipg)";
  }
  return "?";
}

struct Measurement {
  double tps = 0;
  double latency_ms = 0;
  double failures = 0;
};

Measurement run_one(Deployment d, int clients) {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  sim::Host server_host(simulator, "server", 32, 128LL << 30);

  int n = d == Deployment::kRddr ? 3 : 1;
  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  for (int i = 0; i < n; ++i) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
    workloads::load_pgbench(*db, kAccounts, 9);
    sqldb::SqlServer::Options so;
    so.address = "pg-" + std::to_string(i) + ":5432";
    so.cpu_per_query = kCpuPerQuery;
    so.cpu_per_row = 0;
    so.rng_seed = 20 + static_cast<uint64_t>(i);
    dbs.push_back(db);
    servers.push_back(
        std::make_unique<sqldb::SqlServer>(net, server_host, db, so));
  }

  std::unique_ptr<services::TcpProxy> envoy;
  std::unique_ptr<core::NVersionDeployment> rddr;
  std::string address = "pg-0:5432";
  if (d == Deployment::kEnvoy) {
    services::TcpProxy::Options po;
    po.address = "front:5432";
    po.backend_address = "pg-0:5432";
    envoy = std::make_unique<services::TcpProxy>(net, server_host, po);
    address = "front:5432";
  } else if (d == Deployment::kRddr) {
    // The cpu model matches the paper's Python proxy: a few hundred us of
    // tokenize+diff work per message (calibrated to the ~10% penalty at 8
    // clients).
    rddr = core::NVersionDeployment::Builder()
               .listen("front:5432")
               .versions({"pg-0:5432", "pg-1:5432", "pg-2:5432"})
               .plugin(std::make_shared<core::PgPlugin>())
               .filter_pair(true)
               .cpu_model(50e-6, 5e-9)
               .build(net, server_host);
    address = "front:5432";
  }

  // The pool publishes its aggregates into the registry; the table below
  // is printed from those series rather than from the PoolResult.
  obs::MetricsRegistry registry;
  workloads::ClientPoolOptions opts;
  opts.address = address;
  opts.clients = clients;
  opts.transactions_per_client = kTxPerClient;
  opts.seed = 5;
  opts.metrics = &registry;
  opts.metrics_prefix = "pool";
  opts.next_query = [](Rng& rng, int, int) {
    return workloads::pgbench_select_tx(rng, kAccounts);
  };
  workloads::run_client_pool(simulator, net, opts);

  Measurement m;
  m.tps = registry.gauge("pool.tps")->value();
  m.latency_ms = registry.gauge("pool.latency_mean_ms")->value();
  m.failures = static_cast<double>(registry.counter("pool.tx_failed")->value());
  return m;
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 5: pgbench throughput and latency (%d tx/client) ===\n\n",
      kTxPerClient);
  std::printf("%-8s", "clients");
  for (auto d : {Deployment::kRddr, Deployment::kEnvoy, Deployment::kBare})
    std::printf(" | %-18s", name_of(d));
  std::printf("\n%-8s", "");
  for (int i = 0; i < 3; ++i) std::printf(" | %8s %9s", "tps", "lat(ms)");
  std::printf("\n%s\n", std::string(74, '-').c_str());

  double rddr_at_8 = 0, envoy_at_8 = 0;
  for (int clients : {1, 2, 4, 8, 16, 32, 64, 128, 256}) {
    std::printf("%-8d", clients);
    for (auto d : {Deployment::kRddr, Deployment::kEnvoy, Deployment::kBare}) {
      Measurement m = run_one(d, clients);
      std::printf(" | %8.0f %9.2f", m.tps, m.latency_ms);
      if (m.failures > 0) std::printf("!");
      if (clients == 8 && d == Deployment::kRddr) rddr_at_8 = m.tps;
      if (clients == 8 && d == Deployment::kEnvoy) envoy_at_8 = m.tps;
    }
    std::printf("\n");
  }
  if (envoy_at_8 > 0)
    std::printf(
        "\nAt 8 clients RDDR delivers %.0f%% of the envoy-fronted baseline's "
        "throughput (paper: ~90%%).\n",
        100.0 * rddr_at_8 / envoy_at_8);
  std::printf(
      "Paper shape check: three curves overlap at low concurrency; RDDR "
      "tapers first (3 instances exhaust the cores sooner); latency rises "
      "once each deployment saturates (Fig 5).\n");
  return 0;
}
