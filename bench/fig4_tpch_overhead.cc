// Regenerates Figure 4: TPC-H performance of a 3-versioned RDDR deployment
// normalized to a single bare instance, for 1/2/4/8/16 concurrent clients.
//
// Paper setup: Postgres + TPC-H SF 10, AWS 32-vCPU/128-GB host. Here:
// minipg + TPC-H-lite (see DESIGN.md), a 32-core simulated host, per-row
// CPU cost model. Expected shapes (paper §V-G1):
//   * memory max ~3x at every client count;
//   * CPU max ~3x at 1 client, falling as the baseline also saturates;
//   * time avg near 1x at low concurrency, growing once 3N tasks exceed
//     the core count, approaching a constant (not exponential) factor.
#include <cstdio>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "rddr/rddr.h"
#include "sqldb/server.h"
#include "workloads/driver.h"
#include "workloads/tpch.h"

using namespace rddr;

namespace {

constexpr double kScale = 0.25;
constexpr int kCores = 32;

struct RunMetrics {
  std::vector<SampleStats> per_query_latency;  // [query index]
  double cpu_max_cores = 0;
  double mem_max_gb = 0;
  double elapsed_s = 0;
};

RunMetrics run_deployment(int n_instances, int clients) {
  sim::Simulator simulator;
  sim::Network net(simulator, 50 * sim::kMicrosecond);
  sim::Host host(simulator, "server", kCores, 128LL << 30);

  std::vector<std::shared_ptr<sqldb::Database>> dbs;
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  for (int i = 0; i < n_instances; ++i) {
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
    workloads::load_tpch(*db, workloads::TpchScale{kScale}, 42);
    sqldb::SqlServer::Options so;
    so.address = "pg-" + std::to_string(i) + ":5432";
    so.cpu_per_query = 500e-6;
    so.cpu_per_row = 1e-6;  // per-row scan cost drives the analytics
    so.rng_seed = 10 + static_cast<uint64_t>(i);
    dbs.push_back(db);
    servers.push_back(std::make_unique<sqldb::SqlServer>(net, host, db, so));
  }

  std::unique_ptr<core::NVersionDeployment> proxy;
  std::string address = "pg-0:5432";
  if (n_instances > 1) {
    core::NVersionDeployment::Builder b;
    b.listen("db:5432")
        .plugin(std::make_shared<core::PgPlugin>())
        .filter_pair(true);
    for (int i = 0; i < n_instances; ++i)
      b.add_version("pg-" + std::to_string(i) + ":5432");
    proxy = b.build(net, host);
    address = "db:5432";
  }

  // Host resource maxima and pool aggregates are read from the registry:
  // the host's sampler feeds "server.*" gauges, the client pool "pool.*".
  obs::MetricsRegistry registry;
  host.reset_metrics();
  host.bind_metrics(&registry, "server");
  host.start_sampling(20 * sim::kMillisecond);

  const auto& queries = workloads::tpch_queries();
  RunMetrics metrics;
  metrics.per_query_latency.resize(queries.size());

  workloads::ClientPoolOptions opts;
  opts.address = address;
  opts.clients = clients;
  opts.transactions_per_client = static_cast<int>(queries.size());
  opts.metrics = &registry;
  opts.metrics_prefix = "pool";
  opts.next_query = [&queries](Rng&, int, int tx) { return queries[static_cast<size_t>(tx)]; };
  opts.on_tx_complete = [&metrics](int, int tx, double ms) {
    metrics.per_query_latency[static_cast<size_t>(tx)].add(ms);
  };
  workloads::run_client_pool(simulator, net, opts);
  host.stop_sampling();

  uint64_t failed = registry.counter("pool.tx_failed")->value();
  if (failed > 0)
    std::fprintf(stderr, "WARNING: %llu failed transactions\n",
                 static_cast<unsigned long long>(failed));
  metrics.cpu_max_cores =
      registry.gauge("server.cpu_pct")->max_value() / 100.0 * kCores;
  metrics.mem_max_gb = registry.gauge("server.mem_bytes")->max_value() / 1e9;
  metrics.elapsed_s = registry.gauge("pool.elapsed_s")->value();
  return metrics;
}

}  // namespace

int main() {
  std::printf(
      "=== Figure 4: TPC-H — 3-version RDDR normalized to single instance "
      "===\n(TPC-H-lite scale %.2f, %d-core host; boxes are over the %zu "
      "queries)\n\n",
      kScale, kCores, workloads::tpch_queries().size());
  std::printf("%-8s | %-38s | %-10s | %-10s\n", "clients",
              "time avg normalized (p5/med/mean/p95)", "CPU max x",
              "mem max x");
  std::printf("%s\n", std::string(80, '-').c_str());

  for (int clients : {1, 2, 4, 8, 16}) {
    std::fprintf(stderr, "[fig4] clients=%d baseline...\n", clients);
    RunMetrics base = run_deployment(1, clients);
    std::fprintf(stderr, "[fig4] clients=%d rddr...\n", clients);
    RunMetrics rddr3 = run_deployment(3, clients);

    SampleStats ratios;
    for (size_t q = 0; q < base.per_query_latency.size(); ++q) {
      double b = base.per_query_latency[q].mean();
      double r = rddr3.per_query_latency[q].mean();
      if (b > 0) ratios.add(r / b);
    }
    std::printf("%-8d | %5.2f / %5.2f / %5.2f / %5.2f          | %9.2fx | %9.2fx\n",
                clients, ratios.percentile(5), ratios.percentile(50),
                ratios.mean(), ratios.percentile(95),
                rddr3.cpu_max_cores / base.cpu_max_cores,
                rddr3.mem_max_gb / base.mem_max_gb);
  }
  std::printf(
      "\nPaper shape check: memory ~3x throughout; CPU ~3x at 1 client then "
      "falling; slowdown approaches a constant as clients grow (Fig 4).\n");
  return 0;
}
