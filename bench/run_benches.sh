#!/usr/bin/env bash
# Perf trajectory harness: builds the default preset and emits
#   BENCH_simloop.json  — simulator core events/sec, fan-out copy ratio,
#                         and fig5-driver wall time (vs recorded baselines)
#   BENCH_hotpaths.json — google-benchmark JSON for the micro hot paths
#   BENCH_scaleout.json — sharded-frontier sweep (goodput vs offered load,
#                         shed latency; self-checks exit nonzero)
#   BENCH_table1.json   — Table I rows replayed through the three-tier
#                         generated topology with execution-index
#                         attribution checks (see bench/table1_graph.cc)
# at the repo root. Committed snapshots document the perf trajectory PR
# over PR.
#
#   bench/run_benches.sh          full run (a few minutes)
#   bench/run_benches.sh --smoke  fast regression gate only: fails if the
#                                 simulator core drops below the events/sec
#                                 floor (RDDR_SIMLOOP_FLOOR, default 1e6).
#                                 Used by tests/run_sanitized.sh.
set -euo pipefail

cd "$(dirname "$0")/.."
ROOT="$PWD"
BUILD="${RDDR_BENCH_BUILD_DIR:-$ROOT/build}"

if [ ! -d "$BUILD" ]; then
  cmake --preset default >/dev/null
fi
cmake --build "$BUILD" -j --target simloop_throughput micro_hotpaths \
    fig5_throughput_latency fig5_scaleout storage_recovery fuzz_sweep \
    table1_graph >/dev/null

if [ "${1:-}" = "--smoke" ]; then
  # Storage gate first (deterministic invariants: recovery correctness,
  # delta-vs-snapshot ratio, trace determinism), then the data-plane and
  # events/sec floors.
  "$BUILD/bench/storage_recovery" --smoke

  # De-noise + diff floor: BM_DenoiseTokenDetect/500 (items = lines x 3
  # instances) must stay above RDDR_DENOISE_FLOOR items/s. Default 1.0e8:
  # 2.5x the pre-SIMD pairwise baseline of ~4.0e7, with ~25% headroom
  # below the 1.3-1.5e8 the batched engine measures on the reference
  # machine class (a shared vCPU whose run-to-run spread is ~10%). The
  # regression class this guards against — losing vectorisation or the
  # AVX->SSE transition-penalty bug — measured 3.3e7, far below it.
  DENOISE_FLOOR="${RDDR_DENOISE_FLOOR:-1.0e8}"
  DENOISE_ITEMS=$("$BUILD/bench/micro_hotpaths" \
      --benchmark_filter='BM_DenoiseTokenDetect/500$' \
      --benchmark_format=json 2>/dev/null |
      awk -F': ' '/"items_per_second"/ { gsub(/[,[:space:]]/, "", $2); v=$2 }
                  END { print v }')
  awk -v v="$DENOISE_ITEMS" -v f="$DENOISE_FLOOR" 'BEGIN {
      printf "denoise+diff: %.3g items/s (floor %.3g)\n", v + 0, f + 0
      exit (v + 0 >= f + 0) ? 0 : 1
    }' || { echo "FAIL: denoise+diff items/s below floor" >&2; exit 1; }

  # Island scaling floor: the 16-shard fig5 point on the partitioned
  # event loop must stay byte-identical to the islands=1 oracle and keep
  # model_speedup >= 1.8x at 4 islands (JSON dropped; checks on stderr).
  "$BUILD/bench/fig5_scaleout" --smoke --islands=4 >/dev/null

  exec "$BUILD/bench/simloop_throughput" --smoke
fi

echo "== simulator core + data plane =="
SIMLOOP_JSON="$("$BUILD/bench/simloop_throughput")"
echo "$SIMLOOP_JSON"

# Wall time of the full fig5 driver: the end-to-end number a person feels
# when regenerating the paper figures. Baseline measured at the seed
# commit, same build type, same machine class as the other baselines.
echo "== fig5 driver wall time =="
FIG5_BASELINE_S=3.245
start=$(date +%s.%N)
"$BUILD/bench/fig5_throughput_latency" >/dev/null
end=$(date +%s.%N)
FIG5_WALL_S=$(awk -v a="$start" -v b="$end" 'BEGIN { printf "%.3f", b - a }')
FIG5_SPEEDUP=$(awk -v w="$FIG5_WALL_S" -v b="$FIG5_BASELINE_S" \
    'BEGIN { printf "%.2f", b / w }')
echo "fig5 driver: ${FIG5_WALL_S}s (baseline ${FIG5_BASELINE_S}s, ${FIG5_SPEEDUP}x)"

cat > "$ROOT/BENCH_simloop.json" <<EOF
{
  "bench": $SIMLOOP_JSON,
  "fig5_driver": {
    "wall_s": $FIG5_WALL_S,
    "baseline_wall_s": $FIG5_BASELINE_S,
    "speedup": $FIG5_SPEEDUP
  }
}
EOF
echo "wrote BENCH_simloop.json"

echo "== micro hot paths =="
"$BUILD/bench/micro_hotpaths" --benchmark_format=json \
    --benchmark_out="$ROOT/BENCH_hotpaths.json" \
    --benchmark_out_format=json >/dev/null
echo "wrote BENCH_hotpaths.json"

# Scale-out sweep: goodput vs offered load for 1 vs 4 frontier shards,
# with admission-control self-checks (the bench exits nonzero if the
# scale-out ratio, shed latency, shed protocol, or determinism regress).
echo "== scale-out front tier =="
"$BUILD/bench/fig5_scaleout" > "$ROOT/BENCH_scaleout.json"
echo "wrote BENCH_scaleout.json"

# Durable storage: cold-start redo cost, buffer-pool hit rate vs frame
# budget, and incremental-vs-full resync bytes; exits nonzero if the
# recovery/determinism/delta-size self-checks fail.
echo "== durable storage recovery =="
"$BUILD/bench/storage_recovery" > "$ROOT/BENCH_storage.json"
echo "wrote BENCH_storage.json"

# Adversarial fuzz sweep: 20 seeds x every mutation family x every
# generated topology, baseline vs miner-tuned denoiser rules (exits
# nonzero on any invariant violation, determinism break, or if the miner
# fails to lower the benign-divergence rate).
echo "== adversarial fuzz sweep =="
"$BUILD/bench/fuzz_sweep" > "$ROOT/BENCH_fuzz.json"
echo "wrote BENCH_fuzz.json"

# Graph-wide attribution replay: all Table I rows through the three-tier
# generated topology, asserting execution-index attribution of every
# divergence to the exact (request, hop, call site), per-callsite dedup,
# and byte-identical reports across islands {1, 2, 4} (exits nonzero on
# any violation; the per-row attribution report goes to stderr).
echo "== table1 graph attribution =="
"$BUILD/bench/table1_graph" > "$ROOT/BENCH_table1.json"
echo "wrote BENCH_table1.json"
