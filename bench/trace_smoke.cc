// Trace smoke check: a seeded N=3 kQuorum run with one divergent instance
// must (a) close every span by simulation end and (b) produce a verdict
// span tagged with the outvoted instance. Exits nonzero otherwise, so it
// doubles as a CI gate for the observability layer.
//
// Side effects: writes trace_smoke.json (Chrome trace_event format — load
// via chrome://tracing or https://ui.perfetto.dev) and
// trace_smoke_metrics.json (flat metrics dump) into the working directory.
#include <cstdio>
#include <memory>
#include <string>

#include "netsim/host.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "proto/http/coding.h"
#include "rddr/deployment.h"
#include "rddr/plugins.h"
#include "services/http_service.h"

using namespace rddr;
using services::HttpClient;
using services::HttpServer;

namespace {

std::unique_ptr<HttpServer> make_instance(sim::Network& net, sim::Host& host,
                                          const std::string& address,
                                          const std::string& body) {
  HttpServer::Options o;
  o.address = address;
  auto server = std::make_unique<HttpServer>(net, host, o);
  server->set_handler([body](const http::Request&, services::Responder r) {
    r(http::make_response(200, body));
  });
  return server;
}

bool write_file(const char* path, const std::string& content) {
  std::FILE* f = std::fopen(path, "w");
  if (!f) return false;
  std::fwrite(content.data(), 1, content.size(), f);
  std::fclose(f);
  return true;
}

}  // namespace

int main() {
  sim::Simulator simulator;
  sim::Network net(simulator, 10 * sim::kMicrosecond);
  sim::Host host(simulator, "node", 8, 4LL << 30);

  // Instance 2 leaks extra bytes; quorum must outvote it.
  auto i0 = make_instance(net, host, "svc-0:80", "public data");
  auto i1 = make_instance(net, host, "svc-1:80", "public data");
  auto i2 = make_instance(net, host, "svc-2:80", "public data AND A SECRET");

  obs::Tracer tracer([&simulator] { return simulator.now(); }, 42);
  obs::MetricsRegistry registry;

  auto deployment = core::NVersionDeployment::Builder()
                        .listen("svc:80")
                        .versions({"svc-0:80", "svc-1:80", "svc-2:80"})
                        .plugin(std::make_shared<core::HttpPlugin>())
                        .degradation(core::DegradationPolicy::kQuorum)
                        .metrics(&registry)
                        .trace(&tracer)
                        .build(net, host);

  // Three sequential requests: the first outvotes svc-2, the rest run
  // degraded on the surviving pair — both shapes end up in the trace.
  HttpClient client(net, "client");
  int served = 0;
  for (int k = 0; k < 3; ++k) {
    simulator.schedule(k * 10 * sim::kMillisecond, [&] {
      client.get("svc:80", "/", [&](int status, const http::Response*) {
        if (status == 200) ++served;
      });
    });
  }
  simulator.run_until_idle();

  bool outvoted_tagged = false;
  std::string outvoted;
  for (const auto& span : tracer.spans()) {
    for (const auto& [key, value] : span.tags) {
      if (key == "outvoted_instance") {
        outvoted_tagged = true;
        outvoted = value;
      }
    }
  }

  std::string trace_json = tracer.export_chrome();
  if (!write_file("trace_smoke.json", trace_json) ||
      !write_file("trace_smoke_metrics.json", registry.dump_json())) {
    std::fprintf(stderr, "FAIL: could not write output files\n");
    return 1;
  }

  std::printf("served=%d spans=%zu open=%zu quorum_outvotes=%llu\n", served,
              tracer.spans().size(), tracer.open_spans(),
              static_cast<unsigned long long>(
                  deployment->aggregate_stats().quorum_outvotes));
  std::printf("wrote trace_smoke.json (%zu bytes), trace_smoke_metrics.json\n",
              trace_json.size());

  int rc = 0;
  if (served != 3) {
    std::fprintf(stderr, "FAIL: expected 3 served requests, got %d\n", served);
    rc = 1;
  }
  if (tracer.open_spans() != 0) {
    std::fprintf(stderr, "FAIL: %zu spans still open at simulation end\n",
                 tracer.open_spans());
    rc = 1;
  }
  if (!outvoted_tagged) {
    std::fprintf(stderr, "FAIL: no span carries an outvoted_instance tag\n");
    rc = 1;
  } else {
    std::printf("outvoted_instance=%s\n", outvoted.c_str());
  }
  if (rc == 0) std::printf("trace smoke: OK\n");
  return rc;
}
