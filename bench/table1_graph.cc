// Table I replayed through a whole protected service graph: execution-index
// attribution (common/exec_index.h) end to end.
//
// The original table1_mitigations bench proves each CVE row is blocked by
// an isolated deployment. This bench asks the question the attribution API
// was built for: when the same exploit classes fire inside a THREE-TIER
// graph (client -> RDDR(http) -> 3x app -> 2 mids -> RDDR(pgwire) -> 3x
// minipg, scenario topology kind 2), can every divergence be pinned to the
// exact (request, hop, call site)?
//
// Each Table I row is replayed as one probe with an explicit trace id:
//   * rows whose exploit lives in the data tier (SQLi, RLS bypass, planner
//     leak) hit /dbsecret, so the version-keyed secret diverges at the
//     INNER pgwire edge — two tiers away from the client;
//   * rows whose exploit lives at the web tier (XSS, smuggling, header
//     handling, ASLR leak) hit /secret and diverge at the OUTER http edge.
// The bench asserts, per row:
//   * at least one intervention record on the expected proxy;
//   * the record's trace id is the probe's (request attribution);
//   * the record's execution index has the expected depth and its root
//     frame is the originating edge request (hop attribution);
//   * the leaf site equals the independently recomputed
//     ExecutionIndex::site_id of the call site that issued the diverging
//     hop (call-site attribution) — for inner rows that is mid-0's dial
//     of "inner:5432", a call site RDDR never sees directly.
// Then cross-cutting:
//   * per-callsite dedup: all web-tier rows collapse to ONE attribution
//     key, and every data-tier intervention collapses onto mid-0's dial
//     site however many request paths (3 app instances) crossed it;
//   * determinism: the full attribution report is byte-identical across
//     island counts {1, 2, 4} ({1, 2} under --smoke).
//
// Full runs print a JSON summary (redirected to BENCH_table1.json by
// bench/run_benches.sh); any violated invariant exits nonzero.
#include <cstdio>
#include <cstring>
#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "common/exec_index.h"
#include "common/strutil.h"
#include "netsim/network.h"
#include "netsim/simulator.h"
#include "proto/http/message.h"
#include "rddr/divergence.h"
#include "scenario/topology.h"

namespace {

namespace sim = rddr::sim;
namespace http = rddr::http;
using rddr::ExecutionIndex;
using rddr::strformat;
using rddr::core::DivergenceRecord;
using rddr::scenario::Topology;
using rddr::scenario::TopologyOptions;

constexpr uint64_t kTraceBase = 0x7ab1e000;

struct Row {
  const char* id;      // Table I row
  const char* target;  // probe request into the graph
  bool inner;          // true: diverges at the inner pgwire edge
};

// All ten Table I rows, mapped onto the tier their exploit class lives in.
const Row kRows[] = {
    {"CVE-2017-7484", "/dbsecret", true},    // planner stats leak (pg)
    {"CVE-2017-7529", "/secret", false},     // nginx range overflow (web)
    {"CVE-2019-10130", "/dbsecret", true},   // RLS bypass (pg)
    {"CVE-2019-18277", "/secret", false},    // HAProxy smuggling (web)
    {"CVE-2014-3146", "/secret", false},     // XSS via lax sanitizer (web)
    {"CVE-2020-10799", "/secret", false},    // XXE in svg conversion (web)
    {"CVE-2020-13757", "/secret", false},    // risky-crypto padding (web)
    {"CVE-2020-11888", "/secret", false},    // XSS via markdown (web)
    {"DVWA-SQLi", "/dbsecret", true},        // SQL injection (pg)
    {"ASLR-POC", "/secret", false},          // pointer leak (web)
};
constexpr size_t kNumRows = sizeof(kRows) / sizeof(kRows[0]);

struct Replay {
  std::string report;                         // cross-island comparison surface
  std::vector<std::vector<DivergenceRecord>> per_row;  // by Table I row
};

/// Runs the whole replay on `islands` islands and renders the attribution
/// report. Everything in the report is a pure function of the simulated
/// execution, so any island count must produce identical bytes.
Replay run_replay(size_t islands) {
  sim::Simulator sim;
  sim::Network net(sim, 10 * sim::kMicrosecond);

  TopologyOptions topts;
  topts.kind = 2;  // http-diamond-pg: the three-tier graph
  topts.seed = 42;
  topts.islands = islands;
  // Miner-tuned variance: the per-version build stamps are known-benign,
  // so the only divergences left are the planted secrets — one per row.
  topts.variance.pg_ignore_params.push_back("build_sha");
  topts.variance.http_ignore_headers.push_back("X-Backend-Build");
  std::vector<DivergenceRecord> records;
  topts.on_divergence = [&records](const DivergenceRecord& r) {
    records.push_back(r);
  };
  Topology topo(sim, net, topts);

  // One probe per row, 150ms apart, each carrying its own trace id so
  // records attribute to rows by flow identity rather than timing.
  std::vector<sim::ConnPtr> probes(kNumRows);
  for (size_t i = 0; i < kNumRows; ++i) {
    sim.schedule_at(100 * sim::kMillisecond + i * 150 * sim::kMillisecond,
                    [&net, &topo, &probes, i] {
                      sim::ConnectMeta meta;
                      meta.source = strformat("probe-%zu", i);
                      meta.flow.trace_id = kTraceBase + i;
                      probes[i] = net.connect(topo.entry(), meta);
                      if (!probes[i]) return;
                      http::Request req;
                      req.method = "GET";
                      req.target = kRows[i].target;
                      req.headers.set("Host", "front");
                      probes[i]->send(req.to_bytes());
                    });
  }
  sim.run_until(100 * sim::kMillisecond + kNumRows * 150 * sim::kMillisecond +
                1 * sim::kSecond);

  Replay out;
  out.per_row.resize(kNumRows);
  for (const DivergenceRecord& r : records) {
    if (r.trace_id >= kTraceBase && r.trace_id < kTraceBase + kNumRows)
      out.per_row[r.trace_id - kTraceBase].push_back(r);
  }
  for (size_t i = 0; i < kNumRows; ++i) {
    out.report += strformat("%s %s\n", kRows[i].id, kRows[i].target);
    for (const DivergenceRecord& r : out.per_row[i]) {
      out.report += strformat(
          "  %s %s key=%s idx=%s trace=%llx reason=%s\n", r.proxy.c_str(),
          r.verdict.c_str(), rddr::core::attribution_key(r).c_str(),
          r.index.describe().c_str(),
          static_cast<unsigned long long>(r.trace_id), r.reason.c_str());
    }
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  const bool smoke = argc > 1 && std::strcmp(argv[1], "--smoke") == 0;
  const std::vector<size_t> island_counts =
      smoke ? std::vector<size_t>{1, 2} : std::vector<size_t>{1, 2, 4};

  // Expected call sites, recomputed independently of the data plane.
  const uint64_t edge_site = ExecutionIndex::site_id("edge-http", "front:80");
  const uint64_t mid0_site = ExecutionIndex::site_id("mid-0", "inner:5432");

  int failures = 0;
  auto fail = [&failures](const std::string& why) {
    std::fprintf(stderr, "FAIL: %s\n", why.c_str());
    ++failures;
  };

  Replay base = run_replay(island_counts[0]);

  // Per-row attribution: expected proxy, trace, hop depth, root, leaf.
  for (size_t i = 0; i < kNumRows; ++i) {
    const Row& row = kRows[i];
    const char* want_proxy = row.inner ? "edge-inner-pg" : "edge-http";
    const uint64_t want_leaf = row.inner ? mid0_site : edge_site;
    const size_t want_depth = row.inner ? 3 : 1;
    size_t matched = 0;
    for (const DivergenceRecord& r : base.per_row[i]) {
      if (r.verdict != "intervention") continue;
      if (r.proxy != want_proxy)
        fail(strformat("%s: record on proxy %s, want %s", row.id,
                       r.proxy.c_str(), want_proxy));
      if (r.index.depth() != want_depth)
        fail(strformat("%s: index depth %zu, want %zu (idx=%s)", row.id,
                       r.index.depth(), want_depth,
                       r.index.describe().c_str()));
      if (r.index.empty() || r.index.root().site != edge_site)
        fail(strformat("%s: root frame is not the originating edge request "
                       "(idx=%s)",
                       row.id, r.index.describe().c_str()));
      if (r.index.leaf_site() != want_leaf)
        fail(strformat("%s: leaf site %llx, want %llx", row.id,
                       static_cast<unsigned long long>(r.index.leaf_site()),
                       static_cast<unsigned long long>(want_leaf)));
      ++matched;
    }
    if (matched == 0)
      fail(strformat("%s: no intervention attributed to trace %llx", row.id,
                     static_cast<unsigned long long>(kTraceBase + i)));
  }

  // Per-callsite dedup: the seven web-tier rows — and every repeat of the
  // same exploit class — collapse onto ONE attribution key; every
  // data-tier intervention lands on mid-0's dial site no matter which of
  // the three app instances' request paths crossed it.
  std::map<std::string, uint64_t> outer_keys, inner_keys;
  size_t outer_records = 0, inner_records = 0;
  for (const auto& row_records : base.per_row) {
    for (const DivergenceRecord& r : row_records) {
      if (r.verdict != "intervention") continue;
      if (r.proxy == "edge-http") {
        ++outer_keys[rddr::core::attribution_key(r)];
        ++outer_records;
      } else {
        ++inner_keys[rddr::core::attribution_key(r)];
        ++inner_records;
      }
    }
  }
  if (outer_keys.size() != 1)
    fail(strformat("web-tier rows span %zu attribution keys, want 1",
                   outer_keys.size()));
  if (inner_keys.size() != 1)
    fail(strformat("data-tier rows span %zu attribution keys, want 1",
                   inner_keys.size()));

  // Determinism: byte-identical attribution report across island counts.
  bool deterministic = true;
  for (size_t k = 1; k < island_counts.size(); ++k) {
    Replay other = run_replay(island_counts[k]);
    if (other.report != base.report) {
      deterministic = false;
      fail(strformat("attribution report differs between islands=%zu and "
                     "islands=%zu",
                     island_counts[0], island_counts[k]));
    }
  }

  std::fprintf(stderr, "%s", base.report.c_str());
  std::fprintf(stderr,
               "table1 graph replay: %zu rows, %zu web-tier + %zu data-tier "
               "interventions, %zu+%zu attribution keys, islands {",
               kNumRows, outer_records, inner_records, outer_keys.size(),
               inner_keys.size());
  for (size_t k = 0; k < island_counts.size(); ++k)
    std::fprintf(stderr, "%s%zu", k ? "," : "", island_counts[k]);
  std::fprintf(stderr, "} %s\n",
               deterministic ? "byte-identical" : "DIVERGED");

  if (!smoke) {
    std::printf("{\n  \"rows\": [\n");
    for (size_t i = 0; i < kNumRows; ++i) {
      size_t interventions = 0;
      for (const DivergenceRecord& r : base.per_row[i])
        if (r.verdict == "intervention") ++interventions;
      std::printf("    {\"id\": \"%s\", \"target\": \"%s\", \"edge\": "
                  "\"%s\", \"interventions\": %zu}%s\n",
                  kRows[i].id, kRows[i].target,
                  kRows[i].inner ? "edge-inner-pg" : "edge-http",
                  interventions, i + 1 < kNumRows ? "," : "");
    }
    std::printf("  ],\n");
    std::printf("  \"edge_callsite\": \"%llx\",\n",
                static_cast<unsigned long long>(edge_site));
    std::printf("  \"mid0_callsite\": \"%llx\",\n",
                static_cast<unsigned long long>(mid0_site));
    std::printf("  \"web_tier_attribution_keys\": %zu,\n", outer_keys.size());
    std::printf("  \"data_tier_attribution_keys\": %zu,\n", inner_keys.size());
    std::printf("  \"islands_checked\": %zu,\n", island_counts.size());
    std::printf("  \"deterministic\": %s,\n", deterministic ? "true" : "false");
    std::printf("  \"failures\": %d\n}\n", failures);
  }
  return failures == 0 ? 0 : 1;
}
