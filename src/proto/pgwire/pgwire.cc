#include "proto/pgwire/pgwire.h"

#include "common/strutil.h"

namespace rddr::pg {

namespace {

constexpr uint32_t kProtocolVersion = 0x00030000;  // 3.0
constexpr size_t kMaxMessageBytes = 64 * 1024 * 1024;

void put_cstring(Bytes& out, std::string_view s) {
  out.append(s);
  out.push_back('\0');
}

/// Frames a typed message: type + length(payload + 4) + payload.
Bytes frame(char type, ByteView payload) {
  Bytes out;
  out.push_back(type);
  put_u32_be(out, static_cast<uint32_t>(payload.size() + 4));
  out.append(payload);
  return out;
}

/// Reads a NUL-terminated string starting at `pos`; advances pos past NUL.
std::optional<std::string> read_cstring(ByteView b, size_t& pos) {
  size_t nul = b.find('\0', pos);
  if (nul == ByteView::npos) return std::nullopt;
  std::string s(b.substr(pos, nul - pos));
  pos = nul + 1;
  return s;
}

}  // namespace

MessageReader::MessageReader(bool expect_startup)
    : expect_startup_(expect_startup) {}

void MessageReader::feed(ByteView data) {
  if (failed_) return;
  buf_.append(data);
  parse();
}

void MessageReader::parse() {
  while (!failed_) {
    if (expect_startup_) {
      if (buf_.size() < 4) return;
      uint32_t len = get_u32_be(buf_, 0);
      if (len < 8 || len > kMaxMessageBytes) {
        failed_ = true;
        error_ = "bad startup packet length";
        return;
      }
      if (buf_.size() < len) return;
      Message m;
      m.type = 0;
      m.payload = buf_.substr(4, len - 4);
      buf_.erase(0, len);
      ready_.push_back(std::move(m));
      expect_startup_ = false;
      continue;
    }
    if (buf_.size() < 1) return;
    char type = buf_[0];
    // Validate the type byte before trusting the length that follows it:
    // real pgwire message types are printable ASCII, and a garbage type
    // byte would otherwise have its attacker-controlled declared length
    // honoured — silently buffering up to the 64MB cap.
    if (static_cast<unsigned char>(type) < 0x20 ||
        static_cast<unsigned char>(type) > 0x7e) {
      failed_ = true;
      error_ = strformat("invalid message type byte 0x%02x",
                         static_cast<unsigned char>(type));
      return;
    }
    if (buf_.size() < 5) return;
    uint32_t len = get_u32_be(buf_, 1);
    if (len < 4 || len > kMaxMessageBytes) {
      failed_ = true;
      error_ = std::string("bad message length for type '") + type + "'";
      return;
    }
    if (buf_.size() < 1 + len) return;
    Message m;
    m.type = type;
    m.payload = buf_.substr(5, len - 4);
    buf_.erase(0, 1 + len);
    ready_.push_back(std::move(m));
  }
}

std::vector<Message> MessageReader::take() {
  std::vector<Message> out;
  out.swap(ready_);
  return out;
}

Bytes build_startup(const std::map<std::string, std::string>& params) {
  Bytes payload;
  put_u32_be(payload, kProtocolVersion);
  for (const auto& [k, v] : params) {
    put_cstring(payload, k);
    put_cstring(payload, v);
  }
  payload.push_back('\0');
  Bytes out;
  put_u32_be(out, static_cast<uint32_t>(payload.size() + 4));
  out.append(payload);
  return out;
}

Bytes build_query(std::string_view sql) {
  Bytes payload;
  put_cstring(payload, sql);
  return frame('Q', payload);
}

Bytes build_terminate() { return frame('X', {}); }

Bytes build_auth_ok() {
  Bytes payload;
  put_u32_be(payload, 0);
  return frame('R', payload);
}

Bytes build_parameter_status(std::string_view name, std::string_view value) {
  Bytes payload;
  put_cstring(payload, name);
  put_cstring(payload, value);
  return frame('S', payload);
}

Bytes build_backend_key_data(uint32_t pid, uint32_t secret) {
  Bytes payload;
  put_u32_be(payload, pid);
  put_u32_be(payload, secret);
  return frame('K', payload);
}

Bytes build_ready_for_query(char txn_status) {
  Bytes payload(1, txn_status);
  return frame('Z', payload);
}

Bytes build_row_description(const std::vector<std::string>& column_names) {
  Bytes payload;
  put_u16_be(payload, static_cast<uint16_t>(column_names.size()));
  for (const auto& name : column_names) {
    put_cstring(payload, name);
    // table oid, column attnum, type oid, type size, type mod, format code —
    // filled with the "unknown/text" defaults the real server uses for
    // computed columns.
    put_u32_be(payload, 0);
    put_u16_be(payload, 0);
    put_u32_be(payload, 25);  // TEXTOID
    put_u16_be(payload, 0xffff);
    put_u32_be(payload, 0xffffffff);
    put_u16_be(payload, 0);
  }
  return frame('T', payload);
}

Bytes build_data_row(const std::vector<std::optional<std::string>>& columns) {
  Bytes payload;
  put_u16_be(payload, static_cast<uint16_t>(columns.size()));
  for (const auto& col : columns) {
    if (!col) {
      put_u32_be(payload, 0xffffffff);  // -1 = NULL
    } else {
      put_u32_be(payload, static_cast<uint32_t>(col->size()));
      payload.append(*col);
    }
  }
  return frame('D', payload);
}

Bytes build_command_complete(std::string_view tag) {
  Bytes payload;
  put_cstring(payload, tag);
  return frame('C', payload);
}

namespace {
Bytes build_error_like(char type, std::string_view severity,
                       std::string_view sqlstate, std::string_view message) {
  Bytes payload;
  payload.push_back('S');
  put_cstring(payload, severity);
  payload.push_back('C');
  put_cstring(payload, sqlstate);
  payload.push_back('M');
  put_cstring(payload, message);
  payload.push_back('\0');
  return frame(type, payload);
}
}  // namespace

Bytes build_error(std::string_view sqlstate, std::string_view message) {
  return build_error_like('E', "ERROR", sqlstate, message);
}

Bytes build_notice(std::string_view message) {
  return build_error_like('N', "NOTICE", "00000", message);
}

std::optional<std::map<std::string, std::string>> parse_startup(
    ByteView payload) {
  if (payload.size() < 4) return std::nullopt;
  std::map<std::string, std::string> params;
  size_t pos = 4;  // skip protocol version
  while (pos < payload.size() && payload[pos] != '\0') {
    auto k = read_cstring(payload, pos);
    if (!k) return std::nullopt;
    auto v = read_cstring(payload, pos);
    if (!v) return std::nullopt;
    params[*k] = *v;
  }
  // The parameter list carries its own trailing NUL; a payload that merely
  // runs out of bytes is a truncated packet, not an empty terminator.
  if (pos >= payload.size()) return std::nullopt;
  return params;
}

std::optional<std::string> parse_query(ByteView payload) {
  size_t pos = 0;
  return read_cstring(payload, pos);
}

std::optional<std::vector<std::string>> parse_row_description(
    ByteView payload) {
  if (payload.size() < 2) return std::nullopt;
  uint16_t n = get_u16_be(payload, 0);
  size_t pos = 2;
  std::vector<std::string> names;
  for (uint16_t i = 0; i < n; ++i) {
    auto name = read_cstring(payload, pos);
    if (!name) return std::nullopt;
    if (pos + 18 > payload.size()) return std::nullopt;
    pos += 18;  // fixed-size field metadata
    names.push_back(std::move(*name));
  }
  return names;
}

std::optional<std::vector<std::optional<std::string>>> parse_data_row(
    ByteView payload) {
  if (payload.size() < 2) return std::nullopt;
  uint16_t n = get_u16_be(payload, 0);
  size_t pos = 2;
  std::vector<std::optional<std::string>> cols;
  for (uint16_t i = 0; i < n; ++i) {
    if (pos + 4 > payload.size()) return std::nullopt;
    uint32_t len = get_u32_be(payload, pos);
    pos += 4;
    if (len == 0xffffffff) {
      cols.push_back(std::nullopt);
      continue;
    }
    if (pos + len > payload.size()) return std::nullopt;
    cols.emplace_back(std::string(payload.substr(pos, len)));
    pos += len;
  }
  return cols;
}

std::optional<ErrorFields> parse_error_fields(ByteView payload) {
  ErrorFields out;
  size_t pos = 0;
  while (pos < payload.size() && payload[pos] != '\0') {
    char field = payload[pos++];
    auto v = read_cstring(payload, pos);
    if (!v) return std::nullopt;
    switch (field) {
      case 'S': out.severity = *v; break;
      case 'C': out.sqlstate = *v; break;
      case 'M': out.message = *v; break;
      default: break;  // unknown fields are legal; skip
    }
  }
  return out;
}

std::string type_name(char type) {
  switch (type) {
    case 0: return "Startup";
    case 'Q': return "Query";
    case 'X': return "Terminate";
    case 'R': return "Authentication";
    case 'S': return "ParameterStatus";
    case 'K': return "BackendKeyData";
    case 'Z': return "ReadyForQuery";
    case 'T': return "RowDescription";
    case 'D': return "DataRow";
    case 'C': return "CommandComplete";
    case 'E': return "ErrorResponse";
    case 'N': return "NoticeResponse";
    default: return strformat("Unknown(%c)", type);
  }
}

}  // namespace rddr::pg
