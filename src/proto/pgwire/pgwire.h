// Postgres-style wire protocol ("pgwire").
//
// Implements the framing and the message subset that the sqldb servers, the
// RDDR pgwire plugin, and the workload drivers need. Framing follows the
// real protocol (PostgreSQL docs ch. "Message Formats", cited by the paper):
// a startup packet without a type byte, then `type(1) + length(4, includes
// itself) + payload` messages in both directions.
//
// Backend message types used: R (Auth), S (ParameterStatus), K
// (BackendKeyData), Z (ReadyForQuery), T (RowDescription), D (DataRow),
// C (CommandComplete), E (ErrorResponse), N (NoticeResponse).
// Frontend: startup, Q (Query), X (Terminate).
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"

namespace rddr::pg {

/// A framed protocol message. `type == 0` denotes the (untyped) startup
/// packet.
struct Message {
  char type = 0;
  Bytes payload;

  bool operator==(const Message&) const = default;
};

/// Incremental frame reader for one direction of a connection.
class MessageReader {
 public:
  /// `expect_startup` — true for the server side of a fresh connection,
  /// where the first packet has no type byte.
  explicit MessageReader(bool expect_startup);

  void feed(ByteView data);
  std::vector<Message> take();

  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Not-yet-framed bytes (pass-through fallback after a framing failure).
  const Bytes& unconsumed() const { return buf_; }

 private:
  void parse();

  bool expect_startup_;
  bool failed_ = false;
  std::string error_;
  Bytes buf_;
  std::vector<Message> ready_;
};

// ---- Frontend builders ----

/// Startup packet: protocol 3.0 + parameters (user, database, ...).
Bytes build_startup(const std::map<std::string, std::string>& params);
/// Simple query ('Q').
Bytes build_query(std::string_view sql);
/// Terminate ('X').
Bytes build_terminate();

// ---- Backend builders ----

Bytes build_auth_ok();
Bytes build_parameter_status(std::string_view name, std::string_view value);
Bytes build_backend_key_data(uint32_t pid, uint32_t secret);
Bytes build_ready_for_query(char txn_status = 'I');
Bytes build_row_description(const std::vector<std::string>& column_names);
/// DataRow; nullopt = SQL NULL.
Bytes build_data_row(const std::vector<std::optional<std::string>>& columns);
Bytes build_command_complete(std::string_view tag);
Bytes build_error(std::string_view sqlstate, std::string_view message);
Bytes build_notice(std::string_view message);

// ---- Decoders (operate on Message::payload) ----

/// Startup parameters (key/value pairs). Returns nullopt on malformed data.
std::optional<std::map<std::string, std::string>> parse_startup(ByteView payload);

/// SQL text of a Query message.
std::optional<std::string> parse_query(ByteView payload);

/// Column names from a RowDescription.
std::optional<std::vector<std::string>> parse_row_description(ByteView payload);

/// Column values (nullopt = NULL) from a DataRow.
std::optional<std::vector<std::optional<std::string>>> parse_data_row(
    ByteView payload);

/// Severity/code/message fields of an ErrorResponse or NoticeResponse.
struct ErrorFields {
  std::string severity;
  std::string sqlstate;
  std::string message;
};
std::optional<ErrorFields> parse_error_fields(ByteView payload);

/// Human-readable name for a message type (diagnostics).
std::string type_name(char type);

}  // namespace rddr::pg
