#include "proto/http/parser.h"

#include <cctype>

#include "common/strutil.h"

namespace rddr::http {

namespace detail {

namespace {

// Trims per the configured whitespace model. Strict HTTP optional whitespace
// is SP / HTAB only; lenient backends use isspace().
std::string_view trim_ows(std::string_view s, TeWhitespace mode) {
  auto is_ws = [mode](char c) {
    if (mode == TeWhitespace::kStrictHttp) return c == ' ' || c == '\t';
    return std::isspace(static_cast<unsigned char>(c)) != 0;
  };
  size_t b = 0, e = s.size();
  while (b < e && is_ws(s[b])) ++b;
  while (e > b && is_ws(s[e - 1])) --e;
  return s.substr(b, e - b);
}

// True when a Transfer-Encoding header value denotes chunked framing under
// the given whitespace model. Only the final coding matters (RFC 7230).
bool te_is_chunked(std::string_view value, TeWhitespace mode) {
  auto parts = split(value, ',');
  if (parts.empty()) return false;
  std::string_view last = trim_ows(parts.back(), mode);
  return iequals(last, "chunked");
}

}  // namespace

MessageParserBase::MessageParserBase(bool is_request, ParserOptions opts)
    : is_request_(is_request), opts_(opts) {}

void MessageParserBase::feed(ByteView data) {
  if (failed_) return;
  buf_.append(data);
  parse_loop();
}

void MessageParserBase::fail(std::string msg) {
  failed_ = true;
  error_ = std::move(msg);
}

void MessageParserBase::parse_loop() {
  while (!failed_ && try_parse_one()) {
  }
  if (consumed_ > 64 * 1024) {
    buf_.erase(0, consumed_);
    consumed_ = 0;
  }
}

bool MessageParserBase::decide_framing(const HeaderMap& h, bool& chunked,
                                       int64_t& length) {
  chunked = false;
  length = 0;

  for (const auto& te : h.get_all("Transfer-Encoding")) {
    if (te_is_chunked(te, opts_.te_whitespace)) chunked = true;
  }

  auto cls = h.get_all("Content-Length");
  bool have_cl = false;
  int64_t cl = 0;
  if (!cls.empty()) {
    for (size_t i = 0; i < cls.size(); ++i) {
      auto v = parse_i64(cls[i]);
      if (!v || *v < 0) {
        fail("invalid Content-Length");
        return false;
      }
      if (i == 0) {
        cl = *v;
      } else if (*v != cl && opts_.reject_duplicate_cl) {
        fail("conflicting Content-Length headers");
        return false;
      }
    }
    have_cl = true;
  }

  if (chunked && have_cl && opts_.reject_te_and_cl) {
    fail("both Transfer-Encoding and Content-Length present");
    return false;
  }
  if (!chunked && have_cl) {
    if (static_cast<uint64_t>(cl) > opts_.max_body_bytes) {
      fail("body too large");
      return false;
    }
    length = cl;
  }
  return true;
}

bool MessageParserBase::try_parse_one() {
  ByteView rest = ByteView(buf_).substr(consumed_);
  size_t hdr_end = rest.find("\r\n\r\n");
  if (hdr_end == ByteView::npos) {
    if (rest.size() > opts_.max_header_bytes) fail("header block too large");
    return false;
  }
  if (hdr_end + 4 > opts_.max_header_bytes) {
    fail("header block too large");
    return false;
  }

  ByteView head = rest.substr(0, hdr_end);
  size_t line_end = head.find("\r\n");
  ByteView start_line = (line_end == ByteView::npos) ? head : head.substr(0, line_end);

  Parsed msg;
  msg.start_line = std::string(start_line);

  // Minimal start-line validation so garbage fails fast.
  if (is_request_) {
    auto toks = split(start_line, ' ');
    if (toks.size() != 3 || toks[0].empty() || toks[1].empty() ||
        !starts_with(toks[2], "HTTP/")) {
      fail("malformed request line: " + msg.start_line);
      return false;
    }
  } else {
    auto toks = split(start_line, ' ');
    std::optional<int64_t> status;
    if (toks.size() >= 2) status = parse_i64(toks[1]);
    if (toks.size() < 2 || !starts_with(toks[0], "HTTP/") || !status) {
      fail("malformed status line: " + msg.start_line);
      return false;
    }
    // Status codes are exactly three digits; parse_i64 alone would let
    // ResponseParser::take() truncate an arbitrarily wide value to int.
    if (*status < 100 || *status > 999) {
      fail("status code out of range: " + msg.start_line);
      return false;
    }
  }

  // Header lines.
  size_t pos = (line_end == ByteView::npos) ? head.size() : line_end + 2;
  while (pos < head.size()) {
    size_t eol = head.find("\r\n", pos);
    ByteView line = (eol == ByteView::npos) ? head.substr(pos)
                                            : head.substr(pos, eol - pos);
    pos = (eol == ByteView::npos) ? head.size() : eol + 2;
    size_t colon = line.find(':');
    if (colon == ByteView::npos || colon == 0) {
      fail("malformed header line");
      return false;
    }
    std::string name(line.substr(0, colon));
    // Keep SP/HTAB-trimmed value; preserve exotic whitespace (e.g. \x0b)
    // because framing decisions and RDDR diffing must both see it.
    std::string value(trim_ows(line.substr(colon + 1), TeWhitespace::kStrictHttp));
    msg.headers.add(std::move(name), std::move(value));
  }

  bool chunked = false;
  int64_t length = 0;
  if (!decide_framing(msg.headers, chunked, length)) return false;

  size_t body_start = hdr_end + 4;
  size_t total_consumed = 0;

  if (!chunked) {
    if (rest.size() < body_start + static_cast<size_t>(length)) return false;
    msg.body = Bytes(rest.substr(body_start, static_cast<size_t>(length)));
    total_consumed = body_start + static_cast<size_t>(length);
  } else {
    // Chunked decoding over the buffered stream. Chunk-size lines are a
    // hex count plus optional extensions; bound them so a sender that
    // never terminates the line cannot grow the buffer without limit
    // while we wait for its CRLF.
    constexpr size_t kMaxChunkLineBytes = 256;
    size_t p = body_start;
    Bytes body;
    while (true) {
      size_t eol = rest.find("\r\n", p);
      if (eol == ByteView::npos) {
        if (rest.size() - p > kMaxChunkLineBytes)
          fail("chunk size line too long");
        return false;  // need more data
      }
      if (eol - p > kMaxChunkLineBytes) {
        fail("chunk size line too long");
        return false;
      }
      ByteView size_line = rest.substr(p, eol - p);
      size_t semi = size_line.find(';');
      if (semi != ByteView::npos) size_line = size_line.substr(0, semi);
      size_line = trim(size_line);
      uint64_t chunk_len = 0;
      if (size_line.empty()) {
        fail("empty chunk size");
        return false;
      }
      for (char c : size_line) {
        int d;
        if (c >= '0' && c <= '9') d = c - '0';
        else if (c >= 'a' && c <= 'f') d = c - 'a' + 10;
        else if (c >= 'A' && c <= 'F') d = c - 'A' + 10;
        else {
          fail("bad chunk size");
          return false;
        }
        chunk_len = chunk_len * 16 + static_cast<uint64_t>(d);
        if (chunk_len > opts_.max_body_bytes) {
          fail("chunk too large");
          return false;
        }
      }
      p = eol + 2;
      if (chunk_len == 0) {
        // Trailer section: skip lines until the empty line, bounded like
        // the header block — an endless trailer must not buffer forever.
        size_t trailer_start = p;
        while (true) {
          size_t teol = rest.find("\r\n", p);
          if (teol == ByteView::npos) {
            if (rest.size() - trailer_start > opts_.max_header_bytes)
              fail("trailer section too large");
            return false;  // need more data
          }
          if (teol - trailer_start > opts_.max_header_bytes) {
            fail("trailer section too large");
            return false;
          }
          if (teol == p) {
            p = teol + 2;
            break;
          }
          p = teol + 2;
        }
        break;
      }
      if (rest.size() < p + chunk_len + 2) return false;  // need more data
      body.append(rest.substr(p, chunk_len));
      if (body.size() > opts_.max_body_bytes) {
        fail("body too large");
        return false;
      }
      p += chunk_len;
      if (rest.substr(p, 2) != "\r\n") {
        fail("missing chunk terminator");
        return false;
      }
      p += 2;
    }
    msg.body = std::move(body);
    total_consumed = p;
  }

  msg.raw = Bytes(rest.substr(0, total_consumed));
  consumed_ += total_consumed;
  ready_.push_back(std::move(msg));
  return true;
}

}  // namespace detail

std::vector<Request> RequestParser::take() {
  std::vector<Request> out;
  for (auto& p : ready_) {
    Request r;
    auto toks = split(p.start_line, ' ');
    r.method = toks[0];
    r.target = toks[1];
    r.version = toks[2];
    r.headers = std::move(p.headers);
    r.body = std::move(p.body);
    r.raw = std::move(p.raw);
    out.push_back(std::move(r));
  }
  ready_.clear();
  return out;
}

std::vector<Response> ResponseParser::take() {
  std::vector<Response> out;
  for (auto& p : ready_) {
    Response r;
    auto toks = split(p.start_line, ' ');
    r.version = toks[0];
    r.status = static_cast<int>(*parse_i64(toks[1]));
    if (toks.size() > 2) {
      std::vector<std::string> reason(toks.begin() + 2, toks.end());
      r.reason = join(reason, " ");
    }
    r.headers = std::move(p.headers);
    r.body = std::move(p.body);
    r.raw = std::move(p.raw);
    out.push_back(std::move(r));
  }
  ready_.clear();
  return out;
}

Bytes chunked_encode(ByteView body, size_t chunk_size) {
  Bytes out;
  size_t pos = 0;
  while (pos < body.size()) {
    size_t n = std::min(chunk_size, body.size() - pos);
    char size_buf[32];
    std::snprintf(size_buf, sizeof(size_buf), "%zx\r\n", n);
    out += size_buf;
    out.append(body.substr(pos, n));
    out += "\r\n";
    pos += n;
  }
  out += "0\r\n\r\n";
  return out;
}

}  // namespace rddr::http
