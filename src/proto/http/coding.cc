#include "proto/http/coding.h"

#include <cstdint>
#include <unordered_map>

#include "common/bytes.h"

namespace rddr::http {

namespace {

constexpr size_t kMinMatch = 4;
constexpr size_t kMaxLen = 65535;
constexpr size_t kMaxDist = 65535;

uint32_t hash4(ByteView s, size_t pos) {
  uint32_t v = static_cast<uint32_t>(static_cast<unsigned char>(s[pos])) |
               (static_cast<uint32_t>(static_cast<unsigned char>(s[pos + 1])) << 8) |
               (static_cast<uint32_t>(static_cast<unsigned char>(s[pos + 2])) << 16) |
               (static_cast<uint32_t>(static_cast<unsigned char>(s[pos + 3])) << 24);
  return v * 2654435761u;
}

void emit_literals(Bytes& out, ByteView input, size_t start, size_t end) {
  while (start < end) {
    size_t n = std::min(end - start, kMaxLen);
    out.push_back('\x00');
    out.push_back(static_cast<char>((n >> 8) & 0xff));
    out.push_back(static_cast<char>(n & 0xff));
    out.append(input.substr(start, n));
    start += n;
  }
}

}  // namespace

Bytes xz77_compress(ByteView input) {
  Bytes out;
  std::unordered_map<uint32_t, size_t> table;
  size_t lit_start = 0;
  size_t i = 0;
  while (i + kMinMatch <= input.size()) {
    uint32_t h = hash4(input, i);
    auto it = table.find(h);
    size_t match_len = 0;
    size_t match_pos = 0;
    if (it != table.end()) {
      size_t cand = it->second;
      if (i - cand <= kMaxDist &&
          input.substr(cand, kMinMatch) == input.substr(i, kMinMatch)) {
        size_t len = kMinMatch;
        while (i + len < input.size() && len < kMaxLen &&
               input[cand + len] == input[i + len])
          ++len;
        match_len = len;
        match_pos = cand;
      }
    }
    table[h] = i;
    if (match_len >= kMinMatch) {
      emit_literals(out, input, lit_start, i);
      size_t dist = i - match_pos;
      out.push_back('\x01');
      out.push_back(static_cast<char>((dist >> 8) & 0xff));
      out.push_back(static_cast<char>(dist & 0xff));
      out.push_back(static_cast<char>((match_len >> 8) & 0xff));
      out.push_back(static_cast<char>(match_len & 0xff));
      i += match_len;
      lit_start = i;
    } else {
      ++i;
    }
  }
  emit_literals(out, input, lit_start, input.size());
  return out;
}

std::optional<Bytes> xz77_decompress(ByteView input) {
  Bytes out;
  size_t i = 0;
  auto u16 = [&](size_t pos) {
    return (static_cast<size_t>(static_cast<unsigned char>(input[pos])) << 8) |
           static_cast<size_t>(static_cast<unsigned char>(input[pos + 1]));
  };
  while (i < input.size()) {
    char op = input[i];
    if (op == '\x00') {
      if (i + 3 > input.size()) return std::nullopt;
      size_t n = u16(i + 1);
      if (i + 3 + n > input.size()) return std::nullopt;
      out.append(input.substr(i + 3, n));
      i += 3 + n;
    } else if (op == '\x01') {
      if (i + 5 > input.size()) return std::nullopt;
      size_t dist = u16(i + 1);
      size_t len = u16(i + 3);
      if (dist == 0 || dist > out.size()) return std::nullopt;
      size_t src = out.size() - dist;
      // Byte-by-byte to support overlapping (RLE) copies.
      for (size_t k = 0; k < len; ++k) out.push_back(out[src + k]);
      i += 5;
    } else {
      return std::nullopt;
    }
  }
  return out;
}

}  // namespace rddr::http
