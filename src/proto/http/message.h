// HTTP/1.1 message model: header map, request, response, serialization.
//
// The model is deliberately faithful to the parts of RFC 7230 that matter to
// this reproduction: framing (Content-Length vs Transfer-Encoding), header
// ordering, Range requests, and the whitespace edge cases that power the
// request-smuggling CVE scenario (see parser.h).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/bytes.h"

namespace rddr::http {

/// Ordered, case-insensitive-lookup header collection. Duplicate names are
/// preserved (needed to *detect* duplicate Content-Length attacks).
class HeaderMap {
 public:
  /// Appends a header, keeping arrival order.
  void add(std::string name, std::string value);

  /// Replaces all headers named `name` with a single one.
  void set(std::string name, std::string value);

  /// First value with the given name (case-insensitive), if any.
  std::optional<std::string> get(std::string_view name) const;

  /// All values with the given name, in order.
  std::vector<std::string> get_all(std::string_view name) const;

  bool has(std::string_view name) const { return get(name).has_value(); }

  /// Removes all headers with the given name; returns count removed.
  size_t remove(std::string_view name);

  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }
  size_t size() const { return entries_.size(); }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

/// Parsed HTTP request. `raw` holds the exact bytes the parser consumed for
/// this message — proxies that make forwarding decisions with their own
/// framing but forward the original octets (the smuggling scenario) need it.
struct Request {
  std::string method;
  std::string target;
  std::string version = "HTTP/1.1";
  HeaderMap headers;
  Bytes body;
  Bytes raw;

  /// Serializes with Content-Length framing (body as-is, no chunking).
  Bytes to_bytes() const;
};

/// Parsed HTTP response.
struct Response {
  std::string version = "HTTP/1.1";
  int status = 200;
  std::string reason = "OK";
  HeaderMap headers;
  Bytes body;
  Bytes raw;

  Bytes to_bytes() const;
};

/// Builds a simple response with Content-Length and Content-Type set.
Response make_response(int status, std::string_view body,
                       std::string_view content_type = "text/html");

/// Standard reason phrase for a status code ("OK", "Not Found", ...).
std::string reason_phrase(int status);

/// One element of a Range header. first==-1 means a suffix range
/// ("-500" = last 500 bytes); last==-1 means open-ended ("500-").
struct ByteRange {
  int64_t first = 0;
  int64_t last = 0;
};

/// Parses a "bytes=a-b,c-d" Range header value. Returns nullopt when the
/// value is not a syntactically valid byte-range set. NOTE: performs no
/// bounds checking against any entity size — that is the server's job, and
/// getting it wrong is exactly CVE-2017-7529 (see services/static_server).
std::optional<std::vector<ByteRange>> parse_range_header(std::string_view v);

}  // namespace rddr::http
