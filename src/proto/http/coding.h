// Content coding ("xz77"): a small LZ77-style byte compressor.
//
// Stands in for gzip so the reproduction exercises the paper's requirement
// that the HTTP module "interprets the HTTP header and decompresses the
// message before differencing" (§IV-B1). Responses carry
// `Content-Encoding: xz77`; the RDDR HTTP plugin decodes before tokenizing.
//
// Wire format: a sequence of ops.
//   0x00 <u16 len> <len literal bytes>
//   0x01 <u16 distance> <u16 length>     copy from already-produced output
// Distances/lengths are big-endian; distance must not exceed the bytes
// produced so far. Overlapping copies are allowed (RLE-style).
#pragma once

#include <optional>

#include "common/bytes.h"

namespace rddr::http {

/// Compresses `input`. Output always decodes back to `input`.
Bytes xz77_compress(ByteView input);

/// Decompresses; returns nullopt on malformed input (bad op, distance
/// beyond output, truncated stream).
std::optional<Bytes> xz77_decompress(ByteView input);

}  // namespace rddr::http
