#include "proto/http/message.h"

#include "common/strutil.h"

namespace rddr::http {

void HeaderMap::add(std::string name, std::string value) {
  entries_.emplace_back(std::move(name), std::move(value));
}

void HeaderMap::set(std::string name, std::string value) {
  remove(name);
  add(std::move(name), std::move(value));
}

std::optional<std::string> HeaderMap::get(std::string_view name) const {
  for (const auto& [n, v] : entries_)
    if (iequals(n, name)) return v;
  return std::nullopt;
}

std::vector<std::string> HeaderMap::get_all(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& [n, v] : entries_)
    if (iequals(n, name)) out.push_back(v);
  return out;
}

size_t HeaderMap::remove(std::string_view name) {
  size_t removed = 0;
  for (auto it = entries_.begin(); it != entries_.end();) {
    if (iequals(it->first, name)) {
      it = entries_.erase(it);
      ++removed;
    } else {
      ++it;
    }
  }
  return removed;
}

namespace {
void append_headers(Bytes& out, const HeaderMap& headers) {
  for (const auto& [n, v] : headers.entries()) {
    out += n;
    out += ": ";
    out += v;
    out += "\r\n";
  }
  out += "\r\n";
}
}  // namespace

Bytes Request::to_bytes() const {
  Bytes out = method + " " + target + " " + version + "\r\n";
  HeaderMap h = headers;
  if (!h.has("Content-Length") && !h.has("Transfer-Encoding"))
    h.set("Content-Length", std::to_string(body.size()));
  append_headers(out, h);
  out += body;
  return out;
}

Bytes Response::to_bytes() const {
  Bytes out = version + " " + std::to_string(status) + " " + reason + "\r\n";
  HeaderMap h = headers;
  if (!h.has("Content-Length") && !h.has("Transfer-Encoding"))
    h.set("Content-Length", std::to_string(body.size()));
  append_headers(out, h);
  out += body;
  return out;
}

Response make_response(int status, std::string_view body,
                       std::string_view content_type) {
  Response r;
  r.status = status;
  r.reason = reason_phrase(status);
  r.headers.set("Content-Type", std::string(content_type));
  r.headers.set("Content-Length", std::to_string(body.size()));
  r.body = Bytes(body);
  return r;
}

std::string reason_phrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 201: return "Created";
    case 204: return "No Content";
    case 206: return "Partial Content";
    case 302: return "Found";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 416: return "Range Not Satisfiable";
    case 500: return "Internal Server Error";
    case 502: return "Bad Gateway";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

std::optional<std::vector<ByteRange>> parse_range_header(std::string_view v) {
  v = trim(v);
  if (!starts_with(v, "bytes=")) return std::nullopt;
  v.remove_prefix(6);
  std::vector<ByteRange> out;
  for (const auto& part_str : split(v, ',')) {
    std::string_view part = trim(part_str);
    if (part.empty()) return std::nullopt;
    size_t dash = part.find('-');
    if (dash == std::string_view::npos) return std::nullopt;
    std::string_view first_s = part.substr(0, dash);
    std::string_view last_s = part.substr(dash + 1);
    ByteRange r;
    if (first_s.empty()) {
      // Suffix range "-N".
      auto n = parse_i64(last_s);
      if (!n || *n < 0) return std::nullopt;
      r.first = -1;
      r.last = *n;
    } else {
      auto f = parse_i64(first_s);
      if (!f || *f < 0) return std::nullopt;
      r.first = *f;
      if (last_s.empty()) {
        r.last = -1;  // open-ended
      } else {
        auto l = parse_i64(last_s);
        if (!l || *l < 0) return std::nullopt;
        r.last = *l;
      }
    }
    out.push_back(r);
  }
  if (out.empty()) return std::nullopt;
  return out;
}

}  // namespace rddr::http
