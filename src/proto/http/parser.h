// Incremental HTTP/1.1 message parsers.
//
// Framing behaviour is configurable because *disagreement between two
// framers is itself a vulnerability class*: CVE-2019-18277 (HAProxy request
// smuggling) works because HAProxy 1.5.3 did not recognise a
// `Transfer-Encoding` value prefixed with a vertical tab as "chunked" (it
// fell back to Content-Length) while typical backends, trimming with
// isspace(), did. `ParserOptions::te_whitespace` selects which of those two
// framers you get; services/reverse_proxy wires the vulnerable combination.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "proto/http/message.h"

namespace rddr::http {

/// How header values are trimmed when deciding Transfer-Encoding framing.
enum class TeWhitespace {
  /// RFC 7230: only SP and HTAB are optional whitespace. A value like
  /// "\x0bchunked" is NOT recognised as chunked (HAProxy 1.5.3 behaviour).
  kStrictHttp,
  /// Lenient backends: trim with isspace() (includes \x0b, \x0c), so
  /// "\x0bchunked" IS chunked.
  kAnyWhitespace,
};

struct ParserOptions {
  TeWhitespace te_whitespace = TeWhitespace::kStrictHttp;
  /// Reject messages that carry both a chunked Transfer-Encoding and a
  /// Content-Length (RFC 7230 §3.3.3 says the request "ought to be handled
  /// as an error"; hardened proxies do, lax ones don't).
  bool reject_te_and_cl = false;
  /// Reject messages with conflicting duplicate Content-Length headers.
  bool reject_duplicate_cl = true;
  /// Upper bound on header block size; larger blocks are a parse error.
  size_t max_header_bytes = 64 * 1024;
  /// Upper bound on body size.
  size_t max_body_bytes = 256 * 1024 * 1024;
};

namespace detail {

/// Common incremental implementation for requests and responses.
class MessageParserBase {
 public:
  explicit MessageParserBase(bool is_request, ParserOptions opts);

  /// Appends bytes to the internal buffer and parses as far as possible.
  void feed(ByteView data);

  /// True once a framing/syntax error was hit; the parser stops consuming.
  bool failed() const { return failed_; }
  const std::string& error() const { return error_; }

  /// Bytes fed but not yet consumed by a complete message (diagnostics).
  size_t buffered_bytes() const { return buf_.size() - consumed_; }

  /// Copy of the not-yet-consumed bytes (pass-through fallback after a
  /// framing failure).
  Bytes unconsumed() const { return buf_.substr(consumed_); }

 protected:
  struct Parsed {
    std::string start_line;
    HeaderMap headers;
    Bytes body;
    Bytes raw;
  };
  std::vector<Parsed> ready_;

 private:
  void parse_loop();
  bool try_parse_one();
  void fail(std::string msg);

  /// Decides body framing from headers. Returns false on error.
  bool decide_framing(const HeaderMap& h, bool& chunked, int64_t& length);

  bool is_request_;
  ParserOptions opts_;
  Bytes buf_;
  size_t consumed_ = 0;
  bool failed_ = false;
  std::string error_;
};

}  // namespace detail

/// Incremental request parser. feed() bytes, then drain take().
class RequestParser : public detail::MessageParserBase {
 public:
  explicit RequestParser(ParserOptions opts = {})
      : MessageParserBase(/*is_request=*/true, opts) {}

  /// Removes and returns all fully parsed requests.
  std::vector<Request> take();
};

/// Incremental response parser.
class ResponseParser : public detail::MessageParserBase {
 public:
  explicit ResponseParser(ParserOptions opts = {})
      : MessageParserBase(/*is_request=*/false, opts) {}

  std::vector<Response> take();
};

/// Encodes a body with chunked transfer coding (single data chunk + final).
Bytes chunked_encode(ByteView body, size_t chunk_size = 4096);

}  // namespace rddr::http
