// Minimal JSON value model, parser, and writer.
//
// Used by the RESTful library-variant services (paper §V-A) and by the RDDR
// JSON protocol plugin, which diffs responses structurally (so key order is
// not a spurious divergence).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"

namespace rddr::json {

class Value;

using Array = std::vector<Value>;
/// std::map keeps members ordered by key, which makes writing canonical.
using Object = std::map<std::string, Value>;

/// A JSON value. Numbers are stored as double (sufficient for this repo's
/// payloads); use `is_integer()` to check for integral values.
class Value {
 public:
  Value() : v_(nullptr) {}
  Value(std::nullptr_t) : v_(nullptr) {}            // NOLINT
  Value(bool b) : v_(b) {}                          // NOLINT
  Value(double d) : v_(d) {}                        // NOLINT
  Value(int i) : v_(static_cast<double>(i)) {}      // NOLINT
  Value(int64_t i) : v_(static_cast<double>(i)) {}  // NOLINT
  Value(const char* s) : v_(std::string(s)) {}      // NOLINT
  Value(std::string s) : v_(std::move(s)) {}        // NOLINT
  Value(Array a) : v_(std::move(a)) {}              // NOLINT
  Value(Object o) : v_(std::move(o)) {}             // NOLINT

  bool is_null() const { return std::holds_alternative<std::nullptr_t>(v_); }
  bool is_bool() const { return std::holds_alternative<bool>(v_); }
  bool is_number() const { return std::holds_alternative<double>(v_); }
  bool is_string() const { return std::holds_alternative<std::string>(v_); }
  bool is_array() const { return std::holds_alternative<Array>(v_); }
  bool is_object() const { return std::holds_alternative<Object>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  double as_number() const { return std::get<double>(v_); }
  const std::string& as_string() const { return std::get<std::string>(v_); }
  const Array& as_array() const { return std::get<Array>(v_); }
  Array& as_array() { return std::get<Array>(v_); }
  const Object& as_object() const { return std::get<Object>(v_); }
  Object& as_object() { return std::get<Object>(v_); }

  /// Object member access; returns nullptr when absent or not an object.
  const Value* find(const std::string& key) const;

  /// Canonical serialization: object keys sorted (std::map order), no
  /// whitespace, shortest-round-trip numbers.
  std::string dump() const;

  bool operator==(const Value& other) const { return v_ == other.v_; }

 private:
  std::variant<std::nullptr_t, bool, double, std::string, Array, Object> v_;
};

/// Parses a JSON document. Returns nullopt on syntax error. Rejects
/// trailing garbage. Depth-limited (default 64) against stack abuse.
std::optional<Value> parse(ByteView text, int max_depth = 64);

/// Escapes a string for embedding in JSON output.
std::string escape(std::string_view s);

}  // namespace rddr::json
