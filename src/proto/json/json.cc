#include "proto/json/json.h"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>

namespace rddr::json {

const Value* Value::find(const std::string& key) const {
  if (!is_object()) return nullptr;
  const auto& obj = as_object();
  auto it = obj.find(key);
  return it == obj.end() ? nullptr : &it->second;
}

std::string escape(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (unsigned char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (c < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out.push_back(static_cast<char>(c));
        }
    }
  }
  return out;
}

namespace {

void dump_number(std::string& out, double d) {
  if (std::isfinite(d) && d == std::floor(d) && std::fabs(d) < 1e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    out += buf;
  } else {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%.17g", d);
    out += buf;
  }
}

void dump_value(std::string& out, const Value& v) {
  if (v.is_null()) {
    out += "null";
  } else if (v.is_bool()) {
    out += v.as_bool() ? "true" : "false";
  } else if (v.is_number()) {
    dump_number(out, v.as_number());
  } else if (v.is_string()) {
    out.push_back('"');
    out += escape(v.as_string());
    out.push_back('"');
  } else if (v.is_array()) {
    out.push_back('[');
    bool first = true;
    for (const auto& e : v.as_array()) {
      if (!first) out.push_back(',');
      first = false;
      dump_value(out, e);
    }
    out.push_back(']');
  } else {
    out.push_back('{');
    bool first = true;
    for (const auto& [k, e] : v.as_object()) {
      if (!first) out.push_back(',');
      first = false;
      out.push_back('"');
      out += escape(k);
      out += "\":";
      dump_value(out, e);
    }
    out.push_back('}');
  }
}

class Parser {
 public:
  Parser(ByteView text, int max_depth) : s_(text), max_depth_(max_depth) {}

  std::optional<Value> run() {
    skip_ws();
    auto v = parse_value(0);
    if (!v) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool literal(std::string_view lit) {
    if (s_.substr(pos_, lit.size()) == lit) {
      pos_ += lit.size();
      return true;
    }
    return false;
  }

  std::optional<Value> parse_value(int depth) {
    if (depth > max_depth_) return std::nullopt;
    if (pos_ >= s_.size()) return std::nullopt;
    char c = s_[pos_];
    if (c == 'n') return literal("null") ? std::optional<Value>(Value(nullptr)) : std::nullopt;
    if (c == 't') return literal("true") ? std::optional<Value>(Value(true)) : std::nullopt;
    if (c == 'f') return literal("false") ? std::optional<Value>(Value(false)) : std::nullopt;
    if (c == '"') return parse_string();
    if (c == '[') return parse_array(depth);
    if (c == '{') return parse_object(depth);
    return parse_number();
  }

  std::optional<Value> parse_string() {
    std::string out;
    if (!consume('"')) return std::nullopt;
    while (pos_ < s_.size()) {
      char c = s_[pos_++];
      if (c == '"') return Value(std::move(out));
      if (c == '\\') {
        if (pos_ >= s_.size()) return std::nullopt;
        char e = s_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            if (pos_ + 4 > s_.size()) return std::nullopt;
            unsigned code = 0;
            for (int i = 0; i < 4; ++i) {
              char h = s_[pos_++];
              int d;
              if (h >= '0' && h <= '9') d = h - '0';
              else if (h >= 'a' && h <= 'f') d = h - 'a' + 10;
              else if (h >= 'A' && h <= 'F') d = h - 'A' + 10;
              else return std::nullopt;
              code = code * 16 + static_cast<unsigned>(d);
            }
            // UTF-8 encode the BMP code point (surrogate pairs unsupported;
            // emitted as-is in the replacement range).
            if (code < 0x80) {
              out.push_back(static_cast<char>(code));
            } else if (code < 0x800) {
              out.push_back(static_cast<char>(0xc0 | (code >> 6)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            } else {
              out.push_back(static_cast<char>(0xe0 | (code >> 12)));
              out.push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3f)));
              out.push_back(static_cast<char>(0x80 | (code & 0x3f)));
            }
            break;
          }
          default: return std::nullopt;
        }
      } else {
        out.push_back(c);
      }
    }
    return std::nullopt;  // unterminated
  }

  std::optional<Value> parse_number() {
    size_t start = pos_;
    if (pos_ < s_.size() && s_[pos_] == '-') ++pos_;
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) ||
            s_[pos_] == '.' || s_[pos_] == 'e' || s_[pos_] == 'E' ||
            s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) return std::nullopt;
    std::string num(s_.substr(start, pos_ - start));
    char* end = nullptr;
    double d = std::strtod(num.c_str(), &end);
    if (end != num.c_str() + num.size()) return std::nullopt;
    return Value(d);
  }

  std::optional<Value> parse_array(int depth) {
    if (!consume('[')) return std::nullopt;
    Array arr;
    skip_ws();
    if (consume(']')) return Value(std::move(arr));
    while (true) {
      skip_ws();
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      arr.push_back(std::move(*v));
      skip_ws();
      if (consume(']')) return Value(std::move(arr));
      if (!consume(',')) return std::nullopt;
    }
  }

  std::optional<Value> parse_object(int depth) {
    if (!consume('{')) return std::nullopt;
    Object obj;
    skip_ws();
    if (consume('}')) return Value(std::move(obj));
    while (true) {
      skip_ws();
      auto key = parse_string();
      if (!key) return std::nullopt;
      skip_ws();
      if (!consume(':')) return std::nullopt;
      skip_ws();
      auto v = parse_value(depth + 1);
      if (!v) return std::nullopt;
      obj[key->as_string()] = std::move(*v);
      skip_ws();
      if (consume('}')) return Value(std::move(obj));
      if (!consume(',')) return std::nullopt;
    }
  }

  ByteView s_;
  size_t pos_ = 0;
  int max_depth_;
};

}  // namespace

std::string Value::dump() const {
  std::string out;
  dump_value(out, *this);
  return out;
}

std::optional<Value> parse(ByteView text, int max_depth) {
  return Parser(text, max_depth).run();
}

}  // namespace rddr::json
