#include "workloads/pgbench.h"

#include "common/strutil.h"

namespace rddr::workloads {

using sqldb::Datum;
using sqldb::Type;

void load_pgbench(sqldb::Database& db, int accounts, uint64_t seed) {
  Rng rng(seed);
  const int branches = std::max(1, accounts / 100000 + 1);
  const int tellers = branches * 10;

  auto* b = db.create_table("pgbench_branches",
                            {{"bid", Type::kInt}, {"bbalance", Type::kInt}});
  for (int i = 1; i <= branches; ++i)
    b->rows.push_back({Datum::integer(i), Datum::integer(0)});

  auto* t = db.create_table("pgbench_tellers", {{"tid", Type::kInt},
                                                {"bid", Type::kInt},
                                                {"tbalance", Type::kInt}});
  for (int i = 1; i <= tellers; ++i)
    t->rows.push_back({Datum::integer(i), Datum::integer((i - 1) / 10 + 1),
                       Datum::integer(0)});

  auto* a = db.create_table("pgbench_accounts", {{"aid", Type::kInt},
                                                 {"bid", Type::kInt},
                                                 {"abalance", Type::kInt},
                                                 {"filler", Type::kText}});
  a->rows.reserve(static_cast<size_t>(accounts));
  for (int i = 1; i <= accounts; ++i) {
    a->rows.push_back({Datum::integer(i),
                       Datum::integer((i - 1) % branches + 1),
                       Datum::integer(rng.uniform(-5000, 5000)),
                       Datum::text("                    ")});
  }
  a->build_index("aid");
}

std::string pgbench_select_tx(Rng& rng, int accounts) {
  return strformat("SELECT abalance FROM pgbench_accounts WHERE aid = %lld;",
                   static_cast<long long>(rng.uniform(1, accounts)));
}

}  // namespace rddr::workloads
