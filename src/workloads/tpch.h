// TPC-H-lite: schema, data generator, and analytic query set (Fig 4).
//
// Substitutes for the paper's TPC-H SF-10 runs (see DESIGN.md). The schema
// is the TPC-H schema (all eight tables); the data volumes are scaled so a
// full bench run finishes in seconds, and the queries are adaptations of
// the TPC-H analytics to the sqldb SQL subset (joins, aggregates,
// GROUP BY/HAVING, ORDER BY, LIMIT, CASE — no correlated subqueries). The
// per-row CPU cost model on the server is what carries the performance
// signal, so absolute dataset size only sets the bench's wall time.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "sqldb/engine.h"

namespace rddr::workloads {

/// Row counts at scale = 1.0 (scaled linearly; region/nation fixed).
struct TpchScale {
  double scale = 1.0;
  int customers() const { return static_cast<int>(300 * scale); }
  int orders() const { return static_cast<int>(450 * scale); }
  int lineitems() const { return static_cast<int>(1800 * scale); }
  int parts() const { return static_cast<int>(200 * scale); }
  int suppliers() const { return static_cast<int>(100 * scale); }
  int partsupps() const { return static_cast<int>(800 * scale); }
};

/// Creates the eight TPC-H tables in `db` and fills them deterministically
/// from `seed`. Loading the same (scale, seed) into two databases yields
/// byte-identical contents — required for N-versioned replicas.
void load_tpch(sqldb::Database& db, TpchScale scale, uint64_t seed);

/// The analytic query set (15 queries, Q1-flavoured through Q19-flavoured).
/// All queries carry ORDER BY so row order is deterministic across engine
/// personalities (the paper's §V-C2 configuration requirement).
const std::vector<std::string>& tpch_queries();

}  // namespace rddr::workloads
