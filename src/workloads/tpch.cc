#include "workloads/tpch.h"

#include "common/rng.h"
#include "common/strutil.h"

namespace rddr::workloads {

namespace {

using sqldb::Column;
using sqldb::Datum;
using sqldb::Type;

const char* kRegions[] = {"AFRICA", "AMERICA", "ASIA", "EUROPE",
                          "MIDDLE EAST"};
const char* kNations[] = {
    "ALGERIA", "ARGENTINA", "BRAZIL", "CANADA", "EGYPT", "ETHIOPIA",
    "FRANCE", "GERMANY", "INDIA", "INDONESIA", "IRAN", "IRAQ", "JAPAN",
    "JORDAN", "KENYA", "MOROCCO", "MOZAMBIQUE", "PERU", "CHINA", "ROMANIA",
    "SAUDI ARABIA", "VIETNAM", "RUSSIA", "UNITED KINGDOM", "UNITED STATES"};
const char* kSegments[] = {"AUTOMOBILE", "BUILDING", "FURNITURE",
                           "MACHINERY", "HOUSEHOLD"};
const char* kPriorities[] = {"1-URGENT", "2-HIGH", "3-MEDIUM",
                             "4-NOT SPECIFIED", "5-LOW"};
const char* kTypes[] = {"STANDARD", "SMALL", "MEDIUM", "LARGE", "ECONOMY",
                        "PROMO"};
const char* kBrands[] = {"Brand#11", "Brand#12", "Brand#21", "Brand#22",
                         "Brand#31"};

std::string random_date(Rng& rng, int year_lo, int year_hi) {
  int y = static_cast<int>(rng.uniform(year_lo, year_hi));
  int m = static_cast<int>(rng.uniform(1, 12));
  int d = static_cast<int>(rng.uniform(1, 28));
  return strformat("%04d-%02d-%02d", y, m, d);
}

}  // namespace

void load_tpch(sqldb::Database& db, TpchScale scale, uint64_t seed) {
  Rng rng(seed);

  auto* region = db.create_table(
      "region", {{"r_regionkey", Type::kInt}, {"r_name", Type::kText}});
  for (int i = 0; i < 5; ++i)
    region->rows.push_back({Datum::integer(i), Datum::text(kRegions[i])});

  auto* nation = db.create_table(
      "nation", {{"n_nationkey", Type::kInt},
                 {"n_name", Type::kText},
                 {"n_regionkey", Type::kInt}});
  for (int i = 0; i < 25; ++i)
    nation->rows.push_back({Datum::integer(i), Datum::text(kNations[i]),
                            Datum::integer(i % 5)});

  auto* customer = db.create_table(
      "customer", {{"c_custkey", Type::kInt},
                   {"c_name", Type::kText},
                   {"c_nationkey", Type::kInt},
                   {"c_acctbal", Type::kFloat},
                   {"c_mktsegment", Type::kText}});
  for (int i = 1; i <= scale.customers(); ++i) {
    customer->rows.push_back(
        {Datum::integer(i), Datum::text(strformat("Customer#%06d", i)),
         Datum::integer(rng.uniform(0, 24)),
         Datum::floating(static_cast<double>(rng.uniform(-999, 9999)) / 10.0),
         Datum::text(kSegments[rng.uniform(0, 4)])});
  }
  customer->build_index("c_custkey");

  auto* supplier = db.create_table(
      "supplier", {{"s_suppkey", Type::kInt},
                   {"s_name", Type::kText},
                   {"s_nationkey", Type::kInt},
                   {"s_acctbal", Type::kFloat}});
  for (int i = 1; i <= scale.suppliers(); ++i) {
    supplier->rows.push_back(
        {Datum::integer(i), Datum::text(strformat("Supplier#%06d", i)),
         Datum::integer(rng.uniform(0, 24)),
         Datum::floating(static_cast<double>(rng.uniform(-999, 9999)) / 10.0)});
  }

  auto* part = db.create_table(
      "part", {{"p_partkey", Type::kInt},
               {"p_name", Type::kText},
               {"p_brand", Type::kText},
               {"p_type", Type::kText},
               {"p_size", Type::kInt},
               {"p_retailprice", Type::kFloat}});
  for (int i = 1; i <= scale.parts(); ++i) {
    part->rows.push_back(
        {Datum::integer(i), Datum::text(strformat("part %d", i)),
         Datum::text(kBrands[rng.uniform(0, 4)]),
         Datum::text(kTypes[rng.uniform(0, 5)]),
         Datum::integer(rng.uniform(1, 50)),
         Datum::floating(900.0 + static_cast<double>(i % 200))});
  }
  part->build_index("p_partkey");

  auto* partsupp = db.create_table(
      "partsupp", {{"ps_partkey", Type::kInt},
                   {"ps_suppkey", Type::kInt},
                   {"ps_availqty", Type::kInt},
                   {"ps_supplycost", Type::kFloat}});
  for (int i = 0; i < scale.partsupps(); ++i) {
    partsupp->rows.push_back(
        {Datum::integer(rng.uniform(1, scale.parts())),
         Datum::integer(rng.uniform(1, scale.suppliers())),
         Datum::integer(rng.uniform(1, 9999)),
         Datum::floating(static_cast<double>(rng.uniform(100, 99999)) / 100.0)});
  }

  auto* orders = db.create_table(
      "orders", {{"o_orderkey", Type::kInt},
                 {"o_custkey", Type::kInt},
                 {"o_orderstatus", Type::kText},
                 {"o_totalprice", Type::kFloat},
                 {"o_orderdate", Type::kText},
                 {"o_orderpriority", Type::kText}});
  for (int i = 1; i <= scale.orders(); ++i) {
    orders->rows.push_back(
        {Datum::integer(i), Datum::integer(rng.uniform(1, scale.customers())),
         Datum::text(rng.uniform01() < 0.5 ? "F" : "O"),
         Datum::floating(static_cast<double>(rng.uniform(1000, 500000)) / 100.0),
         Datum::text(random_date(rng, 1992, 1998)),
         Datum::text(kPriorities[rng.uniform(0, 4)])});
  }
  orders->build_index("o_orderkey");

  auto* lineitem = db.create_table(
      "lineitem", {{"l_orderkey", Type::kInt},
                   {"l_partkey", Type::kInt},
                   {"l_suppkey", Type::kInt},
                   {"l_linenumber", Type::kInt},
                   {"l_quantity", Type::kFloat},
                   {"l_extendedprice", Type::kFloat},
                   {"l_discount", Type::kFloat},
                   {"l_tax", Type::kFloat},
                   {"l_returnflag", Type::kText},
                   {"l_linestatus", Type::kText},
                   {"l_shipdate", Type::kText}});
  for (int i = 0; i < scale.lineitems(); ++i) {
    int orderkey = static_cast<int>(rng.uniform(1, scale.orders()));
    double qty = static_cast<double>(rng.uniform(1, 50));
    lineitem->rows.push_back(
        {Datum::integer(orderkey),
         Datum::integer(rng.uniform(1, scale.parts())),
         Datum::integer(rng.uniform(1, scale.suppliers())),
         Datum::integer(rng.uniform(1, 7)), Datum::floating(qty),
         Datum::floating(qty * (900.0 + static_cast<double>(rng.uniform(0, 200)))),
         Datum::floating(static_cast<double>(rng.uniform(0, 10)) / 100.0),
         Datum::floating(static_cast<double>(rng.uniform(0, 8)) / 100.0),
         Datum::text(rng.uniform01() < 0.5 ? "A" : (rng.uniform01() < 0.5 ? "N" : "R")),
         Datum::text(rng.uniform01() < 0.5 ? "O" : "F"),
         Datum::text(random_date(rng, 1992, 1998))});
  }
  lineitem->build_index("l_orderkey");
}

const std::vector<std::string>& tpch_queries() {
  static const std::vector<std::string> kQueries = {
      // Q1: pricing summary report.
      "SELECT l_returnflag, l_linestatus, sum(l_quantity) AS sum_qty, "
      "sum(l_extendedprice) AS sum_base_price, "
      "sum(l_extendedprice * (1 - l_discount)) AS sum_disc_price, "
      "avg(l_quantity) AS avg_qty, avg(l_discount) AS avg_disc, count(*) AS "
      "count_order FROM lineitem WHERE l_shipdate <= '1998-09-01' "
      "GROUP BY l_returnflag, l_linestatus "
      "ORDER BY l_returnflag, l_linestatus;",
      // Q3: shipping priority.
      "SELECT o.o_orderkey, sum(l.l_extendedprice * (1 - l.l_discount)) AS "
      "revenue, o.o_orderdate FROM customer c "
      "JOIN orders o ON c.c_custkey = o.o_custkey "
      "JOIN lineitem l ON l.l_orderkey = o.o_orderkey "
      "WHERE c.c_mktsegment = 'BUILDING' AND o.o_orderdate < '1995-03-15' "
      "GROUP BY o.o_orderkey, o.o_orderdate "
      "ORDER BY revenue DESC, o.o_orderdate LIMIT 10;",
      // Q4-flavoured: order priority checking.
      "SELECT o_orderpriority, count(*) AS order_count FROM orders "
      "WHERE o_orderdate >= '1993-07-01' AND o_orderdate < '1993-10-01' "
      "GROUP BY o_orderpriority ORDER BY o_orderpriority;",
      // Q5-flavoured: local supplier volume.
      "SELECT n.n_name, sum(l.l_extendedprice * (1 - l.l_discount)) AS "
      "revenue FROM region r "
      "JOIN nation n ON n.n_regionkey = r.r_regionkey "
      "JOIN customer c ON c.c_nationkey = n.n_nationkey "
      "JOIN orders o ON o.o_custkey = c.c_custkey "
      "JOIN lineitem l ON l.l_orderkey = o.o_orderkey "
      "WHERE r.r_name = 'ASIA' "
      "GROUP BY n.n_name ORDER BY revenue DESC, n.n_name;",
      // Q6: forecasting revenue change.
      "SELECT sum(l_extendedprice * l_discount) AS revenue FROM lineitem "
      "WHERE l_shipdate >= '1994-01-01' AND l_shipdate < '1995-01-01' "
      "AND l_discount BETWEEN 0.02 AND 0.07 AND l_quantity < 24 "
      "ORDER BY revenue;",
      // Q10-flavoured: returned item reporting.
      "SELECT c.c_custkey, c.c_name, sum(l.l_extendedprice * "
      "(1 - l.l_discount)) AS revenue, c.c_acctbal FROM customer c "
      "JOIN orders o ON o.o_custkey = c.c_custkey "
      "JOIN lineitem l ON l.l_orderkey = o.o_orderkey "
      "WHERE l.l_returnflag = 'R' GROUP BY c.c_custkey, c.c_name, c.c_acctbal "
      "ORDER BY revenue DESC, c.c_custkey LIMIT 20;",
      // Q11-flavoured: important stock identification.
      "SELECT ps_partkey, sum(ps_supplycost * ps_availqty) AS value "
      "FROM partsupp GROUP BY ps_partkey "
      "HAVING sum(ps_supplycost * ps_availqty) > 100000 "
      "ORDER BY value DESC, ps_partkey LIMIT 25;",
      // Q12-flavoured: shipping modes and order priority.
      "SELECT l.l_linestatus, count(*) AS line_count, "
      "sum(CASE WHEN o.o_orderpriority = '1-URGENT' THEN 1 ELSE 0 END) AS "
      "urgent_count FROM orders o "
      "JOIN lineitem l ON l.l_orderkey = o.o_orderkey "
      "WHERE l.l_shipdate >= '1994-01-01' "
      "GROUP BY l.l_linestatus ORDER BY l.l_linestatus;",
      // Q14-flavoured: promotion effect.
      "SELECT 100.0 * sum(CASE WHEN p.p_type = 'PROMO' THEN "
      "l.l_extendedprice * (1 - l.l_discount) ELSE 0 END) / "
      "sum(l.l_extendedprice * (1 - l.l_discount)) AS promo_revenue "
      "FROM lineitem l JOIN part p ON l.l_partkey = p.p_partkey "
      "ORDER BY promo_revenue;",
      // Q15-flavoured: top supplier by revenue.
      "SELECT l_suppkey, sum(l_extendedprice * (1 - l_discount)) AS "
      "total_revenue FROM lineitem WHERE l_shipdate >= '1996-01-01' "
      "GROUP BY l_suppkey ORDER BY total_revenue DESC, l_suppkey LIMIT 5;",
      // Q16-flavoured: parts/supplier relationship.
      "SELECT p.p_brand, p.p_type, count(distinct ps.ps_suppkey) AS "
      "supplier_cnt FROM partsupp ps "
      "JOIN part p ON p.p_partkey = ps.ps_partkey "
      "WHERE p.p_brand <> 'Brand#11' AND p.p_size IN (1, 5, 9, 13, 21) "
      "GROUP BY p.p_brand, p.p_type "
      "ORDER BY supplier_cnt DESC, p.p_brand, p.p_type;",
      // Q17-flavoured: small-quantity-order revenue.
      "SELECT sum(l.l_extendedprice) / 7.0 AS avg_yearly FROM lineitem l "
      "JOIN part p ON p.p_partkey = l.l_partkey "
      "WHERE p.p_brand = 'Brand#21' AND l.l_quantity < 5 "
      "ORDER BY avg_yearly;",
      // Q18-flavoured: large volume customers.
      "SELECT c.c_name, o.o_orderkey, o.o_totalprice, sum(l.l_quantity) AS "
      "total_qty FROM customer c "
      "JOIN orders o ON o.o_custkey = c.c_custkey "
      "JOIN lineitem l ON l.l_orderkey = o.o_orderkey "
      "GROUP BY c.c_name, o.o_orderkey, o.o_totalprice "
      "HAVING sum(l.l_quantity) > 100 "
      "ORDER BY o.o_totalprice DESC, o.o_orderkey LIMIT 10;",
      // Q19-flavoured: discounted revenue for brand.
      "SELECT sum(l.l_extendedprice * (1 - l.l_discount)) AS revenue "
      "FROM lineitem l JOIN part p ON p.p_partkey = l.l_partkey "
      "WHERE p.p_brand = 'Brand#12' AND l.l_quantity BETWEEN 1 AND 30 "
      "ORDER BY revenue;",
      // Nation/account rollup (custom analytic in the same style).
      "SELECT n.n_name, count(*) AS customers, round(avg(c.c_acctbal), 2) AS "
      "avg_bal FROM nation n JOIN customer c ON c.c_nationkey = n.n_nationkey "
      "GROUP BY n.n_name HAVING count(*) > 2 "
      "ORDER BY customers DESC, n.n_name LIMIT 15;",
  };
  return kQueries;
}

}  // namespace rddr::workloads
