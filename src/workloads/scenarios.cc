#include "workloads/scenarios.h"

#include <memory>

#include "common/log.h"
#include "common/strutil.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "proto/json/json.h"
#include "rddr/deployment.h"
#include "rddr/plugins.h"
#include "services/dvwa.h"
#include "services/echo_vuln.h"
#include "services/gitlab.h"
#include "services/http_service.h"
#include "services/rest_service.h"
#include "services/reverse_proxy.h"
#include "services/simple_api.h"
#include "services/static_server.h"
#include "services/variant_libs.h"
#include "sqldb/client.h"
#include "sqldb/server.h"

namespace rddr::workloads {

namespace {

using core::DivergenceBus;
using core::HttpPlugin;
using core::IncomingProxy;
using core::OutgoingProxy;
using core::PgPlugin;
using core::TcpLinePlugin;
using services::HttpClient;

/// One simulated cluster node per scenario.
struct TestBed {
  sim::Simulator simulator;
  sim::Network net{simulator, 20 * sim::kMicrosecond};
  sim::Host host{simulator, "node", 32, 128LL << 30};
};

/// Blocking-style HTTP request: runs the simulator until the callback.
struct HttpResult {
  int status = -2;  // -2: no reply; -1: connection failed/closed
  http::Response response;
};

HttpResult do_http(TestBed& bed, const std::string& address,
                   http::Request req) {
  HttpResult out;
  HttpClient client(bed.net, "test-client");
  client.request(address, std::move(req),
                 [&out](int status, const http::Response* r) {
                   out.status = status;
                   if (r) out.response = *r;
                 });
  bed.simulator.run_until_idle();
  return out;
}

HttpResult do_get(TestBed& bed, const std::string& address,
                  const std::string& target) {
  http::Request req;
  req.method = "GET";
  req.target = target;
  req.headers.set("Host", address);
  return do_http(bed, address, std::move(req));
}

HttpResult do_post(TestBed& bed, const std::string& address,
                   const std::string& target, const std::string& body,
                   const std::string& content_type = "application/json") {
  http::Request req;
  req.method = "POST";
  req.target = target;
  req.headers.set("Host", address);
  req.headers.set("Content-Type", content_type);
  req.body = body;
  return do_http(bed, address, std::move(req));
}

/// Blocking-style SQL query on a fresh connection.
sqldb::QueryOutcome do_query(TestBed& bed, const std::string& address,
                             const std::string& user, const std::string& sql) {
  sqldb::QueryOutcome result;
  bool done = false;
  sqldb::PgClient client(bed.net, "test-client", address, user);
  client.query(sql, [&](sqldb::QueryOutcome out) {
    result = std::move(out);
    done = true;
  });
  bed.simulator.run_until_idle();
  if (!done) result.connection_lost = true;
  return result;
}

/// Raw TCP exchange: send bytes, collect everything until close/idle.
struct RawResult {
  Bytes data;
  bool closed = false;
};

RawResult do_raw(TestBed& bed, const std::string& address, ByteView payload) {
  RawResult out;
  auto conn = bed.net.connect(address, {.source = "test-client"});
  if (!conn) {
    out.closed = true;
    return out;
  }
  conn->set_on_data([&out](ByteView d) { out.data += Bytes(d); });
  conn->set_on_close([&out] { out.closed = true; });
  conn->send(payload);
  bed.simulator.run_until_idle();
  return out;
}

std::string extract_user_token(const Bytes& page) {
  size_t pos = page.find("name=\"user_token\" value=\"");
  if (pos == Bytes::npos) return "";
  pos += 25;
  size_t end = page.find('"', pos);
  if (end == Bytes::npos) return "";
  return page.substr(pos, end - pos);
}

// =====================================================================
// §V-A: RESTful library-diversity scenarios (shared skeleton).
// =====================================================================

struct RestSpec {
  std::string id, microservice, exploit, cwe, owasp, diversity;
  services::RestLibraryService::Kind kind;
  std::string vulnerable_lib, safe_lib;
  std::string benign_body;             // JSON request body
  std::string exploit_body;            // JSON request body
  std::vector<std::string> leak_markers;
};

ScenarioResult run_rest_scenario(const RestSpec& spec) {
  ScenarioResult result;
  result.id = spec.id;
  result.microservice = spec.microservice;
  result.exploit = spec.exploit;
  result.cwe = spec.cwe;
  result.owasp = spec.owasp;
  result.diversity = spec.diversity;

  const std::string endpoint =
      services::RestLibraryService::endpoint(spec.kind);

  // ---- Control: exploit against the unprotected vulnerable library. ----
  {
    TestBed bed;
    services::RestLibraryService::Options o;
    o.address = "svc:80";
    o.kind = spec.kind;
    o.library = spec.vulnerable_lib;
    services::RestLibraryService vuln(bed.net, bed.host, o);
    auto r = do_post(bed, "svc:80", endpoint, spec.exploit_body);
    for (const auto& marker : spec.leak_markers)
      if (r.response.body.find(marker) != Bytes::npos)
        result.exploit_works_unprotected = true;
  }

  // ---- Protected deployment: vulnerable + diverse instance. ----
  TestBed bed;
  services::RestLibraryService::Options o0, o1;
  o0.address = "svc-0:80";
  o0.kind = spec.kind;
  o0.library = spec.vulnerable_lib;
  o1.address = "svc-1:80";
  o1.kind = spec.kind;
  o1.library = spec.safe_lib;
  services::RestLibraryService inst0(bed.net, bed.host, o0);
  services::RestLibraryService inst1(bed.net, bed.host, o1);

  IncomingProxy::Config cfg;
  cfg.listen_address = "svc:80";
  cfg.instance_addresses = {"svc-0:80", "svc-1:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  DivergenceBus bus(bed.simulator);
  IncomingProxy proxy(bed.net, bed.host, cfg, &bus);

  // Benign request passes and matches the library output byte-for-byte.
  auto benign = do_post(bed, "svc:80", endpoint, spec.benign_body);
  result.benign_ok = benign.status == 200 && bus.count() == 0;

  // Exploit is blocked; leaked content never reaches the client.
  auto attack = do_post(bed, "svc:80", endpoint, spec.exploit_body);
  result.exploit_blocked = bus.count() > 0 && attack.status != 200;
  Bytes client_visible = attack.response.body;
  for (const auto& marker : spec.leak_markers)
    if (client_visible.find(marker) != Bytes::npos)
      result.leak_reached_client = true;
  if (!bus.events().empty()) result.detail = bus.events().back().reason;
  return result;
}

}  // namespace

// =====================================================================
// §V-A scenarios
// =====================================================================

ScenarioResult run_cve_2014_3146() {
  RestSpec spec;
  spec.id = "CVE-2014-3146";
  spec.microservice = "lxml lib / RESTful";
  spec.exploit = "Cross site scripting";
  spec.cwe = "Other";
  spec.owasp = "3";
  spec.diversity = "Library in different language";
  spec.kind = services::RestLibraryService::Kind::kSanitizer;
  spec.vulnerable_lib = "lxmllite";
  spec.safe_lib = "sanihtml";
  json::Object benign{{"html", "<p>hello <b>world</b></p>"
                               "<a href=\"https://ok.example\">link</a>"}};
  json::Object attack{
      {"html", "<a href=\"java&#10;script:alert(1)\">click me</a>"}};
  spec.benign_body = json::Value(benign).dump();
  spec.exploit_body = json::Value(attack).dump();
  spec.leak_markers = {"script:alert(1)"};
  return run_rest_scenario(spec);
}

ScenarioResult run_cve_2020_10799() {
  RestSpec spec;
  spec.id = "CVE-2020-10799";
  spec.microservice = "svglib lib / RESTful";
  spec.exploit = "Improper restriction of XML external entity reference";
  spec.cwe = "611";
  spec.owasp = "5";
  spec.diversity = "Compatible libraries";
  spec.kind = services::RestLibraryService::Kind::kSvg;
  spec.vulnerable_lib = "svglite";
  spec.safe_lib = "cairolite";
  json::Object benign{
      {"svg", "<svg width=\"64\" height=\"64\"><text>logo</text></svg>"}};
  json::Object attack{
      {"svg",
       "<?xml version=\"1.0\"?><!DOCTYPE svg [<!ENTITY xxe SYSTEM "
       "\"file:///etc/passwd\">]><svg width=\"10\" height=\"10\">"
       "<text>&xxe;</text></svg>"}};
  spec.benign_body = json::Value(benign).dump();
  spec.exploit_body = json::Value(attack).dump();
  // The response carries hex-encoded PNG bytes; the leak marker is the
  // hex form of the stolen file content.
  spec.leak_markers = {to_hex("root:x:0:0")};
  return run_rest_scenario(spec);
}

ScenarioResult run_cve_2020_13757() {
  constexpr uint64_t kKey = 0x524444522d4b4559;  // service default
  RestSpec spec;
  spec.id = "CVE-2020-13757";
  spec.microservice = "rsa lib / RESTful";
  spec.exploit = "Use of risky crypto";
  spec.cwe = "327";
  spec.owasp = "2";
  spec.diversity = "Compatible libraries";
  spec.kind = services::RestLibraryService::Kind::kRsa;
  spec.vulnerable_lib = "rsalite";
  spec.safe_lib = "cryptolite";
  Bytes benign_cipher = services::lib::rsa_encrypt("hello rddr", kKey, 77);
  json::Object benign{{"ciphertext_hex", to_hex(benign_cipher)}};
  // Forged block: bad leading byte (0x01) — strict PKCS#1 rejects it, the
  // lax library "decrypts" it to attacker-chosen bytes.
  Bytes forged_block;
  forged_block += '\x01';
  forged_block += '\x02';
  for (int i = 0; i < 8; ++i) forged_block += '\x5a';
  forged_block += '\0';
  forged_block += "forged-admin-token";
  Bytes forged_cipher;
  for (size_t i = 0; i < forged_block.size(); ++i)
    forged_cipher.push_back(static_cast<char>(
        static_cast<uint8_t>(forged_block[i]) ^
        services::lib::rsa_keystream_byte(kKey, i)));
  json::Object attack{{"ciphertext_hex", to_hex(forged_cipher)}};
  spec.benign_body = json::Value(benign).dump();
  spec.exploit_body = json::Value(attack).dump();
  spec.leak_markers = {"forged-admin-token"};
  return run_rest_scenario(spec);
}

ScenarioResult run_cve_2020_11888() {
  RestSpec spec;
  spec.id = "CVE-2020-11888";
  spec.microservice = "markdown2 lib / RESTful";
  spec.exploit = "Cross site scripting";
  spec.cwe = "79";
  spec.owasp = "3";
  spec.diversity = "Compatible libraries";
  spec.kind = services::RestLibraryService::Kind::kMarkdown;
  spec.vulnerable_lib = "mdtwo";
  spec.safe_lib = "mdone";
  json::Object benign{
      {"markdown", "# Title\n**bold** and a [link](https://example.com)"}};
  json::Object attack{
      {"markdown", "[click](java\x0bscript:alert(1))"}};
  spec.benign_body = json::Value(benign).dump();
  spec.exploit_body = json::Value(attack).dump();
  spec.leak_markers = {"javascript:alert"};
  return run_rest_scenario(spec);
}

// =====================================================================
// §V-C2 / Table I row 1: CVE-2017-7484
// =====================================================================

namespace {
const char* kLeakFunctionSql =
    "CREATE FUNCTION leak2(integer,integer) RETURNS boolean "
    "AS $$BEGIN RAISE NOTICE 'leak % %', $1, $2; RETURN $1 > $2; END$$ "
    "LANGUAGE plpgsql immutable;";
const char* kLeakOperatorSql =
    "CREATE OPERATOR >>> (procedure=leak2, leftarg=integer, "
    "rightarg=integer, restrict=scalargtsel);";
const char* kExplainLeakSql =
    "EXPLAIN (COSTS OFF) SELECT * FROM some_table WHERE col_to_leak >>> 0;";

void load_7484_data(sqldb::Database& db) {
  sqldb::Session s(db, "postgres");
  s.execute(
      "CREATE TABLE some_table (col_to_leak int);"
      "INSERT INTO some_table VALUES (101), (202);"
      "CREATE TABLE pub (v int);"
      "INSERT INTO pub VALUES (1), (2);"
      "GRANT SELECT ON pub TO mallory;");
}
}  // namespace

ScenarioResult run_cve_2017_7484() {
  ScenarioResult result;
  result.id = "CVE-2017-7484";
  result.microservice = "PostgreSQL (minipg + roachdb)";
  result.exploit = "Exposure of sensitive information to an unauthorized actor";
  result.cwe = "200,285";
  result.owasp = "1";
  result.diversity = "Identical API, different program";

  // ---- Control: unprotected vulnerable instance. ----
  {
    TestBed bed;
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("9.2.19"));
    load_7484_data(*db);
    sqldb::SqlServer::Options so;
    so.address = "pg:5432";
    sqldb::SqlServer server(bed.net, bed.host, db, so);
    sqldb::PgClient attacker(bed.net, "attacker", "pg:5432", "mallory");
    std::vector<std::string> notices;
    for (const char* sql : {kLeakFunctionSql, kLeakOperatorSql,
                            "SET client_min_messages TO 'notice';",
                            kExplainLeakSql}) {
      attacker.query(sql, [&](sqldb::QueryOutcome out) {
        for (auto& n : out.notices) notices.push_back(std::move(n));
      });
    }
    bed.simulator.run_until_idle();
    for (const auto& n : notices)
      if (n.find("leak 101") != std::string::npos)
        result.exploit_works_unprotected = true;
  }

  // ---- Protected: minipg 9.2.19 filter pair + roachdb. ----
  TestBed bed;
  std::vector<std::shared_ptr<sqldb::Database>> dbs = {
      std::make_shared<sqldb::Database>(sqldb::minipg_info("9.2.19")),
      std::make_shared<sqldb::Database>(sqldb::minipg_info("9.2.19")),
      std::make_shared<sqldb::Database>(sqldb::roachdb_info()),
  };
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  for (size_t i = 0; i < dbs.size(); ++i) {
    load_7484_data(*dbs[i]);
    sqldb::SqlServer::Options so;
    so.address = strformat("pg-%zu:5432", i);
    so.rng_seed = 100 + i;
    servers.push_back(
        std::make_unique<sqldb::SqlServer>(bed.net, bed.host, dbs[i], so));
  }

  IncomingProxy::Config cfg;
  cfg.listen_address = "db:5432";
  cfg.instance_addresses = {"pg-0:5432", "pg-1:5432", "pg-2:5432"};
  cfg.plugin = std::make_shared<PgPlugin>();
  cfg.filter_pair = true;
  DivergenceBus bus(bed.simulator);
  IncomingProxy proxy(bed.net, bed.host, cfg, &bus);

  // Benign query (ORDER BY: the paper's row-order configuration note).
  auto benign = do_query(bed, "db:5432", "mallory",
                         "SELECT v FROM pub ORDER BY v;");
  result.benign_ok = !benign.failed() && benign.rows.size() == 2 &&
                     bus.count() == 0;

  // Exploit, step 1: CREATE FUNCTION — roachdb errors, minipg succeeds,
  // RDDR cuts the connection at the first divergent unit.
  std::vector<std::string> client_notices;
  auto step1 = do_query(bed, "db:5432", "mallory", kLeakFunctionSql);
  for (auto& n : step1.notices) client_notices.push_back(n);
  bool step1_blocked = step1.connection_lost;

  // The attacker reconnects and pushes on (the minipg instances DID create
  // the function, so their state has already drifted from roachdb's).
  auto step2 = do_query(bed, "db:5432", "mallory", kLeakOperatorSql);
  for (auto& n : step2.notices) client_notices.push_back(n);
  bool step2_blocked = step2.connection_lost;

  // "If the attacker tries to reconnect and proceed ... the final EXPLAIN
  // query which causes the leak is always blocked": the minipg pair emits
  // leak NOTICEs, roachdb reports an unknown operator.
  auto step3 = do_query(bed, "db:5432", "mallory", kExplainLeakSql);
  for (auto& n : step3.notices) client_notices.push_back(n);
  bool step3_blocked = step3.connection_lost;

  result.exploit_blocked =
      step1_blocked && step2_blocked && step3_blocked && bus.count() >= 3;
  for (const auto& n : client_notices)
    if (n.find("leak") != std::string::npos) result.leak_reached_client = true;
  if (!bus.events().empty()) result.detail = bus.events().front().reason;
  return result;
}

// =====================================================================
// §V-D / Table I row 2: CVE-2017-7529 (wsgx range overflow)
// =====================================================================

ScenarioResult run_cve_2017_7529() {
  ScenarioResult result;
  result.id = "CVE-2017-7529";
  result.microservice = "Nginx (wsgx static server)";
  result.exploit = "Integer overflow";
  result.cwe = "190";
  result.owasp = "N/A";
  result.diversity = "Version number";

  const Bytes doc = "<html><body>public document body 0123456789</body></html>";
  auto add_docs = [&](services::StaticFileServer& s) {
    s.add_document("/index.html", doc);
  };
  const std::string huge_range =
      "bytes=-" + std::to_string(doc.size() + 600);  // suffix > doc size

  // ---- Control: unprotected 1.13.2 leaks the cache header. ----
  {
    TestBed bed;
    services::StaticFileServer::Options o;
    o.address = "web:80";
    o.version = "1.13.2";
    services::StaticFileServer server(bed.net, bed.host, o);
    add_docs(server);
    http::Request req;
    req.method = "GET";
    req.target = "/index.html";
    req.headers.set("Range", huge_range);
    auto r = do_http(bed, "web:80", std::move(req));
    if (r.response.body.find("cache-secret-token") != Bytes::npos)
      result.exploit_works_unprotected = true;
  }

  // ---- Protected: 1.13.2 pair + 1.13.4. ----
  TestBed bed;
  std::vector<std::unique_ptr<services::StaticFileServer>> servers;
  const char* versions[] = {"1.13.2", "1.13.2", "1.13.4"};
  for (int i = 0; i < 3; ++i) {
    services::StaticFileServer::Options o;
    o.address = strformat("web-%d:80", i);
    o.version = versions[i];
    servers.push_back(
        std::make_unique<services::StaticFileServer>(bed.net, bed.host, o));
    add_docs(*servers.back());
  }

  IncomingProxy::Config cfg;
  cfg.listen_address = "web:80";
  cfg.instance_addresses = {"web-0:80", "web-1:80", "web-2:80"};
  cfg.plugin = std::make_shared<HttpPlugin>();
  cfg.filter_pair = true;  // not needed (deterministic), but deployed as-is
  DivergenceBus bus(bed.simulator);
  IncomingProxy proxy(bed.net, bed.host, cfg, &bus);

  // Benign: plain GET and a valid in-bounds range.
  auto full = do_get(bed, "web:80", "/index.html");
  http::Request ranged;
  ranged.method = "GET";
  ranged.target = "/index.html";
  ranged.headers.set("Range", "bytes=0-9");
  auto part = do_http(bed, "web:80", std::move(ranged));
  http::Request suffix;
  suffix.method = "GET";
  suffix.target = "/index.html";
  suffix.headers.set("Range", "bytes=-10");
  auto sfx = do_http(bed, "web:80", std::move(suffix));
  result.benign_ok = full.status == 200 && full.response.body == doc &&
                     part.status == 206 &&
                     part.response.body == doc.substr(0, 10) &&
                     sfx.status == 206 && bus.count() == 0;

  // Exploit: oversized suffix range.
  http::Request attack;
  attack.method = "GET";
  attack.target = "/index.html";
  attack.headers.set("Range", huge_range);
  auto r = do_http(bed, "web:80", std::move(attack));
  result.exploit_blocked = bus.count() > 0 && r.status != 206;
  if (r.response.body.find("cache-secret-token") != Bytes::npos)
    result.leak_reached_client = true;
  if (!bus.events().empty()) result.detail = bus.events().back().reason;
  return result;
}

// =====================================================================
// §V-F / Table I row 3: CVE-2019-10130 inside the GitLab composite
// =====================================================================

namespace {
const char* kRlsLeakFunctionSql =
    "CREATE FUNCTION op_leak(int, int) RETURNS bool AS "
    "'BEGIN RAISE NOTICE ''leak %, %'', $1, $2; RETURN $1 < $2; END' "
    "LANGUAGE plpgsql;";
const char* kRlsLeakOperatorSql =
    "CREATE OPERATOR <<< (procedure=op_leak, leftarg=int, rightarg=int, "
    "restrict=scalarltsel);";
const char* kRlsLeakSelectSql =
    "SELECT * FROM protected_rows WHERE col_to_leak <<< 1000;";

void load_gitlab_rls_table(sqldb::Database& db) {
  services::GitlabApp::init_schema(db);
  sqldb::Session s(db, "postgres");
  s.execute(
      "CREATE TABLE protected_rows (col_to_leak int, owner_name text);"
      "INSERT INTO protected_rows VALUES (11,'alice'),(22,'mallory'),"
      "(33,'alice');"
      "GRANT SELECT ON protected_rows TO mallory;"
      "ALTER TABLE protected_rows ENABLE ROW LEVEL SECURITY;"
      "CREATE POLICY own ON protected_rows USING (owner_name = current_user);");
}
}  // namespace

ScenarioResult run_cve_2019_10130() {
  ScenarioResult result;
  result.id = "CVE-2019-10130";
  result.microservice = "PostgreSQL within GitLab";
  result.exploit = "Improper access control";
  result.cwe = "284";
  result.owasp = "1";
  result.diversity = "Version number";

  // ---- Control: unprotected 10.7. ----
  {
    TestBed bed;
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("10.7"));
    load_gitlab_rls_table(*db);
    sqldb::SqlServer::Options so;
    so.address = "pg:5432";
    sqldb::SqlServer server(bed.net, bed.host, db, so);
    sqldb::PgClient attacker(bed.net, "attacker", "pg:5432", "mallory");
    std::vector<std::string> notices;
    for (const char* sql :
         {kRlsLeakFunctionSql, kRlsLeakOperatorSql, kRlsLeakSelectSql}) {
      attacker.query(sql, [&](sqldb::QueryOutcome out) {
        for (auto& n : out.notices) notices.push_back(std::move(n));
      });
    }
    bed.simulator.run_until_idle();
    for (const auto& n : notices)
      if (n.find("leak 11") != std::string::npos)
        result.exploit_works_unprotected = true;
  }

  // ---- Protected GitLab deployment: 10.7 pair + 10.9 behind RDDR. ----
  TestBed bed;
  std::vector<std::shared_ptr<sqldb::Database>> dbs = {
      std::make_shared<sqldb::Database>(sqldb::minipg_info("10.7")),
      std::make_shared<sqldb::Database>(sqldb::minipg_info("10.7")),
      std::make_shared<sqldb::Database>(sqldb::minipg_info("10.9")),
  };
  std::vector<std::unique_ptr<sqldb::SqlServer>> servers;
  for (size_t i = 0; i < dbs.size(); ++i) {
    load_gitlab_rls_table(*dbs[i]);
    sqldb::SqlServer::Options so;
    so.address = strformat("gitlab-pg-%zu:5432", i);
    so.rng_seed = 300 + i;
    servers.push_back(
        std::make_unique<sqldb::SqlServer>(bed.net, bed.host, dbs[i], so));
  }

  IncomingProxy::Config cfg;
  cfg.listen_address = "gitlab-db:5432";
  cfg.instance_addresses = {"gitlab-pg-0:5432", "gitlab-pg-1:5432",
                            "gitlab-pg-2:5432"};
  cfg.plugin = std::make_shared<PgPlugin>();
  cfg.filter_pair = true;
  DivergenceBus bus(bed.simulator);
  IncomingProxy proxy(bed.net, bed.host, cfg, &bus);

  services::GitlabApp::Options gopts;
  gopts.db_address = "gitlab-db:5432";
  services::GitlabApp gitlab(bed.net, bed.host, gopts);

  // Benign traffic through the whole stack: ingress -> workhorse -> puma
  // -> RDDR -> 3x minipg; plus sidekiq background jobs.
  auto projects = do_get(bed, "gitlab:80", "/projects");
  auto created = do_post(bed, "gitlab:80", "/projects/create", "name=newrepo",
                         "application/x-www-form-urlencoded");
  bed.simulator.run_until(bed.simulator.now() + 3 * sim::kSecond);
  gitlab.stop_sidekiq();
  bed.simulator.run_until_idle();
  result.benign_ok = projects.status == 200 &&
                     projects.response.body.find("kernel") != Bytes::npos &&
                     created.status == 201 && gitlab.sidekiq_jobs_run() >= 3 &&
                     gitlab.sidekiq_job_failures() == 0 && bus.count() == 0;

  // Exploit from a "neighbouring container" straight at the database.
  std::vector<std::string> client_notices;
  auto s1 = do_query(bed, "gitlab-db:5432", "mallory", kRlsLeakFunctionSql);
  auto s2 = do_query(bed, "gitlab-db:5432", "mallory", kRlsLeakOperatorSql);
  auto s3 = do_query(bed, "gitlab-db:5432", "mallory", kRlsLeakSelectSql);
  for (auto* out : {&s1, &s2, &s3})
    for (auto& n : out->notices) client_notices.push_back(std::move(n));
  result.exploit_blocked =
      !s1.failed() && !s2.failed() && s3.connection_lost && bus.count() >= 1;
  for (const auto& n : client_notices)
    if (n.find("leak 11") != std::string::npos ||
        n.find("leak 33") != std::string::npos)
      result.leak_reached_client = true;

  // GitLab keeps working after the intervention.
  auto after = do_get(bed, "gitlab:80", "/projects");
  result.benign_ok = result.benign_ok && after.status == 200;
  if (!bus.events().empty()) result.detail = bus.events().back().reason;
  return result;
}

// =====================================================================
// §V-C1 / Table I row 4: CVE-2019-18277 (request smuggling)
// =====================================================================

namespace {
constexpr char kSmugglePayload[] =
    "POST / HTTP/1.1\r\n"
    "Host: edge\r\n"
    "Content-Length: 38\r\n"
    "Transfer-Encoding: \x0b"
    "chunked\r\n"
    "\r\n"
    "0\r\n\r\nGET /admin HTTP/1.1\r\nHost: s1\r\n\r\n";
}  // namespace

ScenarioResult run_cve_2019_18277() {
  ScenarioResult result;
  result.id = "CVE-2019-18277";
  result.microservice = "HAProxy (hap reverse proxy)";
  result.exploit = "HTTP Request Smuggling";
  result.cwe = "444";
  result.owasp = "4";
  result.diversity = "Multi-program";

  // ---- Control: hap alone in front of S1. ----
  {
    TestBed bed;
    services::SimpleApiService::Options api;
    api.address = "s1:80";
    services::SimpleApiService s1(bed.net, bed.host, api);
    services::ReverseProxy::Options po;
    po.address = "edge:80";
    po.backend_address = "s1:80";
    po.flavor = services::ReverseProxy::Flavor::kHap153;
    po.instance_name = "hap";
    services::ReverseProxy hap(bed.net, bed.host, po);
    auto r = do_raw(bed, "edge:80",
                    ByteView(kSmugglePayload, sizeof(kSmugglePayload) - 1));
    if (r.data.find("SECRET-ADMIN-TOKEN") != Bytes::npos &&
        s1.admin_hits() > 0)
      result.exploit_works_unprotected = true;
  }

  // ---- Protected: hap + ngx behind RDDR, S1 behind the outgoing proxy. ----
  TestBed bed;
  services::SimpleApiService::Options api;
  api.address = "s1-real:80";
  services::SimpleApiService s1(bed.net, bed.host, api);

  services::ReverseProxy::Options hap_o;
  hap_o.address = "proxy-0:80";
  hap_o.backend_address = "s1:80";  // the outgoing proxy
  hap_o.flavor = services::ReverseProxy::Flavor::kHap153;
  hap_o.instance_name = "hap";
  services::ReverseProxy hap(bed.net, bed.host, hap_o);

  services::ReverseProxy::Options ngx_o;
  ngx_o.address = "proxy-1:80";
  ngx_o.backend_address = "s1:80";
  ngx_o.flavor = services::ReverseProxy::Flavor::kNgx;
  ngx_o.instance_name = "ngx";
  services::ReverseProxy ngx(bed.net, bed.host, ngx_o);

  core::NVersionDeployment::Options dep;
  dep.incoming.listen_address = "edge:80";
  dep.incoming.instance_addresses = {"proxy-0:80", "proxy-1:80"};
  dep.incoming.plugin = std::make_shared<HttpPlugin>();
  OutgoingProxy::Config out_cfg;
  out_cfg.listen_address = "s1:80";
  out_cfg.backend_address = "s1-real:80";
  out_cfg.group_size = 2;
  out_cfg.plugin = std::make_shared<HttpPlugin>();
  out_cfg.group_window = 50 * sim::kMillisecond;
  dep.outgoing.push_back(out_cfg);
  core::NVersionDeployment rddr(bed.net, bed.host, dep);

  // Benign request flows through both proxies and the merge.
  auto benign = do_get(bed, "edge:80", "/api/echo");
  result.benign_ok = benign.status == 200 &&
                     benign.response.body.find("public ok") != Bytes::npos &&
                     rddr.divergences() == 0;

  // Exploit.
  auto attack = do_raw(bed, "edge:80",
                       ByteView(kSmugglePayload, sizeof(kSmugglePayload) - 1));
  result.exploit_blocked = rddr.divergences() > 0 && s1.admin_hits() == 0;
  if (attack.data.find("SECRET-ADMIN-TOKEN") != Bytes::npos)
    result.leak_reached_client = true;
  if (!rddr.bus().events().empty())
    result.detail = rddr.bus().events().back().reason;
  return result;
}

// =====================================================================
// §V-B / Table I row 9: DVWA SQL injection
// =====================================================================

namespace {
void load_dvwa_db(sqldb::Database& db) {
  sqldb::Session s(db, "postgres");
  s.execute(
      "CREATE TABLE users (user_id text, first_name text, last_name text);"
      "INSERT INTO users VALUES ('1','Alice','Liddell'),"
      "('2','Bob','Builder'),('3','Charlie','Chaplin');"
      "GRANT SELECT ON users TO dvwa;");
}
}  // namespace

ScenarioResult run_dvwa_sqli() {
  ScenarioResult result;
  result.id = "DVWA SQLi";
  result.microservice = "DVWA frontend";
  result.exploit = "SQL injection";
  result.cwe = "89";
  result.owasp = "3";
  result.diversity = "Multi-programming";

  const std::string inject = "' OR '1'='1";

  // ---- Control: single low-security DVWA straight at the DB. ----
  {
    TestBed bed;
    auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
    load_dvwa_db(*db);
    sqldb::SqlServer::Options so;
    so.address = "db:5432";
    sqldb::SqlServer server(bed.net, bed.host, db, so);
    services::DvwaApp::Options o;
    o.address = "dvwa:80";
    o.db_address = "db:5432";
    o.security = services::DvwaApp::Security::kLow;
    services::DvwaApp app(bed.net, bed.host, o);
    auto page = do_get(bed, "dvwa:80", "/vulnerabilities/sqli");
    std::string token = extract_user_token(page.response.body);
    auto r = do_post(bed, "dvwa:80", "/vulnerabilities/sqli",
                     "id=" + url_encode(inject) + "&user_token=" + token +
                         "&Submit=Submit",
                     "application/x-www-form-urlencoded");
    // The injection dumps every user, not just one.
    if (r.response.body.find("Bob") != Bytes::npos &&
        r.response.body.find("Charlie") != Bytes::npos)
      result.exploit_works_unprotected = true;
  }

  // ---- Protected: low/low filter pair + high, external DB. ----
  TestBed bed;
  auto db = std::make_shared<sqldb::Database>(sqldb::minipg_info("13.0"));
  load_dvwa_db(*db);
  sqldb::SqlServer::Options so;
  so.address = "dvwa-db:5432";
  sqldb::SqlServer server(bed.net, bed.host, db, so);

  std::vector<std::unique_ptr<services::DvwaApp>> apps;
  const services::DvwaApp::Security levels[] = {
      services::DvwaApp::Security::kLow, services::DvwaApp::Security::kLow,
      services::DvwaApp::Security::kHigh};
  for (int i = 0; i < 3; ++i) {
    services::DvwaApp::Options o;
    o.address = strformat("dvwa-%d:80", i);
    o.db_address = "dvwa-dbvirt:5432";  // the outgoing proxy
    o.security = levels[i];
    o.rng_seed = 40 + static_cast<uint64_t>(i);
    o.instance_name = strformat("dvwa-%d", i);
    apps.push_back(std::make_unique<services::DvwaApp>(bed.net, bed.host, o));
  }

  core::NVersionDeployment::Options dep;
  dep.incoming.listen_address = "dvwa:80";
  dep.incoming.instance_addresses = {"dvwa-0:80", "dvwa-1:80", "dvwa-2:80"};
  dep.incoming.plugin = std::make_shared<HttpPlugin>();
  dep.incoming.filter_pair = true;
  OutgoingProxy::Config out_cfg;
  out_cfg.listen_address = "dvwa-dbvirt:5432";
  out_cfg.backend_address = "dvwa-db:5432";
  out_cfg.group_size = 3;
  out_cfg.plugin = std::make_shared<PgPlugin>();
  out_cfg.filter_pair = true;
  out_cfg.instance_sources = {"dvwa-0", "dvwa-1", "dvwa-2"};
  dep.outgoing.push_back(out_cfg);
  core::NVersionDeployment rddr(bed.net, bed.host, dep);

  // Benign flow: fetch the form (CSRF token!) and look up user 1.
  auto page = do_get(bed, "dvwa:80", "/vulnerabilities/sqli");
  std::string token = extract_user_token(page.response.body);
  auto benign = do_post(bed, "dvwa:80", "/vulnerabilities/sqli",
                        "id=1&user_token=" + token + "&Submit=Submit",
                        "application/x-www-form-urlencoded");
  bool csrf_ok = true;
  for (const auto& app : apps)
    if (app->token_failures() != 0) csrf_ok = false;
  result.benign_ok = page.status == 200 && !token.empty() &&
                     benign.status == 200 &&
                     benign.response.body.find("Alice") != Bytes::npos &&
                     benign.response.body.find("Bob") == Bytes::npos &&
                     csrf_ok && rddr.divergences() == 0;

  // Exploit: fresh form, injected id.
  auto page2 = do_get(bed, "dvwa:80", "/vulnerabilities/sqli");
  std::string token2 = extract_user_token(page2.response.body);
  auto attack = do_post(bed, "dvwa:80", "/vulnerabilities/sqli",
                        "id=" + url_encode(inject) + "&user_token=" + token2 +
                            "&Submit=Submit",
                        "application/x-www-form-urlencoded");
  result.exploit_blocked = rddr.divergences() > 0 && attack.status != 200;
  if (attack.response.body.find("Bob") != Bytes::npos ||
      attack.response.body.find("Charlie") != Bytes::npos)
    result.leak_reached_client = true;
  if (!rddr.bus().events().empty())
    result.detail = rddr.bus().events().front().reason;
  return result;
}

// =====================================================================
// §V-E / Table I row 10: ASLR pointer-leak POC
// =====================================================================

ScenarioResult run_aslr_poc() {
  ScenarioResult result;
  result.id = "ASLR POC";
  result.microservice = "C echo server";
  result.exploit = "Heap overflow";
  result.cwe = "122";
  result.owasp = "N/A";
  result.diversity = "Random memory layout";

  const Bytes overflow = Bytes(80, 'A') + "\n";

  // ---- Control: a single instance leaks its pointer. ----
  uint64_t leaked_ptr = 0;
  {
    TestBed bed;
    services::EchoVulnServer::Options o;
    o.address = "echo:7";
    o.rng_seed = 1;
    services::EchoVulnServer echo(bed.net, bed.host, o);
    leaked_ptr = echo.leaked_pointer();
    auto r = do_raw(bed, "echo:7", overflow);
    std::string ptr_hex = strformat(
        "%016llx", static_cast<unsigned long long>(leaked_ptr));
    if (r.data.find(ptr_hex) != Bytes::npos)
      result.exploit_works_unprotected = true;
  }

  // ---- Protected: two ASLR instances behind RDDR. ----
  TestBed bed;
  services::EchoVulnServer::Options o0, o1;
  o0.address = "echo-0:7";
  o0.rng_seed = 1;
  o1.address = "echo-1:7";
  o1.rng_seed = 2;
  services::EchoVulnServer e0(bed.net, bed.host, o0);
  services::EchoVulnServer e1(bed.net, bed.host, o1);

  IncomingProxy::Config cfg;
  cfg.listen_address = "echo:7";
  cfg.instance_addresses = {"echo-0:7", "echo-1:7"};
  cfg.plugin = std::make_shared<TcpLinePlugin>();
  DivergenceBus bus(bed.simulator);
  IncomingProxy proxy(bed.net, bed.host, cfg, &bus);

  auto benign = do_raw(bed, "echo:7", "hello rddr\n");
  result.benign_ok = benign.data == "hello rddr\n" && bus.count() == 0;

  auto attack = do_raw(bed, "echo:7", overflow);
  result.exploit_blocked = bus.count() > 0;
  std::string p0 = strformat("%016llx",
                             static_cast<unsigned long long>(e0.leaked_pointer()));
  std::string p1 = strformat("%016llx",
                             static_cast<unsigned long long>(e1.leaked_pointer()));
  if (attack.data.find(p0) != Bytes::npos ||
      attack.data.find(p1) != Bytes::npos)
    result.leak_reached_client = true;
  if (!bus.events().empty()) result.detail = bus.events().back().reason;

  // Ablation note: without ASLR both instances leak the same pointer and
  // RDDR cannot see the exploit — the diversity IS the defence.
  {
    TestBed bed2;
    services::EchoVulnServer::Options n0, n1;
    n0.address = "echo-0:7";
    n0.aslr = false;
    n1.address = "echo-1:7";
    n1.aslr = false;
    services::EchoVulnServer f0(bed2.net, bed2.host, n0);
    services::EchoVulnServer f1(bed2.net, bed2.host, n1);
    IncomingProxy::Config c2 = cfg;
    DivergenceBus bus2(bed2.simulator);
    IncomingProxy proxy2(bed2.net, bed2.host, c2, &bus2);
    do_raw(bed2, "echo:7", overflow);
    if (bus2.count() == 0)
      result.detail += " | without ASLR the leak is identical and undetected";
  }
  return result;
}

std::vector<ScenarioResult> run_all_table1() {
  return {
      run_cve_2017_7484(),  run_cve_2017_7529(),  run_cve_2019_10130(),
      run_cve_2019_18277(), run_cve_2014_3146(),  run_cve_2020_10799(),
      run_cve_2020_13757(), run_cve_2020_11888(), run_dvwa_sqli(),
      run_aslr_poc(),
  };
}

}  // namespace rddr::workloads
