#include "workloads/driver.h"

#include <memory>
#include <vector>

#include "common/strutil.h"
#include "sqldb/client.h"

namespace rddr::workloads {

namespace {

struct PoolState {
  sim::Simulator& sim;
  const ClientPoolOptions& options;
  PoolResult result;
  sim::Time first_send = -1;
  sim::Time last_done = 0;
  int clients_remaining = 0;
  obs::Counter* tx_ok = nullptr;
  obs::Counter* tx_failed = nullptr;
  obs::Histogram* latency_hist = nullptr;
};

struct ClientState {
  std::unique_ptr<sqldb::PgClient> client;
  Rng rng{0};
  int done = 0;
};

void issue_next(const std::shared_ptr<PoolState>& pool,
                const std::shared_ptr<ClientState>& c, int client_id) {
  if (c->done >= pool->options.transactions_per_client) {
    c->client->close();
    --pool->clients_remaining;
    return;
  }
  std::string sql = pool->options.next_query(c->rng, client_id, c->done);
  sim::Time t0 = pool->sim.now();
  if (pool->first_send < 0) pool->first_send = t0;
  c->client->query(sql, [pool, c, client_id, t0](sqldb::QueryOutcome out) {
    sim::Time t1 = pool->sim.now();
    if (out.failed()) {
      ++pool->result.failed;
      if (pool->tx_failed) pool->tx_failed->inc();
    } else {
      ++pool->result.completed;
      double ms = static_cast<double>(t1 - t0) / 1e6;
      pool->result.latency_ms.add(ms);
      if (pool->tx_ok) pool->tx_ok->inc();
      if (pool->latency_hist) pool->latency_hist->observe(ms);
      if (pool->options.on_tx_complete)
        pool->options.on_tx_complete(client_id, c->done, ms);
    }
    pool->last_done = std::max(pool->last_done, t1);
    ++c->done;
    if (out.connection_lost) {
      // Connection gone (e.g. RDDR intervened): count the rest as failed.
      uint64_t rest = static_cast<uint64_t>(
          pool->options.transactions_per_client - c->done);
      pool->result.failed += rest;
      if (pool->tx_failed) pool->tx_failed->inc(rest);
      --pool->clients_remaining;
      return;
    }
    issue_next(pool, c, client_id);
  });
}

}  // namespace

PoolResult run_client_pool(sim::Simulator& sim, sim::Network& net,
                           const ClientPoolOptions& options) {
  auto pool = std::make_shared<PoolState>(PoolState{sim, options, {}, -1, 0});
  if (options.metrics) {
    const std::string& p = options.metrics_prefix;
    pool->tx_ok = options.metrics->counter(p + ".tx_ok");
    pool->tx_failed = options.metrics->counter(p + ".tx_failed");
    pool->latency_hist = options.metrics->histogram(p + ".latency_ms");
  }
  std::vector<std::shared_ptr<ClientState>> clients;
  Rng seeder(options.seed);
  for (int i = 0; i < options.clients; ++i) {
    auto c = std::make_shared<ClientState>();
    c->rng = seeder.fork(static_cast<uint64_t>(i) + 1);
    sim::ConnectMeta meta;
    meta.source = strformat("bench-client-%d", i);
    if (options.tracer) {
      // One trace per client connection; everything the servers/proxies
      // record for this client's requests hangs off this id.
      meta.flow.trace_id = options.tracer->new_trace();
    }
    c->client = std::make_unique<sqldb::PgClient>(net, options.address,
                                                  options.user, meta);
    clients.push_back(c);
  }
  pool->clients_remaining = options.clients;
  for (int i = 0; i < options.clients; ++i)
    issue_next(pool, clients[static_cast<size_t>(i)], i);
  // Run until every client finished — NOT until idle: recurring events
  // (host samplers, background jobs) may keep the queue non-empty forever.
  while (pool->clients_remaining > 0 && sim.step()) {
  }
  pool->result.elapsed =
      pool->first_send >= 0 ? pool->last_done - pool->first_send : 0;
  if (options.metrics) {
    // Publish the EXACT aggregates of this run (same doubles PoolResult
    // reports), so registry consumers print identical numbers.
    const std::string& p = options.metrics_prefix;
    const PoolResult& r = pool->result;
    options.metrics->gauge(p + ".tps")->set(r.throughput_tps());
    options.metrics->gauge(p + ".latency_mean_ms")->set(r.latency_ms.mean());
    options.metrics->gauge(p + ".latency_p50_ms")
        ->set(r.latency_ms.percentile(50));
    options.metrics->gauge(p + ".elapsed_s")
        ->set(static_cast<double>(r.elapsed) / 1e9);
  }
  return pool->result;
}

// ---- open loop ----

namespace {

struct OpenLoopState {
  sim::Simulator& sim;
  sim::Network& net;
  const OpenLoopOptions& options;
  OpenLoopResult result;
  sim::Time first_send = -1;
  sim::Time last_done = 0;
  int scheduled = 0;    // arrivals generated so far
  int outstanding = 0;  // requests in flight
  Rng rng{0};
  /// Keeps each arrival's client alive until its outcome lands.
  std::map<int, std::unique_ptr<sqldb::PgClient>> clients;
  obs::Counter* ok = nullptr;
  obs::Counter* rejected = nullptr;
  obs::Histogram* latency_hist = nullptr;
};

void open_loop_arrival(const std::shared_ptr<OpenLoopState>& st) {
  int idx = st->scheduled++;
  ++st->result.offered;
  ++st->outstanding;
  sim::ConnectMeta meta;
  meta.source = strformat("%s-%d", st->options.source_prefix.c_str(), idx);
  if (st->options.tracer) meta.flow.trace_id = st->options.tracer->new_trace();
  auto client = std::make_unique<sqldb::PgClient>(
      st->net, st->options.address, st->options.user, meta);
  auto* raw = client.get();
  st->clients.emplace(idx, std::move(client));
  std::string sql = st->options.next_query
                        ? st->options.next_query(st->rng, idx)
                        : "SELECT 1;";
  sim::Time t0 = st->sim.now();
  if (st->first_send < 0) st->first_send = t0;
  raw->query(sql, [st, idx, t0](sqldb::QueryOutcome out) {
    sim::Time t1 = st->sim.now();
    double ms = static_cast<double>(t1 - t0) / 1e6;
    if (out.failed()) {
      ++st->result.rejected;
      st->result.rejection_ms.add(ms);
      if (st->rejected) st->rejected->inc();
    } else {
      ++st->result.completed;
      st->result.latency_ms.add(ms);
      if (st->ok) st->ok->inc();
      if (st->latency_hist) st->latency_hist->observe(ms);
    }
    st->last_done = std::max(st->last_done, t1);
    --st->outstanding;
    // Close + free the client on a fresh event: the outcome callback runs
    // inside the client's own data/close handler.
    st->sim.schedule(0, [st, idx] {
      auto it = st->clients.find(idx);
      if (it == st->clients.end()) return;
      it->second->close();
      st->clients.erase(it);
    });
  });
}

}  // namespace

OpenLoopResult run_open_loop(sim::Simulator& sim, sim::Network& net,
                             const OpenLoopOptions& options) {
  auto st =
      std::make_shared<OpenLoopState>(OpenLoopState{sim, net, options, {}});
  st->rng = Rng(options.seed);
  if (options.metrics) {
    const std::string& p = options.metrics_prefix;
    st->ok = options.metrics->counter(p + ".ok");
    st->rejected = options.metrics->counter(p + ".rejected");
    st->latency_hist = options.metrics->histogram(p + ".latency_ms");
  }
  // Self-scheduling arrival chain: each arrival schedules the next after a
  // seeded exponential gap, independent of service completions (open loop).
  auto fire = std::make_shared<std::function<void()>>();
  *fire = [st, fire] {
    open_loop_arrival(st);
    if (st->scheduled >= st->options.requests) return;
    double gap_s = st->rng.exponential(1.0 / st->options.rate_per_s);
    auto gap = static_cast<sim::Time>(gap_s * 1e9);
    st->sim.schedule(gap > 0 ? gap : 1, [fire] { (*fire)(); });
  };
  if (options.requests > 0) (*fire)();
  while ((st->outstanding > 0 || st->scheduled < options.requests) &&
         sim.step()) {
  }
  st->result.elapsed =
      st->first_send >= 0 ? st->last_done - st->first_send : 0;
  if (options.metrics) {
    const std::string& p = options.metrics_prefix;
    const OpenLoopResult& r = st->result;
    options.metrics->gauge(p + ".goodput_tps")->set(r.goodput_tps());
    options.metrics->gauge(p + ".latency_p50_ms")
        ->set(r.latency_ms.percentile(50));
    options.metrics->gauge(p + ".rejection_p50_ms")
        ->set(r.rejection_ms.percentile(50));
    options.metrics->gauge(p + ".elapsed_s")
        ->set(static_cast<double>(r.elapsed) / 1e9);
  }
  return st->result;
}

}  // namespace rddr::workloads
