#include "workloads/driver.h"

#include <memory>
#include <vector>

#include "common/strutil.h"
#include "sqldb/client.h"

namespace rddr::workloads {

namespace {

struct PoolState {
  sim::Simulator& sim;
  const ClientPoolOptions& options;
  PoolResult result;
  sim::Time first_send = -1;
  sim::Time last_done = 0;
  int clients_remaining = 0;
  obs::Counter* tx_ok = nullptr;
  obs::Counter* tx_failed = nullptr;
  obs::Histogram* latency_hist = nullptr;
};

struct ClientState {
  std::unique_ptr<sqldb::PgClient> client;
  Rng rng{0};
  int done = 0;
};

void issue_next(const std::shared_ptr<PoolState>& pool,
                const std::shared_ptr<ClientState>& c, int client_id) {
  if (c->done >= pool->options.transactions_per_client) {
    c->client->close();
    --pool->clients_remaining;
    return;
  }
  std::string sql = pool->options.next_query(c->rng, client_id, c->done);
  sim::Time t0 = pool->sim.now();
  if (pool->first_send < 0) pool->first_send = t0;
  c->client->query(sql, [pool, c, client_id, t0](sqldb::QueryOutcome out) {
    sim::Time t1 = pool->sim.now();
    if (out.failed()) {
      ++pool->result.failed;
      if (pool->tx_failed) pool->tx_failed->inc();
    } else {
      ++pool->result.completed;
      double ms = static_cast<double>(t1 - t0) / 1e6;
      pool->result.latency_ms.add(ms);
      if (pool->tx_ok) pool->tx_ok->inc();
      if (pool->latency_hist) pool->latency_hist->observe(ms);
      if (pool->options.on_tx_complete)
        pool->options.on_tx_complete(client_id, c->done, ms);
    }
    pool->last_done = std::max(pool->last_done, t1);
    ++c->done;
    if (out.connection_lost) {
      // Connection gone (e.g. RDDR intervened): count the rest as failed.
      uint64_t rest = static_cast<uint64_t>(
          pool->options.transactions_per_client - c->done);
      pool->result.failed += rest;
      if (pool->tx_failed) pool->tx_failed->inc(rest);
      --pool->clients_remaining;
      return;
    }
    issue_next(pool, c, client_id);
  });
}

}  // namespace

PoolResult run_client_pool(sim::Simulator& sim, sim::Network& net,
                           const ClientPoolOptions& options) {
  auto pool = std::make_shared<PoolState>(PoolState{sim, options, {}, -1, 0});
  if (options.metrics) {
    const std::string& p = options.metrics_prefix;
    pool->tx_ok = options.metrics->counter(p + ".tx_ok");
    pool->tx_failed = options.metrics->counter(p + ".tx_failed");
    pool->latency_hist = options.metrics->histogram(p + ".latency_ms");
  }
  std::vector<std::shared_ptr<ClientState>> clients;
  Rng seeder(options.seed);
  for (int i = 0; i < options.clients; ++i) {
    auto c = std::make_shared<ClientState>();
    c->rng = seeder.fork(static_cast<uint64_t>(i) + 1);
    sim::ConnectMeta meta;
    meta.source = strformat("bench-client-%d", i);
    if (options.tracer) {
      // One trace per client connection; everything the servers/proxies
      // record for this client's requests hangs off this id.
      meta.trace_id = options.tracer->new_trace();
    }
    c->client = std::make_unique<sqldb::PgClient>(net, options.address,
                                                  options.user, meta);
    clients.push_back(c);
  }
  pool->clients_remaining = options.clients;
  for (int i = 0; i < options.clients; ++i)
    issue_next(pool, clients[static_cast<size_t>(i)], i);
  // Run until every client finished — NOT until idle: recurring events
  // (host samplers, background jobs) may keep the queue non-empty forever.
  while (pool->clients_remaining > 0 && sim.step()) {
  }
  pool->result.elapsed =
      pool->first_send >= 0 ? pool->last_done - pool->first_send : 0;
  if (options.metrics) {
    // Publish the EXACT aggregates of this run (same doubles PoolResult
    // reports), so registry consumers print identical numbers.
    const std::string& p = options.metrics_prefix;
    const PoolResult& r = pool->result;
    options.metrics->gauge(p + ".tps")->set(r.throughput_tps());
    options.metrics->gauge(p + ".latency_mean_ms")->set(r.latency_ms.mean());
    options.metrics->gauge(p + ".latency_p50_ms")
        ->set(r.latency_ms.percentile(50));
    options.metrics->gauge(p + ".elapsed_s")
        ->set(static_cast<double>(r.elapsed) / 1e9);
  }
  return pool->result;
}

}  // namespace rddr::workloads
