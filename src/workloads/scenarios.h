// Table I scenarios: one self-contained deployment + exploit per row of
// the paper's evaluation (§V-A..§V-F). Shared by the integration tests,
// the table1 bench binary, and the examples.
//
// Every scenario:
//   1. builds the N-versioned deployment behind RDDR on a fresh simulator,
//   2. sends benign traffic and verifies it passes unmodified,
//   3. runs the CVE's exploit and verifies RDDR intervenes before the
//      leaked data reaches the client,
//   4. (where cheap) re-runs the exploit against a single unprotected
//      vulnerable instance to prove the exploit actually works.
#pragma once

#include <string>
#include <vector>

namespace rddr::workloads {

struct ScenarioResult {
  std::string id;            // "CVE-2017-7484", "DVWA SQLi", ...
  std::string microservice;  // protected component
  std::string exploit;       // one-line description
  std::string cwe;
  std::string owasp;         // OWASP Top-10 bucket ("1".."5" or "N/A")
  std::string diversity;     // diversity source (Table I last column)

  bool benign_ok = false;         // benign traffic unaffected by RDDR
  bool exploit_blocked = false;   // RDDR intervened
  bool leak_reached_client = false;  // leaked bytes observed client-side
  bool exploit_works_unprotected = false;  // control run without RDDR
  std::string detail;             // divergence reason / notes

  bool mitigated() const { return exploit_blocked && !leak_reached_client; }
};

// §V-C2: information leak during query planning (minipg pair + roachdb).
ScenarioResult run_cve_2017_7484();
// §V-D: nginx range integer overflow (wsgx 1.13.2 pair + 1.13.4).
ScenarioResult run_cve_2017_7529();
// §V-F: RLS bypass inside the GitLab composite (minipg 10.7 pair + 10.9).
ScenarioResult run_cve_2019_10130();
// §V-C1: HAProxy request smuggling (hap 1.5.3 + ngx).
ScenarioResult run_cve_2019_18277();
// §V-A: XSS via lax sanitizer (lxmllite + sanihtml).
ScenarioResult run_cve_2014_3146();
// §V-A: XXE in svg conversion (svglite + cairolite).
ScenarioResult run_cve_2020_10799();
// §V-A: risky-crypto padding acceptance (rsalite + cryptolite).
ScenarioResult run_cve_2020_13757();
// §V-A: XSS via markdown renderer (mdtwo + mdone).
ScenarioResult run_cve_2020_11888();
// §V-B: DVWA SQL injection through the outgoing proxy (+ CSRF handling).
ScenarioResult run_dvwa_sqli();
// §V-E: ASLR pointer leak POC.
ScenarioResult run_aslr_poc();

/// All ten rows, in Table I order.
std::vector<ScenarioResult> run_all_table1();

}  // namespace rddr::workloads
