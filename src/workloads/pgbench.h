// pgbench-lite: accounts schema + SELECT-only transaction mix (Fig 5/6).
//
// Mirrors pgbench's -S mode, which is what the paper drives RDDR with:
// each transaction is `SELECT abalance FROM pgbench_accounts WHERE aid =
// :aid` against a scale-factor-sized accounts table with a primary-key
// index.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "sqldb/engine.h"

namespace rddr::workloads {

/// Loads pgbench tables. `accounts` is the row count of pgbench_accounts
/// (pgbench scale factor 1 == 100'000 accounts; we default far smaller and
/// model the working-set cost through the server's CPU parameters).
void load_pgbench(sqldb::Database& db, int accounts, uint64_t seed);

/// One SELECT-only transaction (uniformly random aid), like pgbench -S.
std::string pgbench_select_tx(Rng& rng, int accounts);

}  // namespace rddr::workloads
