// Closed-loop SQL client pool: N concurrent clients, each issuing
// `transactions` queries back to back. The measurement harness behind the
// Fig 4/5/6 benches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rddr::workloads {

struct ClientPoolOptions {
  std::string address;
  std::string user = "postgres";
  int clients = 1;
  int transactions_per_client = 100;
  /// Produces the next SQL text for a client (called per transaction).
  std::function<std::string(Rng&, int client_id, int tx_index)> next_query;
  /// Optional per-transaction completion hook (Fig 4 tracks latency per
  /// query index).
  std::function<void(int client_id, int tx_index, double latency_ms)>
      on_tx_complete;
  uint64_t seed = 1;
  /// Optional registry: the pool publishes "<prefix>.tx_ok"/".tx_failed"
  /// counters, a "<prefix>.latency_ms" histogram, and — at completion —
  /// gauges holding the exact PoolResult aggregates ("<prefix>.tps",
  /// ".latency_mean_ms", ".latency_p50_ms", ".elapsed_s"), so figure
  /// drivers can read the registry instead of re-deriving numbers.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "pool";
  /// Optional tracer: each client connection becomes one trace whose id is
  /// carried to the server/proxy via ConnectMeta, linking the pool's
  /// requests to "session" and "db.query" spans downstream.
  obs::Tracer* tracer = nullptr;
};

struct PoolResult {
  uint64_t completed = 0;
  uint64_t failed = 0;
  SampleStats latency_ms;       // per-transaction latency
  sim::Time elapsed = 0;        // first send -> last completion

  double throughput_tps() const {
    return elapsed > 0 ? static_cast<double>(completed) /
                             (static_cast<double>(elapsed) / 1e9)
                       : 0.0;
  }
};

/// Runs the pool to completion on the given simulator (drains all events).
PoolResult run_client_pool(sim::Simulator& sim, sim::Network& net,
                           const ClientPoolOptions& options);

/// Open-loop Poisson driver: arrivals follow a seeded exponential
/// inter-arrival process at `rate_per_s`, each arrival opening a fresh
/// connection and issuing one query — arrivals do NOT wait for previous
/// requests, so offered load stays fixed as the system saturates. This is
/// the right harness for the overload experiments (fig5_scaleout): a
/// closed-loop pool self-throttles and can never drive a server past its
/// capacity, hiding exactly the regime admission control exists for.
struct OpenLoopOptions {
  std::string address;
  std::string user = "postgres";
  /// Mean arrival rate (requests/second of virtual time).
  double rate_per_s = 1000;
  /// Total arrivals to generate.
  int requests = 1000;
  /// SQL for arrival `req_index` (called once per arrival).
  std::function<std::string(Rng&, int req_index)> next_query;
  uint64_t seed = 1;
  /// ConnectMeta::source per arrival: "<source_prefix>-<req_index>".
  /// Distinct sources spread sessions across a Frontier's shards.
  std::string source_prefix = "open-client";
  /// Optional registry: publishes "<prefix>.ok"/".rejected" counters and a
  /// "<prefix>.latency_ms" histogram live, plus exact-aggregate gauges at
  /// completion (".goodput_tps", ".latency_p50_ms", ".rejection_p50_ms",
  /// ".elapsed_s").
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "openloop";
  obs::Tracer* tracer = nullptr;
};

struct OpenLoopResult {
  uint64_t offered = 0;    // arrivals generated
  uint64_t completed = 0;  // queries answered successfully
  /// Arrivals that got an error or lost the connection before an answer —
  /// shed by the front tier, refused at the accept queue, or failed by the
  /// pool. A fast rejection is the design goal; `rejection_ms` measures it.
  uint64_t rejected = 0;
  SampleStats latency_ms;    // successful requests, send -> answer
  SampleStats rejection_ms;  // rejected requests, send -> rejection
  sim::Time elapsed = 0;     // first arrival -> last outcome

  double goodput_tps() const {
    return elapsed > 0 ? static_cast<double>(completed) /
                             (static_cast<double>(elapsed) / 1e9)
                       : 0.0;
  }
};

/// Runs all arrivals and waits for every outstanding request to resolve.
OpenLoopResult run_open_loop(sim::Simulator& sim, sim::Network& net,
                             const OpenLoopOptions& options);

}  // namespace rddr::workloads
