// Closed-loop SQL client pool: N concurrent clients, each issuing
// `transactions` queries back to back. The measurement harness behind the
// Fig 4/5/6 benches.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "common/rng.h"
#include "common/stats.h"
#include "netsim/network.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace rddr::workloads {

struct ClientPoolOptions {
  std::string address;
  std::string user = "postgres";
  int clients = 1;
  int transactions_per_client = 100;
  /// Produces the next SQL text for a client (called per transaction).
  std::function<std::string(Rng&, int client_id, int tx_index)> next_query;
  /// Optional per-transaction completion hook (Fig 4 tracks latency per
  /// query index).
  std::function<void(int client_id, int tx_index, double latency_ms)>
      on_tx_complete;
  uint64_t seed = 1;
  /// Optional registry: the pool publishes "<prefix>.tx_ok"/".tx_failed"
  /// counters, a "<prefix>.latency_ms" histogram, and — at completion —
  /// gauges holding the exact PoolResult aggregates ("<prefix>.tps",
  /// ".latency_mean_ms", ".latency_p50_ms", ".elapsed_s"), so figure
  /// drivers can read the registry instead of re-deriving numbers.
  obs::MetricsRegistry* metrics = nullptr;
  std::string metrics_prefix = "pool";
  /// Optional tracer: each client connection becomes one trace whose id is
  /// carried to the server/proxy via ConnectMeta, linking the pool's
  /// requests to "session" and "db.query" spans downstream.
  obs::Tracer* tracer = nullptr;
};

struct PoolResult {
  uint64_t completed = 0;
  uint64_t failed = 0;
  SampleStats latency_ms;       // per-transaction latency
  sim::Time elapsed = 0;        // first send -> last completion

  double throughput_tps() const {
    return elapsed > 0 ? static_cast<double>(completed) /
                             (static_cast<double>(elapsed) / 1e9)
                       : 0.0;
  }
};

/// Runs the pool to completion on the given simulator (drains all events).
PoolResult run_client_pool(sim::Simulator& sim, sim::Network& net,
                           const ClientPoolOptions& options);

}  // namespace rddr::workloads
