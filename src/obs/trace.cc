#include "obs/trace.h"

#include <algorithm>

#include "common/strutil.h"
#include "proto/json/json.h"

namespace rddr::obs {

namespace {
uint64_t fnv1a64(const std::string& s) {
  uint64_t h = 14695981039346656037ull;
  for (unsigned char c : s) {
    h ^= c;
    h *= 1099511628211ull;
  }
  return h;
}
}  // namespace

Tracer::Tracer(std::function<TimeNs()> clock, uint64_t seed)
    : clock_(std::move(clock)),
      seed_(seed),
      rng_(Rng(seed).fork(/*label=*/0x7ace)) {}

TraceId Tracer::new_trace() {
  uint64_t id = rng_.next();
  while (id == 0) id = rng_.next();
  return id;
}

Tracer::IdStream* Tracer::id_stream(const std::string& owner) {
  std::lock_guard<std::mutex> lock(stream_mu_);
  auto it = id_streams_.find(owner);
  if (it == id_streams_.end())
    it = id_streams_
             .emplace(owner, IdStream(Rng(seed_).fork(fnv1a64(owner))))
             .first;
  return &it->second;
}

SpanId Tracer::begin(TraceId trace, SpanId parent, std::string name,
                     std::string category) {
  IslandId lane = current_island();
  if (lane >= kMaxIslands) lane = 0;
  Lane& l = lanes_[lane];
  Span s;
  s.id = (static_cast<uint64_t>(lane) << kIdIndexBits) | (l.spans.size() + 1);
  s.parent = parent;
  s.trace = trace;
  s.name = std::move(name);
  s.category = std::move(category);
  s.start = clock_();
  s.island = lane;
  l.spans.push_back(std::move(s));
  ++l.open;
  return l.spans.back().id;
}

Span* Tracer::find_mutable(SpanId span) {
  if (span == 0) return nullptr;
  const uint64_t lane = span >> kIdIndexBits;
  const uint64_t idx = (span & kIdIndexMask);
  if (lane >= kMaxIslands || idx == 0 || idx > lanes_[lane].spans.size())
    return nullptr;
  return &lanes_[lane].spans[idx - 1];
}

void Tracer::tag(SpanId span, std::string key, std::string value) {
  if (Span* s = find_mutable(span))
    s->tags.emplace_back(std::move(key), std::move(value));
}

void Tracer::end(SpanId span) {
  Span* s = find_mutable(span);
  if (!s || !s->open()) return;
  s->end = clock_();
  --lanes_[s->island].open;
}

SpanId Tracer::event(TraceId trace, SpanId parent, std::string name,
                     std::string category) {
  SpanId id = begin(trace, parent, std::move(name), std::move(category));
  end(id);
  return id;
}

const Span* Tracer::find(SpanId span) const {
  return const_cast<Tracer*>(this)->find_mutable(span);
}

size_t Tracer::open_spans() const {
  size_t n = 0;
  for (const Lane& l : lanes_) n += l.open;
  return n;
}

size_t Tracer::span_count() const {
  size_t n = 0;
  for (const Lane& l : lanes_) n += l.spans.size();
  return n;
}

std::vector<Span> Tracer::all_spans() const {
  std::vector<Span> out;
  out.reserve(span_count());
  for (const Lane& l : lanes_)
    out.insert(out.end(), l.spans.begin(), l.spans.end());
  return out;
}

std::string Tracer::export_events(const std::vector<const Span*>& order,
                                  const std::map<SpanId, SpanId>* renumber,
                                  bool tid_by_island) const {
  // Hand-assembled rather than json::Value so event order is preserved;
  // json::Object would re-sort keys but also cannot hold the heterogeneous
  // event list in a chosen order.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span* sp : order) {
    const Span& s = *sp;
    if (!first) out += ",";
    first = false;
    const TimeNs end = s.open() ? s.start : s.end;
    uint64_t id = s.id;
    uint64_t parent = s.parent;
    if (renumber) {
      auto it = renumber->find(s.id);
      if (it != renumber->end()) id = it->second;
      auto pit = renumber->find(s.parent);
      if (pit != renumber->end()) parent = pit->second;
    }
    const uint64_t tid =
        tid_by_island ? s.island : (s.trace & 0xffffffffULL);
    out += strformat(
        // tid groups a trace's spans on one row (or one row per island in
        // by-island mode); the low 32 bits keep the number inside JS-safe
        // integer range for chrome://tracing.
        "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":1,\"tid\":%llu,\"args\":{\"trace\":\"%016llx\","
        "\"span\":%llu,\"parent\":%llu",
        ("\"" + json::escape(s.name) + "\"").c_str(),
        ("\"" + json::escape(s.category) + "\"").c_str(),
        static_cast<double>(s.start) / 1e3,
        static_cast<double>(end - s.start) / 1e3,
        static_cast<unsigned long long>(tid),
        static_cast<unsigned long long>(s.trace),
        static_cast<unsigned long long>(id),
        static_cast<unsigned long long>(parent));
    for (const auto& [k, v] : s.tags)
      out += ",\"" + json::escape(k) + "\":\"" + json::escape(v) + "\"";
    if (s.open()) out += ",\"unclosed\":\"true\"";
    out += "}}";
  }
  out += "]}";
  return out;
}

std::string Tracer::export_chrome() const {
  std::vector<const Span*> order;
  order.reserve(span_count());
  for (const Lane& l : lanes_)
    for (const Span& s : l.spans) order.push_back(&s);
  if (!island_export_)
    // Legacy path: lane-concatenation order IS creation order for every
    // single-island run, and lane-0 ids carry no lane bits, so the bytes
    // match the pre-island exports exactly.
    return export_events(order, nullptr, /*tid_by_island=*/false);

  // Canonical island mode: (trace, start) ordering with the lane-concat
  // order as the stable tiebreak. Within one lane the tiebreak is the
  // lane-local creation order (island-count-invariant); across lanes a
  // (trace, start) tie would need two same-trace spans at the same
  // nanosecond on different islands, which nonzero cross-island latency
  // rules out. Dense renumbering then strips the lane bits from the ids.
  std::stable_sort(order.begin(), order.end(),
                   [](const Span* a, const Span* b) {
                     if (a->trace != b->trace) return a->trace < b->trace;
                     return a->start < b->start;
                   });
  std::map<SpanId, SpanId> renumber;
  for (size_t i = 0; i < order.size(); ++i) renumber[order[i]->id] = i + 1;
  return export_events(order, &renumber, /*tid_by_island=*/false);
}

std::string Tracer::export_chrome_by_island() const {
  std::vector<const Span*> order;
  order.reserve(span_count());
  for (const Lane& l : lanes_)
    for (const Span& s : l.spans) order.push_back(&s);
  return export_events(order, nullptr, /*tid_by_island=*/true);
}

void Tracer::clear() {
  for (Lane& l : lanes_) {
    l.spans.clear();
    l.open = 0;
  }
}

}  // namespace rddr::obs
