#include "obs/trace.h"

#include "common/strutil.h"
#include "proto/json/json.h"

namespace rddr::obs {

Tracer::Tracer(std::function<TimeNs()> clock, uint64_t seed)
    : clock_(std::move(clock)), rng_(Rng(seed).fork(/*label=*/0x7ace)) {}

TraceId Tracer::new_trace() {
  uint64_t id = rng_.next();
  while (id == 0) id = rng_.next();
  return id;
}

SpanId Tracer::begin(TraceId trace, SpanId parent, std::string name,
                     std::string category) {
  Span s;
  s.id = spans_.size() + 1;
  s.parent = parent;
  s.trace = trace;
  s.name = std::move(name);
  s.category = std::move(category);
  s.start = clock_();
  spans_.push_back(std::move(s));
  ++open_;
  return spans_.back().id;
}

void Tracer::tag(SpanId span, std::string key, std::string value) {
  if (span == 0 || span > spans_.size()) return;
  spans_[span - 1].tags.emplace_back(std::move(key), std::move(value));
}

void Tracer::end(SpanId span) {
  if (span == 0 || span > spans_.size()) return;
  Span& s = spans_[span - 1];
  if (!s.open()) return;
  s.end = clock_();
  --open_;
}

SpanId Tracer::event(TraceId trace, SpanId parent, std::string name,
                     std::string category) {
  SpanId id = begin(trace, parent, std::move(name), std::move(category));
  end(id);
  return id;
}

const Span* Tracer::find(SpanId span) const {
  if (span == 0 || span > spans_.size()) return nullptr;
  return &spans_[span - 1];
}

std::string Tracer::export_chrome() const {
  // Hand-assembled rather than json::Value so event order (= span
  // creation order) is preserved; json::Object would re-sort keys but
  // also cannot hold the heterogeneous event list in creation order.
  std::string out = "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[";
  bool first = true;
  for (const Span& s : spans_) {
    if (!first) out += ",";
    first = false;
    const TimeNs end = s.open() ? s.start : s.end;
    out += strformat(
        // tid groups a trace's spans on one row; the low 32 bits keep the
        // number inside JS-safe integer range for chrome://tracing.
        "{\"name\":%s,\"cat\":%s,\"ph\":\"X\",\"ts\":%.3f,\"dur\":%.3f,"
        "\"pid\":1,\"tid\":%llu,\"args\":{\"trace\":\"%016llx\","
        "\"span\":%llu,\"parent\":%llu",
        ("\"" + json::escape(s.name) + "\"").c_str(),
        ("\"" + json::escape(s.category) + "\"").c_str(),
        static_cast<double>(s.start) / 1e3,
        static_cast<double>(end - s.start) / 1e3,
        static_cast<unsigned long long>(s.trace & 0xffffffffULL),
        static_cast<unsigned long long>(s.trace),
        static_cast<unsigned long long>(s.id),
        static_cast<unsigned long long>(s.parent));
    for (const auto& [k, v] : s.tags)
      out += ",\"" + json::escape(k) + "\":\"" + json::escape(v) + "\"";
    if (s.open()) out += ",\"unclosed\":\"true\"";
    out += "}}";
  }
  out += "]}";
  return out;
}

void Tracer::clear() {
  spans_.clear();
  open_ = 0;
}

}  // namespace rddr::obs
