#include "obs/metrics.h"

#include <algorithm>

namespace rddr::obs {

Histogram::Histogram(std::vector<double> bounds) : bounds_(std::move(bounds)) {
  std::sort(bounds_.begin(), bounds_.end());
  bounds_.erase(std::unique(bounds_.begin(), bounds_.end()), bounds_.end());
  counts_.assign(bounds_.size() + 1, 0);
}

void Histogram::observe(double v) {
  size_t i = 0;
  while (i < bounds_.size() && v > bounds_[i]) ++i;
  std::atomic_ref<uint64_t>(counts_[i]).fetch_add(1,
                                                  std::memory_order_relaxed);
  std::atomic_ref<uint64_t>(count_).fetch_add(1, std::memory_order_relaxed);
  std::atomic_ref<int64_t>(sum_fp_).fetch_add(
      static_cast<int64_t>(std::llround(v * kFixedPointScale)),
      std::memory_order_relaxed);
}

double Histogram::percentile(double p) const {
  if (count_ == 0) return 0.0;
  const double target = std::max(0.0, std::min(p, 100.0)) / 100.0 *
                        static_cast<double>(count_);
  uint64_t seen = 0;
  for (size_t i = 0; i < counts_.size(); ++i) {
    seen += counts_[i];
    if (static_cast<double>(seen) >= target && counts_[i] > 0) {
      // Linear interpolation inside the bucket [lo, hi].
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = i < bounds_.size() ? bounds_[i] : lo;
      const uint64_t before = seen - counts_[i];
      const double frac =
          (target - static_cast<double>(before)) /
          static_cast<double>(counts_[i]);
      return lo + (hi - lo) * std::max(0.0, std::min(frac, 1.0));
    }
  }
  return bounds_.empty() ? 0.0 : bounds_.back();
}

std::vector<double> Histogram::default_latency_ms_bounds() {
  std::vector<double> b;
  for (double v = 0.1; v < 14000.0; v *= 2) b.push_back(v);  // 0.1 .. ~13.1s
  return b;
}

Counter* MetricsRegistry::counter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &counters_[name];
}

Gauge* MetricsRegistry::gauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  return &gauges_[name];
}

Histogram* MetricsRegistry::histogram(const std::string& name,
                                      std::vector<double> bounds) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    if (bounds.empty()) bounds = Histogram::default_latency_ms_bounds();
    it = histograms_.emplace(name, Histogram(std::move(bounds))).first;
  }
  return &it->second;
}

const Counter* MetricsRegistry::find_counter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = counters_.find(name);
  return it == counters_.end() ? nullptr : &it->second;
}

const Gauge* MetricsRegistry::find_gauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = gauges_.find(name);
  return it == gauges_.end() ? nullptr : &it->second;
}

const Histogram* MetricsRegistry::find_histogram(
    const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : &it->second;
}

json::Value MetricsRegistry::to_json() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Object counters;
  for (const auto& [name, c] : counters_)
    counters[name] = static_cast<int64_t>(c.value());
  json::Object gauges;
  for (const auto& [name, g] : gauges_)
    gauges[name] = json::Object{{"value", g.value()}, {"max", g.max_value()}};
  json::Object histograms;
  for (const auto& [name, h] : histograms_) {
    json::Array bounds, counts;
    for (double b : h.bounds()) bounds.push_back(b);
    for (uint64_t c : h.counts()) counts.push_back(static_cast<int64_t>(c));
    histograms[name] = json::Object{{"bounds", std::move(bounds)},
                                    {"counts", std::move(counts)},
                                    {"count", static_cast<int64_t>(h.count())},
                                    {"sum", h.sum()}};
  }
  return json::Object{{"counters", std::move(counters)},
                      {"gauges", std::move(gauges)},
                      {"histograms", std::move(histograms)}};
}

}  // namespace rddr::obs
