// Deterministic tracing on the virtual clock.
//
// Distributed-tracing analogue for the simulator: every inbound request
// gets a trace ID derived from a seeded Rng stream, and the stations it
// passes through (incoming proxy -> N instances -> outgoing proxy ->
// sqldb) record spans with parent/child links and per-instance tags.
// Because both the IDs and the clock are deterministic, the same seed
// yields a byte-identical trace export — a property no real tracing stack
// offers, and the foundation for localizing which instance diverged and
// when (cf. Distributed Execution Indexing).
//
// Trace context crosses simulated connections as two plain integers on
// `sim::ConnectMeta` (trace_id, parent_span); this layer itself knows
// nothing about netsim — it reads time through a clock callback.
//
// Parallel simulation: spans are recorded into per-island lanes (the
// recording island is read from the thread-local execution context), so
// concurrent islands never touch each other's storage. Two things keep
// exports island-count-invariant:
//   * Trace ids for components that may live off island 0 come from
//     per-owner IdStreams (`id_stream("front-s3")`), whose draw order
//     depends only on that component's own event order — never on how
//     components interleave globally.
//   * export_chrome() in island mode canonicalises: spans sort by
//     (trace, start, lane, lane order) and are densely renumbered, so
//     the bytes do not depend on which lane a span was recorded in.
//     (The only escape is two spans of one trace at the same nanosecond
//     in different lanes — causally impossible for a request that hops
//     islands through nonzero-latency links.)
// A tracer that never enters island mode behaves exactly as before.
#pragma once

#include <array>
#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "common/exec_context.h"
#include "common/rng.h"

namespace rddr::obs {

/// Virtual nanoseconds (mirrors sim::Time without the dependency).
using TimeNs = int64_t;

using TraceId = uint64_t;  // 0 = no trace
using SpanId = uint64_t;   // 0 = no span / root

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = trace root
  TraceId trace = 0;
  std::string name;      // taxonomy: session, flow, replicate, upstream,
                         // denoise, diff, verdict, db.query, client, ...
  std::string category;  // emitting component ("rddr-in", "pg-0:5432", ...)
  TimeNs start = 0;
  TimeNs end = -1;  // -1 while open
  IslandId island = 0;  // lane the span was recorded on
  std::vector<std::pair<std::string, std::string>> tags;

  bool open() const { return end < 0; }
};

/// Records spans for any number of traces. Span ids encode (lane, dense
/// index), so lookup is O(1); trace ids come from Rng streams forked off
/// `seed`, so they look like the random request ids of a real system yet
/// replay exactly.
class Tracer {
 public:
  /// `clock` supplies the current virtual time (e.g. a lambda over
  /// Simulator::now()).
  Tracer(std::function<TimeNs()> clock, uint64_t seed);

  /// Allocates a fresh trace ID (never 0) from the tracer-global stream.
  /// Island-0 contexts only (the workload driver, tests); components
  /// that can be pinned elsewhere must use their own id_stream() so the
  /// draw order cannot depend on the island layout.
  TraceId new_trace();

  /// Independent deterministic trace-id stream scoped to one owning
  /// component. The handle is stable for the tracer's lifetime; each
  /// stream must only be used from its owner's (single) island.
  class IdStream {
   public:
    TraceId next_trace() {
      uint64_t id = rng_.next();
      while (id == 0) id = rng_.next();
      return id;
    }

   private:
    friend class Tracer;
    explicit IdStream(Rng rng) : rng_(rng) {}
    Rng rng_;
  };
  IdStream* id_stream(const std::string& owner);

  /// Opens a span; `parent` 0 makes it the trace root. Records on the
  /// calling context's island lane.
  SpanId begin(TraceId trace, SpanId parent, std::string name,
               std::string category);

  /// Attaches a key/value tag to an open or closed span.
  void tag(SpanId span, std::string key, std::string value);

  /// Closes a span at the current clock. Idempotent.
  void end(SpanId span);

  /// Convenience: zero-duration marker span (begin+end at now).
  SpanId event(TraceId trace, SpanId parent, std::string name,
               std::string category);

  /// Island-0 lane in recording order — the complete span list for
  /// simulations that never leave island 0 (every pre-island test and
  /// tool). Multi-island consumers should use all_spans().
  const std::vector<Span>& spans() const { return lanes_[0].spans; }

  /// Every recorded span, lane by lane (lane-local recording order).
  std::vector<Span> all_spans() const;

  const Span* find(SpanId span) const;
  size_t open_spans() const;
  size_t span_count() const;

  /// Opts the export into island-canonical mode. Deployments built with
  /// the islands() knob set this for ANY island count — including 1 — so
  /// the 1-island oracle export is byte-identical to the N-island one.
  void set_island_export(bool on) { island_export_ = on; }

  /// Chrome trace_event JSON ("X" complete events, ts/dur in
  /// microseconds); load via chrome://tracing or https://ui.perfetto.dev.
  /// Open spans are exported as zero-length with an "unclosed" tag so
  /// they stay visible. Output is byte-identical for identical runs; in
  /// island mode it is additionally identical across island counts
  /// (canonical ordering + dense renumbering, see file comment).
  std::string export_chrome() const;

  /// Diagnostic export with one Chrome row per island (tid = island id),
  /// raw span ids, lane order. Shows the actual parallel layout — and is
  /// therefore deliberately NOT island-count-invariant.
  std::string export_chrome_by_island() const;

  void clear();

 private:
  struct Lane {
    std::vector<Span> spans;
    size_t open = 0;
  };

  // Span-id layout: [63:58] lane, [57:0] index+1.
  static constexpr int kIdIndexBits = 58;
  static constexpr uint64_t kIdIndexMask = (1ull << kIdIndexBits) - 1;

  Span* find_mutable(SpanId span);
  std::string export_events(const std::vector<const Span*>& order,
                            const std::map<SpanId, SpanId>* renumber,
                            bool tid_by_island) const;

  std::function<TimeNs()> clock_;
  uint64_t seed_;
  Rng rng_;
  std::array<Lane, kMaxIslands> lanes_;
  bool island_export_ = false;
  std::mutex stream_mu_;  // guards id_streams_ creation only
  std::map<std::string, IdStream> id_streams_;
};

}  // namespace rddr::obs
