// Deterministic tracing on the virtual clock.
//
// Distributed-tracing analogue for the simulator: every inbound request
// gets a trace ID derived from a seeded Rng stream, and the stations it
// passes through (incoming proxy -> N instances -> outgoing proxy ->
// sqldb) record spans with parent/child links and per-instance tags.
// Because both the IDs and the clock are deterministic, the same seed
// yields a byte-identical trace export — a property no real tracing stack
// offers, and the foundation for localizing which instance diverged and
// when (cf. Distributed Execution Indexing).
//
// Trace context crosses simulated connections as two plain integers on
// `sim::ConnectMeta` (trace_id, parent_span); this layer itself knows
// nothing about netsim — it reads time through a clock callback.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <utility>
#include <vector>

#include "common/rng.h"

namespace rddr::obs {

/// Virtual nanoseconds (mirrors sim::Time without the dependency).
using TimeNs = int64_t;

using TraceId = uint64_t;  // 0 = no trace
using SpanId = uint64_t;   // 0 = no span / root

struct Span {
  SpanId id = 0;
  SpanId parent = 0;  // 0 = trace root
  TraceId trace = 0;
  std::string name;      // taxonomy: session, flow, replicate, upstream,
                         // denoise, diff, verdict, db.query, client, ...
  std::string category;  // emitting component ("rddr-in", "pg-0:5432", ...)
  TimeNs start = 0;
  TimeNs end = -1;  // -1 while open
  std::vector<std::pair<std::string, std::string>> tags;

  bool open() const { return end < 0; }
};

/// Records spans for any number of traces. Span ids are dense (index+1),
/// so lookup is O(1); trace ids come from an Rng stream forked off `seed`,
/// so they look like the random request ids of a real system yet replay
/// exactly.
class Tracer {
 public:
  /// `clock` supplies the current virtual time (e.g. a lambda over
  /// Simulator::now()).
  Tracer(std::function<TimeNs()> clock, uint64_t seed);

  /// Allocates a fresh trace ID (never 0).
  TraceId new_trace();

  /// Opens a span; `parent` 0 makes it the trace root.
  SpanId begin(TraceId trace, SpanId parent, std::string name,
               std::string category);

  /// Attaches a key/value tag to an open or closed span.
  void tag(SpanId span, std::string key, std::string value);

  /// Closes a span at the current clock. Idempotent.
  void end(SpanId span);

  /// Convenience: zero-duration marker span (begin+end at now).
  SpanId event(TraceId trace, SpanId parent, std::string name,
               std::string category);

  const std::vector<Span>& spans() const { return spans_; }
  const Span* find(SpanId span) const;
  size_t open_spans() const { return open_; }

  /// Chrome trace_event JSON ("X" complete events, ts/dur in
  /// microseconds); load via chrome://tracing or https://ui.perfetto.dev.
  /// Open spans are exported as zero-length with an "unclosed" tag so
  /// they stay visible. Output is byte-identical for identical runs.
  std::string export_chrome() const;

  void clear();

 private:
  std::function<TimeNs()> clock_;
  Rng rng_;
  std::vector<Span> spans_;
  size_t open_ = 0;
};

}  // namespace rddr::obs
