// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The measurement substrate behind the paper's evaluation (Figs 4-6):
// every proxy, host, database server, and workload driver publishes into a
// shared `MetricsRegistry` instead of hand-rolled counter structs. Handles
// (`Counter*`, `Gauge*`, `Histogram*`) are resolved once by name at setup
// time and are then a single add/store on the hot path; the registry is
// only walked again at export time. Because everything runs on the
// deterministic simulator, a metrics dump is exactly reproducible from a
// seed — `dump_json()` is byte-identical across runs.
//
// This layer sits below netsim on purpose: it knows nothing about the
// simulator, so `Host` can publish resource gauges without a dependency
// cycle. Time enters only as values (virtual nanoseconds as int64_t).
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "proto/json/json.h"

namespace rddr::obs {

/// Monotonic event count. Hot-path cost: one 64-bit add.
class Counter {
 public:
  void inc(uint64_t n = 1) { v_ += n; }
  uint64_t value() const { return v_; }

 private:
  uint64_t v_ = 0;
};

/// Last-write-wins level (CPU%, resident bytes, a final summary figure).
/// Tracks the maximum ever set, which is what the Fig 4/6 "max" columns
/// consume.
class Gauge {
 public:
  void set(double v) {
    v_ = v;
    if (!seen_ || v > max_) max_ = v;
    seen_ = true;
  }
  double value() const { return v_; }
  double max_value() const { return max_; }

 private:
  double v_ = 0;
  double max_ = 0;
  bool seen_ = false;
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds of each
/// bucket; one implicit overflow bucket catches everything above the last
/// bound. Cheap enough for hot paths: observe() is a linear scan over a
/// handful of doubles (buckets are few by design) plus two adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t count() const { return count_; }
  double sum() const { return sum_; }
  double mean() const { return count_ ? sum_ / static_cast<double>(count_) : 0.0; }

  /// Bucket-interpolated percentile estimate (`p` in [0,100]). An
  /// estimate, not the exact order statistic — use SampleStats where the
  /// exact value matters (the Fig 4/5 tables do).
  double percentile(double p) const;

  /// Default latency buckets in milliseconds: 0.1 .. ~13s, x2 per bucket.
  static std::vector<double> default_latency_ms_bounds();

 private:
  std::vector<double> bounds_;   // sorted ascending
  std::vector<uint64_t> counts_; // bounds_.size() + 1 (overflow last)
  uint64_t count_ = 0;
  double sum_ = 0;
};

/// Name -> metric registry. Names are dotted paths ("rddr-in.sessions",
/// "server.cpu_pct"). Handles stay valid for the registry's lifetime
/// (std::map nodes are stable). Export order is name order, so dumps are
/// deterministic.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// Creates the histogram with `bounds` on first use (default latency
  /// buckets when empty); later calls return the existing one.
  Histogram* histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Flat JSON dump:
  ///   {"counters":{name:n,...},
  ///    "gauges":{name:{"value":v,"max":m},...},
  ///    "histograms":{name:{"bounds":[...],"counts":[...],
  ///                        "count":n,"sum":s},...}}
  json::Value to_json() const;
  std::string dump_json() const { return to_json().dump(); }

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rddr::obs
