// Metrics registry: named counters, gauges, and fixed-bucket histograms.
//
// The measurement substrate behind the paper's evaluation (Figs 4-6):
// every proxy, host, database server, and workload driver publishes into a
// shared `MetricsRegistry` instead of hand-rolled counter structs. Handles
// (`Counter*`, `Gauge*`, `Histogram*`) are resolved once by name at setup
// time and are then a single add/store on the hot path; the registry is
// only walked again at export time. Because everything runs on the
// deterministic simulator, a metrics dump is exactly reproducible from a
// seed — `dump_json()` is byte-identical across runs.
//
// This layer sits below netsim on purpose: it knows nothing about the
// simulator, so `Host` can publish resource gauges without a dependency
// cycle. Time enters only as values (virtual nanoseconds as int64_t).
//
// Thread-safety (parallel simulation): mutators go through
// std::atomic_ref, so concurrent updates from different islands are
// races-free, and every accumulation is *order-independent* (counter
// adds commute; the histogram sum is fixed-point so floating-point
// non-associativity cannot leak thread interleaving into dumps; the
// gauge max is a CAS max). Determinism of *last-write* gauge values and
// of read-modify sequences still requires each metric to have a single
// owning island — which the deployment layout guarantees (per-shard
// metric names). Registry creation/lookup is mutex-guarded; handles stay
// valid and lock-free on the hot path.
#pragma once

#include <atomic>
#include <cmath>
#include <cstdint>
#include <limits>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "proto/json/json.h"

namespace rddr::obs {

/// Monotonic event count. Hot-path cost: one relaxed 64-bit add.
class Counter {
 public:
  void inc(uint64_t n = 1) {
    std::atomic_ref<uint64_t>(v_).fetch_add(n, std::memory_order_relaxed);
  }
  uint64_t value() const {
    return std::atomic_ref<const uint64_t>(v_).load(std::memory_order_relaxed);
  }

 private:
  uint64_t v_ = 0;
};

/// Last-write-wins level (CPU%, resident bytes, a final summary figure).
/// Tracks the maximum ever set, which is what the Fig 4/6 "max" columns
/// consume.
class Gauge {
 public:
  void set(double v) {
    std::atomic_ref<double>(v_).store(v, std::memory_order_relaxed);
    std::atomic_ref<uint8_t>(seen_).store(1, std::memory_order_relaxed);
    // CAS-max from -inf: order-independent, so concurrent setters always
    // converge to the true maximum.
    std::atomic_ref<double> mx(max_);
    double cur = mx.load(std::memory_order_relaxed);
    while (v > cur &&
           !mx.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
    }
  }
  double value() const {
    return std::atomic_ref<const double>(v_).load(std::memory_order_relaxed);
  }
  double max_value() const {
    if (!std::atomic_ref<const uint8_t>(seen_).load(std::memory_order_relaxed))
      return 0.0;
    return std::atomic_ref<const double>(max_).load(std::memory_order_relaxed);
  }

 private:
  double v_ = 0;
  double max_ = -std::numeric_limits<double>::infinity();
  uint8_t seen_ = 0;
};

/// Fixed-bucket histogram. `bounds` are inclusive upper bounds of each
/// bucket; one implicit overflow bucket catches everything above the last
/// bound. Cheap enough for hot paths: observe() is a linear scan over a
/// handful of doubles (buckets are few by design) plus two adds.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds);

  void observe(double v);

  const std::vector<double>& bounds() const { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  /// Stable to read concurrently only via relaxed loads; export happens
  /// after the run, where plain reads are fine.
  const std::vector<uint64_t>& counts() const { return counts_; }
  uint64_t count() const {
    return std::atomic_ref<const uint64_t>(count_).load(
        std::memory_order_relaxed);
  }
  /// The sum accumulates in 44.20 fixed point: integer adds commute
  /// exactly, so the value is identical no matter how observations
  /// interleave across islands (double accumulation would leak thread
  /// timing through non-associativity). ~1e-6 absolute resolution.
  double sum() const {
    return static_cast<double>(std::atomic_ref<const int64_t>(sum_fp_).load(
               std::memory_order_relaxed)) /
           kFixedPointScale;
  }
  double mean() const {
    uint64_t n = count();
    return n ? sum() / static_cast<double>(n) : 0.0;
  }

  /// Bucket-interpolated percentile estimate (`p` in [0,100]). An
  /// estimate, not the exact order statistic — use SampleStats where the
  /// exact value matters (the Fig 4/5 tables do).
  double percentile(double p) const;

  /// Default latency buckets in milliseconds: 0.1 .. ~13s, x2 per bucket.
  static std::vector<double> default_latency_ms_bounds();

 private:
  static constexpr double kFixedPointScale = 1048576.0;  // 2^20

  std::vector<double> bounds_;   // sorted ascending
  std::vector<uint64_t> counts_; // bounds_.size() + 1 (overflow last)
  uint64_t count_ = 0;
  int64_t sum_fp_ = 0;  // 44.20 fixed point (see sum())
};

/// Name -> metric registry. Names are dotted paths ("rddr-in.sessions",
/// "server.cpu_pct"). Handles stay valid for the registry's lifetime
/// (std::map nodes are stable). Export order is name order, so dumps are
/// deterministic.
class MetricsRegistry {
 public:
  Counter* counter(const std::string& name);
  Gauge* gauge(const std::string& name);
  /// Creates the histogram with `bounds` on first use (default latency
  /// buckets when empty); later calls return the existing one.
  Histogram* histogram(const std::string& name,
                       std::vector<double> bounds = {});

  /// Lookup without creation; nullptr when absent.
  const Counter* find_counter(const std::string& name) const;
  const Gauge* find_gauge(const std::string& name) const;
  const Histogram* find_histogram(const std::string& name) const;

  /// Flat JSON dump:
  ///   {"counters":{name:n,...},
  ///    "gauges":{name:{"value":v,"max":m},...},
  ///    "histograms":{name:{"bounds":[...],"counts":[...],
  ///                        "count":n,"sum":s},...}}
  json::Value to_json() const;
  std::string dump_json() const { return to_json().dump(); }

 private:
  // Guards map structure only (creation, lookup, export walk); metric
  // values themselves are updated lock-free through the handles.
  mutable std::mutex mu_;
  std::map<std::string, Counter> counters_;
  std::map<std::string, Gauge> gauges_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace rddr::obs
