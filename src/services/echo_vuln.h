// ASLR proof-of-concept service (paper §V-E).
//
// Simulates the C echo server the paper uses: a fixed-size stack buffer
// holds the request; a pointer sits adjacent to it. Requests longer than
// the buffer overwrite the NUL terminator, so the echo reply runs past the
// buffer and leaks the pointer's value. With ASLR each instance's address
// space — and therefore the leaked pointer — differs, which is precisely
// the divergence RDDR detects at step (1) of the exploit chain.
//
// Protocol: raw TCP. Client sends a length-prefixed line ("msg\n");
// service replies with the echoed bytes followed by '\n'.
#pragma once

#include <cstdint>
#include <string>

#include "common/rng.h"
#include "netsim/host.h"
#include "netsim/network.h"

namespace rddr::services {

class EchoVulnServer {
 public:
  struct Options {
    std::string address;
    /// Simulated stack buffer size; longer messages overflow.
    size_t buffer_size = 64;
    /// ASLR on: the adjacent pointer's base is randomized per instance.
    bool aslr = true;
    /// Seed for this instance's address-space layout.
    uint64_t rng_seed = 1;
    double cpu_per_request = 5e-6;
  };

  EchoVulnServer(sim::Network& net, sim::Host& host, Options opts);
  ~EchoVulnServer();

  /// The pointer value an overflow leaks (tests compare across instances).
  uint64_t leaked_pointer() const { return adjacent_pointer_; }

 private:
  void on_accept(sim::ConnPtr conn);

  sim::Network& net_;
  sim::Host& host_;
  Options opts_;
  uint64_t adjacent_pointer_;
};

}  // namespace rddr::services
