#include "services/variant_libs.h"

#include <cctype>
#include <cstdlib>
#include <functional>
#include <vector>

#include "common/strutil.h"

namespace rddr::services::lib {

namespace {

/// Escapes HTML metacharacters in text content.
std::string html_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '&': out += "&amp;"; break;
      case '<': out += "&lt;"; break;
      case '>': out += "&gt;"; break;
      case '"': out += "&quot;"; break;
      default: out.push_back(c);
    }
  }
  return out;
}

/// Strips ASCII control characters (< 0x20) from a URL.
std::string strip_controls(std::string_view url) {
  std::string out;
  for (char c : url)
    if (static_cast<unsigned char>(c) >= 0x20) out.push_back(c);
  return out;
}

bool dangerous_scheme(std::string_view url) {
  std::string l = to_lower(trim(url));
  return starts_with(l, "javascript:") || starts_with(l, "vbscript:") ||
         starts_with(l, "data:");
}

/// Shared markdown transformer; `check_before_strip` selects the bug.
std::string md_render(std::string_view markdown, bool check_before_strip) {
  std::string out;
  auto lines = split_lines(markdown);
  for (const auto& line : lines) {
    std::string html;
    std::string_view rest = line;
    // Headers.
    int level = 0;
    while (!rest.empty() && rest.front() == '#' && level < 6) {
      ++level;
      rest.remove_prefix(1);
    }
    if (level > 0 && !rest.empty() && rest.front() == ' ')
      rest.remove_prefix(1);
    // Inline: links [text](url), emphasis **x**.
    std::string body;
    size_t i = 0;
    while (i < rest.size()) {
      if (rest[i] == '[') {
        size_t close = rest.find(']', i);
        size_t paren_open = close != std::string_view::npos &&
                                    close + 1 < rest.size() &&
                                    rest[close + 1] == '('
                                ? close + 1
                                : std::string_view::npos;
        size_t paren_close = paren_open != std::string_view::npos
                                 ? rest.find(')', paren_open)
                                 : std::string_view::npos;
        if (paren_close != std::string_view::npos) {
          std::string text(rest.substr(i + 1, close - i - 1));
          std::string url(rest.substr(paren_open + 1,
                                      paren_close - paren_open - 1));
          std::string final_url;
          if (check_before_strip) {
            // BUG (markdown2 / CVE-2020-11888 shape): the scheme check runs
            // on the raw URL; control characters are stripped afterwards,
            // re-fusing "java\x01script:" into "javascript:".
            if (dangerous_scheme(url)) url = "#";
            final_url = strip_controls(url);
          } else {
            final_url = strip_controls(url);
            if (dangerous_scheme(final_url)) final_url = "#";
          }
          body += "<a href=\"" + html_escape(final_url) + "\">" +
                  html_escape(text) + "</a>";
          i = paren_close + 1;
          continue;
        }
      }
      if (rest.compare(i, 2, "**") == 0) {
        size_t close = rest.find("**", i + 2);
        if (close != std::string_view::npos) {
          body += "<strong>" + html_escape(rest.substr(i + 2, close - i - 2)) +
                  "</strong>";
          i = close + 2;
          continue;
        }
      }
      body += html_escape(rest.substr(i, 1));
      ++i;
    }
    if (level > 0) {
      html = strformat("<h%d>%s</h%d>", level, body.c_str(), level);
    } else if (!body.empty()) {
      html = "<p>" + body + "</p>";
    }
    if (!html.empty()) {
      out += html;
      out += "\n";
    }
  }
  return out;
}

/// Decodes decimal/hex character references (&#10; / &#x0a;).
std::string decode_char_refs(std::string_view s) {
  std::string out;
  size_t i = 0;
  while (i < s.size()) {
    if (s[i] == '&' && i + 2 < s.size() && s[i + 1] == '#') {
      size_t semi = s.find(';', i + 2);
      if (semi != std::string_view::npos && semi - i <= 10) {
        std::string_view num = s.substr(i + 2, semi - i - 2);
        long code = -1;
        if (!num.empty() && (num[0] == 'x' || num[0] == 'X')) {
          code = std::strtol(std::string(num.substr(1)).c_str(), nullptr, 16);
        } else if (!num.empty()) {
          code = std::strtol(std::string(num).c_str(), nullptr, 10);
        }
        if (code >= 0 && code < 256) {
          out.push_back(static_cast<char>(code));
          i = semi + 1;
          continue;
        }
      }
    }
    out.push_back(s[i]);
    ++i;
  }
  return out;
}

/// Shared sanitizer skeleton: removes <script> elements and on* handlers,
/// then applies `href_is_safe` to anchor URLs.
std::string sanitize(std::string_view html,
                     const std::function<bool(std::string_view)>& href_is_safe) {
  std::string out;
  size_t i = 0;
  while (i < html.size()) {
    if (html[i] != '<') {
      out.push_back(html[i]);
      ++i;
      continue;
    }
    size_t close = html.find('>', i);
    if (close == std::string_view::npos) break;  // truncated tag: drop
    std::string tag(html.substr(i, close - i + 1));
    std::string ltag = to_lower(tag);
    // Drop <script>...</script> wholesale.
    if (starts_with(ltag, "<script")) {
      size_t end = ifind(html.substr(close), "</script>");
      i = end == std::string_view::npos ? html.size() : close + end + 9;
      continue;
    }
    // Remove inline event handlers (on*=...).
    size_t on;
    while ((on = ifind(tag, " on")) != std::string::npos &&
           tag.find('=', on) != std::string::npos) {
      size_t eq = tag.find('=', on);
      size_t end = eq + 1;
      if (end < tag.size() && (tag[end] == '"' || tag[end] == '\'')) {
        char q = tag[end];
        end = tag.find(q, end + 1);
        end = end == std::string::npos ? tag.size() - 1 : end + 1;
      } else {
        while (end < tag.size() && tag[end] != ' ' && tag[end] != '>') ++end;
      }
      tag.erase(on, end - on);
    }
    // href scheme check.
    size_t href = ifind(tag, "href=");
    if (href != std::string::npos) {
      size_t start = href + 5;
      char q = start < tag.size() ? tag[start] : 0;
      size_t vstart = (q == '"' || q == '\'') ? start + 1 : start;
      size_t vend = (q == '"' || q == '\'')
                        ? tag.find(q, vstart)
                        : tag.find_first_of(" >", vstart);
      if (vend == std::string::npos) vend = tag.size();
      std::string url = tag.substr(vstart, vend - vstart);
      if (!href_is_safe(url)) {
        tag.erase(href, vend - href + ((q == '"' || q == '\'') ? 1 : 0));
      }
    }
    out += tag;
    i = close + 1;
  }
  return out;
}

}  // namespace

std::string md_render_mdone(std::string_view markdown) {
  return md_render(markdown, /*check_before_strip=*/false);
}

std::string md_render_mdtwo(std::string_view markdown) {
  return md_render(markdown, /*check_before_strip=*/true);
}

std::string sanitize_lxmllite(std::string_view html) {
  // BUG (lxml / CVE-2014-3146 shape): the scheme check runs on the raw
  // attribute value — character references and embedded whitespace are not
  // normalised, so "java&#10;script:" and "java\nscript:" pass.
  return sanitize(html, [](std::string_view url) {
    return !dangerous_scheme(url);
  });
}

std::string sanitize_sanihtml(std::string_view html) {
  // Safe: decode char refs, drop ALL whitespace/control bytes, then check.
  return sanitize(html, [](std::string_view url) {
    std::string decoded = decode_char_refs(url);
    std::string squeezed;
    for (char c : decoded)
      if (!std::isspace(static_cast<unsigned char>(c)) &&
          static_cast<unsigned char>(c) >= 0x20)
        squeezed.push_back(c);
    return !dangerous_scheme(squeezed);
  });
}

const std::map<std::string, std::string>& xxe_filesystem() {
  static const std::map<std::string, std::string> fs = {
      {"/etc/passwd",
       "root:x:0:0:root:/root:/bin/bash\n"
       "svc:x:999:999:service:/srv:/usr/sbin/nologin\n"},
      {"/srv/keys/api.key", "api-key-51f2c9d477aa\n"},
  };
  return fs;
}

namespace {

struct SvgDoc {
  std::map<std::string, std::string> entities;  // name -> resolved value
  bool has_external_entity = false;
  std::vector<std::string> texts;
  std::string dims = "64x64";
};

/// Extremely small SVG reader: DOCTYPE entities + <text> elements +
/// width/height attributes. `resolve_external` controls the XXE behaviour.
SvgDoc parse_svg(std::string_view svg, bool resolve_external) {
  SvgDoc doc;
  // Entities: <!ENTITY name SYSTEM "uri"> or <!ENTITY name "value">.
  size_t pos = 0;
  while ((pos = svg.find("<!ENTITY", pos)) != std::string_view::npos) {
    size_t end = svg.find('>', pos);
    if (end == std::string_view::npos) break;
    std::string decl(svg.substr(pos + 8, end - pos - 8));
    pos = end + 1;
    auto toks = split(std::string(trim(decl)), ' ');
    if (toks.size() < 2) continue;
    std::string name = toks[0];
    if (toks.size() >= 3 && to_upper(toks[1]) == "SYSTEM") {
      doc.has_external_entity = true;
      std::string uri = toks[2];
      if (!uri.empty() && (uri.front() == '"' || uri.front() == '\''))
        uri = uri.substr(1, uri.size() - 2);
      if (resolve_external && starts_with(uri, "file://")) {
        std::string path = uri.substr(7);
        auto it = xxe_filesystem().find(path);
        doc.entities[name] =
            it != xxe_filesystem().end() ? it->second : "";
      } else {
        doc.entities[name] = "";
      }
    } else {
      std::string value = toks[1];
      for (size_t i = 2; i < toks.size(); ++i) value += " " + toks[i];
      if (!value.empty() && (value.front() == '"' || value.front() == '\''))
        value = value.substr(1, value.size() - 2);
      doc.entities[name] = value;
    }
  }
  // Dimensions.
  size_t w = ifind(svg, "width=\"");
  size_t h = ifind(svg, "height=\"");
  if (w != std::string_view::npos && h != std::string_view::npos) {
    size_t we = svg.find('"', w + 7);
    size_t he = svg.find('"', h + 8);
    if (we != std::string_view::npos && he != std::string_view::npos)
      doc.dims = std::string(svg.substr(w + 7, we - w - 7)) + "x" +
                 std::string(svg.substr(h + 8, he - h - 8));
  }
  // Text elements.
  size_t scan = 0;
  while (scan < svg.size()) {
    size_t open = ifind(svg.substr(scan), "<text");
    if (open == std::string_view::npos) break;
    size_t abs_open = scan + open;
    size_t open_end = svg.find('>', abs_open);
    if (open_end == std::string_view::npos) break;
    size_t close = ifind(svg.substr(open_end + 1), "</text>");
    if (close == std::string_view::npos) break;
    std::string content(svg.substr(open_end + 1, close));
    // Expand entity references &name;.
    for (const auto& [name, value] : doc.entities)
      content = replace_all(content, "&" + name + ";", value);
    doc.texts.push_back(content);
    scan = open_end + 1 + close + 7;
  }
  return doc;
}

/// Renders the parsed doc into the fake PNG byte format shared by both
/// converters (identical output on identical parse => no benign diff).
Bytes render_png(const SvgDoc& doc) {
  Bytes out = "\x89PNG-SIM\n";
  out += "dims=" + doc.dims + "\n";
  for (const auto& t : doc.texts) out += "text=" + t + "\n";
  return out;
}

}  // namespace

Result<Bytes> svg_to_png_svglite(std::string_view svg) {
  SvgDoc doc = parse_svg(svg, /*resolve_external=*/true);
  return render_png(doc);
}

Result<Bytes> svg_to_png_cairolite(std::string_view svg) {
  SvgDoc doc = parse_svg(svg, /*resolve_external=*/false);
  if (doc.has_external_entity)
    return Err("external entities are forbidden");
  return render_png(doc);
}

uint8_t rsa_keystream_byte(uint64_t key, size_t index) {
  uint64_t x = key * 0x9e3779b97f4a7c15ULL + index * 0xbf58476d1ce4e5b9ULL;
  x ^= x >> 31;
  x *= 0x94d049bb133111ebULL;
  x ^= x >> 29;
  return static_cast<uint8_t>(x & 0xff);
}

Bytes rsa_encrypt(ByteView message, uint64_t key, uint64_t padding_seed) {
  // Block: 00 02 <PS: >=8 nonzero bytes> 00 <message>.
  Bytes block;
  block.push_back('\x00');
  block.push_back('\x02');
  uint64_t s = padding_seed | 1;
  for (int i = 0; i < 8; ++i) {
    s = s * 6364136223846793005ULL + 1442695040888963407ULL;
    uint8_t b = static_cast<uint8_t>((s >> 33) & 0xff);
    if (b == 0) b = 0xa5;
    block.push_back(static_cast<char>(b));
  }
  block.push_back('\x00');
  block.append(message);
  Bytes cipher;
  for (size_t i = 0; i < block.size(); ++i)
    cipher.push_back(static_cast<char>(
        static_cast<uint8_t>(block[i]) ^ rsa_keystream_byte(key, i)));
  return cipher;
}

namespace {
Bytes rsa_raw_decrypt(ByteView ciphertext, uint64_t key) {
  Bytes block;
  for (size_t i = 0; i < ciphertext.size(); ++i)
    block.push_back(static_cast<char>(
        static_cast<uint8_t>(ciphertext[i]) ^ rsa_keystream_byte(key, i)));
  return block;
}
}  // namespace

Result<Bytes> rsa_decrypt_cryptolite(ByteView ciphertext, uint64_t key) {
  Bytes block = rsa_raw_decrypt(ciphertext, key);
  if (block.size() < 11) return Err("decryption failed: block too short");
  if (block[0] != '\x00') return Err("decryption failed: bad leading byte");
  if (block[1] != '\x02') return Err("decryption failed: bad block type");
  size_t sep = block.find('\0', 2);
  if (sep == Bytes::npos) return Err("decryption failed: no separator");
  if (sep - 2 < 8) return Err("decryption failed: padding too short");
  return block.substr(sep + 1);
}

Result<Bytes> rsa_decrypt_rsalite(ByteView ciphertext, uint64_t key) {
  Bytes block = rsa_raw_decrypt(ciphertext, key);
  // BUG (CVE-2020-13757 shape): the leading byte is never checked and a
  // degenerate padding string is accepted, so attacker-crafted blocks that
  // a strict implementation rejects "decrypt" successfully.
  if (block.size() < 3) return Err("decryption failed: block too short");
  if (block[1] != '\x02') return Err("decryption failed: bad block type");
  size_t sep = block.find('\0', 2);
  if (sep == Bytes::npos) return Err("decryption failed: no separator");
  return block.substr(sep + 1);
}

}  // namespace rddr::services::lib
