#include "services/gitlab.h"

#include "common/log.h"
#include "common/strutil.h"

namespace rddr::services {

GitlabApp::GitlabApp(sim::Network& net, sim::Host& host, Options opts)
    : net_(net), host_(host), opts_(std::move(opts)) {
  // puma (rails): the tier that actually talks SQL.
  HttpServer::Options puma_opts;
  puma_opts.address = "puma:8080";
  puma_opts.cpu_per_request = opts_.cpu_per_request;
  puma_ = std::make_unique<HttpServer>(net_, host_, puma_opts);
  puma_->set_handler([this](const http::Request& req, Responder respond) {
    handle_puma(req, respond);
  });

  // workhorse: fronts puma, offloads large payloads (here: pass-through).
  HttpServer::Options wh_opts;
  wh_opts.address = "workhorse:8181";
  wh_opts.cpu_per_request = 20e-6;
  workhorse_ = std::make_unique<HttpServer>(net_, host_, wh_opts);
  workhorse_->set_handler([this](const http::Request& req, Responder respond) {
    auto client = std::make_shared<HttpClient>(net_, "workhorse");
    http::Request fwd = req;
    fwd.raw.clear();
    client->request("puma:8080", std::move(fwd),
                    [respond, client](int status, const http::Response* r) {
                      if (status < 0 || !r) {
                        respond(http::make_response(502, "<h1>502</h1>"));
                        return;
                      }
                      respond(*r);
                    });
  });

  // ingress: an nginx-flavoured reverse proxy in front of workhorse.
  ReverseProxy::Options ing;
  ing.address = opts_.ingress_address;
  ing.backend_address = "workhorse:8181";
  ing.flavor = ReverseProxy::Flavor::kNgx;
  ing.blocked_paths = {"/admin", "/internal"};
  ing.instance_name = "nginx-ingress";
  ingress_ = std::make_unique<ReverseProxy>(net_, host_, ing);

  // Peripheral containers: enough behaviour to be "running" (they answer
  // health checks and trivial requests) — they exist so the deployment
  // has the paper's container count and background traffic.
  auto make_stub = [&](const char* address, const char* banner) {
    HttpServer::Options o;
    o.address = address;
    o.cpu_per_request = 10e-6;
    auto s = std::make_unique<HttpServer>(net_, host_, o);
    std::string b = banner;
    s->set_handler([b](const http::Request& req, Responder respond) {
      if (req.target == "/health")
        respond(http::make_response(200, "ok", "text/plain"));
      else
        respond(http::make_response(200, b, "text/plain"));
    });
    return s;
  };
  shell_ = make_stub("gitlab-shell:2222", "gitlab-shell: ssh endpoint");
  gitaly_ = make_stub("gitaly:8075", "gitaly: repository storage");
  pages_ = make_stub("gitlab-pages:8090", "gitlab-pages");
  registry_ = make_stub("registry:5000", "container registry");

  if (opts_.sidekiq_interval > 0) schedule_sidekiq();
}

GitlabApp::~GitlabApp() { stop_sidekiq(); }

void GitlabApp::stop_sidekiq() {
  if (sidekiq_event_) {
    net_.simulator().cancel(sidekiq_event_);
    sidekiq_event_ = 0;
  }
}

void GitlabApp::schedule_sidekiq() {
  if (opts_.sidekiq_max_jobs > 0 && sidekiq_jobs_ >= opts_.sidekiq_max_jobs)
    return;
  sidekiq_event_ = net_.simulator().schedule(opts_.sidekiq_interval, [this] {
    sidekiq_event_ = 0;
    // Background job: refresh project statistics.
    auto client = std::make_shared<sqldb::PgClient>(
        net_, "sidekiq", opts_.db_address, "gitlab",
        strformat("sidekiq-%llu",
                  static_cast<unsigned long long>(sidekiq_jobs_)));
    ++sidekiq_jobs_;
    client->query("SELECT count(*) FROM projects;",
                  [this, client](sqldb::QueryOutcome out) {
                    client->close();
                    if (out.failed()) ++sidekiq_failures_;
                  });
    schedule_sidekiq();
  });
}

void GitlabApp::init_schema(sqldb::Database& db) {
  sqldb::Session s(db, "postgres");
  auto r = s.execute(
      "CREATE TABLE projects (id int, name text, owner_name text);"
      "CREATE TABLE users (id int, username text);"
      "INSERT INTO users VALUES (1,'alice'),(2,'bob'),(3,'mallory');"
      "INSERT INTO projects VALUES (1,'kernel','alice'),(2,'www','bob'),"
      "(3,'infra','alice');"
      "GRANT SELECT ON projects TO gitlab;"
      "GRANT INSERT ON projects TO gitlab;"
      "GRANT SELECT ON users TO gitlab;");
  for (const auto& sr : r.statements) {
    if (sr.failed()) RDDR_LOG_ERROR("gitlab schema: %s", sr.error_message.c_str());
  }
}

void GitlabApp::handle_puma(const http::Request& req, Responder respond) {
  std::string flow = strformat(
      "puma-%llu", static_cast<unsigned long long>(puma_flow_counter_++));
  if (req.target == "/projects" && req.method == "GET") {
    auto client = std::make_shared<sqldb::PgClient>(
        net_, "puma", opts_.db_address, "gitlab", flow);
    client->query(
        "SELECT id, name FROM projects ORDER BY id;",
        [respond, client](sqldb::QueryOutcome out) {
          client->close();
          if (out.failed()) {
            respond(http::make_response(500, "<h1>DB error</h1>"));
            return;
          }
          std::string page = "<html><body><h1>Projects</h1><ul>\n";
          for (const auto& row : out.rows)
            page += "<li>" + row[0].value_or("?") + ": " +
                    row[1].value_or("?") + "</li>\n";
          page += "</ul></body></html>\n";
          respond(http::make_response(200, page));
        });
    return;
  }
  if (starts_with(req.target, "/projects/create") && req.method == "POST") {
    std::string name = "unnamed";
    for (const auto& [k, v] : parse_form(req.body))
      if (k == "name") name = v;
    auto client = std::make_shared<sqldb::PgClient>(
        net_, "puma", opts_.db_address, "gitlab", flow);
    std::string safe = replace_all(name, "'", "''");
    client->query(
        "INSERT INTO projects (id, name, owner_name) VALUES "
        "(99, '" + safe + "', 'web');",
        [respond, client](sqldb::QueryOutcome out) {
          client->close();
          if (out.failed()) {
            respond(http::make_response(500, "<h1>DB error</h1>"));
            return;
          }
          respond(http::make_response(201, "<h1>created</h1>"));
        });
    return;
  }
  if (req.target == "/health") {
    respond(http::make_response(200, "ok", "text/plain"));
    return;
  }
  respond(http::make_response(404, "<h1>404</h1>"));
}

}  // namespace rddr::services
