#include "services/rest_service.h"

#include "common/strutil.h"
#include "proto/json/json.h"
#include "services/variant_libs.h"

namespace rddr::services {

namespace {

http::Response json_response(int status, json::Object obj) {
  return http::make_response(status, json::Value(std::move(obj)).dump(),
                             "application/json");
}

http::Response json_error(int status, std::string message) {
  return json_response(status, json::Object{{"error", std::move(message)}});
}

}  // namespace

std::string RestLibraryService::endpoint(Kind kind) {
  switch (kind) {
    case Kind::kMarkdown: return "/render";
    case Kind::kSanitizer: return "/sanitize";
    case Kind::kSvg: return "/convert";
    case Kind::kRsa: return "/decrypt";
  }
  return "/";
}

RestLibraryService::RestLibraryService(sim::Network& net, sim::Host& host,
                                       Options opts)
    : opts_(std::move(opts)) {
  HttpServer::Options sopts;
  sopts.address = opts_.address;
  sopts.cpu_per_request = opts_.cpu_per_request;
  server_ = std::make_unique<HttpServer>(net, host, sopts);
  server_->set_handler([this](const http::Request& req, Responder respond) {
    handle(req, respond);
  });
}

void RestLibraryService::handle(const http::Request& req, Responder respond) {
  if (req.method != "POST" || req.target != endpoint(opts_.kind)) {
    respond(json_error(404, "unknown endpoint"));
    return;
  }
  auto doc = json::parse(req.body);
  if (!doc || !doc->is_object()) {
    respond(json_error(400, "body must be a JSON object"));
    return;
  }
  auto input_field = [&](const char* name) -> const std::string* {
    const json::Value* v = doc->find(name);
    return v && v->is_string() ? &v->as_string() : nullptr;
  };

  switch (opts_.kind) {
    case Kind::kMarkdown: {
      const std::string* md = input_field("markdown");
      if (!md) {
        respond(json_error(400, "missing field: markdown"));
        return;
      }
      std::string html = opts_.library == "mdtwo"
                             ? lib::md_render_mdtwo(*md)
                             : lib::md_render_mdone(*md);
      respond(json_response(200, json::Object{{"html", std::move(html)}}));
      return;
    }
    case Kind::kSanitizer: {
      const std::string* html = input_field("html");
      if (!html) {
        respond(json_error(400, "missing field: html"));
        return;
      }
      std::string clean = opts_.library == "lxmllite"
                              ? lib::sanitize_lxmllite(*html)
                              : lib::sanitize_sanihtml(*html);
      respond(json_response(200, json::Object{{"html", std::move(clean)}}));
      return;
    }
    case Kind::kSvg: {
      const std::string* svg = input_field("svg");
      if (!svg) {
        respond(json_error(400, "missing field: svg"));
        return;
      }
      Result<Bytes> png = opts_.library == "svglite"
                              ? lib::svg_to_png_svglite(*svg)
                              : lib::svg_to_png_cairolite(*svg);
      if (!png.ok()) {
        respond(json_error(422, png.error()));
        return;
      }
      respond(json_response(
          200, json::Object{{"png_hex", to_hex(png.value())}}));
      return;
    }
    case Kind::kRsa: {
      const std::string* hex = input_field("ciphertext_hex");
      if (!hex) {
        respond(json_error(400, "missing field: ciphertext_hex"));
        return;
      }
      Bytes cipher = from_hex(*hex);
      if (cipher.empty() && !hex->empty()) {
        respond(json_error(400, "malformed hex"));
        return;
      }
      Result<Bytes> plain =
          opts_.library == "rsalite"
              ? lib::rsa_decrypt_rsalite(cipher, opts_.rsa_key)
              : lib::rsa_decrypt_cryptolite(cipher, opts_.rsa_key);
      if (!plain.ok()) {
        respond(json_error(422, plain.error()));
        return;
      }
      respond(json_response(
          200, json::Object{{"plaintext", plain.value()}}));
      return;
    }
  }
  respond(json_error(500, "unreachable"));
}

}  // namespace rddr::services
