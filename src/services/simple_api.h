// "S1": the internal API service behind the reverse proxies (paper §V-C1).
//
// Exposes a public endpoint and an /admin endpoint that must only ever be
// reached by deployment-internal callers; the reverse proxies enforce that
// with a path ACL. Its request parser is LENIENT about Transfer-Encoding
// whitespace (gunicorn-style), which completes the CVE-2019-18277 framing
// disagreement.
#pragma once

#include <memory>
#include <string>

#include "services/http_service.h"

namespace rddr::services {

class SimpleApiService {
 public:
  struct Options {
    std::string address;
    std::string admin_secret = "SECRET-ADMIN-TOKEN-4242";
    double cpu_per_request = 20e-6;
  };

  SimpleApiService(sim::Network& net, sim::Host& host, Options opts);

  uint64_t admin_hits() const { return admin_hits_; }

 private:
  Options opts_;
  std::unique_ptr<HttpServer> server_;
  uint64_t admin_hits_ = 0;
};

}  // namespace rddr::services
