#include "services/echo_vuln.h"

#include <memory>

#include "common/strutil.h"

namespace rddr::services {

namespace {
// Non-ASLR builds load at a fixed base (what `-no-pie` would give you).
constexpr uint64_t kFixedBase = 0x0000555555554000ULL;
}  // namespace

EchoVulnServer::EchoVulnServer(sim::Network& net, sim::Host& host,
                               Options opts)
    : net_(net), host_(host), opts_(std::move(opts)) {
  Rng rng(opts_.rng_seed);
  uint64_t base = kFixedBase;
  if (opts_.aslr) {
    // Model mmap-region ASLR: 28 random bits, page aligned.
    base = 0x00007f0000000000ULL | ((rng.next() & 0x0fffffffULL) << 12);
  }
  adjacent_pointer_ = base + 0x1337;  // "return address" next to the buffer
  net_.listen(opts_.address, [this](sim::ConnPtr c) { on_accept(std::move(c)); });
}

EchoVulnServer::~EchoVulnServer() { net_.unlisten(opts_.address); }

void EchoVulnServer::on_accept(sim::ConnPtr conn) {
  auto buf = std::make_shared<Bytes>();
  conn->set_on_data([this, conn, buf](ByteView data) {
    buf->append(data);
    size_t nl;
    while ((nl = buf->find('\n')) != Bytes::npos) {
      std::string msg = buf->substr(0, nl);
      buf->erase(0, nl + 1);
      host_.run_task(opts_.cpu_per_request, [this, conn, msg] {
        if (!conn->is_open()) return;
        Bytes reply;
        if (msg.size() <= opts_.buffer_size) {
          reply = msg;
        } else {
          // Overflow: the NUL terminator is gone, so the echo walks off the
          // end of the buffer and prints the adjacent pointer bytes.
          reply = msg.substr(0, opts_.buffer_size);
          reply += strformat("%016llx",
                             static_cast<unsigned long long>(adjacent_pointer_));
        }
        reply += '\n';
        conn->send(SharedBytes(std::move(reply)));
      });
    }
  });
}

}  // namespace rddr::services
