// Plain TCP front proxy ("envoy" role in Fig 5): accepts connections,
// opens one backend connection each, and pipes bytes both ways. No
// replication, no diffing — it isolates the cost of simply being proxied,
// which is the baseline the paper compares RDDR against.
#pragma once

#include <string>

#include "netsim/host.h"
#include "netsim/network.h"

namespace rddr::services {

class TcpProxy {
 public:
  struct Options {
    std::string address;
    std::string backend_address;
    /// CPU charged per chunk relayed (a light L4 proxy).
    double cpu_per_chunk = 3e-6;
    double cpu_per_byte = 1e-9;
    int64_t base_memory_bytes = 16LL << 20;
    std::string name = "envoy";
  };

  TcpProxy(sim::Network& net, sim::Host& host, Options opts);
  ~TcpProxy();
  TcpProxy(const TcpProxy&) = delete;
  TcpProxy& operator=(const TcpProxy&) = delete;

  uint64_t bytes_relayed() const { return bytes_relayed_; }

 private:
  void on_accept(sim::ConnPtr conn);

  sim::Network& net_;
  sim::Host& host_;
  Options opts_;
  uint64_t bytes_relayed_ = 0;
};

}  // namespace rddr::services
