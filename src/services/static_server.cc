#include "services/static_server.h"

#include "common/strutil.h"
#include "proto/http/coding.h"
#include "sqldb/engine.h"  // compare_versions

namespace rddr::services {

StaticFileServer::StaticFileServer(sim::Network& net, sim::Host& host,
                                   Options opts)
    : opts_(std::move(opts)) {
  HttpServer::Options sopts;
  sopts.address = opts_.address;
  sopts.cpu_per_request = opts_.cpu_per_request;
  server_ = std::make_unique<HttpServer>(net, host, sopts);
  server_->set_handler([this](const http::Request& req, Responder respond) {
    respond(handle(req));
  });
}

bool StaticFileServer::vulnerable() const {
  return sqldb::compare_versions(opts_.version, "1.13.3") < 0;
}

void StaticFileServer::add_document(const std::string& path, Bytes content,
                                    Bytes cache_header) {
  if (cache_header.empty()) {
    cache_header = "KEY: internal-upstream-key-0xDEAD; srv=10.0.0.7:8443; "
                   "auth=Bearer cache-secret-token\n";
  }
  CacheEntry entry;
  entry.doc_offset = cache_header.size();
  entry.slab = std::move(cache_header);
  entry.slab += content;
  docs_[path] = std::move(entry);
}

http::Response StaticFileServer::handle(const http::Request& req) const {
  if (req.method != "GET" && req.method != "HEAD")
    return http::make_response(405, "method not allowed", "text/plain");
  auto it = docs_.find(req.target);
  if (it == docs_.end())
    return http::make_response(404, "<h1>404 Not Found</h1>");
  const CacheEntry& entry = it->second;
  auto range = req.headers.get("Range");
  if (range) return serve_ranges(entry, *range);
  http::Response resp = http::make_response(
      200, ByteView(entry.slab).substr(entry.doc_offset), "text/html");
  resp.headers.set("Server", "wsgx/" + opts_.version);
  auto accept = req.headers.get("Accept-Encoding");
  if (accept && ifind(*accept, "xz77") != std::string::npos) {
    resp.body = http::xz77_compress(resp.body);
    resp.headers.set("Content-Encoding", "xz77");
    resp.headers.set("Content-Length", std::to_string(resp.body.size()));
  }
  return resp;
}

http::Response StaticFileServer::serve_ranges(
    const CacheEntry& entry, const std::string& range_value) const {
  const int64_t doc_size =
      static_cast<int64_t>(entry.slab.size() - entry.doc_offset);
  auto ranges = http::parse_range_header(range_value);
  if (!ranges) {
    // Unparseable Range headers are ignored (full response), per RFC.
    http::Response resp = http::make_response(
        200, ByteView(entry.slab).substr(entry.doc_offset), "text/html");
    resp.headers.set("Server", "wsgx/" + opts_.version);
    return resp;
  }

  Bytes body;
  for (const auto& r : *ranges) {
    int64_t start, end;  // [start, end) relative to document
    if (r.first == -1) {
      // Suffix range "-N": start = size - N. nginx <= 1.13.2 computed this
      // WITHOUT checking N <= size, so a huge N drives start negative and
      // the read begins inside the cache header. That is CVE-2017-7529.
      start = doc_size - r.last;
      end = doc_size;
      if (!vulnerable()) {
        if (r.last > doc_size) start = 0;  // fixed: clamp to the document
      }
    } else {
      start = r.first;
      end = (r.last == -1) ? doc_size : r.last + 1;
      if (start >= doc_size)
        return http::make_response(416, "range not satisfiable", "text/plain");
      if (end > doc_size) end = doc_size;
    }
    // Translate to slab offsets. The vulnerable build lets `start` be
    // negative, which lands before doc_offset — inside the header.
    int64_t slab_start = static_cast<int64_t>(entry.doc_offset) + start;
    int64_t slab_end = static_cast<int64_t>(entry.doc_offset) + end;
    if (slab_start < 0) slab_start = 0;  // even nginx can't read before the slab
    if (slab_start > slab_end || slab_end > static_cast<int64_t>(entry.slab.size()))
      return http::make_response(416, "range not satisfiable", "text/plain");
    body.append(entry.slab, static_cast<size_t>(slab_start),
                static_cast<size_t>(slab_end - slab_start));
  }
  http::Response resp;
  resp.status = 206;
  resp.reason = http::reason_phrase(206);
  resp.headers.set("Content-Type", "text/html");
  resp.headers.set("Server", "wsgx/" + opts_.version);
  resp.headers.set("Content-Length", std::to_string(body.size()));
  resp.body = std::move(body);
  return resp;
}

}  // namespace rddr::services
