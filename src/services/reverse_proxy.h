// Reverse proxies "hap" and "ngx" (paper §V-C1, CVE-2019-18277).
//
// Both enforce a path ACL (deny /admin from outside) and then forward the
// ORIGINAL request bytes to the backend, piping the backend's bytes back —
// the way HAProxy operates in tunnel mode after inspecting the first
// request. The security-relevant difference is the framing parser:
//
//   hap (HAProxy 1.5.3): strict-whitespace Transfer-Encoding recognition —
//       a "\x0bchunked" value is NOT chunked, so Content-Length frames the
//       message and a smuggled request hides inside the body. It forwards
//       the whole thing. The (lenient) backend then sees TWO requests, the
//       second of which bypasses the ACL.
//
//   ngx (nginx): lenient parsing BUT rejects messages that carry both a
//       chunked Transfer-Encoding and a Content-Length — the request never
//       reaches the backend; the client gets 400.
//
// RDDR sees the two proxies return different bytes and intervenes.
#pragma once

#include <memory>
#include <set>
#include <string>

#include "netsim/host.h"
#include "netsim/network.h"
#include "proto/http/parser.h"

namespace rddr::services {

class ReverseProxy {
 public:
  enum class Flavor { kHap153, kNgx };

  struct Options {
    std::string address;
    std::string backend_address;
    Flavor flavor = Flavor::kHap153;
    /// Request paths denied at the proxy (403).
    std::set<std::string> blocked_paths = {"/admin"};
    double cpu_per_request = 10e-6;
    /// Label stamped on backend connections (outgoing-proxy grouping).
    std::string instance_name = "proxy";
  };

  ReverseProxy(sim::Network& net, sim::Host& host, Options opts);
  ~ReverseProxy();

  const Options& options() const { return opts_; }

 private:
  struct Session;
  void on_accept(sim::ConnPtr conn);
  void handle_parsed(const std::shared_ptr<Session>& s);

  sim::Network& net_;
  sim::Host& host_;
  Options opts_;
  http::ParserOptions parser_opts_;
};

}  // namespace rddr::services
