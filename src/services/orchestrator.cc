#include "services/orchestrator.h"

#include <stdexcept>

#include "common/rng.h"
#include "common/strutil.h"

namespace rddr::services {

namespace {

// Local FNV-1a so volume seeds depend only on the orchestrator seed and
// the container name (stable across runs, not on std::hash).
uint64_t fnv1a64(std::string_view s) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (unsigned char ch : s) {
    h ^= ch;
    h *= 0x100000001b3ULL;
  }
  return h;
}

}  // namespace

Orchestrator::Orchestrator(sim::Simulator& sim, sim::Network& net,
                           uint64_t seed)
    : sim_(sim), net_(net), seed_(seed) {}

Orchestrator::Volume& Orchestrator::volume(const std::string& container_name) {
  auto it = volumes_.find(container_name);
  if (it != volumes_.end()) return it->second;
  Volume v;
  sim::BlockDevice::Options opts = volume_template_;
  opts.rng_seed = Rng(seed_).fork(fnv1a64(container_name)).next();
  v.data = std::make_shared<sim::BlockDevice>(opts);
  opts.rng_seed = Rng(opts.rng_seed).fork(0x57A1ULL).next();
  v.wal = std::make_shared<sim::BlockDevice>(opts);
  return volumes_.emplace(container_name, std::move(v)).first->second;
}

sim::Host& Orchestrator::add_host(const std::string& name, int cores,
                                  int64_t memory_bytes) {
  auto [it, inserted] = hosts_.emplace(
      name, std::make_unique<sim::Host>(sim_, name, cores, memory_bytes));
  if (!inserted) throw std::runtime_error("host already exists: " + name);
  return *it->second;
}

sim::Host& Orchestrator::host(const std::string& name) {
  auto it = hosts_.find(name);
  if (it == hosts_.end()) throw std::runtime_error("unknown host: " + name);
  return *it->second;
}

void Orchestrator::register_image(const std::string& image, Factory factory) {
  images_[image] = std::move(factory);
}

void Orchestrator::deploy(const std::string& container_name,
                          const std::string& image, const std::string& tag,
                          const std::string& host_name,
                          const std::string& address) {
  if (containers_.count(container_name) > 0)
    throw std::runtime_error("container already exists: " + container_name);
  auto img = images_.find(image);
  if (img == images_.end())
    throw std::runtime_error("unknown image: " + image);
  ContainerSpec spec;
  spec.container_name = container_name;
  spec.image = image;
  spec.tag = tag;
  spec.address = address.empty() ? container_name + ":80" : address;
  spec.host = &host(host_name);
  // Derive a unique, deterministic per-container seed.
  Rng mix(seed_);
  spec.rng_seed = mix.fork(next_container_ordinal_++).next() ^
                  std::hash<std::string>()(container_name);
  Deployed d;
  d.object = img->second(spec);
  d.spec = spec;
  d.host = host_name;
  containers_.emplace(container_name, std::move(d));
}

std::vector<std::string> Orchestrator::deploy_replicas(
    const std::string& base_name, const std::string& image,
    const std::vector<std::string>& tags, const std::string& host_name,
    int port) {
  std::vector<std::string> addresses;
  for (size_t i = 0; i < tags.size(); ++i) {
    std::string name = strformat("%s-%zu", base_name.c_str(), i);
    std::string address = strformat("%s:%d", name.c_str(), port);
    deploy(name, image, tags[i], host_name, address);
    addresses.push_back(address);
  }
  return addresses;
}

void Orchestrator::stop(const std::string& container_name) {
  auto it = containers_.find(container_name);
  if (it == containers_.end()) return;
  std::string node = sim::Network::node_of(it->second.spec.address);
  if (it->second.crashed) net_.restart_node(node);
  // A stopped container's sockets die with it: sever its connections
  // before destroying the object, or an in-flight delivery would land in
  // a handler that captures the freed service. (crash() already severs.)
  net_.sever_node(node);
  containers_.erase(container_name);
}

void Orchestrator::crash(const std::string& container_name) {
  auto it = containers_.find(container_name);
  if (it == containers_.end())
    throw std::runtime_error("unknown container: " + container_name);
  Deployed& d = it->second;
  if (d.crashed) return;
  d.crashed = true;
  d.object.reset();  // process gone: in-memory state and listener lost
  net_.crash_node(sim::Network::node_of(d.spec.address));
  // The volume survives, but anything staged and unsynced is subject to
  // the device fault model (torn pages, lost writes).
  auto vit = volumes_.find(container_name);
  if (vit != volumes_.end()) {
    vit->second.data->crash();
    vit->second.wal->crash();
  }
  if (replacement_policy_.auto_replace) {
    sim_.schedule(replacement_policy_.replace_delay, [this, container_name] {
      auto rit = containers_.find(container_name);
      if (rit == containers_.end() || !rit->second.crashed) return;
      std::string new_address = replace(container_name);
      if (replacement_policy_.on_replaced)
        replacement_policy_.on_replaced(container_name,
                                        sim::Network::node_of(new_address),
                                        new_address);
    });
  } else if (restart_policy_.auto_restart) {
    sim_.schedule(restart_policy_.restart_delay,
                  [this, container_name] {
                    if (containers_.count(container_name) > 0)
                      restart(container_name);
                  });
  }
}

void Orchestrator::restart(const std::string& container_name) {
  auto it = containers_.find(container_name);
  if (it == containers_.end())
    throw std::runtime_error("unknown container: " + container_name);
  Deployed& d = it->second;
  if (!d.crashed) return;
  net_.restart_node(sim::Network::node_of(d.spec.address));
  // A fresh incarnation must not replay its previous life's randomness:
  // fork the base seed by the restart count (deterministic across runs,
  // distinct across incarnations). d.spec keeps the base seed.
  ++d.incarnation;
  ContainerSpec spec = d.spec;
  Rng remix(d.spec.rng_seed);
  spec.rng_seed = remix.fork(d.incarnation).next();
  d.object = images_.at(d.spec.image)(spec);
  d.crashed = false;
}

std::string Orchestrator::replace(const std::string& container_name) {
  auto it = containers_.find(container_name);
  if (it == containers_.end())
    throw std::runtime_error("unknown container: " + container_name);
  const Deployed& old = it->second;
  // Lineage base: strip an existing "-r<k>" suffix so repeated
  // replacement stays "<base>-r1", "<base>-r2", ... forever.
  std::string base = old.spec.container_name;
  size_t pos = base.rfind("-r");
  if (pos != std::string::npos && pos + 2 < base.size() &&
      base.find_first_not_of("0123456789", pos + 2) == std::string::npos)
    base = base.substr(0, pos);
  uint64_t k = ++replace_counts_[base];
  std::string new_name =
      strformat("%s-r%llu", base.c_str(), static_cast<unsigned long long>(k));
  size_t colon = old.spec.address.rfind(':');
  std::string port =
      colon == std::string::npos ? ":80" : old.spec.address.substr(colon);
  std::string new_address = new_name + port;
  std::string image = old.spec.image;
  std::string tag = old.spec.tag;
  std::string host_name = old.host;
  stop(container_name);  // restores the old node if it crashed
  deploy(new_name, image, tag, host_name, new_address);
  return new_address;
}

bool Orchestrator::crashed(const std::string& container_name) const {
  auto it = containers_.find(container_name);
  if (it == containers_.end())
    throw std::runtime_error("unknown container: " + container_name);
  return it->second.crashed;
}

std::vector<std::string> Orchestrator::container_names() const {
  std::vector<std::string> out;
  for (const auto& [name, _] : containers_) out.push_back(name);
  return out;
}

const std::string& Orchestrator::host_of(
    const std::string& container_name) const {
  auto it = containers_.find(container_name);
  if (it == containers_.end())
    throw std::runtime_error("unknown container: " + container_name);
  return it->second.host;
}

}  // namespace rddr::services
