// GitLab-like composite deployment (paper §V-F, Figure 3).
//
// Nine containers mirroring the paper's simplified GitLab architecture:
// ingress (nginx), gitlab-shell, workhorse, puma (rails), sidekiq,
// gitaly, pages, registry — plus the Postgres microservice, which is the
// one component the paper N-versions behind RDDR. The app issues real SQL
// (projects/users) through whatever db address it is given, so pointing
// `db_address` at an RDDR incoming proxy N-versions the database without
// the app noticing.
#pragma once

#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "services/http_service.h"
#include "services/reverse_proxy.h"
#include "sqldb/client.h"
#include "sqldb/engine.h"

namespace rddr::services {

class GitlabApp {
 public:
  struct Options {
    /// Public entry point (the ingress proxy listens here).
    std::string ingress_address = "gitlab:80";
    /// Where the app believes Postgres lives (RDDR incoming proxy when
    /// N-versioned).
    std::string db_address = "gitlab-db:5432";
    /// Sidekiq background-job cadence (0 disables).
    sim::Time sidekiq_interval = 500 * sim::kMillisecond;
    /// Stop after this many background jobs (keeps simulations finite).
    uint64_t sidekiq_max_jobs = 6;
    double cpu_per_request = 150e-6;
  };

  GitlabApp(sim::Network& net, sim::Host& host, Options opts);
  ~GitlabApp();

  /// Initializes the GitLab schema + seed rows on one database replica
  /// (call once per replica, directly against its engine).
  static void init_schema(sqldb::Database& db);

  /// Container count in this composite (the Fig-3 overhead argument).
  size_t container_count() const { return 8; }

  uint64_t sidekiq_jobs_run() const { return sidekiq_jobs_; }
  uint64_t sidekiq_job_failures() const { return sidekiq_failures_; }

  void stop_sidekiq();

 private:
  void handle_puma(const http::Request& req, Responder respond);
  void schedule_sidekiq();

  sim::Network& net_;
  sim::Host& host_;
  Options opts_;
  std::unique_ptr<ReverseProxy> ingress_;      // nginx ingress
  std::unique_ptr<HttpServer> workhorse_;      // request shaping tier
  std::unique_ptr<HttpServer> puma_;           // rails app
  std::unique_ptr<HttpServer> shell_;          // gitlab-shell (ssh facade)
  std::unique_ptr<HttpServer> gitaly_;         // repo storage rpc
  std::unique_ptr<HttpServer> pages_;          // static pages
  std::unique_ptr<HttpServer> registry_;       // container registry
  uint64_t puma_flow_counter_ = 0;
  uint64_t sidekiq_event_ = 0;
  uint64_t sidekiq_jobs_ = 0;
  uint64_t sidekiq_failures_ = 0;
};

}  // namespace rddr::services
