#include "services/simple_api.h"

namespace rddr::services {

SimpleApiService::SimpleApiService(sim::Network& net, sim::Host& host,
                                   Options opts)
    : opts_(std::move(opts)) {
  HttpServer::Options sopts;
  sopts.address = opts_.address;
  sopts.cpu_per_request = opts_.cpu_per_request;
  // Lenient backend framing: isspace() trimming recognises "\x0bchunked".
  sopts.parser.te_whitespace = http::TeWhitespace::kAnyWhitespace;
  sopts.parser.reject_te_and_cl = false;
  server_ = std::make_unique<HttpServer>(net, host, sopts);
  server_->set_handler([this](const http::Request& req, Responder respond) {
    if (req.target == "/admin") {
      // Reachable only by internal callers — the proxies' ACL is the sole
      // guard, which is exactly what request smuggling defeats.
      ++admin_hits_;
      respond(http::make_response(200, opts_.admin_secret, "text/plain"));
      return;
    }
    if (req.target == "/" || req.target == "/api/echo") {
      respond(http::make_response(200, "public ok: " + req.body, "text/plain"));
      return;
    }
    respond(http::make_response(404, "not found", "text/plain"));
  });
}

}  // namespace rddr::services
