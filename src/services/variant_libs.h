// "Library" pairs backing the RESTful diversity experiments (paper §V-A).
//
// Each pair implements the same function with different code: one member
// reproduces the observable bug of the CVE'd library, the other is the
// diverse implementation the paper paired it with. RDDR never inspects the
// internals — only the response bytes — so reproducing the *observable*
// behaviour exercises the identical defence path:
//
//   markdown : mdtwo  (markdown2, CVE-2020-11888 XSS)   vs mdone
//   sanitize : lxmllite (lxml,    CVE-2014-3146 XSS)    vs sanihtml
//   svg2png  : svglite (svglib,   CVE-2020-10799 XXE)   vs cairolite
//   rsa      : rsalite (rsa,      CVE-2020-13757 crypto) vs cryptolite
//
// NOTE on "rsa": this is a SIMULATION of RSA-PKCS#1v1.5 semantics over a
// toy XOR keystream so the padding-validation difference (the CVE) is
// observable without bignum code. It is not cryptography.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/bytes.h"
#include "common/result.h"

namespace rddr::services::lib {

// ---- markdown renderers ----

/// Safe renderer ("markdown"): sanitises link URLs after stripping control
/// characters.
std::string md_render_mdone(std::string_view markdown);

/// Vulnerable renderer ("markdown2", CVE-2020-11888): checks the URL
/// scheme BEFORE stripping control characters, so "java\x01script:" slips
/// through and is emitted as a live javascript: URL.
std::string md_render_mdtwo(std::string_view markdown);

// ---- HTML sanitizers ----

/// Vulnerable sanitizer ("lxml", CVE-2014-3146): does not decode HTML
/// character references before scheme-checking href values, so
/// "java&#10;script:" survives sanitisation.
std::string sanitize_lxmllite(std::string_view html);

/// Safe sanitizer ("sanitize-html", a different-language implementation):
/// decodes entities and strips whitespace/control characters first.
std::string sanitize_sanihtml(std::string_view html);

// ---- SVG -> PNG converters ----

/// Minimal filesystem visible to the XXE bug (path -> contents).
const std::map<std::string, std::string>& xxe_filesystem();

/// Vulnerable converter ("svglib", CVE-2020-10799): resolves external
/// DTD entities, so file:// URIs pull local files into the rendering.
Result<Bytes> svg_to_png_svglite(std::string_view svg);

/// Safe converter ("cairosvg"): refuses documents with external entities.
Result<Bytes> svg_to_png_cairolite(std::string_view svg);

// ---- "RSA" decryption (simulated, see header comment) ----

/// Encrypts with PKCS#1v1.5-style padding over the toy keystream —
/// produces ciphertext both decrypters accept (test/bench helper).
Bytes rsa_encrypt(ByteView message, uint64_t key, uint64_t padding_seed);

/// Strict decrypter ("Crypto"): full padding validation, errors on any
/// malformed block.
Result<Bytes> rsa_decrypt_cryptolite(ByteView ciphertext, uint64_t key);

/// Vulnerable decrypter ("rsa", CVE-2020-13757): skips the leading-byte
/// check and accepts degenerate padding, returning attacker-influenced
/// plaintext where the strict library errors.
Result<Bytes> rsa_decrypt_rsalite(ByteView ciphertext, uint64_t key);

/// The shared toy keystream (exposed for crafting exploit ciphertexts).
uint8_t rsa_keystream_byte(uint64_t key, size_t index);

}  // namespace rddr::services::lib
