#include "services/tcp_proxy.h"

namespace rddr::services {

TcpProxy::TcpProxy(sim::Network& net, sim::Host& host, Options opts)
    : net_(net), host_(host), opts_(std::move(opts)) {
  host_.charge_memory(opts_.base_memory_bytes);
  net_.listen(opts_.address, [this](sim::ConnPtr c) { on_accept(std::move(c)); });
}

TcpProxy::~TcpProxy() {
  net_.unlisten(opts_.address);
  host_.release_memory(opts_.base_memory_bytes);
}

void TcpProxy::on_accept(sim::ConnPtr client) {
  auto backend = net_.connect(opts_.backend_address,
                              {.source = opts_.name,
                               .flow = {.label = client->flow().label}});
  if (!backend) {
    client->close();
    return;
  }
  auto relay = [this](sim::ConnPtr to) {
    return [this, to](ByteView data) {
      bytes_relayed_ += data.size();
      // Charge relay CPU; forward immediately (latency effect of the hop
      // itself is carried by the extra network link).
      host_.run_task(opts_.cpu_per_chunk +
                         static_cast<double>(data.size()) * opts_.cpu_per_byte,
                     nullptr);
      if (to->is_open()) to->send(data);
    };
  };
  client->set_on_data(relay(backend));
  backend->set_on_data(relay(client));
  client->set_on_close([backend] { backend->close(); });
  backend->set_on_close([client] { client->close(); });
}

}  // namespace rddr::services
