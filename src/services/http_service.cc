#include "services/http_service.h"

#include <deque>

#include "common/log.h"

namespace rddr::services {

struct HttpServer::Conn {
  sim::ConnPtr conn;
  http::RequestParser parser;
  std::deque<http::Request> pending;
  bool busy = false;

  explicit Conn(http::ParserOptions opts) : parser(opts) {}
};

HttpServer::HttpServer(sim::Network& net, sim::Host& host, Options opts)
    : net_(net), host_(host), opts_(std::move(opts)) {
  host_.charge_memory(opts_.base_memory_bytes);
  net_.listen(opts_.address, [this](sim::ConnPtr c) { on_accept(std::move(c)); });
}

HttpServer::~HttpServer() {
  net_.unlisten(opts_.address);
  host_.release_memory(opts_.base_memory_bytes);
}

void HttpServer::on_accept(sim::ConnPtr conn) {
  auto c = std::make_shared<Conn>(opts_.parser);
  c->conn = std::move(conn);
  c->conn->set_on_data([this, c](ByteView data) {
    c->parser.feed(data);
    if (c->parser.failed()) {
      // Framing failure: answer 400 and close (the hardened-proxy path).
      auto resp = http::make_response(400, "<h1>400 Bad Request</h1>");
      resp.headers.set("Connection", "close");
      c->conn->send(resp.to_bytes());
      c->conn->close();
      return;
    }
    for (auto& req : c->parser.take()) c->pending.push_back(std::move(req));
    pump(c);
  });
}

void HttpServer::pump(const std::shared_ptr<Conn>& c) {
  if (c->busy || c->pending.empty()) return;
  if (!c->conn->is_open()) {
    c->pending.clear();
    return;
  }
  c->busy = true;
  auto req = std::make_shared<http::Request>(std::move(c->pending.front()));
  c->pending.pop_front();
  host_.run_task(opts_.cpu_per_request, [this, c, req] {
    // The handler runs as a deferred host task, outside the connection
    // handler's ambient flow scope — re-install it so onward dials the
    // handler makes derive their execution index from this request's
    // inbound flow (netsim/network.h).
    sim::FlowScope flow_scope(c->conn.get());
    ++requests_served_;
    auto respond = [this, c](http::Response resp) {
      if (c->conn->is_open()) {
        c->conn->send(SharedBytes(resp.to_bytes()));
        if (opts_.close_after_response) c->conn->close();
      }
      c->busy = false;
      pump(c);
    };
    if (!handler_) {
      respond(http::make_response(503, "<h1>no handler installed</h1>"));
      return;
    }
    handler_(*req, respond);
  });
}

HttpClient::HttpClient(sim::Network& net, std::string source_name)
    : net_(net), source_(std::move(source_name)) {}

void HttpClient::request(const std::string& address, http::Request req,
                         Callback cb) {
  auto conn = net_.connect(address, {.source = source_});
  if (!conn) {
    cb(-1, nullptr);
    return;
  }
  auto parser = std::make_shared<http::ResponseParser>();
  auto done = std::make_shared<bool>(false);
  auto cbp = std::make_shared<Callback>(std::move(cb));
  conn->set_on_data([conn, parser, done, cbp](ByteView data) {
    if (*done) return;
    parser->feed(data);
    if (parser->failed()) {
      *done = true;
      (*cbp)(-1, nullptr);
      conn->close();
      return;
    }
    auto msgs = parser->take();
    if (!msgs.empty()) {
      *done = true;
      (*cbp)(msgs[0].status, &msgs[0]);
      conn->close();
    }
  });
  conn->set_on_close([done, cbp] {
    if (!*done) {
      *done = true;
      (*cbp)(-1, nullptr);
    }
  });
  conn->send(SharedBytes(req.to_bytes()));
}

void HttpClient::get(const std::string& address, const std::string& target,
                     Callback cb) {
  http::Request req;
  req.method = "GET";
  req.target = target;
  req.headers.set("Host", address);
  request(address, std::move(req), std::move(cb));
}

}  // namespace rddr::services
