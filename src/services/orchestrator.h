// Container orchestration lite (the Kubernetes role in the paper).
//
// Provides the two orchestration features RDDR leans on (paper §IV-B):
// replicating containers from a base image (with per-container seeds, so
// "identical image" instances still have independent CSPRNG streams), and
// selecting versions by image tag (paper §V-D: "the deployed version can
// be changed by simply changing the specified version tag").
//
// Containers are type-erased: any service object can be deployed. The
// orchestrator also carries the bookkeeping for the deployment-cost
// arguments (Fig 1 / §VI): container counts and per-container host
// assignment.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "netsim/block_device.h"
#include "netsim/host.h"
#include "netsim/network.h"
#include "netsim/simulator.h"

namespace rddr::services {

/// Everything a factory needs to instantiate a container.
struct ContainerSpec {
  std::string container_name;
  std::string image;
  std::string tag;      // version selector ("10.7", "1.13.2", "low", ...)
  std::string address;  // service address to bind
  sim::Host* host = nullptr;
  uint64_t rng_seed = 0;  // per-container randomness stream
};

class Orchestrator {
 public:
  using Factory =
      std::function<std::shared_ptr<void>(const ContainerSpec& spec)>;

  Orchestrator(sim::Simulator& sim, sim::Network& net, uint64_t seed = 1);

  sim::Simulator& simulator() { return sim_; }
  sim::Network& network() { return net_; }

  /// Adds a machine to the cluster.
  sim::Host& add_host(const std::string& name, int cores,
                      int64_t memory_bytes);
  sim::Host& host(const std::string& name);

  /// Registers an image by name; `tag` arrives via the spec.
  void register_image(const std::string& image, Factory factory);

  /// Deploys one container. Address defaults to "<name>:80" when empty.
  /// Throws std::runtime_error for unknown images/hosts/duplicate names.
  void deploy(const std::string& container_name, const std::string& image,
              const std::string& tag, const std::string& host_name,
              const std::string& address = "");

  /// Deploys N replicas "<base>-0".."<base>-N-1" from image:tag on the
  /// given host; addresses are "<base>-i:<port>". Returns the addresses.
  std::vector<std::string> deploy_replicas(const std::string& base_name,
                                           const std::string& image,
                                           const std::vector<std::string>& tags,
                                           const std::string& host_name,
                                           int port);

  /// Tears a container down (service object destroyed, listener freed).
  void stop(const std::string& container_name);

  /// Crash/restart semantics for fault experiments. `crash` destroys the
  /// service object (in-memory state lost, listener gone) AND marks the
  /// container's network node down, severing live connections with
  /// crash semantics (netsim abort). `restart` brings the node back and
  /// re-runs the image factory with the original spec, except that the
  /// rng_seed is re-derived per incarnation (base seed forked by restart
  /// count): a restarted process must not replay the randomness of its
  /// previous life, but the same crash/restart schedule still reproduces
  /// the same seeds.
  void crash(const std::string& container_name);
  void restart(const std::string& container_name);
  bool crashed(const std::string& container_name) const;

  /// Replaces a container with a freshly named replica of the same
  /// image:tag on the same host — the self-healing move for instances an
  /// RDDR proxy declared dead (restart is useless there: a compromised or
  /// diverged replica needs a new identity and a clean seed). The new
  /// container is "<base>-r<k>" (k increments per lineage; an existing
  /// -r<k> suffix is stripped first, so pg-1 → pg-1-r1 → pg-1-r2), bound
  /// to "<new name>:<old port>", with a fresh deterministic seed. The old
  /// container is stopped (its node restored if crashed). Returns the new
  /// container's address.
  std::string replace(const std::string& container_name);

  /// Kubernetes-style restartPolicy: when enabled, a crashed container is
  /// automatically restarted `restart_delay` after the crash.
  struct RestartPolicy {
    bool auto_restart = false;
    sim::Time restart_delay = 2 * sim::kSecond;
  };
  void set_restart_policy(RestartPolicy policy) { restart_policy_ = policy; }

  /// Deployment-style replacement: when enabled, a crashed container is
  /// automatically replaced (see `replace`) `replace_delay` after the
  /// crash. Takes precedence over RestartPolicy when both are enabled.
  /// `on_replaced` lets the wiring layer re-point proxies at the new
  /// address (NVersionDeployment::replace_instance).
  struct ReplacementPolicy {
    bool auto_replace = false;
    sim::Time replace_delay = 2 * sim::kSecond;
    std::function<void(const std::string& old_name,
                       const std::string& new_name,
                       const std::string& new_address)>
        on_replaced;
  };
  void set_replacement_policy(ReplacementPolicy policy) {
    replacement_policy_ = std::move(policy);
  }

  /// Persistent volume claim: a pair of block devices (data + WAL) owned
  /// by the orchestrator and keyed by container name. Unlike the service
  /// object, a volume survives crash/restart — that is what makes the
  /// durable-storage recovery path real: the restarted incarnation's
  /// image factory finds the previous life's blocks. A replacement
  /// container (new name) lazily gets a fresh, empty volume.
  struct Volume {
    std::shared_ptr<sim::BlockDevice> data;
    std::shared_ptr<sim::BlockDevice> wal;
  };

  /// Returns the container's volume, creating it (empty, deterministically
  /// seeded from the orchestrator seed and the name) on first use.
  Volume& volume(const std::string& container_name);
  bool has_volume(const std::string& container_name) const {
    return volumes_.count(container_name) > 0;
  }

  /// Device template applied to volumes created after this call: fault
  /// probabilities and latencies for the chaos harness. (rng_seed and
  /// page_size are still derived per volume.)
  void set_volume_options(sim::BlockDevice::Options opts) {
    volume_template_ = opts;
  }

  /// Fetches the deployed service object (caller supplies the type).
  template <typename T>
  std::shared_ptr<T> get(const std::string& container_name) {
    auto it = containers_.find(container_name);
    if (it == containers_.end()) return nullptr;
    return std::static_pointer_cast<T>(it->second.object);
  }

  size_t container_count() const { return containers_.size(); }
  std::vector<std::string> container_names() const;

  /// Per-container memory/cpu attribution happens inside the services;
  /// this reports which host a container landed on.
  const std::string& host_of(const std::string& container_name) const;

 private:
  struct Deployed {
    std::shared_ptr<void> object;
    ContainerSpec spec;  // remembered so crash → restart can re-run the factory
    std::string host;
    bool crashed = false;
    uint64_t incarnation = 0;  // restarts so far (seed derivation input)
  };

  sim::Simulator& sim_;
  sim::Network& net_;
  uint64_t seed_;
  uint64_t next_container_ordinal_ = 1;
  std::map<std::string, std::unique_ptr<sim::Host>> hosts_;
  std::map<std::string, Factory> images_;
  std::map<std::string, Deployed> containers_;
  RestartPolicy restart_policy_;
  ReplacementPolicy replacement_policy_;
  std::map<std::string, Volume> volumes_;
  sim::BlockDevice::Options volume_template_;
  /// Replacements per lineage base name ("pg-1" for pg-1, pg-1-r1, ...).
  std::map<std::string, uint64_t> replace_counts_;
};

}  // namespace rddr::services
