#include "services/dvwa.h"

#include "common/strutil.h"

namespace rddr::services {

DvwaApp::DvwaApp(sim::Network& net, sim::Host& host, Options opts)
    : net_(net), opts_(std::move(opts)), rng_(opts_.rng_seed) {
  HttpServer::Options sopts;
  sopts.address = opts_.address;
  sopts.cpu_per_request = opts_.cpu_per_request;
  server_ = std::make_unique<HttpServer>(net, host, sopts);
  server_->set_handler([this](const http::Request& req, Responder respond) {
    handle(req, respond);
  });
}

std::string DvwaApp::build_query(const std::string& id) const {
  std::string value = id;
  if (opts_.security == Security::kHigh) {
    // Standard quote-doubling sanitisation: the injection becomes inert.
    value = replace_all(value, "'", "''");
  }
  return "SELECT first_name, last_name FROM users WHERE user_id = '" + value +
         "' ORDER BY first_name, last_name;";
}

void DvwaApp::handle(const http::Request& req, Responder respond) {
  if (req.target == "/vulnerabilities/sqli" ||
      starts_with(req.target, "/vulnerabilities/sqli?")) {
    if (req.method == "GET") {
      handle_sqli_get(std::move(respond));
      return;
    }
    if (req.method == "POST") {
      handle_sqli_post(req, std::move(respond));
      return;
    }
  }
  if (req.target == "/" && req.method == "GET") {
    respond(http::make_response(
        200, "<html><body><h1>DVWA-sim</h1>"
             "<a href=\"/vulnerabilities/sqli\">SQL Injection</a>"
             "</body></html>"));
    return;
  }
  respond(http::make_response(404, "<h1>404</h1>"));
}

void DvwaApp::handle_sqli_get(Responder respond) {
  // Fresh CSRF token per page view, from this instance's own CSPRNG —
  // the ephemeral state RDDR's HTTP plugin must manage (paper §IV-B3).
  std::string token = rng_.alnum_token(32);
  live_tokens_.insert(token);
  ++tokens_issued_;
  std::string page =
      "<html><body>\n"
      "<h2>Vulnerability: SQL Injection</h2>\n"
      "<form action=\"/vulnerabilities/sqli\" method=\"POST\">\n"
      "<input type=\"text\" name=\"id\">\n"
      "<input type=\"hidden\" name=\"user_token\" value=\"" + token + "\">\n"
      "<input type=\"submit\" name=\"Submit\" value=\"Submit\">\n"
      "</form>\n"
      "</body></html>\n";
  respond(http::make_response(200, page));
}

void DvwaApp::handle_sqli_post(const http::Request& req, Responder respond) {
  std::string id, token;
  for (const auto& [k, v] : parse_form(req.body)) {
    if (k == "id") id = v;
    if (k == "user_token") token = v;
  }
  auto it = live_tokens_.find(token);
  if (it == live_tokens_.end()) {
    ++token_failures_;
    respond(http::make_response(403, "<h1>CSRF token is incorrect</h1>"));
    return;
  }
  live_tokens_.erase(it);  // tokens are single-use

  // Flow label: the outgoing proxy groups the N instances' DB connections
  // for the SAME logical request by this label. Every instance sees the
  // identical replicated request stream, so a per-instance POST ordinal is
  // a consistent label across instances.
  std::string flow = strformat("sqli-%llu",
                               static_cast<unsigned long long>(sqli_posts_++));
  auto client = std::make_shared<sqldb::PgClient>(
      net_, opts_.instance_name, opts_.db_address, "dvwa", flow);
  std::string sql = build_query(id);
  client->query(sql, [respond, client](sqldb::QueryOutcome out) {
    client->close();
    if (out.connection_lost) {
      respond(http::make_response(
          500, "<h1>Database connection failed</h1>"));
      return;
    }
    if (out.error_sqlstate) {
      respond(http::make_response(
          500, "<h1>Query error</h1><pre>" + out.error_message + "</pre>"));
      return;
    }
    std::string page = "<html><body><h2>Results</h2>\n<table>\n";
    for (const auto& row : out.rows) {
      page += "<tr>";
      for (const auto& col : row)
        page += "<td>" + (col ? *col : std::string("NULL")) + "</td>";
      page += "</tr>\n";
    }
    page += "</table>\n</body></html>\n";
    respond(http::make_response(200, page));
  });
}

}  // namespace rddr::services
