// "wsgx" static file server with the CVE-2017-7529 range bug (paper §V-D).
//
// Models nginx's cache layout: each document lives in a cache slab as
// [cache header | document bytes]. The cache header holds data a client
// must never see (upstream keys, internal addresses). nginx <= 1.13.2
// computed the response size for multi-range/suffix-range requests in a
// signed integer that could go negative; the resulting offset walked
// backwards into the cache header, leaking it. wsgx reproduces exactly
// that arithmetic for versions < 1.13.3 and validates it from 1.13.3 on.
//
// Version is selected with Options::version, mirroring how Docker image
// tags select the deployed build (paper §V-D on version diversity).
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "services/http_service.h"

namespace rddr::services {

class StaticFileServer {
 public:
  struct Options {
    std::string address;
    /// "1.13.2" is vulnerable; "1.13.3"+ validates ranges.
    std::string version = "1.13.2";
    double cpu_per_request = 30e-6;
  };

  /// Full (non-range) responses are served with `Content-Encoding: xz77`
  /// when the client offers it via Accept-Encoding — which exercises
  /// RDDR's decompress-before-diff path (paper §IV-B1).
  StaticFileServer(sim::Network& net, sim::Host& host, Options opts);

  /// Registers a document. `cache_header` is the secret slab prefix; a
  /// default is synthesized when empty.
  void add_document(const std::string& path, Bytes content,
                    Bytes cache_header = {});

  const std::string& version() const { return opts_.version; }
  bool vulnerable() const;

 private:
  struct CacheEntry {
    Bytes slab;         // header + content
    size_t doc_offset;  // where the document starts in the slab
  };

  http::Response handle(const http::Request& req) const;
  http::Response serve_ranges(const CacheEntry& entry,
                              const std::string& range_value) const;

  Options opts_;
  std::map<std::string, CacheEntry> docs_;
  std::unique_ptr<HttpServer> server_;
};

}  // namespace rddr::services
