#include "services/reverse_proxy.h"

#include "common/log.h"
#include "proto/http/message.h"

namespace rddr::services {

struct ReverseProxy::Session {
  sim::ConnPtr client;
  sim::ConnPtr backend;
  http::RequestParser parser;
  bool refused = false;

  explicit Session(http::ParserOptions opts) : parser(opts) {}
};

ReverseProxy::ReverseProxy(sim::Network& net, sim::Host& host, Options opts)
    : net_(net), host_(host), opts_(std::move(opts)) {
  if (opts_.flavor == Flavor::kHap153) {
    // HAProxy 1.5.3: RFC-strict whitespace (ironically the vulnerable
    // choice here) and no TE+CL cross-check.
    parser_opts_.te_whitespace = http::TeWhitespace::kStrictHttp;
    parser_opts_.reject_te_and_cl = false;
  } else {
    // nginx: trims lazily but refuses TE+CL combinations.
    parser_opts_.te_whitespace = http::TeWhitespace::kAnyWhitespace;
    parser_opts_.reject_te_and_cl = true;
  }
  net_.listen(opts_.address, [this](sim::ConnPtr c) { on_accept(std::move(c)); });
}

ReverseProxy::~ReverseProxy() { net_.unlisten(opts_.address); }

void ReverseProxy::on_accept(sim::ConnPtr conn) {
  auto s = std::make_shared<Session>(parser_opts_);
  s->client = std::move(conn);
  s->client->set_on_data([this, s](ByteView data) {
    if (s->refused) return;
    s->parser.feed(data);
    if (s->parser.failed()) {
      s->refused = true;
      auto resp = http::make_response(400, "<h1>400 Bad Request</h1>");
      resp.headers.set("Connection", "close");
      s->client->send(resp.to_bytes());
      s->client->close();
      if (s->backend) s->backend->close();
      return;
    }
    handle_parsed(s);
  });
  s->client->set_on_close([s] {
    if (s->backend) s->backend->close();
  });
}

void ReverseProxy::handle_parsed(const std::shared_ptr<Session>& s) {
  for (auto& req : s->parser.take()) {
    if (opts_.blocked_paths.count(req.target) > 0) {
      auto resp = http::make_response(403, "<h1>403 Forbidden</h1>");
      s->client->send(resp.to_bytes());
      continue;
    }
    host_.run_task(opts_.cpu_per_request, [this, s, raw = req.raw] {
      if (s->refused || !s->client->is_open()) return;
      // Deferred host task: re-install the inbound flow scope so the
      // backend dial derives its execution index from the client flow.
      sim::FlowScope flow_scope(s->client.get());
      if (!s->backend) {
        s->backend = net_.connect(
            opts_.backend_address,
            {.source = opts_.instance_name, .flow = {.label = "revproxy"}});
        if (!s->backend) {
          s->client->send(
              http::make_response(502, "<h1>502 Bad Gateway</h1>").to_bytes());
          return;
        }
        // Tunnel mode: backend bytes stream straight back to the client.
        s->backend->set_on_data(
            [s](ByteView d) { s->client->send(d); });
        s->backend->set_on_close([s] { s->client->close(); });
      }
      // Forward the ORIGINAL bytes — the proxy's framing only decided
      // where the message ends, and that decision is the vulnerability.
      s->backend->send(raw);
    });
  }
}

}  // namespace rddr::services
