// HTTP microservice framework over netsim: server with per-request CPU
// accounting, and a small client for tests/workloads.
#pragma once

#include <functional>
#include <map>
#include <memory>
#include <string>

#include "netsim/host.h"
#include "netsim/network.h"
#include "proto/http/message.h"
#include "proto/http/parser.h"

namespace rddr::services {

/// Sends exactly one response for the request being handled. Safe to call
/// from a later event (async handlers).
using Responder = std::function<void(http::Response)>;

/// Request handler; must eventually invoke the responder exactly once.
using HttpHandler =
    std::function<void(const http::Request&, Responder)>;

/// A simulated HTTP/1.1 server container.
class HttpServer {
 public:
  struct Options {
    std::string address;
    http::ParserOptions parser;
    /// CPU seconds charged per request before the handler runs.
    double cpu_per_request = 50e-6;
    /// Container footprint charged while running.
    int64_t base_memory_bytes = 32LL << 20;
    /// Close connections after each response (Connection: close semantics).
    bool close_after_response = false;
  };

  HttpServer(sim::Network& net, sim::Host& host, Options opts);
  ~HttpServer();
  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Installs the request handler (must be set before traffic arrives).
  void set_handler(HttpHandler handler) { handler_ = std::move(handler); }

  const Options& options() const { return opts_; }
  uint64_t requests_served() const { return requests_served_; }

  sim::Network& network() { return net_; }
  sim::Host& host() { return host_; }

 private:
  struct Conn;
  void on_accept(sim::ConnPtr conn);
  void pump(const std::shared_ptr<Conn>& c);

  sim::Network& net_;
  sim::Host& host_;
  Options opts_;
  HttpHandler handler_;
  uint64_t requests_served_ = 0;
};

/// Minimal async HTTP client: one connection per request.
class HttpClient {
 public:
  using Callback = std::function<void(int status, const http::Response*)>;

  HttpClient(sim::Network& net, std::string source_name);

  /// Issues `req` to `address`. On success invokes cb(status, &response);
  /// on connection failure/abort invokes cb(-1, nullptr).
  void request(const std::string& address, http::Request req, Callback cb);

  /// Convenience GET.
  void get(const std::string& address, const std::string& target, Callback cb);

 private:
  sim::Network& net_;
  std::string source_;
};

}  // namespace rddr::services
