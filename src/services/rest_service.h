// RESTful single-function services (paper §V-A).
//
// Each service wraps one "library" function behind a JSON-over-HTTP API.
// Deploying two instances with the same Kind but different `library`
// values is the paper's library-diversity construction: identical API,
// different code, divergent behaviour under exploitation.
#pragma once

#include <memory>
#include <string>

#include "services/http_service.h"

namespace rddr::services {

class RestLibraryService {
 public:
  enum class Kind { kMarkdown, kSanitizer, kSvg, kRsa };

  struct Options {
    std::string address;
    Kind kind = Kind::kMarkdown;
    /// Which implementation backs the endpoint:
    ///   kMarkdown : "mdone" | "mdtwo"
    ///   kSanitizer: "lxmllite" | "sanihtml"
    ///   kSvg      : "svglite" | "cairolite"
    ///   kRsa      : "rsalite" | "cryptolite"
    std::string library;
    /// Key for the kRsa service (same across diverse instances).
    uint64_t rsa_key = 0x524444522d4b4559;  // "RDDR-KEY"
    double cpu_per_request = 80e-6;
  };

  RestLibraryService(sim::Network& net, sim::Host& host, Options opts);

  /// The endpoint path this Kind serves ("/render", "/sanitize", ...).
  static std::string endpoint(Kind kind);

 private:
  void handle(const http::Request& req, Responder respond);

  Options opts_;
  std::unique_ptr<HttpServer> server_;
};

}  // namespace rddr::services
