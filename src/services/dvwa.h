// DVWA-like vulnerable web app (paper §V-B).
//
// Reproduces the slice of Damn Vulnerable Web App the paper evaluates: an
// SQL-injection demo page protected by CSRF tokens, configurable input
// sanitisation levels, and an *external* database so the frontend can be
// N-versioned behind RDDR while the single backend DB sits behind the
// outgoing request proxy.
//
// Flow (matches the paper's description):
//   GET  /vulnerabilities/sqli           -> form + fresh CSRF user_token
//   POST /vulnerabilities/sqli           -> validates token, runs the query
//
// Security levels:
//   kLow  : the id parameter is spliced into the SQL string verbatim
//           (the injection).
//   kHigh : quotes are doubled (standard SQL escaping) — inert injection.
//
// The paper's deployment: two kLow instances form the filter pair, one
// kHigh instance is the diverse member; injected input makes the kHigh
// instance emit a *different SQL string*, which the outgoing proxy catches.
#pragma once

#include <cstdint>
#include <memory>
#include <set>
#include <string>

#include "common/rng.h"
#include "services/http_service.h"
#include "sqldb/client.h"

namespace rddr::services {

class DvwaApp {
 public:
  enum class Security { kLow, kHigh };

  struct Options {
    std::string address;
    /// Where this instance believes the database lives (in the paper's
    /// deployment: the RDDR outgoing proxy).
    std::string db_address;
    Security security = Security::kLow;
    /// Per-instance CSPRNG stream for CSRF tokens.
    uint64_t rng_seed = 1;
    std::string instance_name = "dvwa";
    double cpu_per_request = 100e-6;
  };

  DvwaApp(sim::Network& net, sim::Host& host, Options opts);

  /// SQL text this instance would send for a given raw id input (exposed
  /// for tests documenting the sanitisation difference).
  std::string build_query(const std::string& id) const;

  uint64_t tokens_issued() const { return tokens_issued_; }
  uint64_t token_failures() const { return token_failures_; }

 private:
  void handle(const http::Request& req, Responder respond);
  void handle_sqli_get(Responder respond);
  void handle_sqli_post(const http::Request& req, Responder respond);

  sim::Network& net_;
  Options opts_;
  Rng rng_;
  std::unique_ptr<HttpServer> server_;
  std::set<std::string> live_tokens_;
  uint64_t tokens_issued_ = 0;
  uint64_t token_failures_ = 0;
  uint64_t sqli_posts_ = 0;
};

}  // namespace rddr::services
