// Minimal leveled logger.
//
// The simulator is single-threaded, so the logger is deliberately simple:
// a global level, printf-style messages, and an optional virtual-time hook
// installed by `netsim::Simulator` so log lines carry simulation time.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace rddr {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Sets the global log threshold; messages below it are dropped.
void set_log_level(LogLevel level);
LogLevel log_level();

/// Installs a clock hook; when set, log lines are prefixed with its value
/// (virtual nanoseconds). Pass nullptr to clear.
void set_log_clock(std::function<int64_t()> clock);

/// Emits a message at `level` (printf-style).
void log_message(LogLevel level, const char* fmt, ...)
    __attribute__((format(printf, 2, 3)));

#define RDDR_LOG_DEBUG(...) ::rddr::log_message(::rddr::LogLevel::kDebug, __VA_ARGS__)
#define RDDR_LOG_INFO(...) ::rddr::log_message(::rddr::LogLevel::kInfo, __VA_ARGS__)
#define RDDR_LOG_WARN(...) ::rddr::log_message(::rddr::LogLevel::kWarn, __VA_ARGS__)
#define RDDR_LOG_ERROR(...) ::rddr::log_message(::rddr::LogLevel::kError, __VA_ARGS__)

}  // namespace rddr
