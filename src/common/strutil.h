// String helpers used throughout the parsers and protocol plugins.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <vector>

namespace rddr {

/// Splits `s` on the separator character; keeps empty fields.
std::vector<std::string> split(std::string_view s, char sep);

/// Splits `s` on a separator string; keeps empty fields. `sep` must be
/// non-empty.
std::vector<std::string> split_str(std::string_view s, std::string_view sep);

/// Splits into lines at '\n', keeping each line without its terminator.
/// A trailing '\r' (CRLF input) is also stripped from each line.
std::vector<std::string> split_lines(std::string_view s);

/// Joins parts with the given separator.
std::string join(const std::vector<std::string>& parts, std::string_view sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view trim(std::string_view s);

/// ASCII lowercase copy.
std::string to_lower(std::string_view s);

/// ASCII uppercase copy.
std::string to_upper(std::string_view s);

/// Case-insensitive ASCII equality.
bool iequals(std::string_view a, std::string_view b);

bool starts_with(std::string_view s, std::string_view prefix);
bool ends_with(std::string_view s, std::string_view suffix);

/// Case-insensitive substring search; returns npos when absent.
size_t ifind(std::string_view haystack, std::string_view needle);

/// Parses a decimal integer; rejects trailing junk and overflow.
std::optional<int64_t> parse_i64(std::string_view s);

/// Parses a floating-point number; rejects trailing junk.
std::optional<double> parse_f64(std::string_view s);

/// Replaces every occurrence of `from` (non-empty) with `to`.
std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

/// Decodes %XX escapes and '+' (application/x-www-form-urlencoded).
std::string url_decode(std::string_view s);

/// Percent-encodes everything but unreserved characters.
std::string url_encode(std::string_view s);

/// Parses "a=1&b=2" form bodies (keys/values URL-decoded).
std::vector<std::pair<std::string, std::string>> parse_form(std::string_view body);

}  // namespace rddr
