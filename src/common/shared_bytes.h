// Ref-counted immutable byte buffer with cheap offset/length views.
//
// The data plane materialises a payload once and shares it: the netsim
// link holds a reference while the bytes are "in flight", and the N-way
// proxy fan-out sends the same buffer to every instance when the protocol
// plugin's per-instance rewrite is the identity (`rewrites_identity()`).
// Copying a SharedBytes bumps a refcount; slicing adjusts offset/length
// without touching the payload. The underlying Bytes is immutable once
// wrapped — never mutate through a stashed reference.
#pragma once

#include <cstddef>
#include <memory>

#include "common/bytes.h"

namespace rddr {

class SharedBytes {
 public:
  SharedBytes() = default;

  /// Takes ownership of `owned` (no payload copy; the string's heap
  /// storage moves into the shared cell).
  explicit SharedBytes(Bytes&& owned)
      : buf_(std::make_shared<const Bytes>(std::move(owned))),
        len_(buf_->size()) {}

  /// Materialises a copy of `copied` — the one copy a payload pays when it
  /// enters the shared data plane from a non-owning view.
  explicit SharedBytes(ByteView copied)
      : buf_(std::make_shared<const Bytes>(copied)), len_(buf_->size()) {}

  /// View of the addressed range. Valid while any SharedBytes aliasing the
  /// buffer is alive.
  ByteView view() const {
    return buf_ ? ByteView(buf_->data() + off_, len_) : ByteView();
  }

  size_t size() const { return len_; }
  bool empty() const { return len_ == 0; }
  const char* data() const { return buf_ ? buf_->data() + off_ : nullptr; }

  /// Sub-view sharing the same buffer: [offset, offset+len) of this view,
  /// clamped to the view's bounds. No bytes move.
  SharedBytes slice(size_t offset, size_t len = static_cast<size_t>(-1)) const {
    SharedBytes out;
    if (!buf_ || offset >= len_) return out;
    out.buf_ = buf_;
    out.off_ = off_ + offset;
    out.len_ = len < len_ - offset ? len : len_ - offset;
    return out;
  }

  /// Number of SharedBytes aliasing the buffer (diagnostics / tests).
  long use_count() const { return buf_.use_count(); }

 private:
  std::shared_ptr<const Bytes> buf_;
  size_t off_ = 0;
  size_t len_ = 0;
};

}  // namespace rddr
