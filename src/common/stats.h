// Lightweight statistics accumulators used by benchmarks and the host
// metrics sampler.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace rddr {

/// Accumulates samples and reports summary statistics. Percentiles are
/// computed on demand over the retained sample vector (nearest-rank).
class SampleStats {
 public:
  void add(double v);

  size_t count() const { return samples_.size(); }
  double sum() const { return sum_; }
  double mean() const;
  double min() const;
  double max() const;
  /// Nearest-rank percentile; `p` in [0, 100]. Returns 0 when empty.
  /// Sorts lazily: the first call after add() sorts once, and the sorted
  /// order is reused by later percentile/min/max calls until the next add.
  double percentile(double p) const;
  /// Sample standard deviation (0 when fewer than 2 samples).
  double stddev() const;

  /// How many times the sample vector has actually been sorted (regression
  /// guard for the lazy-sort contract above).
  uint64_t sort_count() const { return sort_count_; }

  const std::vector<double>& samples() const { return samples_; }
  void clear();

 private:
  mutable std::vector<double> samples_;
  mutable bool sorted_ = true;
  mutable uint64_t sort_count_ = 0;
  double sum_ = 0;
};

/// Integrates a step function over (virtual) time: value v held from the
/// previous update until the next. Used for CPU-busy-core and memory
/// integrals.
class TimeWeightedValue {
 public:
  /// Records that the tracked value becomes `value` at time `now_ns`.
  void update(int64_t now_ns, double value);

  /// Integral of the value over [first update, now_ns].
  double integral(int64_t now_ns) const;

  /// Time-weighted mean over [first update, now_ns]; 0 if no time elapsed.
  double mean(int64_t now_ns) const;

  double current() const { return value_; }
  double max_value() const { return max_; }

 private:
  bool started_ = false;
  int64_t start_ns_ = 0;
  int64_t last_ns_ = 0;
  double value_ = 0;
  double integral_ = 0;
  double max_ = 0;
};

}  // namespace rddr
