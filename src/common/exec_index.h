// Distributed execution index: a compact, deterministic call-path identity
// (Meiklejohn et al., "Distributed Execution Indexing").
//
// Every hop a request takes through the service graph appends one frame
// (site, seq): `site` names the static call site — FNV-1a over
// "service:callsite" — and `seq` distinguishes dynamic invocations of that
// site within the parent's execution (the i-th dial from the same handler).
// The frame stack uniquely identifies one dynamic call path from the
// originating edge request down to the hop where something happened, so a
// divergence caught three tiers deep can be attributed to the exact
// (request, hop, call site) — and the leaf site alone is a stable
// per-callsite dedup key.
//
// The index travels on sim::FlowContext (netsim/network.h) and is derived
// automatically at dial time: netsim keeps an ambient "current connection"
// while delivering to handlers, and Network::connect() extends the inbound
// index by one child frame. Determinism: sites hash static strings, seqs
// count per (parent connection, site) — both are functions of the simulated
// execution only, so indices are byte-identical across island layouts and
// thread counts.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/strutil.h"

namespace rddr {

class ExecutionIndex {
 public:
  /// One hop: which call site, and which dynamic invocation of it.
  struct Frame {
    uint64_t site = 0;  // site_id(service, callsite)
    uint32_t seq = 0;   // invocation ordinal within the parent execution
    friend bool operator==(const Frame& a, const Frame& b) {
      return a.site == b.site && a.seq == b.seq;
    }
  };

  /// Static call-site id: FNV-1a 64 over "service:callsite". `service` is
  /// the executing container ("mid-0", "edge-http"); `callsite` names the
  /// static dial point within it (conventionally the dialed address, or a
  /// role string like "catchup-shadow").
  static uint64_t site_id(const std::string& service,
                          const std::string& callsite) {
    uint64_t h = 14695981039346656037ull;
    auto mix = [&h](const std::string& s) {
      for (unsigned char c : s) {
        h ^= c;
        h *= 1099511628211ull;
      }
    };
    mix(service);
    h ^= ':';
    h *= 1099511628211ull;
    mix(callsite);
    return h;
  }

  /// Appends one frame in place and folds it into the incremental hash.
  void push(uint64_t site, uint32_t seq) {
    frames_.push_back({site, seq});
    hash_ ^= site;
    hash_ *= 1099511628211ull;
    hash_ ^= seq;
    hash_ *= 1099511628211ull;
  }
  void push(const std::string& service, const std::string& callsite,
            uint32_t seq) {
    push(site_id(service, callsite), seq);
  }

  /// Returns a copy extended by one frame (the index a child call carries).
  ExecutionIndex child(uint64_t site, uint32_t seq) const {
    ExecutionIndex c = *this;
    c.push(site, seq);
    return c;
  }
  ExecutionIndex child(const std::string& service, const std::string& callsite,
                       uint32_t seq) const {
    return child(site_id(service, callsite), seq);
  }

  bool empty() const { return frames_.empty(); }
  size_t depth() const { return frames_.size(); }
  const std::vector<Frame>& frames() const { return frames_; }

  /// Root frame: the originating edge request (first protected hop).
  const Frame& root() const { return frames_.front(); }
  /// Leaf frame: the call site closest to where the index was observed —
  /// the per-callsite dedup key.
  const Frame& leaf() const { return frames_.back(); }
  uint64_t leaf_site() const { return frames_.empty() ? 0 : frames_.back().site; }

  /// Incremental FNV-1a over the frame stack; equal for equal stacks.
  /// 0 for the empty index.
  uint64_t hash() const { return frames_.empty() ? 0 : hash_; }

  friend bool operator==(const ExecutionIndex& a, const ExecutionIndex& b) {
    return a.frames_ == b.frames_;
  }
  friend bool operator!=(const ExecutionIndex& a, const ExecutionIndex& b) {
    return !(a == b);
  }

  /// "a1b2c3d4#0/55aa..#2" — hex site ids joined by '/', '#seq' per frame.
  /// Empty index renders as "-".
  std::string describe() const {
    if (frames_.empty()) return "-";
    std::string out;
    for (size_t i = 0; i < frames_.size(); ++i) {
      if (i) out += '/';
      out += strformat("%llx#%u",
                       static_cast<unsigned long long>(frames_[i].site),
                       frames_[i].seq);
    }
    return out;
  }

  /// Flat integer serialization: [site0, seq0, site1, seq1, ...].
  std::vector<uint64_t> serialize() const {
    std::vector<uint64_t> out;
    out.reserve(frames_.size() * 2);
    for (const Frame& f : frames_) {
      out.push_back(f.site);
      out.push_back(f.seq);
    }
    return out;
  }
  static ExecutionIndex deserialize(const std::vector<uint64_t>& ints) {
    ExecutionIndex idx;
    for (size_t i = 0; i + 1 < ints.size(); i += 2)
      idx.push(ints[i], static_cast<uint32_t>(ints[i + 1]));
    return idx;
  }

 private:
  std::vector<Frame> frames_;
  uint64_t hash_ = 14695981039346656037ull;
};

}  // namespace rddr
