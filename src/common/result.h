// A small expected-like result type used where exceptions would obscure
// control flow (parsers, protocol framers). Errors carry a message string.
#pragma once

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace rddr {

/// Error payload for `Result<T>`.
struct Error {
  std::string message;
};

/// Holds either a value of T or an Error. Modeled after std::expected
/// (unavailable before C++23) with the subset of API this repo needs.
template <typename T>
class Result {
 public:
  Result(T value) : value_(std::move(value)) {}  // NOLINT implicit by design
  Result(Error err) : error_(std::move(err)) {}  // NOLINT implicit by design

  bool ok() const { return value_.has_value(); }
  explicit operator bool() const { return ok(); }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& take() {
    assert(ok());
    return std::move(*value_);
  }

  const std::string& error() const {
    assert(!ok());
    return error_->message;
  }

 private:
  std::optional<T> value_;
  std::optional<Error> error_;
};

/// Convenience factory: Err("bad thing: %s detail").
inline Error Err(std::string message) { return Error{std::move(message)}; }

}  // namespace rddr
