#include "common/rng.h"

#include <cmath>

namespace rddr {

namespace {

uint64_t splitmix64(uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

uint64_t rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(uint64_t seed) {
  uint64_t x = seed;
  for (auto& s : s_) s = splitmix64(x);
}

uint64_t Rng::next() {
  const uint64_t result = rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = rotl(s_[3], 45);
  return result;
}

int64_t Rng::uniform(int64_t lo, int64_t hi) {
  const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(next());  // full 64-bit range
  return lo + static_cast<int64_t>(next() % span);
}

double Rng::uniform01() {
  return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double Rng::exponential(double mean) {
  double u = uniform01();
  // Guard against log(0).
  if (u <= 0.0) u = 0x1.0p-53;
  return -mean * std::log(u);
}

std::string Rng::alnum_token(size_t n) {
  static constexpr char kAlphabet[] =
      "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ";
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(kAlphabet[next() % 62]);
  return out;
}

std::string Rng::hex_token(size_t n) {
  static constexpr char kHex[] = "0123456789abcdef";
  std::string out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(kHex[next() % 16]);
  return out;
}

Rng Rng::fork(uint64_t label) {
  // Mix the parent's next output with the label so children with different
  // labels are decorrelated even when forked from identical parent states.
  uint64_t seed = next() ^ (label * 0xd1342543de82ef95ULL + 0x2545f4914f6cdd1dULL);
  return Rng(seed);
}

}  // namespace rddr
