#include "common/bytes.h"

namespace rddr {

void put_u32_be(Bytes& out, uint32_t v) {
  out.push_back(static_cast<char>((v >> 24) & 0xff));
  out.push_back(static_cast<char>((v >> 16) & 0xff));
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

void put_u16_be(Bytes& out, uint16_t v) {
  out.push_back(static_cast<char>((v >> 8) & 0xff));
  out.push_back(static_cast<char>(v & 0xff));
}

uint32_t get_u32_be(ByteView b, size_t pos) {
  return (static_cast<uint32_t>(static_cast<unsigned char>(b[pos])) << 24) |
         (static_cast<uint32_t>(static_cast<unsigned char>(b[pos + 1])) << 16) |
         (static_cast<uint32_t>(static_cast<unsigned char>(b[pos + 2])) << 8) |
         static_cast<uint32_t>(static_cast<unsigned char>(b[pos + 3]));
}

uint16_t get_u16_be(ByteView b, size_t pos) {
  return static_cast<uint16_t>(
      (static_cast<uint16_t>(static_cast<unsigned char>(b[pos])) << 8) |
      static_cast<uint16_t>(static_cast<unsigned char>(b[pos + 1])));
}

Bytes to_hex(ByteView b) {
  static constexpr char kDigits[] = "0123456789abcdef";
  Bytes out;
  out.reserve(b.size() * 2);
  for (unsigned char c : b) {
    out.push_back(kDigits[c >> 4]);
    out.push_back(kDigits[c & 0xf]);
  }
  return out;
}

namespace {
int hex_val(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

Bytes from_hex(ByteView hex) {
  if (hex.size() % 2 != 0) return {};
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    int hi = hex_val(hex[i]);
    int lo = hex_val(hex[i + 1]);
    if (hi < 0 || lo < 0) return {};
    out.push_back(static_cast<char>((hi << 4) | lo));
  }
  return out;
}

}  // namespace rddr
