// Byte-buffer aliases and helpers shared across the codebase.
//
// All network traffic in this repo is carried as `Bytes` (an owned,
// contiguous, 8-bit-clean buffer) and inspected through `ByteView`.
// `std::string` is used as the underlying representation: it is 8-bit clean,
// has small-buffer optimisation, and interoperates with the parsing code.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

namespace rddr {

/// Owned byte buffer (8-bit clean).
using Bytes = std::string;

/// Non-owning view over a byte buffer.
using ByteView = std::string_view;

/// Appends a big-endian 32-bit integer to `out` (Postgres wire order).
void put_u32_be(Bytes& out, uint32_t v);

/// Appends a big-endian 16-bit integer to `out`.
void put_u16_be(Bytes& out, uint16_t v);

/// Reads a big-endian 32-bit integer at `pos`; caller guarantees bounds.
uint32_t get_u32_be(ByteView b, size_t pos);

/// Reads a big-endian 16-bit integer at `pos`; caller guarantees bounds.
uint16_t get_u16_be(ByteView b, size_t pos);

/// Hex-encodes a buffer ("deadbeef" style, lowercase).
Bytes to_hex(ByteView b);

/// Decodes a lowercase/uppercase hex string; returns empty on malformed input.
Bytes from_hex(ByteView hex);

}  // namespace rddr
