// Thread-local execution-island context.
//
// The parallel simulator (netsim/parallel.h) partitions event execution
// into islands, each single-threaded within a time window. Layers that
// must attribute work to the island it runs on (per-island trace lanes in
// obs, per-island event heaps in netsim) read the current island here.
// The id is plain thread-local state: the executor publishes it before
// running an island's events and code below netsim never needs to know
// who set it. Island 0 is the default everywhere, so single-threaded
// programs behave exactly as before islands existed.
#pragma once

#include <cstdint>

namespace rddr {

/// Island an event executes on. 0 is the default (and only) island of
/// sequential simulations.
using IslandId = uint32_t;

/// Hard cap on islands: ids must fit the 6-bit field packed into event
/// ids (netsim/simulator.h) and the fixed-size per-island slots some
/// aggregators keep.
constexpr IslandId kMaxIslands = 64;

namespace detail {
inline thread_local IslandId g_current_island = 0;
}  // namespace detail

/// Island the calling thread is currently executing events for.
inline IslandId current_island() { return detail::g_current_island; }

/// Publishes the calling thread's island (executor/simulator internals).
inline void set_current_island(IslandId id) {
  detail::g_current_island = id;
}

/// RAII island switch for scoped execution (drain loops, tests).
class IslandScope {
 public:
  explicit IslandScope(IslandId id) : prev_(current_island()) {
    set_current_island(id);
  }
  ~IslandScope() { set_current_island(prev_); }
  IslandScope(const IslandScope&) = delete;
  IslandScope& operator=(const IslandScope&) = delete;

 private:
  IslandId prev_;
};

}  // namespace rddr
