#include "common/strutil.h"

#include <cctype>
#include <cerrno>
#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <cstring>

namespace rddr {

std::vector<std::string> split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + 1;
  }
}

std::vector<std::string> split_str(std::string_view s, std::string_view sep) {
  std::vector<std::string> out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(sep, start);
    if (pos == std::string_view::npos) {
      out.emplace_back(s.substr(start));
      return out;
    }
    out.emplace_back(s.substr(start, pos - start));
    start = pos + sep.size();
  }
}

std::vector<std::string> split_lines(std::string_view s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < s.size()) {
    size_t pos = s.find('\n', start);
    std::string_view line = (pos == std::string_view::npos)
                                ? s.substr(start)
                                : s.substr(start, pos - start);
    if (!line.empty() && line.back() == '\r') line.remove_suffix(1);
    out.emplace_back(line);
    if (pos == std::string_view::npos) break;
    start = pos + 1;
  }
  return out;
}

std::string join(const std::vector<std::string>& parts, std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::string_view trim(std::string_view s) {
  size_t b = 0, e = s.size();
  while (b < e && std::isspace(static_cast<unsigned char>(s[b]))) ++b;
  while (e > b && std::isspace(static_cast<unsigned char>(s[e - 1]))) --e;
  return s.substr(b, e - b);
}

std::string to_lower(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  return out;
}

std::string to_upper(std::string_view s) {
  std::string out(s);
  for (auto& c : out) c = static_cast<char>(std::toupper(static_cast<unsigned char>(c)));
  return out;
}

bool iequals(std::string_view a, std::string_view b) {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (std::tolower(static_cast<unsigned char>(a[i])) !=
        std::tolower(static_cast<unsigned char>(b[i])))
      return false;
  }
  return true;
}

bool starts_with(std::string_view s, std::string_view prefix) {
  return s.size() >= prefix.size() && s.substr(0, prefix.size()) == prefix;
}

bool ends_with(std::string_view s, std::string_view suffix) {
  return s.size() >= suffix.size() && s.substr(s.size() - suffix.size()) == suffix;
}

size_t ifind(std::string_view haystack, std::string_view needle) {
  if (needle.empty()) return 0;
  if (haystack.size() < needle.size()) return std::string_view::npos;
  for (size_t i = 0; i + needle.size() <= haystack.size(); ++i) {
    if (iequals(haystack.substr(i, needle.size()), needle)) return i;
  }
  return std::string_view::npos;
}

std::optional<int64_t> parse_i64(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(buf.c_str(), &end, 10);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return static_cast<int64_t>(v);
}

std::optional<double> parse_f64(std::string_view s) {
  s = trim(s);
  if (s.empty()) return std::nullopt;
  std::string buf(s);
  errno = 0;
  char* end = nullptr;
  double v = std::strtod(buf.c_str(), &end);
  if (errno == ERANGE || end != buf.c_str() + buf.size()) return std::nullopt;
  return v;
}

std::string replace_all(std::string_view s, std::string_view from,
                        std::string_view to) {
  std::string out;
  size_t start = 0;
  while (true) {
    size_t pos = s.find(from, start);
    if (pos == std::string_view::npos) {
      out.append(s.substr(start));
      return out;
    }
    out.append(s.substr(start, pos - start));
    out.append(to);
    start = pos + from.size();
  }
}

std::string url_decode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      auto hex = [](char c) -> int {
        if (c >= '0' && c <= '9') return c - '0';
        if (c >= 'a' && c <= 'f') return c - 'a' + 10;
        if (c >= 'A' && c <= 'F') return c - 'A' + 10;
        return -1;
      };
      int hi = hex(s[i + 1]), lo = hex(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>((hi << 4) | lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

std::string url_encode(std::string_view s) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  for (unsigned char c : s) {
    if (std::isalnum(c) || c == '-' || c == '_' || c == '.' || c == '~') {
      out.push_back(static_cast<char>(c));
    } else {
      out.push_back('%');
      out.push_back(kHex[c >> 4]);
      out.push_back(kHex[c & 0xf]);
    }
  }
  return out;
}

std::vector<std::pair<std::string, std::string>> parse_form(
    std::string_view body) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& pair : split(body, '&')) {
    if (pair.empty()) continue;
    size_t eq = pair.find('=');
    if (eq == std::string::npos) {
      out.emplace_back(url_decode(pair), "");
    } else {
      out.emplace_back(url_decode(pair.substr(0, eq)),
                       url_decode(pair.substr(eq + 1)));
    }
  }
  return out;
}

std::string strformat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    out.resize(static_cast<size_t>(n));
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
  }
  va_end(ap2);
  return out;
}

}  // namespace rddr
