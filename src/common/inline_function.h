// Move-only callable with small-buffer-optimised inline storage.
//
// `std::function` heap-allocates for any capture beyond ~2 pointers and
// requires copyability; simulator events are scheduled millions of times
// per run and their captures (a shared_ptr or two, a few ints) almost
// always fit in a few dozen bytes. `InlineFunction` stores such callables
// inline — no allocation on the schedule path — and falls back to a single
// heap cell for oversized or throwing-move captures. Move-only captures
// (e.g. a moved-in buffer) are supported.
#pragma once

#include <cstddef>
#include <cstring>
#include <new>
#include <type_traits>
#include <utility>

namespace rddr {

template <size_t kInlineSize = 48>
class InlineFunction {
 public:
  InlineFunction() noexcept = default;
  InlineFunction(std::nullptr_t) noexcept {}  // NOLINT: match std::function

  template <typename F,
            typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineFunction> &&
                                        !std::is_same_v<D, std::nullptr_t> &&
                                        std::is_invocable_r_v<void, D&>>>
  InlineFunction(F&& f) {  // NOLINT: implicit like std::function
    constexpr bool fits = sizeof(D) <= kInlineSize &&
                          alignof(D) <= alignof(std::max_align_t) &&
                          std::is_nothrow_move_constructible_v<D>;
    if constexpr (fits && std::is_trivially_copyable_v<D> &&
                  std::is_trivially_destructible_v<D>) {
      // The common simulator capture (references, pointers, ints): moves
      // become a straight fixed-size memcpy, destruction is free.
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = trivial_ops<D>();
    } else if constexpr (fits) {
      ::new (static_cast<void*>(buf_)) D(std::forward<F>(f));
      ops_ = inline_ops<D>();
    } else {
      D* heap = new D(std::forward<F>(f));
      std::memcpy(buf_, &heap, sizeof(heap));
      ops_ = heap_ops<D>();
    }
  }

  InlineFunction(InlineFunction&& other) noexcept { take(other); }

  InlineFunction& operator=(InlineFunction&& other) noexcept {
    if (this != &other) {
      reset();
      take(other);
    }
    return *this;
  }

  InlineFunction& operator=(std::nullptr_t) noexcept {
    reset();
    return *this;
  }

  InlineFunction(const InlineFunction&) = delete;
  InlineFunction& operator=(const InlineFunction&) = delete;

  ~InlineFunction() { reset(); }

  explicit operator bool() const noexcept { return ops_ != nullptr; }

  void operator()() { ops_->invoke(buf_); }

 private:
  struct Ops {
    void (*invoke)(void*);
    // Move-construct the callable at `dst` from the one at `src`, then
    // destroy the source (relocation). Both point at buf_ storage.
    // nullptr: the callable is trivially relocatable (plain memcpy).
    void (*relocate)(void* dst, void* src) noexcept;
    // nullptr: trivially destructible, nothing to do.
    void (*destroy)(void*) noexcept;
  };

  template <typename D>
  static const Ops* trivial_ops() {
    static constexpr Ops ops = {
        [](void* p) { (*static_cast<D*>(p))(); },
        nullptr,
        nullptr,
    };
    return &ops;
  }

  template <typename D>
  static const Ops* inline_ops() {
    static constexpr Ops ops = {
        [](void* p) { (*static_cast<D*>(p))(); },
        [](void* dst, void* src) noexcept {
          D* s = static_cast<D*>(src);
          ::new (dst) D(std::move(*s));
          s->~D();
        },
        [](void* p) noexcept { static_cast<D*>(p)->~D(); },
    };
    return &ops;
  }

  template <typename D>
  static const Ops* heap_ops() {
    static constexpr Ops ops = {
        [](void* p) {
          D* heap;
          std::memcpy(&heap, p, sizeof(heap));
          (*heap)();
        },
        [](void* dst, void* src) noexcept {
          std::memcpy(dst, src, sizeof(D*));  // pointer relocation only
        },
        [](void* p) noexcept {
          D* heap;
          std::memcpy(&heap, p, sizeof(heap));
          delete heap;
        },
    };
    return &ops;
  }

  void take(InlineFunction& other) noexcept {
    if (other.ops_) {
      ops_ = other.ops_;
      if (ops_->relocate)
        ops_->relocate(buf_, other.buf_);
      else
        std::memcpy(buf_, other.buf_, kInlineSize);
      other.ops_ = nullptr;
    }
  }

  void reset() noexcept {
    if (ops_) {
      if (ops_->destroy) ops_->destroy(buf_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char buf_[kInlineSize];
  const Ops* ops_ = nullptr;
};

}  // namespace rddr
