#include "common/stats.h"

#include <algorithm>
#include <cmath>

namespace rddr {

void SampleStats::add(double v) {
  samples_.push_back(v);
  sum_ += v;
  sorted_ = false;
}

double SampleStats::mean() const {
  return samples_.empty() ? 0.0 : sum_ / static_cast<double>(samples_.size());
}

double SampleStats::min() const {
  if (samples_.empty()) return 0.0;
  if (sorted_) return samples_.front();
  return *std::min_element(samples_.begin(), samples_.end());
}

double SampleStats::max() const {
  if (samples_.empty()) return 0.0;
  if (sorted_) return samples_.back();
  return *std::max_element(samples_.begin(), samples_.end());
}

double SampleStats::percentile(double p) const {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
    ++sort_count_;
  }
  if (p <= 0) return samples_.front();
  if (p >= 100) return samples_.back();
  // Nearest-rank: ceil(p/100 * N), 1-indexed.
  size_t rank = static_cast<size_t>(
      std::ceil(p / 100.0 * static_cast<double>(samples_.size())));
  if (rank == 0) rank = 1;
  return samples_[rank - 1];
}

double SampleStats::stddev() const {
  if (samples_.size() < 2) return 0.0;
  const double m = mean();
  double acc = 0;
  for (double v : samples_) acc += (v - m) * (v - m);
  return std::sqrt(acc / static_cast<double>(samples_.size() - 1));
}

void SampleStats::clear() {
  samples_.clear();
  sum_ = 0;
  sorted_ = true;
}

void TimeWeightedValue::update(int64_t now_ns, double value) {
  if (!started_) {
    started_ = true;
    start_ns_ = now_ns;
    last_ns_ = now_ns;
    value_ = value;
    max_ = value;
    return;
  }
  integral_ += value_ * static_cast<double>(now_ns - last_ns_);
  last_ns_ = now_ns;
  value_ = value;
  max_ = std::max(max_, value);
}

double TimeWeightedValue::integral(int64_t now_ns) const {
  if (!started_) return 0.0;
  return integral_ + value_ * static_cast<double>(now_ns - last_ns_);
}

double TimeWeightedValue::mean(int64_t now_ns) const {
  if (!started_ || now_ns <= start_ns_) return 0.0;
  return integral(now_ns) / static_cast<double>(now_ns - start_ns_);
}

}  // namespace rddr
