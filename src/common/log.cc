#include "common/log.h"

#include <cstdarg>
#include <cstdio>

namespace rddr {

namespace {
LogLevel g_level = LogLevel::kWarn;
std::function<int64_t()> g_clock;

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO";
    case LogLevel::kWarn: return "WARN";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF";
  }
  return "?";
}
}  // namespace

void set_log_level(LogLevel level) { g_level = level; }
LogLevel log_level() { return g_level; }
void set_log_clock(std::function<int64_t()> clock) { g_clock = std::move(clock); }

void log_message(LogLevel level, const char* fmt, ...) {
  if (level < g_level) return;
  char buf[2048];
  va_list ap;
  va_start(ap, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, ap);
  va_end(ap);
  if (g_clock) {
    std::fprintf(stderr, "[%s t=%.6fs] %s\n", level_name(level),
                 static_cast<double>(g_clock()) / 1e9, buf);
  } else {
    std::fprintf(stderr, "[%s] %s\n", level_name(level), buf);
  }
}

}  // namespace rddr
