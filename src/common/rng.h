// Seeded random number generation.
//
// Every source of randomness in the repo flows through `Rng` so that whole
// simulations replay deterministically from a single seed. Services that the
// paper assumes use a *cryptographically secure* source (session IDs, CSRF
// tokens — §IV-B2 of the paper) take an independent `Rng` stream per
// instance, derived via `fork()`, so distinct instances never collide.
#pragma once

#include <cstdint>
#include <string>

namespace rddr {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via splitmix64).
///
/// Not cryptographically secure in the real-world sense; within the
/// simulation it plays the role of the paper's CSPRNG because streams forked
/// with distinct labels are independent and collisions are (for our state
/// sizes) never observed.
class Rng {
 public:
  /// Seeds the generator. The same seed always yields the same sequence.
  explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

  /// Next raw 64-bit value.
  uint64_t next();

  /// Uniform integer in [lo, hi] (inclusive). Requires lo <= hi.
  int64_t uniform(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double uniform01();

  /// Exponentially distributed double with the given mean.
  double exponential(double mean);

  /// Random alphanumeric token of length `n` ([0-9a-zA-Z]).
  std::string alnum_token(size_t n);

  /// Random lowercase-hex token of length `n`.
  std::string hex_token(size_t n);

  /// Derives an independent child stream; `label` decorrelates children
  /// created from the same parent state.
  Rng fork(uint64_t label);

 private:
  uint64_t s_[4];
};

}  // namespace rddr
