#include "sqldb/client.h"

#include "common/log.h"

namespace rddr::sqldb {

PgClient::PgClient(sim::Network& net, std::string source,
                   const std::string& address, const std::string& user,
                   std::string flow_label)
    : PgClient(net, address, user,
               sim::ConnectMeta{std::move(source),
                                sim::FlowContext{std::move(flow_label)}}) {}

PgClient::PgClient(sim::Network& net, const std::string& address,
                   const std::string& user, sim::ConnectMeta meta) {
  conn_ = net.connect(address, std::move(meta));
  if (!conn_) {
    broken_ = true;
    return;
  }
  conn_->set_on_data([this](ByteView d) { on_data(d); });
  conn_->set_on_close([this] { on_close(); });
  conn_->send(pg::build_startup({{"user", user}, {"database", "app"}}));
}

PgClient::~PgClient() {
  if (conn_ && conn_->is_open()) conn_->close();
}

void PgClient::query(const std::string& sql, QueryCallback cb) {
  if (broken_) {
    QueryOutcome out;
    out.connection_lost = true;
    cb(std::move(out));
    return;
  }
  queue_.emplace_back(sql, std::move(cb));
  maybe_send_next();
}

void PgClient::close() {
  if (conn_ && conn_->is_open()) {
    conn_->send(pg::build_terminate());
    conn_->close();
  }
  // Queries still awaiting a response will never get one on a closed
  // connection: fail their callbacks now rather than dropping them.
  on_close();
}

void PgClient::maybe_send_next() {
  if (!ready_ || in_flight_ || queue_.empty() || broken_) return;
  in_flight_ = true;
  ready_ = false;
  current_ = QueryOutcome{};
  conn_->send(pg::build_query(queue_.front().first));
}

void PgClient::finish_cycle() {
  in_flight_ = false;
  auto [sql, cb] = std::move(queue_.front());
  queue_.pop_front();
  QueryOutcome out = std::move(current_);
  current_ = QueryOutcome{};
  cb(std::move(out));
  maybe_send_next();
}

void PgClient::on_data(ByteView data) {
  reader_.feed(data);
  if (reader_.failed()) {
    RDDR_LOG_WARN("pg client framing error: %s", reader_.error().c_str());
    broken_ = true;
    conn_->close();
    on_close();
    return;
  }
  for (const auto& msg : reader_.take()) {
    switch (msg.type) {
      case 'R':
        break;  // auth ok
      case 'S': {
        // ParameterStatus: name/value c-strings.
        size_t nul = msg.payload.find('\0');
        if (nul != Bytes::npos && nul + 1 < msg.payload.size()) {
          std::string name = msg.payload.substr(0, nul);
          std::string value =
              msg.payload.substr(nul + 1, msg.payload.size() - nul - 2);
          server_params_[name] = value;
        }
        break;
      }
      case 'K':
        break;  // backend key data (instance-local noise)
      case 'T': {
        auto names = pg::parse_row_description(msg.payload);
        if (names) current_.columns = std::move(*names);
        break;
      }
      case 'D': {
        auto row = pg::parse_data_row(msg.payload);
        if (row) current_.rows.push_back(std::move(*row));
        break;
      }
      case 'C': {
        size_t nul = msg.payload.find('\0');
        current_.command_tags.push_back(msg.payload.substr(0, nul));
        break;
      }
      case 'N': {
        auto f = pg::parse_error_fields(msg.payload);
        if (f) current_.notices.push_back(f->message);
        break;
      }
      case 'E': {
        auto f = pg::parse_error_fields(msg.payload);
        if (f) {
          current_.error_sqlstate = f->sqlstate;
          current_.error_message = f->message;
        } else {
          current_.error_sqlstate = "XX000";
        }
        break;
      }
      case 'Z': {
        ready_ = true;
        if (in_flight_) finish_cycle();
        else maybe_send_next();
        break;
      }
      default:
        RDDR_LOG_WARN("pg client: unexpected message '%c'", msg.type);
    }
  }
}

void PgClient::on_close() {
  if (broken_ && queue_.empty()) return;
  broken_ = true;
  // Fail any in-flight and queued queries.
  std::deque<std::pair<std::string, QueryCallback>> pending;
  pending.swap(queue_);
  // An ErrorResponse that arrived before the close (e.g. an admission shed
  // during startup: SQLSTATE 53300, then disconnect) belongs to the first
  // pending query even if it was never sent.
  bool first = in_flight_ || current_.error_sqlstate.has_value();
  in_flight_ = false;
  for (auto& [sql, cb] : pending) {
    QueryOutcome out;
    if (first) {
      out = std::move(current_);
      first = false;
    }
    out.connection_lost = true;
    cb(std::move(out));
  }
}

}  // namespace rddr::sqldb
