#include "sqldb/server.h"

#include "common/log.h"
#include "common/strutil.h"

namespace rddr::sqldb {

struct SqlServer::Conn {
  sim::ConnPtr conn;
  pg::MessageReader reader{/*expect_startup=*/true};
  std::unique_ptr<Session> session;
  bool busy = false;           // a query task is running on the host
  std::vector<std::string> queued;  // queries received while busy
};

SqlServer::SqlServer(sim::Network& net, sim::Host& host,
                     std::shared_ptr<Database> db, Options opts)
    : net_(net),
      host_(host),
      db_(std::move(db)),
      opts_(std::move(opts)),
      rng_(opts_.rng_seed) {
  if (opts_.metrics) {
    std::string node = sim::Network::node_of(opts_.address);
    query_counter_ = opts_.metrics->counter(node + ".queries");
    query_ms_ = opts_.metrics->histogram(node + ".query_ms");
  }
  host_.charge_memory(opts_.base_memory_bytes);
  charged_memory_ = opts_.base_memory_bytes;
  refresh_memory_charge();
  net_.listen(opts_.address, [this](sim::ConnPtr c) { on_accept(std::move(c)); });
}

SqlServer::~SqlServer() {
  net_.unlisten(opts_.address);
  host_.release_memory(charged_memory_);
}

void SqlServer::refresh_memory_charge() {
  int64_t rows = db_->total_rows();
  if (rows == last_known_rows_) return;
  last_known_rows_ = rows;
  int64_t want = opts_.base_memory_bytes + db_->approx_bytes();
  host_.charge_memory(want - charged_memory_);
  charged_memory_ = want;
}

void SqlServer::on_accept(sim::ConnPtr conn) {
  auto c = std::make_shared<Conn>();
  c->conn = std::move(conn);
  c->conn->set_on_data([this, c](ByteView data) {
    c->reader.feed(data);
    if (c->reader.failed()) {
      RDDR_LOG_WARN("pgwire framing error on %s: %s", opts_.address.c_str(),
                    c->reader.error().c_str());
      c->conn->close();
      return;
    }
    for (const auto& msg : c->reader.take()) on_message(c, msg);
  });
  c->conn->set_on_close([c] { /* shared_ptr keeps state until drained */ });
}

void SqlServer::on_message(const std::shared_ptr<Conn>& c,
                           const pg::Message& msg) {
  if (msg.type == 0) {
    auto params = pg::parse_startup(msg.payload);
    std::string user = "postgres";
    if (params) {
      auto it = params->find("user");
      if (it != params->end()) user = it->second;
    }
    c->session = std::make_unique<Session>(*db_, user);
    Bytes out;
    out += pg::build_auth_ok();
    // server_version is deterministic per-build known variance; the
    // backend key is instance-local randomness (filter-pair fodder).
    out += pg::build_parameter_status("server_version", db_->info().version);
    out += pg::build_parameter_status("server_encoding", "UTF8");
    out += pg::build_parameter_status("application_name", db_->info().product);
    out += pg::build_backend_key_data(
        static_cast<uint32_t>(rng_.uniform(1000, 65000)),
        static_cast<uint32_t>(rng_.next() & 0xffffffff));
    out += pg::build_ready_for_query();
    c->conn->send(out);
    return;
  }
  if (msg.type == 'X') {
    c->conn->close();
    return;
  }
  if (msg.type == 'Q') {
    auto sql = pg::parse_query(msg.payload);
    if (!sql || !c->session) {
      c->conn->send(pg::build_error("08P01", "malformed Query message"));
      c->conn->send(pg::build_ready_for_query());
      return;
    }
    if (c->busy) {
      c->queued.push_back(*sql);
      return;
    }
    handle_query(c, *sql);
    return;
  }
  // Unsupported message type (this subset has no extended protocol).
  c->conn->send(pg::build_error("0A000", std::string("unsupported message: ") +
                                             pg::type_name(msg.type)));
  c->conn->send(pg::build_ready_for_query());
}

void SqlServer::handle_query(const std::shared_ptr<Conn>& c,
                             const std::string& sql) {
  c->busy = true;
  // Execute against the engine now (results are deterministic); charge the
  // virtual CPU cost and deliver when the host grants it.
  ExecResult result = c->session->execute(sql);
  ++queries_served_;
  if (query_counter_) query_counter_->inc();
  refresh_memory_charge();
  double cost = opts_.cpu_per_query +
                static_cast<double>(result.rows_scanned) * opts_.cpu_per_row;
  bool notices_enabled = true;
  std::string cmm = to_lower(c->session->setting("client_min_messages"));
  if (cmm == "warning" || cmm == "error") notices_enabled = false;

  obs::SpanId span = 0;
  const sim::Time started = net_.simulator().now();
  if (opts_.tracer) {
    // Parent the span to the connect-time trace context, when the dialing
    // side (a proxy or the workload driver) supplied one.
    obs::TraceId trace = c->conn->meta().trace_id;
    if (!trace) trace = opts_.tracer->new_trace();
    span = opts_.tracer->begin(trace, c->conn->meta().parent_span, "db.query",
                               sim::Network::node_of(opts_.address));
    opts_.tracer->tag(span, "rows_scanned",
                      strformat("%llu", static_cast<unsigned long long>(
                                            result.rows_scanned)));
  }

  host_.run_task(cost, [this, c, result = std::move(result), notices_enabled,
                        span, started] {
    if (opts_.tracer) opts_.tracer->end(span);
    if (query_ms_)
      query_ms_->observe(
          static_cast<double>(net_.simulator().now() - started) / 1e6);
    if (!c->conn->is_open()) return;
    Bytes out;
    for (const auto& sr : result.statements) {
      if (notices_enabled)
        for (const auto& n : sr.notices) out += pg::build_notice(n);
      if (sr.failed()) {
        out += pg::build_error(*sr.error_sqlstate, sr.error_message);
        break;  // remaining statements were aborted by the engine
      }
      if (sr.is_rowset) {
        out += pg::build_row_description(sr.columns);
        for (const auto& row : sr.rows) out += pg::build_data_row(row);
      }
      out += pg::build_command_complete(sr.command_tag);
    }
    out += pg::build_ready_for_query();
    c->conn->send(out);
    c->busy = false;
    if (!c->queued.empty()) {
      std::string next = std::move(c->queued.front());
      c->queued.erase(c->queued.begin());
      handle_query(c, next);
    }
  });
}

}  // namespace rddr::sqldb
