#include "sqldb/server.h"

#include "common/log.h"
#include "common/strutil.h"
#include "sqldb/snapshot.h"

namespace rddr::sqldb {

struct SqlServer::Conn {
  sim::ConnPtr conn;
  pg::MessageReader reader{/*expect_startup=*/true};
  std::unique_ptr<Session> session;
  /// A fully-executed query whose response still awaits its host CPU
  /// grant. Responses go out FIFO per connection.
  struct PendingResponse {
    Bytes out;
    double cost = 0;
    sim::Time io = 0;  // modeled storage latency (buffer misses + WAL)
    obs::SpanId span = 0;
    sim::Time started = 0;
  };
  bool busy = false;  // a response task is running on the host
  std::vector<PendingResponse> queued;
};

SqlServer::SqlServer(sim::Network& net, sim::Host& host,
                     std::shared_ptr<Database> db, Options opts)
    : net_(net),
      host_(host),
      db_(std::move(db)),
      opts_(std::move(opts)),
      rng_(opts_.rng_seed),
      alive_(std::make_shared<bool>(true)) {
  if (opts_.metrics) {
    std::string node = sim::Network::node_of(opts_.address);
    query_counter_ = opts_.metrics->counter(node + ".queries");
    query_ms_ = opts_.metrics->histogram(node + ".query_ms");
  }
  host_.charge_memory(opts_.base_memory_bytes);
  charged_memory_ = opts_.base_memory_bytes;
  recovery_.ok = true;
  sim::Time startup_io = 0;
  if (opts_.storage) {
    if (opts_.storage->has_durable_state()) {
      // Crash recovery replaces whatever the image factory loaded — the
      // durable volume is the truth for a restarted container.
      recovery_ = opts_.storage->recover(*db_);
      startup_io = recovery_.io_time;
    } else {
      startup_io = opts_.storage->bootstrap(*db_, opts_.lineage_seed);
    }
  }
  refresh_memory_charge();
  if (startup_io > 0) {
    // A recovering container is not instantly serving: redo happens
    // before the port opens, exactly like a real DBMS startup.
    net_.simulator().schedule(startup_io, [this, alive = alive_] {
      if (!*alive) return;
      listening_ = true;
      net_.listen(opts_.address,
                  [this](sim::ConnPtr c) { on_accept(std::move(c)); });
    });
  } else {
    listening_ = true;
    net_.listen(opts_.address,
                [this](sim::ConnPtr c) { on_accept(std::move(c)); });
  }
}

SqlServer::~SqlServer() {
  *alive_ = false;
  if (listening_) net_.unlisten(opts_.address);
  if (opts_.storage && opts_.storage->attached()) opts_.storage->detach();
  host_.release_memory(charged_memory_);
}

void SqlServer::refresh_memory_charge() {
  if (!opts_.storage) {
    int64_t rows = db_->total_rows();
    if (rows == last_known_rows_) return;
    last_known_rows_ = rows;
  }
  // With storage the resident set is the buffer pool + staged WAL, not
  // the whole dataset — that bound is the fig6 cache-pressure story.
  int64_t data_bytes = opts_.storage ? opts_.storage->resident_bytes()
                                     : db_->approx_bytes();
  int64_t want = opts_.base_memory_bytes + data_bytes;
  if (want == charged_memory_) return;
  host_.charge_memory(want - charged_memory_);
  charged_memory_ = want;
}

std::string SqlServer::dump_snapshot() const { return snapshot_database(*db_); }

bool SqlServer::load_snapshot(std::string_view snapshot, std::string* error,
                              uint64_t source_lsn, uint64_t source_lineage) {
  bool ok = restore_database(*db_, snapshot, error);
  if (opts_.storage) {
    // Rebase even on failure: the database is cleared either way, and the
    // durable image must not resurrect the pre-load contents.
    opts_.storage->rebase(ok ? source_lsn : 0, ok ? source_lineage : 0);
  }
  last_known_rows_ = -1;  // force a re-charge even if row counts match
  refresh_memory_charge();
  return ok;
}

void SqlServer::on_accept(sim::ConnPtr conn) {
  auto c = std::make_shared<Conn>();
  c->conn = std::move(conn);
  c->conn->set_on_data([this, c](ByteView data) {
    c->reader.feed(data);
    if (c->reader.failed()) {
      RDDR_LOG_WARN("pgwire framing error on %s: %s", opts_.address.c_str(),
                    c->reader.error().c_str());
      c->conn->close();
      return;
    }
    for (const auto& msg : c->reader.take()) on_message(c, msg);
  });
  c->conn->set_on_close([c] { /* shared_ptr keeps state until drained */ });
}

void SqlServer::on_message(const std::shared_ptr<Conn>& c,
                           const pg::Message& msg) {
  if (msg.type == 0) {
    auto params = pg::parse_startup(msg.payload);
    std::string user = "postgres";
    if (params) {
      auto it = params->find("user");
      if (it != params->end()) user = it->second;
    }
    c->session = std::make_unique<Session>(*db_, user);
    Bytes out;
    out += pg::build_auth_ok();
    // server_version is deterministic per-build known variance; the
    // backend key is instance-local randomness (filter-pair fodder).
    out += pg::build_parameter_status("server_version", db_->info().version);
    out += pg::build_parameter_status("server_encoding", "UTF8");
    out += pg::build_parameter_status("application_name", db_->info().product);
    for (const auto& [k, v] : opts_.startup_params)
      out += pg::build_parameter_status(k, v);
    out += pg::build_backend_key_data(
        static_cast<uint32_t>(rng_.uniform(1000, 65000)),
        static_cast<uint32_t>(rng_.next() & 0xffffffff));
    out += pg::build_ready_for_query();
    c->conn->send(SharedBytes(std::move(out)));
    return;
  }
  if (msg.type == 'X') {
    c->conn->close();
    return;
  }
  if (msg.type == 'Q') {
    auto sql = pg::parse_query(msg.payload);
    if (!sql || !c->session) {
      c->conn->send(pg::build_error("08P01", "malformed Query message"));
      c->conn->send(pg::build_ready_for_query());
      return;
    }
    handle_query(c, *sql);
    return;
  }
  // Unsupported message type (this subset has no extended protocol).
  c->conn->send(pg::build_error("0A000", std::string("unsupported message: ") +
                                             pg::type_name(msg.type)));
  c->conn->send(pg::build_ready_for_query());
}

void SqlServer::handle_query(const std::shared_ptr<Conn>& c,
                             const std::string& sql) {
  // Execute against the engine immediately: state mutates in network
  // delivery order across *all* connections, pipelined or not, so e.g. a
  // resync journal replay that has been delivered is visible to queries
  // arriving later on other connections. Only the response waits for the
  // host to grant the virtual CPU cost, FIFO per connection.
  if (opts_.storage) opts_.storage->begin_statement();
  ExecResult result = c->session->execute(sql);
  sim::Time storage_io =
      opts_.storage ? opts_.storage->end_statement(c->session->user(), sql)
                    : 0;
  ++queries_served_;
  if (query_counter_) query_counter_->inc();
  refresh_memory_charge();
  bool notices_enabled = true;
  std::string cmm = to_lower(c->session->setting("client_min_messages"));
  if (cmm == "warning" || cmm == "error") notices_enabled = false;

  Conn::PendingResponse p;
  p.cost = opts_.cpu_per_query +
           static_cast<double>(result.rows_scanned) * opts_.cpu_per_row;
  p.io = storage_io;
  p.started = net_.simulator().now();
  if (opts_.tracer) {
    // Parent the span to the connect-time trace context, when the dialing
    // side (a proxy or the workload driver) supplied one.
    obs::TraceId trace = c->conn->flow().trace_id;
    if (!trace) trace = opts_.tracer->id_stream(opts_.address)->next_trace();
    p.span = opts_.tracer->begin(trace, c->conn->flow().parent_span,
                                 "db.query",
                                 sim::Network::node_of(opts_.address));
    opts_.tracer->tag(p.span, "rows_scanned",
                      strformat("%llu", static_cast<unsigned long long>(
                                            result.rows_scanned)));
  }
  for (const auto& sr : result.statements) {
    if (notices_enabled)
      for (const auto& n : sr.notices) p.out += pg::build_notice(n);
    if (sr.failed()) {
      p.out += pg::build_error(*sr.error_sqlstate, sr.error_message);
      break;  // remaining statements were aborted by the engine
    }
    if (sr.is_rowset) {
      p.out += pg::build_row_description(sr.columns);
      for (const auto& row : sr.rows) p.out += pg::build_data_row(row);
    }
    p.out += pg::build_command_complete(sr.command_tag);
  }
  p.out += pg::build_ready_for_query();
  c->queued.push_back(std::move(p));
  if (!c->busy) pump_responses(c);
}

void SqlServer::pump_responses(const std::shared_ptr<Conn>& c) {
  if (c->queued.empty()) return;
  c->busy = true;
  Conn::PendingResponse p = std::move(c->queued.front());
  c->queued.erase(c->queued.begin());
  host_.run_task(p.cost, [this, c, p = std::move(p)]() mutable {
    auto deliver = [this, c](Conn::PendingResponse resp) {
      if (opts_.tracer) opts_.tracer->end(resp.span);
      if (query_ms_)
        query_ms_->observe(
            static_cast<double>(net_.simulator().now() - resp.started) / 1e6);
      // The query already executed at delivery; a response to a closed
      // connection is simply dropped. The response buffer moves into the
      // data plane without a copy.
      if (c->conn->is_open()) c->conn->send(SharedBytes(std::move(resp.out)));
      c->busy = false;
      pump_responses(c);
    };
    if (p.io > 0) {
      // Storage latency (buffer-pool misses, WAL sync) extends the
      // response time past the CPU grant — still FIFO per connection.
      net_.simulator().schedule(
          p.io, [alive = alive_, deliver = std::move(deliver),
                 p = std::move(p)]() mutable {
            if (!*alive) return;
            deliver(std::move(p));
          });
      return;
    }
    deliver(std::move(p));
  });
}

}  // namespace rddr::sqldb
