// SQL abstract syntax tree for the sqldb subset.
//
// The subset is driven by what the paper's evaluation needs: the TPC-H-lite
// and pgbench-lite workloads (SELECT with joins, aggregates, GROUP BY,
// ORDER BY, LIMIT; INSERT/UPDATE/DELETE), plus the exploit surface —
// CREATE FUNCTION (plpgsql RAISE NOTICE bodies), CREATE OPERATOR with a
// `restrict` estimator, row-level security, GRANT, SET, and EXPLAIN.
#pragma once

#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "sqldb/value.h"

namespace rddr::sqldb {

struct Expr;
using ExprPtr = std::unique_ptr<Expr>;

enum class ExprKind {
  kLiteral,     // datum
  kColumnRef,   // [table.]column
  kParam,       // $n (function bodies)
  kUnary,       // op: "-" | "NOT"
  kBinary,      // op: arithmetic/comparison/logic/custom symbol
  kFuncCall,    // name(args) — builtin or user-defined
  kAggregate,   // COUNT/SUM/AVG/MIN/MAX (arg may be null for COUNT(*))
  kIsNull,      // arg IS [NOT] NULL (negated flag)
  kLike,        // arg LIKE pattern (negated flag)
  kBetween,     // arg BETWEEN lo AND hi (negated flag)
  kInList,      // arg IN (list) (negated flag)
  kCase,        // CASE WHEN cond THEN val ... [ELSE val] END
};

struct Expr {
  ExprKind kind;

  Datum literal;                      // kLiteral
  std::string table;                  // kColumnRef qualifier (may be empty)
  std::string column;                 // kColumnRef
  int param_index = 0;                // kParam ($1 => 1)
  std::string op;                     // kUnary/kBinary operator symbol
  std::string func_name;              // kFuncCall/kAggregate
  bool negated = false;               // IS NOT NULL / NOT LIKE / NOT IN / NOT BETWEEN
  bool star = false;                  // COUNT(*)
  bool distinct = false;              // COUNT(DISTINCT x)
  std::vector<ExprPtr> args;          // children (operands, call args,
                                      // CASE: [when1, then1, ..., else?])
  bool case_has_else = false;

  /// Pretty-printer (EXPLAIN output, diagnostics).
  std::string to_string() const;
};

ExprPtr make_literal(Datum d);
ExprPtr make_column(std::string table, std::string column);
ExprPtr make_binary(std::string op, ExprPtr lhs, ExprPtr rhs);

struct ColumnDef {
  std::string name;
  Type type = Type::kText;
};

struct OrderItem {
  ExprPtr expr;
  bool descending = false;
};

struct SelectItem {
  ExprPtr expr;   // null for '*'
  std::string alias;
  bool star = false;
};

struct TableRef {
  std::string table;
  std::string alias;  // empty = table name
  /// Join condition with the *previous* table in the FROM list; null for
  /// the first table or comma-joins (cross product + WHERE).
  ExprPtr join_on;
};

struct SelectStmt {
  std::vector<SelectItem> items;
  std::vector<TableRef> from;   // empty = SELECT <exprs> without FROM
  ExprPtr where;
  std::vector<ExprPtr> group_by;
  ExprPtr having;
  std::vector<OrderItem> order_by;
  std::optional<int64_t> limit;
};

struct InsertStmt {
  std::string table;
  std::vector<std::string> columns;       // empty = schema order
  std::vector<std::vector<ExprPtr>> rows; // literal expressions
};

struct UpdateStmt {
  std::string table;
  std::vector<std::pair<std::string, ExprPtr>> sets;
  ExprPtr where;
};

struct DeleteStmt {
  std::string table;
  ExprPtr where;
};

struct CreateTableStmt {
  std::string table;
  std::vector<ColumnDef> columns;
};

struct DropTableStmt {
  std::string table;
  bool if_exists = false;
};

/// CREATE FUNCTION with a recognised plpgsql body of the shape the paper's
/// exploits use:  BEGIN [RAISE NOTICE 'fmt', $1, ...;] RETURN expr; END
struct CreateFunctionStmt {
  std::string name;
  std::vector<Type> arg_types;
  Type return_type = Type::kBool;
  std::optional<std::string> notice_format;  // '%' placeholders
  std::vector<ExprPtr> notice_args;          // over $n params
  ExprPtr return_expr;                       // over $n params
  std::string language;                      // "plpgsql", "sql", ...
};

/// CREATE OPERATOR <symbol> (procedure=..., leftarg=..., rightarg=...,
/// restrict=<estimator>).
struct CreateOperatorStmt {
  std::string symbol;
  std::string procedure;
  Type left_type = Type::kInt;
  Type right_type = Type::kInt;
  std::string restrict_estimator;  // empty = none
};

struct SetStmt {
  std::string name;
  std::string value;
};

struct GrantStmt {
  std::string privilege;  // "SELECT", ...
  std::string table;
  std::string grantee;
};

struct AlterTableRlsStmt {
  std::string table;
  bool enable = true;
};

/// CREATE POLICY name ON table [TO role] USING (expr).
struct CreatePolicyStmt {
  std::string name;
  std::string table;
  std::string role;  // empty = all roles
  ExprPtr using_expr;
};

struct ExplainStmt {
  bool costs_off = false;
  std::unique_ptr<SelectStmt> select;
};

/// No-op statements accepted for compatibility (BEGIN/COMMIT/ROLLBACK).
struct TxnStmt {
  std::string keyword;
};

struct Statement {
  enum class Kind {
    kSelect, kInsert, kUpdate, kDelete, kCreateTable, kDropTable,
    kCreateFunction, kCreateOperator, kSet, kGrant, kAlterTableRls,
    kCreatePolicy, kExplain, kTxn,
  };
  Kind kind;
  std::unique_ptr<SelectStmt> select;
  std::unique_ptr<InsertStmt> insert;
  std::unique_ptr<UpdateStmt> update;
  std::unique_ptr<DeleteStmt> del;
  std::unique_ptr<CreateTableStmt> create_table;
  std::unique_ptr<DropTableStmt> drop_table;
  std::unique_ptr<CreateFunctionStmt> create_function;
  std::unique_ptr<CreateOperatorStmt> create_operator;
  std::unique_ptr<SetStmt> set;
  std::unique_ptr<GrantStmt> grant;
  std::unique_ptr<AlterTableRlsStmt> alter_rls;
  std::unique_ptr<CreatePolicyStmt> create_policy;
  std::unique_ptr<ExplainStmt> explain;
  std::unique_ptr<TxnStmt> txn;
};

}  // namespace rddr::sqldb
