// Recursive-descent SQL parser for the sqldb subset (see ast.h).
#pragma once

#include <vector>

#include "common/result.h"
#include "sqldb/ast.h"

namespace rddr::sqldb {

/// Parses a script of semicolon-separated statements. On syntax error the
/// Result carries a message including the offending token.
Result<std::vector<Statement>> parse_sql(std::string_view sql);

/// Parses a single scalar expression (used by function bodies and tests).
Result<ExprPtr> parse_expression(std::string_view text);

}  // namespace rddr::sqldb
