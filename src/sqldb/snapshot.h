// Deterministic snapshot/restore of a sqldb Database.
//
// The state-transfer half of instance replacement (DESIGN.md "Recovery &
// resync"): a healthy replica is dumped to a flat text form — catalog,
// rows, grants, RLS policies, UDFs, operators, and index definitions —
// and loaded into a freshly spawned engine so the replacement starts from
// the trusted replica's state instead of an empty (and therefore
// immediately divergent) one.
//
// Determinism: tables, grants, functions and operators live in std::map,
// so emit order is name order; rows are emitted in storage order (part of
// the state: minipg serves unordered scans in insertion order); floats are
// serialized as hex-floats. Identical databases therefore produce
// byte-identical snapshots, and snapshot(restore(snapshot(db))) is a
// fixed point — which is what lets tests compare replicas by dump.
#pragma once

#include <string>
#include <string_view>

#include "sqldb/engine.h"

namespace rddr::sqldb {

/// Serializes the full database state. Engine identity (product/version)
/// is recorded as a header comment but is NOT part of the restored state:
/// a snapshot taken from one version can warm a replacement running
/// another (that is the point of N-versioning).
std::string snapshot_database(const Database& db);

/// Replaces `db`'s contents with the snapshot's. The target keeps its own
/// EngineInfo; UDFs/operators in the snapshot are skipped (not an error)
/// when the target engine does not support them (roachdb). Returns false
/// and sets `*error` (if non-null) on a malformed snapshot, leaving the
/// database cleared — callers must treat a failed restore as an empty
/// instance, not a warmed one.
bool restore_database(Database& db, std::string_view snapshot,
                      std::string* error = nullptr);

}  // namespace rddr::sqldb
