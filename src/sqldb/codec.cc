#include "sqldb/codec.h"

#include <cstdlib>

#include "common/strutil.h"

namespace rddr::sqldb {

std::string escape_field(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '\\': out += "\\\\"; break;
      case '\t': out += "\\t"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      default: out += c;
    }
  }
  return out;
}

std::string unescape_field(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] != '\\' || i + 1 == s.size()) {
      out += s[i];
      continue;
    }
    switch (s[++i]) {
      case 't': out += '\t'; break;
      case 'n': out += '\n'; break;
      case 'r': out += '\r'; break;
      default: out += s[i];
    }
  }
  return out;
}

std::string encode_datum(const Datum& d) {
  switch (d.type()) {
    case Type::kNull: return "N";
    case Type::kBool: return d.as_bool() ? "B:t" : "B:f";
    case Type::kInt:
      return strformat("I:%lld", static_cast<long long>(d.as_int()));
    case Type::kFloat: return strformat("F:%a", d.as_float());
    case Type::kText: return "T:" + escape_field(d.as_text());
  }
  return "N";
}

bool decode_datum(std::string_view s, Datum* out) {
  if (s == "N") {
    *out = Datum::null();
    return true;
  }
  if (s.size() < 2 || s[1] != ':') return false;
  std::string_view body = s.substr(2);
  switch (s[0]) {
    case 'B':
      if (body != "t" && body != "f") return false;
      *out = Datum::boolean(body == "t");
      return true;
    case 'I': {
      auto n = parse_i64(body);
      if (!n) return false;
      *out = Datum::integer(*n);
      return true;
    }
    case 'F': {
      std::string text(body);
      char* end = nullptr;
      double v = std::strtod(text.c_str(), &end);
      if (end == text.c_str() || *end != '\0') return false;
      *out = Datum::floating(v);
      return true;
    }
    case 'T':
      *out = Datum::text(unescape_field(body));
      return true;
  }
  return false;
}

std::string encode_row(const std::vector<Datum>& row) {
  std::string out;
  for (size_t i = 0; i < row.size(); ++i) {
    if (i) out += '\t';
    out += encode_datum(row[i]);
  }
  return out;
}

}  // namespace rddr::sqldb
