// SQL datum: a dynamically-typed value with Postgres-flavoured semantics
// (NULL propagation, text casts, t/f booleans).
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <variant>

namespace rddr::sqldb {

enum class Type { kNull, kBool, kInt, kFloat, kText };

/// Name Postgres uses for a type ("integer", "text", ...).
std::string type_name(Type t);

/// Parses a type name from SQL (int/integer/int4, bool/boolean,
/// float/double/real/numeric, text/varchar/char). Returns nullopt otherwise.
std::optional<Type> parse_type_name(std::string_view s);

/// A single SQL value. NULL is the monostate alternative.
class Datum {
 public:
  Datum() = default;  // NULL
  static Datum null() { return Datum(); }
  static Datum boolean(bool b);
  static Datum integer(int64_t i);
  static Datum floating(double d);
  static Datum text(std::string s);

  Type type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(v_); }

  bool as_bool() const { return std::get<bool>(v_); }
  int64_t as_int() const { return std::get<int64_t>(v_); }
  double as_float() const { return std::get<double>(v_); }
  const std::string& as_text() const { return std::get<std::string>(v_); }

  /// Numeric view (int widened to double); only for kInt/kFloat/kBool.
  double numeric() const;

  /// Postgres text output: integers plain, floats shortest, bools "t"/"f".
  /// NULL renders as an empty string (callers emit wire NULL separately).
  std::string to_text() const;

  /// Three-valued SQL comparison: nullopt when either side is NULL.
  /// Numeric types compare numerically; text compares bytewise.
  /// Cross-type text/number comparisons attempt numeric coercion of the
  /// text side (Postgres would error; our subset coerces, which is enough
  /// for the workloads and keeps both engines consistent).
  std::optional<int> compare(const Datum& other) const;

  /// Equality for hashing/grouping: NULLs group together (SQL GROUP BY).
  bool group_equal(const Datum& other) const;
  size_t hash() const;

  bool operator==(const Datum& other) const { return v_ == other.v_; }

 private:
  std::variant<std::monostate, bool, int64_t, double, std::string> v_;
};

}  // namespace rddr::sqldb
