#include "sqldb/engine.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <functional>
#include <unordered_map>
#include <variant>

#include "common/strutil.h"
#include "sqldb/parser.h"

namespace rddr::sqldb {

namespace {

/// Rows sampled by the planner's selectivity estimation probe — stands in
/// for Postgres' pg_statistic histogram contents (the CVE leak channel).
constexpr size_t kStatsSampleRows = 30;
constexpr int kMaxFunctionDepth = 16;

// ---------- version handling ----------

std::vector<int> parse_version(const std::string& v) {
  std::vector<int> out;
  for (const auto& part : split(v, '.')) {
    auto n = parse_i64(part);
    out.push_back(n ? static_cast<int>(*n) : 0);
  }
  return out;
}

}  // namespace

int compare_versions(const std::string& a, const std::string& b) {
  auto va = parse_version(a), vb = parse_version(b);
  size_t n = std::max(va.size(), vb.size());
  for (size_t i = 0; i < n; ++i) {
    int x = i < va.size() ? va[i] : 0;
    int y = i < vb.size() ? vb[i] : 0;
    if (x != y) return x < y ? -1 : 1;
  }
  return 0;
}

EngineInfo minipg_info(const std::string& version) {
  EngineInfo info;
  info.product = "minipg";
  info.version = version;
  info.version_banner = "PostgreSQL " + version + " (minipg build)";
  info.supports_udf = true;
  info.scan_insertion_order = true;
  // CVE-2017-7484: fixed in 9.2.21 / 9.6.3 / 10.0. Anything older leaks
  // stats without a privilege check.
  if (compare_versions(version, "9.2.21") < 0)
    info.vulns.stats_leak_ignores_privilege = true;
  // CVE-2019-10130: affects 9.5..11 before the 2019-05 minors; our gate:
  // 10.0 <= v < 10.8 bypasses RLS in the stats probe (fixed by 10.8/10.9).
  if (compare_versions(version, "10.0") >= 0 &&
      compare_versions(version, "10.8") < 0)
    info.vulns.stats_leak_ignores_rls = true;
  return info;
}

EngineInfo roachdb_info(const std::string& version) {
  EngineInfo info;
  info.product = "roachdb";
  info.version = version;
  info.version_banner = "RoachDB CCL v" + version + " (compatible; minipg wire)";
  info.supports_udf = false;
  info.forces_serializable = true;
  info.scan_insertion_order = false;  // KV scans come back sorted
  return info;
}

int TableData::find_column(std::string_view col) const {
  for (size_t i = 0; i < columns.size(); ++i)
    if (columns[i].name == col) return static_cast<int>(i);
  return -1;
}

void TableData::build_index(const std::string& column) {
  int idx = find_column(column);
  if (idx < 0) return;
  auto& map = hash_indexes[idx];
  map.clear();
  for (size_t i = 0; i < rows.size(); ++i) {
    const Datum& d = rows[i][static_cast<size_t>(idx)];
    if (d.type() == Type::kInt) map.emplace(d.as_int(), i);
  }
}

void TableData::index_appended(size_t first_new_row) {
  for (auto& [col, map] : hash_indexes) {
    for (size_t i = first_new_row; i < rows.size(); ++i) {
      const Datum& d = rows[i][static_cast<size_t>(col)];
      if (d.type() == Type::kInt) map.emplace(d.as_int(), i);
    }
  }
}

void TableData::rebuild_indexes() {
  for (auto& [col, map] : hash_indexes) {
    map.clear();
    for (size_t i = 0; i < rows.size(); ++i) {
      const Datum& d = rows[i][static_cast<size_t>(col)];
      if (d.type() == Type::kInt) map.emplace(d.as_int(), i);
    }
  }
}

int64_t TableData::approx_bytes() const {
  int64_t bytes = 0;
  for (const auto& row : rows) {
    bytes += 24;  // tuple header
    for (const auto& d : row) {
      switch (d.type()) {
        case Type::kText: bytes += 16 + static_cast<int64_t>(d.as_text().size()); break;
        case Type::kNull: bytes += 1; break;
        default: bytes += 8;
      }
    }
  }
  return bytes;
}

Database::Database(EngineInfo info) : info_(std::move(info)) {}

TableData* Database::create_table(const std::string& name,
                                  std::vector<Column> columns) {
  TableData t;
  t.name = name;
  t.columns = std::move(columns);
  auto [it, _] = tables_.insert_or_assign(name, std::move(t));
  note_table_created(it->second);
  return &it->second;
}

TableData* Database::find_table(const std::string& name) {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

const TableData* Database::find_table(const std::string& name) const {
  auto it = tables_.find(name);
  return it == tables_.end() ? nullptr : &it->second;
}

int64_t Database::approx_bytes() const {
  int64_t total = 0;
  for (const auto& [_, t] : tables_) total += t.approx_bytes();
  return total;
}

int64_t Database::total_rows() const {
  int64_t total = 0;
  for (const auto& [_, t] : tables_) total += static_cast<int64_t>(t.rows.size());
  return total;
}

// ---------- evaluation ----------

namespace {

struct SqlError {
  std::string sqlstate;
  std::string message;
};

template <typename T>
using EvalResult = std::variant<T, SqlError>;

struct ScopeEntry {
  std::string alias;
  const TableData* table;
  const Row* row;
};

struct EvalCtx {
  const Database* db = nullptr;
  const std::string* user = nullptr;
  std::vector<ScopeEntry> scope;
  const std::vector<Datum>* params = nullptr;
  std::vector<std::string>* notices = nullptr;
  int64_t* rows_scanned = nullptr;
  int depth = 0;
};

EvalResult<Datum> eval(const Expr& e, EvalCtx& ctx);

SqlError err(std::string sqlstate, std::string message) {
  return SqlError{std::move(sqlstate), std::move(message)};
}

bool like_match(std::string_view text, std::string_view pat) {
  // Iterative wildcard match: '%' any run, '_' one char.
  size_t ti = 0, pi = 0, star_ti = std::string_view::npos, star_pi = 0;
  while (ti < text.size()) {
    if (pi < pat.size() && (pat[pi] == '_' || pat[pi] == text[ti])) {
      ++ti;
      ++pi;
    } else if (pi < pat.size() && pat[pi] == '%') {
      star_pi = ++pi;
      star_ti = ti;
    } else if (star_ti != std::string_view::npos) {
      pi = star_pi;
      ti = ++star_ti;
    } else {
      return false;
    }
  }
  while (pi < pat.size() && pat[pi] == '%') ++pi;
  return pi == pat.size();
}

/// Expands a plpgsql RAISE NOTICE format: each '%' consumes one argument.
std::string expand_notice(const std::string& fmt,
                          const std::vector<Datum>& args) {
  std::string out;
  size_t arg = 0;
  for (size_t i = 0; i < fmt.size(); ++i) {
    if (fmt[i] == '%' && i + 1 < fmt.size() && fmt[i + 1] == '%') {
      out.push_back('%');
      ++i;
    } else if (fmt[i] == '%') {
      out += arg < args.size() ? args[arg].to_text() : "<null>";
      ++arg;
    } else {
      out.push_back(fmt[i]);
    }
  }
  return out;
}

EvalResult<Datum> call_function(const FunctionDef& fn,
                                std::vector<Datum> args, EvalCtx& ctx) {
  if (ctx.depth >= kMaxFunctionDepth)
    return err("54001", "function call depth limit exceeded");
  if (args.size() != fn.nargs)
    return err("42883",
               strformat("function %s expects %zu arguments, got %zu",
                         fn.name.c_str(), fn.nargs, args.size()));
  EvalCtx inner = ctx;
  inner.params = &args;
  inner.depth = ctx.depth + 1;
  inner.scope.clear();
  if (fn.notice_format && ctx.notices) {
    std::vector<Datum> notice_vals;
    for (const auto& a : fn.notice_args) {
      auto v = eval(*a, inner);
      if (std::holds_alternative<SqlError>(v)) return v;
      notice_vals.push_back(std::get<Datum>(std::move(v)));
    }
    ctx.notices->push_back(expand_notice(*fn.notice_format, notice_vals));
  }
  if (!fn.return_expr) return Datum();
  return eval(*fn.return_expr, inner);
}

EvalResult<Datum> eval_builtin(const std::string& name,
                               std::vector<Datum> args, EvalCtx& ctx) {
  auto need = [&](size_t n) { return args.size() == n; };
  if (name == "lower" && need(1))
    return args[0].is_null() ? Datum() : Datum::text(to_lower(args[0].to_text()));
  if (name == "upper" && need(1))
    return args[0].is_null() ? Datum() : Datum::text(to_upper(args[0].to_text()));
  if (name == "length" && need(1))
    return args[0].is_null()
               ? Datum()
               : Datum::integer(static_cast<int64_t>(args[0].to_text().size()));
  if (name == "abs" && need(1)) {
    if (args[0].is_null()) return Datum();
    if (args[0].type() == Type::kInt)
      return Datum::integer(std::llabs(args[0].as_int()));
    return Datum::floating(std::fabs(args[0].numeric()));
  }
  if (name == "substr" || name == "substring") {
    if (args.size() != 2 && args.size() != 3)
      return err("42883", "substr expects 2 or 3 arguments");
    if (args[0].is_null()) return Datum();
    std::string s = args[0].to_text();
    int64_t start = args[1].is_null() ? 1 : args[1].as_int();
    int64_t len = args.size() == 3 && !args[2].is_null()
                      ? args[2].as_int()
                      : static_cast<int64_t>(s.size());
    int64_t begin = std::max<int64_t>(start - 1, 0);
    if (begin >= static_cast<int64_t>(s.size()) || len <= 0)
      return Datum::text("");
    return Datum::text(s.substr(static_cast<size_t>(begin),
                                static_cast<size_t>(len)));
  }
  if (name == "coalesce") {
    for (auto& a : args)
      if (!a.is_null()) return std::move(a);
    return Datum();
  }
  if (name == "concat") {
    std::string out;
    for (const auto& a : args) out += a.to_text();
    return Datum::text(std::move(out));
  }
  if (name == "round") {
    if (args.empty() || args.size() > 2) return err("42883", "round arity");
    if (args[0].is_null()) return Datum();
    double v = args[0].numeric();
    int digits = args.size() == 2 && !args[1].is_null()
                     ? static_cast<int>(args[1].as_int())
                     : 0;
    double scale = std::pow(10.0, digits);
    return Datum::floating(std::round(v * scale) / scale);
  }
  if (name == "floor" && need(1))
    return args[0].is_null() ? Datum() : Datum::floating(std::floor(args[0].numeric()));
  if (name == "ceil" && need(1))
    return args[0].is_null() ? Datum() : Datum::floating(std::ceil(args[0].numeric()));
  if (name == "mod" && need(2)) {
    if (args[0].is_null() || args[1].is_null()) return Datum();
    int64_t d = args[1].as_int();
    if (d == 0) return err("22012", "division by zero");
    return Datum::integer(args[0].as_int() % d);
  }
  if (name == "power" && need(2)) {
    if (args[0].is_null() || args[1].is_null()) return Datum();
    return Datum::floating(std::pow(args[0].numeric(), args[1].numeric()));
  }
  if (name == "version" && need(0))
    return Datum::text(ctx.db->info().version_banner);
  if (name == "current_user" && need(0)) return Datum::text(*ctx.user);
  return err("42883", "unknown function: " + name);
}

EvalResult<Datum> eval_binary(const Expr& e, EvalCtx& ctx) {
  const std::string& op = e.op;
  // Logical operators need SQL three-valued short-circuiting.
  if (op == "and" || op == "or") {
    auto lv = eval(*e.args[0], ctx);
    if (std::holds_alternative<SqlError>(lv)) return lv;
    Datum l = std::get<Datum>(std::move(lv));
    bool l_known = !l.is_null();
    bool l_true = l_known && l.type() == Type::kBool && l.as_bool();
    if (op == "and" && l_known && !l_true) return Datum::boolean(false);
    if (op == "or" && l_true) return Datum::boolean(true);
    auto rv = eval(*e.args[1], ctx);
    if (std::holds_alternative<SqlError>(rv)) return rv;
    Datum r = std::get<Datum>(std::move(rv));
    bool r_known = !r.is_null();
    bool r_true = r_known && r.type() == Type::kBool && r.as_bool();
    if (op == "and") {
      if (!l_known || !r_known) return r_known && !r_true ? Datum::boolean(false) : Datum();
      return Datum::boolean(l_true && r_true);
    }
    if (!l_known || !r_known) return r_true ? Datum::boolean(true) : Datum();
    return Datum::boolean(l_true || r_true);
  }

  auto lv = eval(*e.args[0], ctx);
  if (std::holds_alternative<SqlError>(lv)) return lv;
  auto rv = eval(*e.args[1], ctx);
  if (std::holds_alternative<SqlError>(rv)) return rv;
  Datum l = std::get<Datum>(std::move(lv));
  Datum r = std::get<Datum>(std::move(rv));

  if (op == "=" || op == "<>" || op == "!=" || op == "<" || op == "<=" ||
      op == ">" || op == ">=") {
    auto c = l.compare(r);
    if (!c) return Datum();  // NULL comparison
    int cv = *c;
    bool res = false;
    if (op == "=") res = cv == 0;
    else if (op == "<>" || op == "!=") res = cv != 0;
    else if (op == "<") res = cv < 0;
    else if (op == "<=") res = cv <= 0;
    else if (op == ">") res = cv > 0;
    else res = cv >= 0;
    return Datum::boolean(res);
  }
  if (op == "||") {
    if (l.is_null() || r.is_null()) return Datum();
    return Datum::text(l.to_text() + r.to_text());
  }
  if (op == "+" || op == "-" || op == "*" || op == "/" || op == "%") {
    if (l.is_null() || r.is_null()) return Datum();
    bool both_int = l.type() == Type::kInt && r.type() == Type::kInt;
    if (op == "%") {
      if (!both_int) return err("42883", "operator %% requires integers");
      if (r.as_int() == 0) return err("22012", "division by zero");
      return Datum::integer(l.as_int() % r.as_int());
    }
    if (both_int) {
      int64_t a = l.as_int(), b = r.as_int();
      if (op == "+") return Datum::integer(a + b);
      if (op == "-") return Datum::integer(a - b);
      if (op == "*") return Datum::integer(a * b);
      if (b == 0) return err("22012", "division by zero");
      return Datum::integer(a / b);
    }
    double a = l.type() == Type::kText ? parse_f64(l.as_text()).value_or(0)
                                       : l.numeric();
    double b = r.type() == Type::kText ? parse_f64(r.as_text()).value_or(0)
                                       : r.numeric();
    if (op == "+") return Datum::floating(a + b);
    if (op == "-") return Datum::floating(a - b);
    if (op == "*") return Datum::floating(a * b);
    if (b == 0) return err("22012", "division by zero");
    return Datum::floating(a / b);
  }

  // Custom operator: resolve via the operator catalog.
  auto oit = ctx.db->operators().find(op);
  if (oit == ctx.db->operators().end())
    return err("42883", "operator does not exist: " + op);
  auto fit = ctx.db->functions().find(oit->second.procedure);
  if (fit == ctx.db->functions().end())
    return err("42883", "operator procedure missing: " + oit->second.procedure);
  std::vector<Datum> args;
  args.push_back(std::move(l));
  args.push_back(std::move(r));
  return call_function(fit->second, std::move(args), ctx);
}

EvalResult<Datum> eval(const Expr& e, EvalCtx& ctx) {
  switch (e.kind) {
    case ExprKind::kLiteral:
      return e.literal;
    case ExprKind::kParam: {
      if (!ctx.params || e.param_index < 1 ||
          static_cast<size_t>(e.param_index) > ctx.params->size())
        return err("42P02", strformat("parameter $%d out of range", e.param_index));
      return (*ctx.params)[static_cast<size_t>(e.param_index - 1)];
    }
    case ExprKind::kColumnRef: {
      const Datum* found = nullptr;
      for (const auto& entry : ctx.scope) {
        if (!e.table.empty() && entry.alias != e.table) continue;
        int idx = entry.table->find_column(e.column);
        if (idx >= 0) {
          if (found)
            return err("42702", "ambiguous column reference: " + e.column);
          found = &(*entry.row)[static_cast<size_t>(idx)];
          if (!e.table.empty()) break;
        }
      }
      if (!found) {
        // Postgres exposes current_user as a bare keyword, not a call.
        if (e.table.empty() && e.column == "current_user")
          return Datum::text(*ctx.user);
        return err("42703", "column does not exist: " +
                                (e.table.empty() ? e.column
                                                 : e.table + "." + e.column));
      }
      return *found;
    }
    case ExprKind::kUnary: {
      auto v = eval(*e.args[0], ctx);
      if (std::holds_alternative<SqlError>(v)) return v;
      Datum d = std::get<Datum>(std::move(v));
      if (d.is_null()) return Datum();
      if (e.op == "-") {
        if (d.type() == Type::kInt) return Datum::integer(-d.as_int());
        return Datum::floating(-d.numeric());
      }
      if (d.type() != Type::kBool)
        return err("42804", "argument of NOT must be boolean");
      return Datum::boolean(!d.as_bool());
    }
    case ExprKind::kBinary:
      return eval_binary(e, ctx);
    case ExprKind::kFuncCall: {
      std::vector<Datum> args;
      for (const auto& a : e.args) {
        auto v = eval(*a, ctx);
        if (std::holds_alternative<SqlError>(v)) return v;
        args.push_back(std::get<Datum>(std::move(v)));
      }
      auto fit = ctx.db->functions().find(e.func_name);
      if (fit != ctx.db->functions().end())
        return call_function(fit->second, std::move(args), ctx);
      return eval_builtin(e.func_name, std::move(args), ctx);
    }
    case ExprKind::kAggregate:
      return err("42803", "aggregate not allowed here: " + e.func_name);
    case ExprKind::kIsNull: {
      auto v = eval(*e.args[0], ctx);
      if (std::holds_alternative<SqlError>(v)) return v;
      bool isnull = std::get<Datum>(v).is_null();
      return Datum::boolean(e.negated ? !isnull : isnull);
    }
    case ExprKind::kLike: {
      auto lv = eval(*e.args[0], ctx);
      if (std::holds_alternative<SqlError>(lv)) return lv;
      auto rv = eval(*e.args[1], ctx);
      if (std::holds_alternative<SqlError>(rv)) return rv;
      Datum l = std::get<Datum>(std::move(lv));
      Datum r = std::get<Datum>(std::move(rv));
      if (l.is_null() || r.is_null()) return Datum();
      bool m = like_match(l.to_text(), r.to_text());
      return Datum::boolean(e.negated ? !m : m);
    }
    case ExprKind::kBetween: {
      auto vv = eval(*e.args[0], ctx);
      if (std::holds_alternative<SqlError>(vv)) return vv;
      auto lov = eval(*e.args[1], ctx);
      if (std::holds_alternative<SqlError>(lov)) return lov;
      auto hiv = eval(*e.args[2], ctx);
      if (std::holds_alternative<SqlError>(hiv)) return hiv;
      Datum v = std::get<Datum>(std::move(vv));
      Datum lo = std::get<Datum>(std::move(lov));
      Datum hi = std::get<Datum>(std::move(hiv));
      auto c1 = v.compare(lo);
      auto c2 = v.compare(hi);
      if (!c1 || !c2) return Datum();
      bool in = *c1 >= 0 && *c2 <= 0;
      return Datum::boolean(e.negated ? !in : in);
    }
    case ExprKind::kInList: {
      auto vv = eval(*e.args[0], ctx);
      if (std::holds_alternative<SqlError>(vv)) return vv;
      Datum v = std::get<Datum>(std::move(vv));
      bool saw_null = v.is_null();
      bool found = false;
      for (size_t i = 1; i < e.args.size() && !found; ++i) {
        auto iv = eval(*e.args[i], ctx);
        if (std::holds_alternative<SqlError>(iv)) return iv;
        Datum item = std::get<Datum>(std::move(iv));
        auto c = v.compare(item);
        if (!c) {
          saw_null = true;
          continue;
        }
        if (*c == 0) found = true;
      }
      if (found) return Datum::boolean(!e.negated);
      if (saw_null) return Datum();
      return Datum::boolean(e.negated);
    }
    case ExprKind::kCase: {
      size_t pairs = (e.args.size() - (e.case_has_else ? 1 : 0)) / 2;
      for (size_t i = 0; i < pairs; ++i) {
        auto cv = eval(*e.args[2 * i], ctx);
        if (std::holds_alternative<SqlError>(cv)) return cv;
        Datum c = std::get<Datum>(std::move(cv));
        if (!c.is_null() && c.type() == Type::kBool && c.as_bool())
          return eval(*e.args[2 * i + 1], ctx);
      }
      if (e.case_has_else) return eval(*e.args.back(), ctx);
      return Datum();
    }
  }
  return err("XX000", "unreachable expression kind");
}

bool expr_has_aggregate(const Expr& e) {
  if (e.kind == ExprKind::kAggregate) return true;
  for (const auto& a : e.args)
    if (a && expr_has_aggregate(*a)) return true;
  return false;
}

/// Truthiness of a WHERE/HAVING result (NULL and non-bool are false).
bool datum_is_true(const Datum& d) {
  return !d.is_null() && d.type() == Type::kBool && d.as_bool();
}

Datum coerce(const Datum& d, Type target) {
  if (d.is_null()) return d;
  if (d.type() == target) return d;
  switch (target) {
    case Type::kInt:
      if (d.type() == Type::kFloat)
        return Datum::integer(static_cast<int64_t>(std::llround(d.as_float())));
      if (d.type() == Type::kText) {
        auto v = parse_i64(d.as_text());
        return v ? Datum::integer(*v) : d;
      }
      if (d.type() == Type::kBool) return Datum::integer(d.as_bool() ? 1 : 0);
      return d;
    case Type::kFloat:
      if (d.type() == Type::kInt) return Datum::floating(static_cast<double>(d.as_int()));
      if (d.type() == Type::kText) {
        auto v = parse_f64(d.as_text());
        return v ? Datum::floating(*v) : d;
      }
      return d;
    case Type::kText:
      return Datum::text(d.to_text());
    case Type::kBool:
      if (d.type() == Type::kInt) return Datum::boolean(d.as_int() != 0);
      if (d.type() == Type::kText)
        return Datum::boolean(d.as_text() == "t" || d.as_text() == "true");
      return d;
    default:
      return d;
  }
}

}  // namespace

// ---------- session ----------

Session::Session(Database& db, std::string user)
    : db_(db), user_(std::move(user)) {
  settings_["client_min_messages"] = "notice";
}

std::string Session::setting(const std::string& name) const {
  auto it = settings_.find(name);
  return it == settings_.end() ? "" : it->second;
}

ExecResult Session::execute(std::string_view sql) {
  ExecResult result;
  auto parsed = parse_sql(sql);
  if (!parsed.ok()) {
    StatementResult sr;
    sr.error_sqlstate = "42601";
    sr.error_message = parsed.error();
    result.statements.push_back(std::move(sr));
    return result;
  }
  for (const auto& st : parsed.value()) {
    StatementResult sr = run_statement(st);
    bool failed = sr.failed();
    result.rows_scanned += sr.rows_scanned;
    result.statements.push_back(std::move(sr));
    if (failed) break;  // simple-protocol scripts abort at first error
  }
  return result;
}

StatementResult Session::run_statement(const Statement& st) {
  using K = Statement::Kind;
  switch (st.kind) {
    case K::kSelect: return run_select(*st.select, false, false);
    case K::kInsert: return run_insert(*st.insert);
    case K::kUpdate: return run_update(*st.update);
    case K::kDelete: return run_delete(*st.del);
    case K::kCreateTable: return run_create_table(*st.create_table);
    case K::kDropTable: return run_drop_table(*st.drop_table);
    case K::kCreateFunction: return run_create_function(*st.create_function);
    case K::kCreateOperator: return run_create_operator(*st.create_operator);
    case K::kSet: return run_set(*st.set);
    case K::kGrant: return run_grant(*st.grant);
    case K::kAlterTableRls: return run_alter_rls(*st.alter_rls);
    case K::kCreatePolicy: return run_create_policy(*st.create_policy);
    case K::kExplain:
      return run_select(*st.explain->select, true, st.explain->costs_off);
    case K::kTxn: {
      StatementResult sr;
      sr.command_tag = to_upper(st.txn->keyword);
      return sr;
    }
  }
  StatementResult sr;
  sr.error_sqlstate = "XX000";
  sr.error_message = "unhandled statement";
  return sr;
}

namespace {

/// Can `user` SELECT from `t`?
bool can_select(const TableData& t, const std::string& user) {
  if (user == "postgres" || user == t.owner) return true;
  auto it = t.grants.find("SELECT");
  return it != t.grants.end() && it->second.count(user) > 0;
}

bool can_modify(const TableData& t, const std::string& user,
                const std::string& privilege) {
  if (user == "postgres" || user == t.owner) return true;
  auto it = t.grants.find(privilege);
  return it != t.grants.end() && it->second.count(user) > 0;
}

/// True when RLS filtering applies to this user on this table.
bool rls_applies(const TableData& t, const std::string& user) {
  return t.rls_enabled && user != "postgres" && user != t.owner;
}

/// Evaluates the table's policies for `user` against `row`.
EvalResult<bool> rls_row_visible(const Database& db, const TableData& t,
                                 const std::string& user, const Row& row) {
  bool visible = false;
  for (const auto& pol : t.policies) {
    if (!pol.role.empty() && pol.role != user) continue;
    EvalCtx ctx;
    ctx.db = &db;
    ctx.user = &user;
    ctx.scope.push_back(ScopeEntry{t.name, &t, &row});
    auto v = eval(*pol.using_expr, ctx);
    if (std::holds_alternative<SqlError>(v))
      return std::get<SqlError>(std::move(v));
    if (datum_is_true(std::get<Datum>(v))) visible = true;
  }
  return visible;
}

/// For single-table queries, resolves "col = <int literal>" conjuncts
/// against a hash index. Returns matching row ordinals (sorted, so scan
/// order stays deterministic), or nullopt for a full scan.
std::optional<std::vector<size_t>> index_candidates(const TableData& t,
                                                    const Expr* where) {
  if (!where) return std::nullopt;
  std::vector<const Expr*> conjuncts{where};
  while (!conjuncts.empty()) {
    const Expr* e = conjuncts.back();
    conjuncts.pop_back();
    if (e->kind == ExprKind::kBinary && e->op == "and") {
      conjuncts.push_back(e->args[0].get());
      conjuncts.push_back(e->args[1].get());
      continue;
    }
    if (e->kind != ExprKind::kBinary || e->op != "=") continue;
    const Expr* col = nullptr;
    const Expr* lit = nullptr;
    if (e->args[0]->kind == ExprKind::kColumnRef &&
        e->args[1]->kind == ExprKind::kLiteral) {
      col = e->args[0].get();
      lit = e->args[1].get();
    } else if (e->args[1]->kind == ExprKind::kColumnRef &&
               e->args[0]->kind == ExprKind::kLiteral) {
      col = e->args[1].get();
      lit = e->args[0].get();
    } else {
      continue;
    }
    if (lit->literal.type() != Type::kInt) continue;
    int ci = t.find_column(col->column);
    if (ci < 0) continue;
    auto it = t.hash_indexes.find(ci);
    if (it == t.hash_indexes.end()) continue;
    auto [b, end] = it->second.equal_range(lit->literal.as_int());
    std::vector<size_t> out;
    for (auto i = b; i != end; ++i) out.push_back(i->second);
    std::sort(out.begin(), out.end());
    return out;
  }
  return std::nullopt;
}

}  // namespace

// ---------- SELECT ----------

StatementResult Session::run_select(const SelectStmt& sel, bool explain_only,
                                    bool costs_off) {
  (void)costs_off;  // cost output is always off in this engine
  StatementResult out;
  out.is_rowset = true;

  // Resolve FROM tables.
  struct FromEntry {
    const TableRef* ref;
    const TableData* table;
  };
  std::vector<FromEntry> from;
  for (const auto& tr : sel.from) {
    const TableData* t = db_.find_table(tr.table);
    if (!t) {
      out.error_sqlstate = "42P01";
      out.error_message = "relation does not exist: " + tr.table;
      return out;
    }
    from.push_back(FromEntry{&tr, t});
  }

  // ---- Planner statistics probe: the CVE site. ----
  // Selectivity estimation for user-defined operators with a `restrict`
  // estimator evaluates the operator's procedure over sampled column
  // values. Which rows may be sampled depends on the engine build:
  //   - privilege unchecked (CVE-2017-7484) on vulnerable builds;
  //   - RLS unchecked (CVE-2019-10130) on vulnerable builds.
  if (sel.where) {
    std::function<void(const Expr&)> probe = [&](const Expr& e) {
      for (const auto& a : e.args)
        if (a) probe(*a);
      if (e.kind != ExprKind::kBinary) return;
      auto oit = db_.operators().find(e.op);
      if (oit == db_.operators().end()) return;
      if (oit->second.restrict_estimator.empty()) return;
      auto fit = db_.functions().find(oit->second.procedure);
      if (fit == db_.functions().end()) return;
      // Identify the column operand and its table.
      const Expr* col_expr = nullptr;
      const Expr* other = nullptr;
      if (e.args[0]->kind == ExprKind::kColumnRef) {
        col_expr = e.args[0].get();
        other = e.args[1].get();
      } else if (e.args[1]->kind == ExprKind::kColumnRef) {
        col_expr = e.args[1].get();
        other = e.args[0].get();
      } else {
        return;
      }
      const TableData* table = nullptr;
      int col_idx = -1;
      for (const auto& fe : from) {
        if (!col_expr->table.empty() && fe.ref->alias != col_expr->table)
          continue;
        int idx = fe.table->find_column(col_expr->column);
        if (idx >= 0) {
          table = fe.table;
          col_idx = idx;
          break;
        }
      }
      if (!table) return;
      // Privilege gate (fixed in 9.2.21+ for CVE-2017-7484).
      if (!db_.info().vulns.stats_leak_ignores_privilege &&
          !can_select(*table, user_))
        return;
      // Constant side of the operator.
      EvalCtx const_ctx;
      const_ctx.db = &db_;
      const_ctx.user = &user_;
      auto other_v = eval(*other, const_ctx);
      if (std::holds_alternative<SqlError>(other_v)) return;
      Datum const_side = std::get<Datum>(std::move(other_v));
      bool col_on_left = col_expr == e.args[0].get();
      // Sample rows; RLS gate (fixed in 10.8+ for CVE-2019-10130).
      size_t sampled = 0;
      for (const auto& row : table->rows) {
        if (sampled >= kStatsSampleRows) break;
        if (rls_applies(*table, user_) &&
            !db_.info().vulns.stats_leak_ignores_rls) {
          auto vis = rls_row_visible(db_, *table, user_, row);
          if (std::holds_alternative<SqlError>(vis) ||
              !std::get<bool>(vis))
            continue;
        }
        ++sampled;
        EvalCtx fctx;
        fctx.db = &db_;
        fctx.user = &user_;
        fctx.notices = &out.notices;
        std::vector<Datum> args;
        const Datum& colv = row[static_cast<size_t>(col_idx)];
        if (col_on_left) {
          args = {colv, const_side};
        } else {
          args = {const_side, colv};
        }
        (void)call_function(fit->second, std::move(args), fctx);
        out.rows_scanned += 1;
      }
    };
    probe(*sel.where);
  }

  if (explain_only) {
    out.columns = {"QUERY PLAN"};
    for (size_t i = 0; i < from.size(); ++i) {
      std::string line = (i == 0 ? "Seq Scan on " : "  Nested Loop join with ")
                         + from[i].ref->table;
      out.rows.push_back({line});
      if (from[i].ref->join_on)
        out.rows.push_back({"    Join Filter: " + from[i].ref->join_on->to_string()});
    }
    if (from.empty()) out.rows.push_back({"Result"});
    if (sel.where) out.rows.push_back({"  Filter: " + sel.where->to_string()});
    out.command_tag = "EXPLAIN";
    return out;
  }

  // Privilege checks happen *after* planning — that ordering is the
  // CVE-2017-7484 leak-before-denial behaviour.
  for (const auto& fe : from) {
    if (!can_select(*fe.table, user_)) {
      out.error_sqlstate = "42501";
      out.error_message = "permission denied for table " + fe.table->name;
      return out;
    }
  }

  EvalCtx base_ctx;
  base_ctx.db = &db_;
  base_ctx.user = &user_;
  base_ctx.notices = &out.notices;
  base_ctx.rows_scanned = &out.rows_scanned;

  // Determine grouping.
  bool has_agg = !sel.group_by.empty();
  for (const auto& item : sel.items)
    if (item.expr && expr_has_aggregate(*item.expr)) has_agg = true;
  if (sel.having) has_agg = true;

  // Output column names.
  auto derive_name = [](const SelectItem& item) -> std::string {
    if (!item.alias.empty()) return item.alias;
    if (!item.expr) return "?column?";
    if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column;
    if (item.expr->kind == ExprKind::kAggregate ||
        item.expr->kind == ExprKind::kFuncCall)
      return item.expr->func_name;
    return "?column?";
  };

  std::vector<size_t> star_positions;  // indices in sel.items that are '*'
  for (size_t i = 0; i < sel.items.size(); ++i) {
    const auto& item = sel.items[i];
    if (item.star) {
      for (const auto& fe : from)
        for (const auto& col : fe.table->columns) out.columns.push_back(col.name);
      star_positions.push_back(i);
    } else {
      out.columns.push_back(derive_name(item));
    }
  }

  // ---- Build the joined, filtered row stream. ----
  struct ResultRow {
    std::vector<Datum> values;      // projected (non-grouped path)
    std::vector<Datum> order_keys;  // evaluated ORDER BY keys
    std::vector<const Row*> scope_rows;  // per-FROM-table source rows
  };
  std::vector<std::vector<const Row*>> matches;  // scope rows per match
  SqlError scan_error{"", ""};
  bool errored = false;

  std::function<void(size_t, std::vector<const Row*>&)> scan =
      [&](size_t level, std::vector<const Row*>& acc) {
        if (errored) return;
        if (level == from.size()) {
          // WHERE filter.
          if (sel.where) {
            EvalCtx ctx = base_ctx;
            for (size_t i = 0; i < from.size(); ++i)
              ctx.scope.push_back(
                  ScopeEntry{from[i].ref->alias, from[i].table, acc[i]});
            auto v = eval(*sel.where, ctx);
            if (std::holds_alternative<SqlError>(v)) {
              scan_error = std::get<SqlError>(std::move(v));
              errored = true;
              return;
            }
            if (!datum_is_true(std::get<Datum>(v))) return;
          }
          matches.push_back(acc);
          return;
        }
        const auto& fe = from[level];
        bool rls = rls_applies(*fe.table, user_);
        // Indexed fast path: a single-table equality predicate with a hash
        // index visits only the matching rows (pgbench's PK lookup).
        std::optional<std::vector<size_t>> candidates;
        if (level == 0 && from.size() == 1)
          candidates = index_candidates(*fe.table, sel.where.get());
        size_t scan_count =
            candidates ? candidates->size() : fe.table->rows.size();
        // Buffer-pool modeling: tell the storage layer which pages this
        // pass over the table touches (all of them for a heap scan, just
        // the candidates' pages for an index probe).
        db_.note_scan(*fe.table, candidates ? &*candidates : nullptr);
        for (size_t scan_i = 0; scan_i < scan_count; ++scan_i) {
          const Row& row =
              fe.table->rows[candidates ? (*candidates)[scan_i] : scan_i];
          if (errored) return;
          out.rows_scanned += 1;
          if (rls) {
            auto vis = rls_row_visible(db_, *fe.table, user_, row);
            if (std::holds_alternative<SqlError>(vis)) {
              scan_error = std::get<SqlError>(std::move(vis));
              errored = true;
              return;
            }
            if (!std::get<bool>(vis)) continue;
          }
          acc.push_back(&row);
          // Apply the JOIN ON condition as soon as its table is in scope.
          bool pass = true;
          if (fe.ref->join_on) {
            EvalCtx ctx = base_ctx;
            for (size_t i = 0; i <= level; ++i)
              ctx.scope.push_back(
                  ScopeEntry{from[i].ref->alias, from[i].table, acc[i]});
            auto v = eval(*fe.ref->join_on, ctx);
            if (std::holds_alternative<SqlError>(v)) {
              scan_error = std::get<SqlError>(std::move(v));
              errored = true;
              acc.pop_back();
              return;
            }
            pass = datum_is_true(std::get<Datum>(v));
          }
          if (pass) scan(level + 1, acc);
          acc.pop_back();
        }
      };

  if (from.empty()) {
    // SELECT <exprs> without FROM: a single empty-scope row.
    matches.push_back({});
  } else {
    std::vector<const Row*> acc;
    scan(0, acc);
  }
  if (errored) {
    out.error_sqlstate = scan_error.sqlstate;
    out.error_message = scan_error.message;
    return out;
  }

  auto make_scope = [&](const std::vector<const Row*>& rows_in_scope) {
    std::vector<ScopeEntry> scope;
    for (size_t i = 0; i < from.size(); ++i)
      scope.push_back(
          ScopeEntry{from[i].ref->alias, from[i].table, rows_in_scope[i]});
    return scope;
  };

  std::vector<ResultRow> results;

  if (!has_agg) {
    for (const auto& m : matches) {
      ResultRow rr;
      rr.scope_rows = m;
      EvalCtx ctx = base_ctx;
      ctx.scope = make_scope(m);
      for (const auto& item : sel.items) {
        if (item.star) {
          for (const auto* r : m)
            for (const auto& d : *r) rr.values.push_back(d);
          continue;
        }
        auto v = eval(*item.expr, ctx);
        if (std::holds_alternative<SqlError>(v)) {
          auto& se = std::get<SqlError>(v);
          out.error_sqlstate = se.sqlstate;
          out.error_message = se.message;
          return out;
        }
        rr.values.push_back(std::get<Datum>(std::move(v)));
      }
      results.push_back(std::move(rr));
    }
  } else {
    // ---- Grouped / aggregated path. ----
    struct Group {
      std::vector<Datum> keys;
      std::vector<std::vector<const Row*>> members;
    };
    std::vector<Group> groups;
    std::unordered_map<size_t, std::vector<size_t>> index;  // hash -> group ids
    for (const auto& m : matches) {
      EvalCtx ctx = base_ctx;
      ctx.scope = make_scope(m);
      std::vector<Datum> keys;
      for (const auto& g : sel.group_by) {
        auto v = eval(*g, ctx);
        if (std::holds_alternative<SqlError>(v)) {
          auto& se = std::get<SqlError>(v);
          out.error_sqlstate = se.sqlstate;
          out.error_message = se.message;
          return out;
        }
        keys.push_back(std::get<Datum>(std::move(v)));
      }
      size_t h = 1469598103u;
      for (const auto& k : keys) h = h * 1099511628211ull ^ k.hash();
      Group* grp = nullptr;
      for (size_t gid : index[h]) {
        bool equal = true;
        for (size_t i = 0; i < keys.size(); ++i)
          if (!groups[gid].keys[i].group_equal(keys[i])) {
            equal = false;
            break;
          }
        if (equal) {
          grp = &groups[gid];
          break;
        }
      }
      if (!grp) {
        index[h].push_back(groups.size());
        groups.push_back(Group{std::move(keys), {}});
        grp = &groups.back();
      }
      grp->members.push_back(m);
    }
    if (groups.empty() && sel.group_by.empty()) {
      // Aggregate over an empty input still yields one row (COUNT = 0).
      groups.push_back(Group{{}, {}});
    }

    // Aggregate evaluation helper: replaces kAggregate nodes with computed
    // datums by evaluating bottom-up over group members.
    std::function<EvalResult<Datum>(const Expr&, Group&)> eval_agg_expr =
        [&](const Expr& e, Group& grp) -> EvalResult<Datum> {
      if (e.kind == ExprKind::kAggregate) {
        const std::string& fn = e.func_name;
        int64_t count = 0;
        double sum = 0;
        bool any = false;
        bool all_int = true;
        Datum min_v, max_v;
        std::vector<Datum> seen;  // DISTINCT support
        for (const auto& m : grp.members) {
          Datum v;
          if (e.star) {
            v = Datum::integer(1);
          } else {
            EvalCtx ctx = base_ctx;
            ctx.scope = make_scope(m);
            auto ev = eval(*e.args[0], ctx);
            if (std::holds_alternative<SqlError>(ev)) return ev;
            v = std::get<Datum>(std::move(ev));
          }
          if (v.is_null()) continue;
          if (e.distinct) {
            bool dup = false;
            for (const auto& s : seen)
              if (s.group_equal(v)) {
                dup = true;
                break;
              }
            if (dup) continue;
            seen.push_back(v);
          }
          ++count;
          if (v.type() != Type::kInt) all_int = false;
          if (v.type() == Type::kInt || v.type() == Type::kFloat ||
              v.type() == Type::kBool)
            sum += v.numeric();
          if (!any) {
            min_v = v;
            max_v = v;
            any = true;
          } else {
            auto c1 = v.compare(min_v);
            if (c1 && *c1 < 0) min_v = v;
            auto c2 = v.compare(max_v);
            if (c2 && *c2 > 0) max_v = v;
          }
        }
        if (fn == "count") return Datum::integer(count);
        if (!any) return Datum();  // SUM/AVG/MIN/MAX over empty -> NULL
        if (fn == "sum")
          return all_int ? Datum::integer(static_cast<int64_t>(sum))
                         : Datum::floating(sum);
        if (fn == "avg") return Datum::floating(sum / static_cast<double>(count));
        if (fn == "min") return min_v;
        if (fn == "max") return max_v;
        return err("42883", "unknown aggregate: " + fn);
      }
      // Non-aggregate nodes: must be computable from the group keys; we
      // evaluate over the first member's scope (valid for grouped columns).
      if (e.args.empty() || e.kind == ExprKind::kColumnRef ||
          e.kind == ExprKind::kLiteral) {
        EvalCtx ctx = base_ctx;
        if (!grp.members.empty()) ctx.scope = make_scope(grp.members.front());
        return eval(e, ctx);
      }
      // Recurse: clone evaluation over children.
      Expr shallow;
      shallow.kind = e.kind;
      shallow.op = e.op;
      shallow.func_name = e.func_name;
      shallow.negated = e.negated;
      shallow.star = e.star;
      shallow.case_has_else = e.case_has_else;
      std::vector<Datum> child_vals;
      for (const auto& a : e.args) {
        auto cv = eval_agg_expr(*a, grp);
        if (std::holds_alternative<SqlError>(cv)) return cv;
        child_vals.push_back(std::get<Datum>(std::move(cv)));
      }
      for (const auto& d : child_vals) shallow.args.push_back(make_literal(d));
      EvalCtx ctx = base_ctx;
      return eval(shallow, ctx);
    };

    for (auto& grp : groups) {
      ResultRow rr;
      // HAVING filter.
      if (sel.having) {
        auto hv = eval_agg_expr(*sel.having, grp);
        if (std::holds_alternative<SqlError>(hv)) {
          auto& se = std::get<SqlError>(hv);
          out.error_sqlstate = se.sqlstate;
          out.error_message = se.message;
          return out;
        }
        if (!datum_is_true(std::get<Datum>(hv))) continue;
      }
      for (const auto& item : sel.items) {
        if (item.star) {
          out.error_sqlstate = "42803";
          out.error_message = "SELECT * not allowed with GROUP BY";
          return out;
        }
        auto v = eval_agg_expr(*item.expr, grp);
        if (std::holds_alternative<SqlError>(v)) {
          auto& se = std::get<SqlError>(v);
          out.error_sqlstate = se.sqlstate;
          out.error_message = se.message;
          return out;
        }
        rr.values.push_back(std::get<Datum>(std::move(v)));
      }
      if (!grp.members.empty()) rr.scope_rows = grp.members.front();
      results.push_back(std::move(rr));
    }
  }

  // ---- ORDER BY ----
  if (!sel.order_by.empty()) {
    // Each order key resolves to (a) a positional number, (b) a select
    // alias, (c) a select-item expression match, or (d) for non-grouped
    // queries, an arbitrary expression over the row scope.
    struct KeySpec {
      int select_index = -1;  // resolved to a projected column
      const Expr* expr = nullptr;
      bool descending;
    };
    std::vector<KeySpec> specs;
    for (const auto& oi : sel.order_by) {
      KeySpec ks;
      ks.descending = oi.descending;
      const Expr& e = *oi.expr;
      if (e.kind == ExprKind::kLiteral && e.literal.type() == Type::kInt) {
        int pos = static_cast<int>(e.literal.as_int());
        if (pos < 1 || pos > static_cast<int>(out.columns.size())) {
          out.error_sqlstate = "42P10";
          out.error_message = "ORDER BY position out of range";
          return out;
        }
        ks.select_index = pos - 1;
      } else {
        // Alias or expression match against select items.
        std::string estr = e.to_string();
        int col = 0;
        bool found = false;
        for (size_t i = 0; i < sel.items.size() && !found; ++i) {
          const auto& item = sel.items[i];
          int width = 1;
          if (item.star) {
            width = 0;
            for (const auto& fe : from)
              width += static_cast<int>(fe.table->columns.size());
          } else {
            if ((e.kind == ExprKind::kColumnRef && e.table.empty() &&
                 item.alias == e.column) ||
                (item.expr && item.expr->to_string() == estr)) {
              ks.select_index = col;
              found = true;
            }
          }
          col += width;
        }
        if (!found) ks.expr = &e;
      }
      specs.push_back(ks);
    }
    // Evaluate expression keys (non-grouped path only).
    for (auto& rr : results) {
      for (const auto& ks : specs) {
        if (ks.select_index >= 0) {
          rr.order_keys.push_back(rr.values[static_cast<size_t>(ks.select_index)]);
        } else if (!has_agg && !rr.scope_rows.empty()) {
          EvalCtx ctx = base_ctx;
          ctx.scope = make_scope(rr.scope_rows);
          auto v = eval(*ks.expr, ctx);
          if (std::holds_alternative<SqlError>(v)) {
            auto& se = std::get<SqlError>(v);
            out.error_sqlstate = se.sqlstate;
            out.error_message = se.message;
            return out;
          }
          rr.order_keys.push_back(std::get<Datum>(std::move(v)));
        } else {
          out.error_sqlstate = "42803";
          out.error_message =
              "ORDER BY expression must appear in the select list for "
              "aggregate queries";
          return out;
        }
      }
    }
    std::stable_sort(results.begin(), results.end(),
                     [&](const ResultRow& a, const ResultRow& b) {
                       for (size_t i = 0; i < specs.size(); ++i) {
                         auto c = a.order_keys[i].compare(b.order_keys[i]);
                         int cv;
                         if (!c) {
                           // NULLS LAST (asc) / FIRST (desc), like Postgres.
                           bool an = a.order_keys[i].is_null();
                           bool bn = b.order_keys[i].is_null();
                           if (an == bn) continue;
                           cv = an ? 1 : -1;
                         } else {
                           cv = *c;
                         }
                         if (cv == 0) continue;
                         return specs[i].descending ? cv > 0 : cv < 0;
                       }
                       return false;
                     });
  } else if (!db_.info().scan_insertion_order) {
    // roachdb personality: unordered SELECTs come back sorted — the
    // paper's "unspecified row order" hazard, reproduced deliberately.
    std::sort(results.begin(), results.end(),
              [](const ResultRow& a, const ResultRow& b) {
                for (size_t i = 0; i < a.values.size() && i < b.values.size();
                     ++i) {
                  auto c = a.values[i].compare(b.values[i]);
                  if (!c) {
                    bool an = a.values[i].is_null(), bn = b.values[i].is_null();
                    if (an != bn) return bn;
                    continue;
                  }
                  if (*c != 0) return *c < 0;
                }
                return false;
              });
  }

  if (sel.limit && static_cast<int64_t>(results.size()) > *sel.limit)
    results.resize(static_cast<size_t>(*sel.limit));

  for (const auto& rr : results) {
    std::vector<std::optional<std::string>> row;
    for (const auto& d : rr.values) {
      if (d.is_null()) row.push_back(std::nullopt);
      else row.push_back(d.to_text());
    }
    out.rows.push_back(std::move(row));
  }
  out.command_tag = "SELECT " + std::to_string(out.rows.size());
  return out;
}

// ---------- DML / DDL ----------

StatementResult Session::run_insert(const InsertStmt& ins) {
  StatementResult out;
  TableData* t = db_.find_table(ins.table);
  if (!t) {
    out.error_sqlstate = "42P01";
    out.error_message = "relation does not exist: " + ins.table;
    return out;
  }
  if (!can_modify(*t, user_, "INSERT")) {
    out.error_sqlstate = "42501";
    out.error_message = "permission denied for table " + t->name;
    return out;
  }
  std::vector<int> target_cols;
  if (ins.columns.empty()) {
    for (size_t i = 0; i < t->columns.size(); ++i)
      target_cols.push_back(static_cast<int>(i));
  } else {
    for (const auto& c : ins.columns) {
      int idx = t->find_column(c);
      if (idx < 0) {
        out.error_sqlstate = "42703";
        out.error_message = "column does not exist: " + c;
        return out;
      }
      target_cols.push_back(idx);
    }
  }
  EvalCtx ctx;
  ctx.db = &db_;
  ctx.user = &user_;
  ctx.notices = &out.notices;
  const size_t first_new_row = t->rows.size();
  for (const auto& row_exprs : ins.rows) {
    if (row_exprs.size() != target_cols.size()) {
      out.error_sqlstate = "42601";
      out.error_message = "INSERT value count does not match column count";
      return out;
    }
    Row row(t->columns.size());  // defaults to NULL
    for (size_t i = 0; i < row_exprs.size(); ++i) {
      auto v = eval(*row_exprs[i], ctx);
      if (std::holds_alternative<SqlError>(v)) {
        auto& se = std::get<SqlError>(v);
        out.error_sqlstate = se.sqlstate;
        out.error_message = se.message;
        return out;
      }
      size_t col = static_cast<size_t>(target_cols[i]);
      row[col] = coerce(std::get<Datum>(std::move(v)), t->columns[col].type);
    }
    t->rows.push_back(std::move(row));
    // Noted per row, not per statement: a later row's eval error aborts
    // the statement but keeps the rows already appended (engine
    // semantics), and the storage layer must see those too.
    db_.note_rows_appended(*t, t->rows.size() - 1);
  }
  t->index_appended(first_new_row);
  out.command_tag = "INSERT 0 " + std::to_string(ins.rows.size());
  return out;
}

StatementResult Session::run_update(const UpdateStmt& up) {
  StatementResult out;
  TableData* t = db_.find_table(up.table);
  if (!t) {
    out.error_sqlstate = "42P01";
    out.error_message = "relation does not exist: " + up.table;
    return out;
  }
  if (!can_modify(*t, user_, "UPDATE")) {
    out.error_sqlstate = "42501";
    out.error_message = "permission denied for table " + t->name;
    return out;
  }
  std::vector<std::pair<int, const ExprPtr*>> sets;
  for (const auto& [col, expr] : up.sets) {
    int idx = t->find_column(col);
    if (idx < 0) {
      out.error_sqlstate = "42703";
      out.error_message = "column does not exist: " + col;
      return out;
    }
    sets.emplace_back(idx, &expr);
  }
  int64_t updated = 0;
  db_.note_scan(*t, nullptr);  // UPDATE reads the whole heap
  for (auto& row : t->rows) {
    out.rows_scanned += 1;
    EvalCtx ctx;
    ctx.db = &db_;
    ctx.user = &user_;
    ctx.notices = &out.notices;
    ctx.scope.push_back(ScopeEntry{t->name, t, &row});
    if (rls_applies(*t, user_)) {
      auto vis = rls_row_visible(db_, *t, user_, row);
      if (std::holds_alternative<SqlError>(vis)) continue;
      if (!std::get<bool>(vis)) continue;
    }
    if (up.where) {
      auto v = eval(*up.where, ctx);
      if (std::holds_alternative<SqlError>(v)) {
        auto& se = std::get<SqlError>(v);
        out.error_sqlstate = se.sqlstate;
        out.error_message = se.message;
        return out;
      }
      if (!datum_is_true(std::get<Datum>(v))) continue;
    }
    for (auto& [idx, expr] : sets) {
      auto v = eval(**expr, ctx);
      if (std::holds_alternative<SqlError>(v)) {
        auto& se = std::get<SqlError>(v);
        out.error_sqlstate = se.sqlstate;
        out.error_message = se.message;
        return out;
      }
      row[static_cast<size_t>(idx)] = coerce(std::get<Datum>(std::move(v)),
                                             t->columns[static_cast<size_t>(idx)].type);
    }
    ++updated;
    db_.note_row_updated(*t, static_cast<size_t>(&row - t->rows.data()));
  }
  if (updated > 0 && !t->hash_indexes.empty()) t->rebuild_indexes();
  out.command_tag = "UPDATE " + std::to_string(updated);
  return out;
}

StatementResult Session::run_delete(const DeleteStmt& del) {
  StatementResult out;
  TableData* t = db_.find_table(del.table);
  if (!t) {
    out.error_sqlstate = "42P01";
    out.error_message = "relation does not exist: " + del.table;
    return out;
  }
  if (!can_modify(*t, user_, "DELETE")) {
    out.error_sqlstate = "42501";
    out.error_message = "permission denied for table " + t->name;
    return out;
  }
  int64_t deleted = 0;
  std::vector<Row> kept;
  kept.reserve(t->rows.size());
  size_t first_removed = t->rows.size();
  db_.note_scan(*t, nullptr);  // DELETE reads the whole heap
  for (auto& row : t->rows) {
    out.rows_scanned += 1;
    bool remove = true;
    EvalCtx ctx;
    ctx.db = &db_;
    ctx.user = &user_;
    ctx.notices = &out.notices;
    ctx.scope.push_back(ScopeEntry{t->name, t, &row});
    if (rls_applies(*t, user_)) {
      auto vis = rls_row_visible(db_, *t, user_, row);
      remove = !std::holds_alternative<SqlError>(vis) && std::get<bool>(vis);
    }
    if (remove && del.where) {
      auto v = eval(*del.where, ctx);
      if (std::holds_alternative<SqlError>(v)) {
        auto& se = std::get<SqlError>(v);
        out.error_sqlstate = se.sqlstate;
        out.error_message = se.message;
        return out;
      }
      remove = datum_is_true(std::get<Datum>(v));
    }
    if (remove) {
      if (++deleted == 1)
        first_removed = static_cast<size_t>(&row - t->rows.data());
    } else {
      kept.push_back(std::move(row));
    }
  }
  size_t old_row_count = t->rows.size();
  t->rows = std::move(kept);
  if (deleted > 0) db_.note_rows_compacted(*t, first_removed, old_row_count);
  if (deleted > 0 && !t->hash_indexes.empty()) t->rebuild_indexes();
  out.command_tag = "DELETE " + std::to_string(deleted);
  return out;
}

StatementResult Session::run_create_table(const CreateTableStmt& ct) {
  StatementResult out;
  if (db_.find_table(ct.table)) {
    out.error_sqlstate = "42P07";
    out.error_message = "relation already exists: " + ct.table;
    return out;
  }
  std::vector<Column> cols;
  for (const auto& c : ct.columns) cols.push_back(Column{c.name, c.type});
  TableData* t = db_.create_table(ct.table, std::move(cols));
  t->owner = user_;  // covered by create_table's listener notification
  out.command_tag = "CREATE TABLE";
  return out;
}

StatementResult Session::run_drop_table(const DropTableStmt& d) {
  StatementResult out;
  TableData* t = db_.find_table(d.table);
  if (!t) {
    if (d.if_exists) {
      out.command_tag = "DROP TABLE";
      out.notices.push_back("table \"" + d.table + "\" does not exist, skipping");
      return out;
    }
    out.error_sqlstate = "42P01";
    out.error_message = "relation does not exist: " + d.table;
    return out;
  }
  if (user_ != "postgres" && user_ != t->owner) {
    out.error_sqlstate = "42501";
    out.error_message = "must be owner of table " + d.table;
    return out;
  }
  db_.tables_.erase(d.table);
  db_.note_table_dropped(d.table);
  out.command_tag = "DROP TABLE";
  return out;
}

StatementResult Session::run_create_function(const CreateFunctionStmt& fn) {
  StatementResult out;
  if (!db_.info().supports_udf) {
    out.error_sqlstate = "0A000";
    out.error_message =
        "unimplemented: user-defined functions are not supported";
    return out;
  }
  FunctionDef def;
  def.name = fn.name;
  def.nargs = fn.arg_types.size();
  def.notice_format = fn.notice_format;
  for (const auto& a : fn.notice_args) {
    // Deep-copy via re-parse of the printed form (exprs are move-only).
    auto copy = parse_expression(a->to_string());
    if (!copy.ok()) {
      out.error_sqlstate = "42601";
      out.error_message = "internal: " + copy.error();
      return out;
    }
    def.notice_args.push_back(std::move(copy.take()));
  }
  if (fn.return_expr) {
    auto copy = parse_expression(fn.return_expr->to_string());
    if (!copy.ok()) {
      out.error_sqlstate = "42601";
      out.error_message = "internal: " + copy.error();
      return out;
    }
    def.return_expr = std::move(copy.take());
  }
  db_.functions_[def.name] = std::move(def);
  db_.note_schema_changed();
  out.command_tag = "CREATE FUNCTION";
  return out;
}

StatementResult Session::run_create_operator(const CreateOperatorStmt& op) {
  StatementResult out;
  if (!db_.info().supports_udf) {
    out.error_sqlstate = "0A000";
    out.error_message =
        "unimplemented: user-defined operators are not supported";
    return out;
  }
  if (db_.functions_.find(op.procedure) == db_.functions_.end()) {
    out.error_sqlstate = "42883";
    out.error_message = "function does not exist: " + op.procedure;
    return out;
  }
  OperatorDef def;
  def.symbol = op.symbol;
  def.procedure = op.procedure;
  def.restrict_estimator = op.restrict_estimator;
  db_.operators_[def.symbol] = std::move(def);
  db_.note_schema_changed();
  out.command_tag = "CREATE OPERATOR";
  return out;
}

StatementResult Session::run_set(const SetStmt& set) {
  StatementResult out;
  std::string name = to_lower(set.name);
  std::string value = to_lower(set.value);
  if (starts_with(name, "transaction isolation level") ||
      name == "default_transaction_isolation") {
    constexpr std::string_view kPrefix = "transaction isolation level";
    std::string level = value;
    if (level.empty() && name.size() > kPrefix.size())
      level = std::string(trim(name.substr(kPrefix.size())));
    if (db_.info().forces_serializable && level != "serializable") {
      out.error_sqlstate = "0A000";
      out.error_message = "unimplemented: isolation level " + level +
                          " (only serializable is supported)";
      return out;
    }
    settings_["transaction_isolation"] = level;
    out.command_tag = "SET";
    return out;
  }
  settings_[name] = set.value;
  out.command_tag = "SET";
  return out;
}

StatementResult Session::run_grant(const GrantStmt& g) {
  StatementResult out;
  TableData* t = db_.find_table(g.table);
  if (!t) {
    out.error_sqlstate = "42P01";
    out.error_message = "relation does not exist: " + g.table;
    return out;
  }
  if (user_ != "postgres" && user_ != t->owner) {
    out.error_sqlstate = "42501";
    out.error_message = "must be owner of table " + g.table;
    return out;
  }
  t->grants[g.privilege].insert(g.grantee);
  db_.note_catalog_changed(*t);
  out.command_tag = "GRANT";
  return out;
}

StatementResult Session::run_alter_rls(const AlterTableRlsStmt& a) {
  StatementResult out;
  TableData* t = db_.find_table(a.table);
  if (!t) {
    out.error_sqlstate = "42P01";
    out.error_message = "relation does not exist: " + a.table;
    return out;
  }
  if (user_ != "postgres" && user_ != t->owner) {
    out.error_sqlstate = "42501";
    out.error_message = "must be owner of table " + a.table;
    return out;
  }
  t->rls_enabled = a.enable;
  db_.note_catalog_changed(*t);
  out.command_tag = "ALTER TABLE";
  return out;
}

StatementResult Session::run_create_policy(const CreatePolicyStmt& p) {
  StatementResult out;
  TableData* t = db_.find_table(p.table);
  if (!t) {
    out.error_sqlstate = "42P01";
    out.error_message = "relation does not exist: " + p.table;
    return out;
  }
  if (user_ != "postgres" && user_ != t->owner) {
    out.error_sqlstate = "42501";
    out.error_message = "must be owner of table " + p.table;
    return out;
  }
  Policy pol;
  pol.name = p.name;
  pol.role = p.role;
  auto copy = parse_expression(p.using_expr->to_string());
  if (!copy.ok()) {
    out.error_sqlstate = "42601";
    out.error_message = "internal: " + copy.error();
    return out;
  }
  pol.using_expr = std::move(copy.take());
  t->policies.push_back(std::move(pol));
  db_.note_catalog_changed(*t);
  out.command_tag = "CREATE POLICY";
  return out;
}

}  // namespace rddr::sqldb
