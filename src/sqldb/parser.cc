#include "sqldb/parser.h"

#include <cassert>

#include "common/strutil.h"
#include "sqldb/lexer.h"

namespace rddr::sqldb {

namespace {

/// Binary operator precedence (higher binds tighter). Unknown (custom)
/// operator symbols sit at comparison level, like Postgres' generic Op.
int binary_precedence(const std::string& op) {
  if (op == "or") return 1;
  if (op == "and") return 2;
  if (op == "=" || op == "<>" || op == "!=" || op == "<" || op == "<=" ||
      op == ">" || op == ">=")
    return 4;
  if (op == "||") return 5;
  if (op == "+" || op == "-") return 6;
  if (op == "*" || op == "/" || op == "%") return 7;
  return 4;  // custom operator symbols
}

bool is_builtin_binary(const std::string& op) {
  return op == "=" || op == "<>" || op == "!=" || op == "<" || op == "<=" ||
         op == ">" || op == ">=" || op == "||" || op == "+" || op == "-" ||
         op == "*" || op == "/" || op == "%";
}

bool is_aggregate_name(const std::string& name) {
  return name == "count" || name == "sum" || name == "avg" || name == "min" ||
         name == "max";
}

/// Keywords that may never appear as bare column references (Postgres
/// reserves these too); keeps "SELECT FROM" a syntax error instead of a
/// column named "from".
bool is_reserved_word(const std::string& s) {
  return s == "select" || s == "from" || s == "where" || s == "group" ||
         s == "having" || s == "order" || s == "limit" || s == "join" ||
         s == "inner" || s == "on" || s == "union" || s == "insert" ||
         s == "update" || s == "delete" || s == "create" || s == "drop" ||
         s == "set" || s == "values" || s == "into" || s == "by" ||
         s == "as" || s == "then" || s == "when" || s == "else" ||
         s == "end" || s == "grant" || s == "alter" || s == "explain";
}

class Parser {
 public:
  explicit Parser(std::vector<Token> toks) : toks_(std::move(toks)) {}

  Result<std::vector<Statement>> parse_script() {
    std::vector<Statement> stmts;
    while (!at_end()) {
      if (peek().kind == TokKind::kSemicolon) {
        advance();
        continue;
      }
      auto s = parse_statement();
      if (!s.ok()) return Err(s.error());
      stmts.push_back(std::move(s.take()));
      if (!at_end() && peek().kind != TokKind::kSemicolon)
        return unexpected("';' or end of input");
    }
    return stmts;
  }

  Result<ExprPtr> parse_single_expression() {
    auto e = parse_expr(0);
    if (!e.ok()) return e;
    if (!at_end()) return unexpected("end of expression");
    return e;
  }

 private:
  // ---- token helpers ----
  const Token& peek(size_t ahead = 0) const {
    size_t i = pos_ + ahead;
    return i < toks_.size() ? toks_[i] : toks_.back();
  }
  const Token& advance() { return toks_[pos_ < toks_.size() - 1 ? pos_++ : pos_]; }
  bool at_end() const { return peek().kind == TokKind::kEnd; }

  bool match_kw(std::string_view kw) {
    if (peek().kind == TokKind::kIdent && peek().text == kw) {
      advance();
      return true;
    }
    return false;
  }
  bool peek_kw(std::string_view kw, size_t ahead = 0) const {
    return peek(ahead).kind == TokKind::kIdent && peek(ahead).text == kw;
  }
  bool match(TokKind k) {
    if (peek().kind == k) {
      advance();
      return true;
    }
    return false;
  }
  bool match_op(std::string_view op) {
    if (peek().kind == TokKind::kOperator && peek().text == op) {
      advance();
      return true;
    }
    return false;
  }

  Error unexpected(std::string_view wanted) {
    const Token& t = peek();
    std::string got = t.kind == TokKind::kEnd
                          ? "end of input"
                          : strformat("'%s'", t.text.c_str());
    return Err(strformat("syntax error: expected %s, got %s at offset %zu",
                         std::string(wanted).c_str(), got.c_str(), t.offset));
  }

  Result<std::string> expect_ident(std::string_view what) {
    if (peek().kind != TokKind::kIdent) return unexpected(what);
    return advance().text;
  }

  // ---- statements ----
  Result<Statement> parse_statement() {
    if (peek_kw("select")) return wrap_select();
    if (peek_kw("insert")) return parse_insert();
    if (peek_kw("update")) return parse_update();
    if (peek_kw("delete")) return parse_delete();
    if (peek_kw("create")) return parse_create();
    if (peek_kw("drop")) return parse_drop();
    if (peek_kw("alter")) return parse_alter();
    if (peek_kw("set")) return parse_set();
    if (peek_kw("grant")) return parse_grant();
    if (peek_kw("explain")) return parse_explain();
    if (peek_kw("begin") || peek_kw("commit") || peek_kw("rollback") ||
        peek_kw("start"))
      return parse_txn();
    return unexpected("a statement keyword");
  }

  Result<Statement> wrap_select() {
    auto sel = parse_select();
    if (!sel.ok()) return Err(sel.error());
    Statement st;
    st.kind = Statement::Kind::kSelect;
    st.select = std::make_unique<SelectStmt>(std::move(sel.take()));
    return st;
  }

  Result<SelectStmt> parse_select() {
    if (!match_kw("select")) return unexpected("SELECT");
    SelectStmt sel;
    // Select list.
    while (true) {
      SelectItem item;
      if (match_op("*")) {
        item.star = true;
      } else {
        auto e = parse_expr(0);
        if (!e.ok()) return Err(e.error());
        item.expr = std::move(e.take());
        if (match_kw("as")) {
          auto a = expect_ident("alias");
          if (!a.ok()) return Err(a.error());
          item.alias = a.take();
        } else if (peek().kind == TokKind::kIdent && !is_clause_kw(peek().text)) {
          item.alias = advance().text;
        }
      }
      sel.items.push_back(std::move(item));
      if (!match(TokKind::kComma)) break;
    }
    // FROM.
    if (match_kw("from")) {
      while (true) {
        auto tr = parse_table_ref();
        if (!tr.ok()) return Err(tr.error());
        sel.from.push_back(std::move(tr.take()));
        if (match(TokKind::kComma)) continue;
        if (peek_kw("join") || peek_kw("inner") || peek_kw("left")) {
          match_kw("inner");
          match_kw("left");  // LEFT treated as INNER in this subset
          if (!match_kw("join")) return unexpected("JOIN");
          auto tr2 = parse_table_ref();
          if (!tr2.ok()) return Err(tr2.error());
          if (!match_kw("on")) return unexpected("ON");
          auto cond = parse_expr(0);
          if (!cond.ok()) return Err(cond.error());
          TableRef ref = std::move(tr2.take());
          ref.join_on = std::move(cond.take());
          sel.from.push_back(std::move(ref));
          // Allow chains of JOIN ... ON ...
          while (peek_kw("join") || peek_kw("inner")) {
            match_kw("inner");
            if (!match_kw("join")) return unexpected("JOIN");
            auto tr3 = parse_table_ref();
            if (!tr3.ok()) return Err(tr3.error());
            if (!match_kw("on")) return unexpected("ON");
            auto cond3 = parse_expr(0);
            if (!cond3.ok()) return Err(cond3.error());
            TableRef ref3 = std::move(tr3.take());
            ref3.join_on = std::move(cond3.take());
            sel.from.push_back(std::move(ref3));
          }
          if (match(TokKind::kComma)) continue;
        }
        break;
      }
    }
    if (match_kw("where")) {
      auto e = parse_expr(0);
      if (!e.ok()) return Err(e.error());
      sel.where = std::move(e.take());
    }
    if (peek_kw("group")) {
      advance();
      if (!match_kw("by")) return unexpected("BY");
      while (true) {
        auto e = parse_expr(0);
        if (!e.ok()) return Err(e.error());
        sel.group_by.push_back(std::move(e.take()));
        if (!match(TokKind::kComma)) break;
      }
    }
    if (match_kw("having")) {
      auto e = parse_expr(0);
      if (!e.ok()) return Err(e.error());
      sel.having = std::move(e.take());
    }
    if (peek_kw("order")) {
      advance();
      if (!match_kw("by")) return unexpected("BY");
      while (true) {
        OrderItem oi;
        auto e = parse_expr(0);
        if (!e.ok()) return Err(e.error());
        oi.expr = std::move(e.take());
        if (match_kw("desc")) oi.descending = true;
        else match_kw("asc");
        sel.order_by.push_back(std::move(oi));
        if (!match(TokKind::kComma)) break;
      }
    }
    if (match_kw("limit")) {
      if (peek().kind != TokKind::kNumber) return unexpected("limit count");
      auto v = parse_i64(advance().text);
      if (!v) return Err("bad LIMIT value");
      sel.limit = *v;
    }
    return sel;
  }

  static bool is_clause_kw(const std::string& s) {
    return s == "from" || s == "where" || s == "group" || s == "having" ||
           s == "order" || s == "limit" || s == "as" || s == "join" ||
           s == "inner" || s == "left" || s == "on" || s == "asc" ||
           s == "desc" || s == "union";
  }

  Result<TableRef> parse_table_ref() {
    auto t = expect_ident("table name");
    if (!t.ok()) return Err(t.error());
    TableRef ref;
    ref.table = t.take();
    if (match_kw("as")) {
      auto a = expect_ident("alias");
      if (!a.ok()) return Err(a.error());
      ref.alias = a.take();
    } else if (peek().kind == TokKind::kIdent && !is_clause_kw(peek().text)) {
      ref.alias = advance().text;
    }
    if (ref.alias.empty()) ref.alias = ref.table;
    return ref;
  }

  Result<Statement> parse_insert() {
    advance();  // INSERT
    if (!match_kw("into")) return unexpected("INTO");
    auto t = expect_ident("table name");
    if (!t.ok()) return Err(t.error());
    InsertStmt ins;
    ins.table = t.take();
    if (match(TokKind::kLParen)) {
      while (true) {
        auto c = expect_ident("column name");
        if (!c.ok()) return Err(c.error());
        ins.columns.push_back(c.take());
        if (match(TokKind::kRParen)) break;
        if (!match(TokKind::kComma)) return unexpected("',' or ')'");
      }
    }
    if (!match_kw("values")) return unexpected("VALUES");
    while (true) {
      if (!match(TokKind::kLParen)) return unexpected("'('");
      std::vector<ExprPtr> row;
      while (true) {
        auto e = parse_expr(0);
        if (!e.ok()) return Err(e.error());
        row.push_back(std::move(e.take()));
        if (match(TokKind::kRParen)) break;
        if (!match(TokKind::kComma)) return unexpected("',' or ')'");
      }
      ins.rows.push_back(std::move(row));
      if (!match(TokKind::kComma)) break;
    }
    Statement st;
    st.kind = Statement::Kind::kInsert;
    st.insert = std::make_unique<InsertStmt>(std::move(ins));
    return st;
  }

  Result<Statement> parse_update() {
    advance();  // UPDATE
    auto t = expect_ident("table name");
    if (!t.ok()) return Err(t.error());
    UpdateStmt up;
    up.table = t.take();
    if (!match_kw("set")) return unexpected("SET");
    while (true) {
      auto c = expect_ident("column name");
      if (!c.ok()) return Err(c.error());
      if (!match_op("=")) return unexpected("'='");
      auto e = parse_expr(0);
      if (!e.ok()) return Err(e.error());
      up.sets.emplace_back(c.take(), std::move(e.take()));
      if (!match(TokKind::kComma)) break;
    }
    if (match_kw("where")) {
      auto e = parse_expr(0);
      if (!e.ok()) return Err(e.error());
      up.where = std::move(e.take());
    }
    Statement st;
    st.kind = Statement::Kind::kUpdate;
    st.update = std::make_unique<UpdateStmt>(std::move(up));
    return st;
  }

  Result<Statement> parse_delete() {
    advance();  // DELETE
    if (!match_kw("from")) return unexpected("FROM");
    auto t = expect_ident("table name");
    if (!t.ok()) return Err(t.error());
    DeleteStmt del;
    del.table = t.take();
    if (match_kw("where")) {
      auto e = parse_expr(0);
      if (!e.ok()) return Err(e.error());
      del.where = std::move(e.take());
    }
    Statement st;
    st.kind = Statement::Kind::kDelete;
    st.del = std::make_unique<DeleteStmt>(std::move(del));
    return st;
  }

  Result<Statement> parse_create() {
    advance();  // CREATE
    if (match_kw("table")) return parse_create_table();
    if (match_kw("function")) return parse_create_function();
    if (match_kw("operator")) return parse_create_operator();
    if (match_kw("policy")) return parse_create_policy_stmt();
    if (match_kw("or")) {
      // CREATE OR REPLACE FUNCTION
      if (!match_kw("replace")) return unexpected("REPLACE");
      if (!match_kw("function")) return unexpected("FUNCTION");
      return parse_create_function();
    }
    return unexpected("TABLE, FUNCTION, OPERATOR or POLICY");
  }

  Result<Statement> parse_create_table() {
    auto t = expect_ident("table name");
    if (!t.ok()) return Err(t.error());
    CreateTableStmt ct;
    ct.table = t.take();
    if (!match(TokKind::kLParen)) return unexpected("'('");
    while (true) {
      auto c = expect_ident("column name");
      if (!c.ok()) return Err(c.error());
      auto ty = parse_type_spec();
      if (!ty.ok()) return Err(ty.error());
      // Skim over column constraints (PRIMARY KEY, NOT NULL, ...).
      while (peek().kind == TokKind::kIdent &&
             (peek().text == "primary" || peek().text == "key" ||
              peek().text == "not" || peek().text == "null" ||
              peek().text == "unique" || peek().text == "default")) {
        if (peek().text == "default") {
          advance();
          auto e = parse_expr(8);  // a primary expression
          if (!e.ok()) return Err(e.error());
        } else {
          advance();
        }
      }
      ct.columns.push_back(ColumnDef{c.take(), ty.take()});
      if (match(TokKind::kRParen)) break;
      if (!match(TokKind::kComma)) return unexpected("',' or ')'");
    }
    Statement st;
    st.kind = Statement::Kind::kCreateTable;
    st.create_table = std::make_unique<CreateTableStmt>(std::move(ct));
    return st;
  }

  /// Type spec: one or two idents possibly with (n) — e.g. "double
  /// precision", "varchar(10)", "numeric(12,2)".
  Result<Type> parse_type_spec() {
    auto first = expect_ident("type name");
    if (!first.ok()) return Err(first.error());
    std::string name = first.take();
    if (name == "double" && peek_kw("precision")) {
      advance();
      name = "double precision";
    }
    if (match(TokKind::kLParen)) {
      while (!match(TokKind::kRParen)) {
        if (at_end()) return unexpected("')'");
        advance();
      }
    }
    auto ty = parse_type_name(name);
    if (!ty) return Err("unknown type: " + name);
    return *ty;
  }

  Result<Statement> parse_create_function() {
    auto nm = expect_ident("function name");
    if (!nm.ok()) return Err(nm.error());
    CreateFunctionStmt fn;
    fn.name = nm.take();
    if (!match(TokKind::kLParen)) return unexpected("'('");
    if (!match(TokKind::kRParen)) {
      while (true) {
        // Arg may be "type" or "name type"; our subset is positional types.
        auto ty = parse_type_spec();
        if (!ty.ok()) return Err(ty.error());
        fn.arg_types.push_back(ty.take());
        if (match(TokKind::kRParen)) break;
        if (!match(TokKind::kComma)) return unexpected("',' or ')'");
      }
    }
    if (!match_kw("returns")) return unexpected("RETURNS");
    auto rty = parse_type_spec();
    if (!rty.ok()) return Err(rty.error());
    fn.return_type = rty.take();
    if (!match_kw("as")) return unexpected("AS");
    if (peek().kind != TokKind::kString) return unexpected("function body string");
    std::string body = advance().text;
    if (!match_kw("language")) return unexpected("LANGUAGE");
    auto lang = expect_ident("language name");
    if (!lang.ok()) return Err(lang.error());
    fn.language = lang.take();
    match_kw("immutable");
    match_kw("stable");
    match_kw("volatile");
    auto parsed = parse_plpgsql_body(body, fn);
    if (!parsed.ok()) return Err(parsed.error());
    Statement st;
    st.kind = Statement::Kind::kCreateFunction;
    st.create_function = std::make_unique<CreateFunctionStmt>(std::move(fn));
    return st;
  }

  /// Parses the plpgsql subset:
  ///   BEGIN [RAISE NOTICE 'fmt' [, expr]* ;] RETURN expr ; END [;]
  Result<bool> parse_plpgsql_body(const std::string& body,
                                  CreateFunctionStmt& fn) {
    auto toks = lex_sql(body);
    if (!toks.ok()) return Err("in function body: " + toks.error());
    Parser sub(std::move(toks.take()));
    if (!sub.match_kw("begin")) return sub.unexpected("BEGIN");
    if (sub.peek_kw("raise")) {
      sub.advance();
      if (!sub.match_kw("notice")) return sub.unexpected("NOTICE");
      if (sub.peek().kind != TokKind::kString)
        return sub.unexpected("notice format string");
      fn.notice_format = sub.advance().text;
      while (sub.match(TokKind::kComma)) {
        auto e = sub.parse_expr(0);
        if (!e.ok()) return Err(e.error());
        fn.notice_args.push_back(std::move(e.take()));
      }
      if (!sub.match(TokKind::kSemicolon)) return sub.unexpected("';'");
    }
    if (!sub.match_kw("return")) return sub.unexpected("RETURN");
    auto ret = sub.parse_expr(0);
    if (!ret.ok()) return Err(ret.error());
    fn.return_expr = std::move(ret.take());
    if (!sub.match(TokKind::kSemicolon)) return sub.unexpected("';'");
    if (!sub.match_kw("end")) return sub.unexpected("END");
    sub.match(TokKind::kSemicolon);
    if (!sub.at_end()) return sub.unexpected("end of body");
    return true;
  }

  Result<Statement> parse_create_operator() {
    if (peek().kind != TokKind::kOperator) return unexpected("operator symbol");
    CreateOperatorStmt op;
    op.symbol = advance().text;
    if (!match(TokKind::kLParen)) return unexpected("'('");
    while (true) {
      auto key = expect_ident("operator attribute");
      if (!key.ok()) return Err(key.error());
      if (!match_op("=")) return unexpected("'='");
      std::string k = key.take();
      if (k == "procedure" || k == "function") {
        auto v = expect_ident("procedure name");
        if (!v.ok()) return Err(v.error());
        op.procedure = v.take();
      } else if (k == "leftarg") {
        auto ty = parse_type_spec();
        if (!ty.ok()) return Err(ty.error());
        op.left_type = ty.take();
      } else if (k == "rightarg") {
        auto ty = parse_type_spec();
        if (!ty.ok()) return Err(ty.error());
        op.right_type = ty.take();
      } else if (k == "restrict") {
        auto v = expect_ident("estimator name");
        if (!v.ok()) return Err(v.error());
        op.restrict_estimator = v.take();
      } else {
        return Err("unknown operator attribute: " + k);
      }
      if (match(TokKind::kRParen)) break;
      if (!match(TokKind::kComma)) return unexpected("',' or ')'");
    }
    Statement st;
    st.kind = Statement::Kind::kCreateOperator;
    st.create_operator = std::make_unique<CreateOperatorStmt>(std::move(op));
    return st;
  }

  Result<Statement> parse_create_policy_stmt() {
    auto nm = expect_ident("policy name");
    if (!nm.ok()) return Err(nm.error());
    CreatePolicyStmt pol;
    pol.name = nm.take();
    if (!match_kw("on")) return unexpected("ON");
    auto t = expect_ident("table name");
    if (!t.ok()) return Err(t.error());
    pol.table = t.take();
    if (match_kw("for")) {
      advance();  // SELECT/ALL/...
    }
    if (match_kw("to")) {
      auto r = expect_ident("role name");
      if (!r.ok()) return Err(r.error());
      pol.role = r.take();
    }
    if (!match_kw("using")) return unexpected("USING");
    if (!match(TokKind::kLParen)) return unexpected("'('");
    auto e = parse_expr(0);
    if (!e.ok()) return Err(e.error());
    pol.using_expr = std::move(e.take());
    if (!match(TokKind::kRParen)) return unexpected("')'");
    Statement st;
    st.kind = Statement::Kind::kCreatePolicy;
    st.create_policy = std::make_unique<CreatePolicyStmt>(std::move(pol));
    return st;
  }

  Result<Statement> parse_drop() {
    advance();  // DROP
    if (!match_kw("table")) return unexpected("TABLE");
    DropTableStmt d;
    if (match_kw("if")) {
      if (!match_kw("exists")) return unexpected("EXISTS");
      d.if_exists = true;
    }
    auto t = expect_ident("table name");
    if (!t.ok()) return Err(t.error());
    d.table = t.take();
    Statement st;
    st.kind = Statement::Kind::kDropTable;
    st.drop_table = std::make_unique<DropTableStmt>(std::move(d));
    return st;
  }

  Result<Statement> parse_alter() {
    advance();  // ALTER
    if (!match_kw("table")) return unexpected("TABLE");
    auto t = expect_ident("table name");
    if (!t.ok()) return Err(t.error());
    AlterTableRlsStmt a;
    a.table = t.take();
    if (match_kw("enable")) a.enable = true;
    else if (match_kw("disable")) a.enable = false;
    else return unexpected("ENABLE or DISABLE");
    if (!match_kw("row")) return unexpected("ROW");
    if (!match_kw("level")) return unexpected("LEVEL");
    if (!match_kw("security")) return unexpected("SECURITY");
    Statement st;
    st.kind = Statement::Kind::kAlterTableRls;
    st.alter_rls = std::make_unique<AlterTableRlsStmt>(std::move(a));
    return st;
  }

  Result<Statement> parse_set() {
    advance();  // SET
    SetStmt set;
    // Name: one or more idents up to TO/=/end.
    std::vector<std::string> name_parts;
    while (peek().kind == TokKind::kIdent && !peek_kw("to")) {
      name_parts.push_back(advance().text);
      if (peek().kind == TokKind::kOperator && peek().text == "=") break;
    }
    if (name_parts.empty()) return unexpected("setting name");
    set.name = join(name_parts, " ");
    if (match_kw("to") || match_op("=")) {
      std::vector<std::string> value_parts;
      while (!at_end() && peek().kind != TokKind::kSemicolon) {
        value_parts.push_back(advance().text);
      }
      set.value = join(value_parts, " ");
    }
    Statement st;
    st.kind = Statement::Kind::kSet;
    st.set = std::make_unique<SetStmt>(std::move(set));
    return st;
  }

  Result<Statement> parse_grant() {
    advance();  // GRANT
    auto p = expect_ident("privilege");
    if (!p.ok()) return Err(p.error());
    GrantStmt g;
    g.privilege = to_upper(p.take());
    if (!match_kw("on")) return unexpected("ON");
    match_kw("table");
    auto t = expect_ident("table name");
    if (!t.ok()) return Err(t.error());
    g.table = t.take();
    if (!match_kw("to")) return unexpected("TO");
    auto u = expect_ident("grantee");
    if (!u.ok()) return Err(u.error());
    g.grantee = u.take();
    Statement st;
    st.kind = Statement::Kind::kGrant;
    st.grant = std::make_unique<GrantStmt>(std::move(g));
    return st;
  }

  Result<Statement> parse_explain() {
    advance();  // EXPLAIN
    ExplainStmt ex;
    if (match(TokKind::kLParen)) {
      while (!match(TokKind::kRParen)) {
        if (at_end()) return unexpected("')'");
        auto opt = expect_ident("explain option");
        if (!opt.ok()) return Err(opt.error());
        std::string key = opt.take();
        std::string val;
        if (peek().kind == TokKind::kIdent && peek().text != ")") {
          val = advance().text;
        }
        if (key == "costs" && (val == "off" || val == "false"))
          ex.costs_off = true;
        match(TokKind::kComma);
      }
    }
    auto sel = parse_select();
    if (!sel.ok()) return Err(sel.error());
    ex.select = std::make_unique<SelectStmt>(std::move(sel.take()));
    Statement st;
    st.kind = Statement::Kind::kExplain;
    st.explain = std::make_unique<ExplainStmt>(std::move(ex));
    return st;
  }

  Result<Statement> parse_txn() {
    TxnStmt t;
    t.keyword = advance().text;
    if (t.keyword == "start") {
      if (!match_kw("transaction")) return unexpected("TRANSACTION");
      t.keyword = "begin";
    }
    match_kw("transaction");
    match_kw("work");
    Statement st;
    st.kind = Statement::Kind::kTxn;
    st.txn = std::make_unique<TxnStmt>(std::move(t));
    return st;
  }

  // ---- expressions ----
  Result<ExprPtr> parse_expr(int min_prec) {
    auto lhs = parse_unary();
    if (!lhs.ok()) return lhs;
    ExprPtr left = std::move(lhs.take());
    while (true) {
      // Postfix predicates (IS NULL, LIKE, BETWEEN, IN) at precedence 3.
      if (min_prec <= 3 && peek_kw("is")) {
        advance();
        bool neg = match_kw("not");
        if (!match_kw("null")) return unexpected("NULL");
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kIsNull;
        e->negated = neg;
        e->args.push_back(std::move(left));
        left = std::move(e);
        continue;
      }
      bool neg = false;
      size_t save = pos_;
      if (min_prec <= 3 && peek_kw("not") &&
          (peek_kw("like", 1) || peek_kw("between", 1) || peek_kw("in", 1))) {
        advance();
        neg = true;
      }
      if (min_prec <= 3 && match_kw("like")) {
        auto rhs = parse_expr(4);
        if (!rhs.ok()) return rhs;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLike;
        e->negated = neg;
        e->args.push_back(std::move(left));
        e->args.push_back(std::move(rhs.take()));
        left = std::move(e);
        continue;
      }
      if (min_prec <= 3 && match_kw("between")) {
        auto lo = parse_expr(4);
        if (!lo.ok()) return lo;
        if (!match_kw("and")) return unexpected("AND");
        auto hi = parse_expr(4);
        if (!hi.ok()) return hi;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kBetween;
        e->negated = neg;
        e->args.push_back(std::move(left));
        e->args.push_back(std::move(lo.take()));
        e->args.push_back(std::move(hi.take()));
        left = std::move(e);
        continue;
      }
      if (min_prec <= 3 && match_kw("in")) {
        if (!match(TokKind::kLParen)) return unexpected("'('");
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kInList;
        e->negated = neg;
        e->args.push_back(std::move(left));
        while (true) {
          auto item = parse_expr(0);
          if (!item.ok()) return item;
          e->args.push_back(std::move(item.take()));
          if (match(TokKind::kRParen)) break;
          if (!match(TokKind::kComma)) return unexpected("',' or ')'");
        }
        left = std::move(e);
        continue;
      }
      pos_ = save;  // undo a lone NOT that wasn't followed by LIKE/IN/BETWEEN

      std::string op;
      if (peek().kind == TokKind::kOperator) {
        op = peek().text;
      } else if (peek_kw("and") || peek_kw("or")) {
        op = peek().text;
      } else {
        break;
      }
      int prec = binary_precedence(op);
      if (prec < min_prec) break;
      advance();
      auto rhs = parse_expr(prec + 1);
      if (!rhs.ok()) return rhs;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kBinary;
      e->op = op;
      e->args.push_back(std::move(left));
      e->args.push_back(std::move(rhs.take()));
      left = std::move(e);
    }
    return left;
  }

  Result<ExprPtr> parse_unary() {
    if (match_kw("not")) {
      auto inner = parse_expr(3);
      if (!inner.ok()) return inner;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = "not";
      e->args.push_back(std::move(inner.take()));
      return ExprPtr(std::move(e));
    }
    if (match_op("-")) {
      auto inner = parse_unary();
      if (!inner.ok()) return inner;
      auto e = std::make_unique<Expr>();
      e->kind = ExprKind::kUnary;
      e->op = "-";
      e->args.push_back(std::move(inner.take()));
      return ExprPtr(std::move(e));
    }
    if (match_op("+")) return parse_unary();
    return parse_primary();
  }

  Result<ExprPtr> parse_primary() {
    const Token& t = peek();
    switch (t.kind) {
      case TokKind::kNumber: {
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLiteral;
        if (t.text.find('.') != std::string::npos ||
            t.text.find('e') != std::string::npos ||
            t.text.find('E') != std::string::npos) {
          auto d = parse_f64(t.text);
          if (!d) return Err("bad numeric literal: " + t.text);
          e->literal = Datum::floating(*d);
        } else {
          auto i = parse_i64(t.text);
          if (!i) return Err("bad integer literal: " + t.text);
          e->literal = Datum::integer(*i);
        }
        return ExprPtr(std::move(e));
      }
      case TokKind::kString: {
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kLiteral;
        e->literal = Datum::text(t.text);
        return ExprPtr(std::move(e));
      }
      case TokKind::kParam: {
        advance();
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kParam;
        e->param_index = static_cast<int>(*parse_i64(t.text));
        return ExprPtr(std::move(e));
      }
      case TokKind::kLParen: {
        advance();
        auto inner = parse_expr(0);
        if (!inner.ok()) return inner;
        if (!match(TokKind::kRParen)) return unexpected("')'");
        return inner;
      }
      case TokKind::kIdent: {
        if (t.text == "null") {
          advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kLiteral;
          return ExprPtr(std::move(e));
        }
        if (t.text == "true" || t.text == "false") {
          advance();
          auto e = std::make_unique<Expr>();
          e->kind = ExprKind::kLiteral;
          e->literal = Datum::boolean(t.text == "true");
          return ExprPtr(std::move(e));
        }
        if (t.text == "case") return parse_case();
        if (is_reserved_word(t.text)) return unexpected("an expression");
        // Function call?
        if (peek(1).kind == TokKind::kLParen) {
          std::string name = advance().text;
          advance();  // '('
          auto e = std::make_unique<Expr>();
          e->kind = is_aggregate_name(name) ? ExprKind::kAggregate
                                            : ExprKind::kFuncCall;
          e->func_name = name;
          if (match_op("*")) {
            e->star = true;
            if (!match(TokKind::kRParen)) return unexpected("')'");
            return ExprPtr(std::move(e));
          }
          if (match_kw("distinct")) e->distinct = true;
          if (!match(TokKind::kRParen)) {
            while (true) {
              auto arg = parse_expr(0);
              if (!arg.ok()) return arg;
              e->args.push_back(std::move(arg.take()));
              if (match(TokKind::kRParen)) break;
              if (!match(TokKind::kComma)) return unexpected("',' or ')'");
            }
          }
          return ExprPtr(std::move(e));
        }
        // Column reference (possibly qualified).
        std::string first = advance().text;
        auto e = std::make_unique<Expr>();
        e->kind = ExprKind::kColumnRef;
        if (match(TokKind::kDot)) {
          auto col = expect_ident("column name");
          if (!col.ok()) return Err(col.error());
          e->table = first;
          e->column = col.take();
        } else {
          e->column = first;
        }
        return ExprPtr(std::move(e));
      }
      default:
        return unexpected("an expression");
    }
  }

  Result<ExprPtr> parse_case() {
    advance();  // CASE
    auto e = std::make_unique<Expr>();
    e->kind = ExprKind::kCase;
    while (match_kw("when")) {
      auto cond = parse_expr(0);
      if (!cond.ok()) return cond;
      if (!match_kw("then")) return unexpected("THEN");
      auto val = parse_expr(0);
      if (!val.ok()) return val;
      e->args.push_back(std::move(cond.take()));
      e->args.push_back(std::move(val.take()));
    }
    if (e->args.empty()) return unexpected("WHEN");
    if (match_kw("else")) {
      auto val = parse_expr(0);
      if (!val.ok()) return val;
      e->args.push_back(std::move(val.take()));
      e->case_has_else = true;
    }
    if (!match_kw("end")) return unexpected("END");
    return ExprPtr(std::move(e));
  }

  std::vector<Token> toks_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::vector<Statement>> parse_sql(std::string_view sql) {
  auto toks = lex_sql(sql);
  if (!toks.ok()) return Err(toks.error());
  Parser p(std::move(toks.take()));
  return p.parse_script();
}

Result<ExprPtr> parse_expression(std::string_view text) {
  auto toks = lex_sql(text);
  if (!toks.ok()) return Err(toks.error());
  Parser p(std::move(toks.take()));
  return p.parse_single_expression();
}

// ---- Expr printing ----

ExprPtr make_literal(Datum d) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kLiteral;
  e->literal = std::move(d);
  return e;
}

ExprPtr make_column(std::string table, std::string column) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kColumnRef;
  e->table = std::move(table);
  e->column = std::move(column);
  return e;
}

ExprPtr make_binary(std::string op, ExprPtr lhs, ExprPtr rhs) {
  auto e = std::make_unique<Expr>();
  e->kind = ExprKind::kBinary;
  e->op = std::move(op);
  e->args.push_back(std::move(lhs));
  e->args.push_back(std::move(rhs));
  return e;
}

std::string Expr::to_string() const {
  switch (kind) {
    case ExprKind::kLiteral:
      if (literal.is_null()) return "NULL";
      if (literal.type() == Type::kText)
        return "'" + replace_all(literal.as_text(), "'", "''") + "'";
      // Booleans must print as keywords ("t"/"f" would re-parse as column
      // references — to_string() output must round-trip through the parser).
      if (literal.type() == Type::kBool)
        return literal.as_bool() ? "true" : "false";
      return literal.to_text();
    case ExprKind::kColumnRef:
      return table.empty() ? column : table + "." + column;
    case ExprKind::kParam:
      return "$" + std::to_string(param_index);
    case ExprKind::kUnary:
      return op == "not" ? "NOT " + args[0]->to_string()
                         : "(" + op + args[0]->to_string() + ")";
    case ExprKind::kBinary:
      return "(" + args[0]->to_string() + " " + op + " " +
             args[1]->to_string() + ")";
    case ExprKind::kFuncCall:
    case ExprKind::kAggregate: {
      std::string s = func_name + "(";
      if (star) s += "*";
      for (size_t i = 0; i < args.size(); ++i) {
        if (i) s += ", ";
        s += args[i]->to_string();
      }
      return s + ")";
    }
    case ExprKind::kIsNull:
      return args[0]->to_string() + (negated ? " IS NOT NULL" : " IS NULL");
    case ExprKind::kLike:
      return args[0]->to_string() + (negated ? " NOT LIKE " : " LIKE ") +
             args[1]->to_string();
    case ExprKind::kBetween:
      return args[0]->to_string() + (negated ? " NOT BETWEEN " : " BETWEEN ") +
             args[1]->to_string() + " AND " + args[2]->to_string();
    case ExprKind::kInList: {
      std::string s = args[0]->to_string() + (negated ? " NOT IN (" : " IN (");
      for (size_t i = 1; i < args.size(); ++i) {
        if (i > 1) s += ", ";
        s += args[i]->to_string();
      }
      return s + ")";
    }
    case ExprKind::kCase: {
      std::string s = "CASE";
      size_t pairs = args.size() / 2;
      for (size_t i = 0; i < pairs; ++i) {
        s += " WHEN " + args[2 * i]->to_string() + " THEN " +
             args[2 * i + 1]->to_string();
      }
      if (case_has_else) s += " ELSE " + args.back()->to_string();
      return s + " END";
    }
  }
  return "?";
}

}  // namespace rddr::sqldb
