#include "sqldb/lexer.h"

#include <cctype>

#include "common/strutil.h"

namespace rddr::sqldb {

namespace {

bool is_op_char(char c) {
  return std::string_view("+-*/<>=~!@#%^&|?").find(c) != std::string_view::npos;
}

bool is_ident_start(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_';
}

bool is_ident_char(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_';
}

}  // namespace

Result<std::vector<Token>> lex_sql(std::string_view sql) {
  std::vector<Token> out;
  size_t i = 0;
  const size_t n = sql.size();
  while (i < n) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    // Line comment.
    if (c == '-' && i + 1 < n && sql[i + 1] == '-') {
      while (i < n && sql[i] != '\n') ++i;
      continue;
    }
    // Block comment.
    if (c == '/' && i + 1 < n && sql[i + 1] == '*') {
      size_t end = sql.find("*/", i + 2);
      if (end == std::string_view::npos)
        return Err("unterminated block comment");
      i = end + 2;
      continue;
    }
    Token tok;
    tok.offset = i;
    if (is_ident_start(c)) {
      size_t start = i;
      while (i < n && is_ident_char(sql[i])) ++i;
      tok.kind = TokKind::kIdent;
      tok.text = to_lower(sql.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '"') {
      size_t end = sql.find('"', i + 1);
      if (end == std::string_view::npos)
        return Err("unterminated quoted identifier");
      tok.kind = TokKind::kIdent;
      tok.text = std::string(sql.substr(i + 1, end - i - 1));
      i = end + 1;
      out.push_back(std::move(tok));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c)) ||
        (c == '.' && i + 1 < n &&
         std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t start = i;
      bool seen_dot = false, seen_exp = false;
      while (i < n) {
        char d = sql[i];
        if (std::isdigit(static_cast<unsigned char>(d))) {
          ++i;
        } else if (d == '.' && !seen_dot && !seen_exp) {
          seen_dot = true;
          ++i;
        } else if ((d == 'e' || d == 'E') && !seen_exp && i + 1 < n &&
                   (std::isdigit(static_cast<unsigned char>(sql[i + 1])) ||
                    ((sql[i + 1] == '+' || sql[i + 1] == '-') && i + 2 < n &&
                     std::isdigit(static_cast<unsigned char>(sql[i + 2]))))) {
          seen_exp = true;
          i += (sql[i + 1] == '+' || sql[i + 1] == '-') ? 2 : 1;
        } else {
          break;
        }
      }
      tok.kind = TokKind::kNumber;
      tok.text = std::string(sql.substr(start, i - start));
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '\'') {
      // Standard SQL string: '' is an escaped quote.
      std::string content;
      ++i;
      bool closed = false;
      while (i < n) {
        if (sql[i] == '\'') {
          if (i + 1 < n && sql[i + 1] == '\'') {
            content.push_back('\'');
            i += 2;
            continue;
          }
          ++i;
          closed = true;
          break;
        }
        content.push_back(sql[i]);
        ++i;
      }
      if (!closed) return Err("unterminated string literal");
      tok.kind = TokKind::kString;
      tok.text = std::move(content);
      out.push_back(std::move(tok));
      continue;
    }
    if (c == '$') {
      // $n parameter or $$dollar-quoted body$$.
      if (i + 1 < n && std::isdigit(static_cast<unsigned char>(sql[i + 1]))) {
        size_t start = ++i;
        while (i < n && std::isdigit(static_cast<unsigned char>(sql[i]))) ++i;
        tok.kind = TokKind::kParam;
        tok.text = std::string(sql.substr(start, i - start));
        out.push_back(std::move(tok));
        continue;
      }
      if (i + 1 < n && sql[i + 1] == '$') {
        size_t end = sql.find("$$", i + 2);
        if (end == std::string_view::npos)
          return Err("unterminated dollar-quoted string");
        tok.kind = TokKind::kString;
        tok.text = std::string(sql.substr(i + 2, end - i - 2));
        i = end + 2;
        out.push_back(std::move(tok));
        continue;
      }
      return Err("stray '$'");
    }
    switch (c) {
      case '(': tok.kind = TokKind::kLParen; ++i; break;
      case ')': tok.kind = TokKind::kRParen; ++i; break;
      case ',': tok.kind = TokKind::kComma; ++i; break;
      case ';': tok.kind = TokKind::kSemicolon; ++i; break;
      case '.': tok.kind = TokKind::kDot; ++i; break;
      default: {
        if (!is_op_char(c))
          return Err(strformat("unexpected character '%c' at offset %zu", c, i));
        size_t start = i;
        while (i < n && is_op_char(sql[i])) {
          // Don't swallow a comment start inside an operator run.
          if (sql[i] == '-' && i + 1 < n && sql[i + 1] == '-') break;
          if (sql[i] == '/' && i + 1 < n && sql[i + 1] == '*') break;
          ++i;
        }
        tok.kind = TokKind::kOperator;
        tok.text = std::string(sql.substr(start, i - start));
        break;
      }
    }
    out.push_back(std::move(tok));
  }
  Token end;
  end.kind = TokKind::kEnd;
  end.offset = n;
  out.push_back(std::move(end));
  return out;
}

}  // namespace rddr::sqldb
