#include "sqldb/snapshot.h"

#include "common/strutil.h"
#include "sqldb/codec.h"
#include "sqldb/parser.h"

namespace rddr::sqldb {

namespace {

// Escaping and datum encoding live in sqldb/codec.h — shared with the
// storage engine's page/WAL text forms and the resync delta format.

bool fail(std::string* error, const std::string& message) {
  if (error) *error = message;
  return false;
}

}  // namespace

std::string snapshot_database(const Database& db) {
  std::string out = "RDDRSNAP 1\n";
  out += "# engine " + db.info().product + " " + db.info().version + "\n";
  for (const auto& [name, t] : db.tables()) {
    out += "T " + escape_field(name) + "\t" + escape_field(t.owner) + "\t" +
           (t.rls_enabled ? "1" : "0") + "\n";
    for (const auto& c : t.columns)
      out += strformat("C %s\t%d\n", escape_field(c.name).c_str(),
                       static_cast<int>(c.type));
    for (const auto& [priv, users] : t.grants)
      for (const auto& u : users)
        out += "G " + escape_field(priv) + "\t" + escape_field(u) + "\n";
    for (const auto& p : t.policies)
      out += "P " + escape_field(p.name) + "\t" + escape_field(p.role) + "\t" +
             escape_field(p.using_expr ? p.using_expr->to_string() : "") +
             "\n";
    for (const auto& [col, index] : t.hash_indexes) {
      (void)index;
      if (col >= 0 && static_cast<size_t>(col) < t.columns.size())
        out += "X " + escape_field(t.columns[static_cast<size_t>(col)].name) +
               "\n";
    }
    for (const auto& row : t.rows) {
      out += "R ";
      for (size_t i = 0; i < row.size(); ++i) {
        if (i) out += '\t';
        out += encode_datum(row[i]);
      }
      out += '\n';
    }
  }
  for (const auto& [name, fn] : db.functions()) {
    out += "F " + escape_field(name) +
           strformat("\t%zu\t%d\t", fn.nargs, fn.notice_format ? 1 : 0) +
           escape_field(fn.notice_format ? *fn.notice_format : "") +
           strformat("\t%zu", fn.notice_args.size());
    for (const auto& a : fn.notice_args)
      out += "\t" + escape_field(a->to_string());
    out += strformat("\t%d\t", fn.return_expr ? 1 : 0) +
           escape_field(fn.return_expr ? fn.return_expr->to_string() : "") +
           "\n";
  }
  for (const auto& [symbol, op] : db.operators()) {
    out += "O " + escape_field(symbol) + "\t" + escape_field(op.procedure) +
           "\t" + escape_field(op.restrict_estimator) + "\n";
  }
  return out;
}

namespace {

bool restore_into(Database& db, std::map<std::string, FunctionDef>& functions,
                  std::map<std::string, OperatorDef>& operators,
                  std::string_view snapshot, std::string* error);

}  // namespace

bool restore_database(Database& db, std::string_view snapshot,
                      std::string* error) {
  // A restore is a wholesale replacement, not a statement-level mutation:
  // mute the listener for the duration (the storage engine re-adopts the
  // contents afterwards via rebase) but still advance the epoch once.
  MutationListener* saved_listener = db.listener_;
  db.listener_ = nullptr;
  db.mutation_epoch_++;
  db.tables_.clear();
  db.functions_.clear();
  db.operators_.clear();
  if (restore_into(db, db.functions_, db.operators_, snapshot, error)) {
    db.listener_ = saved_listener;
    return true;
  }
  // A failed restore must not leave a half-warmed mix of old and new
  // state: clear everything so the caller sees an empty instance.
  db.tables_.clear();
  db.functions_.clear();
  db.operators_.clear();
  db.listener_ = saved_listener;
  return false;
}

namespace {

bool restore_into(Database& db, std::map<std::string, FunctionDef>& functions,
                  std::map<std::string, OperatorDef>& operators,
                  std::string_view snapshot, std::string* error) {
  TableData* table = nullptr;
  // Index builds are deferred until all rows are in.
  std::vector<std::pair<std::string, std::string>> indexes;  // table, column

  auto lines = split_lines(snapshot);
  if (lines.empty())
    return fail(error, "snapshot: empty input");
  if (lines[0] != "RDDRSNAP 1") {
    // Distinguish a future/garbled version stamp from plain garbage: the
    // operator story differs (upgrade skew vs corrupt transfer).
    if (lines[0].rfind("RDDRSNAP ", 0) == 0)
      return fail(error,
                  "snapshot: unsupported version '" + lines[0] + "'");
    return fail(error, "snapshot: bad header");
  }
  // Writers always terminate with a newline, so a missing one means the
  // transfer was cut mid-record — reject before parsing a half row as a
  // (smaller, valid-looking) table.
  if (snapshot.back() != '\n')
    return fail(error, "snapshot: truncated input");
  for (size_t ln = 1; ln < lines.size(); ++ln) {
    const std::string& line = lines[ln];
    if (line.empty() || line[0] == '#') continue;
    if (line.size() < 2 || line[1] != ' ')
      return fail(error, strformat("snapshot line %zu: bad record", ln + 1));
    const char rec = line[0];
    auto fields = split(std::string_view(line).substr(2), '\t');
    switch (rec) {
      case 'T': {
        if (fields.size() != 3)
          return fail(error, strformat("snapshot line %zu: bad table", ln + 1));
        table = db.create_table(unescape_field(fields[0]), {});
        table->owner = unescape_field(fields[1]);
        table->rls_enabled = fields[2] == "1";
        break;
      }
      case 'C': {
        if (!table || fields.size() != 2)
          return fail(error, strformat("snapshot line %zu: bad column", ln + 1));
        auto code = parse_i64(fields[1]);
        if (!code || *code < 0 || *code > static_cast<int>(Type::kText))
          return fail(error, strformat("snapshot line %zu: bad type", ln + 1));
        table->columns.push_back(
            Column{unescape_field(fields[0]), static_cast<Type>(*code)});
        break;
      }
      case 'G': {
        if (!table || fields.size() != 2)
          return fail(error, strformat("snapshot line %zu: bad grant", ln + 1));
        table->grants[unescape_field(fields[0])].insert(
            unescape_field(fields[1]));
        break;
      }
      case 'P': {
        if (!table || fields.size() != 3)
          return fail(error, strformat("snapshot line %zu: bad policy", ln + 1));
        Policy p;
        p.name = unescape_field(fields[0]);
        p.role = unescape_field(fields[1]);
        std::string expr = unescape_field(fields[2]);
        if (!expr.empty()) {
          auto parsed = parse_expression(expr);
          if (!parsed.ok())
            return fail(error, "snapshot: policy expr: " + parsed.error());
          p.using_expr = parsed.take();
        }
        table->policies.push_back(std::move(p));
        break;
      }
      case 'X': {
        if (!table || fields.size() != 1)
          return fail(error, strformat("snapshot line %zu: bad index", ln + 1));
        indexes.emplace_back(table->name, unescape_field(fields[0]));
        break;
      }
      case 'R': {
        if (!table)
          return fail(error, strformat("snapshot line %zu: row before table",
                                       ln + 1));
        if (fields.size() != table->columns.size())
          return fail(error, strformat("snapshot line %zu: row arity", ln + 1));
        Row row;
        row.reserve(fields.size());
        for (const auto& f : fields) {
          Datum d;
          if (!decode_datum(f, &d))
            return fail(error, strformat("snapshot line %zu: bad datum",
                                         ln + 1));
          row.push_back(std::move(d));
        }
        table->rows.push_back(std::move(row));
        break;
      }
      case 'F': {
        if (fields.size() < 5)
          return fail(error, strformat("snapshot line %zu: bad function",
                                       ln + 1));
        if (!db.info().supports_udf) break;  // roachdb target: skip, no error
        FunctionDef fn;
        fn.name = unescape_field(fields[0]);
        auto nargs = parse_i64(fields[1]);
        auto n_notice = parse_i64(fields[4]);
        if (!nargs || !n_notice ||
            fields.size() != 7 + static_cast<size_t>(*n_notice))
          return fail(error, strformat("snapshot line %zu: bad function",
                                       ln + 1));
        fn.nargs = static_cast<size_t>(*nargs);
        if (fields[2] == "1") fn.notice_format = unescape_field(fields[3]);
        for (int64_t i = 0; i < *n_notice; ++i) {
          auto parsed =
              parse_expression(unescape_field(fields[5 + static_cast<size_t>(i)]));
          if (!parsed.ok())
            return fail(error, "snapshot: notice expr: " + parsed.error());
          fn.notice_args.push_back(parsed.take());
        }
        size_t ret_flag = 5 + static_cast<size_t>(*n_notice);
        if (fields[ret_flag] == "1") {
          auto parsed = parse_expression(unescape_field(fields[ret_flag + 1]));
          if (!parsed.ok())
            return fail(error, "snapshot: return expr: " + parsed.error());
          fn.return_expr = parsed.take();
        }
        functions[fn.name] = std::move(fn);
        break;
      }
      case 'O': {
        if (fields.size() != 3)
          return fail(error, strformat("snapshot line %zu: bad operator",
                                       ln + 1));
        if (!db.info().supports_udf) break;
        OperatorDef op;
        op.symbol = unescape_field(fields[0]);
        op.procedure = unescape_field(fields[1]);
        op.restrict_estimator = unescape_field(fields[2]);
        operators[op.symbol] = std::move(op);
        break;
      }
      default:
        return fail(error,
                    strformat("snapshot line %zu: unknown record '%c'", ln + 1,
                              rec));
    }
  }
  for (const auto& [tname, column] : indexes) {
    TableData* t = db.find_table(tname);
    if (t) t->build_index(column);
  }
  return true;
}

}  // namespace

}  // namespace rddr::sqldb
